package interp

import (
	"strings"
	"testing"

	"lppart/internal/behav"
	"lppart/internal/cdfg"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog, err := behav.Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ir, err := cdfg.Build(prog)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := Run(ir, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func runErr(t *testing.T, src string, opts Options) error {
	t.Helper()
	prog, err := behav.Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ir, err := cdfg.Build(prog)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	_, err = Run(ir, opts)
	if err == nil {
		t.Fatal("expected runtime error")
	}
	return err
}

func TestRunReturn(t *testing.T) {
	res := run(t, "func main() { return 41 + 1; }", Options{})
	if res.Ret != 42 {
		t.Errorf("ret = %d, want 42", res.Ret)
	}
}

func TestRunArithmetic(t *testing.T) {
	res := run(t, `
func main() {
	var a; var b;
	a = 7; b = 3;
	return (a*b - a/b) % 10 + (a << 2) - (a & b) + (a | b) - (a ^ b) + ~b + -a;
}
`, Options{})
	a, b := int32(7), int32(3)
	want := (a*b-a/b)%10 + (a << 2) - (a & b) + (a | b) - (a ^ b) + ^b + -a
	if res.Ret != want {
		t.Errorf("ret = %d, want %d", res.Ret, want)
	}
}

func TestRunLoopSum(t *testing.T) {
	res := run(t, `
func main() {
	var i; var s;
	s = 0;
	for i = 1; i <= 100; i = i + 1 { s = s + i; }
	return s;
}
`, Options{})
	if res.Ret != 5050 {
		t.Errorf("ret = %d, want 5050", res.Ret)
	}
}

func TestRunGlobalsAndArrays(t *testing.T) {
	res := run(t, `
var fib[10];
var last;
func main() {
	var i;
	fib[0] = 0; fib[1] = 1;
	for i = 2; i < 10; i = i + 1 {
		fib[i] = fib[i-1] + fib[i-2];
	}
	last = fib[9];
}
`, Options{})
	fib := res.Globals["fib"]
	want := []int32{0, 1, 1, 2, 3, 5, 8, 13, 21, 34}
	for i, w := range want {
		if fib[i] != w {
			t.Errorf("fib[%d] = %d, want %d", i, fib[i], w)
		}
	}
	if res.Globals["last"][0] != 34 {
		t.Errorf("last = %d, want 34", res.Globals["last"][0])
	}
}

func TestRunCallsAndRecursion(t *testing.T) {
	res := run(t, `
func fact(n) {
	if n <= 1 { return 1; }
	return n * fact(n - 1);
}
func main() { return fact(10); }
`, Options{})
	if res.Ret != 3628800 {
		t.Errorf("fact(10) = %d, want 3628800", res.Ret)
	}
}

func TestRunLocalArrays(t *testing.T) {
	res := run(t, `
func main() {
	var buf[5];
	var i; var s;
	for i = 0; i < 5; i = i + 1 { buf[i] = i * i; }
	s = 0;
	for i = 0; i < 5; i = i + 1 { s = s + buf[i]; }
	return s;
}
`, Options{})
	if res.Ret != 0+1+4+9+16 {
		t.Errorf("ret = %d, want 30", res.Ret)
	}
}

func TestRunZeroInitialized(t *testing.T) {
	res := run(t, `
var g; var arr[3];
func main() {
	var loc;
	return g + arr[0] + arr[1] + arr[2] + loc;
}
`, Options{})
	if res.Ret != 0 {
		t.Errorf("uninitialized vars must read 0, got %d", res.Ret)
	}
}

func TestRunWhileAndLogic(t *testing.T) {
	res := run(t, `
func main() {
	var n; var count;
	n = 27; count = 0;
	while n != 1 && count < 1000 {
		if n % 2 == 0 { n = n / 2; } else { n = 3*n + 1; }
		count = count + 1;
	}
	return count;
}
`, Options{})
	if res.Ret != 111 { // Collatz steps for 27
		t.Errorf("collatz(27) = %d, want 111", res.Ret)
	}
}

func TestRunDivByZeroTrap(t *testing.T) {
	err := runErr(t, "var z; func main() { return 1 / z; }", Options{})
	if !strings.Contains(err.Error(), "zero") {
		t.Errorf("error = %v, want division by zero", err)
	}
}

func TestRunIndexOutOfRange(t *testing.T) {
	err := runErr(t, "var a[3]; func main() { var i; i = 5; a[i] = 1; }", Options{})
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error = %v", err)
	}
	err = runErr(t, "var a[3]; func main() { var i; i = 0 - 1; return a[i]; }", Options{})
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error = %v", err)
	}
}

func TestRunStepLimit(t *testing.T) {
	err := runErr(t, "func main() { while 1 { } }", Options{MaxSteps: 10000})
	if !strings.Contains(err.Error(), "step limit") {
		t.Errorf("error = %v", err)
	}
}

func TestRunDepthLimit(t *testing.T) {
	err := runErr(t, "func f(n) { return f(n+1); } func main() { return f(0); }",
		Options{MaxDepth: 50})
	if !strings.Contains(err.Error(), "depth") {
		t.Errorf("error = %v", err)
	}
}

func TestProfileBlockFreq(t *testing.T) {
	res := run(t, `
var s;
func main() {
	var i;
	for i = 0; i < 10; i = i + 1 { s = s + i; }
}
`, Options{CollectProfile: true})
	if res.Prof == nil {
		t.Fatal("no profile collected")
	}
	freq := res.Prof.BlockFreq["main"]
	// Header executes 11 times (10 taken + 1 exit), body 10 times.
	has11, has10 := false, false
	for _, f := range freq {
		if f == 11 {
			has11 = true
		}
		if f == 10 {
			has10 = true
		}
	}
	if !has11 || !has10 {
		t.Errorf("block frequencies %v, want header=11 body=10", freq)
	}
}

func TestProfileRegionEntries(t *testing.T) {
	prog := behav.MustParse("t", `
var s;
func main() {
	var i; var j;
	for i = 0; i < 4; i = i + 1 {
		for j = 0; j < 5; j = j + 1 { s = s + 1; }
	}
}
`)
	ir := cdfg.MustBuild(prog)
	res, err := Run(ir, Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	var inner, outer *cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop {
			if r.Depth() == 2 {
				inner = r
			} else {
				outer = r
			}
		}
	}
	// Outer header: 5 (4 iterations + exit). Inner header: 4*(5+1) = 24.
	if got := res.Prof.RegionEntries(outer); got != 5 {
		t.Errorf("outer entries = %d, want 5", got)
	}
	if got := res.Prof.RegionEntries(inner); got != 24 {
		t.Errorf("inner entries = %d, want 24", got)
	}
	if res.Globals["s"][0] != 20 {
		t.Errorf("s = %d, want 20", res.Globals["s"][0])
	}
}

func TestProfileActivity(t *testing.T) {
	// An operand alternating between 0 and ~0 toggles all 32 bits each
	// execution; a constant operand toggles none.
	prog := behav.MustParse("t", `
var a; var s;
func main() {
	var i;
	for i = 0; i < 16; i = i + 1 {
		a = ~a;
		s = s ^ a;
	}
}
`)
	ir := cdfg.MustBuild(prog)
	res, err := Run(ir, Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	var xorStat *OpStat
	f := ir.Func("main")
	for _, b := range f.Blocks {
		for i := range b.Ops {
			if b.Ops[i].Code == cdfg.Xor {
				xorStat = res.Prof.Ops[OpKey{Func: "main", OpID: b.Ops[i].ID}]
			}
		}
	}
	if xorStat == nil {
		t.Fatal("no xor stat recorded")
	}
	if xorStat.Count != 16 {
		t.Errorf("xor count = %d, want 16", xorStat.Count)
	}
	// Operand B is `a`, alternating 0xFFFFFFFF / 0x00000000: activity 1.
	if got := xorStat.ActivityB(); got < 0.99 || got > 1.01 {
		t.Errorf("xor activity B = %g, want ~1.0", got)
	}
}

func TestActivityBounds(t *testing.T) {
	res := run(t, `
var out[32];
func main() {
	var i;
	for i = 0; i < 32; i = i + 1 { out[i] = i * 16777619; }
}
`, Options{CollectProfile: true})
	for key, st := range res.Prof.Ops {
		a, b := st.ActivityA(), st.ActivityB()
		if a < 0 || a > 1 || b < 0 || b > 1 {
			t.Errorf("%v: activity out of [0,1]: %g %g", key, a, b)
		}
		if st.Count <= 0 {
			t.Errorf("%v: non-positive count", key)
		}
	}
}

func TestStepsCounted(t *testing.T) {
	res := run(t, "func main() { return 1; }", Options{})
	if res.Steps <= 0 || res.Steps > 10 {
		t.Errorf("steps = %d, want small positive", res.Steps)
	}
	res2 := run(t, `
func main() {
	var i; var s;
	for i = 0; i < 1000; i = i + 1 { s = s + i; }
	return s;
}
`, Options{})
	if res2.Steps < 4000 {
		t.Errorf("steps = %d, want >= 4000 for 1000 iterations", res2.Steps)
	}
}

func TestGlobalsSnapshotIsolated(t *testing.T) {
	// The returned snapshot must not alias interpreter state across runs.
	prog := behav.MustParse("t", "var g; func main() { g = g + 1; }")
	ir := cdfg.MustBuild(prog)
	r1, err := Run(ir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(ir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Globals["g"][0] != 1 || r2.Globals["g"][0] != 1 {
		t.Errorf("globals leaked across runs: %d, %d", r1.Globals["g"][0], r2.Globals["g"][0])
	}
}
