// Package interp executes CDFG programs directly. It serves three roles:
//
//  1. Golden reference: the code generator + ISS pipeline must reproduce
//     its observable results exactly (differential testing).
//  2. Profiler: it records how often each basic block executes, which is
//     the "#ex_times" the paper obtains "through profiling" (Fig. 4) and
//     which weights every control step of a cluster schedule.
//  3. Activity tracer: it records per-operation operand toggle statistics
//     (average Hamming distance between consecutive executions), which
//     drive the gate-level-style switching-energy estimation of the ASIC
//     core (paper Fig. 1 line 15).
package interp

import (
	"fmt"
	"math/bits"

	"lppart/internal/behav"
	"lppart/internal/cdfg"
)

// Options configures a run.
type Options struct {
	// MaxSteps aborts runaway programs; 0 means the default (200M ops).
	MaxSteps int64
	// MaxDepth bounds the call stack; 0 means the default (1024 frames).
	MaxDepth int
	// CollectProfile enables block-frequency and operand-activity
	// recording.
	CollectProfile bool
}

// OpKey identifies an operation program-wide.
type OpKey struct {
	Func string
	OpID int
}

// OpStat aggregates the activity trace of one operation.
type OpStat struct {
	Count int64 // number of executions
	// toggle accumulation: total bit flips between consecutive operand
	// values, per operand.
	togglesA, togglesB int64
	prevA, prevB       int32
	seen               bool
}

// ActivityA returns the average per-execution toggle rate (0..1) of
// operand A: mean Hamming distance between consecutive values over the
// 32-bit width. The first execution contributes no toggles.
func (s *OpStat) ActivityA() float64 { return activity(s.togglesA, s.Count) }

// ActivityB returns the average toggle rate of operand B.
func (s *OpStat) ActivityB() float64 { return activity(s.togglesB, s.Count) }

func activity(toggles, count int64) float64 {
	if count <= 1 {
		return 0
	}
	return float64(toggles) / float64(count-1) / 32
}

// Profile is the result of a profiling run.
type Profile struct {
	// BlockFreq[funcName][blockID] is the execution count of the block.
	BlockFreq map[string][]int64
	// Ops holds per-operation activity statistics.
	Ops map[OpKey]*OpStat
}

// RegionEntries returns how many times the region was entered: the
// execution count of its entry block. For loops this is the number of
// times the loop construct was *reached* times its header iterations; use
// the enclosing block's frequency for invocation counts.
func (pr *Profile) RegionEntries(r *cdfg.Region) int64 {
	freq := pr.BlockFreq[r.Func.Name]
	if freq == nil || r.Entry >= len(freq) {
		return 0
	}
	return freq[r.Entry]
}

// BlockCount returns the execution count of one block.
func (pr *Profile) BlockCount(f *cdfg.Function, blockID int) int64 {
	freq := pr.BlockFreq[f.Name]
	if freq == nil || blockID >= len(freq) {
		return 0
	}
	return freq[blockID]
}

// Result is the outcome of a run.
type Result struct {
	Ret     int32 // main's return value (0 if none)
	Steps   int64 // executed IR operations
	Globals map[string][]int32
	Prof    *Profile // nil unless Options.CollectProfile
}

// RuntimeError is a trapped execution fault (division by zero, index out
// of range, limits exceeded) with the source position of the faulting
// operation.
type RuntimeError struct {
	Pos behav.Pos
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return fmt.Sprintf("runtime: %v: %s", e.Pos, e.Msg) }

type machine struct {
	prog    *cdfg.Program
	opts    Options
	globals [][]int32 // index parallel to prog.Globals; scalars are len-1
	steps   int64
	prof    *Profile
	// Dense profiling storage, parallel to prog.Funcs. The hot loop
	// indexes these slabs by block/op ID; the public Profile maps are
	// materialized once at the end of Run.
	fnProf []fnProfile
	fnIdx  map[*cdfg.Function]int
	depth  int
}

// fnProfile is the dense per-function profiling slab: freq is indexed by
// block ID, ops by op ID (op IDs are unique within a function).
type fnProfile struct {
	freq []int64
	ops  []OpStat
}

// maxOpID returns the largest op ID in the function (op IDs are assigned
// densely at build time, but scanning keeps corrupted IR safe).
func maxOpID(f *cdfg.Function) int {
	max := -1
	for _, b := range f.Blocks {
		for i := range b.Ops {
			if b.Ops[i].ID > max {
				max = b.Ops[i].ID
			}
		}
	}
	return max
}

// Run executes the program's main function.
func Run(p *cdfg.Program, opts Options) (*Result, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 1024
	}
	m := &machine{prog: p, opts: opts}
	m.globals = make([][]int32, len(p.Globals))
	for i, g := range p.Globals {
		n := int32(1)
		if g.IsArray() {
			n = g.Len
		}
		m.globals[i] = make([]int32, n)
	}
	if opts.CollectProfile {
		m.fnProf = make([]fnProfile, len(p.Funcs))
		m.fnIdx = make(map[*cdfg.Function]int, len(p.Funcs))
		for i, f := range p.Funcs {
			m.fnProf[i] = fnProfile{
				freq: make([]int64, len(f.Blocks)),
				ops:  make([]OpStat, maxOpID(f)+1),
			}
			m.fnIdx[f] = i
		}
	}
	main := p.Func("main")
	if main == nil {
		return nil, fmt.Errorf("interp: program %s has no main", p.Name)
	}
	ret, err := m.call(main, nil)
	if err != nil {
		return nil, err
	}
	if opts.CollectProfile {
		m.prof = &Profile{
			BlockFreq: make(map[string][]int64, len(p.Funcs)),
			Ops:       make(map[OpKey]*OpStat),
		}
		for i, f := range p.Funcs {
			m.prof.BlockFreq[f.Name] = m.fnProf[i].freq
			ops := m.fnProf[i].ops
			for id := range ops {
				if ops[id].Count > 0 {
					m.prof.Ops[OpKey{Func: f.Name, OpID: id}] = &ops[id]
				}
			}
		}
	}
	res := &Result{Ret: ret, Steps: m.steps, Prof: m.prof,
		Globals: make(map[string][]int32, len(p.Globals))}
	for i, g := range p.Globals {
		vals := make([]int32, len(m.globals[i]))
		copy(vals, m.globals[i])
		res.Globals[g.Name] = vals
	}
	return res, nil
}

// frame is one function activation.
type frame struct {
	fn     *cdfg.Function
	locals [][]int32
	prof   *fnProfile // nil unless profiling
}

func (m *machine) call(fn *cdfg.Function, args []int32) (int32, error) {
	m.depth++
	defer func() { m.depth-- }()
	if m.depth > m.opts.MaxDepth {
		return 0, &RuntimeError{Msg: fmt.Sprintf("call depth exceeds %d", m.opts.MaxDepth)}
	}
	fr := &frame{fn: fn, locals: make([][]int32, len(fn.Locals))}
	if m.fnProf != nil {
		fr.prof = &m.fnProf[m.fnIdx[fn]]
	}
	for i, l := range fn.Locals {
		n := int32(1)
		if l.IsArray() {
			n = l.Len
		}
		fr.locals[i] = make([]int32, n)
	}
	for i, pid := range fn.Params {
		fr.locals[pid][0] = args[i]
	}
	blockID := fn.Entry
	for {
		if fr.prof != nil {
			fr.prof.freq[blockID]++
		}
		b := fn.Block(blockID)
		for i := range b.Ops {
			op := &b.Ops[i]
			m.steps++
			if m.steps > m.opts.MaxSteps {
				return 0, &RuntimeError{Pos: op.Pos, Msg: fmt.Sprintf("step limit %d exceeded", m.opts.MaxSteps)}
			}
			next, ret, done, err := m.exec(fr, op)
			if err != nil {
				return 0, err
			}
			if done {
				return ret, nil
			}
			if next >= 0 {
				blockID = next
				break
			}
		}
	}
}

func (m *machine) slot(fr *frame, r cdfg.VarRef) *int32 {
	if r.Global {
		return &m.globals[r.ID][0]
	}
	return &fr.locals[r.ID][0]
}

func (m *machine) array(fr *frame, a cdfg.ArrRef) []int32 {
	if a.Global {
		return m.globals[a.ID]
	}
	return fr.locals[a.ID]
}

func (m *machine) operand(fr *frame, o cdfg.Operand) int32 {
	if o.IsConst {
		return o.K
	}
	return *m.slot(fr, o.Ref)
}

// record updates the activity trace of op with this execution's operand
// values.
func (m *machine) record(fr *frame, op *cdfg.Op, a, b int32) {
	if fr.prof == nil {
		return
	}
	st := &fr.prof.ops[op.ID]
	if st.seen {
		st.togglesA += int64(bits.OnesCount32(uint32(st.prevA ^ a)))
		st.togglesB += int64(bits.OnesCount32(uint32(st.prevB ^ b)))
	}
	st.prevA, st.prevB, st.seen = a, b, true
	st.Count++
}

// exec runs one operation. It returns the next block ID (or -1 to
// continue), and done/ret when the function returns.
func (m *machine) exec(fr *frame, op *cdfg.Op) (next int, ret int32, done bool, err error) {
	next = -1
	switch {
	case op.Code == cdfg.Nop:
	case op.Code == cdfg.ConstOp:
		*m.slot(fr, op.Dst) = op.Imm
		m.record(fr, op, op.Imm, 0)
	case op.Code == cdfg.Copy:
		v := m.operand(fr, op.A)
		*m.slot(fr, op.Dst) = v
		m.record(fr, op, v, 0)
	case op.Code.IsBinary():
		a := m.operand(fr, op.A)
		b := m.operand(fr, op.B)
		m.record(fr, op, a, b)
		v, evalErr := behav.EvalBinOp(cdfg.BehavBinOp(op.Code), a, b)
		if evalErr != nil {
			return 0, 0, false, &RuntimeError{Pos: op.Pos, Msg: evalErr.Error()}
		}
		*m.slot(fr, op.Dst) = v
	case op.Code == cdfg.Neg:
		v := m.operand(fr, op.A)
		m.record(fr, op, v, 0)
		*m.slot(fr, op.Dst) = -v
	case op.Code == cdfg.Not:
		v := m.operand(fr, op.A)
		m.record(fr, op, v, 0)
		*m.slot(fr, op.Dst) = ^v
	case op.Code == cdfg.LNot:
		v := m.operand(fr, op.A)
		m.record(fr, op, v, 0)
		if v == 0 {
			*m.slot(fr, op.Dst) = 1
		} else {
			*m.slot(fr, op.Dst) = 0
		}
	case op.Code == cdfg.Load:
		idx := m.operand(fr, op.A)
		arr := m.array(fr, op.Arr)
		if idx < 0 || int(idx) >= len(arr) {
			return 0, 0, false, &RuntimeError{Pos: op.Pos,
				Msg: fmt.Sprintf("index %d out of range [0,%d) of %s", idx, len(arr), m.prog.ArrName(fr.fn, op.Arr))}
		}
		v := arr[idx]
		m.record(fr, op, idx, v)
		*m.slot(fr, op.Dst) = v
	case op.Code == cdfg.Store:
		idx := m.operand(fr, op.A)
		val := m.operand(fr, op.B)
		arr := m.array(fr, op.Arr)
		if idx < 0 || int(idx) >= len(arr) {
			return 0, 0, false, &RuntimeError{Pos: op.Pos,
				Msg: fmt.Sprintf("index %d out of range [0,%d) of %s", idx, len(arr), m.prog.ArrName(fr.fn, op.Arr))}
		}
		m.record(fr, op, idx, val)
		arr[idx] = val
	case op.Code == cdfg.Call:
		callee := m.prog.Func(op.Callee)
		if callee == nil {
			return 0, 0, false, &RuntimeError{Pos: op.Pos, Msg: fmt.Sprintf("unknown function %q", op.Callee)}
		}
		args := make([]int32, len(op.Args))
		for i, a := range op.Args {
			args[i] = m.operand(fr, a)
		}
		v, callErr := m.call(callee, args)
		if callErr != nil {
			return 0, 0, false, callErr
		}
		if op.Dst.Valid() {
			*m.slot(fr, op.Dst) = v
		}
	case op.Code == cdfg.Ret:
		if op.A.Valid() {
			return -1, m.operand(fr, op.A), true, nil
		}
		return -1, 0, true, nil
	case op.Code == cdfg.Br:
		next = op.Target
	case op.Code == cdfg.CBr:
		v := m.operand(fr, op.A)
		m.record(fr, op, v, 0)
		if v != 0 {
			next = op.Then
		} else {
			next = op.Else
		}
	default:
		return 0, 0, false, &RuntimeError{Pos: op.Pos, Msg: fmt.Sprintf("unimplemented opcode %v", op.Code)}
	}
	return next, 0, false, nil
}
