package apps

import (
	"testing"

	"lppart/internal/cdfg"
	"lppart/internal/interp"
)

func TestAllParseAndBuild(t *testing.T) {
	apps := All()
	if len(apps) != 6 {
		t.Fatalf("want the paper's 6 applications, got %d", len(apps))
	}
	names := []string{"3d", "MPG", "ckey", "digs", "engine", "trick"}
	for i, a := range apps {
		if a.Name != names[i] {
			t.Errorf("app %d is %q, want %q (Table 1 order)", i, a.Name, names[i])
		}
		if _, err := a.Build(); err != nil {
			t.Errorf("%s does not build: %v", a.Name, err)
		}
		if a.PaperSavings >= 0 {
			t.Errorf("%s: paper savings must be negative (a reduction)", a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("digs")
	if err != nil || a.Name != "digs" {
		t.Errorf("ByName(digs) = %v, %v", a.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName must reject unknown applications")
	}
}

// TestAppsExecute runs every application to completion on the reference
// interpreter and sanity-checks its footprint.
func TestAppsExecute(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			ir, err := a.Build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := interp.Run(ir, interp.Options{})
			if err != nil {
				t.Fatalf("%s traps: %v", a.Name, err)
			}
			if res.Steps < 10_000 {
				t.Errorf("%s executes only %d ops — not a realistic workload", a.Name, res.Steps)
			}
			if res.Steps > 50_000_000 {
				t.Errorf("%s executes %d ops — too large for the harness", a.Name, res.Steps)
			}
		})
	}
}

// TestAppsDeterministic ensures repeated runs produce identical globals
// (the in-program generators are seeded).
func TestAppsDeterministic(t *testing.T) {
	for _, a := range All() {
		ir, err := a.Build()
		if err != nil {
			t.Fatal(err)
		}
		r1, err := interp.Run(ir, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := interp.Run(ir, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for name, vals := range r1.Globals {
			for i, v := range vals {
				if r2.Globals[name][i] != v {
					t.Fatalf("%s: global %s[%d] differs between runs", a.Name, name, i)
				}
			}
		}
	}
}

// TestAppsHaveEligibleClusters checks the structural precondition of the
// whole experiment: every application has at least one loop region without
// calls or returns (a partitionable cluster).
func TestAppsHaveEligibleClusters(t *testing.T) {
	for _, a := range All() {
		ir, err := a.Build()
		if err != nil {
			t.Fatal(err)
		}
		eligible := 0
		for _, r := range ir.Regions() {
			if r.Kind == cdfg.RegionLoop && !r.HasCalls() && !r.HasReturns() {
				eligible++
			}
		}
		if eligible == 0 {
			t.Errorf("%s has no partitionable loop cluster", a.Name)
		}
	}
}

// TestAppsProduceNonTrivialOutput guards against dead-code collapse: each
// app must leave a nonzero result in at least one global.
func TestAppsProduceNonTrivialOutput(t *testing.T) {
	for _, a := range All() {
		ir, err := a.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := interp.Run(ir, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nonzero := false
		for _, vals := range res.Globals {
			for _, v := range vals {
				if v != 0 {
					nonzero = true
				}
			}
		}
		if !nonzero {
			t.Errorf("%s: all globals are zero after the run", a.Name)
		}
	}
}
