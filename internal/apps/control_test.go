package apps

import (
	"testing"

	"lppart/internal/cdfg"
	"lppart/internal/interp"
)

func TestControlDominatedBuildsAndRuns(t *testing.T) {
	a := ControlDominated()
	ir, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(ir, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 10_000 {
		t.Errorf("proto runs only %d ops", res.Steps)
	}
	// The FSM must actually visit its states: all counters nonzero.
	for _, name := range []string{"accepted", "rejected", "retries", "resets"} {
		if res.Globals[name][0] == 0 {
			t.Errorf("counter %s never incremented — FSM not exercised", name)
		}
	}
}

func TestControlDominatedEventLoopHasCall(t *testing.T) {
	// The structural property the future-work experiment rests on: the
	// event loop contains a call (the event source), so it can never be
	// a cluster — only the tiny branch regions inside are candidates.
	a := ControlDominated()
	ir, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	main := ir.Func("main")
	for _, r := range main.Root.AllRegions() {
		if r.Label == "main" {
			continue
		}
		if r.Depth() == 1 && r.Kind == cdfg.RegionLoop {
			if !r.HasCalls() {
				t.Error("the event loop must contain the event-source call")
			}
		}
	}
}
