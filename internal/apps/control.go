package apps

// ControlDominated returns a seventh, non-Table-1 application: a
// control-dominated protocol state machine. The paper's conclusion names
// control-dominated systems as future work because the approach is
// "tailored especially to computation and memory intensive applications" —
// this workload demonstrates why: its clusters are branch-dominated with
// tiny basic blocks, so no candidate reaches a high U_R on an ASIC
// datapath and the energy win is marginal or absent.
func ControlDominated() App {
	return App{
		Name:        "proto",
		Description: "control-dominated protocol state machine (paper §5 future work)",
		Source:      srcProto,
		// No paper reference values: the paper defers this class.
		PaperSavings:    0,
		PaperTimeChange: 0,
	}
}

const srcProto = `
# proto: control-dominated protocol engine
const NEV = 4000;
var accepted; var rejected; var retries; var resets;
var state; var crc;
var evreg;

# The event source: models reading the protocol engine's event register.
# Real control-dominated systems take their events from the environment one
# at a time, so the event loop cannot leave the uP core — exactly the
# structural property that frustrates hardware/software partitioning.
func nextevent(seed) {
	seed = seed ^ (seed << 13);
	seed = seed ^ (seed >> 17);
	seed = seed ^ (seed << 5);
	evreg = seed;
	return seed;
}

func main() {
	var i; var seed; var ev; var tmo;

	state = 0; crc = 0;
	seed = 5;
	for i = 0; i < NEV; i = i + 1 {
		seed = nextevent(seed);
		ev = evreg & 7;
		tmo = (evreg >> 3) & 1;

		# A state machine with data-dependent branching everywhere:
		# almost no straight-line computation for a datapath to chew on.
		if state == 0 {
			if ev == 1 { state = 1; } else {
				if ev == 5 { state = 3; resets = resets + 1; }
			}
		} else {
			if state == 1 {
				if tmo { state = 0; retries = retries + 1; } else {
					if ev == 2 { state = 2; } else {
						if ev == 7 { state = 3; }
					}
				}
			} else {
				if state == 2 {
					if ev == 3 { accepted = accepted + 1; state = 0; } else {
						if ev == 4 { rejected = rejected + 1; state = 1; } else {
							if tmo { state = 3; }
						}
					}
				} else {
					# error state: drain until a reset event
					if ev == 0 { state = 0; resets = resets + 1; }
				}
			}
		}
		crc = (crc ^ (state + ev)) & 65535;
	}
}
`
