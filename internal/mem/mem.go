// Package mem models the main-memory core of the system ("analytical
// models for main memory energy consumption", paper §3.5). The model is
// per-access: each word read or written costs a fixed energy and latency
// taken from the technology library; the system's Table 1 "mem" column is
// this core's accumulated energy.
package mem

import (
	"lppart/internal/tech"
	"lppart/internal/units"
)

// Memory is a main-memory core with access accounting.
type Memory struct {
	T      tech.MemoryTech
	Reads  int64 // words read
	Writes int64 // words written
}

// New returns a memory core using the library's memory technology.
func New(lib *tech.Library) *Memory { return &Memory{T: lib.Memory} }

// Read accounts n words read and returns the stall cycles incurred.
func (m *Memory) Read(words int) (cycles int) {
	m.Reads += int64(words)
	return m.T.LatencyCycles * words
}

// Write accounts n words written and returns the stall cycles incurred.
func (m *Memory) Write(words int) (cycles int) {
	m.Writes += int64(words)
	return m.T.LatencyCycles * words
}

// Energy returns the total energy dissipated so far.
func (m *Memory) Energy() units.Energy {
	return units.Energy(float64(m.Reads))*m.T.EReadWord +
		units.Energy(float64(m.Writes))*m.T.EWriteWord
}

// Reset clears the accounting.
func (m *Memory) Reset() { m.Reads, m.Writes = 0, 0 }
