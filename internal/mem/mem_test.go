package mem

import (
	"testing"

	"lppart/internal/tech"
	"lppart/internal/units"
)

func TestMemoryAccounting(t *testing.T) {
	m := New(tech.Default())
	c1 := m.Read(4)
	c2 := m.Write(2)
	if m.Reads != 4 || m.Writes != 2 {
		t.Errorf("reads=%d writes=%d, want 4/2", m.Reads, m.Writes)
	}
	if c1 != 4*m.T.LatencyCycles || c2 != 2*m.T.LatencyCycles {
		t.Errorf("cycles %d/%d, want latency*words", c1, c2)
	}
	want := units.Energy(4)*m.T.EReadWord + units.Energy(2)*m.T.EWriteWord
	if m.Energy() != want {
		t.Errorf("energy %v, want %v", m.Energy(), want)
	}
	m.Reset()
	if m.Reads != 0 || m.Writes != 0 || m.Energy() != 0 {
		t.Error("reset failed")
	}
}

func TestMemoryEnergyMonotone(t *testing.T) {
	m := New(tech.Default())
	prev := m.Energy()
	for i := 0; i < 10; i++ {
		m.Read(1)
		if m.Energy() <= prev {
			t.Fatal("energy must grow with accesses")
		}
		prev = m.Energy()
	}
}
