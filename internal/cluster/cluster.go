// Package cluster shards the dse branch-and-bound across lppartd
// processes: a coordinator cuts one exploration into per-(geometry,
// root-subset) shards — the existing serial-DFS units — fans them out
// over a Runner (in-process or HTTP/JSON), steals stragglers, donates
// finished shards' points back to the still-running ones as pruning
// incumbents, and merges the shard frontiers with dse.Reduce under the
// DESIGN.md §7 dominance ordering. The merged point set is
// byte-identical at any node count and any shard arrival order:
//
//   - the shard plan is a pure function of (task, per-geometry pool
//     sizes), both of which every node computes identically from the
//     same measurement (Plan);
//   - each shard's local frontier depends only on (task, shard) — the
//     donated incumbents prune work, never points, by dse's
//     margin-backed incumbent rule (dse.Config.Incumbents);
//   - the merge is dse.Reduce over the union, whose weak-dominance
//     filter and canonical-Key tie-break are order-free (Merge).
//
// Work counters (configs priced, steals, duplicate runs, broadcasts)
// ARE timing-dependent; they feed the coordinator's Report — metrics
// and benchmarks — and are kept out of the deterministic result body
// by the serving layer.
//
// The package is deliberately clock-free (no timers, no time.Now):
// stealing is opportunistic — an idle executor takes pending work from
// the busiest queue, then duplicates in-flight stragglers — so the
// scheduler's observable behavior depends only on completion order,
// and the package stays inside the repo's nondetsource gate.
package cluster

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"lppart/internal/apps"
	"lppart/internal/behav"
	"lppart/internal/cache"
	"lppart/internal/cdfg"
	"lppart/internal/dse"
	"lppart/internal/tech"
)

// Task is one exploration on the cluster wire: the fully-explicit
// Fig. 1 input tuple plus the design-space axes, self-contained so a
// worker node reconstructs the exact same dse.Prep the coordinator
// planned against. Resource sets travel resolved (no named references)
// and geometries as [6]int dims, both canonical forms the serving
// layer already uses for its cache keys.
type Task struct {
	App          string             `json:"app,omitempty"`
	Source       string             `json:"source,omitempty"`
	F            float64            `json:"f,omitempty"`
	MaxClusters  int                `json:"max_clusters,omitempty"`
	GEQBudget    int                `json:"geq_budget,omitempty"`
	ResourceSets []tech.ResourceSet `json:"resource_sets,omitempty"`
	MaxHW        int                `json:"max_hw,omitempty"`
	Geometries   [][6]int           `json:"geometries,omitempty"`
	Verify       bool               `json:"verify,omitempty"`
}

// Key is the task's canonical SHA-256: the hash of the fully-defaulted
// tuple in declaration order. Every node derives the same key from the
// same task, so it names the task cluster-wide (prep cache, job
// ledger, shard affinity).
func (t *Task) Key() string {
	c := *t
	if c.F == 0 {
		c.F = 1.0
	}
	if c.MaxClusters == 0 {
		c.MaxClusters = 5
	}
	if c.GEQBudget == 0 {
		c.GEQBudget = 16000
	}
	if c.MaxHW == 0 {
		c.MaxHW = 2
	}
	if c.ResourceSets == nil {
		c.ResourceSets = tech.DefaultResourceSets()
	}
	if c.Geometries == nil {
		for _, g := range dse.DefaultGeometries() {
			c.Geometries = append(c.Geometries, [6]int{
				g[0].Sets, g[0].Assoc, g[0].LineWords,
				g[1].Sets, g[1].Assoc, g[1].LineWords,
			})
		}
	}
	b, err := json.Marshal(struct {
		Kind string `json:"kind"`
		Task `json:"task"`
	}{Kind: "cluster-task/v1", Task: c})
	if err != nil {
		panic("cluster: task not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Resolve parses and measures the task: the application profiled,
// traced and priced into a dse.Prep, plus the dse.Config carrying the
// partitioning knobs. maxInstrs bounds the served simulation and
// maxSourceBytes the served source text (0: the behav default), the
// same guards the serving layer applies to every other endpoint.
func (t *Task) Resolve(ctx context.Context, maxInstrs int64, maxSourceBytes int) (*dse.Prep, dse.Config, error) {
	var cfg dse.Config
	var prog *behav.Program
	var err error
	switch {
	case t.App != "" && t.Source != "":
		return nil, cfg, fmt.Errorf("cluster: app and source are mutually exclusive")
	case t.App != "":
		a, aerr := apps.ByName(t.App)
		if aerr != nil {
			return nil, cfg, aerr
		}
		prog, err = a.Parse()
	case t.Source != "":
		if maxSourceBytes <= 0 {
			maxSourceBytes = behav.DefaultMaxSourceBytes
		}
		prog, err = behav.ParseLimited("task", t.Source, maxSourceBytes)
	default:
		return nil, cfg, fmt.Errorf("cluster: task needs app or source")
	}
	if err != nil {
		return nil, cfg, err
	}
	ir, err := cdfg.Build(prog)
	if err != nil {
		return nil, cfg, err
	}
	for _, d := range t.Geometries {
		ic := cache.Config{Sets: d[0], Assoc: d[1], LineWords: d[2]}
		dc := cache.Config{Sets: d[3], Assoc: d[4], LineWords: d[5], WriteBack: true}
		cfg.Geometries = append(cfg.Geometries, [2]cache.Config{ic, dc})
	}
	cfg.MaxHW = t.MaxHW
	cfg.Workers = 1 // a shard IS the unit of parallelism; inside it stays serial
	cfg.Sys.MaxInstrs = maxInstrs
	cfg.Sys.Part.F = t.F
	cfg.Sys.Part.MaxClusters = t.MaxClusters
	cfg.Sys.Part.GEQBudget = t.GEQBudget
	cfg.Sys.Part.ResourceSets = t.ResourceSets
	cfg.Sys.Part.Verify = t.Verify
	p, err := dse.Prepare(ctx, ir, cfg)
	if err != nil {
		return nil, cfg, err
	}
	return p, cfg, nil
}

// prepEntry is one resolved task in the PrepCache.
type prepEntry struct {
	prep *dse.Prep
	cfg  dse.Config
	err  error
	done chan struct{} // closed when prep/err are set
	elem *list.Element
}

// PrepCache memoizes Task.Resolve by task key: a worker node serving
// many shards of one exploration measures the application once, and
// concurrent shards of the same task coalesce onto a single
// measurement (per-entry latch, the jobs-table analogue of the serve
// singleflight). The cache is a small bounded LRU — preps hold the
// trace-derived baselines and the schedule/binding memo, so a handful
// of entries covers a fleet's working set.
type PrepCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*prepEntry
	order   *list.List // front = most recent
}

// NewPrepCache returns a cache bounded to max resolved tasks (<= 0: 4).
func NewPrepCache(max int) *PrepCache {
	if max <= 0 {
		max = 4
	}
	return &PrepCache{max: max, entries: make(map[string]*prepEntry), order: list.New()}
}

// Get returns the resolved prep for the task, measuring it on a miss.
// Exactly one caller resolves each distinct key; the rest wait on the
// same entry. Failed resolutions are not cached (the next caller
// retries), matching the serve cache's only-successes rule.
func (c *PrepCache) Get(ctx context.Context, t *Task, maxInstrs int64, maxSourceBytes int) (*dse.Prep, dse.Config, error) {
	key := t.Key()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		select {
		case <-e.done:
			return e.prep, e.cfg, e.err
		case <-ctx.Done():
			return nil, dse.Config{}, ctx.Err()
		}
	}
	e := &prepEntry{done: make(chan struct{})}
	e.elem = c.order.PushFront(key)
	c.entries[key] = e
	for c.order.Len() > c.max {
		back := c.order.Back()
		delete(c.entries, back.Value.(string))
		c.order.Remove(back)
	}
	c.mu.Unlock()

	e.prep, e.cfg, e.err = t.Resolve(ctx, maxInstrs, maxSourceBytes)
	if e.err != nil {
		c.mu.Lock()
		// Only evict if this entry still owns the key (it may already
		// have been LRU-evicted by later inserts).
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.order.Remove(e.elem)
		}
		c.mu.Unlock()
	}
	close(e.done)
	return e.prep, e.cfg, e.err
}

// Len returns the cache occupancy (including in-flight resolutions).
func (c *PrepCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
