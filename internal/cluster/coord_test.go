package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"lppart/internal/dse"
)

// resolveApp measures a built-in application once for coordinator
// tests.
func resolveApp(t *testing.T, app string) (*Task, *dse.Prep, dse.Config) {
	t.Helper()
	task := &Task{App: app}
	p, cfg, err := task.Resolve(context.Background(), 0, 0)
	if err != nil {
		t.Fatalf("Resolve(%s): %v", app, err)
	}
	return task, p, cfg
}

func poolSizesOf(p *dse.Prep) []int {
	sizes := make([]int, len(p.Geoms))
	for gi := range p.Geoms {
		sizes[gi] = p.PoolSize(gi)
	}
	return sizes
}

func pointsBytes(t *testing.T, pts []dse.Point) []byte {
	t.Helper()
	b, err := json.Marshal(pts)
	if err != nil {
		t.Fatalf("marshal points: %v", err)
	}
	return b
}

// TestCoordinatorMatchesExplore is the subsystem's headline contract:
// a coordinated run — one peer or three, stealing on, sharing on —
// merges to the same bytes as the plain dse exploration.
func TestCoordinatorMatchesExplore(t *testing.T) {
	task, p, cfg := resolveApp(t, "engine")
	whole, err := dse.ExplorePrep(context.Background(), p, cfg)
	if err != nil {
		t.Fatalf("ExplorePrep: %v", err)
	}
	want := pointsBytes(t, whole.Points)
	runner := &LocalRunner{Prep: p, Cfg: cfg}
	sizes := poolSizesOf(p)

	for _, peers := range [][]string{nil, {"n1", "n2", "n3"}} {
		for _, spg := range []int{1, 2, 3} {
			pts, rep, err := Run(context.Background(), runner, *task, sizes,
				Options{Peers: peers, ShardsPerGeom: spg})
			if err != nil {
				t.Fatalf("Run(peers=%d, spg=%d): %v", len(peers), spg, err)
			}
			if got := pointsBytes(t, pts); string(got) != string(want) {
				t.Fatalf("Run(peers=%d, spg=%d): merged points differ from ExplorePrep", len(peers), spg)
			}
			if rep.Shards == 0 || rep.PeerShards == nil {
				t.Fatalf("Run(peers=%d, spg=%d): empty report %+v", len(peers), spg, rep)
			}
		}
	}
}

// TestCoordinatorSharingReducesWork pins the bound-sharing win: with a
// single (serial, deterministic) executor, donating finished shards'
// points must cut priced configurations versus the no-sharing run,
// without changing the merged points.
func TestCoordinatorSharingReducesWork(t *testing.T) {
	task, p, cfg := resolveApp(t, "MPG")
	runner := &LocalRunner{Prep: p, Cfg: cfg}
	sizes := poolSizesOf(p)
	opts := Options{ShardsPerGeom: 2}

	ptsShared, repShared, err := Run(context.Background(), runner, *task, sizes, opts)
	if err != nil {
		t.Fatalf("Run(shared): %v", err)
	}
	opts.DisableSharing = true
	ptsPlain, repPlain, err := Run(context.Background(), runner, *task, sizes, opts)
	if err != nil {
		t.Fatalf("Run(no sharing): %v", err)
	}
	if string(pointsBytes(t, ptsShared)) != string(pointsBytes(t, ptsPlain)) {
		t.Fatal("bound-sharing changed the merged points")
	}
	if repShared.Configs >= repPlain.Configs {
		t.Errorf("sharing did not reduce priced configs: %d (shared) >= %d (plain)",
			repShared.Configs, repPlain.Configs)
	}
	if repShared.Broadcasts == 0 {
		t.Error("sharing run recorded no incumbent broadcasts")
	}
	if repShared.PrunedRemote == 0 {
		t.Error("sharing run recorded no remote prunes")
	}
	if repPlain.Broadcasts != 0 || repPlain.PrunedRemote != 0 {
		t.Errorf("no-sharing run still broadcast: %+v", repPlain)
	}
}

// fakeRunner serves synthetic shard results and scriptable failures.
type fakeRunner struct {
	mu    sync.Mutex
	fail  map[string]int // peer → remaining failures
	calls map[string]int
	block chan struct{} // when non-nil, peer "slow" parks here until close
}

func (f *fakeRunner) RunShard(ctx context.Context, peer string, req *ShardRequest) (*ShardResult, error) {
	f.mu.Lock()
	f.calls[peer]++
	shouldFail := f.fail[peer] > 0
	if shouldFail {
		f.fail[peer]--
	}
	block := f.block
	f.mu.Unlock()
	if shouldFail {
		return nil, errors.New("synthetic dispatch failure")
	}
	if peer == "slow" && block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &ShardResult{Index: req.Shard.Index, Geom: req.Shard.Geom, Configs: 1}, nil
}

// TestCoordinatorRetriesFailures: a peer that fails its first
// dispatches must not sink the run — its shards migrate to the other
// peer and complete. Stealing is off so the failing peer is guaranteed
// to reach its own shards (the failure count stays deterministic).
func TestCoordinatorRetriesFailures(t *testing.T) {
	fr := &fakeRunner{fail: map[string]int{"bad": 2}, calls: map[string]int{}}
	_, rep, err := Run(context.Background(), fr, Task{App: "x"}, []int{4},
		Options{Peers: []string{"bad", "good"}, ShardsPerGeom: 4, DisableSteal: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failures != 2 {
		t.Errorf("Failures: got %d, want 2", rep.Failures)
	}
	total := 0
	for _, ps := range rep.PeerShards {
		total += ps.Shards
	}
	if total != rep.Shards || rep.Shards != 4 {
		t.Errorf("accepted %d of %d shards (%+v)", total, rep.Shards, rep.PeerShards)
	}
}

// TestCoordinatorDeadPeerAborts: a shard failing everywhere exhausts
// its budget and surfaces the last error.
func TestCoordinatorDeadPeerAborts(t *testing.T) {
	fr := &fakeRunner{fail: map[string]int{"dead": 1 << 30}, calls: map[string]int{}}
	_, _, err := Run(context.Background(), fr, Task{App: "x"}, []int{2},
		Options{Peers: []string{"dead"}, ShardsPerGeom: 2, MaxFailures: 3})
	if err == nil {
		t.Fatal("Run succeeded with an always-failing sole peer")
	}
}

// TestCoordinatorStealsFromStraggler: with one peer parked, the other
// must steal its queue and duplicate its in-flight shard, and the
// merge must accept whichever result lands first.
func TestCoordinatorStealsFromStraggler(t *testing.T) {
	block := make(chan struct{})
	fr := &fakeRunner{calls: map[string]int{}, block: block}
	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		defer close(done)
		_, rep, runErr = Run(context.Background(), fr, Task{App: "x"}, []int{8},
			Options{Peers: []string{"fast", "slow"}, ShardsPerGeom: 8,
				OnShardDone: func(d, total int) {
					if d == total {
						close(block) // unpark the straggler only after the race is decided
					}
				}})
	}()
	<-done
	if runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}
	if rep.Steals == 0 {
		t.Errorf("fast peer never stole from the parked peer's queue: %+v", rep)
	}
	total := 0
	for _, ps := range rep.PeerShards {
		total += ps.Shards
	}
	if total != rep.Shards {
		t.Errorf("accepted %d of %d shards", total, rep.Shards)
	}
}

// TestCoordinatorCancel: context cancellation aborts the run with the
// context's error.
func TestCoordinatorCancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	fr := &fakeRunner{calls: map[string]int{}, block: block}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := Run(ctx, fr, Task{App: "x"}, []int{2},
			Options{Peers: []string{"slow"}, ShardsPerGeom: 2})
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancel: got %v, want context.Canceled", err)
	}
}

// TestMergeOrderFree: merging the same shard results in any order
// yields identical bytes — the coordinator's determinism keystone,
// exercised here without timing by permuting results explicitly.
func TestMergeOrderFree(t *testing.T) {
	_, p, cfg := resolveApp(t, "engine")
	var results []*ShardResult
	for gi := range p.Geoms {
		n := p.PoolSize(gi)
		for r := 0; r < n; r++ {
			res, err := RunShard(context.Background(), p, cfg, &ShardRequest{
				Shard: Shard{Index: len(results), Geom: gi, Roots: []int{r}},
			})
			if err != nil {
				t.Fatalf("RunShard: %v", err)
			}
			results = append(results, res)
		}
	}
	want := pointsBytes(t, Merge(results))
	for trial := 0; trial < 3; trial++ {
		perm := make([]*ShardResult, len(results))
		for i, r := range results {
			perm[(i*7+trial)%len(results)] = r
		}
		kept := perm[:0]
		for _, r := range perm {
			if r != nil {
				kept = append(kept, r)
			}
		}
		if got := pointsBytes(t, Merge(kept)); string(got) != string(want) {
			t.Fatalf("trial %d: merge depends on result order", trial)
		}
	}
}

// TestPrepCacheCoalesces: concurrent Gets of one task resolve once.
func TestPrepCacheCoalesces(t *testing.T) {
	pc := NewPrepCache(2)
	task := &Task{App: "engine"}
	var wg sync.WaitGroup
	preps := make([]*dse.Prep, 8)
	for i := range preps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := pc.Get(context.Background(), task, 0, 0)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			preps[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(preps); i++ {
		if preps[i] != preps[0] {
			t.Fatal("concurrent Gets resolved the task more than once")
		}
	}
	if pc.Len() != 1 {
		t.Fatalf("cache length: got %d, want 1", pc.Len())
	}
	if _, _, err := pc.Get(context.Background(), &Task{App: "no-such-app"}, 0, 0); err == nil {
		t.Fatal("Get of unknown app succeeded")
	}
	if pc.Len() != 1 {
		t.Fatalf("failed resolution was cached: length %d", pc.Len())
	}
}

// TestTaskKeyCanonical: defaults spelled out and defaults omitted hash
// identically; different tuples do not.
func TestTaskKeyCanonical(t *testing.T) {
	a := Task{App: "MPG"}
	b := Task{App: "MPG", F: 1.0, MaxClusters: 5, GEQBudget: 16000, MaxHW: 2}
	if a.Key() != b.Key() {
		t.Fatal("defaulted and explicit tasks hash differently")
	}
	c := Task{App: "MPG", MaxHW: 3}
	if a.Key() == c.Key() {
		t.Fatal("distinct tuples share a key")
	}
}
