package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndOrderFree(t *testing.T) {
	a := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	b := NewRing([]string{"http://n3", "http://n1", "http://n2", "http://n1", ""}, 64)
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("Len: got %d and %d, want 3 (duplicates and empties dropped)", a.Len(), b.Len())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q depends on peer list order: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	count := map[string]int{}
	for i := 0; i < 900; i++ {
		count[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, p := range r.Peers() {
		if count[p] < 90 { // 10% of fair share 300 — a gross-imbalance tripwire
			t.Errorf("peer %s owns only %d of 900 keys", p, count[p])
		}
	}
}

func TestRingOwnerRankDistinct(t *testing.T) {
	r := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		seen := map[string]bool{}
		for rank := 0; rank < 3; rank++ {
			p := r.OwnerRank(key, rank)
			if seen[p] {
				t.Fatalf("key %q rank %d repeats owner %q", key, rank, p)
			}
			seen[p] = true
		}
		if r.OwnerRank(key, 3) != r.OwnerRank(key, 0) {
			t.Fatalf("key %q: rank Len() should wrap to the primary", key)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("empty ring owner: got %q, want empty", got)
	}
}
