package cluster

import (
	"lppart/internal/dse"
)

// Merge folds shard frontiers into the exploration's frontier:
// dse.Reduce over the union of all shard points, IDs reassigned in the
// reduced order. Reduce's weak-dominance filter plus canonical-Key
// tie-break (DESIGN.md §7, §11) make the output independent of the
// results' arrival order AND of how the plan was cut — any shard set
// covering every (geometry, root) exactly once merges to the same
// bytes as the unsharded run. nil results (not-yet-finished slots) are
// skipped so a partial merge is well-defined, though only a complete
// plan's merge is the exploration's frontier.
func Merge(results []*ShardResult) []dse.Point {
	var all []dse.Point
	for _, r := range results {
		if r == nil {
			continue
		}
		all = append(all, r.Points...)
	}
	pts := dse.Reduce(all)
	for i := range pts {
		pts[i].ID = i
	}
	return pts
}
