package cluster

// Shard is one unit of distributed search: geometry Geom of the task's
// grid, restricted to the root branches in Roots (dse.Config.Roots).
// A plan's shards cover every (geometry, root) pair exactly once, so
// merging their locally-reduced frontiers with dse.Reduce reproduces
// the unsharded exploration byte for byte; the empty configuration is
// re-derived by every shard and deduplicated by the merge's canonical
// Key. Roots is never nil — an empty slice is a valid shard that
// contributes only the geometry's all-software point (a geometry with
// an empty candidate pool plans exactly one such shard).
type Shard struct {
	Index int   `json:"index"` // position in the plan, the shard's identity
	Geom  int   `json:"geom"`
	Roots []int `json:"roots"`
}

// Plan cuts an exploration into shards: per geometry, the candidate
// pool's root branches are dealt round-robin into min(shardsPerGeom,
// poolSize) groups (shardsPerGeom <= 0: 1). Round-robin — not
// contiguous blocks — because Fig. 3 pre-selection ranks the pool by
// score, and rank correlates strongly with subtree weight: dealing
// adjacent ranks to different shards balances the plan without
// measuring anything, keeping Plan a pure function of (poolSizes,
// shardsPerGeom) that every node computes identically.
func Plan(poolSizes []int, shardsPerGeom int) []Shard {
	if shardsPerGeom <= 0 {
		shardsPerGeom = 1
	}
	var shards []Shard
	for gi, n := range poolSizes {
		groups := shardsPerGeom
		if groups > n {
			groups = n
		}
		if groups < 1 {
			groups = 1
		}
		for r := 0; r < groups; r++ {
			roots := []int{}
			for j := r; j < n; j += groups {
				roots = append(roots, j)
			}
			shards = append(shards, Shard{Index: len(shards), Geom: gi, Roots: roots})
		}
	}
	return shards
}
