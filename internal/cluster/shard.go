package cluster

import (
	"context"

	"lppart/internal/dse"
)

// ShardRequest is POST /v1/shard on the wire: the task (so any node
// can resolve the measurement), the shard to run, and the incumbents
// known to the coordinator at dispatch time. Incumbents prune work,
// never points (dse's margin-backed rule), so two dispatches of the
// same shard with different incumbent snapshots return the same
// Points.
type ShardRequest struct {
	Task       Task            `json:"task"`
	Shard      Shard           `json:"shard"`
	Incumbents []dse.Incumbent `json:"incumbents,omitempty"`
}

// ShardResult is a finished shard: its locally-reduced frontier points
// (carrying the canonical Keys the merge tie-breaks on; decision
// trails do not travel — with Task.Verify they are audited shard-side
// by dse.ExploreShard before the result leaves the node) plus the
// shard's work counters for the coordinator's Report.
type ShardResult struct {
	Index        int         `json:"index"`
	Geom         int         `json:"geom"`
	Points       []dse.Point `json:"points"`
	Configs      int64       `json:"configs"`
	Pruned       int64       `json:"pruned"`
	PrunedRemote int64       `json:"pruned_remote"`
	PairEvals    int64       `json:"pair_evals"`
}

// RunShard executes one shard against a resolved prep: the serial DFS
// over the shard's root branches, seeded with the request's
// incumbents.
func RunShard(ctx context.Context, p *dse.Prep, cfg dse.Config, req *ShardRequest) (*ShardResult, error) {
	scfg := cfg
	scfg.Roots = req.Shard.Roots
	if scfg.Roots == nil {
		scfg.Roots = []int{} // nil would mean unrestricted; a shard is always restricted
	}
	scfg.Incumbents = req.Incumbents
	f, err := dse.ExploreShard(ctx, p, req.Shard.Geom, scfg)
	if err != nil {
		return nil, err
	}
	return &ShardResult{
		Index:        req.Shard.Index,
		Geom:         req.Shard.Geom,
		Points:       f.Points,
		Configs:      f.Stats.Configs,
		Pruned:       f.Stats.Pruned,
		PrunedRemote: f.Stats.PrunedRemote,
		PairEvals:    f.Stats.PairEvals,
	}, nil
}
