package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring over peer addresses: every node of a
// cluster, given the same peer list, maps the same canonical request
// key to the same owner, so the per-node LRU and memostore cache tiers
// shard cleanly — one key's results concentrate on one node instead of
// being recomputed everywhere. Virtual nodes (replicas) smooth the
// key-space split; SHA-256 keeps placement independent of Go's map or
// hash seed, so the mapping is stable across processes and restarts.
type Ring struct {
	peers  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	peer int // index into peers
}

// NewRing builds a ring over the peers with the given virtual-node
// count per peer (<= 0: 64). Duplicate and empty peer entries are
// dropped; the peer order given does not affect placement.
func NewRing(peers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	seen := make(map[string]bool, len(peers))
	r := &Ring{}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
	}
	sort.Strings(r.peers)
	for pi, p := range r.peers {
		for v := 0; v < replicas; v++ {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			sum := sha256.Sum256(append([]byte(p+"#"), buf[:]...))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), peer: pi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.peers[r.points[i].peer] < r.peers[r.points[j].peer]
	})
	return r
}

// Len returns the number of distinct peers on the ring.
func (r *Ring) Len() int { return len(r.peers) }

// Peers returns the ring's peers in sorted order.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Owner returns the peer owning the key — the first ring point at or
// after the key's hash, wrapping. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	return r.OwnerRank(key, 0)
}

// OwnerRank returns the key's rank-th distinct owner in ring order:
// rank 0 is the primary, rank 1 the first distinct successor (the
// natural failover target), and so on. rank >= Len() wraps.
func (r *Ring) OwnerRank(key string, rank int) string {
	if len(r.points) == 0 {
		return ""
	}
	if rank < 0 {
		rank = 0
	}
	rank %= len(r.peers)
	sum := sha256.Sum256([]byte(key))
	h := binary.BigEndian.Uint64(sum[:8])
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, rank+1)
	for i := 0; ; i++ {
		pt := r.points[(start+i)%len(r.points)]
		if seen[pt.peer] {
			continue
		}
		seen[pt.peer] = true
		if len(seen) == rank+1 {
			return r.peers[pt.peer]
		}
	}
}
