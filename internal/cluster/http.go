package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// HTTPRunner executes shards by POSTing /v1/shard to worker peers.
// The peer string is the worker's base URL ("http://127.0.0.1:8095");
// when it equals Self, the shard short-circuits to Local instead of
// re-entering this node's own HTTP admission queue (at one worker that
// wait would deadlock the coordinator against itself).
type HTTPRunner struct {
	// Client overrides the transport (nil: http.DefaultClient).
	// Deadlines come from the per-run context, not the client.
	Client *http.Client
	// Self is this node's own peer URL; Local runs its shards.
	Self  string
	Local Runner
}

// maxShardResponseBytes caps a worker's shard response; a shard result
// is a reduced frontier (typically well under a megabyte), so the cap
// only guards against a confused or hostile endpoint.
const maxShardResponseBytes = 64 << 20

// RunShard implements Runner. Any non-200 answer is an error — the
// coordinator's retry/steal loop owns failover, so the runner stays a
// single-attempt transport.
func (h *HTTPRunner) RunShard(ctx context.Context, peer string, req *ShardRequest) (*ShardResult, error) {
	if peer == h.Self && h.Local != nil {
		return h.Local.RunShard(ctx, peer, req)
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode shard request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/shard", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hc := h.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d on %s: %w", req.Shard.Index, peer, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponseBytes))
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d on %s: read: %w", req.Shard.Index, peer, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: shard %d on %s: HTTP %d: %s",
			req.Shard.Index, peer, resp.StatusCode, firstLine(raw))
	}
	var res ShardResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("cluster: shard %d on %s: decode: %w", req.Shard.Index, peer, err)
	}
	return &res, nil
}

// firstLine trims an error body for the wrapped message.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
