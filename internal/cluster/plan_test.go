package cluster

import (
	"reflect"
	"testing"
)

// TestPlanCoversEveryRootOnce is the plan's partition contract: for
// any split width, each geometry's roots are covered exactly once.
func TestPlanCoversEveryRootOnce(t *testing.T) {
	pools := []int{7, 1, 0, 4}
	for _, spg := range []int{1, 2, 3, 10} {
		shards := Plan(pools, spg)
		seen := make([]map[int]int, len(pools))
		for gi := range seen {
			seen[gi] = map[int]int{}
		}
		for i, sh := range shards {
			if sh.Index != i {
				t.Fatalf("spg=%d: shard %d carries Index %d", spg, i, sh.Index)
			}
			if sh.Roots == nil {
				t.Fatalf("spg=%d: shard %d has nil Roots (must be non-nil on the wire)", spg, i)
			}
			for _, r := range sh.Roots {
				seen[sh.Geom][r]++
			}
		}
		for gi, n := range pools {
			for r := 0; r < n; r++ {
				if seen[gi][r] != 1 {
					t.Fatalf("spg=%d: geometry %d root %d covered %d times", spg, gi, r, seen[gi][r])
				}
			}
			if len(seen[gi]) != n {
				t.Fatalf("spg=%d: geometry %d covers %d roots, want %d", spg, gi, len(seen[gi]), n)
			}
		}
	}
}

// TestPlanShardCounts pins the clamp: a geometry never splits wider
// than its pool, and an empty pool still plans one (empty-roots)
// shard so the geometry's all-software point is produced.
func TestPlanShardCounts(t *testing.T) {
	shards := Plan([]int{5, 2, 0}, 3)
	perGeom := map[int]int{}
	for _, sh := range shards {
		perGeom[sh.Geom]++
	}
	want := map[int]int{0: 3, 1: 2, 2: 1}
	if !reflect.DeepEqual(perGeom, want) {
		t.Fatalf("shard counts per geometry: got %v, want %v", perGeom, want)
	}
}

// TestPlanDeterministic pins the plan bytes: every node of a cluster
// computes the schedule from (poolSizes, shardsPerGeom) alone.
func TestPlanDeterministic(t *testing.T) {
	a := Plan([]int{6, 3}, 2)
	b := Plan([]int{6, 3}, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical inputs planned differently")
	}
	want := []Shard{
		{Index: 0, Geom: 0, Roots: []int{0, 2, 4}},
		{Index: 1, Geom: 0, Roots: []int{1, 3, 5}},
		{Index: 2, Geom: 1, Roots: []int{0, 2}},
		{Index: 3, Geom: 1, Roots: []int{1}},
	}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("plan: got %v, want %v", a, want)
	}
}
