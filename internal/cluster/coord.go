package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"lppart/internal/dse"
)

// Runner executes one shard on one peer. Implementations: LocalRunner
// (in-process, the coordinator-only degenerate cluster) and HTTPRunner
// (POST /v1/shard to a remote lppartd). RunShard must be safe for
// concurrent use; errors are retried by the coordinator against the
// same or another peer, so they must be side-effect free.
type Runner interface {
	RunShard(ctx context.Context, peer string, req *ShardRequest) (*ShardResult, error)
}

// Options tunes one coordinated exploration.
type Options struct {
	// Peers are the executor identities (worker base URLs for an
	// HTTPRunner). Empty means one anonymous local executor.
	Peers []string
	// ShardsPerGeom is how many root-subset shards each geometry is cut
	// into (<= 0: one per peer). More shards than peers keeps the plan
	// steal-friendly; the merged output is identical at any value.
	ShardsPerGeom int
	// DisableSharing stops donating finished shards' points as pruning
	// incumbents (the no-sharing baseline of the bench comparisons).
	DisableSharing bool
	// DisableSteal pins every shard to its home peer: no queue
	// stealing, no duplicate runs of stragglers.
	DisableSteal bool
	// MaxFailures bounds one shard's dispatch failures before the
	// exploration aborts (<= 0: 3 per peer).
	MaxFailures int
	// OnShardDone, when set, is called after each shard completes with
	// (done, total) counts. It may be called concurrently.
	OnShardDone func(done, total int)
}

// PeerShards counts one peer's accepted shard results.
type PeerShards struct {
	Peer   string `json:"peer"`
	Shards int    `json:"shards"`
}

// Report is the coordinator's work accounting. Everything here is
// timing-dependent (stealing, duplicate suppression and incumbent
// arrival all race completions), so it feeds metrics and benchmarks
// and is kept out of deterministic response bodies — only the merged
// points are deterministic.
type Report struct {
	Shards     int `json:"shards"`
	Steals     int `json:"steals"`     // shards taken from another peer's queue
	Duplicates int `json:"duplicates"` // straggler re-runs whose result lost the race
	Broadcasts int `json:"broadcasts"` // dispatches carrying a non-empty incumbent set
	Failures   int `json:"failures"`   // dispatch errors (each retried until the budget)
	// Work counters summed over accepted results.
	Configs      int64        `json:"configs"`
	Pruned       int64        `json:"pruned"`
	PrunedRemote int64        `json:"pruned_remote"`
	PairEvals    int64        `json:"pair_evals"`
	PeerShards   []PeerShards `json:"peer_shards"`
}

// coordState is the scheduler's shared state; one mutex, one condition
// variable, no timers — executors block on the cond only when no
// runnable work exists for them, and every completion broadcasts.
type coordState struct {
	mu   sync.Mutex
	cond *sync.Cond

	peers   []string
	plan    []Shard
	queues  map[string][]int // peer → pending shard indices
	running map[int]int      // shard index → concurrent attempt count
	done    map[int]bool
	fails   map[int]int             // shard index → total dispatch failures
	failed  map[int]map[string]bool // shard index → peers that failed it
	dupped  map[int]bool            // straggler already duplicated once
	results []*ShardResult
	incs    []dse.Incumbent
	fatal   error

	report    Report
	peerTally map[string]int
	doneCount int
}

// Run coordinates one exploration over the runner: plans the shards,
// fans them out per peer, steals and duplicates stragglers, donates
// finished points as incumbents, and merges the shard frontiers. The
// returned points are byte-deterministic (any peer count, any timing);
// the Report is not. poolSizes must come from the same resolved prep
// the runner's peers use — Prep.PoolSize per geometry.
func Run(ctx context.Context, runner Runner, task Task, poolSizes []int, opts Options) ([]dse.Point, *Report, error) {
	if len(poolSizes) == 0 {
		return nil, nil, fmt.Errorf("cluster: no geometries to plan")
	}
	peers := opts.Peers
	if len(peers) == 0 {
		peers = []string{""}
	}
	if opts.ShardsPerGeom <= 0 {
		opts.ShardsPerGeom = len(peers)
	}
	maxFail := opts.MaxFailures
	if maxFail <= 0 {
		maxFail = 3 * len(peers)
	}
	st := &coordState{
		peers:     peers,
		plan:      Plan(poolSizes, opts.ShardsPerGeom),
		queues:    make(map[string][]int, len(peers)),
		running:   make(map[int]int),
		done:      make(map[int]bool),
		fails:     make(map[int]int),
		failed:    make(map[int]map[string]bool),
		dupped:    make(map[int]bool),
		peerTally: make(map[string]int, len(peers)),
	}
	st.cond = sync.NewCond(&st.mu)
	st.results = make([]*ShardResult, len(st.plan))
	st.report.Shards = len(st.plan)
	for _, sh := range st.plan {
		home := peers[sh.Index%len(peers)]
		st.queues[home] = append(st.queues[home], sh.Index)
	}

	// A cond.Wait cannot watch ctx; this watcher turns cancellation
	// into a fatal wake-up.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			st.mu.Lock()
			if st.fatal == nil {
				st.fatal = ctx.Err()
			}
			st.cond.Broadcast()
			st.mu.Unlock()
		case <-watchDone:
		}
	}()
	defer close(watchDone)

	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			for {
				idx, incs := st.next(peer, &opts)
				if idx < 0 {
					return
				}
				req := &ShardRequest{Task: task, Shard: st.plan[idx], Incumbents: incs}
				res, err := runner.RunShard(ctx, peer, req)
				st.complete(peer, idx, res, err, maxFail, opts.OnShardDone)
			}
		}(peer)
	}
	wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fatal != nil {
		return nil, nil, st.fatal
	}
	for peer, n := range st.peerTally { //lint:ordered tally is sorted before it is reported
		st.report.PeerShards = append(st.report.PeerShards, PeerShards{Peer: peer, Shards: n})
	}
	sort.Slice(st.report.PeerShards, func(i, j int) bool {
		return st.report.PeerShards[i].Peer < st.report.PeerShards[j].Peer
	})
	rep := st.report
	return Merge(st.results), &rep, nil
}

// next blocks until the peer has work or the run ends, returning the
// shard index (-1: run over) and the incumbent snapshot to donate.
func (st *coordState) next(peer string, opts *Options) (int, []dse.Incumbent) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.fatal != nil || st.doneCount == len(st.plan) {
			return -1, nil
		}
		if idx := st.pickLocked(peer, opts); idx >= 0 {
			st.running[idx]++
			return idx, st.donate(opts)
		}
		// Nothing runnable for THIS peer right now: pending work can
		// reappear when an in-flight dispatch fails, and stragglers
		// become duplicable as other peers drain, so block until a
		// completion or failure broadcasts.
		st.cond.Wait()
	}
}

// pickLocked chooses the peer's next shard: its own queue first, then
// a steal from the longest other queue, then a single duplicate run of
// the lowest-indexed in-flight straggler. A peer skips shards it
// already failed — a dead worker must not burn a shard's retry budget
// the healthy peers could spend — unless nothing else is runnable
// anywhere (the desperation pass, which keeps a transiently-failing
// single-peer cluster live).
func (st *coordState) pickLocked(peer string, opts *Options) int {
	if idx := st.takeLocked(peer, peer, false); idx >= 0 {
		return idx
	}
	if !opts.DisableSteal {
		if victim := st.victimLocked(peer, false); victim != "" {
			st.report.Steals++
			return st.takeLocked(peer, victim, false)
		}
		if idx := st.stragglerLocked(peer); idx >= 0 {
			st.dupped[idx] = true
			return idx
		}
	}
	// Desperation: every remaining pending shard is one this peer has
	// failed before. Retry rather than deadlock.
	if idx := st.takeLocked(peer, peer, true); idx >= 0 {
		return idx
	}
	if !opts.DisableSteal {
		if victim := st.victimLocked(peer, true); victim != "" {
			st.report.Steals++
			return st.takeLocked(peer, victim, true)
		}
	}
	return -1
}

// takeLocked removes and returns the first (own queue) or last (steal)
// shard in from's queue the taker may run; -1 if none. retryFailed
// admits shards the taker already failed.
func (st *coordState) takeLocked(taker, from string, retryFailed bool) int {
	q := st.queues[from]
	pick := -1
	if taker == from {
		for i, idx := range q {
			if retryFailed || !st.failed[idx][taker] {
				pick = i
				break
			}
		}
	} else {
		for i := len(q) - 1; i >= 0; i-- {
			if retryFailed || !st.failed[q[i]][taker] {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return -1
	}
	idx := q[pick]
	st.queues[from] = append(q[:pick:pick], q[pick+1:]...)
	return idx
}

// victimLocked finds the peer whose queue holds the most shards the
// thief may run (ties: lexicographically first peer); "" if none.
func (st *coordState) victimLocked(thief string, retryFailed bool) string {
	victim, best := "", 0
	names := make([]string, 0, len(st.queues))
	for name := range st.queues { //lint:ordered names are sorted before selection
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == thief {
			continue
		}
		eligible := 0
		for _, idx := range st.queues[name] {
			if retryFailed || !st.failed[idx][thief] {
				eligible++
			}
		}
		if eligible > best {
			best, victim = eligible, name
		}
	}
	return victim
}

// stragglerLocked picks the lowest-indexed in-flight shard with
// exactly one runner and no duplicate yet — the duplicate races the
// original, first result wins, so a stuck peer cannot stall the merge.
func (st *coordState) stragglerLocked(peer string) int {
	best := -1
	for idx, n := range st.running { //lint:ordered minimum index; order-free
		if n == 1 && !st.done[idx] && !st.dupped[idx] && !st.failed[idx][peer] &&
			(best < 0 || idx < best) {
			best = idx
		}
	}
	return best
}

// donate snapshots the incumbent frontier for a dispatch.
func (st *coordState) donate(opts *Options) []dse.Incumbent {
	if opts.DisableSharing || len(st.incs) == 0 {
		return nil
	}
	st.report.Broadcasts++
	return append([]dse.Incumbent(nil), st.incs...)
}

// complete records one dispatch outcome: the first successful result
// of a shard is accepted (its counters tallied, its points folded into
// the incumbent frontier); later duplicates are discarded. A failure
// re-queues the shard on the next peer round-robin — so a dead
// worker's shards migrate to healthy ones — until the failure budget
// is spent with no attempt still in flight, which aborts the run.
func (st *coordState) complete(peer string, idx int, res *ShardResult, err error,
	maxFail int, onDone func(done, total int)) {
	st.mu.Lock()
	accepted := false
	st.running[idx]--
	if st.running[idx] <= 0 {
		delete(st.running, idx)
	}
	switch {
	case err != nil:
		if !st.done[idx] && st.fatal == nil {
			st.fails[idx]++
			st.report.Failures++
			if st.failed[idx] == nil {
				st.failed[idx] = make(map[string]bool)
			}
			st.failed[idx][peer] = true
			if st.running[idx] == 0 {
				// No surviving attempt: retry elsewhere or give up.
				if st.fails[idx] >= maxFail {
					st.fatal = fmt.Errorf("cluster: shard %d failed %d times, last: %w", idx, st.fails[idx], err)
				} else {
					target := st.peers[st.fails[idx]%len(st.peers)]
					st.queues[target] = append(st.queues[target], idx)
				}
			}
		}
	case st.done[idx]:
		st.report.Duplicates++
	default:
		accepted = true
		st.done[idx] = true
		st.doneCount++
		st.results[idx] = res
		st.peerTally[peer]++
		st.report.Configs += res.Configs
		st.report.Pruned += res.Pruned
		st.report.PrunedRemote += res.PrunedRemote
		st.report.PairEvals += res.PairEvals
		st.incs = foldIncumbents(st.incs, res.Points)
	}
	done, total := st.doneCount, len(st.plan)
	st.cond.Broadcast()
	st.mu.Unlock()
	if accepted && onDone != nil {
		onDone(done, total)
	}
}

// foldIncumbents maintains the donated frontier: each accepted point's
// objectives are inserted unless weakly dominated, evicting entries
// they weakly dominate — the smallest seed set with full pruning
// power.
func foldIncumbents(cur []dse.Incumbent, pts []dse.Point) []dse.Incumbent {
	for _, p := range pts {
		in := dse.Incumbent{Energy: float64(p.Energy), Cycles: p.Cycles, GEQ: p.GEQ}
		covered := false
		for _, c := range cur {
			if c.Energy <= in.Energy && c.Cycles <= in.Cycles && c.GEQ <= in.GEQ {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		kept := cur[:0]
		for _, c := range cur {
			if !(in.Energy <= c.Energy && in.Cycles <= c.Cycles && in.GEQ <= c.GEQ) {
				kept = append(kept, c)
			}
		}
		cur = append(kept, in)
	}
	return cur
}

// LocalRunner executes shards in-process against one resolved prep —
// the coordinator-only cluster, and the Self leg of an HTTPRunner (a
// coordinator must never wait on its own HTTP admission queue for a
// shard it could run directly: at one worker that wait is a deadlock).
type LocalRunner struct {
	Prep *dse.Prep
	Cfg  dse.Config
}

// RunShard implements Runner.
func (l *LocalRunner) RunShard(ctx context.Context, _ string, req *ShardRequest) (*ShardResult, error) {
	return RunShard(ctx, l.Prep, l.Cfg, req)
}
