package cache

import (
	"math/rand"
	"testing"

	"lppart/internal/tech"
)

// refCache is an obviously-correct direct-mapped reference model: a map
// from set index to the resident line's tag and dirty bit.
type refCache struct {
	lineWords int32
	sets      int32
	tags      map[int32]int32
	dirty     map[int32]bool
	hits      int64
	misses    int64
	wbacks    int64
}

func newRefCache(sets, lineWords int) *refCache {
	return &refCache{
		lineWords: int32(lineWords),
		sets:      int32(sets),
		tags:      make(map[int32]int32),
		dirty:     make(map[int32]bool),
	}
}

func (r *refCache) access(addr int32, write bool) {
	line := addr / r.lineWords
	set := line % r.sets
	tag := line / r.sets
	if t, ok := r.tags[set]; ok && t == tag {
		r.hits++
		if write {
			r.dirty[set] = true
		}
		return
	}
	r.misses++
	if _, ok := r.tags[set]; ok && r.dirty[set] {
		r.wbacks++
	}
	r.tags[set] = tag
	r.dirty[set] = write
}

// TestDirectMappedAgainstReference drives the production cache and the
// reference model with identical random streams and requires identical
// hit/miss/write-back counts.
func TestDirectMappedAgainstReference(t *testing.T) {
	lib := tech.Default()
	geoms := []Config{
		{Sets: 4, Assoc: 1, LineWords: 1, WriteBack: true},
		{Sets: 16, Assoc: 1, LineWords: 4, WriteBack: true},
		{Sets: 128, Assoc: 1, LineWords: 8, WriteBack: true},
	}
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range geoms {
		c, err := New("dut", cfg, lib.Cache, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefCache(cfg.Sets, cfg.LineWords)
		for i := 0; i < 50000; i++ {
			var addr int32
			switch rng.Intn(3) {
			case 0: // sequential-ish
				addr = int32(i % 4096)
			case 1: // strided
				addr = int32((i * 17) % 8192)
			default: // random
				addr = rng.Int31n(1 << 16)
			}
			write := rng.Intn(4) == 0
			c.Access(addr, write)
			ref.access(addr, write)
		}
		if c.Stats.Hits != ref.hits || c.Stats.Misses != ref.misses {
			t.Errorf("%+v: dut hits/misses %d/%d, ref %d/%d",
				cfg, c.Stats.Hits, c.Stats.Misses, ref.hits, ref.misses)
		}
		if c.Stats.WriteBacks != ref.wbacks {
			t.Errorf("%+v: dut writebacks %d, ref %d", cfg, c.Stats.WriteBacks, ref.wbacks)
		}
	}
}

// TestFullyAssociativeNeverWorseThanDirectMapped: with equal capacity, a
// fully associative LRU cache's miss count is never higher than a
// direct-mapped one's on the same trace... except for pathological LRU
// traces; we use a looping working-set trace where the inclusion holds.
func TestFullyAssociativeOnWorkingSet(t *testing.T) {
	lib := tech.Default()
	dm, _ := New("dm", Config{Sets: 64, Assoc: 1, LineWords: 1, WriteBack: true}, lib.Cache, nil, nil)
	fa, _ := New("fa", Config{Sets: 1, Assoc: 64, LineWords: 1, WriteBack: true}, lib.Cache, nil, nil)
	// A 48-word working set with a conflict-heavy layout: addresses
	// spaced by 64 collide pairwise in the direct-mapped cache but fit
	// comfortably in the fully associative one.
	for pass := 0; pass < 10; pass++ {
		for i := int32(0); i < 24; i++ {
			dm.Access(i*64, false)
			fa.Access(i*64, false)
			dm.Access(i*64+1, false)
			fa.Access(i*64+1, false)
		}
	}
	if fa.Stats.Misses > dm.Stats.Misses {
		t.Errorf("fully associative missed %d > direct-mapped %d on a fitting working set",
			fa.Stats.Misses, dm.Stats.Misses)
	}
	if fa.Stats.Misses >= fa.Stats.Accesses/2 {
		t.Errorf("working set fits: fa misses %d of %d", fa.Stats.Misses, fa.Stats.Accesses)
	}
}
