// Package cache implements the instruction- and data-cache cores with the
// analytical per-access energy model the paper uses ("analytical models
// for main memory energy consumption and caches are fed with the output
// of a cache profiler", §3.5; parameters "of a 0.8µ CMOS process", §4).
//
// The simulator is a standard set-associative cache with LRU replacement
// and, for data caches, write-back/write-allocate. Every access costs an
// analytical energy (row decode + tag compare per way + data array read +
// output drive) derived from tech.CacheTech and the geometry; misses
// additionally refill a full line from main memory over the bus, which is
// how a different hardware/software partition changes cache AND memory
// AND bus energy — the whole-system effect Table 1's columns capture.
package cache

import (
	"fmt"
	"math/bits"

	"lppart/internal/bus"
	"lppart/internal/mem"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// MaxAssoc bounds Config.Assoc independently of Sets: a 64k-way set is
// already far beyond any buildable CAM, so larger values are treated as
// geometry-generator bugs rather than design points.
const MaxAssoc = 1 << 16

// Config is a cache geometry.
type Config struct {
	Sets      int // number of sets (power of two)
	Assoc     int // ways per set
	LineWords int // 32-bit words per line (power of two)
	// WriteBack selects write-back/write-allocate (true, the data-cache
	// default) versus read-only behaviour for instruction caches (writes
	// are rejected).
	WriteBack bool
}

// SizeBytes returns the cache capacity in bytes.
func (c Config) SizeBytes() int { return c.Sets * c.Assoc * c.LineWords * 4 }

// TagBits returns the tag-field width of this geometry: a 32-bit byte
// address minus the set-index and line-offset bits, floored at one. The
// geometry must be valid (see New): Sets and LineWords are powers of two,
// so the field widths are exact integers (math/bits, no float rounding).
func (c Config) TagBits() int {
	tagBits := 32 - bits.TrailingZeros(uint(c.Sets)) - bits.TrailingZeros(uint(c.LineWords)) - 2
	if tagBits < 1 {
		tagBits = 1
	}
	return tagBits
}

// AccessEnergy returns the analytical per-access energy of this geometry
// in technology ct — row decode + tag compare per way + data array read +
// output drive (see the package comment) — without building a cache core.
// The geometry must be valid (see New); the partitioning baseline uses
// this to price i-cache fetches removed by a partition.
func (c Config) AccessEnergy(ct tech.CacheTech) units.Energy {
	setsLog2 := bits.TrailingZeros(uint(c.Sets))
	lineBits := c.LineWords * 32
	return units.Energy(float64(setsLog2))*ct.EDecodePerSetLog2 +
		units.Energy(float64(c.TagBits()*c.Assoc))*ct.ETagBit +
		units.Energy(float64(lineBits))*ct.EDataBit +
		ct.EOutputPerWord
}

// RefillWords returns the words read from main memory by n line refills
// (misses) of this geometry. Exported so the single-pass profiler prices
// misses with the same arithmetic a live core would.
func (c Config) RefillWords(misses int64) int64 { return misses * int64(c.LineWords) }

// WriteBackWords returns the words written to main memory by n dirty-line
// write-backs of this geometry.
func (c Config) WriteBackWords(writeBacks int64) int64 { return writeBacks * int64(c.LineWords) }

// MissStalls returns the stall cycles n refills plus m write-backs cost
// against memory technology mt — exactly the sum of the per-access stalls
// Access and Flush would have returned for the same counts.
func (c Config) MissStalls(mt tech.MemoryTech, misses, writeBacks int64) int64 {
	return int64(mt.LatencyCycles) * (c.RefillWords(misses) + c.WriteBackWords(writeBacks))
}

// Validate checks the geometry: power-of-two sets and line size, positive
// associativity within MaxAssoc.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d must be a positive power of two", c.Sets)
	}
	if c.LineWords <= 0 || c.LineWords&(c.LineWords-1) != 0 {
		return fmt.Errorf("cache: line words %d must be a positive power of two", c.LineWords)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d must be positive", c.Assoc)
	}
	if c.Assoc > MaxAssoc {
		return fmt.Errorf("cache: associativity %d exceeds MaxAssoc %d", c.Assoc, MaxAssoc)
	}
	return nil
}

// Stats is the access accounting of a cache core.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	WriteBacks int64 // dirty lines evicted to memory
}

// HitRate returns hits/accesses (1 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	valid bool
	dirty bool
	tag   int32
	lru   int64
}

// Cache is one cache core.
type Cache struct {
	Name    string
	Cfg     Config
	Stats   Stats
	eAccess units.Energy
	sets    [][]line
	backend *mem.Memory
	bus     *bus.Bus
	tick    int64
}

// New builds a cache. backend and b may be nil for a cache simulated in
// isolation (misses then cost no memory/bus energy, only their stall
// cycles are skipped).
func New(name string, cfg Config, ct tech.CacheTech, backend *mem.Memory, b *bus.Bus) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{Name: name, Cfg: cfg, backend: backend, bus: b}
	c.sets = make([][]line, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	// Analytical access energy from the geometry (see package comment).
	c.eAccess = cfg.AccessEnergy(ct)
	return c, nil
}

// AccessEnergy returns the per-access energy of this geometry.
func (c *Cache) AccessEnergy() units.Energy { return c.eAccess }

// Energy returns the cache core's total array energy so far (misses'
// memory and bus energy are accounted in those cores, not here).
func (c *Cache) Energy() units.Energy {
	return units.Energy(float64(c.Stats.Accesses)) * c.eAccess
}

// Access performs one word access. addr is a word address. It returns the
// stall cycles beyond a hit (0 on hit).
func (c *Cache) Access(addr int32, write bool) (stall int) {
	if write && !c.Cfg.WriteBack {
		panic(fmt.Sprintf("cache %s: write to read-only cache", c.Name))
	}
	c.tick++
	c.Stats.Accesses++
	lineAddr := addr / int32(c.Cfg.LineWords)
	setIdx := int(lineAddr) & (c.Cfg.Sets - 1)
	tag := lineAddr / int32(c.Cfg.Sets)
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Stats.Hits++
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			return 0
		}
	}
	// Miss: fill the first invalid way if any remain; only a full set
	// evicts, and then strictly the LRU way. (Scanning for the LRU and
	// the first invalid way together used to skip an invalid way 0.)
	c.Stats.Misses++
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
	}
	stall = 0
	if set[victim].valid && set[victim].dirty {
		c.Stats.WriteBacks++
		if c.backend != nil {
			stall += c.backend.Write(c.Cfg.LineWords)
		}
		if c.bus != nil {
			c.bus.Write(c.Cfg.LineWords)
		}
	}
	if c.backend != nil {
		stall += c.backend.Read(c.Cfg.LineWords)
	}
	if c.bus != nil {
		c.bus.Read(c.Cfg.LineWords)
	}
	set[victim] = line{valid: true, dirty: write, tag: tag, lru: c.tick}
	return stall
}

// Flush writes back all dirty lines (end-of-run accounting) and returns
// the stall cycles of the write-backs.
func (c *Cache) Flush() (stall int) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				c.Stats.WriteBacks++
				if c.backend != nil {
					stall += c.backend.Write(c.Cfg.LineWords)
				}
				if c.bus != nil {
					c.bus.Write(c.Cfg.LineWords)
				}
				l.dirty = false
			}
		}
	}
	return stall
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			c.sets[si][wi] = line{}
		}
	}
	c.Stats = Stats{}
	c.tick = 0
}

// DefaultICache is the reference instruction-cache geometry: 2 KiB
// direct-mapped with 4-word lines, an embedded-class size for the era.
func DefaultICache() Config { return Config{Sets: 128, Assoc: 1, LineWords: 4} }

// DefaultDCache is the reference data-cache geometry: 2 KiB 2-way with
// 4-word lines, write-back.
func DefaultDCache() Config { return Config{Sets: 64, Assoc: 2, LineWords: 4, WriteBack: true} }
