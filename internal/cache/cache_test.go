package cache

import (
	"math"
	"testing"
	"testing/quick"

	"lppart/internal/bus"
	"lppart/internal/mem"
	"lppart/internal/tech"
	"lppart/internal/units"
)

func newTestCache(t *testing.T, cfg Config) (*Cache, *mem.Memory, *bus.Bus) {
	t.Helper()
	lib := tech.Default()
	m := mem.New(lib)
	b := bus.New(lib)
	c, err := New("test", cfg, lib.Cache, m, b)
	if err != nil {
		t.Fatal(err)
	}
	return c, m, b
}

func TestConfigValidation(t *testing.T) {
	lib := tech.Default()
	bad := []Config{
		{Sets: 0, Assoc: 1, LineWords: 4},
		{Sets: 3, Assoc: 1, LineWords: 4},
		{Sets: 16, Assoc: 0, LineWords: 4},
		{Sets: 16, Assoc: 1, LineWords: 3},
	}
	for _, cfg := range bad {
		if _, err := New("x", cfg, lib.Cache, nil, nil); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	if got := DefaultICache().SizeBytes(); got != 2048 {
		t.Errorf("i-cache size = %d, want 2048", got)
	}
	if got := DefaultDCache().SizeBytes(); got != 2048 {
		t.Errorf("d-cache size = %d, want 2048", got)
	}
}

func TestHitMissBasic(t *testing.T) {
	c, _, _ := newTestCache(t, Config{Sets: 16, Assoc: 1, LineWords: 4, WriteBack: true})
	// First access: miss. Same line: hits.
	if stall := c.Access(0, false); stall == 0 {
		t.Error("cold access must stall")
	}
	for w := int32(0); w < 4; w++ {
		if stall := c.Access(w, false); stall != 0 {
			t.Errorf("word %d: stall %d on expected hit", w, stall)
		}
	}
	if c.Stats.Misses != 1 || c.Stats.Hits != 4 {
		t.Errorf("stats = %+v, want 1 miss 4 hits", c.Stats)
	}
}

func TestConflictMisses(t *testing.T) {
	cfg := Config{Sets: 4, Assoc: 1, LineWords: 1, WriteBack: true}
	c, _, _ := newTestCache(t, cfg)
	// Two addresses mapping to the same set thrash a direct-mapped cache.
	a, b := int32(0), int32(4)
	for i := 0; i < 10; i++ {
		c.Access(a, false)
		c.Access(b, false)
	}
	if c.Stats.Hits != 0 {
		t.Errorf("direct-mapped thrash must never hit, got %d hits", c.Stats.Hits)
	}
	// The same pattern in a 2-way cache hits after the cold misses.
	c2, _, _ := newTestCache(t, Config{Sets: 4, Assoc: 2, LineWords: 1, WriteBack: true})
	for i := 0; i < 10; i++ {
		c2.Access(a, false)
		c2.Access(b, false)
	}
	if c2.Stats.Misses != 2 {
		t.Errorf("2-way cache misses = %d, want 2 cold misses", c2.Stats.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _, _ := newTestCache(t, Config{Sets: 1, Assoc: 2, LineWords: 1, WriteBack: true})
	c.Access(0, false) // A
	c.Access(1, false) // B
	c.Access(0, false) // A again (B is now LRU)
	c.Access(2, false) // C evicts B
	if stall := c.Access(0, false); stall != 0 {
		t.Error("A must still be resident")
	}
	if stall := c.Access(1, false); stall == 0 {
		t.Error("B must have been evicted")
	}
}

func TestWriteBack(t *testing.T) {
	c, m, _ := newTestCache(t, Config{Sets: 1, Assoc: 1, LineWords: 4, WriteBack: true})
	c.Access(0, true) // dirty line
	before := m.Writes
	c.Access(100, false) // evicts dirty line
	if c.Stats.WriteBacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.WriteBacks)
	}
	if m.Writes != before+4 {
		t.Errorf("memory writes = %d, want +4 words", m.Writes)
	}
}

func TestFlush(t *testing.T) {
	c, m, _ := newTestCache(t, Config{Sets: 4, Assoc: 1, LineWords: 2, WriteBack: true})
	c.Access(0, true)
	c.Access(2, true)
	c.Access(4, false)
	before := m.Writes
	stall := c.Flush()
	if c.Stats.WriteBacks != 2 || stall == 0 {
		t.Errorf("flush: writebacks=%d stall=%d", c.Stats.WriteBacks, stall)
	}
	if m.Writes != before+4 {
		t.Errorf("flush wrote %d words, want 4", m.Writes-before)
	}
	// Second flush: nothing dirty.
	if c.Flush() != 0 {
		t.Error("second flush must be free")
	}
}

func TestReadOnlyCachePanicsOnWrite(t *testing.T) {
	c, _, _ := newTestCache(t, DefaultICache())
	defer func() {
		if recover() == nil {
			t.Error("write to i-cache must panic")
		}
	}()
	c.Access(0, true)
}

func TestEnergyAccounting(t *testing.T) {
	c, m, b := newTestCache(t, Config{Sets: 16, Assoc: 1, LineWords: 4, WriteBack: true})
	if c.AccessEnergy() <= 0 {
		t.Fatal("per-access energy must be positive")
	}
	for i := int32(0); i < 64; i++ {
		c.Access(i, false)
	}
	wantCache := 64 * float64(c.AccessEnergy())
	if math.Abs(float64(c.Energy())-wantCache) > 1e-15 {
		t.Errorf("cache energy %v, want %v", c.Energy(), wantCache)
	}
	// 16 misses refill 4 words each.
	if m.Reads != 64 {
		t.Errorf("memory reads = %d, want 64", m.Reads)
	}
	if b.ReadWords != 64 {
		t.Errorf("bus reads = %d, want 64", b.ReadWords)
	}
	if m.Energy() <= 0 || b.Energy() <= 0 {
		t.Error("memory/bus energy must be positive after misses")
	}
}

func TestConfigAccessEnergyMatchesCore(t *testing.T) {
	// The pure Config-level computation must agree exactly with the
	// energy a built cache core accounts per access — it replaced the
	// throwaway "probe" cache the system baseline used to build.
	lib := tech.Default()
	for _, cfg := range []Config{
		DefaultICache(),
		DefaultDCache(),
		{Sets: 256, Assoc: 4, LineWords: 8, WriteBack: true},
		{Sets: 1, Assoc: 1, LineWords: 1},
	} {
		c, err := New("probe", cfg, lib.Cache, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := cfg.AccessEnergy(lib.Cache), c.AccessEnergy(); got != want {
			t.Errorf("%+v: Config.AccessEnergy = %v, core accounts %v", cfg, got, want)
		}
	}
}

func TestAccessEnergyScalesWithSize(t *testing.T) {
	lib := tech.Default()
	small, _ := New("s", Config{Sets: 64, Assoc: 1, LineWords: 4}, lib.Cache, nil, nil)
	big, _ := New("b", Config{Sets: 1024, Assoc: 1, LineWords: 4}, lib.Cache, nil, nil)
	wide, _ := New("w", Config{Sets: 64, Assoc: 4, LineWords: 4}, lib.Cache, nil, nil)
	if big.AccessEnergy() <= small.AccessEnergy() {
		t.Error("bigger cache must cost more per access")
	}
	if wide.AccessEnergy() <= small.AccessEnergy() {
		t.Error("higher associativity must cost more per access")
	}
}

func TestAccessEnergyMagnitude(t *testing.T) {
	// The reference i-cache geometry should land in the low-nJ range the
	// paper's Table 1 implies (~2-3 nJ per fetch).
	lib := tech.Default()
	c, _ := New("i", DefaultICache(), lib.Cache, nil, nil)
	e := float64(c.AccessEnergy()) / 1e-9
	if e < 1 || e > 6 {
		t.Errorf("i-cache access energy %.2f nJ, want 1-6 nJ", e)
	}
}

func TestMissesStallByLineLength(t *testing.T) {
	lib := tech.Default()
	m := mem.New(lib)
	c, _ := New("c", Config{Sets: 16, Assoc: 1, LineWords: 8, WriteBack: true}, lib.Cache, m, nil)
	stall := c.Access(0, false)
	want := lib.Memory.LatencyCycles * 8
	if stall != want {
		t.Errorf("miss stall = %d, want %d", stall, want)
	}
}

func TestHitRateSequentialVsRandom(t *testing.T) {
	// Sequential walks have high spatial locality; strided access that
	// jumps a line each time has none.
	c1, _, _ := newTestCache(t, Config{Sets: 64, Assoc: 1, LineWords: 4, WriteBack: true})
	for i := int32(0); i < 1024; i++ {
		c1.Access(i, false)
	}
	c2, _, _ := newTestCache(t, Config{Sets: 64, Assoc: 1, LineWords: 4, WriteBack: true})
	for i := int32(0); i < 1024; i++ {
		c2.Access(i*4, false)
	}
	if c1.Stats.HitRate() < 0.7 {
		t.Errorf("sequential hit rate %.2f too low", c1.Stats.HitRate())
	}
	if c2.Stats.HitRate() > c1.Stats.HitRate() {
		t.Error("line-strided access cannot beat sequential")
	}
}

func TestResetClears(t *testing.T) {
	c, _, _ := newTestCache(t, DefaultDCache())
	c.Access(0, true)
	c.Access(1, false)
	c.Reset()
	if c.Stats != (Stats{}) {
		t.Errorf("stats after reset: %+v", c.Stats)
	}
	if stall := c.Access(0, false); stall == 0 {
		t.Error("reset must invalidate contents")
	}
}

// Property: accesses = hits + misses, and repeating any access pattern
// twice (within capacity) yields hits the second time for a large-enough
// cache.
func TestStatsInvariantProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, _, _ := newTestCache(t, Config{Sets: 256, Assoc: 4, LineWords: 4, WriteBack: true})
		for _, a := range addrs {
			c.Access(int32(a), a%3 == 0)
		}
		return c.Stats.Accesses == c.Stats.Hits+c.Stats.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetResidency(t *testing.T) {
	// A working set that fits must be fully resident on the second pass.
	c, _, _ := newTestCache(t, Config{Sets: 64, Assoc: 2, LineWords: 4, WriteBack: true})
	for pass := 0; pass < 2; pass++ {
		for i := int32(0); i < 256; i++ { // 256 words = 1 KiB < 2 KiB
			c.Access(i, false)
		}
	}
	// Second pass: all 256 accesses hit.
	if c.Stats.Hits < 256+192 { // first pass: 64 misses + 192 hits
		t.Errorf("hits = %d, want >= 448", c.Stats.Hits)
	}
}

func TestAssocBound(t *testing.T) {
	lib := tech.Default()
	if _, err := New("x", Config{Sets: 1, Assoc: MaxAssoc + 1, LineWords: 4}, lib.Cache, nil, nil); err == nil {
		t.Errorf("associativity beyond MaxAssoc (%d) should be rejected", MaxAssoc)
	}
	if err := (Config{Sets: 1, Assoc: MaxAssoc, LineWords: 4}).Validate(); err != nil {
		t.Errorf("associativity MaxAssoc must validate: %v", err)
	}
}

func TestTagBitsPinned(t *testing.T) {
	// Pin the tag widths of the reference geometries and the largest
	// swept one: 32-bit byte address minus set-index and line-offset
	// fields. A float-log regression would shift these on large
	// power-of-two geometries.
	cases := []struct {
		cfg  Config
		want int
	}{
		{DefaultICache(), 21},                                 // 128 sets, 4-word lines: 32-7-2-2
		{DefaultDCache(), 22},                                 // 64 sets: 32-6-2-2
		{Config{Sets: 1024, Assoc: 8, LineWords: 4}, 18},      // largest swept: 32-10-2-2
		{Config{Sets: 1 << 20, Assoc: 1, LineWords: 256}, 2},  // 32-20-8-2
		{Config{Sets: 1 << 24, Assoc: 1, LineWords: 1024}, 1}, // floored at 1
	}
	for _, tc := range cases {
		if got := tc.cfg.TagBits(); got != tc.want {
			t.Errorf("TagBits(%+v) = %d, want %d", tc.cfg, got, tc.want)
		}
	}
}

func TestAccessEnergyMatchesFloatLogFormula(t *testing.T) {
	// The bit-twiddled AccessEnergy must be byte-identical to the float
	// formula it replaced on every power-of-two geometry.
	ct := tech.Default().Cache
	for _, sets := range []int{1, 16, 128, 1024, 1 << 16} {
		for _, lw := range []int{1, 4, 32} {
			cfg := Config{Sets: sets, Assoc: 2, LineWords: lw}
			tagBits := 32 - int(math.Log2(float64(sets))) - int(math.Log2(float64(lw))) - 2
			if tagBits < 1 {
				tagBits = 1
			}
			want := units.Energy(math.Log2(float64(sets)))*ct.EDecodePerSetLog2 +
				units.Energy(float64(tagBits*cfg.Assoc))*ct.ETagBit +
				units.Energy(float64(lw*32))*ct.EDataBit +
				ct.EOutputPerWord
			if got := cfg.AccessEnergy(ct); got != want {
				t.Errorf("AccessEnergy(%+v) = %v, want %v", cfg, got, want)
			}
		}
	}
}

func TestVictimFillsFirstInvalidWay(t *testing.T) {
	// Regression for the victim scan: it used to start the LRU compare
	// at way 1 and break on the first invalid way it met, so an empty
	// set filled way 1 first and left invalid ways interleaved behind
	// valid ones. Misses must fill ways in index order while any way is
	// invalid, and only a full set may evict (strictly the LRU way).
	c, _, _ := newTestCache(t, Config{Sets: 1, Assoc: 4, LineWords: 1, WriteBack: true})
	for i, addr := range []int32{10, 20, 30, 40} {
		c.Access(addr, false)
		for w := 0; w <= i; w++ {
			if !c.sets[0][w].valid {
				t.Fatalf("after %d fills, way %d is still invalid", i+1, w)
			}
		}
		for w := i + 1; w < 4; w++ {
			if c.sets[0][w].valid {
				t.Fatalf("after %d fills, way %d is valid early (fill out of order)", i+1, w)
			}
		}
	}
	if c.sets[0][0].tag != 10 {
		t.Errorf("way 0 holds tag %d, want the first fill (10)", c.sets[0][0].tag)
	}
	// No valid line may have been evicted while ways were free: every
	// fill must still hit.
	for _, addr := range []int32{10, 20, 30, 40} {
		if c.Access(addr, false); c.Stats.Misses != 4 {
			t.Fatalf("address %d was evicted while invalid ways remained", addr)
		}
	}
	// Full set: eviction is strictly LRU (10 is oldest by now).
	c.Access(50, false)
	c.Access(10, false)
	if c.Stats.Misses != 6 {
		t.Error("LRU way (tag 10) must have been the eviction victim")
	}
}
