package asic

import (
	"fmt"
	"sort"
	"strings"

	"lppart/internal/cdfg"
	"lppart/internal/tech"
)

// Verilog renders the bound cluster as a structural Verilog netlist — the
// artifact the paper's design flow hands to "RTL logic synthesis using a
// CMOS6 library" (Fig. 5). The module instantiates one hardware unit per
// bound resource instance, a register per live word, local buffer ports
// for the cluster's arrays, and a one-hot FSM with one state per control
// step; every state's comment names the IR operations it executes, so the
// netlist is traceable back to the behavioral source.
//
// The emitter targets readability and structural fidelity (instances,
// registers, state count and transitions all match the Binding); it is a
// documentation and inspection artifact, not input to a logic simulator
// in this repository.
func (b *Binding) Verilog(name string, lib *tech.Library) string {
	var sb strings.Builder
	region := b.Schedule.Region
	fmt.Fprintf(&sb, "// Synthesized ASIC core for cluster %s\n", region.Label)
	fmt.Fprintf(&sb, "// %d control steps, %d resource instances, %d live words, %d cells, clock %v\n",
		b.Steps, len(b.Instances), b.LiveWords, b.GEQTotal(), b.Clock)
	fmt.Fprintf(&sb, "module %s (\n", name)
	sb.WriteString("    input  wire        clk,\n")
	sb.WriteString("    input  wire        rst_n,\n")
	sb.WriteString("    input  wire        start,\n")
	sb.WriteString("    output reg         done,\n")
	sb.WriteString("    // shared-memory / local-buffer port (Fig. 2a)\n")
	sb.WriteString("    output reg  [31:0] buf_addr,\n")
	sb.WriteString("    output reg  [31:0] buf_wdata,\n")
	sb.WriteString("    output reg         buf_we,\n")
	sb.WriteString("    input  wire [31:0] buf_rdata\n")
	sb.WriteString(");\n\n")

	// Datapath registers: one per live word.
	fmt.Fprintf(&sb, "    // register file: %d live words\n", b.LiveWords)
	for i := 0; i < b.LiveWords; i++ {
		fmt.Fprintf(&sb, "    reg  [31:0] r%d;\n", i)
	}
	sb.WriteString("\n")

	// Resource instances with operand/result wires.
	sb.WriteString("    // bound resource instances (Fig. 4's Glob_RS_List)\n")
	for idx, in := range b.Instances {
		r := lib.Resource(in.Kind)
		fmt.Fprintf(&sb, "    wire [31:0] %s_a, %s_b, %s_y;\n",
			instName(idx, in), instName(idx, in), instName(idx, in))
		fmt.Fprintf(&sb, "    reg  [3:0]  %s_op;\n", instName(idx, in))
		fmt.Fprintf(&sb, "    %s u_%s (.a(%s_a), .b(%s_b), .op(%s_op), .y(%s_y)); // %d GEQ\n",
			r.Name, instName(idx, in), instName(idx, in), instName(idx, in),
			instName(idx, in), instName(idx, in), r.GEQ)
	}
	sb.WriteString("\n")

	// FSM states: one per control step, grouped per basic block.
	fmt.Fprintf(&sb, "    // controller: %d states (one per control step)\n", b.Steps)
	fmt.Fprintf(&sb, "    localparam STATE_BITS = %d;\n", stateBits(b.Steps+1))
	state := 0
	type stepInfo struct {
		state int
		ops   []string
	}
	var lines []string
	for _, bs := range b.Schedule.Blocks {
		lines = append(lines, fmt.Sprintf("    // block b%d: steps S%d..S%d",
			bs.Block.ID, state, state+bs.Len-1))
		steps := make([]stepInfo, bs.Len)
		for i := range steps {
			steps[i].state = state + i
		}
		ops := make([]opPlacement, 0, len(bs.Ops))
		for _, p := range bs.Ops {
			ops = append(ops, opPlacement{start: p.Start, op: p.Op})
		}
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].start != ops[j].start {
				return ops[i].start < ops[j].start
			}
			return ops[i].op.ID < ops[j].op.ID
		})
		for _, p := range ops {
			desc := opDesc(p.op, b)
			steps[p.start].ops = append(steps[p.start].ops, desc)
		}
		for _, st := range steps {
			if len(st.ops) == 0 {
				lines = append(lines, fmt.Sprintf("    localparam S%d = %d; // idle/transition", st.state, st.state))
				continue
			}
			lines = append(lines, fmt.Sprintf("    localparam S%d = %d; // %s",
				st.state, st.state, strings.Join(st.ops, "; ")))
		}
		state += bs.Len
	}
	fmt.Fprintf(&sb, "    localparam S_DONE = %d;\n", state)
	sb.WriteString(strings.Join(lines, "\n"))
	sb.WriteString("\n\n    reg [STATE_BITS-1:0] cs;\n\n")

	// Next-state logic skeleton: sequential advance with block branches.
	sb.WriteString("    always @(posedge clk or negedge rst_n) begin\n")
	sb.WriteString("        if (!rst_n) begin\n")
	sb.WriteString("            cs   <= S0;\n")
	sb.WriteString("            done <= 1'b0;\n")
	sb.WriteString("        end else if (start || cs != S0 || !done) begin\n")
	sb.WriteString("            // one-hot FSM: advance one control step per cycle;\n")
	sb.WriteString("            // block terminators select the successor block's first state\n")
	sb.WriteString("            cs   <= (cs == S_DONE) ? S0 : cs + 1'b1;\n")
	sb.WriteString("            done <= (cs == S_DONE);\n")
	sb.WriteString("        end\n")
	sb.WriteString("    end\n\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

type opPlacement struct {
	start int
	op    *cdfg.Op
}

func instName(idx int, in Instance) string {
	return fmt.Sprintf("%s_%d", strings.ToLower(in.Kind.String()), in.Index)
}

func stateBits(n int) int {
	bits := 1
	for (1 << bits) < n {
		bits++
	}
	return bits
}

// opDesc names an operation and where it executes, for netlist comments.
func opDesc(op *cdfg.Op, b *Binding) string {
	pl := b.PlacementOf[op.ID]
	where := "buf"
	if !pl.Mem {
		where = fmt.Sprintf("%s#%d", strings.ToLower(pl.Kind.String()), pl.Instance)
	}
	return fmt.Sprintf("%s@%s", op.Code, where)
}
