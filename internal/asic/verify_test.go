package asic

import (
	"strings"
	"testing"

	"lppart/internal/tech"
)

// boundFIR builds, schedules and binds the FIR kernel, asserting the
// fresh binding passes VerifyBinding before the caller tampers with it.
func boundFIR(t *testing.T) (*Binding, *tech.Library) {
	t.Helper()
	_, loop, rsched, prof := buildScheduled(t, firSrc)
	lib := tech.Default()
	b, err := Bind(rsched, lib, func(bid int) int64 {
		return prof.BlockCount(loop.Func, bid)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBinding(b, lib); err != nil {
		t.Fatalf("fresh binding fails VerifyBinding: %v", err)
	}
	return b, lib
}

func wantBindingError(t *testing.T, b *Binding, lib *tech.Library, substr string) {
	t.Helper()
	err := VerifyBinding(b, lib)
	if err == nil {
		t.Fatalf("VerifyBinding accepted bad binding, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("VerifyBinding error %q does not mention %q", err, substr)
	}
}

func TestVerifyBindingNilInputs(t *testing.T) {
	b, lib := boundFIR(t)
	if VerifyBinding(nil, lib) == nil {
		t.Error("nil binding must fail")
	}
	if VerifyBinding(b, nil) == nil {
		t.Error("nil library must fail")
	}
}

func TestVerifyBindingDetectsDoubleBooking(t *testing.T) {
	b, lib := boundFIR(t)
	// Rebind every datapath op onto instance 0: some pair must collide in
	// a control step (or at least break the kind budget).
	for id, pl := range b.PlacementOf { //lint:ordered error detection only, first hit aborts
		if !pl.Mem {
			pl.Instance = 0
			pl.Kind = b.Instances[0].Kind
			b.PlacementOf[id] = pl
		}
	}
	if err := VerifyBinding(b, lib); err == nil {
		t.Fatal("VerifyBinding accepted a binding with everything on one instance")
	}
}

func TestVerifyBindingDetectsUtilizationOutOfRange(t *testing.T) {
	b, lib := boundFIR(t)
	b.URate = 1.25
	wantBindingError(t, b, lib, "outside [0,1]")
}

func TestVerifyBindingDetectsOveractiveInstance(t *testing.T) {
	b, lib := boundFIR(t)
	b.Instances[0].ActiveWeighted = b.NcycWeighted + 1
	wantBindingError(t, b, lib, "active")
}

func TestVerifyBindingDetectsGEQMismatch(t *testing.T) {
	b, lib := boundFIR(t)
	b.GEQDatapath += 50
	wantBindingError(t, b, lib, "instances sum")
}

func TestVerifyBindingDetectsStepMiscount(t *testing.T) {
	b, lib := boundFIR(t)
	b.Steps++
	// GEQController is consistent with the old Steps, but the step count
	// no longer matches the schedule.
	wantBindingError(t, b, lib, "latencies sum")
}

func TestVerifyBindingDetectsMissingPlacement(t *testing.T) {
	b, lib := boundFIR(t)
	for id := range b.PlacementOf { //lint:ordered deleting one arbitrary placement
		delete(b.PlacementOf, id)
		break
	}
	wantBindingError(t, b, lib, "no placement")
}

func TestVerifyBindingDetectsSlowInstanceClock(t *testing.T) {
	b, lib := boundFIR(t)
	b.Clock = minClock / 2
	wantBindingError(t, b, lib, "clock")
}
