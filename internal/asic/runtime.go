package asic

import (
	"fmt"
	"math/bits"

	"lppart/internal/behav"
	"lppart/internal/bus"
	"lppart/internal/cdfg"
	"lppart/internal/codegen"
	"lppart/internal/dataflow"
	"lppart/internal/mem"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// Core is a synthesized ASIC core ready for co-simulation: it plugs into
// the ISS as the handler of the rendezvous instruction and executes the
// cluster's semantics on the shared memory while accounting cycle- and
// switching-accurate energy ("gate-level simulation tool with attached
// switching energy calculation", paper §3.5).
//
// The invocation protocol is the paper's Fig. 2a / §3.3 transfer scheme:
//
//	a/b) the cluster's live-in set (use[c]) is downloaded from shared
//	     memory over the bus into core-local registers and buffers,
//	c/d)  after execution the live-out set (gen[c] ∩ use[C_succ]) is
//	     deposited back for the µP to read.
//
// Everything the cluster touches is synchronized functionally so the
// co-simulation stays exact, but only the live sets are *charged* as
// transfers — matching Fig. 3's accounting.
//
// All per-invocation state lives in dense tables sized at NewCore
// (scalars and arrays by interned dataflow slot, temporaries by local ID,
// placements and switching state by op ID, block metadata by block ID):
// a steady-state RunASIC performs no heap allocation and no map lookups.
type Core struct {
	ID      int
	Region  *cdfg.Region
	Binding *Binding

	prog *cdfg.Program
	lay  *codegen.Layout
	lib  *tech.Library
	bus  *bus.Bus
	mem  *mem.Memory
	// µP clock period, for converting ASIC cycles to system cycles.
	microClock units.Time

	ix                               *dataflow.Index
	liveIn, liveOut, genAll, touched []varSpan
	exitBlock                        int

	// Accounting.
	Invocations int64
	CyclesASIC  int64 // in ASIC clock cycles
	CyclesMuP   int64 // as seen by the system (µP clock), incl. transfers
	Energy      units.Energy
	WordsIn     int64
	WordsOut    int64

	// Switching-activity state per op ID (dense; persists across
	// invocations like the datapath's registers do).
	prevA, prevB []int32

	// Dense per-invocation architectural state, reset by RunASIC.
	scalars []int32   // by interned slot; non-touched slots read as zero
	temps   []int32   // by local ID (datapath registers)
	arrays  [][]int32 // by interned slot; nil for non-array slots
	// deadArrays lists array slots the region references that are not in
	// the touched set: they start each invocation zero-initialized.
	deadArrays []int

	// Dense runtime tables derived from Binding and the region shape.
	placements []Placement // by op ID
	placedOK   []bool
	blockLen   []int64 // by block ID
	inRegion   []bool  // by block ID

	// MaxBlocksPerInvocation guards against runaway clusters.
	MaxBlocks int64
}

type varSpan struct {
	slot  int // interned dataflow slot
	addr  int32
	words int32
	array bool
}

// NewCore synthesizes the runtime for a bound cluster. The bus and memory
// cores receive the transfer accounting; lay locates every interface
// variable in shared memory.
func NewCore(id int, p *cdfg.Program, r *cdfg.Region, b *Binding, lay *codegen.Layout,
	lib *tech.Library, bs *bus.Bus, m *mem.Memory) (*Core, error) {
	c := &Core{
		ID: id, Region: r, Binding: b,
		prog: p, lay: lay, lib: lib, bus: bs, mem: m,
		microClock: lib.Micro.ClockPeriod,
		MaxBlocks:  200_000_000,
	}
	ix := dataflow.NewIndex(p, r.Func)
	c.ix = ix
	gen, use := dataflow.GenUseOn(ix, r)
	_, useSucc := dataflow.SurroundingsOn(ix, r)
	liveOut := gen.Intersect(useSucc)

	spansOf := func(s dataflow.BitSet) ([]varSpan, error) {
		var spans []varSpan
		var err error
		s.ForEachIndex(func(i int) {
			if err != nil {
				return
			}
			sp, e := c.spanOf(i)
			if e != nil {
				err = e
				return
			}
			spans = append(spans, sp)
		})
		return spans, err
	}
	var err error
	if c.liveIn, err = spansOf(use); err != nil {
		return nil, err
	}
	if c.liveOut, err = spansOf(liveOut); err != nil {
		return nil, err
	}
	if c.genAll, err = spansOf(gen); err != nil {
		return nil, err
	}
	// Everything referenced, for functional synchronization. Union in
	// place: gen is not used again below.
	gen.UnionWith(use)
	if c.touched, err = spansOf(gen); err != nil {
		return nil, err
	}
	exit, err := findExit(r)
	if err != nil {
		return nil, err
	}
	c.exitBlock = exit
	c.buildTables(gen)
	return c, nil
}

// buildTables sizes the dense runtime state. touched is gen ∪ use.
func (c *Core) buildTables(touched dataflow.BitSet) {
	f := c.Region.Func
	c.scalars = make([]int32, c.ix.Len())
	c.temps = make([]int32, len(f.Locals))
	c.arrays = make([][]int32, c.ix.Len())
	for _, sp := range c.touched {
		if sp.array {
			c.arrays[sp.slot] = make([]int32, sp.words)
		}
	}
	maxOp, maxBlock := -1, -1
	for _, bid := range c.Region.Blocks {
		if bid > maxBlock {
			maxBlock = bid
		}
		b := f.Block(bid)
		for i := range b.Ops {
			op := &b.Ops[i]
			if op.ID > maxOp {
				maxOp = op.ID
			}
			// Dead-in arrays (referenced but never synchronized) get a
			// zero-initialized buffer per invocation, like the lazily
			// created map entries used to.
			if op.Arr.Valid() {
				slot := c.ix.IndexOf(dataflow.Key{Global: op.Arr.Global, ID: op.Arr.ID})
				if c.arrays[slot] == nil {
					var v cdfg.Var
					if op.Arr.Global {
						v = c.prog.Globals[op.Arr.ID]
					} else {
						v = f.Locals[op.Arr.ID]
					}
					c.arrays[slot] = make([]int32, v.Len)
					if !touched.ContainsIndex(slot) {
						c.deadArrays = append(c.deadArrays, slot)
					}
				}
			}
		}
	}
	c.prevA = make([]int32, maxOp+1)
	c.prevB = make([]int32, maxOp+1)
	c.placements = make([]Placement, maxOp+1)
	c.placedOK = make([]bool, maxOp+1)
	for id, pl := range c.Binding.PlacementOf { //lint:ordered dense fill, one distinct slot per key
		if id >= 0 && id <= maxOp {
			c.placements[id] = pl
			c.placedOK[id] = true
		}
	}
	c.blockLen = make([]int64, maxBlock+1)
	c.inRegion = make([]bool, maxBlock+1)
	for _, bid := range c.Region.Blocks {
		c.inRegion[bid] = true
		c.blockLen[bid] = int64(c.Binding.BlockLen[bid])
	}
}

func (c *Core) spanOf(slot int) (varSpan, error) {
	k := c.ix.KeyOf(slot)
	var v cdfg.Var
	if k.Global {
		v = c.prog.Globals[k.ID]
	} else {
		v = c.Region.Func.Locals[k.ID]
	}
	addr, words, ok := c.lay.VarAddr(c.prog, c.Region.Func.Name, k.Global, k.ID)
	if !ok {
		return varSpan{}, fmt.Errorf("asic: variable %s of %s has no shared-memory home",
			v.Name, c.Region.Func.Name)
	}
	return varSpan{slot: slot, addr: addr, words: words, array: v.IsArray()}, nil
}

// findExit locates the unique block outside the region reached from it.
func findExit(r *cdfg.Region) (int, error) {
	inside := make(map[int]bool, len(r.Blocks))
	for _, bid := range r.Blocks {
		inside[bid] = true
	}
	exit := -1
	for _, bid := range r.Blocks {
		for _, s := range r.Func.Block(bid).Succs() {
			if !inside[s] {
				if exit != -1 && exit != s {
					return 0, fmt.Errorf("asic: region %s has multiple exits", r.Label)
				}
				exit = s
			}
		}
	}
	if exit == -1 {
		return 0, fmt.Errorf("asic: region %s has no exit", r.Label)
	}
	return exit, nil
}

// RunASIC implements iss.ASICHandler: one cluster invocation on the shared
// memory. It returns the µP-clock cycles the system waits.
//
//lint:hotpath guarded by TestRunASICZeroAlloc
func (c *Core) RunASIC(id int32, shared []int32) (int64, error) {
	if int(id) != c.ID {
		return 0, fmt.Errorf("asic: core %d invoked as %d", c.ID, id) //lint:alloc error path, aborts the run
	}
	c.Invocations++

	// Reset the invocation state: non-touched scalars and dead-in arrays
	// read as zero, temporaries start cold.
	for i := range c.scalars {
		c.scalars[i] = 0
	}
	for i := range c.temps {
		c.temps[i] = 0
	}
	for _, slot := range c.deadArrays {
		buf := c.arrays[slot]
		for i := range buf {
			buf[i] = 0
		}
	}
	// Download phase: functionally sync everything touched; charge the
	// live-in set.
	for _, sp := range c.touched {
		if sp.array {
			copy(c.arrays[sp.slot], shared[sp.addr:sp.addr+sp.words])
		} else {
			c.scalars[sp.slot] = shared[sp.addr]
		}
	}
	var transferStall int64
	inWords := 0
	for _, sp := range c.liveIn {
		inWords += int(sp.words)
	}
	c.WordsIn += int64(inWords)
	c.bus.Read(inWords)
	transferStall += int64(c.mem.Read(inWords))

	// Execute the cluster on the datapath.
	cycles, energy, err := c.execute()
	if err != nil {
		return 0, err
	}
	c.CyclesASIC += cycles
	c.Energy += energy

	// Upload phase: write back everything generated; charge the live-out
	// set.
	for _, sp := range c.genAll {
		if sp.array {
			copy(shared[sp.addr:sp.addr+sp.words], c.arrays[sp.slot])
		} else {
			shared[sp.addr] = c.scalars[sp.slot]
		}
	}
	outWords := 0
	for _, sp := range c.liveOut {
		outWords += int(sp.words)
	}
	c.WordsOut += int64(outWords)
	c.bus.Write(outWords)
	transferStall += int64(c.mem.Write(outWords))

	// Convert core cycles to system (µP) cycles.
	mups := int64(float64(cycles)*float64(c.Binding.Clock)/float64(c.microClock)) + 1
	total := mups + transferStall
	c.CyclesMuP += total
	return total, nil
}

func (c *Core) readOperand(o cdfg.Operand) int32 {
	if o.IsConst {
		return o.K
	}
	return c.readSlot(o.Ref)
}

func (c *Core) readSlot(r cdfg.VarRef) int32 {
	if !r.Global && c.ix.IsTemp(c.ix.NumGlobals()+r.ID) {
		return c.temps[r.ID]
	}
	return c.scalars[c.ix.IndexOf(dataflow.Key{Global: r.Global, ID: r.ID})]
}

func (c *Core) writeSlot(r cdfg.VarRef, v int32) {
	if !r.Global && c.ix.IsTemp(c.ix.NumGlobals()+r.ID) {
		c.temps[r.ID] = v
		return
	}
	c.scalars[c.ix.IndexOf(dataflow.Key{Global: r.Global, ID: r.ID})] = v
}

// opEnergy charges one datapath operation with activity-scaled switching
// energy: E = E_active_cycle(kind) × dur × (0.25 + 0.75 × toggle rate).
func (c *Core) opEnergy(op *cdfg.Op, a, b int32) units.Energy {
	if !c.placedOK[op.ID] {
		return 0 // consts, branches: wiring and FSM, charged per cycle
	}
	pl := &c.placements[op.ID]
	if pl.Mem {
		return c.lib.EBufferAccess
	}
	tglA := float64(bits.OnesCount32(uint32(c.prevA[op.ID]^a))) / 32
	tglB := float64(bits.OnesCount32(uint32(c.prevB[op.ID]^b))) / 32
	c.prevA[op.ID], c.prevB[op.ID] = a, b
	act := 0.25 + 0.75*(tglA+tglB)/2
	r := c.lib.Resource(pl.Kind)
	return units.Energy(float64(pl.Dur) * act * float64(r.EnergyPerActiveCycle()))
}

// execute runs the region's blocks until control leaves for the exit
// block, accounting cycles (scheduled block latencies) and energy.
func (c *Core) execute() (cycles int64, energy units.Energy, err error) {
	f := c.Region.Func
	perCycleOverhead := c.lib.EControllerPerCycle +
		units.Energy(c.Binding.LiveWords)*c.lib.ERegisterPerCycle
	// Residual idle switching of gated instances, precomputed per cycle.
	var idlePerCycle units.Energy
	for _, in := range c.Binding.Instances {
		idlePerCycle += units.Energy(asicIdleFraction) *
			c.lib.Resource(in.Kind).EnergyPerIdleCycle()
	}
	// Active ops displace idle burn; approximating by charging idle on
	// every instance-cycle and activity energy on top stays within a few
	// percent for high-utilization clusters and is conservative.

	blockID := c.Region.Entry
	var blocksRun int64
	for {
		if blockID >= len(c.inRegion) || !c.inRegion[blockID] {
			if blockID != c.exitBlock {
				return 0, 0, fmt.Errorf("asic: control left region %s via unexpected block b%d", //lint:alloc error path, aborts the run
					c.Region.Label, blockID)
			}
			return cycles, energy, nil
		}
		blocksRun++
		if blocksRun > c.MaxBlocks {
			return 0, 0, fmt.Errorf("asic: region %s exceeded %d blocks", c.Region.Label, c.MaxBlocks) //lint:alloc error path, aborts the run
		}
		blen := c.blockLen[blockID]
		cycles += blen
		energy += units.Energy(float64(blen)) * (perCycleOverhead + idlePerCycle)

		b := f.Block(blockID)
		next := -1
		for i := range b.Ops {
			op := &b.Ops[i]
			switch {
			case op.Code == cdfg.Nop:
			case op.Code == cdfg.ConstOp:
				c.writeSlot(op.Dst, op.Imm)
			case op.Code == cdfg.Copy:
				v := c.readOperand(op.A)
				energy += c.opEnergy(op, v, 0)
				c.writeSlot(op.Dst, v)
			case op.Code.IsBinary():
				a := c.readOperand(op.A)
				bv := c.readOperand(op.B)
				energy += c.opEnergy(op, a, bv)
				v, evalErr := behav.EvalBinOp(cdfg.BehavBinOp(op.Code), a, bv)
				if evalErr != nil {
					return 0, 0, fmt.Errorf("asic: %v: %w", op.Pos, evalErr) //lint:alloc error path, aborts the run
				}
				c.writeSlot(op.Dst, v)
			case op.Code == cdfg.Neg || op.Code == cdfg.Not || op.Code == cdfg.LNot:
				a := c.readOperand(op.A)
				energy += c.opEnergy(op, a, 0)
				var v int32
				switch op.Code {
				case cdfg.Neg:
					v = -a
				case cdfg.Not:
					v = ^a
				default:
					if a == 0 {
						v = 1
					}
				}
				c.writeSlot(op.Dst, v)
			case op.Code == cdfg.Load:
				idx := c.readOperand(op.A)
				arr := c.arrayOf(op.Arr)
				if idx < 0 || int(idx) >= len(arr) {
					return 0, 0, fmt.Errorf("asic: %v: index %d out of range [0,%d)", op.Pos, idx, len(arr)) //lint:alloc error path, aborts the run
				}
				energy += c.opEnergy(op, idx, 0)
				c.writeSlot(op.Dst, arr[idx])
			case op.Code == cdfg.Store:
				idx := c.readOperand(op.A)
				val := c.readOperand(op.B)
				arr := c.arrayOf(op.Arr)
				if idx < 0 || int(idx) >= len(arr) {
					return 0, 0, fmt.Errorf("asic: %v: index %d out of range [0,%d)", op.Pos, idx, len(arr)) //lint:alloc error path, aborts the run
				}
				energy += c.opEnergy(op, idx, val)
				arr[idx] = val
			case op.Code == cdfg.Br:
				next = op.Target
			case op.Code == cdfg.CBr:
				v := c.readOperand(op.A)
				if v != 0 {
					next = op.Then
				} else {
					next = op.Else
				}
			default:
				return 0, 0, fmt.Errorf("asic: op %v cannot execute on an ASIC core", op.Code) //lint:alloc error path, aborts the run
			}
		}
		if next == -1 {
			return 0, 0, fmt.Errorf("asic: block b%d fell through", blockID) //lint:alloc error path, aborts the run
		}
		blockID = next
	}
}

// arrayOf returns the core-local buffer of an array (preallocated for
// every array the region references).
func (c *Core) arrayOf(a cdfg.ArrRef) []int32 {
	return c.arrays[c.ix.IndexOf(dataflow.Key{Global: a.Global, ID: a.ID})]
}
