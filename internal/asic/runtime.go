package asic

import (
	"fmt"
	"math/bits"

	"lppart/internal/behav"
	"lppart/internal/bus"
	"lppart/internal/cdfg"
	"lppart/internal/codegen"
	"lppart/internal/dataflow"
	"lppart/internal/mem"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// Core is a synthesized ASIC core ready for co-simulation: it plugs into
// the ISS as the handler of the rendezvous instruction and executes the
// cluster's semantics on the shared memory while accounting cycle- and
// switching-accurate energy ("gate-level simulation tool with attached
// switching energy calculation", paper §3.5).
//
// The invocation protocol is the paper's Fig. 2a / §3.3 transfer scheme:
//
//	a/b) the cluster's live-in set (use[c]) is downloaded from shared
//	     memory over the bus into core-local registers and buffers,
//	c/d)  after execution the live-out set (gen[c] ∩ use[C_succ]) is
//	     deposited back for the µP to read.
//
// Everything the cluster touches is synchronized functionally so the
// co-simulation stays exact, but only the live sets are *charged* as
// transfers — matching Fig. 3's accounting.
type Core struct {
	ID      int
	Region  *cdfg.Region
	Binding *Binding

	prog *cdfg.Program
	lay  *codegen.Layout
	lib  *tech.Library
	bus  *bus.Bus
	mem  *mem.Memory
	// µP clock period, for converting ASIC cycles to system cycles.
	microClock units.Time

	liveIn, liveOut, genAll, touched []varSpan
	exitBlock                        int

	// Accounting.
	Invocations int64
	CyclesASIC  int64 // in ASIC clock cycles
	CyclesMuP   int64 // as seen by the system (µP clock), incl. transfers
	Energy      units.Energy
	WordsIn     int64
	WordsOut    int64

	// Switching-activity state per op ID.
	prevA, prevB map[int]int32

	// MaxBlocksPerInvocation guards against runaway clusters.
	MaxBlocks int64
}

type varSpan struct {
	key   dataflow.Key
	addr  int32 // shared-memory home
	words int32
	array bool
}

// NewCore synthesizes the runtime for a bound cluster. The bus and memory
// cores receive the transfer accounting; lay locates every interface
// variable in shared memory.
func NewCore(id int, p *cdfg.Program, r *cdfg.Region, b *Binding, lay *codegen.Layout,
	lib *tech.Library, bs *bus.Bus, m *mem.Memory) (*Core, error) {
	c := &Core{
		ID: id, Region: r, Binding: b,
		prog: p, lay: lay, lib: lib, bus: bs, mem: m,
		microClock: lib.Micro.ClockPeriod,
		prevA:      make(map[int]int32),
		prevB:      make(map[int]int32),
		MaxBlocks:  200_000_000,
	}
	gen, use := dataflow.GenUse(p, r)
	_, useSucc := dataflow.Surroundings(p, r)
	liveOut := gen.Intersect(useSucc)

	spansOf := func(s dataflow.Set) ([]varSpan, error) {
		var spans []varSpan
		for _, k := range s.Keys() {
			sp, err := c.spanOf(k)
			if err != nil {
				return nil, err
			}
			spans = append(spans, sp)
		}
		return spans, nil
	}
	var err error
	if c.liveIn, err = spansOf(use); err != nil {
		return nil, err
	}
	if c.liveOut, err = spansOf(liveOut); err != nil {
		return nil, err
	}
	if c.genAll, err = spansOf(gen); err != nil {
		return nil, err
	}
	// Everything referenced, for functional synchronization.
	all := gen.Union(use)
	if c.touched, err = spansOf(all); err != nil {
		return nil, err
	}
	exit, err := findExit(r)
	if err != nil {
		return nil, err
	}
	c.exitBlock = exit
	return c, nil
}

func (c *Core) spanOf(k dataflow.Key) (varSpan, error) {
	var v cdfg.Var
	if k.Global {
		v = c.prog.Globals[k.ID]
	} else {
		v = c.Region.Func.Locals[k.ID]
	}
	addr, words, ok := c.lay.VarAddr(c.prog, c.Region.Func.Name, k.Global, k.ID)
	if !ok {
		return varSpan{}, fmt.Errorf("asic: variable %s of %s has no shared-memory home",
			v.Name, c.Region.Func.Name)
	}
	return varSpan{key: k, addr: addr, words: words, array: v.IsArray()}, nil
}

// findExit locates the unique block outside the region reached from it.
func findExit(r *cdfg.Region) (int, error) {
	inside := make(map[int]bool, len(r.Blocks))
	for _, bid := range r.Blocks {
		inside[bid] = true
	}
	exit := -1
	for _, bid := range r.Blocks {
		for _, s := range r.Func.Block(bid).Succs() {
			if !inside[s] {
				if exit != -1 && exit != s {
					return 0, fmt.Errorf("asic: region %s has multiple exits", r.Label)
				}
				exit = s
			}
		}
	}
	if exit == -1 {
		return 0, fmt.Errorf("asic: region %s has no exit", r.Label)
	}
	return exit, nil
}

// state is the core's architectural state during one invocation.
type state struct {
	scalars map[dataflow.Key]int32
	temps   map[int]int32 // function-local temporaries (datapath regs)
	arrays  map[dataflow.Key][]int32
}

// RunASIC implements iss.ASICHandler: one cluster invocation on the shared
// memory. It returns the µP-clock cycles the system waits.
func (c *Core) RunASIC(id int32, shared []int32) (int64, error) {
	if int(id) != c.ID {
		return 0, fmt.Errorf("asic: core %d invoked as %d", c.ID, id)
	}
	c.Invocations++

	st := &state{
		scalars: make(map[dataflow.Key]int32),
		temps:   make(map[int]int32),
		arrays:  make(map[dataflow.Key][]int32),
	}
	// Download phase: functionally sync everything touched; charge the
	// live-in set.
	for _, sp := range c.touched {
		if sp.array {
			buf := make([]int32, sp.words)
			copy(buf, shared[sp.addr:sp.addr+sp.words])
			st.arrays[sp.key] = buf
		} else {
			st.scalars[sp.key] = shared[sp.addr]
		}
	}
	var transferStall int64
	inWords := 0
	for _, sp := range c.liveIn {
		inWords += int(sp.words)
	}
	c.WordsIn += int64(inWords)
	c.bus.Read(inWords)
	transferStall += int64(c.mem.Read(inWords))

	// Execute the cluster on the datapath.
	cycles, energy, err := c.execute(st)
	if err != nil {
		return 0, err
	}
	c.CyclesASIC += cycles
	c.Energy += energy

	// Upload phase: write back everything generated; charge the live-out
	// set.
	for _, sp := range c.genAll {
		if sp.array {
			copy(shared[sp.addr:sp.addr+sp.words], st.arrays[sp.key])
		} else {
			shared[sp.addr] = st.scalars[sp.key]
		}
	}
	outWords := 0
	for _, sp := range c.liveOut {
		outWords += int(sp.words)
	}
	c.WordsOut += int64(outWords)
	c.bus.Write(outWords)
	transferStall += int64(c.mem.Write(outWords))

	// Convert core cycles to system (µP) cycles.
	mups := int64(float64(cycles)*float64(c.Binding.Clock)/float64(c.microClock)) + 1
	total := mups + transferStall
	c.CyclesMuP += total
	return total, nil
}

func (c *Core) readOperand(st *state, o cdfg.Operand) (int32, error) {
	if o.IsConst {
		return o.K, nil
	}
	return c.readSlot(st, o.Ref)
}

func (c *Core) readSlot(st *state, r cdfg.VarRef) (int32, error) {
	if !r.Global && c.Region.Func.Locals[r.ID].Temp {
		return st.temps[r.ID], nil
	}
	k := dataflow.Key{Global: r.Global, ID: r.ID}
	v, ok := st.scalars[k]
	if !ok {
		// Not in the touched set: must be dead-in; reads see zero.
		return 0, nil
	}
	return v, nil
}

func (c *Core) writeSlot(st *state, r cdfg.VarRef, v int32) {
	if !r.Global && c.Region.Func.Locals[r.ID].Temp {
		st.temps[r.ID] = v
		return
	}
	st.scalars[dataflow.Key{Global: r.Global, ID: r.ID}] = v
}

// opEnergy charges one datapath operation with activity-scaled switching
// energy: E = E_active_cycle(kind) × dur × (0.25 + 0.75 × toggle rate).
func (c *Core) opEnergy(op *cdfg.Op, a, b int32) units.Energy {
	pl, ok := c.Binding.PlacementOf[op.ID]
	if !ok {
		return 0 // consts, branches: wiring and FSM, charged per cycle
	}
	if pl.Mem {
		return c.lib.EBufferAccess
	}
	tglA := float64(bits.OnesCount32(uint32(c.prevA[op.ID]^a))) / 32
	tglB := float64(bits.OnesCount32(uint32(c.prevB[op.ID]^b))) / 32
	c.prevA[op.ID], c.prevB[op.ID] = a, b
	act := 0.25 + 0.75*(tglA+tglB)/2
	r := c.lib.Resource(pl.Kind)
	return units.Energy(float64(pl.Dur) * act * float64(r.EnergyPerActiveCycle()))
}

// execute runs the region's blocks until control leaves for the exit
// block, accounting cycles (scheduled block latencies) and energy.
func (c *Core) execute(st *state) (cycles int64, energy units.Energy, err error) {
	inRegion := make(map[int]bool, len(c.Region.Blocks))
	for _, bid := range c.Region.Blocks {
		inRegion[bid] = true
	}
	f := c.Region.Func
	perCycleOverhead := c.lib.EControllerPerCycle +
		units.Energy(c.Binding.LiveWords)*c.lib.ERegisterPerCycle
	// Residual idle switching of gated instances, precomputed per cycle.
	var idlePerCycle units.Energy
	for _, in := range c.Binding.Instances {
		idlePerCycle += units.Energy(asicIdleFraction) *
			c.lib.Resource(in.Kind).EnergyPerIdleCycle()
	}
	// Active ops displace idle burn; approximating by charging idle on
	// every instance-cycle and activity energy on top stays within a few
	// percent for high-utilization clusters and is conservative.

	blockID := c.Region.Entry
	var blocksRun int64
	for {
		if !inRegion[blockID] {
			if blockID != c.exitBlock {
				return 0, 0, fmt.Errorf("asic: control left region %s via unexpected block b%d",
					c.Region.Label, blockID)
			}
			return cycles, energy, nil
		}
		blocksRun++
		if blocksRun > c.MaxBlocks {
			return 0, 0, fmt.Errorf("asic: region %s exceeded %d blocks", c.Region.Label, c.MaxBlocks)
		}
		blen := int64(c.Binding.BlockLen[blockID])
		cycles += blen
		energy += units.Energy(float64(blen)) * (perCycleOverhead + idlePerCycle)

		b := f.Block(blockID)
		next := -1
		for i := range b.Ops {
			op := &b.Ops[i]
			switch {
			case op.Code == cdfg.Nop:
			case op.Code == cdfg.ConstOp:
				c.writeSlot(st, op.Dst, op.Imm)
			case op.Code == cdfg.Copy:
				v, e := c.readOperand(st, op.A)
				if e != nil {
					return 0, 0, e
				}
				energy += c.opEnergy(op, v, 0)
				c.writeSlot(st, op.Dst, v)
			case op.Code.IsBinary():
				a, e := c.readOperand(st, op.A)
				if e != nil {
					return 0, 0, e
				}
				bv, e := c.readOperand(st, op.B)
				if e != nil {
					return 0, 0, e
				}
				energy += c.opEnergy(op, a, bv)
				v, evalErr := behav.EvalBinOp(cdfg.BehavBinOp(op.Code), a, bv)
				if evalErr != nil {
					return 0, 0, fmt.Errorf("asic: %v: %v", op.Pos, evalErr)
				}
				c.writeSlot(st, op.Dst, v)
			case op.Code == cdfg.Neg || op.Code == cdfg.Not || op.Code == cdfg.LNot:
				a, e := c.readOperand(st, op.A)
				if e != nil {
					return 0, 0, e
				}
				energy += c.opEnergy(op, a, 0)
				var v int32
				switch op.Code {
				case cdfg.Neg:
					v = -a
				case cdfg.Not:
					v = ^a
				default:
					if a == 0 {
						v = 1
					}
				}
				c.writeSlot(st, op.Dst, v)
			case op.Code == cdfg.Load:
				idx, e := c.readOperand(st, op.A)
				if e != nil {
					return 0, 0, e
				}
				arr := c.arrayOf(st, op.Arr)
				if idx < 0 || int(idx) >= len(arr) {
					return 0, 0, fmt.Errorf("asic: %v: index %d out of range [0,%d)", op.Pos, idx, len(arr))
				}
				energy += c.opEnergy(op, idx, 0)
				c.writeSlot(st, op.Dst, arr[idx])
			case op.Code == cdfg.Store:
				idx, e := c.readOperand(st, op.A)
				if e != nil {
					return 0, 0, e
				}
				val, e := c.readOperand(st, op.B)
				if e != nil {
					return 0, 0, e
				}
				arr := c.arrayOf(st, op.Arr)
				if idx < 0 || int(idx) >= len(arr) {
					return 0, 0, fmt.Errorf("asic: %v: index %d out of range [0,%d)", op.Pos, idx, len(arr))
				}
				energy += c.opEnergy(op, idx, val)
				arr[idx] = val
			case op.Code == cdfg.Br:
				next = op.Target
			case op.Code == cdfg.CBr:
				v, e := c.readOperand(st, op.A)
				if e != nil {
					return 0, 0, e
				}
				if v != 0 {
					next = op.Then
				} else {
					next = op.Else
				}
			default:
				return 0, 0, fmt.Errorf("asic: op %v cannot execute on an ASIC core", op.Code)
			}
		}
		if next == -1 {
			return 0, 0, fmt.Errorf("asic: block b%d fell through", blockID)
		}
		blockID = next
	}
}

// arrayOf returns the core-local buffer of an array, creating a
// zero-initialized one if the array was never synchronized (dead-in).
func (c *Core) arrayOf(st *state, a cdfg.ArrRef) []int32 {
	k := dataflow.Key{Global: a.Global, ID: a.ID}
	if buf, ok := st.arrays[k]; ok {
		return buf
	}
	var v cdfg.Var
	if a.Global {
		v = c.prog.Globals[a.ID]
	} else {
		v = c.Region.Func.Locals[a.ID]
	}
	buf := make([]int32, v.Len)
	st.arrays[k] = buf
	return buf
}
