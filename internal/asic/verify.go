package asic

import (
	"fmt"

	"lppart/internal/tech"
)

// VerifyBinding checks a synthesized datapath against Fig. 4's own
// premises: instance binding must respect the kind-level budget the
// scheduler worked under, no instance may serve two operations in the
// same (global) control step, and the derived aggregates — utilization
// rate, hardware effort, clock — must be consistent with the instance
// list. partition.Config.Verify runs it on every fresh binding before
// the candidate enters selection.
func VerifyBinding(b *Binding, lib *tech.Library) error {
	if b == nil || b.Schedule == nil {
		return fmt.Errorf("asic: verify: nil binding or schedule")
	}
	if lib == nil {
		return fmt.Errorf("asic: verify: nil library")
	}
	rs := b.Schedule.Config.RS
	r := b.Schedule.Region
	fail := func(format string, args ...any) error {
		return fmt.Errorf("asic: verify: region %s: %s", r.Label, fmt.Sprintf(format, args...))
	}

	// Control-step accounting: Steps is the FSM state count over all
	// blocks, and BlockLen mirrors the per-block latencies.
	totalSteps := 0
	for _, bs := range b.Schedule.Blocks {
		if got, ok := b.BlockLen[bs.Block.ID]; !ok || got != bs.Len {
			return fail("BlockLen[b%d]=%d, schedule says %d", bs.Block.ID, got, bs.Len)
		}
		totalSteps += bs.Len
	}
	if b.Steps != totalSteps {
		return fail("Steps=%d, block latencies sum to %d", b.Steps, totalSteps)
	}

	// Kind-level budget: Fig. 4 never instantiates beyond the scheduler's
	// resource set.
	for k := tech.ResourceKind(0); k < tech.NumResourceKinds; k++ {
		if n, limit := b.InstanceCount(k), rs.Limit(k); n > limit {
			return fail("%d instances of %v, budget %d", n, k, limit)
		}
	}

	// Placement coverage and per-instance exclusivity, replayed over the
	// same global step numbering Bind used (block latencies concatenated).
	busy := make([]map[int]int, len(b.Instances)) // instance -> step -> op ID
	for i := range busy {
		busy[i] = make(map[int]int)
	}
	placed := 0
	base := 0
	for _, bs := range b.Schedule.Blocks {
		for i := range bs.Ops {
			p := &bs.Ops[i]
			pl, ok := b.PlacementOf[p.Op.ID]
			if !ok {
				return fail("scheduled op %d has no placement", p.Op.ID)
			}
			placed++
			if pl.Mem != p.Mem {
				return fail("op %d memory placement disagrees with schedule", p.Op.ID)
			}
			if pl.Dur != p.Dur {
				return fail("op %d bound for %d steps, scheduled for %d", p.Op.ID, pl.Dur, p.Dur)
			}
			if pl.Mem {
				continue
			}
			if pl.Instance < 0 || pl.Instance >= len(b.Instances) {
				return fail("op %d bound to missing instance %d", p.Op.ID, pl.Instance)
			}
			inst := b.Instances[pl.Instance]
			if inst.Kind != pl.Kind || pl.Kind != p.Kind {
				return fail("op %d kind mismatch: placed on %v, bound as %v, instance is %v",
					p.Op.ID, p.Kind, pl.Kind, inst.Kind)
			}
			for s := base + p.Start; s < base+p.End(); s++ {
				if prev, taken := busy[pl.Instance][s]; taken {
					return fail("instance %v#%d serves ops %d and %d in step %d",
						inst.Kind, inst.Index, prev, p.Op.ID, s)
				}
				busy[pl.Instance][s] = p.Op.ID
			}
		}
		base += bs.Len
	}
	if placed != len(b.PlacementOf) {
		return fail("%d placements recorded, %d ops scheduled", len(b.PlacementOf), placed)
	}

	// Aggregate consistency: utilization in [0,1] per Eq. 4, no instance
	// busier than the cluster itself, GEQ and clock derived from the
	// instance list.
	geqDatapath := 0
	for _, in := range b.Instances {
		if in.ActiveWeighted < 0 || in.ActiveWeighted > b.NcycWeighted {
			return fail("instance %v#%d active %d cycles of %d total",
				in.Kind, in.Index, in.ActiveWeighted, b.NcycWeighted)
		}
		geqDatapath += lib.Resource(in.Kind).GEQ
		if t := lib.Resource(in.Kind).Tcyc; b.Clock < t {
			return fail("clock %v faster than instantiated %v (%v)", b.Clock, in.Kind, t)
		}
	}
	if b.URate < 0 || b.URate > 1 {
		return fail("utilization rate %g outside [0,1]", b.URate)
	}
	if b.GEQDatapath != geqDatapath {
		return fail("datapath GEQ %d, instances sum to %d", b.GEQDatapath, geqDatapath)
	}
	if want := lib.ControllerGEQPerStep * b.Steps; b.GEQController != want {
		return fail("controller GEQ %d, %d steps require %d", b.GEQController, b.Steps, want)
	}
	if b.Clock < minClock {
		return fail("clock %v below controller floor %v", b.Clock, minClock)
	}
	return nil
}
