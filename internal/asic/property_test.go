package asic

import (
	"testing"

	"lppart/internal/behav"
	"lppart/internal/bus"
	"lppart/internal/cdfg"
	"lppart/internal/codegen"
	"lppart/internal/interp"
	"lppart/internal/mem"
	"lppart/internal/sched"
	"lppart/internal/tech"
)

// buildCore synthesizes a core for the named app source's first eligible
// top-level loop and returns it with a fresh shared memory.
func buildCore(t *testing.T, src string, loopIdx int) (*Core, []int32) {
	core, shared, _, _ := buildCoreLay(t, src, loopIdx)
	return core, shared
}

// buildCoreLay is buildCore plus the layout and IR (for locating homes).
func buildCoreLay(t *testing.T, src string, loopIdx int) (*Core, []int32, *codegen.Layout, *cdfg.Program) {
	t.Helper()
	prog := behav.MustParse("t", src)
	ir := cdfg.MustBuild(prog)
	profRes, err := interp.Run(ir, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	var loops []*cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop && r.Depth() == 1 {
			loops = append(loops, r)
		}
	}
	target := loops[loopIdx]
	lib := tech.Default()
	sets := tech.DefaultResourceSets()
	rsched, err := sched.ScheduleRegion(sched.Config{Lib: lib, RS: &sets[2]}, target)
	if err != nil {
		t.Fatal(err)
	}
	binding, err := Bind(rsched, lib, func(bid int) int64 {
		return profRes.Prof.BlockCount(target.Func, bid)
	})
	if err != nil {
		t.Fatal(err)
	}
	_, lay, err := codegen.Compile(ir, codegen.Options{MemWords: 1 << 14, StackWords: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewCore(0, ir, target, binding, lay, lib, bus.New(lib), mem.New(lib))
	if err != nil {
		t.Fatal(err)
	}
	return core, make([]int32, 1<<14), lay, ir
}

const scaleSrc = `
var a[64]; var out[64];
func main() {
	var i;
	for i = 0; i < 64; i = i + 1 { a[i] = (i * 11) & 127; }
	for i = 0; i < 64; i = i + 1 { out[i] = (a[i] * 5 + (a[i] >> 1)) & 1023; }
}
`

// TestCoreAccountingAccumulates: repeated invocations accumulate energy,
// cycles and transfer words linearly (idempotent per-invocation work).
func TestCoreAccountingAccumulates(t *testing.T) {
	core, shared := buildCore(t, scaleSrc, 1)
	var prevE float64
	var prevC int64
	for k := 1; k <= 4; k++ {
		if _, err := core.RunASIC(0, shared); err != nil {
			t.Fatal(err)
		}
		if core.Invocations != int64(k) {
			t.Fatalf("invocations = %d, want %d", core.Invocations, k)
		}
		if float64(core.Energy) <= prevE {
			t.Error("energy must strictly accumulate")
		}
		if core.CyclesMuP <= prevC {
			t.Error("cycles must strictly accumulate")
		}
		prevE, prevC = float64(core.Energy), core.CyclesMuP
	}
	// Identical invocations: per-invocation cycles are constant, so the
	// total is 4x the first (energy differs slightly via toggle state).
	if core.CyclesASIC%4 != 0 {
		t.Errorf("4 identical invocations should divide cycles evenly, got %d", core.CyclesASIC)
	}
	if core.WordsIn != 4*core.WordsIn/4 || core.WordsIn == 0 {
		t.Errorf("transfer words = %d", core.WordsIn)
	}
}

// TestCoreEnergyScalesWithActivity: feeding high-toggle data (alternating
// bit patterns) costs more replay energy than constant data.
func TestCoreEnergyScalesWithActivity(t *testing.T) {
	mkCore := func() (*Core, []int32) { return buildCore(t, scaleSrc, 1) }

	// Constant input: after the first execution, operands never toggle.
	constCore, constMem := mkCore()
	for i := 0; i < 64; i++ {
		constMem[8+i] = 42 // global array 'a' starts at word 8
	}
	if _, err := constCore.RunASIC(0, constMem); err != nil {
		t.Fatal(err)
	}

	// Alternating input: operands flip many bits between iterations.
	togCore, togMem := mkCore()
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			togMem[8+i] = 0x5555555
		} else {
			togMem[8+i] = -0x5555556
		}
	}
	if _, err := togCore.RunASIC(0, togMem); err != nil {
		t.Fatal(err)
	}

	if togCore.Energy <= constCore.Energy {
		t.Errorf("high-toggle run %v must cost more than constant run %v",
			togCore.Energy, constCore.Energy)
	}
	// Cycles are data-independent for this kernel.
	if togCore.CyclesASIC != constCore.CyclesASIC {
		t.Errorf("cycles differ: %d vs %d", togCore.CyclesASIC, constCore.CyclesASIC)
	}
}

// TestCoreClockGrowsWithHardware: the synthesized clock degrades with
// netlist size (the wire-delay model behind trick's slowdown).
func TestCoreClockGrowsWithHardware(t *testing.T) {
	prog := behav.MustParse("t", scaleSrc)
	ir := cdfg.MustBuild(prog)
	profRes, err := interp.Run(ir, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	var loop *cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop && r.Depth() == 1 {
			loop = r
		}
	}
	lib := tech.Default()
	sets := tech.DefaultResourceSets()
	freq := func(bid int) int64 { return profRes.Prof.BlockCount(loop.Func, bid) }

	sSmall, err := sched.ScheduleRegion(sched.Config{Lib: lib, RS: &sets[1]}, loop) // no mul set
	if err == nil {
		bSmall, err := Bind(sSmall, lib, freq)
		if err != nil {
			t.Fatal(err)
		}
		sStd, err := sched.ScheduleRegion(sched.Config{Lib: lib, RS: &sets[2]}, loop)
		if err != nil {
			t.Fatal(err)
		}
		bStd, err := Bind(sStd, lib, freq)
		if err != nil {
			t.Fatal(err)
		}
		if bStd.GEQTotal() > bSmall.GEQTotal() && bStd.Clock <= bSmall.Clock {
			t.Errorf("bigger core (%d GEQ, clock %v) must clock slower than smaller (%d GEQ, clock %v)",
				bStd.GEQTotal(), bStd.Clock, bSmall.GEQTotal(), bSmall.Clock)
		}
	}
}

// TestCoreSharedMemoryRoundTrip: the upload phase publishes results and
// the download phase observes external writes between invocations. Between
// invocations the test plays the µP's role and resets the loop counter's
// shared-memory home (in a real co-simulation the software's loop init
// does this before each rendezvous).
func TestCoreSharedMemoryRoundTrip(t *testing.T) {
	core, shared, lay, ir := buildCoreLay(t, scaleSrc, 1)
	var iHome int32 = -1
	main := ir.Func("main")
	for id, l := range main.Locals {
		if l.Name == "i" {
			addr, _, ok := lay.VarAddr(ir, "main", false, id)
			if !ok {
				t.Fatal("loop counter has no static home")
			}
			iHome = addr
		}
	}
	if iHome < 0 {
		t.Fatal("no loop counter found")
	}
	for i := int32(0); i < 64; i++ {
		shared[8+i] = i // input array 'a'
	}
	shared[iHome] = 0
	if _, err := core.RunASIC(0, shared); err != nil {
		t.Fatal(err)
	}
	// out[i] = (a[i]*5 + a[i]>>1) & 1023; out is the second global.
	outBase := int32(8 + 64)
	want := (int32(10)*5 + 10>>1) & 1023
	if shared[outBase+10] != want {
		t.Errorf("out[10] = %d, want %d", shared[outBase+10], want)
	}
	// Mutate the input externally; the next invocation must see it.
	shared[8+10] = 100
	shared[iHome] = 0 // the µP's loop init before the rendezvous
	if _, err := core.RunASIC(0, shared); err != nil {
		t.Fatal(err)
	}
	want = (100*5 + 100>>1) & 1023
	if shared[outBase+10] != want {
		t.Errorf("after external write, out[10] = %d, want %d", shared[outBase+10], want)
	}
}

// TestRunASICZeroAlloc: after warm-up, repeated invocations must not heap
// allocate — the core's invocation state lives entirely in preallocated
// dense slabs (scalars, temps, array buffers, placement tables), which is
// the zero-alloc contract of the partitioning hot path.
func TestRunASICZeroAlloc(t *testing.T) {
	core, shared := buildCore(t, scaleSrc, 1)
	if _, err := core.RunASIC(0, shared); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := core.RunASIC(0, shared); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("RunASIC allocates %.1f objects per invocation, want 0", allocs)
	}
}
