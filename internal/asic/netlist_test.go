package asic

import (
	"strings"
	"testing"

	"lppart/internal/tech"
)

func TestVerilogStructure(t *testing.T) {
	core, _ := buildCore(t, scaleSrc, 1)
	b := core.Binding
	lib := tech.Default()
	v := b.Verilog("scale_core", lib)

	if !strings.Contains(v, "module scale_core (") {
		t.Error("missing module header")
	}
	if !strings.Contains(v, "endmodule") {
		t.Error("missing endmodule")
	}
	// One instantiation per bound instance.
	for idx, in := range b.Instances {
		if !strings.Contains(v, "u_"+instName(idx, in)) {
			t.Errorf("missing instance %s", instName(idx, in))
		}
	}
	// One register per live word.
	for i := 0; i < b.LiveWords; i++ {
		if !strings.Contains(v, "reg  [31:0] r"+itoa(i)+";") {
			t.Errorf("missing register r%d", i)
		}
	}
	// One state parameter per control step plus the done state.
	states := strings.Count(v, "localparam S")
	if states != b.Steps+2 { // S0..S(n-1), S_DONE, STATE_BITS doesn't match prefix
		t.Errorf("state parameters = %d, want %d", states, b.Steps+2)
	}
	// FSM and ports present.
	for _, want := range []string{"buf_rdata", "posedge clk", "rst_n", "done"} {
		if !strings.Contains(v, want) {
			t.Errorf("netlist missing %q", want)
		}
	}
	// Traceability: at least one state comment names a multiply (here a
	// constant multiply, strength-reduced onto an ALU) and a buffer op.
	if !strings.Contains(v, "mul@") {
		t.Errorf("no traceable multiply in netlist:\n%s", v)
	}
	if !strings.Contains(v, "@buf") {
		t.Error("no traceable buffer access in netlist")
	}
}

func TestVerilogDeterministic(t *testing.T) {
	core, _ := buildCore(t, scaleSrc, 1)
	lib := tech.Default()
	v1 := core.Binding.Verilog("c", lib)
	v2 := core.Binding.Verilog("c", lib)
	if v1 != v2 {
		t.Error("netlist emission is not deterministic")
	}
}

func TestStateBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 17: 5, 64: 6, 65: 7}
	for n, want := range cases {
		if got := stateBits(n); got != want {
			t.Errorf("stateBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
