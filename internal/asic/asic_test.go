package asic

import (
	"strings"
	"testing"

	"lppart/internal/behav"
	"lppart/internal/bus"
	"lppart/internal/cdfg"
	"lppart/internal/codegen"
	"lppart/internal/interp"
	"lppart/internal/iss"
	"lppart/internal/mem"
	"lppart/internal/sched"
	"lppart/internal/tech"
)

// buildScheduled parses src, profiles it, and schedules the first loop
// region on the rs-std resource set.
func buildScheduled(t *testing.T, src string) (*cdfg.Program, *cdfg.Region, *sched.RegionSchedule, *interp.Profile) {
	t.Helper()
	prog := behav.MustParse("t", src)
	ir := cdfg.MustBuild(prog)
	res, err := interp.Run(ir, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	// Pick the last top-level loop: firSrc's compute kernel (the one with
	// a variable multiply), not the initialization loop.
	var loop *cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop && r.Depth() == 1 {
			loop = r
		}
	}
	if loop == nil {
		t.Fatal("no loop region")
	}
	lib := tech.Default()
	sets := tech.DefaultResourceSets()
	rsched, err := sched.ScheduleRegion(sched.Config{Lib: lib, RS: &sets[2]}, loop)
	if err != nil {
		t.Fatalf("sched: %v", err)
	}
	return ir, loop, rsched, res.Prof
}

const firSrc = `
var in[64]; var out[64]; var gain;
func main() {
	var i;
	gain = 3;
	for i = 0; i < 64; i = i + 1 { in[i] = ((i * 13) & 31) - 14; }
	for i = 1; i < 63; i = i + 1 {
		out[i] = (in[i-1] + 2*in[i] + in[i+1]) * gain >> 2;
	}
}
`

func TestBindBasics(t *testing.T) {
	ir, loop, rsched, prof := buildScheduled(t, firSrc)
	_ = ir
	lib := tech.Default()
	b, err := Bind(rsched, lib, func(bid int) int64 {
		return prof.BlockCount(loop.Func, bid)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Instances) == 0 {
		t.Fatal("no instances bound")
	}
	if b.URate <= 0 || b.URate > 1 {
		t.Errorf("U_R = %g, want (0,1]", b.URate)
	}
	if b.NcycWeighted <= 0 {
		t.Error("weighted cycles must be positive")
	}
	if b.GEQDatapath <= 0 || b.GEQController <= 0 || b.GEQRegisters <= 0 {
		t.Errorf("GEQ breakdown: %d/%d/%d", b.GEQDatapath, b.GEQController, b.GEQRegisters)
	}
	if b.GEQTotal() != b.GEQDatapath+b.GEQController+b.GEQRegisters {
		t.Error("GEQTotal mismatch")
	}
	if b.Clock < minClock {
		t.Errorf("clock %v below controller floor", b.Clock)
	}
	// Multiplier instantiated (the kernel multiplies), so the clock must
	// be at least the multiplier's.
	if b.InstanceCount(tech.Multiplier) < 1 {
		t.Error("kernel multiplies; expected a multiplier instance")
	}
	if b.Clock < lib.Resource(tech.Multiplier).Tcyc {
		t.Errorf("clock %v below multiplier Tcyc", b.Clock)
	}
}

func TestBindRespectsBudget(t *testing.T) {
	_, loop, _, prof := buildScheduled(t, firSrc)
	lib := tech.Default()
	sets := tech.DefaultResourceSets()
	for si := range sets {
		rsched, err := sched.ScheduleRegion(sched.Config{Lib: lib, RS: &sets[si]}, loop)
		if err != nil {
			continue // set cannot execute the cluster
		}
		b, err := Bind(rsched, lib, func(bid int) int64 {
			return prof.BlockCount(loop.Func, bid)
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := tech.ResourceKind(0); k < tech.NumResourceKinds; k++ {
			if got := b.InstanceCount(k); got > sets[si].Limit(k) {
				t.Errorf("set %s: %d instances of %v exceed budget %d",
					sets[si].Name, got, k, sets[si].Limit(k))
			}
		}
	}
}

func TestBindInstanceActiveBounded(t *testing.T) {
	_, loop, rsched, prof := buildScheduled(t, firSrc)
	b, err := Bind(rsched, tech.Default(), func(bid int) int64 {
		return prof.BlockCount(loop.Func, bid)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range b.Instances {
		if in.ActiveWeighted <= 0 {
			t.Errorf("instance %v#%d never active — should not have been instantiated", in.Kind, in.Index)
		}
		if in.ActiveWeighted > b.NcycWeighted {
			t.Errorf("instance %v#%d active %d exceeds cluster cycles %d",
				in.Kind, in.Index, in.ActiveWeighted, b.NcycWeighted)
		}
	}
}

func TestSelectionEstimatePositive(t *testing.T) {
	_, loop, rsched, prof := buildScheduled(t, firSrc)
	lib := tech.Default()
	b, err := Bind(rsched, lib, func(bid int) int64 {
		return prof.BlockCount(loop.Func, bid)
	})
	if err != nil {
		t.Fatal(err)
	}
	e := b.EnergySelectionEstimate(lib)
	if e <= 0 {
		t.Fatalf("selection estimate %v", e)
	}
	// Sanity: the per-cluster ASIC energy must be far below what the µP
	// spends per the instruction model on the same work (the paper's
	// premise). The loop executes ~62*10 ops; µP at ~5 nJ/op would be
	// ~3 µJ. The ASIC estimate should be well under 1 µJ.
	if e > 1e-6 {
		t.Errorf("selection estimate %v implausibly high", e)
	}
}

// TestCoSimulationMatchesSoftware is the central differential test: a
// partitioned design (µP + ASIC core co-simulation) must produce exactly
// the same shared-memory contents as the all-software design.
func TestCoSimulationMatchesSoftware(t *testing.T) {
	sources := map[string]string{
		"fir": firSrc,
		"scale": `
var a[32]; var total;
func main() {
	var i;
	for i = 0; i < 32; i = i + 1 { a[i] = i * 7 - 50; }
	for i = 0; i < 32; i = i + 1 { a[i] = (a[i] << 1) + 3; }
	total = 0;
	for i = 0; i < 32; i = i + 1 { total = total + a[i]; }
}`,
		"conditional": `
var v[48]; var pos; var neg;
func main() {
	var i;
	for i = 0; i < 48; i = i + 1 { v[i] = (i * 31) % 17 - 8; }
	for i = 0; i < 48; i = i + 1 {
		if v[i] > 0 { pos = pos + v[i]; } else { neg = neg - v[i]; }
	}
}`,
		"nested-loop": `
var img[64]; var outp[64];
func main() {
	var x; var y; var acc;
	for y = 0; y < 8; y = y + 1 {
		for x = 0; x < 8; x = x + 1 { img[y*8+x] = (x ^ y) * 5; }
	}
	for y = 1; y < 7; y = y + 1 {
		for x = 1; x < 7; x = x + 1 {
			acc = img[y*8+x]*4 + img[y*8+x-1] + img[y*8+x+1] + img[(y-1)*8+x] + img[(y+1)*8+x];
			outp[y*8+x] = acc >> 3;
		}
	}
}`,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			coSimDifferential(t, src, 1) // partition the 2nd loop region
		})
	}
}

// coSimDifferential compiles src twice — all-software and with loop
// region #idx excluded to an ASIC core — runs both, and compares every
// global in shared memory.
func coSimDifferential(t *testing.T, src string, idx int) {
	t.Helper()
	prog := behav.MustParse("t", src)
	ir := cdfg.MustBuild(prog)
	lib := tech.Default()
	sets := tech.DefaultResourceSets()

	profRes, err := interp.Run(ir, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}

	var loops []*cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop && r.Depth() == 1 {
			loops = append(loops, r)
		}
	}
	if idx >= len(loops) {
		t.Fatalf("only %d top-level loops", len(loops))
	}
	target := loops[idx]

	// All-software reference.
	swProg, swLay, err := codegen.Compile(ir, codegen.Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	swRes, err := iss.Run(swProg, iss.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Partitioned design.
	hwProg, hwLay, err := codegen.Compile(ir, codegen.Options{
		MemWords: 1 << 16, StackWords: 1 << 12,
		Exclude: map[int]int{target.ID: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	rsched, err := sched.ScheduleRegion(sched.Config{Lib: lib, RS: &sets[2]}, target)
	if err != nil {
		t.Fatal(err)
	}
	binding, err := Bind(rsched, lib, func(bid int) int64 {
		return profRes.Prof.BlockCount(target.Func, bid)
	})
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New(lib)
	m := mem.New(lib)
	core, err := NewCore(0, ir, target, binding, hwLay, lib, b, m)
	if err != nil {
		t.Fatal(err)
	}
	hwRes, err := iss.Run(hwProg, iss.Options{ASIC: core})
	if err != nil {
		t.Fatal(err)
	}

	// Compare all globals.
	for gi, g := range ir.Globals {
		swAddr, words, _ := swLay.VarAddr(ir, "", true, gi)
		hwAddr, _, _ := hwLay.VarAddr(ir, "", true, gi)
		for w := int32(0); w < words; w++ {
			if swRes.Mem[swAddr+w] != hwRes.Mem[hwAddr+w] {
				t.Fatalf("global %s[%d]: sw=%d hw=%d", g.Name, w,
					swRes.Mem[swAddr+w], hwRes.Mem[hwAddr+w])
			}
		}
	}
	// Co-sim accounting sanity.
	if core.Invocations != 1 {
		t.Errorf("invocations = %d, want 1", core.Invocations)
	}
	if core.CyclesASIC <= 0 || core.Energy <= 0 {
		t.Errorf("cycles=%d energy=%v", core.CyclesASIC, core.Energy)
	}
	if core.WordsIn <= 0 {
		t.Error("no input transfers charged")
	}
	if b.Energy() <= 0 || m.Energy() <= 0 {
		t.Error("bus/memory transfer energy missing")
	}
	if hwRes.ASICCycles != core.CyclesMuP {
		t.Errorf("ISS ASIC cycles %d != core µP cycles %d", hwRes.ASICCycles, core.CyclesMuP)
	}
	// The partitioned µP executes fewer instructions.
	if hwRes.Instrs >= swRes.Instrs {
		t.Errorf("partitioned µP ran %d instrs, all-SW %d — cluster not offloaded",
			hwRes.Instrs, swRes.Instrs)
	}
}

func TestCoreRejectsWrongID(t *testing.T) {
	prog := behav.MustParse("t", firSrc)
	ir := cdfg.MustBuild(prog)
	lib := tech.Default()
	sets := tech.DefaultResourceSets()
	profRes, err := interp.Run(ir, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	var loop *cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop {
			loop = r
			break
		}
	}
	rsched, err := sched.ScheduleRegion(sched.Config{Lib: lib, RS: &sets[2]}, loop)
	if err != nil {
		t.Fatal(err)
	}
	binding, err := Bind(rsched, lib, func(bid int) int64 {
		return profRes.Prof.BlockCount(loop.Func, bid)
	})
	if err != nil {
		t.Fatal(err)
	}
	_, lay, err := codegen.Compile(ir, codegen.Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewCore(3, ir, loop, binding, lay, lib, bus.New(lib), mem.New(lib))
	if err != nil {
		t.Fatal(err)
	}
	shared := make([]int32, 1<<16)
	if _, err := core.RunASIC(0, shared); err == nil || !strings.Contains(err.Error(), "invoked as") {
		t.Errorf("wrong-id invocation: %v", err)
	}
}

func TestUtilizationImprovesWithTighterSets(t *testing.T) {
	// A serial chain on a wide resource set wastes instances; on a tiny
	// set utilization must be at least as high.
	src := `
var x; var n;
func main() {
	var i;
	n = 100;
	for i = 0; i < n; i = i + 1 {
		x = ((x + 3) ^ (x - 1)) + ((x & 7) | 1);
	}
}
`
	prog := behav.MustParse("t", src)
	ir := cdfg.MustBuild(prog)
	lib := tech.Default()
	profRes, err := interp.Run(ir, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	var loop *cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop {
			loop = r
		}
	}
	uOf := func(rsSet *tech.ResourceSet) float64 {
		rsched, err := sched.ScheduleRegion(sched.Config{Lib: lib, RS: rsSet}, loop)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Bind(rsched, lib, func(bid int) int64 {
			return profRes.Prof.BlockCount(loop.Func, bid)
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.URate
	}
	sets := tech.DefaultResourceSets()
	uTiny, uWide := uOf(&sets[0]), uOf(&sets[3])
	if uTiny < uWide {
		t.Errorf("tiny-set utilization %.3f below wide-set %.3f", uTiny, uWide)
	}
}
