// Package asic models the application-specific core that a selected
// cluster is synthesized into. It implements the paper's Fig. 4 algorithm
// — binding the scheduled operations to resource *instances*, computing
// the hardware effort GEQ_RS and the utilization rate U_R^core — plus the
// gate-level-style energy estimation of Fig. 1 line 15: a cycle-accurate
// replay of the cluster on the bound datapath with switching activity
// derived from live operand values (Hamming distance between consecutive
// executions).
//
// Hardware-effort accounting: the datapath GEQ is Fig. 4's GEQ_RS; on top
// the core pays a controller FSM (per control step) and a register file
// (per live word). Cluster data buffers are carved from the system's
// existing memory core (the shared memory of Fig. 2a), so they add buffer
// access energy but no cells to the "additional hardware" the paper
// bounds at 16k cells.
package asic

import (
	"fmt"
	"math"
	"sort"

	"lppart/internal/cdfg"
	"lppart/internal/sched"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// asicIdleFraction is the residual switching of clock-gated idle resources
// in the synthesized core. A custom core's FSM knows exactly when each
// unit is needed, so gating is near-perfect but the clock tree still
// burns a little.
const asicIdleFraction = 0.12

// minClock is the floor on the ASIC cycle time (controller limited) when
// no datapath resource is instantiated.
const minClock = 20 * units.NanoSecond

// Instance is one bound resource instance of the datapath.
type Instance struct {
	Kind  tech.ResourceKind
	Index int // instance number within the kind
	// ActiveWeighted is the profile-weighted count of cycles this
	// instance is actively used (Fig. 4's util[rs][is], i.e.
	// #ex_cycs × #ex_times summed over control steps).
	ActiveWeighted int64
}

// Placement locates one operation on the datapath.
type Placement struct {
	Kind     tech.ResourceKind
	Instance int // index into Binding.Instances
	Dur      int
	Mem      bool // executes on a buffer port, not a datapath instance
}

// Binding is the synthesized datapath of a cluster: Fig. 4's outputs.
type Binding struct {
	Schedule *sched.RegionSchedule
	// Instances lists the instantiated resources in creation order.
	Instances []Instance
	// PlacementOf maps op IDs to their binding.
	PlacementOf map[int]Placement
	// NcycWeighted is the profile-weighted total cluster cycles
	// (Fig. 4's N_cyc^c over the whole application run).
	NcycWeighted int64
	// Steps is the total control-step count (FSM states).
	Steps int
	// URate is U_R^core per Eq. 4 / Fig. 4 line 24.
	URate float64
	// LiveWords is the number of scalar values the datapath must
	// register (cluster-local scalars and temporaries).
	LiveWords int
	// GEQ breakdown.
	GEQDatapath, GEQController, GEQRegisters int
	// Clock is the core's cycle time: the slowest instantiated resource.
	Clock units.Time
	// BlockLen maps block IDs to their control-step count, for the
	// runtime replay.
	BlockLen map[int]int
}

// GEQTotal is the core's total hardware effort in gate equivalents
// ("cells"): the quantity the paper bounds at "less than 16k cells".
func (b *Binding) GEQTotal() int { return b.GEQDatapath + b.GEQController + b.GEQRegisters }

// InstanceCount returns the number of instances of a kind.
func (b *Binding) InstanceCount(k tech.ResourceKind) int {
	n := 0
	for _, in := range b.Instances {
		if in.Kind == k {
			n++
		}
	}
	return n
}

// Bind runs the Fig. 4 algorithm over a scheduled cluster. blockFreq
// returns the profiled execution count of a basic block (#ex_times); the
// library supplies per-resource GEQ, power and cycle time.
func Bind(rsched *sched.RegionSchedule, lib *tech.Library, blockFreq func(blockID int) int64) (*Binding, error) {
	if rsched == nil || lib == nil {
		return nil, fmt.Errorf("asic: Bind requires a schedule and a library")
	}
	b := &Binding{
		Schedule:    rsched,
		PlacementOf: make(map[int]Placement),
		BlockLen:    make(map[int]int),
	}
	// busy[instanceIdx][globalStep] marks occupancy; instances are
	// created on demand (Fig. 4 lines 9-13: reuse an already-instantiated
	// instance free at this step, else instantiate — the scheduler
	// guarantees a kind-level budget, so instance count never exceeds it).
	busy := []map[int]bool{}
	instOf := make(map[tech.ResourceKind][]int) // kind -> instance indices

	base := 0
	for _, bs := range rsched.Blocks {
		freq := blockFreq(bs.Block.ID)
		b.BlockLen[bs.Block.ID] = bs.Len
		b.NcycWeighted += int64(bs.Len) * freq
		b.Steps += bs.Len
		// Deterministic order: by start step, then op ID.
		ops := make([]sched.PlacedOp, len(bs.Ops))
		copy(ops, bs.Ops)
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].Start != ops[j].Start {
				return ops[i].Start < ops[j].Start
			}
			return ops[i].Op.ID < ops[j].Op.ID
		})
		for _, p := range ops {
			if p.Mem {
				b.PlacementOf[p.Op.ID] = Placement{Mem: true, Dur: p.Dur}
				continue
			}
			lo, hi := base+p.Start, base+p.End()
			chosen := -1
			for _, ii := range instOf[p.Kind] {
				free := true
				for s := lo; s < hi; s++ {
					if busy[ii][s] {
						free = false
						break
					}
				}
				if free {
					chosen = ii
					break
				}
			}
			if chosen == -1 {
				chosen = len(b.Instances)
				b.Instances = append(b.Instances, Instance{Kind: p.Kind, Index: len(instOf[p.Kind])})
				busy = append(busy, make(map[int]bool))
				instOf[p.Kind] = append(instOf[p.Kind], chosen)
			}
			for s := lo; s < hi; s++ {
				busy[chosen][s] = true
			}
			b.Instances[chosen].ActiveWeighted += int64(p.Dur) * freq
			b.PlacementOf[p.Op.ID] = Placement{Kind: p.Kind, Instance: chosen, Dur: p.Dur}
		}
		base += bs.Len
	}

	// Fig. 4 lines 16-18: hardware effort of the bound datapath.
	for _, in := range b.Instances {
		b.GEQDatapath += lib.Resource(in.Kind).GEQ
	}
	b.GEQController = lib.ControllerGEQPerStep * b.Steps
	b.LiveWords = countLiveWords(rsched, len(b.Instances))
	b.GEQRegisters = lib.RegisterGEQPerWord * b.LiveWords

	// Fig. 4 line 24: U_R = mean per-instance utilization over the
	// cluster's weighted cycles.
	if b.NcycWeighted > 0 && len(b.Instances) > 0 {
		sum := 0.0
		for _, in := range b.Instances {
			sum += float64(in.ActiveWeighted) / float64(b.NcycWeighted)
		}
		b.URate = sum / float64(len(b.Instances))
	}

	// Core clock: slowest instantiated resource plus the interconnect and
	// control-path delay of the synthesized netlist, which grows with the
	// core's size (see tech.Library.WireDelayPerLog2). This is what can
	// make a large serial core *slower* than the µP while still being far
	// more energy-efficient — the paper's "trick" case.
	b.Clock = minClock
	for _, in := range b.Instances {
		if t := lib.Resource(in.Kind).Tcyc; t > b.Clock {
			b.Clock = t
		}
	}
	if lib.WireDelayPerLog2 > 0 && lib.WireGEQRef > 0 {
		b.Clock += lib.WireDelayPerLog2 *
			units.Time(math.Log2(1+float64(b.GEQTotal())/float64(lib.WireGEQRef)))
	}
	return b, nil
}

// countLiveWords estimates the datapath register need: every named scalar
// the cluster touches holds state across control steps, while compiler
// temporaries live only within one block and are register-shared after
// scheduling — their physical need is bounded by the datapath's
// parallelism (roughly two in-flight values per instance plus pipeline
// margin), not by their count.
func countLiveWords(rsched *sched.RegionSchedule, instances int) int {
	type key struct {
		g  bool
		id int
	}
	named := make(map[key]bool)
	temps := make(map[key]bool)
	f := rsched.Region.Func
	classify := func(r cdfg.VarRef) {
		k := key{r.Global, r.ID}
		if !r.Global && f.Locals[r.ID].Temp {
			temps[k] = true
		} else {
			named[k] = true
		}
	}
	for _, op := range rsched.Region.Ops() {
		for _, u := range op.Uses() {
			classify(u)
		}
		if d := op.Def(); d.Valid() {
			classify(d)
		}
	}
	tempRegs := 2*instances + 4
	if len(temps) < tempRegs {
		tempRegs = len(temps)
	}
	return len(named) + tempRegs
}

// EnergySelectionEstimate is the quick, utilization-based energy estimate
// the partitioning loop ranks candidates with (Fig. 1 line 11:
// E_R = U_R · Σ P_av · N_cyc · T_cyc, refined here with the residual
// idle-switching of gated-off instances and the controller/register
// overhead).
func (b *Binding) EnergySelectionEstimate(lib *tech.Library) units.Energy {
	var e units.Energy
	for _, in := range b.Instances {
		r := lib.Resource(in.Kind)
		active := in.ActiveWeighted
		idle := b.NcycWeighted - active
		if idle < 0 {
			idle = 0
		}
		e += units.Energy(float64(active)) * r.EnergyPerActiveCycle()
		e += units.Energy(float64(idle)*asicIdleFraction) * r.EnergyPerIdleCycle()
	}
	overhead := lib.EControllerPerCycle + units.Energy(b.LiveWords)*lib.ERegisterPerCycle
	e += units.Energy(float64(b.NcycWeighted)) * overhead
	return e
}
