package cdfg

import (
	"strings"
	"testing"

	"lppart/internal/behav"
)

func buildVerified(t *testing.T, src string) *Program {
	t.Helper()
	p := MustBuild(behav.MustParse("t", src))
	if err := Verify(p); err != nil {
		t.Fatalf("freshly built program fails Verify: %v", err)
	}
	return p
}

const verifySrc = `
var a[16]; var total;
func main() {
	var i; var v;
	for i = 0; i < 16; i = i + 1 {
		v = a[i] * 3;
		total = total + v;
	}
}
`

func wantVerifyError(t *testing.T, p *Program, substr string) {
	t.Helper()
	err := Verify(p)
	if err == nil {
		t.Fatalf("Verify accepted bad IR, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("Verify error %q does not mention %q", err, substr)
	}
}

func TestVerifyAcceptsBuiltPrograms(t *testing.T) {
	for _, src := range []string{
		verifySrc,
		"func main() { var i; for i = 0; i < 4; i = i + 1 { } }",
		`var m[64]; var s;
		func main() {
			var i; var j;
			for i = 0; i < 8; i = i + 1 {
				for j = 0; j < 8; j = j + 1 { s = s + m[i*8+j]; }
			}
		}`,
	} {
		buildVerified(t, src)
	}
}

func TestVerifyNilProgram(t *testing.T) {
	if Verify(nil) == nil {
		t.Error("nil program must fail")
	}
}

func TestVerifyMissingTerminator(t *testing.T) {
	p := buildVerified(t, verifySrc)
	f := p.Func("main")
	b := f.Blocks[f.Entry]
	b.Ops = b.Ops[:len(b.Ops)-1]
	wantVerifyError(t, p, "terminator")
}

func TestVerifyDanglingBranchTarget(t *testing.T) {
	p := buildVerified(t, verifySrc)
	f := p.Func("main")
	for _, b := range f.Blocks {
		if term := b.Terminator(); term != nil && term.Code == Br {
			term.Target = len(f.Blocks) + 7
			wantVerifyError(t, p, "missing block")
			return
		}
	}
	t.Fatal("no unconditional branch found")
}

func TestVerifyDuplicateOpID(t *testing.T) {
	p := buildVerified(t, verifySrc)
	f := p.Func("main")
	var ids []int
	for _, b := range f.Blocks {
		for i := range b.Ops {
			ids = append(ids, b.Ops[i].ID)
		}
	}
	// Give the last op the first op's ID.
	last := f.Blocks[len(f.Blocks)-1]
	last.Ops[len(last.Ops)-1].ID = ids[0]
	wantVerifyError(t, p, "duplicate op ID")
}

func TestVerifyOperandOutOfRange(t *testing.T) {
	p := buildVerified(t, verifySrc)
	f := p.Func("main")
	for _, b := range f.Blocks {
		for i := range b.Ops {
			op := &b.Ops[i]
			if op.Code.IsBinary() && op.A.Valid() && !op.A.IsConst {
				op.A.Ref.ID = len(f.Locals) + len(p.Globals) + 99
				wantVerifyError(t, p, "missing")
				return
			}
		}
	}
	t.Fatal("no binary op with a variable operand found")
}

func TestVerifyArrayRefNamesScalar(t *testing.T) {
	p := buildVerified(t, verifySrc)
	f := p.Func("main")
	// Point a load at the scalar global `total`.
	scalar := -1
	for gi, g := range p.Globals {
		if !g.IsArray() {
			scalar = gi
			break
		}
	}
	if scalar < 0 {
		t.Fatal("no scalar global")
	}
	for _, b := range f.Blocks {
		for i := range b.Ops {
			if b.Ops[i].Code == Load {
				b.Ops[i].Arr = ArrRef{Global: true, ID: scalar}
				wantVerifyError(t, p, "scalar")
				return
			}
		}
	}
	t.Fatal("no load found")
}

func TestVerifyTempReadBeforeDef(t *testing.T) {
	p := buildVerified(t, verifySrc)
	f := p.Func("main")
	// Find a block where a temporary is defined and then read, and delete
	// the defining op: the read becomes upward-exposed, which Verify must
	// reject (temporaries are block-local).
	for _, b := range f.Blocks {
		for i := range b.Ops {
			d := b.Ops[i].Def()
			if !d.Valid() || d.Global || !f.Locals[d.ID].Temp {
				continue
			}
			readLater := false
			for j := i + 1; j < len(b.Ops); j++ {
				for _, u := range b.Ops[j].Uses() {
					if !u.Global && u.ID == d.ID {
						readLater = true
					}
				}
			}
			if !readLater {
				continue
			}
			b.Ops = append(b.Ops[:i:i], b.Ops[i+1:]...)
			wantVerifyError(t, p, "before any definition")
			return
		}
	}
	t.Fatal("no defined-then-read temporary found")
}

func TestVerifyRegionEntryOutsideRegion(t *testing.T) {
	p := buildVerified(t, verifySrc)
	for _, r := range p.Regions() {
		if r.Kind == RegionLoop {
			r.Entry = -1
			wantVerifyError(t, p, "not in region")
			return
		}
	}
	t.Fatal("no loop region")
}

func TestVerifyRegionParentMismatch(t *testing.T) {
	p := buildVerified(t, verifySrc)
	for _, r := range p.Regions() {
		if r.Kind == RegionLoop {
			r.Parent = nil
			wantVerifyError(t, p, "parent pointer")
			return
		}
	}
	t.Fatal("no loop region")
}
