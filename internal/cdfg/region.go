package cdfg

import (
	"fmt"

	"lppart/internal/behav"
)

// RegionKind classifies a region of the region tree.
type RegionKind int

// Region kinds, matching the paper's cluster examples ("nested loops,
// if-then-else constructs, functions etc.").
const (
	RegionFunc RegionKind = iota
	RegionLoop
	RegionIf
)

// String names the region kind.
func (k RegionKind) String() string {
	switch k {
	case RegionFunc:
		return "func"
	case RegionLoop:
		return "loop"
	case RegionIf:
		return "if"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Region is a node of the region tree: a structurally delimited code
// segment (function body, loop, or if/else) that is a candidate *cluster*
// for hardware/software partitioning. Blocks lists every basic block that
// belongs to the region, including those of nested child regions.
type Region struct {
	ID       int
	Kind     RegionKind
	Func     *Function
	Label    string // e.g. "main/loop@5:2"
	Pos      behav.Pos
	Entry    int   // entry block ID (loop header / then-else dispatch)
	Blocks   []int // all block IDs in the region, children included
	Children []*Region
	Parent   *Region

	// ops caches the flattened op-pointer list served by Ops(). The cache
	// assumes the block *structure* is frozen once analyses start (op
	// contents may still be edited through the cached pointers, which
	// alias the block slices).
	ops []*Op
}

// Depth returns the nesting depth (the function body is depth 0).
func (r *Region) Depth() int {
	d := 0
	for p := r.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Contains reports whether block id belongs to the region.
func (r *Region) Contains(id int) bool {
	for _, b := range r.Blocks {
		if b == id {
			return true
		}
	}
	return false
}

// Ops returns pointers to every operation in the region, in block order.
// The slab is built once per region and cached; callers must not modify
// the returned slice.
func (r *Region) Ops() []*Op {
	if r.ops == nil {
		n := 0
		for _, bid := range r.Blocks {
			n += len(r.Func.Block(bid).Ops)
		}
		ops := make([]*Op, 0, n)
		for _, bid := range r.Blocks {
			b := r.Func.Block(bid)
			for i := range b.Ops {
				ops = append(ops, &b.Ops[i])
			}
		}
		if ops == nil {
			ops = []*Op{} // non-nil marks the cache as built
		}
		r.ops = ops
	}
	return r.ops
}

// HasCalls reports whether the region contains any Call operation; such
// regions cannot be moved to an ASIC core (the ASIC cannot call back into
// µP software).
func (r *Region) HasCalls() bool {
	for _, op := range r.Ops() {
		if op.Code == Call {
			return true
		}
	}
	return false
}

// HasReturns reports whether the region contains a Ret operation.
// Non-function regions with early returns have multiple exits and are not
// eligible clusters.
func (r *Region) HasReturns() bool {
	for _, op := range r.Ops() {
		if op.Code == Ret {
			return true
		}
	}
	return false
}

// Walk visits the region and all descendants in preorder.
func (r *Region) Walk(visit func(*Region)) {
	visit(r)
	for _, c := range r.Children {
		c.Walk(visit)
	}
}

// AllRegions flattens the tree rooted at r in preorder.
func (r *Region) AllRegions() []*Region {
	var all []*Region
	r.Walk(func(x *Region) { all = append(all, x) })
	return all
}

// Regions returns every region of the program in deterministic order
// (function declaration order, preorder within each function).
func (p *Program) Regions() []*Region {
	var all []*Region
	for _, f := range p.Funcs {
		if f.Root != nil {
			all = append(all, f.Root.AllRegions()...)
		}
	}
	return all
}

// RegionByLabel finds a region by its label, or returns nil.
func (p *Program) RegionByLabel(label string) *Region {
	for _, r := range p.Regions() {
		if r.Label == label {
			return r
		}
	}
	return nil
}
