package cdfg

import "fmt"

// Verify checks the structural invariants every downstream consumer
// (interpreter, scheduler, code generator, partitioner) relies on. It is
// the static half of the paper's Fig. 1 "verify" step, run after IR
// construction when partition.Config.Verify is set and from the
// regression tests:
//
//   - every basic block ends in exactly one terminator, and every
//     successor/entry block ID resolves;
//   - every operand reference (scalar slot, array, immediate arity)
//     resolves against the program's variable tables with the right
//     shape for its opcode;
//   - the region tree is well-formed: entries belong to their regions,
//     children's blocks are subsets of their parent's, sibling regions
//     are disjoint;
//   - compiler temporaries are defined before use within their block
//     (the block-local lifetime the scheduler's register-sharing
//     estimate and the dataflow analysis both assume).
//
// The companion dataflow.VerifyGenUse covers the Fig. 3 gen/use set
// consistency (dataflow imports cdfg, so the check lives a layer up);
// partition.Config.Verify runs both.
//
// Verify is read-only and safe for concurrent use on a shared Program.
func Verify(p *Program) error {
	if p == nil {
		return fmt.Errorf("cdfg: verify: nil program")
	}
	for _, f := range p.Funcs {
		if err := verifyFunc(p, f); err != nil {
			return err
		}
		if f.Root != nil {
			if err := verifyRegionTree(p, f.Root, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// verifyFunc checks block structure, operand resolution and temporary
// def-before-use for one function.
func verifyFunc(p *Program, f *Function) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("cdfg: verify: func %s: %s", f.Name, fmt.Sprintf(format, args...))
	}
	if f.Entry < 0 || f.Entry >= len(f.Blocks) {
		return fail("entry block %d out of range", f.Entry)
	}
	for _, pid := range f.Params {
		if pid < 0 || pid >= len(f.Locals) {
			return fail("parameter local %d out of range", pid)
		}
	}
	validBlock := func(id int) bool { return id >= 0 && id < len(f.Blocks) }
	seenOpIDs := make(map[int]bool)
	for bi, b := range f.Blocks {
		if b.ID != bi {
			return fail("block at index %d has ID %d", bi, b.ID)
		}
		if b.Terminator() == nil {
			return fail("block b%d does not end in a terminator", b.ID)
		}
		// Temporaries are block-local: a read must follow a write in the
		// same block.
		tempDefined := make(map[int]bool)
		for oi := range b.Ops {
			op := &b.Ops[oi]
			if op.Code.IsTerminator() && oi != len(b.Ops)-1 {
				return fail("block b%d has mid-block terminator %v at op %d", b.ID, op.Code, oi)
			}
			if seenOpIDs[op.ID] {
				return fail("duplicate op ID %d in block b%d", op.ID, b.ID)
			}
			seenOpIDs[op.ID] = true
			if err := verifyOp(p, f, b, op, tempDefined); err != nil {
				return err
			}
		}
		switch t := b.Terminator(); t.Code {
		case Br:
			if !validBlock(t.Target) {
				return fail("block b%d branches to missing block %d", b.ID, t.Target)
			}
		case CBr:
			if !validBlock(t.Then) || !validBlock(t.Else) {
				return fail("block b%d cbr to missing block (%d/%d)", b.ID, t.Then, t.Else)
			}
		}
	}
	return nil
}

// verifyOp checks one operation's operand shape and reference validity.
func verifyOp(p *Program, f *Function, b *Block, op *Op, tempDefined map[int]bool) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("cdfg: verify: func %s b%d op %d (%v): %s",
			f.Name, b.ID, op.ID, op.Code, fmt.Sprintf(format, args...))
	}
	checkVar := func(r VarRef, what string) error {
		if r.Global {
			if r.ID < 0 || r.ID >= len(p.Globals) {
				return fail("%s references missing global %d", what, r.ID)
			}
			return nil
		}
		if r.ID < 0 || r.ID >= len(f.Locals) {
			return fail("%s references missing local %d", what, r.ID)
		}
		return nil
	}
	checkUse := func(o Operand, what string) error {
		if !o.Valid() || o.IsConst {
			return nil
		}
		if err := checkVar(o.Ref, what); err != nil {
			return err
		}
		if !o.Ref.Global && f.Locals[o.Ref.ID].Temp && !tempDefined[o.Ref.ID] {
			return fail("%s reads temporary %s before any definition in its block",
				what, f.Locals[o.Ref.ID].Name)
		}
		return nil
	}
	checkArr := func(a ArrRef) error {
		if !a.Valid() {
			return fail("missing array reference")
		}
		var v Var
		if a.Global {
			if a.ID < 0 || a.ID >= len(p.Globals) {
				return fail("references missing global array %d", a.ID)
			}
			v = p.Globals[a.ID]
		} else {
			if a.ID < 0 || a.ID >= len(f.Locals) {
				return fail("references missing local array %d", a.ID)
			}
			v = f.Locals[a.ID]
		}
		if !v.IsArray() {
			return fail("array reference names scalar %s", v.Name)
		}
		return nil
	}

	// Operand shape per opcode class.
	switch {
	case op.Code.IsBinary():
		if !op.A.Valid() || !op.B.Valid() {
			return fail("binary op missing an operand")
		}
	case op.Code.IsUnary():
		if !op.A.Valid() {
			return fail("unary op missing operand A")
		}
	case op.Code == Load:
		if err := checkArr(op.Arr); err != nil {
			return err
		}
		if !op.A.Valid() {
			return fail("load missing index operand")
		}
	case op.Code == Store:
		if err := checkArr(op.Arr); err != nil {
			return err
		}
		if !op.A.Valid() || !op.B.Valid() {
			return fail("store missing index or value operand")
		}
	case op.Code == CBr:
		if !op.A.Valid() {
			return fail("cbr missing condition operand")
		}
	}
	// Reads before the write takes effect.
	for _, o := range []Operand{op.A, op.B} {
		if err := checkUse(o, "operand"); err != nil {
			return err
		}
	}
	for _, a := range op.Args {
		if err := checkUse(a, "argument"); err != nil {
			return err
		}
	}
	// The write.
	if d := op.Def(); d.Valid() {
		if err := checkVar(d, "destination"); err != nil {
			return err
		}
		if !d.Global && f.Locals[d.ID].Temp {
			tempDefined[d.ID] = true
		}
	}
	return nil
}

// verifyRegionTree checks the cluster tree's containment invariants.
func verifyRegionTree(p *Program, r *Region, parent *Region) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("cdfg: verify: region %s: %s", r.Label, fmt.Sprintf(format, args...))
	}
	if r.Func == nil {
		return fail("region has no function")
	}
	if r.Parent != parent {
		return fail("parent pointer mismatch")
	}
	if len(r.Blocks) == 0 {
		return fail("region has no blocks")
	}
	blocks := make(map[int]bool, len(r.Blocks))
	for _, bid := range r.Blocks {
		if bid < 0 || bid >= len(r.Func.Blocks) {
			return fail("block %d out of range", bid)
		}
		if blocks[bid] {
			return fail("block %d listed twice", bid)
		}
		blocks[bid] = true
	}
	if !blocks[r.Entry] {
		return fail("entry block %d not in region", r.Entry)
	}
	if parent != nil {
		for _, bid := range r.Blocks {
			if !parent.Contains(bid) {
				return fail("block %d not contained in parent %s", bid, parent.Label)
			}
		}
	}
	// Sibling clusters never share blocks (nested-loop/if decomposition).
	for i, a := range r.Children {
		for _, b := range r.Children[i+1:] {
			for _, bid := range b.Blocks {
				if a.Contains(bid) {
					return fail("children %s and %s share block %d", a.Label, b.Label, bid)
				}
			}
		}
	}
	for _, c := range r.Children {
		if err := verifyRegionTree(p, c, r); err != nil {
			return err
		}
	}
	return nil
}
