// Package cdfg builds and represents the internal graph form the paper's
// step 1 derives from the behavioral description ("Build a graph
// G = {V, E}"): a three-address intermediate representation organized into
// basic blocks with an explicit control-flow graph, plus the *region tree*
// that step 2's cluster decomposition works on ("a cluster in our
// definition is a set of operations which represents code segments like
// nested loops, if-then-else constructs, functions etc.").
//
// The IR is deliberately not SSA: operations read and write named slots
// (locals, temporaries, globals), which keeps the interpreter, the code
// generator and the dataflow analysis straightforward while still exposing
// all data dependencies the list scheduler needs.
package cdfg

import (
	"fmt"
	"strings"

	"lppart/internal/behav"
	"lppart/internal/tech"
)

// Opcode enumerates IR operations.
type Opcode int

// IR opcodes.
const (
	Nop     Opcode = iota
	ConstOp        // Dst = Imm
	Copy           // Dst = A
	Add            // Dst = A + B
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	LAnd  // strict (non-short-circuit) logical and
	LOr   // strict logical or
	Neg   // Dst = -A
	Not   // Dst = ^A
	LNot  // Dst = !A
	Load  // Dst = Arr[A]
	Store // Arr[A] = B
	Call  // Dst = Callee(Args...) (Dst may be invalid)
	Ret   // return A (A may be missing)
	Br    // goto Target
	CBr   // if A != 0 goto Then else goto Else
	NumOpcodes
)

var opcodeNames = [NumOpcodes]string{
	Nop: "nop", ConstOp: "const", Copy: "copy",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	LAnd: "land", LOr: "lor",
	Neg: "neg", Not: "not", LNot: "lnot",
	Load: "load", Store: "store",
	Call: "call", Ret: "ret", Br: "br", CBr: "cbr",
}

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	if o < 0 || o >= NumOpcodes {
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
	return opcodeNames[o]
}

// IsBinary reports whether the opcode takes two value operands A and B.
func (o Opcode) IsBinary() bool { return o >= Add && o <= LOr }

// IsUnary reports whether the opcode takes exactly operand A as a value.
func (o Opcode) IsUnary() bool { return o == Copy || o == Neg || o == Not || o == LNot }

// IsTerminator reports whether the opcode ends a basic block.
func (o Opcode) IsTerminator() bool { return o == Ret || o == Br || o == CBr }

// Class maps the opcode onto the technology library's operation classes
// for scheduling and utilization accounting. Control opcodes (branches,
// calls, returns) and Nop/ConstOp map to no datapath class and return
// ok == false.
func (o Opcode) Class() (c tech.OpClass, ok bool) {
	switch o {
	case Add, Sub, Neg:
		return tech.OpAddSub, true
	case And, Or, Xor, Not, LAnd, LOr, LNot:
		return tech.OpLogic, true
	case Shl, Shr:
		return tech.OpShift, true
	case Mul:
		return tech.OpMul, true
	case Div, Rem:
		return tech.OpDivRem, true
	case Eq, Ne, Lt, Le, Gt, Ge:
		return tech.OpCompare, true
	case Copy:
		return tech.OpMove, true
	case Load, Store:
		return tech.OpMemory, true
	default:
		return 0, false
	}
}

// BinOpcode translates a front-end binary operator to the IR opcode.
func BinOpcode(op behav.BinOp) Opcode {
	switch op {
	case behav.OpAdd:
		return Add
	case behav.OpSub:
		return Sub
	case behav.OpMul:
		return Mul
	case behav.OpDiv:
		return Div
	case behav.OpRem:
		return Rem
	case behav.OpAnd:
		return And
	case behav.OpOr:
		return Or
	case behav.OpXor:
		return Xor
	case behav.OpShl:
		return Shl
	case behav.OpShr:
		return Shr
	case behav.OpEq:
		return Eq
	case behav.OpNeq:
		return Ne
	case behav.OpLt:
		return Lt
	case behav.OpLeq:
		return Le
	case behav.OpGt:
		return Gt
	case behav.OpGeq:
		return Ge
	case behav.OpLAnd:
		return LAnd
	case behav.OpLOr:
		return LOr
	default:
		panic(fmt.Sprintf("cdfg: unknown binary operator %d", int(op)))
	}
}

// BehavBinOp translates an IR binary opcode back to the front-end operator
// (used to share behav.EvalBinOp's semantics in the interpreter and ISS).
func BehavBinOp(o Opcode) behav.BinOp {
	switch o {
	case Add:
		return behav.OpAdd
	case Sub:
		return behav.OpSub
	case Mul:
		return behav.OpMul
	case Div:
		return behav.OpDiv
	case Rem:
		return behav.OpRem
	case And:
		return behav.OpAnd
	case Or:
		return behav.OpOr
	case Xor:
		return behav.OpXor
	case Shl:
		return behav.OpShl
	case Shr:
		return behav.OpShr
	case Eq:
		return behav.OpEq
	case Ne:
		return behav.OpNeq
	case Lt:
		return behav.OpLt
	case Le:
		return behav.OpLeq
	case Gt:
		return behav.OpGt
	case Ge:
		return behav.OpGeq
	case LAnd:
		return behav.OpLAnd
	case LOr:
		return behav.OpLOr
	default:
		panic(fmt.Sprintf("cdfg: opcode %v is not binary", o)) //lint:alloc panic path
	}
}

// VarRef names a scalar slot: a global (Global == true, index into
// Program.Globals) or a function local/temporary (index into
// Function.Locals). The zero VarRef is NOT valid; use NoVar.
type VarRef struct {
	Global bool
	ID     int
}

// NoVar is the absent-variable sentinel (e.g. the Dst of a Store).
var NoVar = VarRef{ID: -1}

// Valid reports whether the reference names a slot.
func (v VarRef) Valid() bool { return v.ID >= 0 }

// ArrRef names an array: a global array or a function-local array.
type ArrRef struct {
	Global bool
	ID     int
}

// NoArr is the absent-array sentinel.
var NoArr = ArrRef{ID: -1}

// Valid reports whether the reference names an array.
func (a ArrRef) Valid() bool { return a.ID >= 0 }

// Operand is a value operand: a constant or a scalar slot reference.
type Operand struct {
	IsConst bool
	K       int32
	Ref     VarRef
}

// ConstOperand returns a constant operand.
func ConstOperand(k int32) Operand { return Operand{IsConst: true, K: k} }

// VarOperand returns a slot-reference operand.
func VarOperand(r VarRef) Operand { return Operand{Ref: r} }

// NoOperand is the missing-operand sentinel (e.g. B of a unary op).
var NoOperand = Operand{Ref: NoVar}

// Valid reports whether the operand is present.
func (o Operand) Valid() bool { return o.IsConst || o.Ref.Valid() }

// Op is one IR operation.
type Op struct {
	ID     int // unique within the function
	Code   Opcode
	Dst    VarRef  // result slot; NoVar if none
	A, B   Operand // value operands; NoOperand if unused
	Arr    ArrRef  // array for Load/Store; NoArr otherwise
	Imm    int32   // immediate for ConstOp
	Callee string  // for Call
	Args   []Operand
	Target int // successor block for Br
	Then   int // taken successor for CBr
	Else   int // fall-through successor for CBr
	Pos    behav.Pos
}

// Uses returns the scalar slots the operation reads.
func (op *Op) Uses() []VarRef {
	return op.AppendUses(nil)
}

// AppendUses appends the scalar slots the operation reads to dst and
// returns the extended slice — the zero-alloc form of Uses for callers
// that hold a reusable buffer (the scheduler's DFG builder runs it on
// every op of every candidate block).
func (op *Op) AppendUses(dst []VarRef) []VarRef {
	if op.A.Valid() && !op.A.IsConst {
		dst = append(dst, op.A.Ref)
	}
	if op.B.Valid() && !op.B.IsConst {
		dst = append(dst, op.B.Ref)
	}
	for _, a := range op.Args {
		if a.Valid() && !a.IsConst {
			dst = append(dst, a.Ref)
		}
	}
	return dst
}

// Def returns the scalar slot the operation writes, or NoVar.
func (op *Op) Def() VarRef { return op.Dst }

// Var is a scalar or array variable (global or local).
type Var struct {
	Name string
	Len  int32 // 0 for scalars
	Temp bool  // compiler-introduced temporary
}

// IsArray reports whether the variable is an array.
func (v *Var) IsArray() bool { return v.Len > 0 }

// Block is a basic block: a straight-line op sequence whose last op is a
// terminator.
type Block struct {
	ID  int
	Ops []Op
}

// Terminator returns the block's final operation.
func (b *Block) Terminator() *Op {
	if len(b.Ops) == 0 {
		return nil
	}
	t := &b.Ops[len(b.Ops)-1]
	if !t.Code.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the IDs of the block's successor blocks.
func (b *Block) Succs() []int {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Code {
	case Br:
		return []int{t.Target}
	case CBr:
		return []int{t.Then, t.Else}
	default: // Ret
		return nil
	}
}

// Function is one behavioral function lowered to IR.
type Function struct {
	Name   string
	Params []int // local IDs of the parameters, in order
	Locals []Var
	Blocks []*Block
	Entry  int     // entry block ID
	Root   *Region // region tree root (the function-body cluster)
	nextOp int
}

// Block returns the block with the given ID.
func (f *Function) Block(id int) *Block {
	if id < 0 || id >= len(f.Blocks) {
		panic(fmt.Sprintf("cdfg: function %s has no block %d", f.Name, id)) //lint:alloc panic path
	}
	return f.Blocks[id]
}

// NumOps returns the total operation count of the function.
func (f *Function) NumOps() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ops)
	}
	return n
}

// Program is a whole application lowered to IR.
type Program struct {
	Name    string
	Globals []Var
	Funcs   []*Function
	funcIdx map[string]int
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Function {
	if i, ok := p.funcIdx[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// VarName resolves a slot reference to its source-level name, relative to
// function f (which may be nil for globals-only lookups).
func (p *Program) VarName(f *Function, r VarRef) string {
	if !r.Valid() {
		return "<none>"
	}
	if r.Global {
		return p.Globals[r.ID].Name
	}
	return f.Locals[r.ID].Name
}

// ArrName resolves an array reference to its source-level name.
func (p *Program) ArrName(f *Function, a ArrRef) string {
	if !a.Valid() {
		return "<none>"
	}
	if a.Global {
		return p.Globals[a.ID].Name
	}
	return f.Locals[a.ID].Name
}

// NumOps returns the total operation count of the program.
func (p *Program) NumOps() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumOps()
	}
	return n
}

// Dump renders the program as readable text for debugging and golden
// tests.
func (p *Program) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for _, g := range p.Globals {
		if g.IsArray() {
			fmt.Fprintf(&sb, "  global %s[%d]\n", g.Name, g.Len)
		} else {
			fmt.Fprintf(&sb, "  global %s\n", g.Name)
		}
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s(", f.Name)
		for i, pid := range f.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Locals[pid].Name)
		}
		sb.WriteString(")\n")
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "  b%d:\n", b.ID)
			for i := range b.Ops {
				fmt.Fprintf(&sb, "    %s\n", p.opString(f, &b.Ops[i]))
			}
		}
	}
	return sb.String()
}

func (p *Program) operandString(f *Function, o Operand) string {
	if !o.Valid() {
		return "_"
	}
	if o.IsConst {
		return fmt.Sprintf("%d", o.K)
	}
	return p.VarName(f, o.Ref)
}

func (p *Program) opString(f *Function, op *Op) string {
	switch {
	case op.Code == ConstOp:
		return fmt.Sprintf("%s = const %d", p.VarName(f, op.Dst), op.Imm)
	case op.Code.IsBinary():
		return fmt.Sprintf("%s = %s %s, %s", p.VarName(f, op.Dst), op.Code,
			p.operandString(f, op.A), p.operandString(f, op.B))
	case op.Code.IsUnary():
		return fmt.Sprintf("%s = %s %s", p.VarName(f, op.Dst), op.Code,
			p.operandString(f, op.A))
	case op.Code == Load:
		return fmt.Sprintf("%s = load %s[%s]", p.VarName(f, op.Dst),
			p.ArrName(f, op.Arr), p.operandString(f, op.A))
	case op.Code == Store:
		return fmt.Sprintf("store %s[%s] = %s", p.ArrName(f, op.Arr),
			p.operandString(f, op.A), p.operandString(f, op.B))
	case op.Code == Call:
		args := make([]string, len(op.Args))
		for i, a := range op.Args {
			args[i] = p.operandString(f, a)
		}
		dst := ""
		if op.Dst.Valid() {
			dst = p.VarName(f, op.Dst) + " = "
		}
		return fmt.Sprintf("%scall %s(%s)", dst, op.Callee, strings.Join(args, ", "))
	case op.Code == Ret:
		if op.A.Valid() {
			return fmt.Sprintf("ret %s", p.operandString(f, op.A))
		}
		return "ret"
	case op.Code == Br:
		return fmt.Sprintf("br b%d", op.Target)
	case op.Code == CBr:
		return fmt.Sprintf("cbr %s, b%d, b%d", p.operandString(f, op.A), op.Then, op.Else)
	default:
		return op.Code.String()
	}
}
