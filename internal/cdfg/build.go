package cdfg

import (
	"fmt"

	"lppart/internal/behav"
)

// Build lowers a checked behavioral program to IR and constructs the
// region tree. Semantics notes:
//
//   - All variables (globals, locals, arrays) start zero-initialized.
//   - && and || are evaluated strictly (both operands), matching
//     behav.EvalBinOp; the front end has no side effects in expressions
//     other than calls, which keeps strict evaluation observably
//     equivalent except for fault timing.
//   - Loop and if regions contain their condition evaluation; a for-loop's
//     init assignment stays in the enclosing region (it runs once).
func Build(src *behav.Program) (*Program, error) {
	p := &Program{Name: src.Name, funcIdx: make(map[string]int)}
	globalIdx := make(map[string]int)
	for _, g := range src.Globals {
		globalIdx[g.Name] = len(p.Globals)
		p.Globals = append(p.Globals, Var{Name: g.Name, Len: g.Len})
	}
	nextRegion := 0
	for _, fd := range src.Funcs {
		b := &builder{
			prog:      p,
			src:       src,
			globalIdx: globalIdx,
			localIdx:  make(map[string]int),
			fn:        &Function{Name: fd.Name},
			regionID:  &nextRegion,
		}
		if err := b.buildFunc(fd); err != nil {
			return nil, err
		}
		p.funcIdx[fd.Name] = len(p.Funcs)
		p.Funcs = append(p.Funcs, b.fn)
	}
	return p, nil
}

// MustBuild is Build that panics on error; for compiled-in sources.
func MustBuild(src *behav.Program) *Program {
	p, err := Build(src)
	if err != nil {
		panic(fmt.Sprintf("cdfg.MustBuild(%s): %v", src.Name, err))
	}
	return p
}

type builder struct {
	prog      *Program
	src       *behav.Program
	globalIdx map[string]int
	localIdx  map[string]int
	fn        *Function
	cur       *Block
	regions   []*Region // region stack
	regionID  *int
	nextTemp  int
}

func (b *builder) buildFunc(fd *behav.FuncDecl) error {
	for _, name := range fd.Params {
		id := b.addLocal(Var{Name: name})
		b.fn.Params = append(b.fn.Params, id)
	}
	root := b.pushRegion(RegionFunc, fd.Name, fd.Pos)
	b.fn.Root = root
	entry := b.newBlock()
	b.fn.Entry = entry.ID
	root.Entry = entry.ID
	b.cur = entry
	if err := b.stmt(fd.Body); err != nil {
		return err
	}
	// Implicit return at the end of the body.
	if b.cur.Terminator() == nil {
		b.emit(Op{Code: Ret, A: NoOperand, B: NoOperand, Dst: NoVar, Arr: NoArr, Pos: fd.Pos})
	}
	b.popRegion()
	return nil
}

func (b *builder) addLocal(v Var) int {
	id := len(b.fn.Locals)
	b.fn.Locals = append(b.fn.Locals, v)
	if !v.Temp {
		b.localIdx[v.Name] = id
	}
	return id
}

func (b *builder) newTemp() VarRef {
	name := fmt.Sprintf("%%t%d", b.nextTemp)
	b.nextTemp++
	id := b.addLocal(Var{Name: name, Temp: true})
	return VarRef{ID: id}
}

func (b *builder) pushRegion(kind RegionKind, label string, pos behav.Pos) *Region {
	r := &Region{
		ID:    *b.regionID,
		Kind:  kind,
		Func:  b.fn,
		Label: label,
		Pos:   pos,
	}
	*b.regionID++
	if len(b.regions) > 0 {
		parent := b.regions[len(b.regions)-1]
		r.Parent = parent
		parent.Children = append(parent.Children, r)
	}
	b.regions = append(b.regions, r)
	return r
}

func (b *builder) popRegion() { b.regions = b.regions[:len(b.regions)-1] }

// newBlock creates a block and registers it with every region currently on
// the stack (so ancestors transitively contain descendants' blocks).
func (b *builder) newBlock() *Block {
	blk := &Block{ID: len(b.fn.Blocks)}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	for _, r := range b.regions {
		r.Blocks = append(r.Blocks, blk.ID)
	}
	return blk
}

func (b *builder) emit(op Op) *Op {
	op.ID = b.fn.nextOp
	b.fn.nextOp++
	b.cur.Ops = append(b.cur.Ops, op)
	return &b.cur.Ops[len(b.cur.Ops)-1]
}

func (b *builder) lookupScalar(name string, pos behav.Pos) (VarRef, error) {
	if id, ok := b.localIdx[name]; ok {
		if b.fn.Locals[id].IsArray() {
			return NoVar, fmt.Errorf("%v: %q is an array", pos, name)
		}
		return VarRef{ID: id}, nil
	}
	if id, ok := b.globalIdx[name]; ok {
		if b.prog.Globals[id].IsArray() {
			return NoVar, fmt.Errorf("%v: %q is an array", pos, name)
		}
		return VarRef{Global: true, ID: id}, nil
	}
	return NoVar, fmt.Errorf("%v: undeclared variable %q", pos, name)
}

func (b *builder) lookupArray(name string, pos behav.Pos) (ArrRef, error) {
	if id, ok := b.localIdx[name]; ok {
		if !b.fn.Locals[id].IsArray() {
			return NoArr, fmt.Errorf("%v: %q is not an array", pos, name)
		}
		return ArrRef{ID: id}, nil
	}
	if id, ok := b.globalIdx[name]; ok {
		if !b.prog.Globals[id].IsArray() {
			return NoArr, fmt.Errorf("%v: %q is not an array", pos, name)
		}
		return ArrRef{Global: true, ID: id}, nil
	}
	return NoArr, fmt.Errorf("%v: undeclared array %q", pos, name)
}

func (b *builder) stmt(s behav.Stmt) error {
	switch s := s.(type) {
	case *behav.BlockStmt:
		for _, st := range s.Stmts {
			if err := b.stmt(st); err != nil {
				return err
			}
		}
		return nil
	case *behav.LocalStmt:
		d := s.Decl
		b.addLocal(Var{Name: d.Name, Len: d.Len})
		if d.Init != nil {
			ref, err := b.lookupScalar(d.Name, d.Pos)
			if err != nil {
				return err
			}
			return b.exprTo(ref, d.Init)
		}
		return nil
	case *behav.AssignStmt:
		return b.assign(s)
	case *behav.IfStmt:
		return b.ifStmt(s)
	case *behav.ForStmt:
		return b.forStmt(s)
	case *behav.WhileStmt:
		return b.whileStmt(s)
	case *behav.ReturnStmt:
		a := NoOperand
		if s.Value != nil {
			op, err := b.expr(s.Value)
			if err != nil {
				return err
			}
			a = op
		}
		b.emit(Op{Code: Ret, A: a, B: NoOperand, Dst: NoVar, Arr: NoArr, Pos: s.Pos})
		// Statements after a return are unreachable; give them a fresh
		// block so the current block stays well-formed.
		b.cur = b.newBlock()
		return nil
	case *behav.ExprStmt:
		call, ok := s.X.(*behav.CallExpr)
		if !ok {
			// Evaluate and discard (no side effects besides faults).
			_, err := b.expr(s.X)
			return err
		}
		args, err := b.exprList(call.Args)
		if err != nil {
			return err
		}
		b.emit(Op{Code: Call, Dst: NoVar, A: NoOperand, B: NoOperand, Arr: NoArr,
			Callee: call.Name, Args: args, Pos: call.Pos})
		return nil
	default:
		return fmt.Errorf("cdfg: unknown statement %T", s)
	}
}

func (b *builder) assign(s *behav.AssignStmt) error {
	if s.Index == nil {
		dst, err := b.lookupScalar(s.Target, s.Pos)
		if err != nil {
			return err
		}
		return b.exprTo(dst, s.Value)
	}
	arr, err := b.lookupArray(s.Target, s.Pos)
	if err != nil {
		return err
	}
	idx, err := b.expr(s.Index)
	if err != nil {
		return err
	}
	val, err := b.expr(s.Value)
	if err != nil {
		return err
	}
	b.emit(Op{Code: Store, Dst: NoVar, A: idx, B: val, Arr: arr, Pos: s.Pos})
	return nil
}

func (b *builder) ifStmt(s *behav.IfStmt) error {
	// Created before pushRegion, so the merge block belongs to the
	// enclosing regions only: it executes after the if-region completes.
	merge := b.newBlock()
	region := b.pushRegion(RegionIf, fmt.Sprintf("%s/if@%v", b.fn.Name, s.Pos), s.Pos)
	condBlk := b.newBlock()
	region.Entry = condBlk.ID
	b.emit(Op{Code: Br, Dst: NoVar, A: NoOperand, B: NoOperand, Arr: NoArr, Target: condBlk.ID, Pos: s.Pos})
	b.cur = condBlk
	cond, err := b.expr(s.Cond)
	if err != nil {
		return err
	}
	cbr := b.emit(Op{Code: CBr, Dst: NoVar, A: cond, B: NoOperand, Arr: NoArr, Pos: s.Pos})

	thenBlk := b.newBlock()
	cbr = &condBlk.Ops[len(condBlk.Ops)-1]
	cbr.Then = thenBlk.ID
	b.cur = thenBlk
	if err := b.stmt(s.Then); err != nil {
		return err
	}
	if b.cur.Terminator() == nil {
		b.emit(Op{Code: Br, Dst: NoVar, A: NoOperand, B: NoOperand, Arr: NoArr, Target: merge.ID, Pos: s.Pos})
	}

	elseTarget := merge.ID
	if s.Else != nil {
		elseBlk := b.newBlock()
		elseTarget = elseBlk.ID
		b.cur = elseBlk
		if err := b.stmt(s.Else); err != nil {
			return err
		}
		if b.cur.Terminator() == nil {
			b.emit(Op{Code: Br, Dst: NoVar, A: NoOperand, B: NoOperand, Arr: NoArr, Target: merge.ID, Pos: s.Pos})
		}
	}
	cbr = &condBlk.Ops[len(condBlk.Ops)-1]
	cbr.Else = elseTarget
	b.popRegion()
	b.cur = merge
	return nil
}

func (b *builder) forStmt(s *behav.ForStmt) error {
	if s.Init != nil {
		if err := b.assign(s.Init); err != nil {
			return err
		}
	}
	return b.loop(fmt.Sprintf("%s/loop@%v", b.fn.Name, s.Pos), s.Pos, s.Cond, s.Body, s.Post)
}

func (b *builder) whileStmt(s *behav.WhileStmt) error {
	return b.loop(fmt.Sprintf("%s/loop@%v", b.fn.Name, s.Pos), s.Pos, s.Cond, s.Body, nil)
}

// loop lowers a counted or conditional loop: header (condition) inside the
// region, body blocks inside, the post assignment appended to the body,
// exit outside.
func (b *builder) loop(label string, pos behav.Pos, cond behav.Expr, body *behav.BlockStmt, post *behav.AssignStmt) error {
	// Created before pushRegion: the exit block belongs to the enclosing
	// regions only.
	exit := b.newBlock()
	region := b.pushRegion(RegionLoop, label, pos)
	header := b.newBlock()
	region.Entry = header.ID
	b.emit(Op{Code: Br, Dst: NoVar, A: NoOperand, B: NoOperand, Arr: NoArr, Target: header.ID, Pos: pos})
	b.cur = header
	var condOperand Operand
	if cond != nil {
		c, err := b.expr(cond)
		if err != nil {
			return err
		}
		condOperand = c
	} else {
		condOperand = ConstOperand(1)
	}
	headerBlk := b.cur // condition evaluation stays straight-line
	cbrIdx := len(headerBlk.Ops)
	b.emit(Op{Code: CBr, Dst: NoVar, A: condOperand, B: NoOperand, Arr: NoArr, Else: exit.ID, Pos: pos})

	bodyBlk := b.newBlock()
	headerBlk.Ops[cbrIdx].Then = bodyBlk.ID
	b.cur = bodyBlk
	if err := b.stmt(body); err != nil {
		return err
	}
	if post != nil {
		if b.cur.Terminator() == nil {
			if err := b.assign(post); err != nil {
				return err
			}
		}
	}
	if b.cur.Terminator() == nil {
		b.emit(Op{Code: Br, Dst: NoVar, A: NoOperand, B: NoOperand, Arr: NoArr, Target: header.ID, Pos: pos})
	}
	b.popRegion()
	b.cur = exit
	return nil
}

// expr lowers an expression and returns the operand holding its value.
func (b *builder) expr(e behav.Expr) (Operand, error) {
	switch e := e.(type) {
	case *behav.IntExpr:
		return ConstOperand(e.Val), nil
	case *behav.VarExpr:
		ref, err := b.lookupScalar(e.Name, e.Pos)
		if err != nil {
			return NoOperand, err
		}
		return VarOperand(ref), nil
	default:
		dst := b.newTemp()
		if err := b.exprTo(dst, e); err != nil {
			return NoOperand, err
		}
		return VarOperand(dst), nil
	}
}

// exprTo lowers an expression so that its result lands in dst, fusing the
// destination into the producing op where possible.
func (b *builder) exprTo(dst VarRef, e behav.Expr) error {
	switch e := e.(type) {
	case *behav.IntExpr:
		b.emit(Op{Code: ConstOp, Dst: dst, A: NoOperand, B: NoOperand, Arr: NoArr, Imm: e.Val, Pos: e.Pos})
		return nil
	case *behav.VarExpr:
		src, err := b.lookupScalar(e.Name, e.Pos)
		if err != nil {
			return err
		}
		b.emit(Op{Code: Copy, Dst: dst, A: VarOperand(src), B: NoOperand, Arr: NoArr, Pos: e.Pos})
		return nil
	case *behav.IndexExpr:
		arr, err := b.lookupArray(e.Name, e.Pos)
		if err != nil {
			return err
		}
		idx, err := b.expr(e.Index)
		if err != nil {
			return err
		}
		b.emit(Op{Code: Load, Dst: dst, A: idx, B: NoOperand, Arr: arr, Pos: e.Pos})
		return nil
	case *behav.CallExpr:
		args, err := b.exprList(e.Args)
		if err != nil {
			return err
		}
		b.emit(Op{Code: Call, Dst: dst, A: NoOperand, B: NoOperand, Arr: NoArr,
			Callee: e.Name, Args: args, Pos: e.Pos})
		return nil
	case *behav.BinExpr:
		l, err := b.expr(e.L)
		if err != nil {
			return err
		}
		r, err := b.expr(e.R)
		if err != nil {
			return err
		}
		b.emit(Op{Code: BinOpcode(e.Op), Dst: dst, A: l, B: r, Arr: NoArr, Pos: e.Pos})
		return nil
	case *behav.UnExpr:
		x, err := b.expr(e.X)
		if err != nil {
			return err
		}
		var code Opcode
		switch e.Op {
		case behav.OpNeg:
			code = Neg
		case behav.OpNot:
			code = Not
		default:
			code = LNot
		}
		b.emit(Op{Code: code, Dst: dst, A: x, B: NoOperand, Arr: NoArr, Pos: e.ExprPos()})
		return nil
	default:
		return fmt.Errorf("cdfg: unknown expression %T", e)
	}
}

func (b *builder) exprList(es []behav.Expr) ([]Operand, error) {
	ops := make([]Operand, len(es))
	for i, e := range es {
		o, err := b.expr(e)
		if err != nil {
			return nil, err
		}
		ops[i] = o
	}
	return ops, nil
}
