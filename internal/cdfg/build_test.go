package cdfg

import (
	"strings"
	"testing"

	"lppart/internal/behav"
	"lppart/internal/tech"
)

func mustBuild(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := behav.Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ir, err := Build(prog)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return ir
}

func TestBuildMinimal(t *testing.T) {
	ir := mustBuild(t, "func main() {}")
	f := ir.Func("main")
	if f == nil {
		t.Fatal("no main function")
	}
	entry := f.Block(f.Entry)
	term := entry.Terminator()
	if term == nil || term.Code != Ret {
		t.Errorf("entry block must end in implicit ret, got %v", term)
	}
	if f.Root == nil || f.Root.Kind != RegionFunc {
		t.Error("function region missing")
	}
}

func TestBuildGlobals(t *testing.T) {
	ir := mustBuild(t, "var a[8]; var s; func main() { s = 1; a[0] = s; }")
	if len(ir.Globals) != 2 || ir.Globals[0].Len != 8 || ir.Globals[1].Len != 0 {
		t.Fatalf("globals wrong: %+v", ir.Globals)
	}
	dump := ir.Dump()
	if !strings.Contains(dump, "store a[") {
		t.Errorf("missing store in dump:\n%s", dump)
	}
}

func TestBuildAssignFusesDst(t *testing.T) {
	// x = y + z must produce a single add writing x, no extra copy.
	ir := mustBuild(t, "func main() { var x; var y; var z; y=1; z=2; x = y + z; }")
	f := ir.Func("main")
	adds := 0
	copies := 0
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			switch op.Code {
			case Add:
				adds++
				if ir.VarName(f, op.Dst) != "x" {
					t.Errorf("add writes %s, want x", ir.VarName(f, op.Dst))
				}
			case Copy:
				copies++
			}
		}
	}
	if adds != 1 || copies != 0 {
		t.Errorf("adds=%d copies=%d, want 1 add and 0 copies", adds, copies)
	}
}

func TestBuildForLoopStructure(t *testing.T) {
	ir := mustBuild(t, `
var acc;
func main() {
	var i;
	for i = 0; i < 10; i = i + 1 {
		acc = acc + i;
	}
}
`)
	f := ir.Func("main")
	regions := f.Root.AllRegions()
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2 (func + loop)", len(regions))
	}
	loop := regions[1]
	if loop.Kind != RegionLoop {
		t.Fatalf("second region is %v, want loop", loop.Kind)
	}
	if loop.Parent != f.Root {
		t.Error("loop parent is not the function region")
	}
	// The loop header must contain the comparison and conditional branch.
	header := f.Block(loop.Entry)
	hasCmp, hasCBr := false, false
	for _, op := range header.Ops {
		if op.Code == Lt {
			hasCmp = true
		}
		if op.Code == CBr {
			hasCBr = true
		}
	}
	if !hasCmp || !hasCBr {
		t.Errorf("loop header missing cmp/cbr:\n%s", ir.Dump())
	}
	// The init assignment (i = 0) must be outside the loop region.
	entry := f.Block(f.Entry)
	foundInit := false
	for _, op := range entry.Ops {
		if op.Code == ConstOp && op.Imm == 0 && ir.VarName(f, op.Dst) == "i" {
			foundInit = true
		}
	}
	if !foundInit {
		t.Errorf("loop init not in entry block:\n%s", ir.Dump())
	}
	if loop.Contains(f.Entry) {
		t.Error("loop region must not contain the function entry block")
	}
	// The back edge: some block in the region branches to the header.
	backEdge := false
	for _, bid := range loop.Blocks {
		for _, succ := range f.Block(bid).Succs() {
			if succ == loop.Entry && bid != loop.Entry {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Errorf("no back edge to loop header:\n%s", ir.Dump())
	}
}

func TestBuildNestedLoops(t *testing.T) {
	ir := mustBuild(t, `
var m[16];
func main() {
	var i; var j;
	for i = 0; i < 4; i = i + 1 {
		for j = 0; j < 4; j = j + 1 {
			m[i*4+j] = i + j;
		}
	}
}
`)
	f := ir.Func("main")
	regions := f.Root.AllRegions()
	if len(regions) != 3 {
		t.Fatalf("got %d regions, want 3 (func, outer, inner)", len(regions))
	}
	outer, inner := regions[1], regions[2]
	if inner.Parent != outer {
		t.Error("inner loop's parent is not the outer loop")
	}
	if inner.Depth() != 2 || outer.Depth() != 1 {
		t.Errorf("depths: inner=%d outer=%d, want 2,1", inner.Depth(), outer.Depth())
	}
	// Every inner block must also be in the outer region.
	for _, bid := range inner.Blocks {
		if !outer.Contains(bid) {
			t.Errorf("inner block %d not in outer region", bid)
		}
	}
}

func TestBuildIfRegions(t *testing.T) {
	ir := mustBuild(t, `
var x;
func main() {
	x = 3;
	if x > 1 {
		x = x - 1;
	} else {
		x = x + 1;
	}
	x = x * 2;
}
`)
	f := ir.Func("main")
	regions := f.Root.AllRegions()
	if len(regions) != 2 || regions[1].Kind != RegionIf {
		t.Fatalf("want func+if regions, got %v", regions)
	}
	ifr := regions[1]
	// The multiply after the if must not be inside the if region.
	for _, bid := range ifr.Blocks {
		for _, op := range f.Block(bid).Ops {
			if op.Code == Mul {
				t.Error("post-if code leaked into if region")
			}
		}
	}
	// The condition compare must be inside the region entry.
	entry := f.Block(ifr.Entry)
	hasGt := false
	for _, op := range entry.Ops {
		if op.Code == Gt {
			hasGt = true
		}
	}
	if !hasGt {
		t.Errorf("if condition not in region entry:\n%s", ir.Dump())
	}
}

func TestBuildWhile(t *testing.T) {
	ir := mustBuild(t, `
func main() {
	var n;
	n = 100;
	while n > 0 {
		n = n - 7;
	}
}
`)
	f := ir.Func("main")
	regions := f.Root.AllRegions()
	if len(regions) != 2 || regions[1].Kind != RegionLoop {
		t.Fatalf("want func+loop regions, got %d", len(regions))
	}
}

func TestBuildCallsAndReturns(t *testing.T) {
	ir := mustBuild(t, `
func sq(v) { return v * v; }
func main() {
	var r;
	r = sq(9);
	sq(r);
}
`)
	f := ir.Func("main")
	callCount := 0
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Code == Call {
				callCount++
				if op.Callee != "sq" || len(op.Args) != 1 {
					t.Errorf("bad call op: %+v", op)
				}
			}
		}
	}
	if callCount != 2 {
		t.Errorf("got %d calls, want 2", callCount)
	}
	sq := ir.Func("sq")
	if sq.Root.HasReturns() != true {
		t.Error("sq body must report returns")
	}
	if f.Root.HasCalls() != true {
		t.Error("main must report calls")
	}
	if sq.Root.HasCalls() {
		t.Error("sq has no calls")
	}
}

func TestBuildEarlyReturnRegion(t *testing.T) {
	ir := mustBuild(t, `
func f(a) {
	while a > 0 {
		if a == 3 {
			return 99;
		}
		a = a - 1;
	}
	return 0;
}
func main() { var x; x = f(5); }
`)
	f := ir.Func("f")
	var loop *Region
	for _, r := range f.Root.AllRegions() {
		if r.Kind == RegionLoop {
			loop = r
		}
	}
	if loop == nil {
		t.Fatal("no loop region")
	}
	if !loop.HasReturns() {
		t.Error("loop with early return must report HasReturns")
	}
}

func TestOpcodeClassMapping(t *testing.T) {
	cases := []struct {
		code Opcode
		want tech.OpClass
	}{
		{Add, tech.OpAddSub}, {Sub, tech.OpAddSub}, {Neg, tech.OpAddSub},
		{Mul, tech.OpMul}, {Div, tech.OpDivRem}, {Rem, tech.OpDivRem},
		{Shl, tech.OpShift}, {Shr, tech.OpShift},
		{And, tech.OpLogic}, {LNot, tech.OpLogic},
		{Lt, tech.OpCompare}, {Eq, tech.OpCompare},
		{Copy, tech.OpMove},
		{Load, tech.OpMemory}, {Store, tech.OpMemory},
	}
	for _, c := range cases {
		got, ok := c.code.Class()
		if !ok || got != c.want {
			t.Errorf("%v.Class() = %v,%v want %v,true", c.code, got, ok, c.want)
		}
	}
	for _, code := range []Opcode{Nop, ConstOp, Call, Ret, Br, CBr} {
		if _, ok := code.Class(); ok {
			t.Errorf("%v must not map to a datapath class", code)
		}
	}
}

func TestBinOpcodeRoundTrip(t *testing.T) {
	for b := behav.OpAdd; b <= behav.OpLOr; b++ {
		code := BinOpcode(b)
		if !code.IsBinary() {
			t.Errorf("BinOpcode(%v) = %v is not binary", b, code)
		}
		if got := BehavBinOp(code); got != b {
			t.Errorf("round trip %v -> %v -> %v", b, code, got)
		}
	}
}

func TestUsesAndDef(t *testing.T) {
	ir := mustBuild(t, "var g; func main() { var x; x = g + 2; g = x; }")
	f := ir.Func("main")
	var addOp *Op
	for _, b := range f.Blocks {
		for i := range b.Ops {
			if b.Ops[i].Code == Add {
				addOp = &b.Ops[i]
			}
		}
	}
	if addOp == nil {
		t.Fatal("no add op")
	}
	uses := addOp.Uses()
	if len(uses) != 1 || !uses[0].Global {
		t.Errorf("add uses = %+v, want [global g]", uses)
	}
	if !addOp.Def().Valid() || addOp.Def().Global {
		t.Errorf("add def = %+v, want local x", addOp.Def())
	}
}

func TestRegionOpsAndLabels(t *testing.T) {
	ir := mustBuild(t, `
func main() {
	var i; var s;
	s = 0;
	for i = 0; i < 8; i = i + 1 { s = s + i; }
}
`)
	var loop *Region
	for _, r := range ir.Regions() {
		if r.Kind == RegionLoop {
			loop = r
		}
	}
	if loop == nil {
		t.Fatal("no loop region")
	}
	if !strings.HasPrefix(loop.Label, "main/loop@") {
		t.Errorf("loop label %q", loop.Label)
	}
	if got := ir.RegionByLabel(loop.Label); got != loop {
		t.Error("RegionByLabel failed to find the loop")
	}
	if ir.RegionByLabel("nonexistent") != nil {
		t.Error("RegionByLabel should return nil for unknown labels")
	}
	ops := loop.Ops()
	if len(ops) == 0 {
		t.Fatal("loop region has no ops")
	}
	hasAdd := false
	for _, op := range ops {
		if op.Code == Add {
			hasAdd = true
		}
	}
	if !hasAdd {
		t.Error("loop ops missing the add")
	}
}

func TestBlockSuccs(t *testing.T) {
	ir := mustBuild(t, `
func main() {
	var x;
	x = 1;
	if x { x = 2; }
}
`)
	f := ir.Func("main")
	sawCBr, sawBr, sawRet := false, false, false
	for _, b := range f.Blocks {
		t1 := b.Terminator()
		if t1 == nil {
			t.Errorf("block b%d missing terminator", b.ID)
			continue
		}
		switch t1.Code {
		case CBr:
			sawCBr = true
			if len(b.Succs()) != 2 {
				t.Error("cbr must have 2 successors")
			}
		case Br:
			sawBr = true
			if len(b.Succs()) != 1 {
				t.Error("br must have 1 successor")
			}
		case Ret:
			sawRet = true
			if len(b.Succs()) != 0 {
				t.Error("ret must have 0 successors")
			}
		}
	}
	if !sawCBr || !sawBr || !sawRet {
		t.Errorf("terminator coverage: cbr=%v br=%v ret=%v", sawCBr, sawBr, sawRet)
	}
}

func TestAllBlocksTerminatedProperty(t *testing.T) {
	// Structural invariant across a batch of varied programs: every block
	// ends in a terminator and every successor ID is in range.
	sources := []string{
		"func main() {}",
		"func main() { var x; x = 1; if x { x = 2; } else { x = 3; } }",
		"func main() { var i; for i = 0; i < 3; i = i + 1 { } }",
		"func main() { var i; while i < 2 { i = i + 1; } }",
		"func f() { return; } func main() { f(); }",
		"func f(a) { if a { return 1; } return 0; } func main() { var x; x = f(1); }",
		`var a[4]; func main() { var i; for i=0;i<4;i=i+1 { a[i] = i*i; } }`,
		`func main() { var i; var j; for i=0;i<2;i=i+1 { for j=0;j<2;j=j+1 { if i==j { i=i; } } } }`,
	}
	for _, src := range sources {
		ir := mustBuild(t, src)
		for _, f := range ir.Funcs {
			for _, b := range f.Blocks {
				term := b.Terminator()
				if term == nil {
					t.Errorf("%s: block b%d of %s unterminated\n%s", src, b.ID, f.Name, ir.Dump())
					continue
				}
				for _, s := range b.Succs() {
					if s < 0 || s >= len(f.Blocks) {
						t.Errorf("%s: block b%d successor %d out of range", src, b.ID, s)
					}
				}
				// Terminators only at the end.
				for i := 0; i < len(b.Ops)-1; i++ {
					if b.Ops[i].Code.IsTerminator() {
						t.Errorf("%s: block b%d has terminator mid-block at %d", src, b.ID, i)
					}
				}
			}
		}
	}
}

func TestRegionBlocksNestingProperty(t *testing.T) {
	// Invariant: a child region's blocks are a subset of its parent's.
	ir := mustBuild(t, `
var a[64];
func main() {
	var i; var j; var s;
	for i = 0; i < 8; i = i + 1 {
		for j = 0; j < 8; j = j + 1 {
			if (i+j) & 1 {
				s = s + a[i*8+j];
			} else {
				s = s - a[i*8+j];
			}
		}
	}
	a[0] = s;
}
`)
	for _, r := range ir.Regions() {
		for _, c := range r.Children {
			for _, bid := range c.Blocks {
				if !r.Contains(bid) {
					t.Errorf("region %s: child %s block %d not contained", r.Label, c.Label, bid)
				}
			}
			if c.Parent != r {
				t.Errorf("region %s: child %s has wrong parent", r.Label, c.Label)
			}
		}
	}
}

func TestDumpStable(t *testing.T) {
	ir := mustBuild(t, "var g; func main() { g = 1 + 2; }")
	d1, d2 := ir.Dump(), ir.Dump()
	if d1 != d2 {
		t.Error("Dump is not deterministic")
	}
	if !strings.Contains(d1, "program t") || !strings.Contains(d1, "func main(") {
		t.Errorf("dump malformed:\n%s", d1)
	}
}
