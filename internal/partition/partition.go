package partition

import (
	"context"
	"fmt"
	"strings"

	"lppart/internal/asic"
	"lppart/internal/cdfg"
	"lppart/internal/explore"
	"lppart/internal/interp"
	"lppart/internal/iss"
	"lppart/internal/sched"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// Config is the designer's interaction surface (paper §3.5: "the designer
// does have manifold possibilities of interaction like defining several
// sets of resources, defining constraints like the total number of
// clusters to be selected or to modify the objective function").
type Config struct {
	Lib *tech.Library
	// ResourceSets are the designer-supplied hardware budgets (Fig. 1
	// line 7); nil selects tech.DefaultResourceSets().
	ResourceSets []tech.ResourceSet
	// MaxClusters is N_max^c, the pre-selection budget (Fig. 1 line 5).
	// 0 means 5.
	MaxClusters int
	// MaxCores extends the paper's single-ASIC experiments to multiple
	// application-specific cores (Eq. 3 is stated for N cores): a greedy
	// sequence of Fig. 1 passes, each excluding clusters that overlap
	// earlier choices and applying Fig. 3's synergy discounts (steps 2/4)
	// when a neighbouring sibling cluster is already in hardware.
	// 0 means 1.
	MaxCores int
	// F balances the objective function between energy and the other
	// design constraints (Fig. 1 line 13). 0 means 1.0.
	F float64
	// GEQBudget rejects clusters whose core exceeds this many cells
	// (the paper's "less than 16k cells" working bound). 0 means 16000.
	GEQBudget int
	// HardwareWeight and TimeWeight are the non-energy terms of the
	// objective function (the "+ ..." of Fig. 1 line 13): hardware cost
	// normalized to GEQBudget, and any execution-time *increase* as a
	// fraction of the initial time. Negative means default (0.25, 1.0).
	HardwareWeight float64
	TimeWeight     float64
	// MemPorts is the ASIC local-buffer port count for scheduling.
	MemPorts int
	// WeightedU switches Eq. 4 to size-weighted utilization (ablation
	// A4; the paper argues and we verify it does not change partitions).
	WeightedU bool
	// Workers bounds the number of concurrent (cluster, resource set)
	// evaluations of the Fig. 1 inner loop. 0 selects
	// runtime.GOMAXPROCS(0); 1 forces a serial run. The Decision is
	// byte-identical at any worker count: grid results are merged in
	// deterministic (cluster rank, set index) order.
	Workers int
	// Verify runs the pipeline-stage verifiers alongside the process:
	// cdfg.Verify and dataflow.VerifyGenUse on the input program,
	// sched.VerifyIR and asic.VerifyBinding on every freshly computed
	// schedule/binding, and AuditDecision on the result. Any violation
	// aborts Partition with an error — these are internal invariants, so
	// a failure is a bug, not a property of the design space.
	Verify bool
}

func (c *Config) defaults() {
	if c.Lib == nil {
		c.Lib = tech.Default()
	}
	if c.ResourceSets == nil {
		c.ResourceSets = tech.DefaultResourceSets()
	}
	if c.MaxClusters == 0 {
		c.MaxClusters = 5
	}
	if c.MaxCores == 0 {
		c.MaxCores = 1
	}
	if c.F == 0 {
		c.F = 1.0
	}
	if c.GEQBudget == 0 {
		c.GEQBudget = 16000
	}
	if c.HardwareWeight <= 0 {
		c.HardwareWeight = 0.05
	}
	if c.TimeWeight < 0 {
		c.TimeWeight = 1.0
	} else if c.TimeWeight == 0 {
		c.TimeWeight = 1.0
	}
	if c.Workers <= 0 {
		c.Workers = explore.DefaultWorkers()
	}
}

// Baseline carries the measured initial (all-software) design the
// candidates are judged against. The system package produces it.
type Baseline struct {
	// TotalEnergy is E_0: the whole system's initial energy (µP +
	// caches + memory + bus).
	TotalEnergy units.Energy
	// MuPEnergy is the µP core's share.
	MuPEnergy units.Energy
	// RestEnergy is E_rest: caches + memory + bus.
	RestEnergy units.Energy
	// TotalCycles is the initial execution time.
	TotalCycles int64
	// Regions holds the ISS's per-cluster statistics of the initial run.
	Regions map[int]*iss.RegionStat
	// Micro is the µP model the baseline was measured with.
	Micro *tech.MicroprocessorSpec
	// ICacheAccessEnergy is the per-fetch energy of the instruction
	// cache; moving a cluster to hardware saves one fetch per removed
	// instruction, which the objective function estimates with it.
	ICacheAccessEnergy units.Energy
}

// cumulative aggregates per-region ISS statistics over each region and all
// of its descendants: E_µP,c_i of Fig. 1 line 12 is the energy of *every*
// instruction in the cluster, nested subclusters included (the ISS tags
// instructions with their innermost region only).
func cumulative(p *cdfg.Program, flat map[int]*iss.RegionStat) map[int]*iss.RegionStat {
	out := make(map[int]*iss.RegionStat)
	for _, r := range p.Regions() {
		agg := &iss.RegionStat{}
		r.Walk(func(x *cdfg.Region) {
			s := flat[x.ID]
			if s == nil {
				return
			}
			agg.Instrs += s.Instrs
			agg.Cycles += s.Cycles
			agg.Energy += s.Energy
			for k := range agg.Active {
				agg.Active[k] += s.Active[k]
			}
		})
		out[r.ID] = agg
	}
	return out
}

// SetEval is the evaluation of one (cluster, resource set) pair —
// one iteration of Fig. 1 lines 8-13.
type SetEval struct {
	RS      *tech.ResourceSet
	Err     error // non-nil when the set cannot execute the cluster
	Binding *asic.Binding
	UASIC   float64 // U_R^core of the candidate ASIC implementation
	UMuP    float64 // U_µP^core measured while the µP ran this cluster
	// EASIC is the utilization-based ASIC energy estimate plus transfer
	// energy; EMuPSaved is the µP energy the cluster currently costs.
	EASIC     units.Energy
	EMuPSaved units.Energy
	// EstCycles is the estimated post-partition execution time.
	EstCycles int64
	GEQ       int
	OF        float64
	Eligible  bool
	Reason    string // why ineligible, for the decision trail
}

// Candidate is the decision trail of one cluster.
type Candidate struct {
	Region      *cdfg.Region
	Traffic     Traffic
	MuP         *iss.RegionStat
	Invocations int64
	Score       float64 // pre-selection ranking score
	Preselected bool
	SkipReason  string // why it never became a candidate
	Evals       []*SetEval
}

// Choice is the selected partition.
type Choice struct {
	Region  *cdfg.Region
	RS      *tech.ResourceSet
	Binding *asic.Binding
	Eval    *SetEval
}

// MemoStats reports the effectiveness of the cross-round schedule/binding
// memo: Binds counts (cluster, resource set) pairs scheduled and bound
// from scratch, Hits counts pairs whose Fig. 4 result a later MaxCores
// round reused, recomputing only the objective-function arithmetic. It is
// the partition-level view of the underlying explore.MemoStats.
type MemoStats struct {
	Binds int
	Hits  int
}

// HitRate returns Hits/(Hits+Binds), 0 when nothing was evaluated.
func (m MemoStats) HitRate() float64 {
	if m.Hits+m.Binds == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Hits+m.Binds)
}

// Decision is the complete outcome of the partitioning process, including
// the decision trail for every cluster considered.
type Decision struct {
	// Chosen is the first (best) selected implementation, nil when no
	// partition beats the initial design.
	Chosen *Choice
	// Choices lists every selected cluster when Config.MaxCores > 1
	// (Chosen is Choices[0]).
	Choices    []*Choice
	BaselineOF float64
	Candidates []*Candidate
	// Memo reports how often the multi-core rounds reused schedules and
	// bindings instead of recomputing them.
	Memo MemoStats
}

// Partition runs the Fig. 1 process over the program: decompose into
// clusters (the region tree), estimate bus traffic (Fig. 3), pre-select,
// schedule + bind (Fig. 4 via internal/asic) per resource set, evaluate
// the objective function and pick the best implementation.
func Partition(p *cdfg.Program, prof *interp.Profile, base *Baseline, cfg Config) (*Decision, error) {
	return PartitionCtx(context.Background(), p, prof, base, cfg) //lint:ctx non-Ctx convenience wrapper
}

// PartitionCtx is Partition with cancellation: ctx is threaded into the
// cluster × resource-set grid fan-out, so a cancelled or deadline-expired
// caller (e.g. a served request whose HTTP deadline passed) stops the
// worker pool from picking up further grid points and returns ctx.Err().
func PartitionCtx(ctx context.Context, p *cdfg.Program, prof *interp.Profile, base *Baseline, cfg Config) (*Decision, error) {
	if prof == nil || base == nil {
		return nil, fmt.Errorf("partition: profile and baseline are required")
	}
	e, err := NewEvaluator(p, prof, cfg)
	if err != nil {
		return nil, err
	}
	cfg = e.cfg
	// Rounds >= 2 revisit the same (cluster, resource set) pairs against a
	// shifted baseline: the delta evaluator re-runs only the
	// baseline-dependent price tail on the cached decomposition.
	de := NewDeltaEvaluator(e)
	dec := &Decision{BaselineOF: cfg.F}

	// Steps 1-5: candidate enumeration, Fig. 3 traffic estimates and
	// pre-selection (shared with the DSE explorer via the Evaluator).
	all, pool := e.Candidates(base)
	dec.Candidates = all

	// Steps 6-13, run greedily for up to MaxCores rounds: evaluate each
	// remaining pre-selected cluster on each resource set, keep the
	// minimum-OF implementation if it beats staying all-software (whose
	// objective value is F·E_0/E_0 = F), then repeat with the baseline
	// shifted by the accepted cluster and the synergy discounts enabled
	// for its siblings.
	//
	// The grid fans out on a bounded worker pool (Config.Workers) and
	// schedules/bindings are memoized across rounds: Fig. 1 lines 8-10
	// depend only on (cluster, resource set), so rounds >= 2 reuse them
	// and recompute only the objective-function arithmetic. Each round
	// visits a (region, set) pair at most once, so the memo computes every
	// pair exactly once no matter how the pool schedules the grid.
	round := *base
	inHW := make(map[int]bool) // region IDs already in hardware
	type gridTask struct {
		c              *Candidate
		si             int
		prevHW, nextHW bool
	}
	for core := 0; core < cfg.MaxCores; core++ {
		// Collect this round's grid in deterministic order: pool order
		// (pre-selection rank), then resource-set index.
		var tasks []gridTask
		for _, c := range pool {
			if overlapsChosen(c.Region, inHW, p) {
				continue
			}
			prev, next := siblings(c.Region)
			prevHW := prev != nil && inHW[prev.ID]
			nextHW := next != nil && inHW[next.ID]
			for si := range cfg.ResourceSets {
				tasks = append(tasks, gridTask{c, si, prevHW, nextHW})
			}
		}
		results, err := explore.MapCtx(ctx, cfg.Workers, tasks, func(_ int, t gridTask) (*SetEval, error) {
			return de.Eval(&round, t.c, t.si, t.prevHW, t.nextHW)
		})
		if err != nil {
			return nil, err // ctx cancellation or a Config.Verify violation
		}
		// Merge in grid order: the first-round decision trail and the
		// minimum-OF selection — the exact order the serial loop used, so
		// the Decision is identical at any worker count.
		var best *Choice
		for i, ev := range results {
			t := tasks[i]
			if core == 0 {
				t.c.Evals = append(t.c.Evals, ev) // the trail shows the first round
			}
			if !ev.Eligible {
				continue
			}
			if best == nil || ev.OF < best.Eval.OF {
				best = &Choice{Region: t.c.Region, RS: ev.RS, Binding: ev.Binding, Eval: ev}
			}
		}
		if best == nil || best.Eval.OF >= dec.BaselineOF {
			break
		}
		dec.Choices = append(dec.Choices, best)
		inHW[best.Region.ID] = true
		// Shift the running baseline: the accepted cluster's µP share is
		// gone, replaced by its estimated hardware energy and time.
		round.MuPEnergy -= best.Eval.EMuPSaved
		if round.MuPEnergy < 0 {
			round.MuPEnergy = 0
		}
		round.TotalCycles = best.Eval.EstCycles
	}
	if len(dec.Choices) > 0 {
		dec.Chosen = dec.Choices[0]
	}
	ms := e.MemoStats()
	dec.Memo = MemoStats{Binds: int(ms.Misses), Hits: int(ms.Hits)}
	if cfg.Verify {
		if err := AuditDecision(dec, base, cfg); err != nil {
			return nil, err
		}
	}
	return dec, nil
}

// overlapsChosen reports whether r shares blocks with any already-chosen
// region (nested or identical clusters cannot both move to hardware).
func overlapsChosen(r *cdfg.Region, inHW map[int]bool, p *cdfg.Program) bool {
	if len(inHW) == 0 {
		return false
	}
	for _, other := range p.Regions() {
		if inHW[other.ID] && RegionsOverlap(other, r) {
			return true
		}
	}
	return false
}

// ineligible explains why a region cannot be moved to an ASIC core.
func ineligible(p *cdfg.Program, prof *interp.Profile, r *cdfg.Region) string {
	if r.HasCalls() {
		return "contains calls into software"
	}
	if r.HasReturns() {
		return "contains returns (multiple exits)"
	}
	hasDatapath := false
	for _, op := range r.Ops() {
		if cl, ok := op.Code.Class(); ok && cl != tech.OpMemory {
			hasDatapath = true
			break
		}
	}
	if !hasDatapath {
		return "no datapath operations"
	}
	if prof.RegionEntries(r) == 0 {
		return "never executed in the profiling run"
	}
	return ""
}

// invocationsOf estimates how many times the cluster is invoked (entered
// from outside): the execution count of its unique exit block, which runs
// once per completed invocation.
func invocationsOf(prof *interp.Profile, r *cdfg.Region) int64 {
	inside := make(map[int]bool, len(r.Blocks))
	for _, bid := range r.Blocks {
		inside[bid] = true
	}
	for _, bid := range r.Blocks {
		for _, s := range r.Func.Block(bid).Succs() {
			if !inside[s] {
				return prof.BlockCount(r.Func, s)
			}
		}
	}
	return prof.RegionEntries(r)
}

// bindResult is the baseline-independent half of one (cluster, resource
// set) evaluation: Fig. 1 lines 8-10 (list schedule, Fig. 4 binding,
// hardware effort, ASIC-side utilization). It depends only on the cluster,
// the resource set and the static configuration — not on the shifted
// baseline or the synergy flags — so the MaxCores rounds memoize it.
type bindResult struct {
	err     error
	reason  string
	binding *asic.Binding
	geq     int
	uASIC   float64
	// verifyErr records a Config.Verify violation found while computing
	// this result; unlike err (a property of the design point, e.g.
	// unschedulable) it aborts the whole Partition call.
	verifyErr error
}

// scheduleBind runs the expensive half: Fig. 1 line 8's list schedule and
// Fig. 4's instance binding.
//
//lint:alloc cold-fill boundary, runs only on a schedule/binding memo miss — the warm EvalInto path (TestDeltaEvalIntoZeroAlloc) never enters
func scheduleBind(prof *interp.Profile, cfg Config, c *Candidate, rs *tech.ResourceSet) *bindResult {
	br := &bindResult{}
	// Line 8: list schedule.
	rsched, err := sched.ScheduleRegion(sched.Config{Lib: cfg.Lib, RS: rs, MemPorts: cfg.MemPorts}, c.Region)
	if err != nil {
		br.err = err
		br.reason = "unschedulable: " + err.Error()
		return br
	}
	if cfg.Verify {
		if err := sched.VerifyIR(rsched); err != nil {
			br.verifyErr = err
			return br
		}
	}
	// Fig. 4: bind, GEQ, U_R.
	binding, err := asic.Bind(rsched, cfg.Lib, func(bid int) int64 {
		return prof.BlockCount(c.Region.Func, bid)
	})
	if err != nil {
		br.err = err
		br.reason = "binding failed: " + err.Error()
		return br
	}
	if cfg.Verify {
		if err := asic.VerifyBinding(binding, cfg.Lib); err != nil {
			br.verifyErr = err
			return br
		}
	}
	br.binding = binding
	br.geq = binding.GEQTotal()
	br.uASIC = utilizationRate(binding, cfg)
	return br
}

// pairTerms is the baseline-independent decomposition of one (cluster,
// resource set, synergy flags) evaluation: everything in Fig. 1 lines
// 8-13 that does not read the (shifted or per-geometry) baseline. The
// only baseline inputs to these terms are the µP model and its clock —
// which every derived baseline shares with the measured one — so a
// DeltaEvaluator can price the same terms against many baselines by
// re-running just the cheap tail (price).
type pairTerms struct {
	err    error
	reason string // for err, or a baseline-independent rejection
	// rejected marks a line 9 / GEQ-budget rejection: the pair can never
	// become eligible, against any baseline sharing the µP model.
	rejected bool

	binding      *asic.Binding
	geq          int
	uASIC, uMuP  float64
	easic        units.Energy
	eMuPSaved    units.Energy
	mupCycles    int64
	mupInstrs    int64
	asicMuPCycle int64
	// micro is the µP model the terms were derived with; pricing against
	// a baseline with a different model requires fresh terms.
	micro *tech.MicroprocessorSpec
}

// termsOf computes the baseline-independent half of Fig. 1 lines 8-13 on
// top of a (possibly memoized) schedule+binding. prevHW/nextHW enable
// Fig. 3's synergy discounts (steps 2/4) when the neighbouring sibling
// cluster is already implemented in hardware.
//
//lint:alloc cold-fill boundary, runs only on a term-cache miss — the warm EvalInto path re-prices cached terms without entering here
func termsOf(base *Baseline, cfg Config,
	c *Candidate, rs *tech.ResourceSet, br *bindResult, prevHW, nextHW bool) *pairTerms {
	t := &pairTerms{micro: base.Micro}
	if br.err != nil {
		t.err = br.err
		t.reason = br.reason
		return t
	}
	binding := br.binding
	t.binding = binding
	t.geq = br.geq
	t.uASIC = br.uASIC
	t.uMuP = c.MuP.Utilization(base.Micro)
	if cfg.WeightedU {
		// Apples to apples: when U_R is size-weighted, weight the µP
		// side identically, so only the *relative* values matter — the
		// paper's §3.4 argument for why weighting changes nothing.
		t.uMuP = weightedMuPUtilization(c.MuP, base.Micro, cfg.Lib)
	}

	// Line 9: the cluster must utilize the ASIC core better than the µP.
	if t.uASIC <= t.uMuP {
		t.rejected = true
		t.reason = fmt.Sprintf("U_ASIC %.3f <= U_µP %.3f", t.uASIC, t.uMuP)
		return t
	}
	// Hardware budget (the factor-F rejection of too-expensive cores the
	// paper describes for "trick").
	if t.geq > cfg.GEQBudget {
		t.rejected = true
		t.reason = fmt.Sprintf("hardware effort %d cells exceeds budget %d", t.geq, cfg.GEQBudget)
		return t
	}

	// Lines 11-12: energy estimates, with Fig. 3 steps 2/4 synergy.
	// Beyond Fig. 3's bus energy, every transferred word crosses the
	// shared memory core (paper Fig. 2a steps a-d), and every invocation
	// pays a rendezvous overhead on the µP (trigger plus depositing and
	// reading back the live register state) — without these terms,
	// fine-grained clusters with thousands of invocations look far
	// cheaper than they measure.
	wIn, wOut := c.Traffic.EffectiveWords(prevHW, nextHW)
	perWord := cfg.Lib.Bus.EReadWord + cfg.Lib.Bus.EWriteWord +
		(cfg.Lib.Memory.EReadWord+cfg.Lib.Memory.EWriteWord)/4
	transfers := units.Energy(float64(c.Invocations)*float64(wIn+wOut)) * perWord
	const syncCycles = 24 // trigger + pinned-variable deposit/readback
	syncEnergy := units.Energy(float64(c.Invocations)*syncCycles) *
		base.Micro.BaseEnergy[tech.IClassStore]
	transfers += syncEnergy
	t.easic = binding.EnergySelectionEstimate(cfg.Lib) + transfers
	t.eMuPSaved = c.MuP.Energy
	t.mupCycles = c.MuP.Cycles
	t.mupInstrs = c.MuP.Instrs

	// Execution-time estimate: µP sheds the cluster's cycles, gains the
	// ASIC's (converted to µP clock) plus per-invocation transfer stalls.
	t.asicMuPCycle = int64(float64(binding.NcycWeighted)*float64(binding.Clock)/float64(base.Micro.ClockPeriod)) +
		int64(cfg.Lib.Memory.LatencyCycles)*int64(wIn+wOut)*c.Invocations +
		syncCycles*c.Invocations
	return t
}

// price runs the baseline-dependent tail of Fig. 1 lines 8-13 — the only
// arithmetic that reads the shifted/per-geometry baseline — writing the
// evaluation into out (which is fully overwritten; a warm caller can
// reuse one SetEval without allocating). The expression tree is the exact
// tail of the original single-pass evaluation, so a priced SetEval is
// byte-identical to a from-scratch one.
func (t *pairTerms) price(base *Baseline, cfg Config, rs *tech.ResourceSet, out *SetEval) {
	*out = SetEval{RS: rs}
	if t.err != nil {
		out.Err = t.err
		out.Reason = t.reason
		return
	}
	out.Binding = t.binding
	out.GEQ = t.geq
	out.UASIC = t.uASIC
	out.UMuP = t.uMuP
	if t.rejected {
		out.Reason = t.reason
		return
	}
	out.EASIC = t.easic
	out.EMuPSaved = t.eMuPSaved
	out.EstCycles = base.TotalCycles - t.mupCycles + t.asicMuPCycle
	if out.EstCycles < 1 {
		out.EstCycles = 1
	}

	// Line 13: objective function
	//   OF = F · (E_R + E_µP + E_rest)/E_0 + w_hw·GEQ/budget + w_t·slowdown.
	// E_rest is refined by the fetch energy the removed instructions no
	// longer draw from the i-cache (footnote 2's partition-dependent
	// cache behaviour, in estimate form).
	restAfter := base.RestEnergy - units.Energy(float64(t.mupInstrs))*base.ICacheAccessEnergy
	if restAfter < 0 {
		restAfter = 0
	}
	eAfter := float64(base.MuPEnergy-out.EMuPSaved) + float64(out.EASIC) + float64(restAfter)
	slowdown := float64(out.EstCycles)/float64(base.TotalCycles) - 1
	if slowdown < 0 {
		slowdown = 0
	}
	out.OF = cfg.F*eAfter/float64(base.TotalEnergy) +
		cfg.HardwareWeight*float64(out.GEQ)/float64(cfg.GEQBudget) +
		cfg.TimeWeight*slowdown
	out.Eligible = true
}

// evaluate runs the cheap half of Fig. 1 lines 8-13 for one (cluster,
// resource set) pair on top of a (possibly memoized) schedule+binding:
// eligibility, energy estimates and the objective function — the
// decomposition (termsOf) followed by the baseline-dependent tail
// (price).
func evaluate(base *Baseline, cfg Config,
	c *Candidate, rs *tech.ResourceSet, br *bindResult, prevHW, nextHW bool) *SetEval {
	ev := &SetEval{}
	termsOf(base, cfg, c, rs, br, prevHW, nextHW).price(base, cfg, rs, ev)
	return ev
}

// utilizationRate returns Eq. 4's U_R, optionally size-weighted (ablation
// A4: "all resources contribute to U_R in the same way, no matter whether
// they are large or small ... an according distinction does not result in
// better partitions").
func utilizationRate(b *asic.Binding, cfg Config) float64 {
	if !cfg.WeightedU {
		return b.URate
	}
	if b.NcycWeighted == 0 || len(b.Instances) == 0 {
		return 0
	}
	num, den := 0.0, 0.0
	for _, in := range b.Instances {
		w := float64(cfg.Lib.Resource(in.Kind).GEQ)
		num += w * float64(in.ActiveWeighted) / float64(b.NcycWeighted)
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// weightedMuPUtilization is the GEQ-weighted counterpart of
// iss.RegionStat.Utilization for ablation A4.
func weightedMuPUtilization(st *iss.RegionStat, m *tech.MicroprocessorSpec, lib *tech.Library) float64 {
	if st.Cycles == 0 {
		return 0
	}
	num, den := 0.0, 0.0
	for k := tech.ResourceKind(0); k < tech.NumResourceKinds; k++ {
		if m.CoreResources[k] == 0 {
			continue
		}
		w := float64(lib.Resource(k).GEQ * m.CoreResources[k])
		u := float64(st.Active[k]) / float64(st.Cycles)
		if u > 1 {
			u = 1
		}
		num += w * u
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Trail renders the decision process as text for cmd/lppart.
func (d *Decision) Trail() string {
	var sb strings.Builder
	for _, c := range d.Candidates {
		fmt.Fprintf(&sb, "cluster %-28s", c.Region.Label)
		if c.SkipReason != "" {
			fmt.Fprintf(&sb, " skipped: %s\n", c.SkipReason)
			continue
		}
		fmt.Fprintf(&sb, " in=%dw out=%dw E_trans=%v invocations=%d score=%.3g\n",
			c.Traffic.WordsIn, c.Traffic.WordsOut, c.Traffic.Energy, c.Invocations, c.Score)
		for _, ev := range c.Evals {
			fmt.Fprintf(&sb, "    %-10s", ev.RS.Name)
			if ev.Err != nil {
				fmt.Fprintf(&sb, " %s\n", ev.Reason)
				continue
			}
			fmt.Fprintf(&sb, " U_ASIC=%.3f U_µP=%.3f GEQ=%d", ev.UASIC, ev.UMuP, ev.GEQ)
			if !ev.Eligible {
				fmt.Fprintf(&sb, " rejected: %s\n", ev.Reason)
				continue
			}
			fmt.Fprintf(&sb, " E_ASIC=%v OF=%.4f\n", ev.EASIC, ev.OF)
		}
	}
	if d.Chosen != nil {
		fmt.Fprintf(&sb, "CHOSEN: %s on %s (OF %.4f vs baseline %.4f, %d cells)\n",
			d.Chosen.Region.Label, d.Chosen.RS.Name, d.Chosen.Eval.OF, d.BaselineOF,
			d.Chosen.Eval.GEQ)
	} else {
		fmt.Fprintf(&sb, "CHOSEN: none (no candidate beat the initial design, baseline OF %.4f)\n", d.BaselineOF)
	}
	return sb.String()
}
