package partition

import (
	"fmt"
	"math"

	"lppart/internal/units"
)

// auditRelTol is the relative tolerance for the objective-function
// recomputation: the audit repeats the same float arithmetic from the
// recorded terms, so anything beyond a few ulps means a term was
// dropped or double-counted, not rounding.
const auditRelTol = 1e-9

// AuditDecision cross-checks a finished Decision against the baseline it
// was judged from: for every first-round evaluation the recorded
// E_R/E_µP/E_rest terms must reproduce the reported objective value
// (Fig. 1 line 13), utilization rates must be genuine rates in [0,1],
// and the selected implementation must actually beat the all-software
// objective. Partition runs it before returning when Config.Verify is
// set; cmd/report and cmd/lppart expose it via -verify.
//
// Only first-round evaluations are audited: the decision trail records
// those against the initial baseline, while later MaxCores rounds are
// judged against shifted baselines the Decision does not retain.
func AuditDecision(dec *Decision, base *Baseline, cfg Config) error {
	cfg.defaults()
	if dec == nil || base == nil {
		return fmt.Errorf("partition: audit: nil decision or baseline")
	}
	if base.TotalEnergy <= 0 || base.TotalCycles <= 0 {
		return fmt.Errorf("partition: audit: baseline has no measured run (E_0=%v, cycles=%d)",
			base.TotalEnergy, base.TotalCycles)
	}
	for _, c := range dec.Candidates {
		for _, ev := range c.Evals {
			if err := auditEval(c, ev, base, cfg); err != nil {
				return err
			}
		}
	}
	if dec.Chosen != nil {
		ev := dec.Chosen.Eval
		if !ev.Eligible {
			return fmt.Errorf("partition: audit: chosen cluster %s is marked ineligible (%s)",
				dec.Chosen.Region.Label, ev.Reason)
		}
		if ev.OF >= dec.BaselineOF {
			return fmt.Errorf("partition: audit: chosen cluster %s has OF %.6f, not below baseline %.6f",
				dec.Chosen.Region.Label, ev.OF, dec.BaselineOF)
		}
		if dec.Chosen.Binding == nil {
			return fmt.Errorf("partition: audit: chosen cluster %s has no binding", dec.Chosen.Region.Label)
		}
	}
	return nil
}

// auditEval re-derives one first-round evaluation's objective value from
// its recorded terms.
func auditEval(c *Candidate, ev *SetEval, base *Baseline, cfg Config) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("partition: audit: cluster %s on %s: %s",
			c.Region.Label, ev.RS.Name, fmt.Sprintf(format, args...))
	}
	if ev.Err != nil {
		if ev.Eligible {
			return fail("eligible despite error: %v", ev.Err)
		}
		return nil
	}
	if ev.UASIC < 0 || ev.UASIC > 1 {
		return fail("U_ASIC %.6f outside [0,1]", ev.UASIC)
	}
	if ev.UMuP < 0 || ev.UMuP > 1 {
		return fail("U_µP %.6f outside [0,1]", ev.UMuP)
	}
	if !ev.Eligible {
		return nil // rejected before the energy terms were computed
	}
	if ev.Binding == nil {
		return fail("eligible evaluation has no binding")
	}
	if ev.GEQ != ev.Binding.GEQTotal() {
		return fail("GEQ %d disagrees with binding total %d", ev.GEQ, ev.Binding.GEQTotal())
	}
	if ev.GEQ > cfg.GEQBudget {
		return fail("eligible despite %d cells over budget %d", ev.GEQ, cfg.GEQBudget)
	}
	if ev.EASIC < 0 || ev.EMuPSaved < 0 {
		return fail("negative energy term (E_ASIC=%v, E_µP=%v)", ev.EASIC, ev.EMuPSaved)
	}
	if ev.EstCycles < 1 {
		return fail("estimated cycles %d below the floor of 1", ev.EstCycles)
	}

	// Recompute OF = F·(E_R + E_µP + E_rest)/E_0 + w_hw·GEQ/budget +
	// w_t·slowdown from the recorded terms, exactly as evaluate() does.
	restAfter := base.RestEnergy - units.Energy(float64(c.MuP.Instrs))*base.ICacheAccessEnergy
	if restAfter < 0 {
		restAfter = 0
	}
	eAfter := float64(base.MuPEnergy-ev.EMuPSaved) + float64(ev.EASIC) + float64(restAfter)
	slowdown := float64(ev.EstCycles)/float64(base.TotalCycles) - 1
	if slowdown < 0 {
		slowdown = 0
	}
	want := cfg.F*eAfter/float64(base.TotalEnergy) +
		cfg.HardwareWeight*float64(ev.GEQ)/float64(cfg.GEQBudget) +
		cfg.TimeWeight*slowdown
	if !closeRel(ev.OF, want) {
		return fail("objective value %.12g does not reproduce from its terms (want %.12g)", ev.OF, want)
	}
	return nil
}

// closeRel reports whether two floats agree to auditRelTol.
func closeRel(a, b float64) bool {
	d := math.Abs(a - b)
	if d == 0 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= auditRelTol*math.Max(scale, 1)
}
