package partition

import (
	"strings"
	"testing"

	"lppart/internal/behav"
	"lppart/internal/cdfg"
	"lppart/internal/codegen"
	"lppart/internal/interp"
	"lppart/internal/iss"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// setup builds IR, profile and a measured baseline for src.
func setup(t *testing.T, src string) (*cdfg.Program, *interp.Profile, *Baseline) {
	t.Helper()
	prog := behav.MustParse("t", src)
	ir := cdfg.MustBuild(prog)
	profRes, err := interp.Run(ir, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	mp, _, err := codegen.Compile(ir, codegen.Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	lib := tech.Default()
	res, err := iss.Run(mp, iss.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := &Baseline{
		TotalEnergy:        res.Energy * 2, // headroom stands in for cache/mem energy
		MuPEnergy:          res.Energy,
		RestEnergy:         res.Energy,
		TotalCycles:        res.TotalCycles(),
		Regions:            res.Regions,
		Micro:              &lib.Micro,
		ICacheAccessEnergy: 2.5 * units.NanoJoule,
	}
	return ir, profRes.Prof, base
}

const hotLoopSrc = `
var data[256]; var out[256]; var total;
func main() {
	var i; var v;
	for i = 0; i < 256; i = i + 1 { data[i] = (i * 37) & 255; }
	for i = 0; i < 256; i = i + 1 {
		v = data[i];
		out[i] = (v * v + (v << 3) - (v >> 1)) & 65535;
	}
	for i = 0; i < 256; i = i + 1 { total = total + out[i]; }
}
`

func TestPartitionChoosesHotCluster(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	dec, err := Partition(ir, prof, base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen == nil {
		t.Fatalf("no partition chosen:\n%s", dec.Trail())
	}
	// The compute loop (second) must be chosen, not the init or sum.
	if !strings.Contains(dec.Chosen.Region.Label, "loop") {
		t.Errorf("chosen %s is not a loop", dec.Chosen.Region.Label)
	}
	if dec.Chosen.Eval.UASIC <= dec.Chosen.Eval.UMuP {
		t.Error("chosen cluster must beat the µP's utilization")
	}
	if dec.Chosen.Eval.OF >= dec.BaselineOF {
		t.Error("chosen OF must beat the baseline")
	}
	if dec.Chosen.Eval.GEQ <= 0 || dec.Chosen.Eval.GEQ > 16000 {
		t.Errorf("chosen GEQ %d out of range", dec.Chosen.Eval.GEQ)
	}
}

func TestPartitionRequiresInputs(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	if _, err := Partition(ir, nil, base, Config{}); err == nil {
		t.Error("nil profile must error")
	}
	if _, err := Partition(ir, prof, nil, Config{}); err == nil {
		t.Error("nil baseline must error")
	}
}

func TestPartitionDecisionTrailComplete(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	dec, err := Partition(ir, prof, base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Every region appears in the trail exactly once.
	if len(dec.Candidates) != len(ir.Regions()) {
		t.Errorf("trail has %d candidates, program has %d regions",
			len(dec.Candidates), len(ir.Regions()))
	}
	trail := dec.Trail()
	if !strings.Contains(trail, "CHOSEN") {
		t.Error("trail missing CHOSEN line")
	}
	// Function regions with calls/returns are explained.
	found := false
	for _, c := range dec.Candidates {
		if c.Region.Kind == cdfg.RegionFunc && c.SkipReason != "" {
			found = true
		}
	}
	if !found {
		t.Error("main's function region should be skipped with a reason")
	}
}

func TestPreselectionBudget(t *testing.T) {
	// With MaxClusters=1 only the single best-scoring cluster is
	// evaluated.
	ir, prof, base := setup(t, hotLoopSrc)
	dec, err := Partition(ir, prof, base, Config{MaxClusters: 1})
	if err != nil {
		t.Fatal(err)
	}
	evaluated := 0
	for _, c := range dec.Candidates {
		if c.Preselected {
			evaluated++
		}
	}
	if evaluated != 1 {
		t.Errorf("pre-selected %d clusters, want 1", evaluated)
	}
}

func TestGEQBudgetRejects(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	dec, err := Partition(ir, prof, base, Config{GEQBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen != nil {
		t.Errorf("a 100-cell budget cannot fit any core, chose %s (%d cells)",
			dec.Chosen.Region.Label, dec.Chosen.Eval.GEQ)
	}
	// The trail must explain the rejections.
	if !strings.Contains(dec.Trail(), "exceeds budget") {
		t.Error("trail should mention budget rejections")
	}
}

func TestIneligibleReasons(t *testing.T) {
	src := `
func helper(x) { return x * 2; }
func main() {
	var i; var s;
	for i = 0; i < 10; i = i + 1 {
		s = s + helper(i);
	}
	return s;
}
`
	ir, prof, base := setup(t, src)
	dec, err := Partition(ir, prof, base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The loop contains a call: it must be skipped with that reason.
	for _, c := range dec.Candidates {
		if c.Region.Kind == cdfg.RegionLoop {
			if !strings.Contains(c.SkipReason, "calls") {
				t.Errorf("loop with call skipped for %q, want call reason", c.SkipReason)
			}
		}
	}
}

func TestNeverExecutedClusterSkipped(t *testing.T) {
	src := `
var g;
func main() {
	var i;
	if g > 100 {
		for i = 0; i < 10; i = i + 1 { g = g + i * i; }
	}
	g = g + 1;
}
`
	ir, prof, base := setup(t, src)
	dec, err := Partition(ir, prof, base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range dec.Candidates {
		if c.Region.Kind == cdfg.RegionLoop && c.SkipReason == "" {
			t.Error("dead loop must be skipped (never executed)")
		}
	}
}

func TestEstimateTrafficFig3(t *testing.T) {
	src := `
var a[16]; var b2[16]; var c[16];
func main() {
	var i;
	for i = 0; i < 16; i = i + 1 { a[i] = i; }
	for i = 0; i < 16; i = i + 1 { b2[i] = a[i] * 2; }
	for i = 0; i < 16; i = i + 1 { c[i] = b2[i] + 1; }
}
`
	prog := behav.MustParse("t", src)
	ir := cdfg.MustBuild(prog)
	var loops []*cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop {
			loops = append(loops, r)
		}
	}
	lib := tech.Default()
	// Middle loop: reads a (16 words, generated before), writes b2 (16
	// words, used after).
	tr := EstimateTraffic(ir, loops[1], loops[0], loops[2], lib)
	if tr.WordsIn < 16 || tr.WordsIn > 18 {
		t.Errorf("WordsIn = %d, want ~16 (array a + loop scalar)", tr.WordsIn)
	}
	if tr.WordsOut < 16 || tr.WordsOut > 18 {
		t.Errorf("WordsOut = %d, want ~16 (array b2)", tr.WordsOut)
	}
	// Synergy: if the first loop were in hardware, a's transfer is
	// discounted (step 2); if the third were, b2's is (step 4).
	if tr.SynergyIn < 16 {
		t.Errorf("SynergyIn = %d, want >= 16 (gen[c_{i-1}] ∩ use[c_i])", tr.SynergyIn)
	}
	if tr.SynergyOut < 16 {
		t.Errorf("SynergyOut = %d, want >= 16", tr.SynergyOut)
	}
	in, out := tr.EffectiveWords(true, true)
	if in > 2 || out > 2 {
		t.Errorf("with both neighbours in HW, effective transfers %d/%d should nearly vanish", in, out)
	}
	if tr.Energy <= 0 {
		t.Error("traffic energy must be positive")
	}
	// Fig. 3 step 5: energy = (in+out) words × (read + write) bus energy.
	want := units.Energy(float64(tr.WordsIn+tr.WordsOut)) * (lib.Bus.EReadWord + lib.Bus.EWriteWord)
	if tr.Energy != want {
		t.Errorf("traffic energy %v, want %v", tr.Energy, want)
	}
}

func TestCumulativeRegionStats(t *testing.T) {
	// A nested loop's instructions are tagged to the inner region; the
	// outer cluster's stats must include them.
	src := `
var m[64]; var s;
func main() {
	var i; var j;
	for i = 0; i < 8; i = i + 1 {
		for j = 0; j < 8; j = j + 1 {
			s = s + m[i*8+j] + i*j;
		}
	}
}
`
	ir, prof, base := setup(t, src)
	dec, err := Partition(ir, prof, base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var outer, inner *Candidate
	for _, c := range dec.Candidates {
		if c.Region.Kind != cdfg.RegionLoop {
			continue
		}
		if c.Region.Depth() == 1 {
			outer = c
		} else {
			inner = c
		}
	}
	if outer == nil || inner == nil || outer.MuP == nil || inner.MuP == nil {
		t.Fatalf("missing candidates: outer=%v inner=%v", outer, inner)
	}
	if outer.MuP.Energy < inner.MuP.Energy {
		t.Errorf("outer cumulative energy %v below inner %v", outer.MuP.Energy, inner.MuP.Energy)
	}
	if outer.MuP.Instrs <= inner.MuP.Instrs {
		t.Errorf("outer cumulative instrs %d not above inner %d", outer.MuP.Instrs, inner.MuP.Instrs)
	}
}

func TestInvocationsOf(t *testing.T) {
	src := `
var s;
func main() {
	var i; var j;
	for i = 0; i < 7; i = i + 1 {
		for j = 0; j < 5; j = j + 1 { s = s + 1; }
	}
}
`
	prog := behav.MustParse("t", src)
	ir := cdfg.MustBuild(prog)
	profRes, err := interp.Run(ir, interp.Options{CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ir.Regions() {
		if r.Kind != cdfg.RegionLoop {
			continue
		}
		inv := invocationsOf(profRes.Prof, r)
		switch r.Depth() {
		case 1:
			if inv != 1 {
				t.Errorf("outer loop invocations = %d, want 1", inv)
			}
		case 2:
			if inv != 7 {
				t.Errorf("inner loop invocations = %d, want 7", inv)
			}
		}
	}
}

func TestMemoReusesScheduleBinds(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	dec, err := Partition(ir, prof, base, Config{MaxCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen == nil {
		t.Fatalf("expected a partition so a second round runs:\n%s", dec.Trail())
	}
	pre := 0
	for _, c := range dec.Candidates {
		if c.Preselected {
			pre++
		}
	}
	sets := len(tech.DefaultResourceSets())
	// Round 1 schedules+binds every pre-selected (cluster, set) pair from
	// scratch; the second round's grid (everything not overlapping the
	// chosen cluster) is a subset, so it must be served entirely from the
	// memo — zero new schedule/bind calls.
	if want := pre * sets; dec.Memo.Binds != want {
		t.Errorf("Memo.Binds = %d, want %d (one per round-1 grid pair)", dec.Memo.Binds, want)
	}
	if want := (pre - 1) * sets; dec.Memo.Hits != want {
		t.Errorf("Memo.Hits = %d, want %d (round 2 = grid minus the chosen cluster)",
			dec.Memo.Hits, want)
	}
	if hr := dec.Memo.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("HitRate() = %v, want in (0,1)", hr)
	}
}

func TestMemoUnusedSingleCore(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	dec, err := Partition(ir, prof, base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A single Fig. 1 pass visits every (cluster, set) pair exactly once:
	// no reuse opportunity, and the memo must not invent one.
	if dec.Memo.Hits != 0 {
		t.Errorf("Memo.Hits = %d in a MaxCores=1 run, want 0", dec.Memo.Hits)
	}
	if dec.Memo.Binds == 0 {
		t.Error("Memo.Binds = 0, want one per evaluated grid pair")
	}
}

func TestPartitionWorkersDeterministic(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	trail := func(workers int) string {
		dec, err := Partition(ir, prof, base, Config{Workers: workers, MaxCores: 2})
		if err != nil {
			t.Fatal(err)
		}
		return dec.Trail()
	}
	serial := trail(1)
	for _, w := range []int{2, 8, 32} {
		if got := trail(w); got != serial {
			t.Errorf("Workers=%d decision trail diverges from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				w, serial, w, got)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.Lib == nil || c.ResourceSets == nil {
		t.Error("defaults must fill library and resource sets")
	}
	if c.MaxClusters != 5 || c.F != 1.0 || c.GEQBudget != 16000 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.HardwareWeight <= 0 || c.TimeWeight <= 0 {
		t.Error("objective weights must default positive")
	}
}
