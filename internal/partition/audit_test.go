package partition

import (
	"strings"
	"testing"
)

// decideVerified runs a full verified partition: Config.Verify exercises
// cdfg.Verify, dataflow.VerifyGenUse, sched.VerifyIR, asic.VerifyBinding
// and AuditDecision on a real pipeline run.
func decideVerified(t *testing.T) (*Decision, *Baseline) {
	t.Helper()
	ir, prof, base := setup(t, hotLoopSrc)
	dec, err := Partition(ir, prof, base, Config{Verify: true})
	if err != nil {
		t.Fatalf("verified partition failed: %v", err)
	}
	if dec.Chosen == nil {
		t.Fatalf("no partition chosen:\n%s", dec.Trail())
	}
	return dec, base
}

func wantAuditError(t *testing.T, dec *Decision, base *Baseline, substr string) {
	t.Helper()
	err := AuditDecision(dec, base, Config{})
	if err == nil {
		t.Fatalf("AuditDecision accepted bad decision, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("audit error %q does not mention %q", err, substr)
	}
}

// firstEligible returns some eligible first-round evaluation.
func firstEligible(t *testing.T, dec *Decision) *SetEval {
	t.Helper()
	for _, c := range dec.Candidates {
		for _, ev := range c.Evals {
			if ev.Eligible {
				return ev
			}
		}
	}
	t.Fatal("no eligible evaluation in the trail")
	return nil
}

func TestVerifiedPartitionMatchesUnverified(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	plain, err := Partition(ir, prof, base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Partition(ir, prof, base, Config{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	// Verification is read-only: the decision trail must be byte-identical.
	if plain.Trail() != checked.Trail() {
		t.Errorf("Verify changed the decision:\n--- plain ---\n%s\n--- verified ---\n%s",
			plain.Trail(), checked.Trail())
	}
}

func TestAuditAcceptsRealDecision(t *testing.T) {
	dec, base := decideVerified(t)
	if err := AuditDecision(dec, base, Config{}); err != nil {
		t.Errorf("audit rejects a genuine decision: %v", err)
	}
}

func TestAuditNilInputs(t *testing.T) {
	dec, base := decideVerified(t)
	if AuditDecision(nil, base, Config{}) == nil {
		t.Error("nil decision must fail")
	}
	if AuditDecision(dec, nil, Config{}) == nil {
		t.Error("nil baseline must fail")
	}
	if AuditDecision(dec, &Baseline{}, Config{}) == nil {
		t.Error("unmeasured baseline must fail")
	}
}

func TestAuditDetectsTamperedObjective(t *testing.T) {
	dec, base := decideVerified(t)
	ev := firstEligible(t, dec)
	ev.OF += 0.125 // no longer reproducible from its terms
	wantAuditError(t, dec, base, "does not reproduce")
}

func TestAuditDetectsDroppedEnergyTerm(t *testing.T) {
	dec, base := decideVerified(t)
	ev := firstEligible(t, dec)
	ev.EASIC = 0 // E_R silently dropped from the numerator
	wantAuditError(t, dec, base, "does not reproduce")
}

func TestAuditDetectsBadUtilization(t *testing.T) {
	dec, base := decideVerified(t)
	ev := firstEligible(t, dec)
	ev.UASIC = 1.5
	wantAuditError(t, dec, base, "outside [0,1]")
}

func TestAuditDetectsInconsistentGEQ(t *testing.T) {
	dec, base := decideVerified(t)
	ev := firstEligible(t, dec)
	ev.GEQ += 100 // disagrees with the binding's total
	wantAuditError(t, dec, base, "disagrees")
}

func TestAuditDetectsLosingChoice(t *testing.T) {
	dec, base := decideVerified(t)
	// Pretend the chosen implementation did not actually beat the
	// baseline. Keep the terms self-consistent by moving the baseline
	// bar rather than the recorded OF.
	dec.BaselineOF = dec.Chosen.Eval.OF / 2
	wantAuditError(t, dec, base, "not below baseline")
}

func TestAuditDetectsIneligibleChoice(t *testing.T) {
	dec, base := decideVerified(t)
	dec.Chosen.Eval.Eligible = false
	wantAuditError(t, dec, base, "ineligible")
}
