package partition

import (
	"fmt"
	"sort"

	"lppart/internal/cdfg"
	"lppart/internal/dataflow"
	"lppart/internal/explore"
	"lppart/internal/interp"
)

// PairKey identifies one (cluster, resource set) pair in the
// schedule/binding memo: Fig. 1 lines 8-10 depend only on this pair, not
// on the baseline they are judged against, so every search over the
// design space — the greedy MaxCores rounds here, the branch-and-bound
// subtrees and cache geometries of internal/dse — can share one memo.
type PairKey struct {
	Region int // region ID
	Set    int // resource-set index
}

// Evaluator exposes the Fig. 1 building blocks — candidate enumeration
// with the Fig. 3 bus-traffic pre-selection, and the per-(cluster,
// resource set) schedule/bind/objective evaluation — to callers that
// walk the design space in a different order than the greedy loop.
// Partition itself runs on one, and internal/dse's Pareto explorer
// shares the schedule/binding memo across its subtrees and cache
// geometries through the same type.
//
// The evaluator is safe for concurrent Eval calls: the memo serializes
// its own accesses and scheduleBind is a pure function of the pair.
type Evaluator struct {
	p    *cdfg.Program
	prof *interp.Profile
	cfg  Config
	memo *explore.Memo[PairKey, *bindResult]
}

// NewEvaluator validates the inputs (running the cdfg/dataflow verifiers
// when cfg.Verify is set) and returns an evaluator with an empty memo.
func NewEvaluator(p *cdfg.Program, prof *interp.Profile, cfg Config) (*Evaluator, error) {
	cfg.defaults()
	if prof == nil {
		return nil, fmt.Errorf("partition: profile is required")
	}
	if cfg.Verify {
		if err := cdfg.Verify(p); err != nil {
			return nil, err
		}
		for _, r := range p.Regions() {
			if err := dataflow.VerifyGenUse(p, r); err != nil {
				return nil, err
			}
		}
	}
	return &Evaluator{p: p, prof: prof, cfg: cfg,
		memo: explore.NewMemo[PairKey, *bindResult](0)}, nil
}

// Config returns the evaluator's fully-defaulted configuration.
func (e *Evaluator) Config() Config { return e.cfg }

// Program returns the program under evaluation.
func (e *Evaluator) Program() *cdfg.Program { return e.p }

// Candidates runs Fig. 1 steps 1-5 against a measured baseline: cluster
// decomposition (the region tree), per-cluster eligibility, the Fig. 3
// bus-traffic estimate and score, and the N_max^c pre-selection. It
// returns every candidate (with skip reasons filled in) and the
// pre-selected pool in rank order.
func (e *Evaluator) Candidates(base *Baseline) (all, pool []*Candidate) {
	cum := cumulative(e.p, base.Regions)

	// Steps 1-2: G = {V,E} and cluster decomposition are the cdfg region
	// tree. Enumerate candidates with their eligibility.
	for _, r := range e.p.Regions() {
		c := &Candidate{Region: r}
		all = append(all, c)
		if reason := ineligible(e.p, e.prof, r); reason != "" {
			c.SkipReason = reason
			continue
		}
		prev, next := siblings(r)
		// Steps 3-4: bus transfer energy (Fig. 3).
		c.Traffic = EstimateTraffic(e.p, r, prev, next, e.cfg.Lib)
		c.MuP = cum[r.ID]
		c.Invocations = invocationsOf(e.prof, r)
		if c.MuP == nil || c.MuP.Instrs == 0 {
			c.SkipReason = "cluster never executed on the µP"
			continue
		}
		// Pre-selection score: expected gross win = µP energy spent in
		// the cluster minus the bus-transfer energy it would add.
		perInvocationTransfers := c.Traffic.Energy
		c.Score = float64(c.MuP.Energy) - float64(perInvocationTransfers)*float64(c.Invocations)
	}

	// Step 5: pre-select the N_max^c most promising clusters.
	for _, c := range all {
		if c.SkipReason == "" {
			pool = append(pool, c)
		}
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].Score != pool[j].Score {
			return pool[i].Score > pool[j].Score
		}
		return pool[i].Region.ID < pool[j].Region.ID
	})
	if len(pool) > e.cfg.MaxClusters {
		for _, c := range pool[e.cfg.MaxClusters:] {
			c.SkipReason = fmt.Sprintf("pre-selection: below top %d by bus-traffic score", e.cfg.MaxClusters)
		}
		pool = pool[:e.cfg.MaxClusters]
	}
	for _, c := range pool {
		c.Preselected = true
	}
	return all, pool
}

// Eval runs Fig. 1 lines 8-13 for one (cluster, resource set) pair
// against a baseline, reusing the schedule/binding memo: only the first
// evaluation of a pair pays for the list schedule and the Fig. 4
// binding; every later baseline, synergy-flag combination or search
// subtree recomputes just the objective arithmetic. The returned error
// is a Config.Verify violation (an internal invariant failure), never a
// property of the design point — infeasible points come back as
// ineligible SetEvals.
func (e *Evaluator) Eval(base *Baseline, c *Candidate, si int, prevHW, nextHW bool) (*SetEval, error) {
	rs := &e.cfg.ResourceSets[si]
	key := PairKey{Region: c.Region.ID, Set: si}
	br, ok := e.memo.Get(key)
	if !ok {
		br = scheduleBind(e.prof, e.cfg, c, rs)
		e.memo.Add(key, br)
	}
	if br.verifyErr != nil {
		return nil, br.verifyErr
	}
	return evaluate(base, e.cfg, c, rs, br, prevHW, nextHW), nil
}

// MemoStats reports the schedule/binding memo's effectiveness.
func (e *Evaluator) MemoStats() explore.MemoStats { return e.memo.Stats() }

// RegionsOverlap reports whether two clusters share basic blocks: nested
// or identical regions cannot both move to hardware, so any design-space
// search must exclude overlapping pairs from one configuration.
func RegionsOverlap(a, b *cdfg.Region) bool {
	if a.Func != b.Func {
		return false
	}
	// Regions hold a handful of blocks, and the branch-and-bound DFS calls
	// this per candidate: a direct scan beats building a throwaway set.
	for _, bid := range b.Blocks {
		for _, aid := range a.Blocks {
			if aid == bid {
				return true
			}
		}
	}
	return false
}
