// Package partition implements the paper's primary contribution: the low
// power hardware/software partitioning algorithm of Fig. 1, with the
// bus-traffic-based cluster pre-selection of Fig. 3. The utilization-rate
// and GEQ computation of Fig. 4 lives in internal/asic (it is the datapath
// binding); this package drives it.
package partition

import (
	"lppart/internal/cdfg"
	"lppart/internal/dataflow"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// Traffic is the Fig. 3 bus-transfer estimate of one candidate cluster.
type Traffic struct {
	// WordsIn is N_Trans,µP->mem: data generated before the cluster and
	// used inside it (|gen[C_pred] ∩ use[c_i]| weighted by word counts).
	WordsIn int
	// WordsOut is N_Trans,ASIC->mem: data generated inside and used
	// after (|gen[c_i] ∩ use[C_succ]|).
	WordsOut int
	// SynergyIn/SynergyOut are the step 2/4 discounts that apply when
	// the preceding/succeeding sibling cluster is also implemented in
	// hardware (|gen[c_{i-1}] ∩ use[c_i]| and |gen[c_i] ∩ use[c_{i+1}]|).
	SynergyIn  int
	SynergyOut int
	// Energy is E_Trans,µPcore<->ASICcore per invocation set (step 5),
	// without synergy discounts.
	Energy units.Energy
}

// EffectiveWords returns the transfer volume after synergy discounts,
// given whether the neighbouring clusters are in hardware.
func (t Traffic) EffectiveWords(prevInHW, nextInHW bool) (in, out int) {
	in, out = t.WordsIn, t.WordsOut
	if prevInHW {
		in -= t.SynergyIn
		if in < 0 {
			in = 0
		}
	}
	if nextInHW {
		out -= t.SynergyOut
		if out < 0 {
			out = 0
		}
	}
	return in, out
}

// EstimateTraffic runs the Fig. 3 algorithm for one candidate cluster.
// prev and next are the neighbouring sibling clusters (c_{i-1}, c_{i+1});
// either may be nil.
func EstimateTraffic(p *cdfg.Program, c *cdfg.Region, prev, next *cdfg.Region, lib *tech.Library) Traffic {
	ix := dataflow.NewIndex(p, c.Func)
	gen, use := dataflow.GenUseOn(ix, c)
	genPred, useSucc := dataflow.SurroundingsOn(ix, c)
	f := c.Func

	var t Traffic
	// Step 1: N_Trans,µPcore->mem = |gen[C_pred] ∩ use[c_i]|.
	t.WordsIn = genPred.Intersect(use).Words()
	// Step 3: N_Trans,ASICcore->mem = |gen[c_i] ∩ use[C_succ]|.
	t.WordsOut = gen.Intersect(useSucc).Words()
	// Steps 2/4: synergy with neighbouring clusters.
	if prev != nil && prev.Func == f {
		genPrev, _ := dataflow.GenUseOn(ix, prev)
		t.SynergyIn = genPrev.Intersect(use).Words()
	}
	if next != nil && next.Func == f {
		_, useNext := dataflow.GenUseOn(ix, next)
		t.SynergyOut = gen.Intersect(useNext).Words()
	}
	// Step 5: each transferred word crosses the bus twice (producer
	// writes shared memory, consumer reads it back).
	perWord := lib.Bus.EReadWord + lib.Bus.EWriteWord
	t.Energy = units.Energy(float64(t.WordsIn+t.WordsOut)) * perWord
	return t
}

// siblings returns the previous and next sibling regions of c in its
// parent's child order (the c_{i-1}/c_{i+1} of Fig. 2b).
func siblings(c *cdfg.Region) (prev, next *cdfg.Region) {
	if c.Parent == nil {
		return nil, nil
	}
	kids := c.Parent.Children
	for i, k := range kids {
		if k == c {
			if i > 0 {
				prev = kids[i-1]
			}
			if i+1 < len(kids) {
				next = kids[i+1]
			}
			return prev, next
		}
	}
	return nil, nil
}
