package partition

import (
	"testing"

	"lppart/internal/explore"
)

// evalFields compares every observable field of two SetEvals exactly
// (float equality included: the delta path must be byte-identical, not
// approximately equal).
func evalFields(t *testing.T, tag string, full, delta *SetEval) {
	t.Helper()
	if (full.Err == nil) != (delta.Err == nil) {
		t.Fatalf("%s: Err mismatch: %v vs %v", tag, full.Err, delta.Err)
	}
	if full.Reason != delta.Reason {
		t.Errorf("%s: Reason %q vs %q", tag, full.Reason, delta.Reason)
	}
	if full.Binding != delta.Binding {
		t.Errorf("%s: Binding pointers differ (memo should be shared)", tag)
	}
	if full.UASIC != delta.UASIC || full.UMuP != delta.UMuP {
		t.Errorf("%s: U mismatch: (%v,%v) vs (%v,%v)", tag, full.UASIC, full.UMuP, delta.UASIC, delta.UMuP)
	}
	if full.EASIC != delta.EASIC || full.EMuPSaved != delta.EMuPSaved {
		t.Errorf("%s: energy mismatch: (%v,%v) vs (%v,%v)", tag, full.EASIC, full.EMuPSaved, delta.EASIC, delta.EMuPSaved)
	}
	if full.EstCycles != delta.EstCycles {
		t.Errorf("%s: EstCycles %d vs %d", tag, full.EstCycles, delta.EstCycles)
	}
	if full.GEQ != delta.GEQ {
		t.Errorf("%s: GEQ %d vs %d", tag, full.GEQ, delta.GEQ)
	}
	if full.OF != delta.OF {
		t.Errorf("%s: OF %v vs %v", tag, full.OF, delta.OF)
	}
	if full.Eligible != delta.Eligible {
		t.Errorf("%s: Eligible %v vs %v", tag, full.Eligible, delta.Eligible)
	}
}

// TestDeltaEvictionForcesFullReprice: when the schedule/binding memo
// evicts a pair, the delta evaluator's cached terms for that pair refer
// to the retired bindResult. Re-evaluating the pair must recompute the
// binding AND the terms from scratch (a clean full re-price), and the
// result must still match a full evaluation — never a stale splice.
func TestDeltaEvictionForcesFullReprice(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	e, err := NewEvaluator(ir, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A capacity-1 memo evicts pair A as soon as pair B is bound.
	e.memo = explore.NewMemo[PairKey, *bindResult](1)
	de := NewDeltaEvaluator(e)
	_, pool := e.Candidates(base)
	if len(pool) < 2 {
		t.Fatalf("need two candidates, have %d", len(pool))
	}
	a, b := pool[0], pool[1]

	evalA1, err := de.Eval(base, a, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if s := de.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("first eval: stats = %+v, want 1 miss", s)
	}
	// Same pair again, no eviction in between: pure price-tail splice.
	if _, err := de.Eval(base, a, 0, false, false); err != nil {
		t.Fatal(err)
	}
	if s := de.Stats(); s.Hits != 1 {
		t.Fatalf("re-eval without eviction: stats = %+v, want 1 hit", s)
	}

	// Bind pair B: capacity 1 evicts pair A from the memo.
	if _, err := de.Eval(base, b, 0, false, false); err != nil {
		t.Fatal(err)
	}
	if ms := e.memo.Stats(); ms.Evictions == 0 {
		t.Fatalf("expected an eviction, memo stats = %+v", ms)
	}

	// Pair A again: the memo recomputes the binding, so the cached terms
	// must be discarded (miss, not hit) and the result must equal both
	// the pre-eviction evaluation and a fresh full evaluation.
	before := de.Stats()
	evalA2, err := de.Eval(base, a, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	after := de.Stats()
	if after.Misses != before.Misses+1 || after.Hits != before.Hits {
		t.Errorf("post-eviction eval must be a clean re-price: stats %+v -> %+v", before, after)
	}
	full, err := e.Eval(base, a, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if evalA2.OF != evalA1.OF || evalA2.OF != full.OF ||
		evalA2.EstCycles != evalA1.EstCycles || evalA2.GEQ != evalA1.GEQ {
		t.Errorf("post-eviction re-price diverged: before=%v after=%v full=%v",
			evalA1.OF, evalA2.OF, full.OF)
	}
}

// TestDeltaEvalIntoZeroAlloc: the warm delta path (binding memoized,
// terms cached) must not heap allocate.
func TestDeltaEvalIntoZeroAlloc(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	e, err := NewEvaluator(ir, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	de := NewDeltaEvaluator(e)
	_, pool := e.Candidates(base)
	if len(pool) == 0 {
		t.Fatal("no candidates")
	}
	c := pool[0]
	var out SetEval
	if err := de.EvalInto(base, c, 0, false, false, &out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := de.EvalInto(base, c, 0, false, false, &out); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm EvalInto allocates %.1f objects per call, want 0", allocs)
	}
}

// TestPricedSpliceMatchesPathOrder: Add/Remove splicing must reproduce
// the exact floats of accumulating the same picks in path order from
// scratch, including after backtracking (Remove restores the parent
// snapshot bit-for-bit).
func TestPricedSpliceMatchesPathOrder(t *testing.T) {
	ir, prof, base := setup(t, hotLoopSrc)
	e, err := NewEvaluator(ir, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, pool := e.Candidates(base)
	if len(pool) < 2 {
		t.Fatalf("need two candidates, have %d", len(pool))
	}
	evs := make([]*SetEval, len(pool))
	for j, c := range pool {
		ev, err := e.Eval(base, c, 0, false, false)
		if err != nil {
			t.Fatal(err)
		}
		evs[j] = ev
	}
	// Reference: accumulate picks 0 then 1 functionally.
	ref := NewPriced(base)
	ref.Add(pool[0], evs[0])
	ref.Add(pool[1], evs[1])
	wantE, wantC, wantG := ref.Point()

	// Spliced: descend 0→1, back out twice, then rebuild the same path.
	pr := NewPriced(base)
	pr.Add(pool[0], evs[0])
	pr.Add(pool[1], evs[1])
	pr.Remove()
	pr.Remove()
	if pr.Depth() != 0 {
		t.Fatalf("depth after full unwind = %d", pr.Depth())
	}
	e0, c0, g0 := pr.Point()
	b0 := NewPriced(base)
	be, bc, bg := b0.Point()
	if e0 != be || c0 != bc || g0 != bg {
		t.Errorf("unwound point (%v,%d,%d) != baseline point (%v,%d,%d)", e0, c0, g0, be, bc, bg)
	}
	pr.Add(pool[0], evs[0])
	pr.Add(pool[1], evs[1])
	gotE, gotC, gotG := pr.Point()
	if gotE != wantE || gotC != wantC || gotG != wantG {
		t.Errorf("re-spliced point (%v,%d,%d) != path-order point (%v,%d,%d)",
			gotE, gotC, gotG, wantE, wantC, wantG)
	}
}
