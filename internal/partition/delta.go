package partition

import (
	"sync"
)

// deltaKey identifies one cached pairTerms decomposition: the (cluster,
// resource set) pair plus the Fig. 3 synergy flags it was derived with.
type deltaKey struct {
	region, set    int
	prevHW, nextHW bool
}

// cachedTerms couples a pairTerms decomposition with the identity of the
// memoized bindResult it was derived from. When the underlying
// schedule/binding memo evicts and recomputes a pair, the fresh
// *bindResult pointer no longer matches and the stale terms are discarded
// — an evicted parent always forces a clean full re-price, never a stale
// splice.
type cachedTerms struct {
	br *bindResult
	t  *pairTerms
}

// DeltaStats reports the DeltaEvaluator's term-cache effectiveness:
// Misses counts full termsOf decompositions, Hits counts evaluations that
// re-ran only the baseline-dependent price tail.
type DeltaStats struct {
	Hits   int64
	Misses int64
}

// DeltaEvaluator prices (cluster, resource set) pairs incrementally:
// given a priced configuration and a neighbor differing only in its
// baseline — one greedy round's shifted baseline, or one cache geometry's
// swept baseline — it re-runs only the baseline-dependent tail of the
// Fig. 1 arithmetic (pairTerms.price) and splices the result into the
// cached decomposition. The priced SetEval is byte-identical to a full
// evaluation: termsOf/price partition the original expression tree
// without reassociating any float operation.
//
// It is safe for concurrent use; terms derive from the wrapped
// Evaluator's schedule/binding memo and are invalidated whenever that
// memo recomputes a pair (see cachedTerms).
type DeltaEvaluator struct {
	e     *Evaluator
	mu    sync.Mutex
	terms map[deltaKey]*cachedTerms
	stats DeltaStats
}

// NewDeltaEvaluator wraps an Evaluator with a pair-terms cache.
func NewDeltaEvaluator(e *Evaluator) *DeltaEvaluator {
	return &DeltaEvaluator{e: e, terms: make(map[deltaKey]*cachedTerms)}
}

// Evaluator returns the wrapped Evaluator.
func (d *DeltaEvaluator) Evaluator() *Evaluator { return d.e }

// Stats returns a snapshot of the term-cache counters.
func (d *DeltaEvaluator) Stats() DeltaStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// EvalInto prices one (cluster, resource set, synergy) triple against a
// baseline, writing into out. The warm path — terms cached, binding
// memoized — performs no heap allocation. The returned error is a
// Config.Verify violation, never a property of the design point.
//
//lint:hotpath guarded by TestDeltaEvalIntoZeroAlloc
func (d *DeltaEvaluator) EvalInto(base *Baseline, c *Candidate, si int, prevHW, nextHW bool, out *SetEval) error {
	rs := &d.e.cfg.ResourceSets[si]
	key := PairKey{Region: c.Region.ID, Set: si}
	br, ok := d.e.memo.Get(key)
	if !ok {
		br = scheduleBind(d.e.prof, d.e.cfg, c, rs)
		d.e.memo.Add(key, br)
	}
	if br.verifyErr != nil {
		return br.verifyErr
	}
	dk := deltaKey{region: c.Region.ID, set: si, prevHW: prevHW, nextHW: nextHW}
	d.mu.Lock()
	ct := d.terms[dk]
	if ct == nil || ct.br != br || ct.t.micro != base.Micro {
		// First sighting, a memo eviction recomputed the binding, or the
		// baseline's µP model changed: decompose from scratch.
		ct = &cachedTerms{br: br, t: termsOf(base, d.e.cfg, c, rs, br, prevHW, nextHW)} //lint:alloc term-cache miss; the warm path reuses the cached entry
		d.terms[dk] = ct
		d.stats.Misses++
	} else {
		d.stats.Hits++
	}
	d.mu.Unlock()
	ct.t.price(base, d.e.cfg, rs, out)
	return nil
}

// Eval is EvalInto with a freshly allocated SetEval, mirroring
// Evaluator.Eval.
func (d *DeltaEvaluator) Eval(base *Baseline, c *Candidate, si int, prevHW, nextHW bool) (*SetEval, error) {
	out := &SetEval{}
	if err := d.EvalInto(base, c, si, prevHW, nextHW, out); err != nil {
		return nil, err
	}
	return out, nil
}

// pricedFrame is one snapshot of the Priced accumulators.
type pricedFrame struct {
	saved, easic  float64
	instrs, cycEx int64
	geq           int
}

// Priced is a priced configuration: a baseline plus an additive
// decomposition of the objective terms over a stack of chosen clusters.
// Add splices one cluster's terms in; Remove splices the last one out by
// restoring the exact prior accumulator snapshot, so a DFS whose
// parent→child edges are one-cluster deltas computes every
// configuration's floats by the same path-order expression tree as
// passing the accumulators down functionally — byte-identical objectives,
// O(1) per edge.
type Priced struct {
	// MuPE/RestE/IAcc/T0 mirror the baseline in float/scalar form.
	MuPE, RestE, IAcc float64
	T0                int64

	cur   pricedFrame
	stack []pricedFrame
}

// NewPriced roots a priced configuration at a baseline (the empty,
// all-software configuration).
func NewPriced(base *Baseline) *Priced {
	return &Priced{
		MuPE:  float64(base.MuPEnergy),
		RestE: float64(base.RestEnergy),
		IAcc:  float64(base.ICacheAccessEnergy),
		T0:    base.TotalCycles,
	}
}

// Add splices one accepted (cluster, evaluation) into the configuration.
//
//lint:hotpath O(1) splice inside the DSE inner loop
func (p *Priced) Add(c *Candidate, ev *SetEval) {
	p.stack = append(p.stack, p.cur)
	p.cur.saved += float64(ev.EMuPSaved)
	p.cur.easic += float64(ev.EASIC)
	p.cur.instrs += c.MuP.Instrs
	p.cur.cycEx += ev.EstCycles - p.T0
	p.cur.geq += ev.GEQ
}

// Remove splices the most recently added cluster back out, restoring the
// exact accumulator values of the parent configuration.
//
//lint:hotpath O(1) splice inside the DSE inner loop
func (p *Priced) Remove() {
	p.cur = p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
}

// Depth returns how many clusters are currently spliced in.
func (p *Priced) Depth() int { return len(p.stack) }

// Point clamps the accumulators into the configuration's objective
// triple (total energy, execution cycles, hardware effort) — the same
// clamped expression tree the DSE search records.
func (p *Priced) Point() (energy float64, cycles int64, geq int) {
	mu := p.MuPE - p.cur.saved
	if mu < 0 {
		mu = 0
	}
	rest := p.RestE - float64(p.cur.instrs)*p.IAcc
	if rest < 0 {
		rest = 0
	}
	c := p.T0 + p.cur.cycEx
	if c < 1 {
		c = 1
	}
	return mu + p.cur.easic + rest, c, p.cur.geq
}

// LowerBound under-approximates every objective reachable by extending
// the configuration with clusters whose remaining potential is (sufE,
// sufC, sufG): clamping only raises the real values, so a dominated
// bound proves the whole subtree dominated (admissible pruning).
func (p *Priced) LowerBound(sufE float64, sufC int64, sufG int) (energy float64, cycles int64, geq int) {
	elb := p.MuPE - p.cur.saved + p.cur.easic + p.RestE - float64(p.cur.instrs)*p.IAcc - sufE
	if elb < 0 {
		elb = 0
	}
	clb := p.T0 + p.cur.cycEx - sufC
	if clb < 1 {
		clb = 1
	}
	return elb, clb, p.cur.geq + sufG
}
