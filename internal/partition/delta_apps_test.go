package partition_test

import (
	"testing"

	"lppart/internal/apps"
	"lppart/internal/codegen"
	"lppart/internal/interp"
	"lppart/internal/iss"
	"lppart/internal/partition"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// TestDeltaMatchesFullAcrossApps differentially tests the delta
// evaluator against full evaluation on all six Table 1 applications:
// for every (cluster, resource set, synergy) triple and several shifted
// baselines, the spliced price must be byte-identical — exact float
// equality on every field — to evaluating from scratch.
func TestDeltaMatchesFullAcrossApps(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			ir, err := a.Build()
			if err != nil {
				t.Fatal(err)
			}
			profRes, err := interp.Run(ir, interp.Options{CollectProfile: true})
			if err != nil {
				t.Fatal(err)
			}
			mp, _, err := codegen.Compile(ir, codegen.Options{MemWords: 1 << 18, StackWords: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			lib := tech.Default()
			res, err := iss.Run(mp, iss.Options{})
			if err != nil {
				t.Fatal(err)
			}
			base := &partition.Baseline{
				TotalEnergy:        res.Energy * 2,
				MuPEnergy:          res.Energy,
				RestEnergy:         res.Energy,
				TotalCycles:        res.TotalCycles(),
				Regions:            res.Regions,
				Micro:              &lib.Micro,
				ICacheAccessEnergy: 2.5 * units.NanoJoule,
			}
			e, err := partition.NewEvaluator(ir, profRes.Prof, partition.Config{})
			if err != nil {
				t.Fatal(err)
			}
			de := partition.NewDeltaEvaluator(e)
			_, pool := e.Candidates(base)
			if len(pool) == 0 {
				t.Fatal("no pre-selected candidates")
			}

			// Neighbor baselines: the anchor, a greedy-round shift (µP
			// share reduced, cycles changed), and a cache-geometry swap
			// (rest/total energy and i-cache fetch energy changed).
			shift := *base
			shift.MuPEnergy = base.MuPEnergy * 3 / 4
			shift.TotalCycles = base.TotalCycles + base.TotalCycles/10
			geom := *base
			geom.RestEnergy = base.RestEnergy * 5 / 4
			geom.TotalEnergy = base.MuPEnergy + geom.RestEnergy
			geom.TotalCycles = base.TotalCycles - base.TotalCycles/20
			geom.ICacheAccessEnergy = base.ICacheAccessEnergy / 2
			bases := []*partition.Baseline{base, &shift, &geom}

			ns := len(e.Config().ResourceSets)
			for bi, b := range bases {
				for _, c := range pool {
					for si := 0; si < ns; si++ {
						for _, syn := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
							full, err := e.Eval(b, c, si, syn[0], syn[1])
							if err != nil {
								t.Fatal(err)
							}
							delta, err := de.Eval(b, c, si, syn[0], syn[1])
							if err != nil {
								t.Fatal(err)
							}
							if full.OF != delta.OF || full.EstCycles != delta.EstCycles ||
								full.EASIC != delta.EASIC || full.EMuPSaved != delta.EMuPSaved ||
								full.UASIC != delta.UASIC || full.UMuP != delta.UMuP ||
								full.GEQ != delta.GEQ || full.Eligible != delta.Eligible ||
								full.Reason != delta.Reason {
								t.Fatalf("base %d cluster %s set %d syn %v: delta diverges from full:\nfull  OF=%v cyc=%d EASIC=%v elig=%v %q\ndelta OF=%v cyc=%d EASIC=%v elig=%v %q",
									bi, c.Region.Label, si, syn,
									full.OF, full.EstCycles, full.EASIC, full.Eligible, full.Reason,
									delta.OF, delta.EstCycles, delta.EASIC, delta.Eligible, delta.Reason)
							}
						}
					}
				}
			}
			if s := de.Stats(); s.Hits == 0 {
				t.Errorf("delta evaluator never hit its term cache: %+v", s)
			}
		})
	}
}
