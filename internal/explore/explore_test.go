package explore

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 100, 1000} {
		out, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(items) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(out), len(items))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 4, 8} {
		_, err := Map(workers, items, func(i, v int) (int, error) {
			if v >= 3 {
				return 0, fmt.Errorf("fail %d", v)
			}
			return v, nil
		})
		if err == nil || err.Error() != "fail 3" {
			t.Errorf("workers=%d: err = %v, want fail 3 (lowest index)", workers, err)
		}
	}
}

func TestMapEvaluatesAllDespiteErrors(t *testing.T) {
	var calls atomic.Int64
	items := make([]int, 20)
	_, err := Map(4, items, func(i, _ int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, fmt.Errorf("early")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got != 20 {
		t.Errorf("evaluated %d items, want all 20", got)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, nil, func(i, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty map: out=%v err=%v", out, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	items := make([]int, 64)
	done := make(chan struct{}, len(items))
	_, err := Map(workers, items, func(i, _ int) (int, error) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		done <- struct{}{}
		active.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
	if len(done) != len(items) {
		t.Errorf("%d items ran, want %d", len(done), len(items))
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d, want >= 1", DefaultWorkers())
	}
}

func TestMapCtxCancelStopsScheduling(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		items := make([]int, 1000)
		out, err := MapCtx(ctx, workers, items, func(i, _ int) (int, error) {
			if started.Add(1) == int64(workers) {
				cancel() // cancel while the pool is mid-fan-out
			}
			return i, nil
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil {
			t.Errorf("workers=%d: cancelled fan-out returned results", workers)
		}
		if got := started.Load(); got >= int64(len(items)) {
			t.Errorf("workers=%d: all %d items ran despite cancellation", workers, got)
		}
	}
}

func TestMapCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	out, err := MapCtx(ctx, 4, make([]int, 50), func(i, _ int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if err != context.Canceled || out != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", out, err)
	}
	if calls.Load() != 0 {
		t.Errorf("%d items ran under a pre-cancelled context", calls.Load())
	}
}

func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	items := []int{3, 1, 4, 1, 5, 9, 2, 6}
	want, err := Map(4, items, func(i, v int) (int, error) { return v * 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	got, err := MapCtx(context.Background(), 4, items, func(i, v int) (int, error) { return v * 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MapCtx diverged from Map at %d: %d vs %d", i, got[i], want[i])
		}
	}
}
