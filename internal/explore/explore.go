// Package explore is the deterministic fan-out engine behind the
// design-space exploration surfaces: the partitioning inner loop's
// cluster × resource-set grid, the whole-application sweeps of cmd/report
// (Table 1, Figure 6, ablations), the trace-replay geometry sweep of
// cmd/cacheprof and the designer-interaction loops of
// examples/designspace.
//
// The engine makes one promise the callers all rely on: the result of a
// fan-out is a pure function of the inputs — identical at any worker
// count, including 1. It achieves that by construction rather than by
// coordination: every work item owns a pre-allocated result slot, items
// are handed out by an atomic cursor, and the caller only observes the
// slots after the pool has drained, in input order. Work functions must
// be independent (no shared mutable state); everything they need travels
// in through the item and out through the return value.
package explore

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the fan-out width used when a caller passes a
// non-positive worker count: one worker per available CPU. This is the
// one sanctioned host probe in the library (nondetsource pass): the
// engine's contract — and the determinism regression tests — guarantee
// the worker count cannot change any result.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) } //lint:nondet sizing only; results are worker-count-invariant

// Map evaluates fn over every item on a bounded worker pool and returns
// the results in input order. workers <= 0 selects DefaultWorkers();
// workers == 1 runs inline with no goroutines. fn receives the item's
// index alongside the item so it can label work without capturing state.
//
// Every item is evaluated even when some fail; the returned error is the
// lowest-index failure, so the (result, error) pair is deterministic at
// any worker count.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), workers, items, fn) //lint:ctx non-Ctx convenience wrapper
}

// MapCtx is Map with cancellation: every worker checks ctx before picking
// up its next item, so a cancelled (or deadline-expired) fan-out stops
// scheduling new work as soon as the in-flight items return. A cancelled
// call returns (nil, ctx.Err()) — cancellation wins over any item error,
// so the outcome stays deterministic: callers observe either the complete,
// worker-count-invariant Map result or the bare context error, never a
// partial mixture that depends on how far the pool had progressed.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	out := make([]R, n)
	errs := make([]error, n)
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range items {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out[i], errs[i] = fn(i, items[i])
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(cursor.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = fn(i, items[i])
				}
			}()
		}
		wg.Wait()
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
