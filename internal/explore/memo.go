package explore

import "sync"

// MemoStats is a point-in-time snapshot of a Memo's effectiveness. All
// counts are totals since construction. For a pure key→value function the
// totals are deterministic at any worker count: every logical lookup
// happens exactly once per visit regardless of which goroutine performs
// it, so Hits+Misses — and therefore the derived hit rate — cannot depend
// on scheduling.
type MemoStats struct {
	Hits      int64 // Get found the key
	Misses    int64 // Get did not find the key
	Adds      int64 // entries inserted (Add on a new key)
	Evictions int64 // entries dropped past the capacity bound
	Size      int   // entries currently held
}

// HitRate returns Hits/(Hits+Misses), 0 when nothing was looked up.
func (s MemoStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Memo is a concurrency-safe map with lookup and eviction accounting,
// shared by the exploration surfaces that reuse expensive sub-results
// across evaluations: the partitioner's (cluster, resource set)
// schedule/binding memo and the DSE explorer's cross-geometry reuse of
// the same pairs. A bounded memo evicts in insertion (FIFO) order, so as
// long as insertions happen in a deterministic order — e.g. in the merge
// phase after an explore.Map barrier — the retained set is deterministic
// too.
type Memo[K comparable, V any] struct {
	mu        sync.Mutex
	max       int // <= 0: unbounded
	m         map[K]V
	order     []K // insertion order, for FIFO eviction
	hits      int64
	misses    int64
	adds      int64
	evictions int64
}

// NewMemo returns a memo bounded to max entries; max <= 0 means
// unbounded.
func NewMemo[K comparable, V any](max int) *Memo[K, V] {
	return &Memo[K, V]{max: max, m: make(map[K]V)}
}

// Get returns the memoized value and whether it was present, counting the
// lookup as a hit or miss.
func (m *Memo[K, V]) Get(k K) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.m[k]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return v, ok
}

// Add inserts a value for a new key and evicts the oldest entries past
// the capacity bound. Adding an existing key replaces its value without
// touching the insertion order.
func (m *Memo[K, V]) Add(k K, v V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.m[k]; ok {
		m.m[k] = v
		return
	}
	m.m[k] = v
	m.order = append(m.order, k)
	m.adds++
	for m.max > 0 && len(m.m) > m.max {
		oldest := m.order[0]
		m.order = m.order[1:]
		delete(m.m, oldest)
		m.evictions++
	}
}

// Len returns the current entry count.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Stats returns a snapshot of the memo's counters.
func (m *Memo[K, V]) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Adds: m.adds,
		Evictions: m.evictions, Size: len(m.m)}
}
