package explore

import (
	"sync"
	"testing"
)

func TestMemoStats(t *testing.T) {
	m := NewMemo[int, string](0)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty memo returned a value")
	}
	m.Add(1, "one")
	if v, ok := m.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	m.Add(1, "uno") // replace, not a new insertion
	if v, _ := m.Get(1); v != "uno" {
		t.Fatalf("replaced value not visible: %q", v)
	}
	st := m.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Adds != 1 || st.Evictions != 0 || st.Size != 1 {
		t.Errorf("stats = %+v, want hits=2 misses=1 adds=1 evictions=0 size=1", st)
	}
	if got, want := st.HitRate(), 2.0/3.0; got != want {
		t.Errorf("hit rate = %v, want %v", got, want)
	}
}

func TestMemoFIFOEviction(t *testing.T) {
	m := NewMemo[int, int](2)
	m.Add(1, 10)
	m.Add(2, 20)
	m.Add(3, 30) // evicts 1 (oldest)
	if _, ok := m.Get(1); ok {
		t.Error("oldest entry survived past capacity")
	}
	if _, ok := m.Get(2); !ok {
		t.Error("entry 2 evicted out of FIFO order")
	}
	if _, ok := m.Get(3); !ok {
		t.Error("newest entry missing")
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Errorf("stats = %+v, want evictions=1 size=2", st)
	}
}

// Concurrent gets on a pre-populated memo must count deterministically:
// every lookup is a hit, so totals are a pure function of the workload.
func TestMemoConcurrentCounts(t *testing.T) {
	m := NewMemo[int, int](0)
	const keys, rounds = 8, 50
	for k := 0; k < keys; k++ {
		m.Add(k, k*k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < keys; k++ {
					if v, ok := m.Get(k); !ok || v != k*k {
						t.Errorf("Get(%d) = %d, %v", k, v, ok)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := m.Stats()
	if st.Hits != 4*rounds*keys || st.Misses != 0 {
		t.Errorf("stats = %+v, want hits=%d misses=0", st, 4*rounds*keys)
	}
}
