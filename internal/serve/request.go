package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"lppart/internal/apps"
	"lppart/internal/behav"
	"lppart/internal/cache"
	"lppart/internal/tech"
)

// ResourceSetSpec selects or defines one hardware budget (Fig. 1 line 7).
// With only Name set it selects the named set from
// tech.DefaultResourceSets(); with Max set it defines a custom set whose
// keys are the resource mnemonics (CMP, ALU, SHIFT, MUL, DIV).
type ResourceSetSpec struct {
	Name string         `json:"name"`
	Max  map[string]int `json:"max,omitempty"`
}

// PartitionRequest is the body of POST /v1/partition: the paper's Fig. 1
// input tuple. Exactly one of App (a built-in Table 1 application) or
// Source (behavioral DSL text) must be set; zero-valued knobs select the
// partitioner defaults (F=1, N_max^c=5, GEQ budget 16000, one core, the
// default resource sets).
type PartitionRequest struct {
	App          string            `json:"app,omitempty"`
	Source       string            `json:"source,omitempty"`
	F            float64           `json:"f,omitempty"`
	MaxClusters  int               `json:"max_clusters,omitempty"`
	GEQBudget    int               `json:"geq_budget,omitempty"`
	MaxCores     int               `json:"max_cores,omitempty"`
	ResourceSets []ResourceSetSpec `json:"resource_sets,omitempty"`
	// Verify runs the PR 3 pipeline-stage verifiers and the decision
	// audit server-side; the response reports Verified=true.
	Verify bool `json:"verify,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: one application plus a
// cache-geometry grid for the single-pass stack-distance profiler.
// Zero-valued grid fields select cmd/cacheprof's defaults.
type SweepRequest struct {
	App    string `json:"app,omitempty"`
	Source string `json:"source,omitempty"`
	// ISweep sweeps the instruction cache instead of the data cache.
	ISweep    bool  `json:"isweep,omitempty"`
	Sets      []int `json:"sets,omitempty"`
	Assoc     []int `json:"assoc,omitempty"`
	LineWords int   `json:"line_words,omitempty"`
}

// kindByName resolves a resource mnemonic; the array is small, so a
// linear scan beats maintaining a parallel map.
func kindByName(name string) (tech.ResourceKind, bool) {
	for k := tech.ResourceKind(0); k < tech.NumResourceKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// resolveResourceSets turns the request's specs into concrete sets. nil
// specs select the defaults.
func resolveResourceSets(specs []ResourceSetSpec) ([]tech.ResourceSet, error) {
	if len(specs) == 0 {
		return nil, nil // partition.Config defaults to tech.DefaultResourceSets()
	}
	defaults := tech.DefaultResourceSets()
	out := make([]tech.ResourceSet, 0, len(specs))
	for i, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("resource_sets[%d]: name is required", i)
		}
		if len(spec.Max) == 0 {
			found := false
			for _, d := range defaults {
				if d.Name == spec.Name {
					out = append(out, d)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("resource_sets[%d]: unknown built-in set %q", i, spec.Name)
			}
			continue
		}
		rs := tech.ResourceSet{Name: spec.Name}
		// Iterate kinds (not the request map) so validation order — and
		// therefore the reported error — is deterministic.
		assigned := 0
		for k := tech.ResourceKind(0); k < tech.NumResourceKinds; k++ {
			n, ok := spec.Max[k.String()]
			if !ok {
				continue
			}
			if n < 0 {
				return nil, fmt.Errorf("resource_sets[%d]: %s: negative budget %d", i, k, n)
			}
			rs.Max[k] = n
			assigned++
		}
		if assigned != len(spec.Max) {
			keys := make([]string, 0, len(spec.Max))
			for key := range spec.Max { //lint:ordered keys are sorted before the first one is reported
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				if _, ok := kindByName(key); !ok {
					return nil, fmt.Errorf("resource_sets[%d]: unknown resource kind %q (want CMP, ALU, SHIFT, MUL or DIV)", i, key)
				}
			}
		}
		out = append(out, rs)
	}
	return out, nil
}

// canonRS is a resolved resource set in canonical (array) form.
type canonRS struct {
	Name string                     `json:"name"`
	Max  [tech.NumResourceKinds]int `json:"max"`
}

// canonPartition is the fully-defaulted partition request the cache key
// is derived from: the complete Fig. 1 input tuple. Two requests that
// resolve to the same tuple — e.g. one relying on defaults and one
// spelling them out — share a cache entry, because the service's answer
// is a pure function of this struct.
type canonPartition struct {
	Kind        string    `json:"kind"` // "partition/v1"
	App         string    `json:"app"`
	SourceSHA   string    `json:"source_sha"` // sha256 of Source ("" for built-ins)
	F           float64   `json:"f"`
	MaxClusters int       `json:"max_clusters"`
	GEQBudget   int       `json:"geq_budget"`
	MaxCores    int       `json:"max_cores"`
	Sets        []canonRS `json:"sets"`
	Verify      bool      `json:"verify"`
}

// canonSweep is the fully-defaulted sweep request behind the sweep cache
// key.
type canonSweep struct {
	Kind      string `json:"kind"` // "sweep/v1"
	App       string `json:"app"`
	SourceSHA string `json:"source_sha"`
	ISweep    bool   `json:"isweep"`
	Sets      []int  `json:"sets"`
	Assoc     []int  `json:"assoc"`
	LineWords int    `json:"line_words"`
}

// hashCanon hashes the canonical form of a request. encoding/json
// marshals struct fields in declaration order with %g floats, so the
// bytes — and the key — are deterministic.
func hashCanon(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic("serve: canonical request not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// parseSource resolves the request's application: a built-in by name, or
// served DSL text hardened by behav.ParseLimited. The returned string is
// the SHA-256 of a custom source ("" for built-ins), for the cache key.
func parseSource(app, source string, maxSourceBytes int) (*behav.Program, string, *apiError) {
	switch {
	case app != "" && source != "":
		return nil, "", badRequest("app and source are mutually exclusive")
	case app != "":
		a, err := apps.ByName(app)
		if err != nil {
			return nil, "", badRequest(err.Error())
		}
		p, err := a.Parse()
		if err != nil {
			return nil, "", internalError(err)
		}
		return p, "", nil
	case source != "":
		p, err := behav.ParseLimited("request", source, maxSourceBytes)
		if err != nil {
			return nil, "", parseError(err)
		}
		sum := sha256.Sum256([]byte(source))
		return p, hex.EncodeToString(sum[:]), nil
	default:
		return nil, "", badRequest("need app or source")
	}
}

// canonicalize validates the partition request and returns its cache key
// plus the resolved inputs.
func (req *PartitionRequest) canonicalize(maxSourceBytes int) (*behav.Program, []tech.ResourceSet, string, *apiError) {
	prog, srcSHA, aerr := parseSource(req.App, req.Source, maxSourceBytes)
	if aerr != nil {
		return nil, nil, "", aerr
	}
	if req.F < 0 {
		return nil, nil, "", badRequest("f must be >= 0")
	}
	if req.MaxClusters < 0 || req.GEQBudget < 0 || req.MaxCores < 0 {
		return nil, nil, "", badRequest("max_clusters, geq_budget and max_cores must be >= 0")
	}
	sets, err := resolveResourceSets(req.ResourceSets)
	if err != nil {
		return nil, nil, "", badRequest(err.Error())
	}
	c := canonPartition{
		Kind:        "partition/v1",
		App:         req.App,
		SourceSHA:   srcSHA,
		F:           req.F,
		MaxClusters: req.MaxClusters,
		GEQBudget:   req.GEQBudget,
		MaxCores:    req.MaxCores,
		Verify:      req.Verify,
	}
	if c.F == 0 {
		c.F = 1.0
	}
	if c.MaxClusters == 0 {
		c.MaxClusters = 5
	}
	if c.GEQBudget == 0 {
		c.GEQBudget = 16000
	}
	if c.MaxCores == 0 {
		c.MaxCores = 1
	}
	canonSets := sets
	if canonSets == nil {
		canonSets = tech.DefaultResourceSets()
	}
	for _, rs := range canonSets {
		c.Sets = append(c.Sets, canonRS{Name: rs.Name, Max: rs.Max})
	}
	return prog, sets, hashCanon(c), nil
}

// canonicalize validates the sweep request and returns its cache key plus
// the resolved inputs: the parsed program and the geometry grid.
func (req *SweepRequest) canonicalize(maxSourceBytes int) (*behav.Program, [][2]cache.Config, string, *apiError) {
	prog, srcSHA, aerr := parseSource(req.App, req.Source, maxSourceBytes)
	if aerr != nil {
		return nil, nil, "", aerr
	}
	c := canonSweep{
		Kind:      "sweep/v1",
		App:       req.App,
		SourceSHA: srcSHA,
		ISweep:    req.ISweep,
		Sets:      req.Sets,
		Assoc:     req.Assoc,
		LineWords: req.LineWords,
	}
	if len(c.Sets) == 0 {
		c.Sets = []int{16, 32, 64, 128, 256, 512, 1024}
	}
	if len(c.Assoc) == 0 {
		c.Assoc = []int{1, 2}
	}
	if c.LineWords == 0 {
		c.LineWords = 4
	}
	if c.LineWords <= 0 || c.LineWords&(c.LineWords-1) != 0 {
		return nil, nil, "", badRequest(fmt.Sprintf("line_words: %d is not a positive power of two", c.LineWords))
	}
	var pairs [][2]cache.Config
	for _, s := range c.Sets {
		if s <= 0 || s&(s-1) != 0 {
			return nil, nil, "", badRequest(fmt.Sprintf("sets: %d is not a positive power of two", s))
		}
		for _, a := range c.Assoc {
			if a <= 0 || a > cache.MaxAssoc {
				return nil, nil, "", badRequest(fmt.Sprintf("assoc: %d out of range [1, %d]", a, cache.MaxAssoc))
			}
			swept := cache.Config{Sets: s, Assoc: a, LineWords: c.LineWords}
			icfg, dcfg := cache.DefaultICache(), cache.DefaultDCache()
			if c.ISweep {
				icfg = swept
			} else {
				swept.WriteBack = true
				dcfg = swept
			}
			if err := swept.Validate(); err != nil {
				return nil, nil, "", badRequest(fmt.Sprintf("geometry sets=%d assoc=%d line=%d: %v", s, a, c.LineWords, err))
			}
			pairs = append(pairs, [2]cache.Config{icfg, dcfg})
		}
	}
	return prog, pairs, hashCanon(c), nil
}
