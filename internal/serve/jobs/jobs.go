// Package jobs is the bounded in-memory job table behind the async
// exploration endpoint: POST /v1/explore enqueues work that outlives the
// HTTP request, GET polls it, DELETE cancels it. The table is
// deliberately clock-free — jobs are identified by a sequence number and
// evicted in creation order — so the package stays inside the repo's
// determinism gates (nondetsource): nothing in a job's observable state
// depends on wall time or scheduling, only on the order of store calls.
//
// Lifecycle: Queued → Running → Done | Failed. Cancellation marks the
// job Failed ("canceled") immediately and fires its CancelFunc; the
// computing goroutine's later Finish/Fail becomes a no-op — the first
// terminal state wins, so pollers never see a result flicker in after a
// cancel.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// State is a job's lifecycle phase.
type State int

// The lifecycle phases.
const (
	Queued State = iota
	Running
	Done
	Failed
)

// String names the state on the wire.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	default:
		return "failed"
	}
}

// terminal reports whether the state is final.
func (s State) terminal() bool { return s == Done || s == Failed }

// ErrFull is returned by Create when every table slot holds an
// unfinished job; callers translate it to 429.
var ErrFull = errors.New("jobs: table full of unfinished jobs")

// Snapshot is a job's observable state at one instant.
type Snapshot struct {
	ID    string
	Key   string // canonical request key the job deduplicates on
	State State
	// Done/Total are coarse progress counters (explored geometries).
	Done, Total int
	Error       string
	Result      []byte // prepared response body, set once with Finish
}

// job is the mutable record behind a Snapshot.
type job struct {
	snap   Snapshot
	cancel context.CancelFunc
}

// Store is a bounded job table. All methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	max   int
	seq   int64
	jobs  map[string]*job
	byKey map[string]string // canonical key → job ID (dedupe)
	order []string          // creation order, for finished-job eviction
	count [4]int            // per-state occupancy
}

// NewStore returns a table bounded to max jobs; max <= 0 means 64.
func NewStore(max int) *Store {
	if max <= 0 {
		max = 64
	}
	return &Store{max: max, jobs: make(map[string]*job), byKey: make(map[string]string)}
}

// Create returns the job for the canonical key, creating it when none
// exists. created reports whether the caller owns the computation (and
// must eventually call Finish or Fail); on dedupe the passed cancel is
// NOT retained and the existing job's snapshot is returned. A full table
// of unfinished jobs returns ErrFull.
func (s *Store) Create(key string, cancel context.CancelFunc) (Snapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.byKey[key]; ok {
		return s.jobs[id].snap, false, nil
	}
	if len(s.jobs) >= s.max && !s.evictFinishedLocked() {
		return Snapshot{}, false, ErrFull
	}
	s.seq++
	j := &job{snap: Snapshot{ID: fmt.Sprintf("j%06d", s.seq), Key: key, State: Queued}, cancel: cancel}
	s.jobs[j.snap.ID] = j
	s.byKey[key] = j.snap.ID
	s.order = append(s.order, j.snap.ID)
	s.count[Queued]++
	return j.snap, true, nil
}

// evictFinishedLocked removes the oldest terminal job, reporting whether
// a slot was freed.
func (s *Store) evictFinishedLocked() bool {
	for i, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue // already deleted; compacted below
		}
		if j.snap.State.terminal() {
			s.removeLocked(id)
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			return true
		}
	}
	return false
}

// removeLocked drops a job from the maps and state counts (not from
// order; callers own that slice's compaction).
func (s *Store) removeLocked(id string) {
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	delete(s.jobs, id)
	delete(s.byKey, j.snap.Key)
	s.count[j.snap.State]--
}

// Get returns a job's snapshot.
func (s *Store) Get(id string) (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snap, true
}

// Start moves a queued job to Running. It reports false when the job is
// gone or already terminal (e.g. canceled while queued) — the caller
// should abandon the computation.
func (s *Store) Start(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.snap.State != Queued {
		return false
	}
	s.setStateLocked(j, Running)
	return true
}

// Progress updates a running job's counters.
func (s *Store) Progress(id string, done, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && !j.snap.State.terminal() {
		j.snap.Done, j.snap.Total = done, total
	}
}

// Finish completes a job with its prepared result body. A job already
// terminal (canceled) keeps its first outcome.
func (s *Store) Finish(id string, result []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.snap.State.terminal() {
		return
	}
	j.snap.Result = result
	j.snap.Done = j.snap.Total
	s.setStateLocked(j, Done)
}

// Fail marks a job Failed with a reason, unless it is already terminal.
func (s *Store) Fail(id, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.snap.State.terminal() {
		return
	}
	j.snap.Error = reason
	s.setStateLocked(j, Failed)
}

// Cancel fails an unfinished job with "canceled" and fires its
// CancelFunc; a terminal job is returned unchanged.
func (s *Store) Cancel(id string) (Snapshot, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Snapshot{}, false
	}
	var cancel context.CancelFunc
	if !j.snap.State.terminal() {
		j.snap.Error = "canceled"
		s.setStateLocked(j, Failed)
		cancel = j.cancel
	}
	snap := j.snap
	s.mu.Unlock()
	if cancel != nil {
		cancel() // outside the lock; may synchronously wake the worker
	}
	return snap, true
}

// Delete cancels (if needed) and removes a job, returning its final
// snapshot. Later Gets of the ID report not-found; a later Create with
// the same key starts fresh.
func (s *Store) Delete(id string) (Snapshot, bool) {
	snap, ok := s.Cancel(id)
	if !ok {
		return Snapshot{}, false
	}
	s.mu.Lock()
	s.removeLocked(id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	return snap, true
}

// setStateLocked transitions a job's state, keeping the counts exact.
func (s *Store) setStateLocked(j *job, next State) {
	s.count[j.snap.State]--
	j.snap.State = next
	s.count[next]++
}

// All returns every job's snapshot in creation order — the ledger view
// behind GET /v1/jobs. Result bodies are omitted (they can be large;
// pollers fetch them by ID).
func (s *Store) All() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.jobs))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			snap := j.snap
			snap.Result = nil
			out = append(out, snap)
		}
	}
	return out
}

// Len returns the table occupancy.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Count returns how many jobs are in one state.
func (s *Store) Count(st State) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count[st]
}
