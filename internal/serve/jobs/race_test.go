package jobs

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentCancelFinishRace hammers the first-terminal-state-wins
// rule: for every job, a canceler and a finisher race, and whichever
// lands first must own the final snapshot — run under -race, this also
// proves the table's locking. This is the cluster's steal scenario in
// miniature: a stolen shard's duplicate run and the original owner both
// try to finish one ledger entry.
func TestConcurrentCancelFinishRace(t *testing.T) {
	s := NewStore(256)
	const n = 64
	ids := make([]string, n)
	for i := range ids {
		snap, created, err := s.Create(fmt.Sprintf("key-%d", i), func() {})
		if err != nil || !created {
			t.Fatalf("Create %d: created=%v err=%v", i, created, err)
		}
		ids[i] = snap.ID
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(2)
		go func(id string) {
			defer wg.Done()
			if s.Start(id) {
				s.Finish(id, []byte(`{"winner":"worker"}`))
			}
		}(id)
		go func(id string) {
			defer wg.Done()
			s.Cancel(id)
		}(id)
	}
	wg.Wait()
	for _, id := range ids {
		snap, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch snap.State {
		case Done:
			if string(snap.Result) != `{"winner":"worker"}` || snap.Error != "" {
				t.Errorf("job %s Done but result %q error %q", id, snap.Result, snap.Error)
			}
		case Failed:
			if snap.Error != "canceled" || snap.Result != nil {
				t.Errorf("job %s Failed but error %q result %q", id, snap.Error, snap.Result)
			}
		default:
			t.Errorf("job %s non-terminal state %s", id, snap.State)
		}
	}
	if got := s.Count(Done) + s.Count(Failed); got != n {
		t.Errorf("terminal count %d, want %d", got, n)
	}
}

// TestConcurrentDualFinishRace: two executors (owner and thief) both
// complete one job; exactly the first result sticks, byte for byte.
func TestConcurrentDualFinishRace(t *testing.T) {
	s := NewStore(256)
	const n = 64
	for i := 0; i < n; i++ {
		snap, _, err := s.Create(fmt.Sprintf("dual-%d", i), func() {})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Start(snap.ID) {
			t.Fatalf("Start %s", snap.ID)
		}
		var wg sync.WaitGroup
		for _, who := range []string{"owner", "thief"} {
			wg.Add(1)
			go func(who string) {
				defer wg.Done()
				s.Finish(snap.ID, []byte(who))
			}(who)
		}
		wg.Wait()
		got, ok := s.Get(snap.ID)
		if !ok || got.State != Done {
			t.Fatalf("job %s not done: %+v", snap.ID, got)
		}
		if r := string(got.Result); r != "owner" && r != "thief" {
			t.Fatalf("job %s result %q is neither completion", snap.ID, r)
		}
	}
}

// TestConcurrentProgressAndAll: All() snapshots stay consistent while
// workers mutate progress and states underneath it.
func TestConcurrentProgressAndAll(t *testing.T) {
	s := NewStore(64)
	const n = 32
	ids := make([]string, n)
	for i := range ids {
		snap, _, err := s.Create(fmt.Sprintf("p-%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
	}
	var workers sync.WaitGroup
	for _, id := range ids {
		workers.Add(1)
		go func(id string) {
			defer workers.Done()
			s.Start(id)
			for d := 0; d <= 8; d++ {
				s.Progress(id, d, 8)
			}
			s.Finish(id, []byte("done"))
		}(id)
	}
	for _, id := range ids[:n/2] {
		workers.Add(1)
		go func(id string) {
			defer workers.Done()
			s.Delete(id)
		}(id)
	}
	stop := make(chan struct{})
	go func() {
		workers.Wait()
		close(stop)
	}()
	for {
		for _, snap := range s.All() {
			if snap.Result != nil {
				t.Fatal("All leaked a result body")
			}
		}
		select {
		case <-stop:
			if got := len(s.All()); got > n {
				t.Errorf("All returned %d jobs, table max is %d", got, n)
			}
			return
		default:
		}
	}
}
