package jobs

import (
	"context"
	"errors"
	"testing"
)

func TestLifecycle(t *testing.T) {
	s := NewStore(4)
	snap, created, err := s.Create("k1", nil)
	if err != nil || !created {
		t.Fatalf("Create: created=%v err=%v", created, err)
	}
	if snap.ID != "j000001" || snap.State != Queued {
		t.Fatalf("fresh job: %+v", snap)
	}
	if !s.Start(snap.ID) {
		t.Fatal("Start refused a queued job")
	}
	s.Progress(snap.ID, 2, 4)
	got, ok := s.Get(snap.ID)
	if !ok || got.State != Running || got.Done != 2 || got.Total != 4 {
		t.Fatalf("running job: %+v", got)
	}
	s.Finish(snap.ID, []byte(`{"x":1}`))
	got, _ = s.Get(snap.ID)
	if got.State != Done || string(got.Result) != `{"x":1}` || got.Done != got.Total {
		t.Fatalf("finished job: %+v", got)
	}
	// Terminal state is sticky.
	s.Fail(snap.ID, "late failure")
	if got, _ = s.Get(snap.ID); got.State != Done || got.Error != "" {
		t.Fatalf("Fail overrode Done: %+v", got)
	}
}

func TestDedupeByKey(t *testing.T) {
	s := NewStore(4)
	a, created, _ := s.Create("k", nil)
	if !created {
		t.Fatal("first Create not created")
	}
	b, created, _ := s.Create("k", nil)
	if created || b.ID != a.ID {
		t.Fatalf("dedupe failed: created=%v id=%s want %s", created, b.ID, a.ID)
	}
	// After Delete, the key is free again.
	s.Delete(a.ID)
	c, created, _ := s.Create("k", nil)
	if !created || c.ID == a.ID {
		t.Fatalf("post-delete Create: created=%v id=%s", created, c.ID)
	}
}

func TestFullTableAndEviction(t *testing.T) {
	s := NewStore(2)
	a, _, _ := s.Create("a", nil)
	s.Create("b", nil)
	if _, _, err := s.Create("c", nil); !errors.Is(err, ErrFull) {
		t.Fatalf("full table: err=%v, want ErrFull", err)
	}
	// Finishing one job frees its slot for eviction.
	s.Start(a.ID)
	s.Finish(a.ID, nil)
	c, created, err := s.Create("c", nil)
	if err != nil || !created {
		t.Fatalf("Create after finish: created=%v err=%v", created, err)
	}
	if _, ok := s.Get(a.ID); ok {
		t.Error("finished job survived eviction")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	_ = c
}

func TestCancelFiresAndWins(t *testing.T) {
	s := NewStore(2)
	ctx, cancel := context.WithCancel(context.Background())
	snap, _, _ := s.Create("k", cancel)
	s.Start(snap.ID)
	got, ok := s.Cancel(snap.ID)
	if !ok || got.State != Failed || got.Error != "canceled" {
		t.Fatalf("canceled job: %+v", got)
	}
	if ctx.Err() == nil {
		t.Error("Cancel did not fire the CancelFunc")
	}
	// The worker's late Finish must not resurrect the job.
	s.Finish(snap.ID, []byte("late"))
	if got, _ = s.Get(snap.ID); got.State != Failed || got.Result != nil {
		t.Fatalf("Finish overrode cancel: %+v", got)
	}
	// Cancel of a terminal job is a no-op that still returns it.
	if got, ok = s.Cancel(snap.ID); !ok || got.State != Failed {
		t.Fatalf("re-cancel: ok=%v %+v", ok, got)
	}
}

func TestStartAfterCancel(t *testing.T) {
	s := NewStore(2)
	snap, _, _ := s.Create("k", func() {})
	s.Cancel(snap.ID)
	if s.Start(snap.ID) {
		t.Error("Start accepted a canceled job")
	}
}

func TestCounts(t *testing.T) {
	s := NewStore(8)
	a, _, _ := s.Create("a", nil)
	b, _, _ := s.Create("b", nil)
	s.Create("c", nil)
	s.Start(a.ID)
	s.Start(b.ID)
	s.Finish(b.ID, nil)
	if q, r, d := s.Count(Queued), s.Count(Running), s.Count(Done); q != 1 || r != 1 || d != 1 {
		t.Errorf("counts queued=%d running=%d done=%d, want 1/1/1", q, r, d)
	}
	s.Delete(b.ID)
	if d := s.Count(Done); d != 0 {
		t.Errorf("Done count after delete = %d", d)
	}
}
