// Package metrics is a dependency-free Prometheus-text-format metrics
// registry for the serving layer: counters (optionally labeled), sampled
// gauges and fixed-bucket histograms, rendered by WritePrometheus in the
// text exposition format (version 0.0.4) that Prometheus, VictoriaMetrics
// and friends scrape.
//
// The exposition is deterministic — families sorted by name, series
// sorted by label value — so scrapes diff cleanly and tests can assert
// on exact output. The instruments themselves are observability, not
// results: they are the one part of the serving stack that is allowed to
// vary run to run (request counts, latencies), which is why they live in
// their own package instead of inside serve's result-producing path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds the registered instruments of one process.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is every series sharing one metric name.
type family struct {
	name, help, typ string
	series          map[string]instrument // keyed by rendered label string
}

// instrument is anything that can expose itself as one or more
// `name{labels} value` lines.
type instrument interface {
	expose(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds one series, creating its family on first use. Registering
// the same (name, labels) twice returns the existing instrument so
// callers can look instruments up idempotently.
func (r *Registry) register(name, help, typ, labels string, mk func() instrument) instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]instrument)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	if in, ok := f.series[labels]; ok {
		return in
	}
	in := mk()
	f.series[labels] = in
	return in
}

// Labels renders label pairs ("k1", "v1", "k2", "v2", ...) in the given
// order as a Prometheus label block, e.g. `{endpoint="partition"}`.
// An odd pair count panics — it is a programming error, not input.
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("metrics: odd label pair count")
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", pairs[i], pairs[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter is a monotonically increasing integer series.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 panics: counters are monotone).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: negative counter increment")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter registers (or looks up) a counter series. labels is a rendered
// label block from Labels(), or "" for an unlabeled series.
func (r *Registry) Counter(name, help, labels string) *Counter {
	return r.register(name, help, "counter", labels, func() instrument { return &Counter{} }).(*Counter)
}

// gaugeFunc samples its value at scrape time.
type gaugeFunc struct {
	fn func() float64
}

func (g *gaugeFunc) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.fn()))
}

// GaugeFunc registers a gauge whose value is sampled from fn at every
// scrape — the natural shape for queue depth, in-flight workers and
// cache occupancy, which already live in the serving stack's atomics.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.register(name, help, "gauge", labels, func() instrument { return &gaugeFunc{fn: fn} })
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, strictly increasing; +Inf implicit
	counts []int64   // len(bounds)+1, last is the +Inf bucket
	sum    float64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Quantile returns an upper-bound estimate of quantile q (0..1): the
// smallest bucket bound at which the cumulative count reaches q·n.
// Samples beyond the last bound report +Inf; an empty histogram, 0.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

func (h *Histogram) expose(w io.Writer, name, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(inner, formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(inner, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.n)
}

func bucketLabels(inner, le string) string {
	if inner == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("{%s,le=%q}", inner, le)
}

// Histogram registers a histogram series with the given strictly
// increasing bucket upper bounds.
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not strictly increasing", name))
		}
	}
	return r.register(name, help, "histogram", labels, func() instrument {
		return &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
	}).(*Histogram)
}

// LatencyBuckets is a decade-spanning bucket ladder for request
// latencies in seconds: 100µs to ~100s in 1-2.5-5 steps.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
	}
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered family in the text exposition
// format, families sorted by name and series by label string.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families { //lint:ordered names are sorted before rendering
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		labels := make([]string, 0, len(f.series))
		for l := range f.series { //lint:ordered label strings are sorted before rendering
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			f.series[l].expose(w, f.name, l)
		}
	}
}
