package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndLabels(t *testing.T) {
	r := NewRegistry()
	hit := r.Counter("cache_ops_total", "cache operations", Labels("op", "hit"))
	miss := r.Counter("cache_ops_total", "cache operations", Labels("op", "miss"))
	hit.Add(3)
	miss.Inc()
	if r.Counter("cache_ops_total", "cache operations", Labels("op", "hit")) != hit {
		t.Fatal("re-registering the same series returned a new counter")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP cache_ops_total cache operations
# TYPE cache_ops_total counter
cache_ops_total{op="hit"} 3
cache_ops_total{op="miss"} 1
`
	if sb.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestExpositionDeterministicOrder(t *testing.T) {
	render := func() string {
		r := NewRegistry()
		// Register in one order...
		r.Counter("zzz_total", "z", "")
		r.GaugeFunc("aaa", "a", "", func() float64 { return 2.5 })
		r.Counter("mid_total", "m", Labels("b", "2"))
		r.Counter("mid_total", "m", Labels("b", "1"))
		var sb strings.Builder
		r.WritePrometheus(&sb)
		return sb.String()
	}
	a := render()
	for i := 0; i < 10; i++ {
		if b := render(); b != a {
			t.Fatalf("exposition order varies between runs:\n%s\nvs\n%s", a, b)
		}
	}
	if !strings.Contains(a, "aaa 2.5") {
		t.Errorf("gauge missing from exposition:\n%s", a)
	}
	if strings.Index(a, "aaa") > strings.Index(a, "zzz_total") {
		t.Errorf("families not sorted by name:\n%s", a)
	}
	if strings.Index(a, `mid_total{b="1"}`) > strings.Index(a, `mid_total{b="2"}`) {
		t.Errorf("series not sorted by labels:\n%s", a)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, line := range []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 102.6`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want bucket bound 1", got)
	}
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Errorf("p99 = %v, want +Inf (sample beyond last bound)", got)
	}
	if (&Histogram{bounds: []float64{1}, counts: make([]int64, 2)}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive in Prometheus semantics
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `h_bucket{le="1"} 1`) {
		t.Errorf("sample at bound not counted in its bucket:\n%s", sb.String())
	}
}

func TestConcurrentUseIsRaceFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops", "")
	h := r.Histogram("lat", "lat", "", LatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) / 1000)
				if i%100 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}
