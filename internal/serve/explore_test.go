package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// del issues a DELETE and returns status and body.
func del(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// decodeJob parses a JobBody response.
func decodeJob(t *testing.T, b []byte) *JobBody {
	t.Helper()
	var jb JobBody
	if err := json.Unmarshal(b, &jb); err != nil {
		t.Fatalf("bad job body %s: %v", b, err)
	}
	return &jb
}

// pollJob polls GET /v1/explore/{id} until the job is terminal.
func pollJob(t *testing.T, base, id string) *JobBody {
	return pollJobAt(t, base+"/v1/explore/", id)
}

// pollJobAt polls one job endpoint until the job is terminal.
func pollJobAt(t *testing.T, prefix, id string) *JobBody {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, b := get(t, prefix+id)
		if st != 200 {
			t.Fatalf("poll %s: status %d: %s", id, st, b)
		}
		jb := decodeJob(t, b)
		if jb.State == "done" || jb.State == "failed" {
			return jb
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, jb.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// exploreReq is a small two-geometry exploration, fast enough to run to
// completion inside the tests.
const exploreReq = `{"app":"engine","max_hw":1,"geometries":[{},{"dsets":32}]}`

// TestExploreJobLifecycle walks the async contract end to end: POST
// returns 202 with a pollable job, the job finishes with a frontier, an
// identical POST deduplicates onto the finished job, and DELETE removes
// it.
func TestExploreJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, b, _ := post(t, ts.URL+"/v1/explore", exploreReq)
	if st != http.StatusAccepted {
		t.Fatalf("POST /v1/explore: status %d: %s", st, b)
	}
	jb := decodeJob(t, b)
	if jb.JobID == "" || jb.State != "queued" || jb.Existing {
		t.Fatalf("accepted job: %+v", jb)
	}
	if jb.Poll != "/v1/explore/"+jb.JobID {
		t.Errorf("poll URL %q", jb.Poll)
	}

	done := pollJob(t, ts.URL, jb.JobID)
	if done.State != "done" {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.Total != 2 || done.Done != done.Total {
		t.Errorf("progress %d/%d, want 2/2", done.Done, done.Total)
	}
	var fb FrontierBody
	if err := json.Unmarshal(done.Frontier, &fb); err != nil {
		t.Fatalf("frontier body: %v", err)
	}
	if fb.App != "engine" || len(fb.Points) == 0 {
		t.Fatalf("frontier: app=%q points=%d", fb.App, len(fb.Points))
	}
	if fb.Stats.Geometries != 2 || fb.Stats.Configs == 0 {
		t.Errorf("stats: %+v", fb.Stats)
	}

	// An identical POST deduplicates onto the finished job and returns
	// its frontier immediately.
	st2, b2, _ := post(t, ts.URL+"/v1/explore", exploreReq)
	if st2 != http.StatusOK {
		t.Fatalf("dedupe POST: status %d: %s", st2, b2)
	}
	dup := decodeJob(t, b2)
	if !dup.Existing || dup.JobID != jb.JobID || dup.State != "done" {
		t.Fatalf("dedupe job: %+v", dup)
	}
	if !bytes.Equal(dup.Frontier, done.Frontier) {
		t.Error("deduplicated POST returned different frontier bytes")
	}

	// DELETE removes the job; a later GET 404s.
	st3, b3 := del(t, ts.URL+"/v1/explore/"+jb.JobID)
	if st3 != http.StatusOK {
		t.Fatalf("DELETE: status %d: %s", st3, b3)
	}
	if st4, _ := get(t, ts.URL+"/v1/explore/"+jb.JobID); st4 != http.StatusNotFound {
		t.Errorf("GET after DELETE: status %d, want 404", st4)
	}
}

// TestExploreDeterministicFrontier is the service-level determinism
// contract: two independent servers produce byte-identical frontier
// bodies for the same request.
func TestExploreDeterministicFrontier(t *testing.T) {
	var frontiers [2]json.RawMessage
	for i := range frontiers {
		_, ts := newTestServer(t, Config{Workers: 2})
		st, b, _ := post(t, ts.URL+"/v1/explore", exploreReq)
		if st != http.StatusAccepted {
			t.Fatalf("server %d: status %d: %s", i, st, b)
		}
		jb := pollJob(t, ts.URL, decodeJob(t, b).JobID)
		if jb.State != "done" {
			t.Fatalf("server %d: job %s: %s", i, jb.State, jb.Error)
		}
		frontiers[i] = jb.Frontier
	}
	if !bytes.Equal(frontiers[0], frontiers[1]) {
		t.Errorf("frontiers differ across servers:\n%s\nvs\n%s", frontiers[0], frontiers[1])
	}
}

// TestExploreCancelQueued holds the only worker slot so the job stays
// queued, then cancels it: the DELETE must win and the worker goroutine
// must abandon the computation.
func TestExploreCancelQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release()

	st, b, _ := post(t, ts.URL+"/v1/explore", exploreReq)
	if st != http.StatusAccepted {
		t.Fatalf("POST: status %d: %s", st, b)
	}
	id := decodeJob(t, b).JobID
	st2, b2 := del(t, ts.URL+"/v1/explore/"+id)
	if st2 != http.StatusOK {
		t.Fatalf("DELETE: status %d: %s", st2, b2)
	}
	jb := decodeJob(t, b2)
	if jb.State != "failed" || jb.Error != "canceled" {
		t.Fatalf("canceled job: %+v", jb)
	}
}

// TestExploreTableFull fills the one-slot job table with a job that
// cannot run (the worker slot is held) and checks the shed path.
func TestExploreTableFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, MaxJobs: 1})
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release()

	if st, b, _ := post(t, ts.URL+"/v1/explore", exploreReq); st != http.StatusAccepted {
		t.Fatalf("first POST: status %d: %s", st, b)
	}
	st, b, _ := post(t, ts.URL+"/v1/explore", `{"app":"3d"}`)
	if st != http.StatusTooManyRequests {
		t.Fatalf("POST into full table: status %d: %s", st, b)
	}
	if !strings.Contains(string(b), "job table full") {
		t.Errorf("shed body: %s", b)
	}
}

// TestExploreValidation exercises the synchronous 400 paths.
func TestExploreValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, body string
	}{
		{"no app", `{}`},
		{"unknown app", `{"app":"nope"}`},
		{"bad geometry", `{"app":"engine","geometries":[{"dsets":3}]}`},
		{"negative knob", `{"app":"engine","max_hw":-1}`},
		{"unknown field", `{"app":"engine","bogus":1}`},
	} {
		if st, b, _ := post(t, ts.URL+"/v1/explore", tc.body); st != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", tc.name, st, b)
		}
	}
	if st, _ := get(t, ts.URL+"/v1/explore/j999999"); st != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d", st)
	}
	if st, _ := del(t, ts.URL+"/v1/explore/j999999"); st != http.StatusNotFound {
		t.Errorf("DELETE unknown job: status %d", st)
	}
}

// TestVersionEndpoint checks /v1/version and its echo on /healthz.
func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st, b := get(t, ts.URL+"/v1/version")
	if st != 200 {
		t.Fatalf("/v1/version: status %d: %s", st, b)
	}
	var v VersionInfo
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("version body %s: %v", b, err)
	}
	if !strings.HasPrefix(v.GoVersion, "go") {
		t.Errorf("go_version = %q", v.GoVersion)
	}
	if v != Version() {
		t.Errorf("endpoint version %+v != Version() %+v", v, Version())
	}
	st2, hb := get(t, ts.URL+"/healthz")
	if st2 != 200 || !strings.HasPrefix(string(hb), "ok") {
		t.Errorf("/healthz: status %d body %q", st2, hb)
	}
}
