package serve

import (
	"bytes"
	"testing"

	"lppart/internal/memostore"
)

// TestStoreRestartReplay is the persistence contract for the service: a
// daemon started over the same store directory a previous daemon
// populated answers a previously-computed POST /v1/partition as a cache
// hit with a byte-identical body, without recomputing the evaluation.
func TestStoreRestartReplay(t *testing.T) {
	dir := t.TempDir()
	req := `{"app":"3d","max_cores":2}`

	st1, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Workers: 2, Store: st1})
	code1, b1, c1 := post(t, ts1.URL+"/v1/partition", req)
	if code1 != 200 {
		t.Fatalf("first daemon: status %d: %s", code1, b1)
	}
	if c1 != "miss" {
		t.Fatalf("first daemon: X-Cache %q, want miss", c1)
	}
	if s1.cacheMiss.Value() != 1 {
		t.Fatalf("first daemon misses = %d, want 1 (computed once)", s1.cacheMiss.Value())
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh process image — new Server, empty LRU — over
	// the same directory.
	st2, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	s2, ts2 := newTestServer(t, Config{Workers: 2, Store: st2})
	code2, b2, c2 := post(t, ts2.URL+"/v1/partition", req)
	if code2 != 200 {
		t.Fatalf("restarted daemon: status %d: %s", code2, b2)
	}
	if c2 != "hit" {
		t.Errorf("restarted daemon served X-Cache %q, want hit (store replay)", c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("restarted daemon's body differs from the original:\n%s\nvs\n%s", b1, b2)
	}
	if s2.cacheMiss.Value() != 0 {
		t.Errorf("restarted daemon recomputed (%d misses), want pure store replay", s2.cacheMiss.Value())
	}

	// The store hit warmed the LRU: a third request hits in memory.
	_, b3, c3 := post(t, ts2.URL+"/v1/partition", req)
	if c3 != "hit" || !bytes.Equal(b2, b3) {
		t.Errorf("post-replay request: X-Cache %q, bodies equal %v", c3, bytes.Equal(b2, b3))
	}
}

// TestStoreReadOnlyFleetNode: a node sharing the directory read-only
// replays stored results and still computes (without persisting) fresh
// ones — Put failures must never surface to the client.
func TestStoreReadOnlyFleetNode(t *testing.T) {
	dir := t.TempDir()
	seen := `{"app":"3d","max_cores":2}`
	unseen := `{"app":"engine"}`

	st, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Store: st})
	code, b1, _ := post(t, ts.URL+"/v1/partition", seen)
	if code != 200 {
		t.Fatalf("writer: status %d", code)
	}
	ts.Close()
	st.Close()

	ro, err := memostore.Open(dir, memostore.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ro.Close() })
	_, ts2 := newTestServer(t, Config{Workers: 2, Store: ro})
	code2, b2, c2 := post(t, ts2.URL+"/v1/partition", seen)
	if code2 != 200 || c2 != "hit" || !bytes.Equal(b1, b2) {
		t.Errorf("read-only replay: status %d X-Cache %q equal=%v", code2, c2, bytes.Equal(b1, b2))
	}
	code3, b3, c3 := post(t, ts2.URL+"/v1/partition", unseen)
	if code3 != 200 || c3 != "miss" {
		t.Errorf("read-only compute: status %d X-Cache %q: %s", code3, c3, b3)
	}
	if ro.Len() != 1 {
		t.Errorf("read-only store grew to %d entries", ro.Len())
	}
}
