package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"lppart/internal/behav"
	"lppart/internal/cache"
	"lppart/internal/cdfg"
	"lppart/internal/dse"
	"lppart/internal/serve/jobs"
	"lppart/internal/tech"
)

// GeometrySpec is one explored (i-cache, d-cache) pair in an
// ExploreRequest. Zero-valued fields inherit the corresponding default
// geometry field; data caches are always write-back.
type GeometrySpec struct {
	ISets      int `json:"isets,omitempty"`
	IAssoc     int `json:"iassoc,omitempty"`
	ILineWords int `json:"iline_words,omitempty"`
	DSets      int `json:"dsets,omitempty"`
	DAssoc     int `json:"dassoc,omitempty"`
	DLineWords int `json:"dline_words,omitempty"`
}

// ExploreRequest is the body of POST /v1/explore: the Fig. 1 input tuple
// plus the design-space axes (cluster-count bound, cache-geometry grid).
// The endpoint is asynchronous — the response carries a job ID to poll.
type ExploreRequest struct {
	App          string            `json:"app,omitempty"`
	Source       string            `json:"source,omitempty"`
	F            float64           `json:"f,omitempty"`
	MaxClusters  int               `json:"max_clusters,omitempty"`
	GEQBudget    int               `json:"geq_budget,omitempty"`
	ResourceSets []ResourceSetSpec `json:"resource_sets,omitempty"`
	// MaxHW bounds how many clusters one configuration may move to
	// hardware (0: the dse default).
	MaxHW      int            `json:"max_hw,omitempty"`
	Geometries []GeometrySpec `json:"geometries,omitempty"`
	Verify     bool           `json:"verify,omitempty"`
}

// canonExplore is the fully-defaulted explore request behind the job
// dedupe key; two requests resolving to the same tuple share one job.
type canonExplore struct {
	Kind        string    `json:"kind"` // "explore/v1"
	App         string    `json:"app"`
	SourceSHA   string    `json:"source_sha"`
	F           float64   `json:"f"`
	MaxClusters int       `json:"max_clusters"`
	GEQBudget   int       `json:"geq_budget"`
	MaxHW       int       `json:"max_hw"`
	Sets        []canonRS `json:"sets"`
	Geometries  [][6]int  `json:"geometries"`
	Verify      bool      `json:"verify"`
}

// resolveGeometries turns the request's specs into validated cache pairs.
// nil specs select the dse default grid.
func resolveGeometries(specs []GeometrySpec) ([][2]cache.Config, error) {
	if len(specs) == 0 {
		return dse.DefaultGeometries(), nil
	}
	out := make([][2]cache.Config, 0, len(specs))
	for i, spec := range specs {
		icfg, dcfg := cache.DefaultICache(), cache.DefaultDCache()
		if spec.ISets != 0 {
			icfg.Sets = spec.ISets
		}
		if spec.IAssoc != 0 {
			icfg.Assoc = spec.IAssoc
		}
		if spec.ILineWords != 0 {
			icfg.LineWords = spec.ILineWords
		}
		if spec.DSets != 0 {
			dcfg.Sets = spec.DSets
		}
		if spec.DAssoc != 0 {
			dcfg.Assoc = spec.DAssoc
		}
		if spec.DLineWords != 0 {
			dcfg.LineWords = spec.DLineWords
		}
		dcfg.WriteBack = true
		if err := icfg.Validate(); err != nil {
			return nil, fmt.Errorf("geometries[%d]: i-cache: %w", i, err)
		}
		if err := dcfg.Validate(); err != nil {
			return nil, fmt.Errorf("geometries[%d]: d-cache: %w", i, err)
		}
		out = append(out, [2]cache.Config{icfg, dcfg})
	}
	return out, nil
}

// canonicalize validates the explore request and returns the resolved
// inputs plus the job dedupe key. kind versions the key space: the
// explore and exact endpoints accept the same body but must never
// deduplicate onto each other's jobs.
func (req *ExploreRequest) canonicalize(kind string, maxSourceBytes int) (*exploreInputs, string, *apiError) {
	prog, srcSHA, aerr := parseSource(req.App, req.Source, maxSourceBytes)
	if aerr != nil {
		return nil, "", aerr
	}
	if req.F < 0 {
		return nil, "", badRequest("f must be >= 0")
	}
	if req.MaxClusters < 0 || req.GEQBudget < 0 || req.MaxHW < 0 {
		return nil, "", badRequest("max_clusters, geq_budget and max_hw must be >= 0")
	}
	sets, err := resolveResourceSets(req.ResourceSets)
	if err != nil {
		return nil, "", badRequest(err.Error())
	}
	geoms, err := resolveGeometries(req.Geometries)
	if err != nil {
		return nil, "", badRequest(err.Error())
	}
	c := canonExplore{
		Kind:        kind,
		App:         req.App,
		SourceSHA:   srcSHA,
		F:           req.F,
		MaxClusters: req.MaxClusters,
		GEQBudget:   req.GEQBudget,
		MaxHW:       req.MaxHW,
		Verify:      req.Verify,
	}
	if c.F == 0 {
		c.F = 1.0
	}
	if c.MaxClusters == 0 {
		c.MaxClusters = 5
	}
	if c.GEQBudget == 0 {
		c.GEQBudget = 16000
	}
	if c.MaxHW == 0 {
		c.MaxHW = 2
	}
	canonSets := sets
	if canonSets == nil {
		canonSets = tech.DefaultResourceSets()
	}
	for _, rs := range canonSets {
		c.Sets = append(c.Sets, canonRS{Name: rs.Name, Max: rs.Max})
	}
	for _, g := range geoms {
		c.Geometries = append(c.Geometries, [6]int{
			g[0].Sets, g[0].Assoc, g[0].LineWords,
			g[1].Sets, g[1].Assoc, g[1].LineWords,
		})
	}
	return &exploreInputs{prog: prog, sets: sets, geoms: geoms}, hashCanon(c), nil
}

// exploreInputs carries one explore job's resolved inputs from the
// handler to the worker goroutine.
type exploreInputs struct {
	prog  *behav.Program
	sets  []tech.ResourceSet
	geoms [][2]cache.Config
}

// FrontierBody is a finished exploration on the wire: the Pareto points
// plus the search's deterministic work counters.
type FrontierBody struct {
	App            string      `json:"app"`
	Points         []dse.Point `json:"points"`
	Stats          dse.Stats   `json:"stats"`
	Verified       bool        `json:"verified"`
	CacheSignature string      `json:"request_key"`
}

// JobBody is an async job's state on the wire: the POST, GET and
// DELETE responses of both job endpoints render it, so pollers parse
// one shape.
type JobBody struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
	// Done/Total count finished vs. scheduled geometries.
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Poll  string `json:"poll"`
	Error string `json:"error,omitempty"`
	// Existing marks a POST deduplicated onto an earlier identical job.
	Existing bool `json:"existing,omitempty"`
	// Frontier is a finished exploration (a FrontierBody), present once
	// an explore job's State is "done".
	Frontier json.RawMessage `json:"frontier,omitempty"`
	// Exact is a finished exact solve (an ExactBody), present once an
	// exact job's State is "done".
	Exact json.RawMessage `json:"exact,omitempty"`
	// Cluster is a finished cluster exploration (a ClusterBody), present
	// once a cluster job's State is "done".
	Cluster json.RawMessage `json:"cluster,omitempty"`
}

// jobBody renders one snapshot for the named job endpoint ("explore"
// or "exact"), which picks the poll path and the result field.
func jobBody(endpoint string, snap jobs.Snapshot, existing bool) *JobBody {
	b := &JobBody{
		JobID:    snap.ID,
		State:    snap.State.String(),
		Done:     snap.Done,
		Total:    snap.Total,
		Poll:     "/v1/" + endpoint + "/" + snap.ID,
		Error:    snap.Error,
		Existing: existing,
	}
	switch endpoint {
	case "exact":
		b.Exact = snap.Result
	case "cluster":
		b.Cluster = snap.Result
	default:
		b.Frontier = snap.Result
	}
	return b
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	var req ExploreRequest
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("explore", "bad_request", start)
		return
	}
	in, key, aerr := req.canonicalize("explore/v1", s.cfg.MaxSourceBytes)
	if aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("explore", "bad_request", start)
		return
	}
	// The job is server-owned from birth: bounded by the configured
	// timeout, cancelled by Abort or DELETE, independent of this request.
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Timeout)
	snap, created, err := s.jobs.Create(key, cancel)
	if err != nil {
		cancel()
		res := errResult(&apiError{Status: http.StatusTooManyRequests, Err: "job table full"})
		writeResult(w, res)
		s.observe("explore", "shed_queue", start)
		return
	}
	if !created {
		cancel()
		res := &flightResult{status: http.StatusOK, body: jsonBody(jobBody("explore", snap, true))}
		writeResult(w, res)
		s.observe("explore", "ok", start)
		return
	}
	go s.runExplore(ctx, cancel, snap.ID, &req, in, key)
	res := &flightResult{status: http.StatusAccepted, body: jsonBody(jobBody("explore", snap, false))}
	writeResult(w, res)
	s.observe("explore", "ok", start)
}

// runExplore is the job's worker goroutine: it queues for an admission
// slot like every synchronous evaluation, then runs the exploration
// serially inside that one slot (request-level parallelism belongs to
// the worker pool, not to the inside of one slot).
func (s *Server) runExplore(ctx context.Context, cancel context.CancelFunc, id string,
	req *ExploreRequest, in *exploreInputs, key string) {
	defer cancel()
	if aerr := s.adm.acquire(ctx); aerr != nil {
		switch aerr {
		case errQueueFull:
			s.jobs.Fail(id, "queue full")
		case errDraining:
			s.jobs.Fail(id, "draining")
		default:
			s.jobs.Fail(id, "deadline exceeded while queued")
		}
		return
	}
	defer s.adm.release()
	if !s.jobs.Start(id) {
		return // canceled while queued
	}
	ir, err := cdfg.Build(in.prog)
	if err != nil {
		s.jobs.Fail(id, err.Error())
		return
	}
	cfg := dse.Config{
		Geometries: in.geoms,
		MaxHW:      req.MaxHW,
		Workers:    1,
		OnProgress: func(done, total int) { s.jobs.Progress(id, done, total) },
	}
	cfg.Sys.MaxInstrs = s.cfg.MaxInstrs
	cfg.Sys.Part.F = req.F
	cfg.Sys.Part.MaxClusters = req.MaxClusters
	cfg.Sys.Part.GEQBudget = req.GEQBudget
	cfg.Sys.Part.ResourceSets = in.sets
	cfg.Sys.Part.Verify = req.Verify
	f, err := dse.Explore(ctx, ir, cfg)
	if err != nil {
		if ctx.Err() != nil {
			s.jobs.Fail(id, "exploration deadline exceeded")
			return
		}
		s.jobs.Fail(id, err.Error())
		return
	}
	body, merr := json.Marshal(&FrontierBody{
		App:            f.App,
		Points:         f.Points,
		Stats:          f.Stats,
		Verified:       req.Verify,
		CacheSignature: key,
	})
	if merr != nil {
		s.jobs.Fail(id, "frontier not marshalable: "+merr.Error())
		return
	}
	s.jobs.Finish(id, body)
}

func (s *Server) handleExploreGet(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		res := errResult(&apiError{Status: http.StatusNotFound, Err: "unknown job"})
		writeResult(w, res)
		s.observe("explore", outcomeOf(res), start)
		return
	}
	res := &flightResult{status: http.StatusOK, body: jsonBody(jobBody("explore", snap, false))}
	writeResult(w, res)
	s.observe("explore", "ok", start)
}

func (s *Server) handleExploreDelete(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	snap, ok := s.jobs.Delete(r.PathValue("id"))
	if !ok {
		res := errResult(&apiError{Status: http.StatusNotFound, Err: "unknown job"})
		writeResult(w, res)
		s.observe("explore", outcomeOf(res), start)
		return
	}
	res := &flightResult{status: http.StatusOK, body: jsonBody(jobBody("explore", snap, false))}
	writeResult(w, res)
	s.observe("explore", "ok", start)
}
