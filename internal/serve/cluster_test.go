package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// swapHandler lets a test start listeners before the servers that need
// the full peer URL list exist.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// newTestCluster boots n lppartd nodes that know each other's URLs.
// Node 0 is the coordinator.
func newTestCluster(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	swaps := make([]*swapHandler, n)
	peers := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		peers[i] = ts.URL
	}
	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = New(Config{
			Workers: 2, Peers: peers, Self: peers[i], Coordinator: i == 0,
		})
		swaps[i].set(servers[i].Handler())
	}
	return servers, peers
}

// clusterReq is a small exploration, fast enough for a full cluster
// round trip in tests.
const clusterReq = `{"app":"engine","max_hw":1,"geometries":[{},{"dsets":32}],"report":true}`

// startClusterJob POSTs /v1/cluster and returns the finished body.
func startClusterJob(t *testing.T, base, req string) *ClusterBody {
	t.Helper()
	st, b, _ := post(t, base+"/v1/cluster", req)
	if st != http.StatusAccepted && st != http.StatusOK {
		t.Fatalf("POST /v1/cluster: status %d: %s", st, b)
	}
	jb := decodeJob(t, b)
	jb = pollJobAt(t, base+"/v1/cluster/", jb.JobID)
	if jb.State != "done" {
		t.Fatalf("cluster job failed: %s", jb.Error)
	}
	var cb ClusterBody
	if err := json.Unmarshal(jb.Cluster, &cb); err != nil {
		t.Fatalf("bad cluster body %s: %v", jb.Cluster, err)
	}
	return &cb
}

// TestClusterJobMatchesStandalone is the subsystem's serving contract:
// a 3-node cluster's merged points are byte-identical to the standalone
// coordinator-only run, and the shard plan is identical too (the shard
// width must not depend on the peer count).
func TestClusterJobMatchesStandalone(t *testing.T) {
	_, solo := newTestServer(t, Config{Workers: 2})
	soloBody := startClusterJob(t, solo.URL, clusterReq)
	if len(soloBody.Points) == 0 {
		t.Fatal("standalone cluster run produced no points")
	}

	servers, peers := newTestCluster(t, 3)
	fleetBody := startClusterJob(t, peers[0], clusterReq)

	soloPts, _ := json.Marshal(soloBody.Points)
	fleetPts, _ := json.Marshal(fleetBody.Points)
	if !bytes.Equal(soloPts, fleetPts) {
		t.Fatalf("3-node points differ from standalone:\n%s\nvs\n%s", fleetPts, soloPts)
	}
	if soloBody.Shards != fleetBody.Shards {
		t.Errorf("shard plan depends on peer count: %d vs %d", soloBody.Shards, fleetBody.Shards)
	}
	if fleetBody.Report == nil {
		t.Fatal("report=true returned no report")
	}
	total := 0
	for _, ps := range fleetBody.Report.PeerShards {
		total += ps.Shards
	}
	if total != fleetBody.Shards {
		t.Errorf("accepted %d of %d shards", total, fleetBody.Shards)
	}

	// The non-coordinator nodes refuse to coordinate but served shards.
	st, b, _ := post(t, peers[1]+"/v1/cluster", clusterReq)
	if st != http.StatusForbidden {
		t.Errorf("worker node accepted /v1/cluster: status %d: %s", st, b)
	}

	// The coordinator's ledger is visible from a worker node, annotated
	// with the owning peer.
	st, b = get(t, peers[1]+"/v1/jobs")
	if st != 200 {
		t.Fatalf("GET /v1/jobs: status %d", st)
	}
	var jr JobsResponse
	if err := json.Unmarshal(b, &jr); err != nil {
		t.Fatalf("bad jobs body %s: %v", b, err)
	}
	foundRemote := false
	for _, j := range jr.Jobs {
		if j.Node == peers[0] && j.State == "done" {
			foundRemote = true
		}
	}
	if !foundRemote {
		t.Errorf("worker's /v1/jobs does not show the coordinator's job: %s", b)
	}

	// Cluster metrics on the coordinator: peers up, shards attributed,
	// broadcasts counted (sharing is on by default).
	var mb strings.Builder
	servers[0].Metrics().WritePrometheus(&mb)
	out := mb.String()
	for _, want := range []string{
		`lppartd_peers{state="up"} 3`,
		`lppartd_peers{state="down"} 0`,
		`lppartd_cluster_steals_total`,
		`lppartd_cluster_duplicates_total`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(out, "lppartd_cluster_bound_broadcasts_total 0\n") {
		t.Error("sharing run recorded no bound broadcasts")
	}
	shardSum := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "lppartd_cluster_shards_total{") {
			var n int
			if _, err := fmtSscanf(line, &n); err == nil {
				shardSum += n
			}
		}
	}
	if shardSum != fleetBody.Shards {
		t.Errorf("per-peer shard counters sum to %d, want %d\n%s", shardSum, fleetBody.Shards, out)
	}
}

// fmtSscanf pulls the trailing integer off a metric line.
func fmtSscanf(line string, n *int) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0, errNoValue
	}
	v := 0
	for _, c := range line[i+1:] {
		if c < '0' || c > '9' {
			return 0, errNoValue
		}
		v = v*10 + int(c-'0')
	}
	*n = v
	return 1, nil
}

var errNoValue = &apiError{Status: 0, Err: "no value"}

// TestShardEndpoint exercises the worker role directly: a shard request
// over the wire returns the same points as the in-process run.
func TestShardEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"task":{"app":"engine","max_hw":1,"geometries":[[64,1,4,64,1,4]]},` +
		`"shard":{"index":0,"geom":0,"roots":[0]}}`
	st, b, _ := post(t, ts.URL+"/v1/shard", req)
	if st != 200 {
		t.Fatalf("POST /v1/shard: status %d: %s", st, b)
	}
	var res struct {
		Index   int             `json:"index"`
		Geom    int             `json:"geom"`
		Points  json.RawMessage `json:"points"`
		Configs int64           `json:"configs"`
	}
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("bad shard body %s: %v", b, err)
	}
	if res.Index != 0 || res.Geom != 0 || res.Configs == 0 {
		t.Errorf("shard result %s", b)
	}
	// Same shard again: byte-identical (uncached recompute, same floats).
	st2, b2, _ := post(t, ts.URL+"/v1/shard", req)
	if st2 != 200 || !bytes.Equal(b, b2) {
		t.Errorf("shard recompute differs: %s vs %s", b, b2)
	}

	st, b, _ = post(t, ts.URL+"/v1/shard", `{"task":{"app":"nope"},"shard":{"index":0,"geom":0}}`)
	if st != http.StatusUnprocessableEntity {
		t.Errorf("unknown app: status %d: %s", st, b)
	}
}

// TestBatchEndpoint: one call, many partitions, per-item statuses, and
// the items land in the same cache as /v1/partition.
func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, b, _ := post(t, ts.URL+"/v1/batch",
		`{"requests":[{"app":"engine"},{"app":"nope"},{"app":"engine"}]}`)
	if st != 200 {
		t.Fatalf("POST /v1/batch: status %d: %s", st, b)
	}
	var resp BatchResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatalf("bad batch body %s: %v", b, err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Status != 200 || resp.Results[2].Status != 200 {
		t.Errorf("good items: status %d, %d", resp.Results[0].Status, resp.Results[2].Status)
	}
	if resp.Results[1].Status != http.StatusBadRequest {
		t.Errorf("bad item: status %d", resp.Results[1].Status)
	}
	if !bytes.Equal(resp.Results[0].Body, resp.Results[2].Body) {
		t.Error("identical batch items returned different bodies")
	}

	// The batch warmed the shared cache: a direct /v1/partition hit.
	st, _, cacheHdr := post(t, ts.URL+"/v1/partition", `{"app":"engine"}`)
	if st != 200 || cacheHdr != "hit" {
		t.Errorf("partition after batch: status %d, X-Cache %q, want 200/hit", st, cacheHdr)
	}

	if st, b, _ := post(t, ts.URL+"/v1/batch", `{"requests":[]}`); st != http.StatusBadRequest {
		t.Errorf("empty batch: status %d: %s", st, b)
	}
}

// TestPartitionRouting: in a 2-node cluster, both nodes agree on the
// key's owner, the owner computes once, and every later request — to
// either node — is a cache hit served from the owner's tiers.
func TestPartitionRouting(t *testing.T) {
	_, peers := newTestCluster(t, 2)
	req := `{"app":"engine"}`

	st1, b1, _ := post(t, peers[0]+"/v1/partition", req)
	st2, b2, c2 := post(t, peers[1]+"/v1/partition", req)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("status %d/%d: %s", st1, st2, b1)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("routed responses differ between nodes")
	}
	if c2 != "hit" {
		t.Errorf("second request (other node) X-Cache %q, want hit (shared owner cache)", c2)
	}
}
