package serve

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"
)

// VersionInfo identifies the running build: the Go toolchain, the main
// module, and — when the binary was built from a checkout — the VCS
// revision stamped by the toolchain. All fields come from the binary's
// embedded build info, never from the environment, so the answer is a
// constant per binary.
type VersionInfo struct {
	GoVersion     string `json:"go_version"`
	Module        string `json:"module,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	Revision      string `json:"vcs_revision,omitempty"`
	Time          string `json:"vcs_time,omitempty"`
	Modified      bool   `json:"vcs_modified,omitempty"`
}

// Version reads the binary's build identity via runtime/debug.
func Version() VersionInfo {
	v := VersionInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Path
	v.ModuleVersion = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.Time = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
}

// shortRevision abbreviates a full VCS SHA for the health line.
func shortRevision(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// healthLine is the /healthz body: liveness plus just enough identity to
// tell which build answered.
func healthLine() string {
	v := Version()
	line := "ok " + v.Module
	if v.ModuleVersion != "" {
		line += "@" + v.ModuleVersion
	}
	if v.Revision != "" {
		line += " " + shortRevision(v.Revision)
	}
	return line
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	writeResult(w, &flightResult{status: http.StatusOK, body: jsonBody(Version())})
	s.observe("version", "ok", start)
}
