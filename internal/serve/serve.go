// Package serve is the partitioning-as-a-service layer: an HTTP/JSON API
// over the repo's design flow. The paper's Fig. 1 loop is a pure
// function from (application, F, N_max^c, GEQ budget, core count,
// resource sets) to a partitioning decision, which makes it an ideal
// cacheable service: every response body is a deterministic function of
// the request, so identical requests produce byte-identical bodies
// whether computed fresh, coalesced onto an in-flight computation, or
// replayed from the LRU result cache.
//
// The stack, front to back:
//
//	handler → canonical request hash → LRU result cache
//	        → singleflight (one computation per identical in-flight key)
//	        → admission control (bounded worker pool + bounded queue,
//	          429/503 shedding) → system.EvaluateCtx / trace sweep
//
// Endpoints: POST /v1/partition (full decision trail + Table 1 row,
// optional server-side verification), POST /v1/sweep (cache-geometry
// sweep via the single-pass stack-distance profiler), the async job
// pair POST /v1/explore (branch-and-bound Pareto frontier) and POST
// /v1/exact (certified exact optimum per geometry via the milp
// oracle, certificates replayed server-side before the job finishes),
// GET /v1/apps (the built-in Table 1 applications), plus /healthz,
// /readyz and a Prometheus-text /metrics.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"lppart/internal/apps"
	"lppart/internal/behav"
	"lppart/internal/cache"
	"lppart/internal/cdfg"
	"lppart/internal/cluster"
	"lppart/internal/memostore"
	"lppart/internal/serve/jobs"
	"lppart/internal/serve/metrics"
	"lppart/internal/system"
	"lppart/internal/tech"
)

// Config sizes one server.
type Config struct {
	// Workers bounds concurrent evaluations (default 4).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker before new arrivals are shed with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 1024).
	CacheEntries int
	// Timeout is the per-request evaluation deadline (default 30s),
	// propagated into the design flow via context.
	Timeout time.Duration
	// MaxSourceBytes caps served behavioral sources (default
	// behav.DefaultMaxSourceBytes).
	MaxSourceBytes int
	// MaxInstrs bounds the ISS/interpreter runs of served evaluations,
	// so an adversarial source cannot pin a worker for the full default
	// simulation budget (default 50M).
	MaxInstrs int64
	// MaxJobs bounds the async exploration job table; once every slot
	// holds an unfinished job, new POST /v1/explore requests are shed
	// with 429 (default 64).
	MaxJobs int
	// Self is this node's own base URL as it appears in Peers
	// ("http://127.0.0.1:8095"). Shards and forwarded requests that the
	// consistent-hash ring assigns to Self are computed locally instead
	// of proxied back to this node's own listener.
	Self string
	// Peers are the cluster's node base URLs, including Self. Empty
	// means standalone: no request routing, and cluster explorations
	// run coordinator-only with a single local executor.
	Peers []string
	// Coordinator enables POST /v1/cluster on this node. Standalone
	// nodes are always coordinators (of their one-node cluster); in a
	// fleet, pointing every client at one coordinator keeps the job
	// ledger and the prep cache hot in one place, so worker-only nodes
	// answer 403 on /v1/cluster while still serving /v1/shard.
	Coordinator bool
	// Store, when non-nil, persistently backs the result cache:
	// successful (200) bodies are written through to the
	// content-addressed store and replayed verbatim on a hit, so a
	// restarted daemon — or a fleet node sharing the directory read-only
	// — answers previously-computed requests byte-identically without
	// recomputing them. Non-200 outcomes are never persisted, mirroring
	// the in-memory cache's rule.
	Store *memostore.Store
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = behav.DefaultMaxSourceBytes
	}
	if c.MaxInstrs <= 0 {
		c.MaxInstrs = 50_000_000
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if len(c.Peers) == 0 {
		c.Coordinator = true
	}
}

// maxBodyBytes caps request bodies; a request is at most a source plus
// small knobs, so cap at the source cap plus slack.
const bodySlackBytes = 64 << 10

// Server is one lppartd instance.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	adm     *admission
	cache   *lruCache
	flights *flightGroup
	jobs    *jobs.Store
	reg     *metrics.Registry

	// Cluster state: the consistent-hash ring over cfg.Peers (nil when
	// standalone), the shared prep cache behind /v1/shard and
	// /v1/cluster, and the passively-tracked peer health.
	ring  *cluster.Ring
	preps *cluster.PrepCache

	peerMu   sync.Mutex
	peerDown map[string]bool

	// baseCtx parents every computation; abort cancels it.
	baseCtx context.Context
	abort   context.CancelFunc

	// Instruments.
	latency   map[string]*metrics.Histogram
	outcomes  map[[2]string]*metrics.Counter
	cacheHit  *metrics.Counter
	cacheMiss *metrics.Counter
	cacheEvic *metrics.Counter

	// Cluster instruments (satellite of the distributed-exploration
	// subsystem): accepted shard results by executing peer, plus the
	// coordinator's steal / duplicate / bound-broadcast tallies.
	shardsByPeer map[string]*metrics.Counter
	steals       *metrics.Counter
	duplicates   *metrics.Counter
	broadcasts   *metrics.Counter
}

// endpoints and outcomes instrumented up front, so the /metrics
// exposition is complete (all-zero) from the first scrape.
var endpointNames = []string{
	"partition", "sweep", "explore", "exact", "apps", "version",
	"shard", "batch", "cluster", "jobs",
}

var outcomeNames = []string{
	"ok", "cache_hit", "shed_queue", "shed_drain", "deadline",
	"bad_request", "error",
}

// New returns a ready-to-serve server.
func New(cfg Config) *Server {
	cfg.defaults()
	ctx, cancel := context.WithCancel(context.Background()) //lint:ctx server-lifetime root, cancelled by Shutdown/Abort
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		adm:      newAdmission(cfg.Workers, cfg.QueueDepth),
		cache:    newLRUCache(cfg.CacheEntries),
		flights:  newFlightGroup(),
		jobs:     jobs.NewStore(cfg.MaxJobs),
		reg:      metrics.NewRegistry(),
		baseCtx:  ctx,
		abort:    cancel,
		latency:  make(map[string]*metrics.Histogram),
		outcomes: make(map[[2]string]*metrics.Counter),
		preps:    cluster.NewPrepCache(0),
		peerDown: make(map[string]bool),
	}
	if len(cfg.Peers) > 0 {
		s.ring = cluster.NewRing(cfg.Peers, 0)
	}
	for _, ep := range endpointNames {
		s.latency[ep] = s.reg.Histogram("lppartd_request_seconds",
			"request latency by endpoint", metrics.Labels("endpoint", ep),
			metrics.LatencyBuckets())
		for _, oc := range outcomeNames {
			s.outcomes[[2]string{ep, oc}] = s.reg.Counter("lppartd_requests_total",
				"requests by endpoint and outcome",
				metrics.Labels("endpoint", ep, "outcome", oc))
		}
	}
	s.cacheHit = s.reg.Counter("lppartd_cache_ops_total", "result cache operations", metrics.Labels("op", "hit"))
	s.cacheMiss = s.reg.Counter("lppartd_cache_ops_total", "result cache operations", metrics.Labels("op", "miss"))
	s.cacheEvic = s.reg.Counter("lppartd_cache_ops_total", "result cache operations", metrics.Labels("op", "evict"))
	s.reg.GaugeFunc("lppartd_queue_depth", "requests waiting for a worker", "",
		func() float64 { return float64(s.adm.queueLen()) })
	s.reg.GaugeFunc("lppartd_workers", "worker pool size", "",
		func() float64 { return float64(cfg.Workers) })
	s.reg.GaugeFunc("lppartd_workers_busy", "workers currently evaluating", "",
		func() float64 { return float64(s.adm.busyWorkers()) })
	s.reg.GaugeFunc("lppartd_worker_utilization", "busy workers / pool size", "",
		func() float64 { return float64(s.adm.busyWorkers()) / float64(cfg.Workers) })
	s.reg.GaugeFunc("lppartd_cache_entries", "result cache occupancy", "",
		func() float64 { return float64(s.cache.len()) })
	for _, st := range []jobs.State{jobs.Queued, jobs.Running, jobs.Done, jobs.Failed} {
		st := st
		s.reg.GaugeFunc("lppartd_jobs", "async explore/exact jobs by state",
			metrics.Labels("state", st.String()),
			func() float64 { return float64(s.jobs.Count(st)) })
	}
	// Cluster instruments are registered up front (all-zero) even when
	// standalone, so the exposition's shape does not depend on flags;
	// per-peer shard counters cover the configured peers, with "local"
	// naming the standalone coordinator's single anonymous executor.
	s.reg.GaugeFunc("lppartd_peers", "cluster peers by health state",
		metrics.Labels("state", "up"), func() float64 { return float64(s.countPeers(false)) })
	s.reg.GaugeFunc("lppartd_peers", "cluster peers by health state",
		metrics.Labels("state", "down"), func() float64 { return float64(s.countPeers(true)) })
	s.shardsByPeer = make(map[string]*metrics.Counter)
	for _, p := range cfg.Peers {
		s.shardsByPeer[p] = s.reg.Counter("lppartd_cluster_shards_total",
			"accepted shard results by executing peer", metrics.Labels("peer", p))
	}
	if len(cfg.Peers) == 0 {
		s.shardsByPeer[""] = s.reg.Counter("lppartd_cluster_shards_total",
			"accepted shard results by executing peer", metrics.Labels("peer", "local"))
	}
	s.steals = s.reg.Counter("lppartd_cluster_steals_total",
		"shards taken from another peer's queue", "")
	s.duplicates = s.reg.Counter("lppartd_cluster_duplicates_total",
		"straggler re-runs whose result lost the race", "")
	s.broadcasts = s.reg.Counter("lppartd_cluster_bound_broadcasts_total",
		"shard dispatches carrying a non-empty incumbent set", "")

	s.mux.HandleFunc("POST /v1/partition", s.handlePartition)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/explore", s.handleExplore)
	s.mux.HandleFunc("GET /v1/explore/{id}", s.handleExploreGet)
	s.mux.HandleFunc("DELETE /v1/explore/{id}", s.handleExploreDelete)
	s.mux.HandleFunc("POST /v1/exact", s.handleExact)
	s.mux.HandleFunc("GET /v1/exact/{id}", s.handleExactGet)
	s.mux.HandleFunc("DELETE /v1/exact/{id}", s.handleExactDelete)
	s.mux.HandleFunc("POST /v1/shard", s.handleShard)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /v1/cluster/{id}", s.handleClusterGet)
	s.mux.HandleFunc("DELETE /v1/cluster/{id}", s.handleClusterDelete)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/apps", s.handleApps)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, healthLine())
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.adm.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	return s
}

// Handler returns the HTTP handler (for http.Server or tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's registry (for tests and embedding).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Drain stops admitting new evaluations: /readyz flips to 503 and new
// requests are shed with 503, while in-flight evaluations run to
// completion. Call it on SIGTERM before http.Server.Shutdown so a load
// balancer stops routing here while the tail drains.
func (s *Server) Drain() { s.adm.drain() }

// Abort cancels every in-flight evaluation (the hard phase of shutdown,
// after the drain grace period).
func (s *Server) Abort() { s.abort() }

// observe records one finished request.
func (s *Server) observe(endpoint, outcome string, start time.Time) {
	if c, ok := s.outcomes[[2]string{endpoint, outcome}]; ok {
		c.Inc()
	}
	s.latency[endpoint].Observe(time.Since(start).Seconds()) //lint:nondet latency metric only; never in a response body
}

// writeJSON writes a prepared body verbatim.
func writeResult(w http.ResponseWriter, res *flightResult) {
	w.Header().Set("Content-Type", "application/json")
	if res.cacheHit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// storeKey maps a canonical request hash to its content address in the
// persistent result store. The prefix versions the stored schema: bump
// it if response bodies ever change shape for the same request.
func storeKey(key string) memostore.Key {
	return sha256.Sum256([]byte("lppartd/result/v1\x00" + key))
}

// jsonBody marshals a response body the one canonical way (compact
// encoding/json + trailing newline); both the cached and the computed
// path serve exactly these bytes.
func jsonBody(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("serve: response not marshalable: " + err.Error())
	}
	return append(b, '\n')
}

// errResult renders an apiError as a flight result.
func errResult(e *apiError) *flightResult {
	return &flightResult{status: e.Status, body: jsonBody(e)}
}

// outcomeOf classifies a finished flight for the metrics.
func outcomeOf(res *flightResult) string {
	switch {
	case res.cacheHit:
		return "cache_hit"
	case res.status == http.StatusOK || res.status == http.StatusAccepted:
		return "ok"
	case res.status == http.StatusTooManyRequests:
		return "shed_queue"
	case res.status == http.StatusServiceUnavailable:
		return "shed_drain"
	case res.status == http.StatusGatewayTimeout:
		return "deadline"
	case res.status >= 500:
		return "error"
	default:
		return "bad_request"
	}
}

// serveKey runs the cached → coalesced → computed ladder for one
// canonical key and writes the result. compute runs under the server's
// context; the caller's wait is bounded by its own request context plus
// the configured timeout.
func (s *Server) serveKey(w http.ResponseWriter, r *http.Request, endpoint, key string,
	start time.Time, compute func(ctx context.Context) *flightResult) {
	res := s.resultFor(r, key, compute)
	writeResult(w, res)
	s.observe(endpoint, outcomeOf(res), start)
}

// resultFor is serveKey's ladder without the response writing, so the
// batch endpoint can run many keys through the same cache, coalescing
// and admission machinery and assemble the bodies itself.
func (s *Server) resultFor(r *http.Request, key string,
	compute func(ctx context.Context) *flightResult) *flightResult {
	if cb, ok := s.cache.get(key); ok {
		s.cacheHit.Inc()
		return &flightResult{status: cb.status, body: cb.body, cacheHit: true}
	}
	// The persistent store is the second cache tier: a hit replays the
	// stored bytes verbatim (and warms the LRU); a read error degrades to
	// a recompute, never to a failed request.
	if s.cfg.Store != nil {
		if body, ok, err := s.cfg.Store.Get(storeKey(key)); err == nil && ok {
			s.cacheHit.Inc()
			s.cacheEvic.Add(int64(s.cache.add(key, &cachedBody{status: http.StatusOK, body: body})))
			return &flightResult{status: http.StatusOK, body: body, cacheHit: true}
		}
	}
	s.cacheMiss.Inc()
	waitCtx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	res, err := s.flights.do(waitCtx, key, func() *flightResult {
		// The computation is server-owned: bounded by the configured
		// timeout, cancelled by Abort, independent of the waiters.
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Timeout)
		defer cancel()
		if aerr := s.adm.acquire(ctx); aerr != nil {
			switch aerr {
			case errQueueFull:
				return errResult(&apiError{Status: http.StatusTooManyRequests, Err: "queue full"})
			case errDraining:
				return errResult(&apiError{Status: http.StatusServiceUnavailable, Err: "draining"})
			default: // deadline expired while queued
				return errResult(&apiError{Status: http.StatusGatewayTimeout, Err: "deadline exceeded while queued"})
			}
		}
		defer s.adm.release()
		res := compute(ctx)
		if res.status == http.StatusOK {
			// Only successes warm the cache; sheds and failures must
			// not mask a later, healthier attempt.
			s.cacheEvic.Add(int64(s.cache.add(key, &cachedBody{status: res.status, body: res.body})))
			if s.cfg.Store != nil {
				// Write errors (including ErrReadOnly on fleet nodes)
				// are deliberately swallowed: persistence accelerates,
				// it must never fail a served request.
				_ = s.cfg.Store.Put(storeKey(key), res.body) //lint:err persistence must never fail a served request
			}
		}
		return res
	})
	if err != nil {
		res = errResult(&apiError{Status: http.StatusGatewayTimeout, Err: "request deadline exceeded"})
	}
	return res
}

// decodeBody decodes a JSON request body with a hard size cap.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) *apiError {
	r.Body = http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes+bodySlackBytes))
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid request body: " + err.Error())
	}
	return nil
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	var req PartitionRequest
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("partition", "bad_request", start)
		return
	}
	prog, sets, key, aerr := req.canonicalize(s.cfg.MaxSourceBytes)
	if aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("partition", "bad_request", start)
		return
	}
	// In a cluster, the canonical key's ring owner computes (and caches)
	// the result; everyone else proxies, so the LRU + memostore tiers
	// shard cleanly instead of duplicating entries on every node.
	if s.forwardPartition(w, r, &req, key, start) {
		return
	}
	s.serveKey(w, r, "partition", key, start, s.partitionCompute(&req, prog, sets, key))
}

// partitionCompute is the /v1/partition evaluation as a flight compute
// function, shared by the single and batch endpoints.
func (s *Server) partitionCompute(req *PartitionRequest, prog *behav.Program,
	sets []tech.ResourceSet, key string) func(ctx context.Context) *flightResult {
	return func(ctx context.Context) *flightResult {
		cfg := system.Config{MaxInstrs: s.cfg.MaxInstrs}
		cfg.Part.F = req.F
		cfg.Part.MaxClusters = req.MaxClusters
		cfg.Part.GEQBudget = req.GEQBudget
		cfg.Part.MaxCores = req.MaxCores
		cfg.Part.ResourceSets = sets
		cfg.Part.Verify = req.Verify
		ev, err := system.EvaluateCtx(ctx, prog, cfg)
		if err != nil {
			if ctx.Err() != nil {
				return errResult(&apiError{Status: http.StatusGatewayTimeout, Err: "evaluation deadline exceeded"})
			}
			return errResult(&apiError{Status: http.StatusUnprocessableEntity, Err: err.Error()})
		}
		return &flightResult{status: http.StatusOK,
			body: jsonBody(buildPartitionResponse(ev, req.Verify, key))}
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	var req SweepRequest
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("sweep", "bad_request", start)
		return
	}
	prog, pairs, key, aerr := req.canonicalize(s.cfg.MaxSourceBytes)
	if aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("sweep", "bad_request", start)
		return
	}
	s.serveKey(w, r, "sweep", key, start, func(ctx context.Context) *flightResult {
		res, aerr := s.computeSweep(ctx, prog, &req, pairs, key)
		if aerr != nil {
			return errResult(aerr)
		}
		return res
	})
}

// computeSweep records the application's reference trace and runs the
// single-pass stack-distance sweep over the geometry grid, serially (one
// profiler pass per distinct line size): request-level parallelism
// belongs to the worker pool, not to the inside of one slot.
func (s *Server) computeSweep(ctx context.Context, prog *behav.Program, req *SweepRequest,
	pairs [][2]cache.Config, key string) (*flightResult, *apiError) {
	ir, err := cdfg.Build(prog)
	if err != nil {
		return nil, &apiError{Status: http.StatusUnprocessableEntity, Err: err.Error()}
	}
	tr, err := system.RecordTraceCtx(ctx, ir, system.Config{MaxInstrs: s.cfg.MaxInstrs})
	if err != nil {
		if ctx.Err() != nil {
			return nil, &apiError{Status: http.StatusGatewayTimeout, Err: "sweep deadline exceeded"}
		}
		return nil, &apiError{Status: http.StatusUnprocessableEntity, Err: err.Error()}
	}
	if ctx.Err() != nil {
		return nil, &apiError{Status: http.StatusGatewayTimeout, Err: "sweep deadline exceeded"}
	}
	reps, err := tr.Sweep(pairs, tech.Default())
	if err != nil {
		return nil, &apiError{Status: http.StatusUnprocessableEntity, Err: err.Error()}
	}
	name := req.App
	if name == "" {
		name = ir.Name
	}
	return &flightResult{status: http.StatusOK,
		body: jsonBody(buildSweepResponse(name, req.ISweep, tr, pairs, reps, key))}, nil
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	var resp AppsResponse
	for _, a := range apps.All() {
		resp.Apps = append(resp.Apps, AppBody{
			Name:            a.Name,
			Description:     a.Description,
			PaperSavings:    a.PaperSavings,
			PaperTimeChange: a.PaperTimeChange,
			SourceBytes:     len(a.Source),
		})
	}
	writeResult(w, &flightResult{status: http.StatusOK, body: jsonBody(&resp)})
	s.observe("apps", "ok", start)
}
