package client

import (
	"context"
	"encoding/json"
	"math/rand" //lint:nondet seeded deterministically in tests
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lppart/internal/serve"
)

func fastRetries() func(*Config) {
	return WithRetries(3, time.Millisecond, 4*time.Millisecond)
}

// The client rides out a server that sheds its first attempts with 429
// (as lppartd does under load) and succeeds on a later one.
func TestRetriesThroughShedding(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		w.Header().Set("X-Cache", "miss")
		json.NewEncoder(w).Encode(&serve.PartitionResponse{App: "3d"})
	}))
	defer ts.Close()

	c := New(ts.URL, fastRetries(), WithRand(rand.New(rand.NewSource(1))))
	res, err := c.Partition(context.Background(), &serve.PartitionRequest{App: "3d"})
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (two sheds, then success)", res.Attempts)
	}
	if res.Value.App != "3d" || res.CacheHit {
		t.Errorf("decoded %+v cacheHit=%v", res.Value, res.CacheHit)
	}
}

// Retries exhausted: the final API error (not a transport wrapper)
// reaches the caller.
func TestRetriesExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "draining"})
	}))
	defer ts.Close()

	c := New(ts.URL, fastRetries(), WithRand(rand.New(rand.NewSource(1))))
	_, err := c.Partition(context.Background(), &serve.PartitionRequest{App: "3d"})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error = %T %v, want *APIError", err, err)
	}
	if ae.Status != http.StatusServiceUnavailable || ae.Body.Err != "draining" {
		t.Errorf("APIError = %+v", ae)
	}
}

// 4xx (other than 429) is the caller's fault: no retries.
func TestNoRetryOnBadRequest(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{"error": "parse error", "line": 2, "col": 7})
	}))
	defer ts.Close()

	c := New(ts.URL, fastRetries())
	_, err := c.Partition(context.Background(), &serve.PartitionRequest{Source: "bad"})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error = %T %v, want *APIError", err, err)
	}
	if calls.Load() != 1 {
		t.Errorf("%d attempts, want 1 (bad requests are not retryable)", calls.Load())
	}
	if ae.Body.Line != 2 || ae.Body.Col != 7 {
		t.Errorf("positioned error lost: %+v", ae.Body)
	}
}

// Against a real server, the typed client round-trips the partition
// response and sees the second call served from the cache.
func TestAgainstRealServer(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := New(ts.URL)
	if !c.Healthy(context.Background()) {
		t.Fatal("server not healthy")
	}
	apps, err := c.Apps(context.Background())
	if err != nil || len(apps.Value.Apps) != 6 {
		t.Fatalf("Apps: %v (%d apps)", err, len(apps.Value.Apps))
	}
	res1, err := c.Partition(context.Background(), &serve.PartitionRequest{App: "engine"})
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	res2, err := c.Partition(context.Background(), &serve.PartitionRequest{App: "engine"})
	if err != nil {
		t.Fatalf("Partition (2nd): %v", err)
	}
	if res1.CacheHit || !res2.CacheHit {
		t.Errorf("CacheHit = %v then %v, want false then true", res1.CacheHit, res2.CacheHit)
	}
	if res1.Value.Trail != res2.Value.Trail || res1.Value.CacheSignature != res2.Value.CacheSignature {
		t.Error("cached response decoded differently from the computed one")
	}
	sw, err := c.Sweep(context.Background(), &serve.SweepRequest{App: "engine", Sets: []int{64}, Assoc: []int{1}})
	if err != nil || len(sw.Value.Geometries) != 1 {
		t.Fatalf("Sweep: %v", err)
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	c := New("http://x", WithRetries(3, time.Millisecond, 8*time.Millisecond),
		WithRand(rand.New(rand.NewSource(1))))
	for i := 0; i < 50; i++ {
		if d := c.backoff(0, 20*time.Millisecond); d < 20*time.Millisecond {
			t.Fatalf("backoff %v below the server's Retry-After floor", d)
		}
		if d := c.backoff(10, 0); d >= 8*time.Millisecond {
			t.Fatalf("backoff %v above the configured cap", d)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"":    0,
		"1":   time.Second,
		"0":   0,
		"-3":  0,
		"bad": 0,
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}

// Context cancellation cuts the retry loop short.
func TestContextCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := New(ts.URL, WithRetries(5, time.Second, time.Second))
	_, err := c.Partition(ctx, &serve.PartitionRequest{App: "3d"})
	if err != context.DeadlineExceeded {
		t.Errorf("error = %v, want context.DeadlineExceeded", err)
	}
}
