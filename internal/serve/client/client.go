// Package client is the typed Go client for lppartd. It speaks the
// /v1 JSON API and retries transient failures (HTTP 429/503/5xx and
// transport errors) with capped exponential backoff plus full jitter, so
// a fleet of clients hitting a shedding server spreads its retries
// instead of thundering back in lockstep. With several endpoints
// (NewMulti), retries rotate across the cluster's peers and repeatedly
// failing peers are sidelined until they answer again, so one dead or
// shedding node costs a backoff, not an error.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand" //lint:nondet retry jitter only; never in a response body
	"net/http"
	"strconv"
	"sync"
	"time"

	"lppart/internal/serve"
)

// Config tunes one Client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8095".
	BaseURL string
	// Endpoints are additional equivalent server roots (a cluster's
	// peers). Requests go to the preferred endpoint; a retryable
	// failure rotates the retry — same backoff, same Retry-After floor
	// — onto the next peer, and an endpoint that fails repeatedly is
	// skipped until every peer looks unhealthy. Usually set via
	// NewMulti rather than directly.
	Endpoints []string
	// MaxRetries bounds retry attempts after the first try (default 3).
	MaxRetries int
	// BaseBackoff is the first retry's backoff cap (default 100ms); each
	// further attempt doubles the cap, and the actual sleep is uniform in
	// [0, cap) (full jitter). A server-provided Retry-After overrides the
	// cap's lower bound.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 2s).
	MaxBackoff time.Duration
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Rand overrides the jitter source (for deterministic tests).
	Rand *rand.Rand
}

// Client is a typed lppartd API client.
type Client struct {
	cfg Config

	// Per-endpoint failover state; eps always has at least one entry.
	mu  sync.Mutex
	eps []*endpointState
	cur int
}

// endpointState is one peer's passive health record.
type endpointState struct {
	url   string
	fails int // consecutive retryable failures
}

// failThreshold is how many consecutive retryable failures sideline an
// endpoint. Sidelined endpoints are still used when every peer is
// sidelined (a full outage should keep probing, not give up), and a
// single success reinstates the peer.
const failThreshold = 3

// ErrorBody is the server's JSON error body; parse errors in served
// sources carry a 1-based line and column.
type ErrorBody struct {
	Err  string `json:"error"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
}

// APIError is a non-retryable (or retries-exhausted) API failure, carrying
// the server's JSON error body.
type APIError struct {
	Status int
	Body   ErrorBody
}

func (e *APIError) Error() string {
	if e.Body.Line > 0 {
		return fmt.Sprintf("lppartd: HTTP %d: %s (line %d, col %d)",
			e.Status, e.Body.Err, e.Body.Line, e.Body.Col)
	}
	return fmt.Sprintf("lppartd: HTTP %d: %s", e.Status, e.Body.Err)
}

// New returns a client for the server at baseURL.
func New(baseURL string, opts ...func(*Config)) *Client {
	cfg := Config{BaseURL: baseURL}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	c := &Client{cfg: cfg}
	for _, u := range append([]string{cfg.BaseURL}, cfg.Endpoints...) {
		if u == "" {
			continue
		}
		dup := false
		for _, e := range c.eps {
			if e.url == u {
				dup = true
				break
			}
		}
		if !dup {
			c.eps = append(c.eps, &endpointState{url: u})
		}
	}
	if len(c.eps) == 0 {
		c.eps = []*endpointState{{url: cfg.BaseURL}}
	}
	return c
}

// NewMulti returns a failover client over several equivalent endpoints
// (a cluster's peer URLs). The first endpoint is preferred; see
// Config.Endpoints for the rotation rules.
func NewMulti(endpoints []string, opts ...func(*Config)) *Client {
	if len(endpoints) == 0 {
		panic("lppartd client: NewMulti needs at least one endpoint")
	}
	return New(endpoints[0], append([]func(*Config){func(c *Config) {
		c.Endpoints = endpoints[1:]
	}}, opts...)...)
}

// pick returns the endpoint for the next attempt: the preferred (or
// last-good) endpoint unless it is sidelined, else the next healthy
// peer in rotation; when everything is sidelined, whatever cur points
// at — an outage keeps probing.
func (c *Client) pick() *endpointState {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < len(c.eps); i++ {
		ep := c.eps[(c.cur+i)%len(c.eps)]
		if ep.fails < failThreshold {
			c.cur = (c.cur + i) % len(c.eps)
			return ep
		}
	}
	return c.eps[c.cur]
}

// mark records one attempt's outcome; a retryable failure rotates cur
// off the failed endpoint so the next attempt lands on the next peer.
func (c *Client) mark(ep *endpointState, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		ep.fails = 0
		return
	}
	ep.fails++
	for i, e := range c.eps {
		if e == ep {
			c.cur = (i + 1) % len(c.eps)
			return
		}
	}
}

// WithHTTPClient overrides the transport.
func WithHTTPClient(hc *http.Client) func(*Config) {
	return func(c *Config) { c.HTTPClient = hc }
}

// WithRetries overrides the retry budget and backoff bounds.
func WithRetries(max int, base, cap time.Duration) func(*Config) {
	return func(c *Config) { c.MaxRetries = max; c.BaseBackoff = base; c.MaxBackoff = cap }
}

// WithRand overrides the jitter source (deterministic tests).
func WithRand(r *rand.Rand) func(*Config) {
	return func(c *Config) { c.Rand = r }
}

// Result wraps a decoded response with its transport metadata.
type Result[T any] struct {
	Value T
	// CacheHit reports the server's X-Cache header.
	CacheHit bool
	// Attempts is how many HTTP requests were sent (1 = no retries).
	Attempts int
}

// Partition runs POST /v1/partition.
func (c *Client) Partition(ctx context.Context, req *serve.PartitionRequest) (*Result[*serve.PartitionResponse], error) {
	return do[*serve.PartitionResponse](c, ctx, http.MethodPost, "/v1/partition", req)
}

// Sweep runs POST /v1/sweep.
func (c *Client) Sweep(ctx context.Context, req *serve.SweepRequest) (*Result[*serve.SweepResponse], error) {
	return do[*serve.SweepResponse](c, ctx, http.MethodPost, "/v1/sweep", req)
}

// Batch runs POST /v1/batch.
func (c *Client) Batch(ctx context.Context, req *serve.BatchRequest) (*Result[*serve.BatchResponse], error) {
	return do[*serve.BatchResponse](c, ctx, http.MethodPost, "/v1/batch", req)
}

// Apps runs GET /v1/apps.
func (c *Client) Apps(ctx context.Context) (*Result[*serve.AppsResponse], error) {
	return do[*serve.AppsResponse](c, ctx, http.MethodGet, "/v1/apps", nil)
}

// Healthy reports whether any endpoint's /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool {
	c.mu.Lock()
	urls := make([]string, len(c.eps))
	for i, ep := range c.eps {
		urls[i] = ep.url
	}
	c.mu.Unlock()
	for _, u := range urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			continue
		}
		resp.Body.Close() //lint:err health probe, the status code is the only signal
		if resp.StatusCode == http.StatusOK {
			return true
		}
	}
	return false
}

// retryable reports whether a status is worth another attempt: shedding
// (429/503) and transient server trouble (other 5xx, except 501).
func retryable(status int) bool {
	switch {
	case status == http.StatusTooManyRequests:
		return true
	case status == http.StatusNotImplemented:
		return false
	case status >= 500:
		return true
	default:
		return false
	}
}

// backoff returns the sleep before attempt n (0-based retry index):
// uniform in [0, min(base<<n, cap)) — "full jitter" — raised to any
// server-provided Retry-After hint.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	limit := c.cfg.BaseBackoff << n
	if limit > c.cfg.MaxBackoff || limit <= 0 {
		limit = c.cfg.MaxBackoff
	}
	var d time.Duration
	if c.cfg.Rand != nil {
		d = time.Duration(c.cfg.Rand.Int63n(int64(limit))) //lint:nondet retry jitter
	} else {
		d = time.Duration(rand.Int63n(int64(limit))) //lint:nondet retry jitter
	}
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads a Retry-After header (seconds form only).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do sends one API request with retries and decodes the JSON response.
func do[T any](c *Client, ctx context.Context, method, path string, body any) (*Result[T], error) {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("lppartd client: encode request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			wait := c.backoff(attempt-1, retryAfterOf(lastErr))
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ep := c.pick()
		res, err := once[T](c, ctx, method, ep.url+path, payload, attempt+1)
		if err == nil {
			c.mark(ep, true)
			return res, nil
		}
		lastErr = err
		var ae *retryableError
		if !errorAs(err, &ae) {
			return nil, err
		}
		// A shed or dead peer: count the failure and rotate, so the
		// retry — after the same jittered, Retry-After-respecting
		// backoff — lands on the next endpoint.
		c.mark(ep, false)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	var ae *retryableError
	if errorAs(lastErr, &ae) {
		return nil, ae.apiErr
	}
	return nil, lastErr
}

// retryableError wraps a retry-worthy failure with the server's
// Retry-After hint.
type retryableError struct {
	apiErr     error
	retryAfter time.Duration
}

func (e *retryableError) Error() string { return e.apiErr.Error() }

func retryAfterOf(err error) time.Duration {
	var re *retryableError
	if errorAs(err, &re) {
		return re.retryAfter
	}
	return 0
}

// errorAs is errors.As for *retryableError without importing errors (the
// wrapper is always the top-level error here).
func errorAs(err error, target **retryableError) bool {
	re, ok := err.(*retryableError)
	if ok {
		*target = re
	}
	return ok
}

// once sends a single HTTP request to url (an endpoint root plus path).
func once[T any](c *Client, ctx context.Context, method, url string, payload []byte, attempt int) (*Result[T], error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, fmt.Errorf("lppartd client: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		// Transport errors are retryable (connection refused during a
		// restart, etc.).
		return nil, &retryableError{apiErr: fmt.Errorf("lppartd client: %w", err)}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &retryableError{apiErr: fmt.Errorf("lppartd client: read response: %w", err)}
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode}
		_ = json.Unmarshal(raw, &apiErr.Body) //lint:err best effort; body may be non-JSON
		if apiErr.Body.Err == "" {
			apiErr.Body.Err = http.StatusText(resp.StatusCode)
		}
		if retryable(resp.StatusCode) {
			return nil, &retryableError{apiErr: apiErr,
				retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
		}
		return nil, apiErr
	}
	res := &Result[T]{CacheHit: resp.Header.Get("X-Cache") == "hit", Attempts: attempt}
	if err := json.Unmarshal(raw, &res.Value); err != nil {
		return nil, fmt.Errorf("lppartd client: decode response: %w", err)
	}
	return res, nil
}
