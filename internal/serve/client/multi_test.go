package client

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lppart/internal/serve"
)

// fastMulti keeps multi-endpoint tests quick without losing the
// backoff path.
func fastMulti(c *Config) {
	c.MaxRetries = 5
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 2 * time.Millisecond
	c.Rand = rand.New(rand.NewSource(1)) //lint:nondet deterministic test jitter
}

// TestFailoverToHealthyPeer: a 503 from the preferred endpoint retries
// against the next peer and succeeds.
func TestFailoverToHealthyPeer(t *testing.T) {
	var badHits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	good := httptest.NewServer(serve.New(serve.Config{Workers: 1}).Handler())
	defer good.Close()

	c := NewMulti([]string{bad.URL, good.URL}, fastMulti)
	res, err := c.Partition(context.Background(), &serve.PartitionRequest{App: "engine"})
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (one shed, one failover)", res.Attempts)
	}
	if badHits.Load() != 1 {
		t.Errorf("shedding peer hit %d times, want 1", badHits.Load())
	}
}

// TestSidelinesDeadPeer: after failThreshold consecutive failures the
// dead peer stops receiving requests, and later calls go straight to
// the healthy peer.
func TestSidelinesDeadPeer(t *testing.T) {
	var badHits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(serve.New(serve.Config{Workers: 1}).Handler())
	defer good.Close()

	c := NewMulti([]string{bad.URL, good.URL}, fastMulti)
	for i := 0; i < 6; i++ {
		if _, err := c.Apps(context.Background()); err != nil {
			t.Fatalf("Apps %d: %v", i, err)
		}
	}
	// The failover rotates off bad after its first failure each time it
	// is tried, and after failThreshold consecutive failures it is
	// sidelined entirely.
	if n := badHits.Load(); n > failThreshold {
		t.Errorf("dead peer hit %d times, want <= %d (sidelined)", n, failThreshold)
	}
}

// TestAllPeersDown: when every endpoint is sidelined the client keeps
// probing rather than failing fast, and surfaces the API error once
// retries are exhausted.
func TestAllPeersDown(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer down.Close()
	c := NewMulti([]string{down.URL, down.URL + "/"}, fastMulti)
	_, err := c.Apps(context.Background())
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error %v, want *APIError", err)
	}
	if ae.Status != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429", ae.Status)
	}
}

// TestMultiHealthy: Healthy is true while any endpoint answers.
func TestMultiHealthy(t *testing.T) {
	good := httptest.NewServer(serve.New(serve.Config{Workers: 1}).Handler())
	defer good.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused

	c := NewMulti([]string{dead.URL, good.URL})
	if !c.Healthy(context.Background()) {
		t.Error("Healthy = false with one live endpoint")
	}
	c2 := NewMulti([]string{dead.URL})
	if c2.Healthy(context.Background()) {
		t.Error("Healthy = true with no live endpoints")
	}
}

// TestSingleEndpointUnchanged: the one-endpoint client retries the same
// server exactly as before multi-endpoint support.
func TestSingleEndpointUnchanged(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"apps":null}`))
	}))
	defer ts.Close()
	c := New(ts.URL, fastMulti)
	res, err := c.Apps(context.Background())
	if err != nil {
		t.Fatalf("Apps: %v", err)
	}
	if res.Attempts != 3 || hits.Load() != 3 {
		t.Errorf("attempts %d, hits %d, want 3/3", res.Attempts, hits.Load())
	}
}
