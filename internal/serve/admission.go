package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// Admission-control errors, mapped to 429 / 503 by the handlers.
var (
	// errQueueFull sheds a request because the wait queue is at its
	// depth limit (429 + Retry-After: better to push back early than to
	// let latency collapse under an unbounded backlog).
	errQueueFull = errors.New("serve: queue full")
	// errDraining sheds a request because the server is shutting down
	// (503; in-flight work still completes).
	errDraining = errors.New("serve: draining")
)

// admission is the bounded-concurrency gate in front of the evaluation
// worker pool: at most `workers` computations run at once, at most
// `queueDepth` more may wait for a slot, and everything beyond that is
// shed immediately. The two bounds turn overload into fast, explicit
// 429s instead of an ever-growing goroutine pile.
type admission struct {
	workers    int
	queueDepth int
	slots      chan struct{} // buffered with `workers` tokens
	queued     atomic.Int64  // currently waiting for a slot
	busy       atomic.Int64  // currently holding a slot
	draining   atomic.Bool
}

func newAdmission(workers, queueDepth int) *admission {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	a := &admission{workers: workers, queueDepth: queueDepth,
		slots: make(chan struct{}, workers)}
	for i := 0; i < workers; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire takes a worker slot, waiting in the bounded queue if none is
// free. It fails fast with errQueueFull past the depth limit,
// errDraining during shutdown, and ctx.Err() when the caller's deadline
// expires while queued.
func (a *admission) acquire(ctx context.Context) error {
	if a.draining.Load() {
		return errDraining
	}
	select {
	case <-a.slots:
		a.busy.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > int64(a.queueDepth) {
		a.queued.Add(-1)
		return errQueueFull
	}
	defer a.queued.Add(-1)
	select {
	case <-a.slots:
		a.busy.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot.
func (a *admission) release() {
	a.busy.Add(-1)
	a.slots <- struct{}{}
}

// drain stops admitting new work; in-flight holders keep their slots.
func (a *admission) drain() { a.draining.Store(true) }

// queueLen returns the number of requests waiting for a slot.
func (a *admission) queueLen() int64 { return a.queued.Load() }

// busyWorkers returns the number of slots currently held.
func (a *admission) busyWorkers() int64 { return a.busy.Load() }
