package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON request and returns status, body and the X-Cache
// header.
func post(t *testing.T, url string, body string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header.Get("X-Cache")
}

// TestPartitionDeterministicBody is the tentpole contract: the same
// request twice returns byte-identical bodies, the second served from
// the cache — and a fresh server (no cache) computes those same bytes.
func TestPartitionDeterministicBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"app":"3d","max_cores":2}`
	st1, b1, c1 := post(t, ts.URL+"/v1/partition", req)
	st2, b2, c2 := post(t, ts.URL+"/v1/partition", req)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("status %d/%d, want 200/200; body: %s", st1, st2, b1)
	}
	if c1 != "miss" || c2 != "hit" {
		t.Errorf("X-Cache = %q then %q, want miss then hit", c1, c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached body differs from computed body:\n%s\nvs\n%s", b1, b2)
	}

	_, ts2 := newTestServer(t, Config{Workers: 1})
	st3, b3, _ := post(t, ts2.URL+"/v1/partition", req)
	if st3 != 200 {
		t.Fatalf("fresh server status %d", st3)
	}
	if !bytes.Equal(b1, b3) {
		t.Errorf("fresh server computed different bytes than the original run")
	}

	var pr PartitionResponse
	if err := json.Unmarshal(b1, &pr); err != nil {
		t.Fatalf("response not valid JSON: %v", err)
	}
	if pr.App != "3d" || pr.Initial == nil || pr.Trail == "" || pr.Table1 == "" {
		t.Errorf("response missing decision trail or Table 1 row: %+v", pr)
	}
	if pr.Savings >= 0 {
		t.Errorf("3d savings %.2f%%, want negative (a saving)", pr.Savings)
	}
}

// Defaults spelled out and defaults left implicit are the same Fig. 1
// tuple, so they share one cache entry.
func TestCanonicalizationSharesCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st1, b1, _ := post(t, ts.URL+"/v1/partition", `{"app":"engine"}`)
	st2, b2, c2 := post(t, ts.URL+"/v1/partition",
		`{"app":"engine","f":1.0,"max_clusters":5,"geq_budget":16000,"max_cores":1}`)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("status %d/%d; body %s", st1, st2, b1)
	}
	if c2 != "hit" {
		t.Errorf("explicit-defaults request was a %q, want cache hit", c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("bodies differ between implicit- and explicit-default requests")
	}
}

func TestPartitionVerifyAndOverrides(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, b, _ := post(t, ts.URL+"/v1/partition",
		`{"app":"engine","verify":true,"resource_sets":[{"name":"rs-std"},{"name":"custom","max":{"ALU":2,"MUL":1,"CMP":1}}]}`)
	if st != 200 {
		t.Fatalf("status %d: %s", st, b)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(b, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Verified {
		t.Error("verify:true response not marked verified")
	}
	if !strings.Contains(pr.Trail, "rs-std") || !strings.Contains(pr.Trail, "custom") {
		t.Errorf("trail does not show the requested resource sets:\n%s", pr.Trail)
	}

	// Different resource sets must hash to a different cache key.
	_, _, c := post(t, ts.URL+"/v1/partition", `{"app":"engine","verify":true,"resource_sets":[{"name":"rs-std"}]}`)
	if c != "miss" {
		t.Error("narrower resource-set request unexpectedly hit the wider request's cache entry")
	}
}

// TestShedUnderLoad pins the admission contract: with every worker busy
// and the queue full, the next request is shed immediately with 429 and
// a Retry-After header. The worker pool is occupied white-box (by taking
// its only token) so the test never depends on evaluation timing.
func TestShedUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	<-s.adm.slots // occupy the only worker

	queued := make(chan []byte, 1)
	go func() {
		_, b, _ := post(t, ts.URL+"/v1/partition", `{"app":"3d"}`)
		queued <- b
	}()
	waitFor(t, "request to queue", func() bool { return s.adm.queueLen() == 1 })

	st, body, _ := post(t, ts.URL+"/v1/partition", `{"app":"engine"}`)
	if st != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: status %d, want 429; body %s", st, body)
	}
	resp, err := http.Post(ts.URL+"/v1/partition", "application/json", strings.NewReader(`{"app":"MPG"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 || resp.Header.Get("Retry-After") == "" {
		t.Errorf("shed response: status %d Retry-After %q, want 429 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	s.adm.slots <- struct{}{} // free the worker; the queued request completes
	select {
	case b := <-queued:
		var pr PartitionResponse
		if err := json.Unmarshal(b, &pr); err != nil || pr.App != "3d" {
			t.Errorf("queued request did not complete cleanly: %v %s", err, b)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued request never completed")
	}
}

// TestGracefulDrain pins the shutdown contract: after Drain(), requests
// already admitted (queued or running) complete, new work is shed with
// 503, and /readyz flips to 503 so load balancers stop routing here.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	<-s.adm.slots // hold the worker so the in-flight request stays in flight

	inflight := make(chan struct {
		status int
		body   []byte
	}, 1)
	go func() {
		st, b, _ := post(t, ts.URL+"/v1/partition", `{"app":"engine"}`)
		inflight <- struct {
			status int
			body   []byte
		}{st, b}
	}()
	waitFor(t, "request to queue", func() bool { return s.adm.queueLen() == 1 })

	s.Drain() // what cmd/lppartd does on SIGTERM, before http.Server.Shutdown

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz while draining: %d, want 503", resp.StatusCode)
		}
	}
	st, body, _ := post(t, ts.URL+"/v1/partition", `{"app":"ckey"}`)
	if st != http.StatusServiceUnavailable {
		t.Errorf("new request while draining: status %d, want 503; body %s", st, body)
	}

	s.adm.slots <- struct{}{} // worker frees up; the admitted request finishes
	select {
	case r := <-inflight:
		if r.status != 200 {
			t.Errorf("in-flight request after SIGTERM: status %d, want 200; body %s", r.status, r.body)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never completed after drain")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServedSourceAndParseErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSourceBytes: 4096})

	src := "var out; func main() { var i; out = 0; for i = 0; i < 64; i = i + 1 { out = out + i*i; } }"
	body, _ := json.Marshal(PartitionRequest{Source: src})
	st, b, _ := post(t, ts.URL+"/v1/partition", string(body))
	if st != 200 {
		t.Fatalf("served source: status %d: %s", st, b)
	}

	// Parse error: line/column in the JSON error body.
	bad, _ := json.Marshal(PartitionRequest{Source: "func main() {\n  x = ;\n}"})
	st, b, _ = post(t, ts.URL+"/v1/partition", string(bad))
	if st != 400 {
		t.Fatalf("parse error: status %d, want 400: %s", st, b)
	}
	var ae apiError
	if err := json.Unmarshal(b, &ae); err != nil {
		t.Fatal(err)
	}
	if ae.Line != 2 || ae.Col == 0 || ae.Err == "" {
		t.Errorf("parse error body %s, want line 2 and a column", b)
	}

	// Size cap: 413.
	huge, _ := json.Marshal(PartitionRequest{Source: "# " + strings.Repeat("x", 5000) + "\nfunc main() { }"})
	st, b, _ = post(t, ts.URL+"/v1/partition", string(huge))
	if st != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized source: status %d, want 413: %s", st, b)
	}

	for _, tc := range []struct{ name, req string }{
		{"no app or source", `{}`},
		{"both app and source", `{"app":"3d","source":"func main() { }"}`},
		{"unknown app", `{"app":"nope"}`},
		{"unknown field", `{"app":"3d","bogus":1}`},
		{"unknown resource kind", `{"app":"3d","resource_sets":[{"name":"x","max":{"FPU":1}}]}`},
		{"unknown builtin set", `{"app":"3d","resource_sets":[{"name":"rs-huge"}]}`},
		{"negative f", `{"app":"3d","f":-1}`},
	} {
		st, b, _ := post(t, ts.URL+"/v1/partition", tc.req)
		if st != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, st, b)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := `{"app":"engine","sets":[64,128],"assoc":[1,2],"line_words":4}`
	st, b1, c1 := post(t, ts.URL+"/v1/sweep", req)
	if st != 200 {
		t.Fatalf("sweep: status %d: %s", st, b1)
	}
	_, b2, c2 := post(t, ts.URL+"/v1/sweep", req)
	if c1 != "miss" || c2 != "hit" {
		t.Errorf("sweep X-Cache = %q then %q, want miss then hit", c1, c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("sweep bodies differ between computed and cached paths")
	}
	var sr SweepResponse
	if err := json.Unmarshal(b1, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Geometries) != 4 {
		t.Fatalf("%d geometries, want 4", len(sr.Geometries))
	}
	if sr.ProfilerPasses != 1 {
		t.Errorf("profiler passes = %d, want 1 (single line size)", sr.ProfilerPasses)
	}
	if sr.Fetches == 0 || sr.Geometries[0].Summary == "" {
		t.Errorf("sweep response missing trace counts or summaries: %+v", sr)
	}

	st, b, _ := post(t, ts.URL+"/v1/sweep", `{"app":"engine","sets":[48]}`)
	if st != 400 {
		t.Errorf("non-power-of-two sets: status %d, want 400 (%s)", st, b)
	}
}

func TestAppsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar AppsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Apps) != 6 {
		t.Fatalf("%d apps, want the paper's 6", len(ar.Apps))
	}
	if ar.Apps[0].Name != "3d" || ar.Apps[0].PaperSavings >= 0 {
		t.Errorf("apps[0] = %+v, want 3d with negative paper savings", ar.Apps[0])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	post(t, ts.URL+"/v1/partition", `{"app":"3d"}`)
	post(t, ts.URL+"/v1/partition", `{"app":"3d"}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	out := string(b)
	for _, want := range []string{
		`lppartd_requests_total{endpoint="partition",outcome="ok"} 1`,
		`lppartd_requests_total{endpoint="partition",outcome="cache_hit"} 1`,
		`lppartd_cache_ops_total{op="hit"} 1`,
		`lppartd_cache_ops_total{op="miss"} 1`,
		`lppartd_cache_entries 1`,
		`lppartd_workers 3`,
		`lppartd_queue_depth 0`,
		"lppartd_request_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/healthz: %d", resp.StatusCode)
	}
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != 200 {
		t.Errorf("/readyz before drain: %d", ready.StatusCode)
	}
}

// LRU eviction keeps the cache bounded and the evicted key recomputes to
// the same bytes.
func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 2})
	_, b1, _ := post(t, ts.URL+"/v1/partition", `{"app":"3d"}`)
	post(t, ts.URL+"/v1/partition", `{"app":"engine"}`)
	post(t, ts.URL+"/v1/partition", `{"app":"ckey"}`) // evicts 3d
	if n := s.cache.len(); n != 2 {
		t.Errorf("cache holds %d entries, want 2", n)
	}
	st, b2, c := post(t, ts.URL+"/v1/partition", `{"app":"3d"}`)
	if st != 200 || c != "miss" {
		t.Fatalf("re-request of evicted key: status %d X-Cache %q", st, c)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("recomputed body differs from the originally computed one")
	}
}
