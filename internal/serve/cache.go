package serve

import (
	"container/list"
	"sync"
)

// cachedBody is one finished response: the exact bytes (and status) the
// computing request wrote, replayed verbatim on every hit so cached and
// freshly computed answers are byte-identical by construction.
type cachedBody struct {
	status int
	body   []byte
}

// lruCache is a bounded most-recently-used result cache keyed by the
// canonical request hash.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val *cachedBody
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body and refreshes its recency.
func (c *lruCache) get(key string) (*cachedBody, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) a body and evicts the least recently used
// entry past capacity. It reports how many entries were evicted.
func (c *lruCache) add(key string, val *cachedBody) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return 0
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	evicted := 0
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
