package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// exactReq mirrors exploreReq: a small two-geometry solve, fast enough
// to run to completion inside the tests.
const exactReq = `{"app":"engine","max_hw":2,"geometries":[{},{"dsets":32}]}`

// TestExactJobLifecycle walks the async contract end to end: POST
// returns 202 with a pollable job, the job finishes with certified
// optima, an identical POST deduplicates onto the finished job, and
// DELETE removes it.
func TestExactJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, b, _ := post(t, ts.URL+"/v1/exact", exactReq)
	if st != http.StatusAccepted {
		t.Fatalf("POST /v1/exact: status %d: %s", st, b)
	}
	jb := decodeJob(t, b)
	if jb.JobID == "" || jb.State != "queued" || jb.Existing {
		t.Fatalf("accepted job: %+v", jb)
	}
	if jb.Poll != "/v1/exact/"+jb.JobID {
		t.Errorf("poll URL %q", jb.Poll)
	}

	done := pollJobAt(t, ts.URL+"/v1/exact/", jb.JobID)
	if done.State != "done" {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.Total != 2 || done.Done != done.Total {
		t.Errorf("progress %d/%d, want 2/2", done.Done, done.Total)
	}
	if len(done.Frontier) != 0 {
		t.Errorf("exact job carries a frontier body: %s", done.Frontier)
	}
	var eb ExactBody
	if err := json.Unmarshal(done.Exact, &eb); err != nil {
		t.Fatalf("exact body: %v", err)
	}
	if eb.App != "engine" || len(eb.Optima) != 2 || !eb.Certified {
		t.Fatalf("exact: app=%q optima=%d certified=%v", eb.App, len(eb.Optima), eb.Certified)
	}
	for i, o := range eb.Optima {
		if !o.Stats.Proven {
			t.Errorf("optimum %d not proven: %+v", i, o.Stats)
		}
		if o.OF > o.GreedyOF {
			t.Errorf("optimum %d: exact OF %v exceeds greedy %v", i, o.OF, o.GreedyOF)
		}
		if o.GapPct < 0 {
			t.Errorf("optimum %d: negative gap %v", i, o.GapPct)
		}
		if o.Cert != nil {
			t.Errorf("optimum %d: bound trail leaked onto the wire", i)
		}
	}
	// engine's greedy choice is provably suboptimal on the reference
	// geometry, so the anchor gap must be strictly positive.
	if eb.Optima[0].GapPct <= 0 {
		t.Errorf("engine anchor gap %v, want > 0", eb.Optima[0].GapPct)
	}

	// An identical POST deduplicates onto the finished job and returns
	// its result immediately.
	st2, b2, _ := post(t, ts.URL+"/v1/exact", exactReq)
	if st2 != http.StatusOK {
		t.Fatalf("dedupe POST: status %d: %s", st2, b2)
	}
	dup := decodeJob(t, b2)
	if !dup.Existing || dup.JobID != jb.JobID || dup.State != "done" {
		t.Fatalf("dedupe job: %+v", dup)
	}
	if !bytes.Equal(dup.Exact, done.Exact) {
		t.Error("deduplicated POST returned different exact bytes")
	}

	// DELETE removes the job; a later GET 404s.
	st3, b3 := del(t, ts.URL+"/v1/exact/"+jb.JobID)
	if st3 != http.StatusOK {
		t.Fatalf("DELETE: status %d: %s", st3, b3)
	}
	if st4, _ := get(t, ts.URL+"/v1/exact/"+jb.JobID); st4 != http.StatusNotFound {
		t.Errorf("GET after DELETE: status %d, want 404", st4)
	}
}

// TestExactExploreDistinctJobs pins the key-space separation: the same
// body POSTed to /v1/explore and /v1/exact must create two distinct
// jobs, never deduplicate across endpoints.
func TestExactExploreDistinctJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st1, b1, _ := post(t, ts.URL+"/v1/explore", exactReq)
	st2, b2, _ := post(t, ts.URL+"/v1/exact", exactReq)
	if st1 != http.StatusAccepted || st2 != http.StatusAccepted {
		t.Fatalf("POST statuses %d/%d: %s / %s", st1, st2, b1, b2)
	}
	j1, j2 := decodeJob(t, b1), decodeJob(t, b2)
	if j1.JobID == j2.JobID {
		t.Errorf("explore and exact deduplicated onto one job %s", j1.JobID)
	}
	if j2.Existing {
		t.Errorf("exact job marked existing: %+v", j2)
	}
}

// TestExactDeterministicAcrossServers is the service-level determinism
// contract: two independent servers produce byte-identical exact
// bodies for the same request.
func TestExactDeterministicAcrossServers(t *testing.T) {
	var bodies [2]json.RawMessage
	for i := range bodies {
		_, ts := newTestServer(t, Config{Workers: 2})
		st, b, _ := post(t, ts.URL+"/v1/exact", exactReq)
		if st != http.StatusAccepted {
			t.Fatalf("server %d: status %d: %s", i, st, b)
		}
		jb := pollJobAt(t, ts.URL+"/v1/exact/", decodeJob(t, b).JobID)
		if jb.State != "done" {
			t.Fatalf("server %d: job %s: %s", i, jb.State, jb.Error)
		}
		bodies[i] = jb.Exact
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("exact bodies differ across servers:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}

// TestExactValidation exercises the synchronous 400 paths and the
// unknown-job 404s.
func TestExactValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, body string
	}{
		{"no app", `{}`},
		{"unknown app", `{"app":"nope"}`},
		{"bad geometry", `{"app":"engine","geometries":[{"dsets":3}]}`},
		{"negative knob", `{"app":"engine","max_hw":-1}`},
		{"unknown field", `{"app":"engine","bogus":1}`},
	} {
		if st, b, _ := post(t, ts.URL+"/v1/exact", tc.body); st != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", tc.name, st, b)
		}
	}
	if st, _ := get(t, ts.URL+"/v1/exact/j999999"); st != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d", st)
	}
	if st, _ := del(t, ts.URL+"/v1/exact/j999999"); st != http.StatusNotFound {
		t.Errorf("DELETE unknown job: status %d", st)
	}
}

// TestExactMetricsExposition pins the exact endpoint's slice of the
// /metrics exposition: per-outcome request counters and the
// lppartd_jobs{state} gauges tracking the job table.
func TestExactMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	if st, b, _ := post(t, ts.URL+"/v1/exact", `{}`); st != http.StatusBadRequest {
		t.Fatalf("bad POST: status %d: %s", st, b)
	}
	st, b, _ := post(t, ts.URL+"/v1/exact", exactReq)
	if st != http.StatusAccepted {
		t.Fatalf("POST: status %d: %s", st, b)
	}
	if jb := pollJobAt(t, ts.URL+"/v1/exact/", decodeJob(t, b).JobID); jb.State != "done" {
		t.Fatalf("job ended %s: %s", jb.State, jb.Error)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mb, _ := io.ReadAll(resp.Body)
	out := string(mb)
	for _, want := range []string{
		`lppartd_requests_total{endpoint="exact",outcome="bad_request"} 1`,
		`lppartd_requests_total{endpoint="exact",outcome="shed_queue"} 0`,
		`lppartd_jobs{state="queued"} 0`,
		`lppartd_jobs{state="running"} 0`,
		`lppartd_jobs{state="done"} 1`,
		`lppartd_jobs{state="failed"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The ok counter covers the POST plus however many polls ran; pin
	// presence and a positive count rather than an exact value.
	i := strings.Index(out, `lppartd_requests_total{endpoint="exact",outcome="ok"} `)
	if i < 0 {
		t.Fatal(`/metrics missing lppartd_requests_total{endpoint="exact",outcome="ok"}`)
	}
	rest := out[i+len(`lppartd_requests_total{endpoint="exact",outcome="ok"} `):]
	if strings.HasPrefix(rest, "0\n") {
		t.Error("exact ok counter stuck at zero")
	}
}
