package serve

import (
	"errors"
	"net/http"

	"lppart/internal/behav"
	"lppart/internal/cache"
	"lppart/internal/report"
	"lppart/internal/system"
	"lppart/internal/trace"
)

// apiError is an error with an HTTP status and a JSON body. Parse errors
// carry the behavioral source position.
type apiError struct {
	Status int    `json:"-"`
	Err    string `json:"error"`
	// Line/Col locate front-end errors in the served source (1-based;
	// omitted otherwise).
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
}

func (e *apiError) Error() string { return e.Err }

func badRequest(msg string) *apiError {
	return &apiError{Status: http.StatusBadRequest, Err: msg}
}

func internalError(err error) *apiError {
	return &apiError{Status: http.StatusInternalServerError, Err: err.Error()}
}

// parseError maps a behav front-end failure onto the wire: a *SizeError
// becomes 413, a positioned *Error becomes 400 with line/column, and
// anything else a bare 400.
func parseError(err error) *apiError {
	var se *behav.SizeError
	if errors.As(err, &se) {
		return &apiError{Status: http.StatusRequestEntityTooLarge, Err: se.Error()}
	}
	var pe *behav.Error
	if errors.As(err, &pe) {
		return &apiError{Status: http.StatusBadRequest, Err: pe.Msg, Line: pe.Pos.Line, Col: pe.Pos.Col}
	}
	return badRequest(err.Error())
}

// DesignBody is one evaluated implementation on the wire (one Table 1
// row). Energies are in joules.
type DesignBody struct {
	EICache    float64 `json:"e_icache_j"`
	EDCache    float64 `json:"e_dcache_j"`
	EMem       float64 `json:"e_mem_j"`
	EBus       float64 `json:"e_bus_j"`
	EMuP       float64 `json:"e_mup_j"`
	EASIC      float64 `json:"e_asic_j"`
	ETotal     float64 `json:"e_total_j"`
	MuPCycles  int64   `json:"mup_cycles"`
	ASICCycles int64   `json:"asic_cycles"`
	GEQ        int     `json:"geq,omitempty"`
}

func designBody(d *system.Design) *DesignBody {
	if d == nil {
		return nil
	}
	return &DesignBody{
		EICache:    float64(d.EICache),
		EDCache:    float64(d.EDCache),
		EMem:       float64(d.EMem),
		EBus:       float64(d.EBus),
		EMuP:       float64(d.EMuP),
		EASIC:      float64(d.EASIC),
		ETotal:     float64(d.Total()),
		MuPCycles:  d.MuPCycles,
		ASICCycles: d.ASICCycles,
		GEQ:        d.GEQ,
	}
}

// CoreBody describes one chosen ASIC core.
type CoreBody struct {
	Cluster     string  `json:"cluster"`
	ResourceSet string  `json:"resource_set"`
	GEQ         int     `json:"geq"`
	Steps       int     `json:"control_steps"`
	Instances   int     `json:"instances"`
	OF          float64 `json:"of"`
	UASIC       float64 `json:"u_asic"`
	UMuP        float64 `json:"u_mup"`
}

// PartitionResponse is the body of a successful POST /v1/partition: the
// full decision trail plus the application's Table 1 rows, in both
// rendered-text and structured form.
type PartitionResponse struct {
	App            string      `json:"app"`
	Savings        float64     `json:"savings_pct"`
	TimeChange     float64     `json:"time_change_pct"`
	Initial        *DesignBody `json:"initial"`
	Partitioned    *DesignBody `json:"partitioned,omitempty"`
	Cores          []CoreBody  `json:"cores,omitempty"`
	BaselineOF     float64     `json:"baseline_of"`
	MemoHitRate    float64     `json:"memo_hit_rate"`
	Trail          string      `json:"trail"`
	Table1         string      `json:"table1"`
	Verified       bool        `json:"verified"`
	CacheSignature string      `json:"request_key"`
}

// buildPartitionResponse renders an evaluation. Everything in the body is
// a pure function of the evaluation, which is a pure function of the
// request — the byte-determinism contract hangs on that.
func buildPartitionResponse(ev *system.Evaluation, verified bool, key string) *PartitionResponse {
	resp := &PartitionResponse{
		App:            ev.App,
		Savings:        ev.Savings(),
		TimeChange:     ev.TimeChange(),
		Initial:        designBody(ev.Initial),
		Partitioned:    designBody(ev.Partitioned),
		BaselineOF:     ev.Decision.BaselineOF,
		MemoHitRate:    ev.Decision.Memo.HitRate(),
		Trail:          ev.Decision.Trail(),
		Table1:         report.Table1([]*system.Evaluation{ev}),
		Verified:       verified,
		CacheSignature: key,
	}
	for _, ch := range ev.Decision.Choices {
		resp.Cores = append(resp.Cores, CoreBody{
			Cluster:     ch.Region.Label,
			ResourceSet: ch.RS.Name,
			GEQ:         ch.Eval.GEQ,
			Steps:       ch.Binding.Steps,
			Instances:   len(ch.Binding.Instances),
			OF:          ch.Eval.OF,
			UASIC:       ch.Eval.UASIC,
			UMuP:        ch.Eval.UMuP,
		})
	}
	return resp
}

// GeometryBody is one swept cache geometry's outcome.
type GeometryBody struct {
	Sets      int     `json:"sets"`
	Assoc     int     `json:"assoc"`
	LineWords int     `json:"line_words"`
	SizeBytes int     `json:"size_bytes"`
	IHitRate  float64 `json:"i_hit_rate"`
	DHitRate  float64 `json:"d_hit_rate"`
	EICache   float64 `json:"e_icache_j"`
	EDCache   float64 `json:"e_dcache_j"`
	EMem      float64 `json:"e_mem_j"`
	EBus      float64 `json:"e_bus_j"`
	ETotal    float64 `json:"e_total_j"`
	Stalls    int64   `json:"stalls"`
	Summary   string  `json:"summary"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	App            string         `json:"app"`
	ISweep         bool           `json:"isweep"`
	Fetches        int64          `json:"trace_fetches"`
	Reads          int64          `json:"trace_reads"`
	Writes         int64          `json:"trace_writes"`
	TraceBytes     int64          `json:"trace_bytes"`
	ProfilerPasses int            `json:"profiler_passes"`
	Geometries     []GeometryBody `json:"geometries"`
	CacheSignature string         `json:"request_key"`
}

func buildSweepResponse(name string, isweep bool, tr *trace.Trace, pairs [][2]cache.Config, reps []trace.Report, key string) *SweepResponse {
	f, r, w := tr.Counts()
	resp := &SweepResponse{
		App:            name,
		ISweep:         isweep,
		Fetches:        f,
		Reads:          r,
		Writes:         w,
		TraceBytes:     tr.Bytes(),
		ProfilerPasses: trace.Passes(pairs),
		CacheSignature: key,
	}
	for i, rep := range reps {
		swept := pairs[i][1]
		if isweep {
			swept = pairs[i][0]
		}
		resp.Geometries = append(resp.Geometries, GeometryBody{
			Sets:      swept.Sets,
			Assoc:     swept.Assoc,
			LineWords: swept.LineWords,
			SizeBytes: swept.SizeBytes(),
			IHitRate:  rep.I.HitRate(),
			DHitRate:  rep.D.HitRate(),
			EICache:   float64(rep.EICache),
			EDCache:   float64(rep.EDCache),
			EMem:      float64(rep.EMem),
			EBus:      float64(rep.EBus),
			ETotal:    float64(rep.Total()),
			Stalls:    rep.Stalls,
			Summary:   rep.String(),
		})
	}
	return resp
}

// AppBody is one built-in application in GET /v1/apps.
type AppBody struct {
	Name            string  `json:"name"`
	Description     string  `json:"description"`
	PaperSavings    float64 `json:"paper_savings_pct"`
	PaperTimeChange float64 `json:"paper_time_change_pct"`
	SourceBytes     int     `json:"source_bytes"`
}

// AppsResponse is the body of GET /v1/apps.
type AppsResponse struct {
	Apps []AppBody `json:"apps"`
}
