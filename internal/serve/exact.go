package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"lppart/internal/cdfg"
	"lppart/internal/dse"
	"lppart/internal/milp"
)

// ExactRequest is the body of POST /v1/exact: the same tuple as an
// exploration request, but solved to the certified exact optimum per
// cache geometry instead of searched for a Pareto frontier. The
// endpoint is asynchronous — the response carries a job ID to poll —
// and the two endpoints never deduplicate onto each other's jobs.
type ExactRequest = ExploreRequest

// ExactOptimum is one geometry's proven minimum on the wire, paired
// with the Fig. 1 greedy objective it is measured against. The bound
// trail itself stays server-side: the worker re-checks every
// certificate with milp.Check before finishing the job, and Certified
// in the enclosing ExactBody reports that the replay succeeded.
type ExactOptimum struct {
	milp.Optimum
	GreedyOF float64 `json:"greedy_of"`
	// GapPct is 100*(greedy-exact)/greedy: how far the paper's greedy
	// round lands from the provable minimum on this geometry.
	GapPct float64 `json:"gap_pct"`
}

// ExactBody is a finished exact solve on the wire.
type ExactBody struct {
	App            string         `json:"app"`
	Optima         []ExactOptimum `json:"optima"`
	Certified      bool           `json:"certified"`
	CacheSignature string         `json:"request_key"`
}

func (s *Server) handleExact(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	var req ExactRequest
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("exact", "bad_request", start)
		return
	}
	in, key, aerr := req.canonicalize("exact/v1", s.cfg.MaxSourceBytes)
	if aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("exact", "bad_request", start)
		return
	}
	// The job is server-owned from birth: bounded by the configured
	// timeout, cancelled by Abort or DELETE, independent of this request.
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Timeout)
	snap, created, err := s.jobs.Create(key, cancel)
	if err != nil {
		cancel()
		res := errResult(&apiError{Status: http.StatusTooManyRequests, Err: "job table full"})
		writeResult(w, res)
		s.observe("exact", "shed_queue", start)
		return
	}
	if !created {
		cancel()
		res := &flightResult{status: http.StatusOK, body: jsonBody(jobBody("exact", snap, true))}
		writeResult(w, res)
		s.observe("exact", "ok", start)
		return
	}
	go s.runExact(ctx, cancel, snap.ID, &req, in, key)
	res := &flightResult{status: http.StatusAccepted, body: jsonBody(jobBody("exact", snap, false))}
	writeResult(w, res)
	s.observe("exact", "ok", start)
}

// runExact is the job's worker goroutine: it queues for an admission
// slot like every synchronous evaluation, then measures and solves
// serially inside that one slot. Every geometry is solved with a
// certificate and the certificate is replayed with milp.Check before
// the job finishes, so a "done" job carries only re-proven optima.
func (s *Server) runExact(ctx context.Context, cancel context.CancelFunc, id string,
	req *ExactRequest, in *exploreInputs, key string) {
	defer cancel()
	if aerr := s.adm.acquire(ctx); aerr != nil {
		switch aerr {
		case errQueueFull:
			s.jobs.Fail(id, "queue full")
		case errDraining:
			s.jobs.Fail(id, "draining")
		default:
			s.jobs.Fail(id, "deadline exceeded while queued")
		}
		return
	}
	defer s.adm.release()
	if !s.jobs.Start(id) {
		return // canceled while queued
	}
	ir, err := cdfg.Build(in.prog)
	if err != nil {
		s.jobs.Fail(id, err.Error())
		return
	}
	dcfg := dse.Config{
		Geometries: in.geoms,
		MaxHW:      req.MaxHW,
		Workers:    1,
	}
	dcfg.Sys.MaxInstrs = s.cfg.MaxInstrs
	dcfg.Sys.Part.F = req.F
	dcfg.Sys.Part.MaxClusters = req.MaxClusters
	dcfg.Sys.Part.GEQBudget = req.GEQBudget
	dcfg.Sys.Part.ResourceSets = in.sets
	dcfg.Sys.Part.Verify = req.Verify
	prep, err := dse.Prepare(ctx, ir, dcfg)
	if err != nil {
		if ctx.Err() != nil {
			s.jobs.Fail(id, "exact solve deadline exceeded")
			return
		}
		s.jobs.Fail(id, err.Error())
		return
	}
	res, err := milp.Solve(ctx, prep, milp.Config{
		MaxHW:       req.MaxHW,
		Workers:     1,
		Certificate: true,
		OnProgress:  func(done, total int) { s.jobs.Progress(id, done, total) },
	})
	if err != nil {
		if ctx.Err() != nil {
			s.jobs.Fail(id, "exact solve deadline exceeded")
			return
		}
		s.jobs.Fail(id, err.Error())
		return
	}
	optima := make([]ExactOptimum, 0, len(res.Optima))
	for _, o := range res.Optima {
		if cerr := milp.Check(o.Inst, o.Cert); cerr != nil {
			s.jobs.Fail(id, "certificate replay failed: "+cerr.Error())
			return
		}
		gOF, _, _ := o.Inst.Greedy()
		gap := 0.0
		if gOF != 0 {
			gap = 100 * (gOF - o.OF) / gOF
		}
		wire := *o
		wire.Cert = nil // proof replayed above; the trail stays server-side
		wire.Inst = nil
		optima = append(optima, ExactOptimum{Optimum: wire, GreedyOF: gOF, GapPct: gap})
	}
	body, merr := json.Marshal(&ExactBody{
		App:            res.App,
		Optima:         optima,
		Certified:      true,
		CacheSignature: key,
	})
	if merr != nil {
		s.jobs.Fail(id, "exact result not marshalable: "+merr.Error())
		return
	}
	s.jobs.Finish(id, body)
}

func (s *Server) handleExactGet(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		res := errResult(&apiError{Status: http.StatusNotFound, Err: "unknown job"})
		writeResult(w, res)
		s.observe("exact", outcomeOf(res), start)
		return
	}
	res := &flightResult{status: http.StatusOK, body: jsonBody(jobBody("exact", snap, false))}
	writeResult(w, res)
	s.observe("exact", "ok", start)
}

func (s *Server) handleExactDelete(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	snap, ok := s.jobs.Delete(r.PathValue("id"))
	if !ok {
		res := errResult(&apiError{Status: http.StatusNotFound, Err: "unknown job"})
		writeResult(w, res)
		s.observe("exact", outcomeOf(res), start)
		return
	}
	res := &flightResult{status: http.StatusOK, body: jsonBody(jobBody("exact", snap, false))}
	writeResult(w, res)
	s.observe("exact", "ok", start)
}
