// Cluster endpoints: the serving layer of the internal/cluster
// subsystem. A node in a fleet plays up to three roles at once —
//
//   - worker: POST /v1/shard runs one (geometry, root-subset) shard
//     synchronously under the same admission control as every other
//     evaluation, resolving the task through a shared prep cache so the
//     application is measured once per node, not once per shard;
//   - coordinator: POST /v1/cluster plans the shards, fans them out
//     over the peers (itself included, short-circuited in-process),
//     steals stragglers, donates incumbents, and merges the frontiers
//     deterministically — an async job polled like /v1/explore;
//   - router: /v1/partition is forwarded to the canonical key's
//     consistent-hash owner so the LRU + memostore cache tiers shard
//     cleanly across the fleet; /v1/batch amortizes many partition
//     calls over one request.
//
// Peer health is passive: a transport failure marks the peer down (the
// router stops picking it, the jobs aggregator skips it), any later
// success — including a shard completion — marks it back up.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"time"

	"lppart/internal/cluster"
	"lppart/internal/dse"
)

// forwardHeader marks a request already routed once; a node receiving
// it always computes locally, so a stale or disagreeing ring degrades
// to one extra hop instead of a proxy loop.
const forwardHeader = "X-Lppart-Forwarded"

// maxPeerResponseBytes caps a proxied peer response.
const maxPeerResponseBytes = 64 << 20

// defaultShardsPerGeom is the canonical shard width when a cluster
// request does not pick one. It is deliberately a fixed number — NOT
// derived from the peer count — so the resolved request, its key and
// its response body are identical on a 1-node and a 3-node cluster;
// several shards per peer is what keeps the plan steal-friendly.
const defaultShardsPerGeom = 8

// ClusterRequest is POST /v1/cluster: one exploration fanned out over
// the node's peers. The embedded tuple is the /v1/explore request; the
// extra knobs tune the coordinator.
type ClusterRequest struct {
	ExploreRequest
	// ShardsPerGeom is how many root-subset shards each geometry is cut
	// into (0: a fixed default; the merged points are identical at any
	// value, only the work report varies).
	ShardsPerGeom int `json:"shards_per_geom,omitempty"`
	// NoShare disables incumbent donation (the bench baseline).
	NoShare bool `json:"no_share,omitempty"`
	// Report includes the coordinator's work accounting in the finished
	// body. The report is timing-dependent (steals, duplicates and
	// broadcast arrival all race), so it is opt-in and part of the job
	// key: reporting and non-reporting requests never share a job, and
	// the default body stays a pure function of the request.
	Report bool `json:"report,omitempty"`
}

// canonCluster is the fully-defaulted cluster request behind the job
// key: the embedded tuple's canonical hash plus the coordinator knobs.
type canonCluster struct {
	Kind          string `json:"kind"` // "cluster/v1"
	Base          string `json:"base"`
	ShardsPerGeom int    `json:"shards_per_geom"`
	NoShare       bool   `json:"no_share"`
	Report        bool   `json:"report"`
}

// canonicalize validates the cluster request and returns the resolved
// inputs, the resolved shards-per-geometry width and the job key.
func (req *ClusterRequest) canonicalize(maxSourceBytes int) (*exploreInputs, int, string, *apiError) {
	in, base, aerr := req.ExploreRequest.canonicalize("cluster-base/v1", maxSourceBytes)
	if aerr != nil {
		return nil, 0, "", aerr
	}
	if req.ShardsPerGeom < 0 {
		return nil, 0, "", badRequest("shards_per_geom must be >= 0")
	}
	spg := req.ShardsPerGeom
	if spg == 0 {
		spg = defaultShardsPerGeom
	}
	c := canonCluster{
		Kind:          "cluster/v1",
		Base:          base,
		ShardsPerGeom: spg,
		NoShare:       req.NoShare,
		Report:        req.Report,
	}
	return in, spg, hashCanon(c), nil
}

// clusterTask lifts the resolved request onto the cluster wire: the
// fully-explicit tuple every worker node reconstructs the same
// measurement from.
func clusterTask(req *ClusterRequest, in *exploreInputs) cluster.Task {
	task := cluster.Task{
		App:          req.App,
		Source:       req.Source,
		F:            req.F,
		MaxClusters:  req.MaxClusters,
		GEQBudget:    req.GEQBudget,
		ResourceSets: in.sets,
		MaxHW:        req.MaxHW,
		Verify:       req.Verify,
	}
	for _, g := range in.geoms {
		task.Geometries = append(task.Geometries, [6]int{
			g[0].Sets, g[0].Assoc, g[0].LineWords,
			g[1].Sets, g[1].Assoc, g[1].LineWords,
		})
	}
	return task
}

// ClusterBody is a finished cluster exploration on the wire. Points,
// Shards and the key are deterministic — byte-identical at any peer
// count and any shard timing; the work report appears only when the
// request opted in.
type ClusterBody struct {
	App            string          `json:"app"`
	Points         []dse.Point     `json:"points"`
	Shards         int             `json:"shards"`
	CacheSignature string          `json:"request_key"`
	Report         *cluster.Report `json:"report,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	if !s.cfg.Coordinator {
		res := errResult(&apiError{Status: http.StatusForbidden, Err: "not a coordinator node"})
		writeResult(w, res)
		s.observe("cluster", outcomeOf(res), start)
		return
	}
	var req ClusterRequest
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("cluster", "bad_request", start)
		return
	}
	in, spg, key, aerr := req.canonicalize(s.cfg.MaxSourceBytes)
	if aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("cluster", "bad_request", start)
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Timeout)
	snap, created, err := s.jobs.Create(key, cancel)
	if err != nil {
		cancel()
		res := errResult(&apiError{Status: http.StatusTooManyRequests, Err: "job table full"})
		writeResult(w, res)
		s.observe("cluster", "shed_queue", start)
		return
	}
	if !created {
		cancel()
		res := &flightResult{status: http.StatusOK, body: jsonBody(jobBody("cluster", snap, true))}
		writeResult(w, res)
		s.observe("cluster", "ok", start)
		return
	}
	go s.runCluster(ctx, cancel, snap.ID, &req, in, spg, key)
	res := &flightResult{status: http.StatusAccepted, body: jsonBody(jobBody("cluster", snap, false))}
	writeResult(w, res)
	s.observe("cluster", "ok", start)
}

// runCluster is the coordinator's job goroutine. It occupies one
// admission slot for the whole run — the local executor's shards run
// inside that slot, remote shards only wait on HTTP in it — so a
// coordinator under load degrades exactly like any other evaluation.
func (s *Server) runCluster(ctx context.Context, cancel context.CancelFunc, id string,
	req *ClusterRequest, in *exploreInputs, spg int, key string) {
	defer cancel()
	if aerr := s.adm.acquire(ctx); aerr != nil {
		switch aerr {
		case errQueueFull:
			s.jobs.Fail(id, "queue full")
		case errDraining:
			s.jobs.Fail(id, "draining")
		default:
			s.jobs.Fail(id, "deadline exceeded while queued")
		}
		return
	}
	defer s.adm.release()
	if !s.jobs.Start(id) {
		return // canceled while queued
	}
	task := clusterTask(req, in)
	p, cfg, err := s.preps.Get(ctx, &task, s.cfg.MaxInstrs, s.cfg.MaxSourceBytes)
	if err != nil {
		if ctx.Err() != nil {
			s.jobs.Fail(id, "cluster exploration deadline exceeded")
			return
		}
		s.jobs.Fail(id, err.Error())
		return
	}
	sizes := make([]int, len(p.Geoms))
	for gi := range p.Geoms {
		sizes[gi] = p.PoolSize(gi)
	}
	local := &cluster.LocalRunner{Prep: p, Cfg: cfg}
	var runner cluster.Runner = local
	if len(s.cfg.Peers) > 0 {
		runner = &healthRunner{s: s, inner: &cluster.HTTPRunner{Self: s.cfg.Self, Local: local}}
	}
	opts := cluster.Options{
		Peers:          s.cfg.Peers,
		ShardsPerGeom:  spg,
		DisableSharing: req.NoShare,
		OnShardDone:    func(done, total int) { s.jobs.Progress(id, done, total) },
	}
	pts, rep, err := cluster.Run(ctx, runner, task, sizes, opts)
	if err != nil {
		if ctx.Err() != nil {
			s.jobs.Fail(id, "cluster exploration deadline exceeded")
			return
		}
		s.jobs.Fail(id, err.Error())
		return
	}
	s.recordClusterReport(rep)
	cb := &ClusterBody{App: p.IR.Name, Points: pts, Shards: rep.Shards, CacheSignature: key}
	if req.Report {
		cb.Report = rep
	}
	body, merr := json.Marshal(cb)
	if merr != nil {
		s.jobs.Fail(id, "cluster body not marshalable: "+merr.Error())
		return
	}
	s.jobs.Finish(id, body)
}

// recordClusterReport folds one coordinator run into the cluster
// instruments.
func (s *Server) recordClusterReport(rep *cluster.Report) {
	s.steals.Add(int64(rep.Steals))
	s.duplicates.Add(int64(rep.Duplicates))
	s.broadcasts.Add(int64(rep.Broadcasts))
	for _, ps := range rep.PeerShards {
		if c, ok := s.shardsByPeer[ps.Peer]; ok {
			c.Add(int64(ps.Shards))
		}
	}
}

func (s *Server) handleClusterGet(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		res := errResult(&apiError{Status: http.StatusNotFound, Err: "unknown job"})
		writeResult(w, res)
		s.observe("cluster", outcomeOf(res), start)
		return
	}
	res := &flightResult{status: http.StatusOK, body: jsonBody(jobBody("cluster", snap, false))}
	writeResult(w, res)
	s.observe("cluster", "ok", start)
}

func (s *Server) handleClusterDelete(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	snap, ok := s.jobs.Delete(r.PathValue("id"))
	if !ok {
		res := errResult(&apiError{Status: http.StatusNotFound, Err: "unknown job"})
		writeResult(w, res)
		s.observe("cluster", outcomeOf(res), start)
		return
	}
	res := &flightResult{status: http.StatusOK, body: jsonBody(jobBody("cluster", snap, false))}
	writeResult(w, res)
	s.observe("cluster", "ok", start)
}

// handleShard is the worker half of the cluster: one synchronous shard
// evaluation. Deliberately uncached — the incumbent snapshot varies per
// dispatch (same points, different counters), and the coordinator owns
// retry semantics, so a cache would only mask the work report.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	var req cluster.ShardRequest
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("shard", "bad_request", start)
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Timeout)
	defer cancel()
	if aerr := s.adm.acquire(ctx); aerr != nil {
		var res *flightResult
		switch aerr {
		case errQueueFull:
			res = errResult(&apiError{Status: http.StatusTooManyRequests, Err: "queue full"})
		case errDraining:
			res = errResult(&apiError{Status: http.StatusServiceUnavailable, Err: "draining"})
		default:
			res = errResult(&apiError{Status: http.StatusGatewayTimeout, Err: "deadline exceeded while queued"})
		}
		writeResult(w, res)
		s.observe("shard", outcomeOf(res), start)
		return
	}
	defer s.adm.release()
	p, cfg, err := s.preps.Get(ctx, &req.Task, s.cfg.MaxInstrs, s.cfg.MaxSourceBytes)
	if err == nil {
		var sres *cluster.ShardResult
		sres, err = cluster.RunShard(ctx, p, cfg, &req)
		if err == nil {
			res := &flightResult{status: http.StatusOK, body: jsonBody(sres)}
			writeResult(w, res)
			s.observe("shard", "ok", start)
			return
		}
	}
	var res *flightResult
	if ctx.Err() != nil {
		res = errResult(&apiError{Status: http.StatusGatewayTimeout, Err: "shard deadline exceeded"})
	} else {
		res = errResult(&apiError{Status: http.StatusUnprocessableEntity, Err: err.Error()})
	}
	writeResult(w, res)
	s.observe("shard", outcomeOf(res), start)
}

// maxBatchItems caps one /v1/batch request.
const maxBatchItems = 64

// BatchRequest is POST /v1/batch: many partition evaluations in one
// call. Items run serially through the same cache → coalesce →
// admission ladder as /v1/partition, so a batch is exactly as cheap as
// its cache misses and never holds more than one worker slot.
type BatchRequest struct {
	Requests []PartitionRequest `json:"requests"`
}

// BatchItem is one finished batch entry: the item's HTTP status plus
// the body /v1/partition would have served for it.
type BatchItem struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse preserves request order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	var req BatchRequest
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		writeResult(w, errResult(aerr))
		s.observe("batch", "bad_request", start)
		return
	}
	if len(req.Requests) == 0 {
		writeResult(w, errResult(badRequest("empty batch")))
		s.observe("batch", "bad_request", start)
		return
	}
	if len(req.Requests) > maxBatchItems {
		writeResult(w, errResult(badRequest("batch too large")))
		s.observe("batch", "bad_request", start)
		return
	}
	resp := BatchResponse{Results: make([]BatchItem, 0, len(req.Requests))}
	for i := range req.Requests {
		item := &req.Requests[i]
		prog, sets, key, aerr := item.canonicalize(s.cfg.MaxSourceBytes)
		if aerr != nil {
			resp.Results = append(resp.Results, BatchItem{Status: aerr.Status, Body: jsonBody(aerr)})
			continue
		}
		res := s.resultFor(r, key, s.partitionCompute(item, prog, sets, key))
		resp.Results = append(resp.Results, BatchItem{Status: res.status, Body: res.body})
	}
	writeResult(w, &flightResult{status: http.StatusOK, body: jsonBody(&resp)})
	s.observe("batch", "ok", start)
}

// JobSummary is one ledger row of GET /v1/jobs.
type JobSummary struct {
	// Node is the peer that owns the job ("" on a standalone node and
	// for this node's own rows).
	Node  string `json:"node,omitempty"`
	JobID string `json:"job_id"`
	Key   string `json:"key"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
}

// JobsResponse is the cluster-wide job ledger.
type JobsResponse struct {
	Jobs []JobSummary `json:"jobs"`
}

// handleJobs lists this node's jobs and — on a clustered node, unless
// the request was itself forwarded — every reachable peer's, so any
// node answers for the whole fleet's ledger.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:nondet latency metric only; never in a response body
	var resp JobsResponse
	for _, snap := range s.jobs.All() {
		resp.Jobs = append(resp.Jobs, JobSummary{
			JobID: snap.ID, Key: snap.Key, State: snap.State.String(),
			Done: snap.Done, Total: snap.Total, Error: snap.Error,
		})
	}
	if s.ring != nil && r.Header.Get(forwardHeader) == "" {
		resp.Jobs = append(resp.Jobs, s.peerJobs(r.Context())...)
	}
	writeResult(w, &flightResult{status: http.StatusOK, body: jsonBody(&resp)})
	s.observe("jobs", "ok", start)
}

// peerJobs collects the reachable peers' ledgers, sorted by peer URL so
// the aggregate order is stable.
func (s *Server) peerJobs(ctx context.Context) []JobSummary {
	var out []JobSummary
	peers := append([]string(nil), s.cfg.Peers...)
	sort.Strings(peers)
	for _, peer := range peers {
		if peer == s.cfg.Self || s.peerIsDown(peer) {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/jobs", nil)
		if err != nil {
			continue
		}
		req.Header.Set(forwardHeader, s.cfg.Self)
		hres, err := http.DefaultClient.Do(req)
		if err != nil {
			s.markPeer(peer, false)
			continue
		}
		raw, rerr := io.ReadAll(io.LimitReader(hres.Body, maxPeerResponseBytes))
		hres.Body.Close() //lint:err body already fully read (or rerr captures the failure)
		if rerr != nil || hres.StatusCode != http.StatusOK {
			continue
		}
		s.markPeer(peer, true)
		var pr JobsResponse
		if json.Unmarshal(raw, &pr) != nil {
			continue
		}
		for _, j := range pr.Jobs {
			j.Node = peer
			out = append(out, j)
		}
	}
	return out
}

// forwardPartition routes one canonicalized /v1/partition request to
// its consistent-hash owner, reporting whether it wrote the response.
// Local computation is the fallback for every failure mode — ring
// empty, owner down, transport error — so routing can only ever cost
// an extra hop, never an answer.
func (s *Server) forwardPartition(w http.ResponseWriter, r *http.Request,
	req *PartitionRequest, key string, start time.Time) bool {
	if s.ring == nil || r.Header.Get(forwardHeader) != "" {
		return false
	}
	owner := s.ring.Owner(key)
	if owner == "" || owner == s.cfg.Self || s.peerIsDown(owner) {
		return false
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return false
	}
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		owner+"/v1/partition", bytes.NewReader(payload))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardHeader, s.cfg.Self)
	hres, err := http.DefaultClient.Do(preq)
	if err != nil {
		s.markPeer(owner, false)
		return false
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hres.Body, maxPeerResponseBytes))
	if err != nil {
		s.markPeer(owner, false)
		return false
	}
	s.markPeer(owner, true)
	// The owner's answer is authoritative, sheds included: a 429 from
	// the owner is the cluster's backpressure, not a routing failure.
	res := &flightResult{status: hres.StatusCode, body: raw,
		cacheHit: hres.Header.Get("X-Cache") == "hit"}
	writeResult(w, res)
	s.observe("partition", outcomeOf(res), start)
	return true
}

// healthRunner wraps the HTTP shard runner with passive peer health:
// remote failures mark the peer down, successes mark it back up (the
// shard path doubles as the health probe, so a recovered peer rejoins
// as soon as the coordinator's retry loop touches it).
type healthRunner struct {
	s     *Server
	inner cluster.Runner
}

func (h *healthRunner) RunShard(ctx context.Context, peer string, req *cluster.ShardRequest) (*cluster.ShardResult, error) {
	res, err := h.inner.RunShard(ctx, peer, req)
	if peer != "" && peer != h.s.cfg.Self {
		h.s.markPeer(peer, err == nil)
	}
	return res, err
}

// markPeer records one passive health observation.
func (s *Server) markPeer(peer string, up bool) {
	s.peerMu.Lock()
	if up {
		delete(s.peerDown, peer)
	} else {
		s.peerDown[peer] = true
	}
	s.peerMu.Unlock()
}

// peerIsDown reports the last known health of a peer.
func (s *Server) peerIsDown(peer string) bool {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	return s.peerDown[peer]
}

// countPeers counts configured peers by health state for the
// lppartd_peers gauge (Self counts as up: a node scraping its own
// /metrics is evidently alive).
func (s *Server) countPeers(down bool) int {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	n := 0
	for _, p := range s.cfg.Peers {
		if s.peerDown[p] && p != s.cfg.Self {
			if down {
				n++
			}
		} else if !down {
			n++
		}
	}
	return n
}
