package serve

import (
	"context"
	"sync"
)

// flightGroup deduplicates identical in-flight requests: while one
// computation for a key is running, further arrivals for the same key
// wait for its result instead of burning a second worker slot on the
// same pure function. This is a stdlib-only sibling of
// golang.org/x/sync/singleflight with one deliberate difference: the
// computation runs in its own goroutine under the *server's* context
// (base context + per-request timeout), never the caller's, so a waiter
// that gives up early cannot kill the flight for everyone else — the
// flight runs to completion and warms the cache.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when res is set
	res  *flightResult
}

// flightResult is what a flight hands every waiter: a finished response
// body (success or API error) ready to replay.
type flightResult struct {
	status   int
	body     []byte
	cacheHit bool // served from the result cache, for the X-Cache header
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do returns key's result, starting fn in a new goroutine if no flight is
// active. The wait — not the computation — is bounded by ctx; a context
// error means this caller's deadline passed while the flight was still
// running.
func (g *flightGroup) do(ctx context.Context, key string, fn func() *flightResult) (*flightResult, error) {
	g.mu.Lock()
	c, ok := g.calls[key]
	if !ok {
		c = &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		go func() {
			res := fn()
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			c.res = res
			close(c.done)
		}()
	}
	g.mu.Unlock()
	select {
	case <-c.done:
		return c.res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
