package milp

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"lppart/internal/dse"
)

// TestHintedFrontierByteIdentical is the bound-donor regression: with
// milp's exact suffix floors, the Pareto search must prune at least as
// hard as the default hint — on MPG strictly harder than PR 5's
// recorded 80-of-140 configs — while returning a byte-identical
// frontier, which the exhaustive (DisableBound) run also pins.
func TestHintedFrontierByteIdentical(t *testing.T) {
	p := prepApp(t, "MPG", dse.Config{})
	ctx := context.Background()

	points := func(f *dse.Frontier) []byte {
		b, err := json.Marshal(f.Points)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	def, err := dse.ExplorePrep(ctx, p, dse.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := dse.ExplorePrep(ctx, p, dse.Config{Workers: 1, Hints: Hints{}})
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := dse.ExplorePrep(ctx, p, dse.Config{Workers: 1, DisableBound: true})
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(points(def), points(hinted)) {
		t.Fatal("hinted frontier differs from the default run")
	}
	if !bytes.Equal(points(def), points(exhaustive)) {
		t.Fatal("bounded frontier differs from the exhaustive run")
	}
	if hinted.Stats.Pruned < def.Stats.Pruned {
		t.Fatalf("hinted run pruned %d < default %d", hinted.Stats.Pruned, def.Stats.Pruned)
	}
	if hinted.Stats.Configs > def.Stats.Configs {
		t.Fatalf("hinted run evaluated %d configs > default %d", hinted.Stats.Configs, def.Stats.Configs)
	}
	// The PR 5 acceptance line: the default bound leaves MPG at 80 of
	// 140 exhaustive configs (43% pruned); the donated floors must beat
	// that strictly.
	if exhaustive.Stats.Configs != 140 {
		t.Logf("note: exhaustive MPG config count %d (PR 5 recorded 140)", exhaustive.Stats.Configs)
	}
	if hinted.Stats.Configs >= 80 {
		t.Fatalf("hinted run evaluated %d configs on MPG, want < 80 (default: %d, exhaustive: %d)",
			hinted.Stats.Configs, def.Stats.Configs, exhaustive.Stats.Configs)
	}
}

// TestHintedFrontierAllApps widens the byte-identical check to every
// app at default settings.
func TestHintedFrontierAllApps(t *testing.T) {
	for _, name := range []string{"3d", "ckey", "digs", "engine", "trick"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := prepApp(t, name, dse.Config{})
			ctx := context.Background()
			def, err := dse.ExplorePrep(ctx, p, dse.Config{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			hinted, err := dse.ExplorePrep(ctx, p, dse.Config{Workers: 1, Hints: Hints{}})
			if err != nil {
				t.Fatal(err)
			}
			db, _ := json.Marshal(def.Points)
			hb, _ := json.Marshal(hinted.Points)
			if !bytes.Equal(db, hb) {
				t.Fatal("hinted frontier differs from default")
			}
			if hinted.Stats.Pruned < def.Stats.Pruned {
				t.Fatalf("hinted pruned %d < default %d", hinted.Stats.Pruned, def.Stats.Pruned)
			}
		})
	}
}
