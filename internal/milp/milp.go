// Package milp is the exact-optimality oracle for the paper's
// partitioning objective: it provably minimizes OF over cluster subsets
// × resource sets for each explored cache geometry, where the Fig. 1
// loop is greedy and internal/dse prunes only toward Pareto fronts.
//
// The model is the 0-1 program the paper's Eq. 3 implies (following the
// assignment-formulation exemplars in PAPERS.md/SNIPPETS.md): one binary
// variable x_{j,s} per (cluster j, resource set s) pair, with
//
//	minimize  F·E(x)/E_0 + w_hw·GEQ(x)/budget + w_t·max(0, slowdown(x))
//	s.t.      Σ_s x_{j,s} <= 1             (one implementation per cluster)
//	          x_{j,s} + x_{j',s'} <= 1     (overlapping regions exclude)
//	          Σ x_{j,s} <= MaxHW           (Eq. 3's core budget)
//	          x_{j,s} = 0 unless the pick passes Fig. 1's acceptance
//	                    test (eligible, GEQ within budget, OF < F)
//
// Rather than shipping the nonseparable max(0,·) objective to an LP
// layer, the solver is a best-first branch-and-bound over the cluster
// lattice with a knapsack/cardinality-relaxation lower bound (bound.go)
// and a machine-checkable certificate of the bound trail (cert.go).
// Leaves are priced through the exact float expression tree of
// partition.Priced — the same accumulator splice internal/dse records —
// so the optimum is bit-comparable with both the greedy engine's OF and
// the frontier's points, and differentially testable against exhaustive
// enumeration through partition.Priced itself (brute.go).
//
// Everything is deterministic: per-geometry solves are serial, the
// geometry fan-out preserves input order, and heap ties break on node
// creation order — results are byte-identical at any worker count.
package milp

import (
	"fmt"

	"lppart/internal/cache"
	"lppart/internal/partition"
)

// Option is one admissible hardware implementation of a cluster: a
// resource set that passed the Fig. 1 acceptance test against the
// instance's baseline, priced into the additive frame deltas the
// objective needs. The fields mirror partition.Priced.Add exactly.
type Option struct {
	Set      string  `json:"set"`
	SetIndex int     `json:"set_index"`
	Saved    float64 `json:"saved"`  // E_µP the pick removes
	EASIC    float64 `json:"easic"`  // estimated ASIC + transfer energy
	CycEx    int64   `json:"cyc_ex"` // EstCycles - T0, the cycle delta
	GEQ      int     `json:"geq"`
	OF       float64 `json:"of"` // the pick's own Fig. 1 objective value
}

// Cluster is one 0-1 decision: leave the region in software or move it
// to hardware on one of its Options.
type Cluster struct {
	Region int    `json:"region"` // cdfg region ID
	Label  string `json:"label"`
	Instrs int64  `json:"instrs"` // µP instructions the move removes
	// Conflicts is the bitmask (over instance cluster indices) of
	// clusters whose regions overlap this one; picking both is
	// infeasible. BuildInstance fills it from partition.RegionsOverlap,
	// hand-built instances use SetOverlap.
	Conflicts uint64   `json:"conflicts"`
	Options   []Option `json:"options"`
}

// Instance is one self-contained 0-1 partitioning problem: the scalar
// baseline of a single cache geometry plus the viable (cluster, option)
// grid. It carries everything needed to re-price any configuration —
// the certificate checker trusts nothing else.
type Instance struct {
	App  string          `json:"app,omitempty"`
	Geom [2]cache.Config `json:"geom"`

	// The baseline scalars, mirroring partition.Priced: µP energy, rest
	// (caches+memory+bus) energy, per-fetch i-cache energy, total
	// energy E_0 and cycles T_0 of the all-software design.
	MuPE  float64 `json:"mupe"`
	RestE float64 `json:"reste"`
	IAcc  float64 `json:"iacc"`
	E0    float64 `json:"e0"`
	T0    int64   `json:"t0"`

	// The objective weights (partition.Config, defaults resolved).
	F              float64 `json:"f"`
	HardwareWeight float64 `json:"hardware_weight"`
	TimeWeight     float64 `json:"time_weight"`
	GEQBudget      int     `json:"geq_budget"`

	// MaxHW bounds how many clusters may move to hardware (Eq. 3's N).
	// <= 0 means no bound beyond the cluster count.
	MaxHW int `json:"max_hw"`

	Clusters []Cluster `json:"clusters"`
}

// maxPicks resolves MaxHW against the cluster count.
func (in *Instance) maxPicks() int {
	n := len(in.Clusters)
	if in.MaxHW > 0 && in.MaxHW < n {
		return in.MaxHW
	}
	return n
}

// SetOverlap marks clusters a and b as mutually exclusive.
func (in *Instance) SetOverlap(a, b int) {
	in.Clusters[a].Conflicts |= 1 << uint(b)
	in.Clusters[b].Conflicts |= 1 << uint(a)
}

// frame is the additive accumulator of a configuration, identical field
// for field with partition.Priced's snapshot — add/point/objective
// replay its float expression tree so a leaf's objective is
// bit-comparable with the search engines it oracles.
type frame struct {
	saved, easic  float64
	instrs, cycEx int64
	geq           int
}

// add splices one pick into a frame, mirroring partition.Priced.Add.
//
//lint:hotpath the branch-and-bound child expansion
func (in *Instance) add(f frame, j, oi int) frame {
	o := &in.Clusters[j].Options[oi]
	f.saved += o.Saved
	f.easic += o.EASIC
	f.instrs += in.Clusters[j].Instrs
	f.cycEx += o.CycEx
	f.geq += o.GEQ
	return f
}

// point clamps a frame into the objective triple, mirroring
// partition.Priced.Point.
//
//lint:hotpath priced at every search-tree node
func (in *Instance) point(f frame) (energy float64, cycles int64, geq int) {
	mu := in.MuPE - f.saved
	if mu < 0 {
		mu = 0
	}
	rest := in.RestE - float64(f.instrs)*in.IAcc
	if rest < 0 {
		rest = 0
	}
	c := in.T0 + f.cycEx
	if c < 1 {
		c = 1
	}
	return mu + f.easic + rest, c, f.geq
}

// objective scalarizes a frame with the Fig. 1 line 13 expression, in
// the exact operation order of partition's price tail.
//
//lint:hotpath priced at every search-tree node
func (in *Instance) objective(f frame) float64 {
	e, c, g := in.point(f)
	slow := float64(c)/float64(in.T0) - 1
	if slow < 0 {
		slow = 0
	}
	return in.F*e/in.E0 + in.HardwareWeight*float64(g)/float64(in.GEQBudget) +
		in.TimeWeight*slow
}

// replay recomputes the frame of a pick sequence by the same
// ascending-index add chain the solver and internal/dse's DFS use, so
// the floats come out bit-identical.
func (in *Instance) replay(picks []pick) frame {
	var f frame
	for _, p := range picks {
		f = in.add(f, p.j, p.oi)
	}
	return f
}

// feasible validates a pick sequence: strictly ascending cluster
// indices, in-range option indices, no overlap conflicts, within the
// pick budget.
func (in *Instance) feasible(picks []pick) error {
	if len(picks) > in.maxPicks() {
		return fmt.Errorf("milp: %d picks exceed budget %d", len(picks), in.maxPicks())
	}
	var mask uint64
	last := -1
	for _, p := range picks {
		if p.j <= last || p.j >= len(in.Clusters) {
			return fmt.Errorf("milp: pick order violation at cluster %d", p.j)
		}
		if p.oi < 0 || p.oi >= len(in.Clusters[p.j].Options) {
			return fmt.Errorf("milp: cluster %d has no option %d", p.j, p.oi)
		}
		if mask&(1<<uint(p.j)) != 0 {
			return fmt.Errorf("milp: cluster %d conflicts with an earlier pick", p.j)
		}
		mask |= in.Clusters[p.j].Conflicts
		last = p.j
	}
	return nil
}

// Greedy replays one round of the Fig. 1 greedy loop on the instance:
// the minimum-OF viable pick in (pre-selection rank, resource set)
// order, or the empty configuration (OF = F) when no pick beats the
// all-software objective. With MaxCores=1 — the paper's Table 1 setting
// — this is exactly the partition the greedy engine returns, priced by
// the same floats (pinned by TestGreedyMatchesPartition).
func (in *Instance) Greedy() (of float64, j, oi int) {
	of, j, oi = in.F, -1, -1
	for jj := range in.Clusters {
		for ii := range in.Clusters[jj].Options {
			if o := &in.Clusters[jj].Options[ii]; o.OF < of {
				of, j, oi = o.OF, jj, ii
			}
		}
	}
	return of, j, oi
}

// BuildInstance prices the (cluster, resource set) grid of one cache
// geometry through the shared DeltaEvaluator into a self-contained
// Instance. Only picks passing the Fig. 1 acceptance test (eligible AND
// OF below the all-software objective) become Options — the same
// branching restriction internal/dse applies, so the two engines search
// the same feasible space.
func BuildInstance(de *partition.DeltaEvaluator, base *partition.Baseline,
	geom [2]cache.Config, maxHW int) (*Instance, error) {
	pe := de.Evaluator()
	pcfg := pe.Config()
	_, pool := pe.Candidates(base)
	if len(pool) > 64 {
		return nil, fmt.Errorf("milp: pool of %d clusters exceeds the 64-bit conflict mask", len(pool))
	}
	in := &Instance{
		Geom:           geom,
		MuPE:           float64(base.MuPEnergy),
		RestE:          float64(base.RestEnergy),
		IAcc:           float64(base.ICacheAccessEnergy),
		E0:             float64(base.TotalEnergy),
		T0:             base.TotalCycles,
		F:              pcfg.F,
		HardwareWeight: pcfg.HardwareWeight,
		TimeWeight:     pcfg.TimeWeight,
		GEQBudget:      pcfg.GEQBudget,
		MaxHW:          maxHW,
		Clusters:       make([]Cluster, len(pool)),
	}
	for j, c := range pool {
		cl := &in.Clusters[j]
		cl.Region = c.Region.ID
		cl.Label = c.Region.Label
		cl.Instrs = c.MuP.Instrs
		for si := range pcfg.ResourceSets {
			e, err := de.Eval(base, c, si, false, false)
			if err != nil {
				return nil, err
			}
			if e.Eligible && e.OF < pcfg.F {
				cl.Options = append(cl.Options, Option{
					Set:      e.RS.Name,
					SetIndex: si,
					Saved:    float64(e.EMuPSaved),
					EASIC:    float64(e.EASIC),
					CycEx:    e.EstCycles - base.TotalCycles,
					GEQ:      e.GEQ,
					OF:       e.OF,
				})
			}
		}
	}
	for a := range pool {
		for b := a + 1; b < len(pool); b++ {
			if partition.RegionsOverlap(pool[a].Region, pool[b].Region) {
				in.SetOverlap(a, b)
			}
		}
	}
	return in, nil
}
