package milp

import (
	"fmt"
	"strings"
)

// CertNode is one node of the recorded bound trail, identified by its
// subproblem: the picks made so far (ascending (cluster, option) pairs)
// plus the suffix start. Value is the node's objective (expanded) or its
// relaxation lower bound (pruned).
type CertNode struct {
	Picks [][2]int `json:"picks"`
	Next  int      `json:"next"`
	Value float64  `json:"value"`
}

// Certificate is a machine-checkable optimality proof: the claimed
// optimum plus the complete bound trail of the branch-and-bound. Check
// replays it against an Instance with no trust in the solver — every
// objective and bound is recomputed from the instance, and the branching
// rule is re-derived, so a forged or truncated trail fails.
//
// The proof obligation splits as: (a) the claimed picks are feasible and
// price to OF (achievability); (b) walking the branching tree from the
// root, every node is its own priced configuration with objective >= OF,
// and is either childless, expanded (all children covered recursively),
// or pruned with a recomputed relaxation bound >= OF that dominates its
// whole subtree. The relaxation's admissibility itself is the
// DESIGN.md §10 lemma, not re-proven per run.
type Certificate struct {
	App   string   `json:"app,omitempty"`
	MaxHW int      `json:"max_hw"`
	OF    float64  `json:"of"`
	Picks [][2]int `json:"picks"`
	Nodes int64    `json:"nodes"`

	Expanded []CertNode `json:"expanded"`
	Pruned   []CertNode `json:"pruned"`
}

// certPicks converts the solver's compact picks to the wire form.
func certPicks(picks []pick) [][2]int {
	out := make([][2]int, len(picks))
	for i, p := range picks {
		out[i] = [2]int{p.j, p.oi}
	}
	return out
}

// nodeKey canonicalizes a subproblem identity for the cover maps.
func nodeKey(picks []pick, next int) string {
	var b strings.Builder
	for _, p := range picks {
		fmt.Fprintf(&b, "%d.%d,", p.j, p.oi)
	}
	fmt.Fprintf(&b, "|%d", next)
	return b.String()
}

// prune and expand record trail nodes; both are no-ops on a nil
// receiver so the solver's hot loop stays branch-light.
func (c *Certificate) prune(nd *node) {
	if c == nil {
		return
	}
	c.Pruned = append(c.Pruned, CertNode{Picks: certPicks(nd.picks), Next: nd.next, Value: nd.bound})
}

func (c *Certificate) expand(nd *node, of float64) {
	if c == nil {
		return
	}
	c.Expanded = append(c.Expanded, CertNode{Picks: certPicks(nd.picks), Next: nd.next, Value: of})
}

// Check verifies a certificate against an instance. A nil error proves
// cert.OF is the exact minimum objective over every feasible
// configuration of in (given the admissibility of the relaxation bound,
// which is a property of the formula, not of this run).
func Check(in *Instance, cert *Certificate) error {
	if cert == nil {
		return fmt.Errorf("milp: no certificate")
	}
	maxPicks := in.maxPicks()
	if cert.MaxHW != maxPicks {
		return fmt.Errorf("milp: certificate pick budget %d, instance has %d", cert.MaxHW, maxPicks)
	}

	// (a) Achievability: the claimed picks exist, are feasible, and
	// price to exactly the claimed objective.
	opt := make([]pick, len(cert.Picks))
	for i, p := range cert.Picks {
		opt[i] = pick{j: p[0], oi: p[1]}
	}
	if err := in.feasible(opt); err != nil {
		return fmt.Errorf("milp: claimed optimum infeasible: %w", err)
	}
	if of := in.objective(in.replay(opt)); of != cert.OF {
		return fmt.Errorf("milp: claimed optimum prices to %v, certificate says %v", of, cert.OF)
	}

	// (b) Coverage: rebuild the cover maps, then replay the branching
	// rule from the root.
	exp := make(map[string]float64, len(cert.Expanded))
	prn := make(map[string]float64, len(cert.Pruned))
	pks := make([]pick, 0, maxPicks)
	for _, cn := range cert.Expanded {
		pks = pks[:0]
		for _, p := range cn.Picks {
			pks = append(pks, pick{j: p[0], oi: p[1]})
		}
		exp[nodeKey(pks, cn.Next)] = cn.Value
	}
	for _, cn := range cert.Pruned {
		pks = pks[:0]
		for _, p := range cn.Picks {
			pks = append(pks, pick{j: p[0], oi: p[1]})
		}
		prn[nodeKey(pks, cn.Next)] = cn.Value
	}

	r := newRelaxation(in)
	n := len(in.Clusters)
	var walk func(picks []pick, mask uint64, f frame, next int) error
	walk = func(picks []pick, mask uint64, f frame, next int) error {
		if of := in.objective(f); of < cert.OF {
			return fmt.Errorf("milp: configuration %s beats the claimed optimum (%v < %v)",
				nodeKey(picks, next), of, cert.OF)
		}
		if len(picks) >= maxPicks || next >= n {
			return nil // childless: its own configuration was just checked
		}
		key := nodeKey(picks, next)
		if b, ok := prn[key]; ok {
			if rb := r.bound(f, next, len(picks)); rb != b {
				return fmt.Errorf("milp: node %s records bound %v, recomputed %v", key, b, rb)
			}
			if b < cert.OF {
				return fmt.Errorf("milp: node %s pruned with bound %v below the optimum %v", key, b, cert.OF)
			}
			return nil // the bound dominates the whole subtree
		}
		v, ok := exp[key]
		if !ok {
			return fmt.Errorf("milp: node %s neither expanded nor pruned", key)
		}
		if of := in.objective(f); of != v {
			return fmt.Errorf("milp: node %s records objective %v, recomputed %v", key, v, of)
		}
		for j := next; j < n; j++ {
			if mask&(1<<uint(j)) != 0 {
				continue
			}
			for oi := range in.Clusters[j].Options {
				if err := walk(append(picks, pick{j, oi}),
					mask|in.Clusters[j].Conflicts, in.add(f, j, oi), j+1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(nil, 0, frame{}, 0)
}
