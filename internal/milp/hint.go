package milp

import (
	"lppart/internal/dse"
	"lppart/internal/partition"
)

// Hints donates the exact oracle's bound machinery to internal/dse's
// Pareto search, three ways:
//
//  1. Exact suffix floors (dse.BoundHint). Where dse.DefaultHint sums
//     every per-cluster potential in the suffix — as if the search could
//     take all of them, conflicts and pick budget notwithstanding —
//     Hints solves the actual subproblem each bound query poses: the
//     maximum potential sum over at most k pairwise-non-overlapping
//     clusters from pool[i:] that also avoid the clusters already picked
//     on the path. The floors are pointwise <= the default's plain
//     suffix sums (a constrained maximum of non-negative terms never
//     exceeds the full sum), so the bound is pointwise tighter.
//  2. Branch floors (dse.BranchHint): the same subproblem with the
//     branch's first pick committed, so its floor pays that cluster's
//     own cheapest GEQ instead of the suffix-wide minimum.
//  3. Dominance cuts (dse.OptionCut): the solver's presolve — an
//     implementation pointwise no better than a sibling of the same
//     cluster is dropped from every configuration.
//
// All three only discount infeasible or dominated extensions, so the
// hinted search prunes at least as hard as the default and returns the
// identical frontier — the regression pinned by
// TestHintedFrontierByteIdentical.
type Hints struct{}

// HintFor solves the per-query cardinality/overlap subproblems over the
// same per-cluster potentials the default floors aggregate. Returning
// nil (pools beyond 24 clusters, where the exact subproblem sweeps
// would outweigh the search itself) falls back to dse.DefaultHint.
func (Hints) HintFor(in *dse.HintInputs) dse.BoundHint {
	n := len(in.Pool)
	if n > 24 {
		return nil
	}
	potE, potC, minGEQ := dse.Potentials(in)
	h := &exactHint{
		potE:   potE,
		potC:   potC,
		minGEQ: minGEQ,
		conf:   make([]uint64, n),
		viable: make([]bool, n),
		cut:    make([]map[int]bool, n),
	}
	for a := 0; a < n; a++ {
		h.viable[a] = len(in.Viable[a]) > 0
		for b := a + 1; b < n; b++ {
			if partition.RegionsOverlap(in.Pool[a].Region, in.Pool[b].Region) {
				h.conf[a] |= 1 << uint(b)
				h.conf[b] |= 1 << uint(a)
			}
		}
	}

	// The dominance cuts: within one cluster the implementations are
	// mutually exclusive, and their per-axis deltas against the shared
	// baseline are exact, so an option pointwise no better than a
	// sibling (energy delta EASIC-EMuPSaved — the fetch term is the
	// cluster's own and cancels — estimated cycles, and GEQ) can be
	// dropped from every configuration: swapping in the sibling improves
	// the point pointwise. Exact three-way ties keep the smallest set
	// index, matching the frontier's deterministic tie-break.
	for j := 0; j < n; j++ {
		vs := in.Viable[j]
		for _, si2 := range vs {
			e2 := in.Evals[j][si2]
			dE2 := float64(e2.EASIC) - float64(e2.EMuPSaved)
			for _, si1 := range vs {
				if si1 == si2 {
					continue
				}
				e1 := in.Evals[j][si1]
				dE1 := float64(e1.EASIC) - float64(e1.EMuPSaved)
				if dE1 > dE2 || e1.EstCycles > e2.EstCycles || e1.GEQ > e2.GEQ {
					continue
				}
				if si1 < si2 || dE1 < dE2 || e1.EstCycles < e2.EstCycles || e1.GEQ < e2.GEQ {
					if h.cut[j] == nil {
						h.cut[j] = make(map[int]bool)
					}
					h.cut[j][si2] = true
					break
				}
			}
		}
	}
	return h
}

// CutOption implements dse.OptionCut with the dominance cuts computed
// by HintFor.
func (h *exactHint) CutOption(j, si int) bool {
	return h.cut[j][si]
}

// exactHint answers each bound query by solving its suffix subproblem
// exactly: maximize the potential sum over <= k clusters from pool[i:],
// pairwise non-overlapping and disjoint from the picked path. Every
// discount is an infeasibility of the real search space, so the floor
// stays admissible; each query costs an O(n^k) DFS over <= 24 clusters
// at the search's tiny pick budgets — noise next to the pair pricing.
type exactHint struct {
	potE   []float64
	potC   []int64
	minGEQ []int
	conf   []uint64
	viable []bool
	cut    []map[int]bool // cluster -> dominated set indices
}

func (h *exactHint) SuffixFloor(i, k int, picked []int) (float64, int64, int) {
	if k < 0 {
		k = 0
	}
	var mask uint64
	for _, j := range picked {
		mask |= 1 << uint(j)
		mask |= h.conf[j]
	}
	dE := bestSumF(h.potE, h.conf, i, k, mask)
	dC := bestSumC(h.potC, h.conf, i, k, mask)
	minG := 0
	if k > 0 {
		for j := i; j < len(h.potE); j++ {
			if mask&(1<<uint(j)) != 0 || !h.viable[j] {
				continue
			}
			if minG == 0 || h.minGEQ[j] < minG {
				minG = h.minGEQ[j]
			}
		}
	}
	return dE, dC, minG
}

// BranchFloor floors the extensions whose first pick is cluster j: the
// branch commits to j's own potentials and cheapest viable GEQ, plus at
// most k-1 further non-overlapping picks from pool[j+1:]. Implements
// dse.BranchHint.
func (h *exactHint) BranchFloor(j, k int, picked []int) (float64, int64, int) {
	if k < 1 || !h.viable[j] {
		// No extension can start with a non-viable cluster; an
		// all-zero floor keeps the caller's dominance check trivially
		// true against any already-recorded point.
		return 0, 0, 0
	}
	mask := uint64(1)<<uint(j) | h.conf[j]
	for _, p := range picked {
		mask |= 1 << uint(p)
		mask |= h.conf[p]
	}
	dE := h.potE[j] + bestSumF(h.potE, h.conf, j+1, k-1, mask)
	dC := h.potC[j] + bestSumC(h.potC, h.conf, j+1, k-1, mask)
	return dE, dC, h.minGEQ[j]
}

// bestSumF maximizes the sum of at most k non-negative potentials from
// pot[i:], respecting the pairwise conflict masks and the excluded set
// in mask. Deterministic ascending-index DFS; cost O(n^k), negligible
// at the pool sizes and pick budgets the search runs with.
func bestSumF(pot []float64, conf []uint64, i, k int, mask uint64) float64 {
	if k == 0 {
		return 0
	}
	best := 0.0
	for j := i; j < len(pot); j++ {
		if mask&(1<<uint(j)) != 0 || pot[j] <= 0 {
			continue
		}
		if v := pot[j] + bestSumF(pot, conf, j+1, k-1, mask|conf[j]); v > best {
			best = v
		}
	}
	return best
}

// bestSumC is bestSumF over the integer cycle potentials.
func bestSumC(pot []int64, conf []uint64, i, k int, mask uint64) int64 {
	if k == 0 {
		return 0
	}
	var best int64
	for j := i; j < len(pot); j++ {
		if mask&(1<<uint(j)) != 0 || pot[j] <= 0 {
			continue
		}
		if v := pot[j] + bestSumC(pot, conf, j+1, k-1, mask|conf[j]); v > best {
			best = v
		}
	}
	return best
}
