package milp

import (
	"context"
	"testing"
)

// trapInstance is the hand-built case where greedy is provably
// suboptimal: cluster A has the single best pick, but overlaps both B
// and C, whose disjoint combination beats it.
//
//	A: saves 45 of 100 µP energy units → single-pick OF 105/150 = 0.70
//	B, C: save 30 each                 → single-pick OF 120/150 = 0.80
//	B+C: saves 60                      → OF 90/150 = 0.60 (optimal)
//
// Greedy takes A (minimum single-pick OF), blocking B and C.
func trapInstance() *Instance {
	in := &Instance{
		App:  "trap",
		MuPE: 100, RestE: 50, IAcc: 0, E0: 150, T0: 1000,
		F: 1, HardwareWeight: 0, TimeWeight: 1, GEQBudget: 16000,
		MaxHW: 2,
		Clusters: []Cluster{
			{Region: 1, Label: "A", Options: []Option{{Set: "s", Saved: 45, OF: 0.70, GEQ: 100}}},
			{Region: 2, Label: "B", Options: []Option{{Set: "s", Saved: 30, OF: 0.80, GEQ: 100}}},
			{Region: 3, Label: "C", Options: []Option{{Set: "s", Saved: 30, OF: 0.80, GEQ: 100}}},
		},
	}
	in.SetOverlap(0, 1)
	in.SetOverlap(0, 2)
	return in
}

// TestGreedySuboptimalInstance: the solver must find the B+C optimum
// greedy provably misses, with a checking certificate, and brute force
// must agree.
func TestGreedySuboptimalInstance(t *testing.T) {
	in := trapInstance()
	gOF, gj, _ := in.Greedy()
	if gj != 0 {
		t.Fatalf("greedy picked cluster %d, want A (0)", gj)
	}
	opt, err := SolveInstance(context.Background(), in, Config{Certificate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Picks) != 2 || opt.Picks[0].Label != "B" || opt.Picks[1].Label != "C" {
		t.Fatalf("solver picks %+v, want B+C", opt.Picks)
	}
	if want := in.objective(in.replay([]pick{{1, 0}, {2, 0}})); opt.OF != want {
		t.Fatalf("solver OF %v, want %v", opt.OF, want)
	}
	if opt.OF >= gOF {
		t.Fatalf("solver OF %v not strictly better than greedy %v", opt.OF, gOF)
	}
	ref := BruteForce(in)
	if ref.OF != opt.OF || ref.GEQ != opt.GEQ {
		t.Fatalf("brute force OF %v != solver %v", ref.OF, opt.OF)
	}
	if err := Check(in, opt.Cert); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}

// TestCheckRejectsForgery: a tampered certificate — better claimed
// optimum, weakened bound, or truncated trail — must fail to verify.
func TestCheckRejectsForgery(t *testing.T) {
	in := trapInstance()
	opt, err := SolveInstance(context.Background(), in, Config{Certificate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(in, opt.Cert); err != nil {
		t.Fatalf("genuine certificate rejected: %v", err)
	}

	forged := *opt.Cert
	forged.OF = opt.Cert.OF - 0.01 // claim an unachievable optimum
	if Check(in, &forged) == nil {
		t.Fatal("Check accepted a forged (lowered) optimum claim")
	}

	forged = *opt.Cert
	forged.OF = opt.Cert.OF + 0.01 // claim worse than an actual config
	forged.Picks = nil             // the empty config prices to F, not OF+0.01
	if Check(in, &forged) == nil {
		t.Fatal("Check accepted a forged (raised) optimum claim")
	}

	if len(opt.Cert.Expanded) > 0 {
		forged = *opt.Cert
		forged.Expanded = forged.Expanded[:len(forged.Expanded)-1]
		if Check(in, &forged) == nil {
			t.Fatal("Check accepted a truncated trail")
		}
	}

	if Check(in, nil) == nil {
		t.Fatal("Check accepted a nil certificate")
	}
}

// TestNodeLimit: an aborted solve must say so — Proven false, a bound
// below or at the incumbent, and no certificate.
func TestNodeLimit(t *testing.T) {
	in := trapInstance()
	opt, err := SolveInstance(context.Background(), in, Config{Certificate: true, NodeLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.Proven {
		t.Fatal("limited solve claims a proof")
	}
	if opt.Cert != nil {
		t.Fatal("limited solve emitted a certificate")
	}
	if opt.Stats.Bound > opt.OF {
		t.Fatalf("reported bound %v above incumbent %v", opt.Stats.Bound, opt.OF)
	}
	full, err := SolveInstance(context.Background(), in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if full.OF < opt.Stats.Bound {
		t.Fatalf("true optimum %v below the reported bound %v", full.OF, opt.Stats.Bound)
	}
}

// TestBoundAdmissibleOnTrap: the relaxation at the root must not exceed
// the true optimum.
func TestBoundAdmissibleOnTrap(t *testing.T) {
	in := trapInstance()
	r := newRelaxation(in)
	b := r.bound(frame{}, 0, 0)
	opt := BruteForce(in)
	if b > opt.OF {
		t.Fatalf("root bound %v exceeds the optimum %v", b, opt.OF)
	}
}
