package milp

import "math"

// The lower bound is a knapsack/cardinality relaxation of the objective.
// Write a configuration's objective as
//
//	OF = F·(clamp(µP−saved) + easic + clamp(rest−instrs·IAcc))/E_0
//	   + w_hw·GEQ/budget + w_t·max(0, cycEx/T_0)
//
// For a node with accumulated frame f that may still pick at most k
// clusters from Clusters[i:], relax three ways, each only lowering the
// value:
//
//  1. Drop the energy clamps: clamp(x) >= x, so the linear energy
//     linE = µP−saved + easic + rest−instrs·IAcc under-approximates.
//  2. Split the slowdown clamp per future pick with
//     max(0, a+Σb_j) >= max(0,a) + Σ min(0,b_j)
//     (if a+Σb <= 0 the left side is 0 and the right side is <= 0;
//     otherwise drop the clamp on the left and min() only shrinks each
//     b_j). a is the node's own cycEx/T_0, b_j a pick's cycle delta.
//  3. Relax the overlap-exclusion constraints and let each future
//     cluster contribute its cheapest per-pick objective delta
//     δ_j = min over options of
//     F·(easic−saved−instrs·IAcc)/E_0 + w_hw·GEQ/budget
//     + w_t·min(0, cycEx)/T_0,
//     with at most k picks — a cardinality-constrained selection whose
//     optimum D[k][i] = min(D[k][i+1], δ_i + D[k−1][i+1]) a small DP
//     table answers for every (k, suffix) pair. D <= 0 always (picking
//     nothing is allowed), so adding D never raises the bound.
//
// The relaxation is admissible in real arithmetic; downward() widens it
// by a margin dwarfing IEEE-754 rounding so it stays admissible under
// the float evaluation order too (see DESIGN.md §10).

// downward nudges a lower bound down by a relative plus absolute margin
// (~1e-9) that is orders of magnitude above the rounding error a few
// dozen float operations accumulate (~1e-13 relative) and orders below
// any meaningful objective difference. Lowering a lower bound can only
// cost pruning effectiveness, never correctness.
func downward(x float64) float64 {
	return x - (math.Abs(x)*1e-9 + 1e-12)
}

// relaxation precomputes the per-cluster deltas and the cardinality DP
// table for one instance.
type relaxation struct {
	in *Instance
	// delta[j] is the cheapest relaxed objective delta of moving cluster
	// j to hardware; +Inf when the cluster has no viable option.
	delta []float64
	// table[k][i] is the minimum relaxed delta sum achievable picking at
	// most k clusters from Clusters[i:], overlaps ignored. table[k][n]=0.
	table [][]float64
}

func newRelaxation(in *Instance) *relaxation {
	n := len(in.Clusters)
	maxK := in.maxPicks()
	r := &relaxation{in: in, delta: make([]float64, n)}
	for j := range in.Clusters {
		cl := &in.Clusters[j]
		best := math.Inf(1)
		for oi := range cl.Options {
			o := &cl.Options[oi]
			d := in.F*(o.EASIC-o.Saved-float64(cl.Instrs)*in.IAcc)/in.E0 +
				in.HardwareWeight*float64(o.GEQ)/float64(in.GEQBudget)
			if o.CycEx < 0 {
				d += in.TimeWeight * float64(o.CycEx) / float64(in.T0)
			}
			if d < best {
				best = d
			}
		}
		r.delta[j] = best
	}
	r.table = make([][]float64, maxK+1)
	for k := 0; k <= maxK; k++ {
		r.table[k] = make([]float64, n+1)
	}
	for k := 1; k <= maxK; k++ {
		for i := n - 1; i >= 0; i-- {
			v := r.table[k][i+1]
			if !math.IsInf(r.delta[i], 1) {
				if w := r.delta[i] + r.table[k-1][i+1]; w < v {
					v = w
				}
			}
			r.table[k][i] = v
		}
	}
	return r
}

// bound under-approximates the objective of every configuration that
// extends frame f (picked clusters below next, used picks so far) with
// clusters drawn from Clusters[next:].
//
//lint:hotpath evaluated once per open search-tree node
func (r *relaxation) bound(f frame, next, used int) float64 {
	in := r.in
	k := in.maxPicks() - used
	if k < 0 {
		k = 0
	}
	linE := in.MuPE - f.saved + f.easic + in.RestE - float64(f.instrs)*in.IAcc
	slow := float64(f.cycEx) / float64(in.T0)
	if slow < 0 {
		slow = 0
	}
	lb := in.F*linE/in.E0 + in.HardwareWeight*float64(f.geq)/float64(in.GEQBudget) +
		in.TimeWeight*slow + r.table[k][next]
	return downward(lb)
}
