package milp

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"lppart/internal/apps"
	"lppart/internal/cdfg"
	"lppart/internal/dse"
	"lppart/internal/system"
)

func buildApp(t *testing.T, name string) *cdfg.Program {
	t.Helper()
	a, err := apps.ByName(name)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	ir, err := a.Build()
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return ir
}

func prepApp(t *testing.T, name string, cfg dse.Config) *dse.Prep {
	t.Helper()
	p, err := dse.Prepare(context.Background(), buildApp(t, name), cfg)
	if err != nil {
		t.Fatalf("Prepare(%s): %v", name, err)
	}
	return p
}

// TestSolveMatchesBruteForce is the tentpole differential: on every app,
// with the pre-selection budget widened to 12 clusters, the
// branch-and-bound must match exhaustive enumeration THROUGH
// partition.Priced bit-exactly — objective, energy, cycles and GEQ — on
// every geometry, and its certificate must check.
func TestSolveMatchesBruteForce(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			var cfg dse.Config
			cfg.Sys.Part.MaxClusters = 12
			p := prepApp(t, a.Name, cfg)
			for gi := range p.Geoms {
				in, err := BuildInstance(p.Delta, p.Bases[gi], p.Geoms[gi], 3)
				if err != nil {
					t.Fatalf("BuildInstance(geom %d): %v", gi, err)
				}
				if len(in.Clusters) > 12 {
					t.Fatalf("geom %d: %d clusters, want <= 12", gi, len(in.Clusters))
				}
				in.App = a.Name
				opt, err := SolveInstance(context.Background(), in, Config{Certificate: true})
				if err != nil {
					t.Fatalf("SolveInstance(geom %d): %v", gi, err)
				}
				ref := BruteForce(in)
				if opt.OF != ref.OF {
					t.Fatalf("geom %d: solver OF %v != brute force %v", gi, opt.OF, ref.OF)
				}
				if opt.Energy != ref.Energy || opt.Cycles != ref.Cycles || opt.GEQ != ref.GEQ {
					t.Fatalf("geom %d: solver point (%v,%d,%d) != brute force (%v,%d,%d)",
						gi, opt.Energy, opt.Cycles, opt.GEQ, ref.Energy, ref.Cycles, ref.GEQ)
				}
				if !opt.Stats.Proven || opt.Stats.Bound != opt.OF {
					t.Fatalf("geom %d: solve not proven: %+v", gi, opt.Stats)
				}
				if opt.Stats.Nodes > ref.Stats.Nodes {
					t.Fatalf("geom %d: solver priced %d nodes, more than exhaustive %d",
						gi, opt.Stats.Nodes, ref.Stats.Nodes)
				}
				if err := Check(in, opt.Cert); err != nil {
					t.Fatalf("geom %d: certificate: %v", gi, err)
				}
			}
		})
	}
}

// TestGreedyMatchesPartition pins the Greedy() replay: on the anchor
// geometry the instance's one-round greedy pick — region, resource set
// and objective — must equal what the real Fig. 1 engine returns, priced
// by the same floats.
func TestGreedyMatchesPartition(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			ir := buildApp(t, a.Name)
			ev, err := system.EvaluateIRCtx(context.Background(), ir, system.Config{})
			if err != nil {
				t.Fatalf("EvaluateIRCtx: %v", err)
			}
			p, err := dse.Prepare(context.Background(), ir, dse.Config{})
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			// DefaultGeometries()[0] is the anchor (reference) pair.
			in, err := BuildInstance(p.Delta, p.Bases[0], p.Geoms[0], 2)
			if err != nil {
				t.Fatalf("BuildInstance: %v", err)
			}
			of, j, oi := in.Greedy()
			if ev.Decision.Chosen == nil {
				if j != -1 {
					t.Fatalf("engine chose nothing, instance greedy chose cluster %d", j)
				}
				return
			}
			if j < 0 {
				t.Fatalf("engine chose %s, instance greedy chose nothing", ev.Decision.Chosen.Region.Label)
			}
			cl, o := &in.Clusters[j], &in.Clusters[j].Options[oi]
			if cl.Region != ev.Decision.Chosen.Region.ID {
				t.Fatalf("greedy region %d (%s) != engine %d (%s)",
					cl.Region, cl.Label, ev.Decision.Chosen.Region.ID, ev.Decision.Chosen.Region.Label)
			}
			if o.Set != ev.Decision.Chosen.RS.Name {
				t.Fatalf("greedy set %s != engine %s", o.Set, ev.Decision.Chosen.RS.Name)
			}
			if of != ev.Decision.Chosen.Eval.OF {
				t.Fatalf("greedy OF %v != engine %v", of, ev.Decision.Chosen.Eval.OF)
			}
		})
	}
}

// TestSolveDeterministicAcrossWorkers: the full per-geometry fan-out
// must render byte-identically at any worker count.
func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	p := prepApp(t, "engine", dse.Config{})
	r1, err := Solve(context.Background(), p, Config{Workers: 1, Certificate: true})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Solve(context.Background(), p, Config{Workers: 4, Certificate: true})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := json.Marshal(r4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b4) {
		t.Fatal("Solve result differs between 1 and 4 workers")
	}
}

// TestExactNeverWorseThanGreedy: on every app and every geometry the
// proven optimum is <= the one-round greedy objective (the exact space
// contains every single pick and the empty configuration).
func TestExactNeverWorseThanGreedy(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			p := prepApp(t, a.Name, dse.Config{})
			res, err := Solve(context.Background(), p, Config{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for gi, opt := range res.Optima {
				gOF, _, _ := opt.Inst.Greedy()
				if opt.OF > gOF {
					t.Fatalf("geom %d: exact OF %v worse than greedy %v", gi, opt.OF, gOF)
				}
			}
		})
	}
}

// TestExactOptimaDominatedByFrontier: each geometry's exact optimum
// triple must be weakly dominated by (typically: present on) the merged
// Pareto frontier — the two engines price the same space with the same
// floats, so a frontier that misses an optimum would be a search bug.
func TestExactOptimaDominatedByFrontier(t *testing.T) {
	p := prepApp(t, "MPG", dse.Config{})
	res, err := Solve(context.Background(), p, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := dse.ExplorePrep(context.Background(), p, dse.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for gi, opt := range res.Optima {
		covered := false
		for i := range f.Points {
			q := &f.Points[i]
			if q.Energy <= opt.Energy && q.Cycles <= opt.Cycles && q.GEQ <= opt.GEQ {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("geom %d: exact optimum (%v,%d,%d) not dominated by any frontier point",
				gi, opt.Energy, opt.Cycles, opt.GEQ)
		}
	}
}
