package milp

import (
	"container/heap"
	"context"
	"fmt"
	"sync/atomic"

	"lppart/internal/cache"
	"lppart/internal/dse"
	"lppart/internal/explore"
	"lppart/internal/units"
)

// Config parameterizes one exact solve.
type Config struct {
	// MaxHW bounds how many clusters one configuration may move to
	// hardware, mirroring dse.Config.MaxHW. 0 means 2.
	MaxHW int
	// Workers bounds the geometry fan-out (<= 0: one per CPU). Results
	// are byte-identical at any worker count: each geometry's solve is
	// serial and the fan-out preserves input order.
	Workers int
	// Certificate records the bound trail — every expanded and pruned
	// node — so Check can replay the proof with no trust in the solver.
	Certificate bool
	// NodeLimit aborts branch-and-bound after this many priced
	// configurations (0: unlimited). A limited solve returns the best
	// incumbent with Stats.Proven=false and no certificate.
	NodeLimit int64
	// OnProgress, when set, is called after each geometry finishes with
	// (completed, total) counts. It may be called concurrently.
	OnProgress func(done, total int)
}

// Pick is one cluster→hardware assignment of an optimal configuration.
type Pick struct {
	Region   int     `json:"region"`
	Label    string  `json:"label"`
	Set      string  `json:"set"`
	SetIndex int     `json:"set_index"`
	GEQ      int     `json:"geq"`
	OF       float64 `json:"of"` // the pick's own Fig. 1 objective value
}

// SolveStats counts one instance solve's work.
type SolveStats struct {
	Nodes    int64 `json:"nodes"`    // configurations priced (search-tree nodes)
	Expanded int64 `json:"expanded"` // nodes whose children were generated
	Pruned   int64 `json:"pruned"`   // subtrees cut by the relaxation bound
	// Proven reports a completed proof: OF is the global minimum. False
	// only when NodeLimit or cancellation stopped the search early.
	Proven bool `json:"proven"`
	// Bound is the certified global lower bound: equal to OF when
	// Proven, else the smallest open-node bound at abort (OF − Bound is
	// the residual optimality gap).
	Bound float64 `json:"bound"`
}

// Optimum is the provably minimal configuration of one instance.
type Optimum struct {
	App    string          `json:"app,omitempty"`
	Geom   [2]cache.Config `json:"geom"`
	OF     float64         `json:"of"`
	Picks  []Pick          `json:"picks"` // empty: all-software is optimal
	Energy units.Energy    `json:"energy"`
	Cycles int64           `json:"cycles"`
	GEQ    int             `json:"geq"`
	Stats  SolveStats      `json:"stats"`

	// Cert is the bound trail (Config.Certificate), Inst the instance it
	// proves against; both excluded from JSON rendering by callers that
	// only need the table.
	Cert *Certificate `json:"cert,omitempty"`
	Inst *Instance    `json:"-"`
}

// pick is the compact (cluster index, option index) pair.
type pick struct{ j, oi int }

// lexLess orders pick sequences: elementwise by (j, oi), a strict
// prefix first. The canonical tie-break when two configurations price
// to the same objective.
func lexLess(a, b []pick) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			if a[i].j != b[i].j {
				return a[i].j < b[i].j
			}
			return a[i].oi < b[i].oi
		}
	}
	return len(a) < len(b)
}

// node is one open subproblem: the configuration picked so far plus the
// suffix Clusters[next:] it may still draw from.
type node struct {
	seq   int64 // creation order; deterministic heap tie-break
	bound float64
	next  int
	mask  uint64 // union of picked clusters' conflict masks
	f     frame
	picks []pick
}

// nodeHeap is a best-first min-heap on (bound, seq).
type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(a, b int) bool {
	if h[a].bound != h[b].bound {
		return h[a].bound < h[b].bound
	}
	return h[a].seq < h[b].seq
}
func (h nodeHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// SolveInstance runs the serial best-first branch-and-bound to the
// provable minimum of one instance (or to Config.NodeLimit). Only
// cfg.Certificate and cfg.NodeLimit are read here; fan-out and MaxHW
// belong to the instance/driver.
func SolveInstance(ctx context.Context, in *Instance, cfg Config) (*Optimum, error) {
	n := len(in.Clusters)
	if n > 64 {
		return nil, fmt.Errorf("milp: %d clusters exceed the 64-bit conflict mask", n)
	}
	maxPicks := in.maxPicks()
	r := newRelaxation(in)
	st := SolveStats{}
	var cert *Certificate
	if cfg.Certificate {
		cert = &Certificate{App: in.App, MaxHW: maxPicks}
	}

	// The incumbent starts at the empty (all-software) configuration —
	// always feasible, objective F when E_0 = µP+rest exactly.
	bestOF := in.objective(frame{})
	var bestPicks []pick
	st.Nodes = 1

	h := &nodeHeap{}
	var seq int64
	// consider bounds a fresh node and either queues it or records the
	// prune. Nodes that cannot have children (pick budget exhausted or
	// suffix empty) need no record: their own configuration was already
	// priced against the incumbent.
	consider := func(nd *node) {
		if len(nd.picks) >= maxPicks || nd.next >= n {
			return
		}
		nd.bound = r.bound(nd.f, nd.next, len(nd.picks))
		if nd.bound >= bestOF {
			st.Pruned++
			cert.prune(nd)
			return
		}
		nd.seq = seq
		seq++
		heap.Push(h, nd)
	}
	consider(&node{})

	limited := false
	for h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nd := heap.Pop(h).(*node)
		if nd.bound >= bestOF {
			// The incumbent improved since this node was queued. The heap
			// is bound-ordered, so every remaining open node is proven
			// dominated too: drain them all into the certificate.
			st.Pruned++
			cert.prune(nd)
			for h.Len() > 0 {
				st.Pruned++
				cert.prune(heap.Pop(h).(*node))
			}
			break
		}
		if cfg.NodeLimit > 0 && st.Nodes >= cfg.NodeLimit {
			// Aborted: report the residual gap, drop the (incomplete)
			// certificate.
			limited = true
			st.Bound = nd.bound
			break
		}
		st.Expanded++
		cert.expand(nd, in.objective(nd.f))
		for j := nd.next; j < n; j++ {
			if nd.mask&(1<<uint(j)) != 0 {
				continue
			}
			for oi := range in.Clusters[j].Options {
				st.Nodes++
				child := &node{
					next:  j + 1,
					mask:  nd.mask | in.Clusters[j].Conflicts,
					f:     in.add(nd.f, j, oi),
					picks: append(append(make([]pick, 0, len(nd.picks)+1), nd.picks...), pick{j, oi}),
				}
				of := in.objective(child.f)
				if of < bestOF || (of == bestOF && lexLess(child.picks, bestPicks)) {
					bestOF = of
					bestPicks = child.picks
				}
				consider(child)
			}
		}
	}
	st.Proven = !limited
	if st.Proven {
		st.Bound = bestOF
	} else {
		cert = nil
	}

	f := in.replay(bestPicks)
	e, c, g := in.point(f)
	opt := &Optimum{
		App:    in.App,
		Geom:   in.Geom,
		OF:     bestOF,
		Energy: units.Energy(e),
		Cycles: c,
		GEQ:    g,
		Stats:  st,
		Inst:   in,
	}
	for _, p := range bestPicks {
		cl := &in.Clusters[p.j]
		o := &cl.Options[p.oi]
		opt.Picks = append(opt.Picks, Pick{
			Region: cl.Region, Label: cl.Label,
			Set: o.Set, SetIndex: o.SetIndex, GEQ: o.GEQ, OF: o.OF,
		})
	}
	if cert != nil {
		cert.OF = bestOF
		cert.Picks = certPicks(bestPicks)
		cert.Nodes = st.Nodes
		opt.Cert = cert
	}
	return opt, nil
}

// Result is one application's exact optima, one per cache geometry.
// Objectives are normalized per geometry (each against its own E_0/T_0),
// so OF values compare within a geometry — greedy vs exact — not across
// geometries; cross-geometry comparisons use the objective triples.
type Result struct {
	App    string     `json:"app"`
	Optima []*Optimum `json:"optima"`
}

// Solve builds and exactly solves one instance per prepared geometry.
// The Prep supplies the measurement, the shared evaluator memo and the
// per-geometry baselines, so milp prices the identical floats the
// Pareto search does.
func Solve(ctx context.Context, p *dse.Prep, cfg Config) (*Result, error) {
	if cfg.MaxHW <= 0 {
		cfg.MaxHW = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = explore.DefaultWorkers()
	}
	total := len(p.Geoms)
	var done atomic.Int64
	optima, err := explore.MapCtx(ctx, cfg.Workers, p.Geoms, func(gi int, g [2]cache.Config) (*Optimum, error) {
		in, err := BuildInstance(p.Delta, p.Bases[gi], g, cfg.MaxHW)
		if err != nil {
			return nil, err
		}
		in.App = p.IR.Name
		o, err := SolveInstance(ctx, in, cfg)
		if err != nil {
			return nil, err
		}
		if cfg.OnProgress != nil {
			cfg.OnProgress(int(done.Add(1)), total)
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{App: p.IR.Name, Optima: optima}, nil
}
