package milp

import (
	"lppart/internal/iss"
	"lppart/internal/partition"
	"lppart/internal/units"
)

// BruteForce exhaustively enumerates every feasible configuration of
// the instance and returns the minimum-objective one. It deliberately
// does NOT reuse the solver's frame arithmetic: configurations are
// spliced through partition.Priced — the accumulator the greedy engine
// and internal/dse price with — and scalarized with the instance's
// weights, so a bit-exact match against SolveInstance is a differential
// proof that the solver's expression tree mirrors the repo's pricing
// path, not a tautology. Ties on the objective keep the
// lexicographically smallest pick sequence.
//
// Cost is O(options^maxPicks · clusters): the testing oracle for small
// instances, not a production path.
func BruteForce(in *Instance) *Optimum {
	base := &partition.Baseline{
		TotalEnergy:        units.Energy(in.E0),
		MuPEnergy:          units.Energy(in.MuPE),
		RestEnergy:         units.Energy(in.RestE),
		TotalCycles:        in.T0,
		ICacheAccessEnergy: units.Energy(in.IAcc),
	}
	// Synthetic candidates/evals carrying exactly the fields Priced.Add
	// reads.
	cands := make([]*partition.Candidate, len(in.Clusters))
	evals := make([][]*partition.SetEval, len(in.Clusters))
	for j := range in.Clusters {
		cl := &in.Clusters[j]
		cands[j] = &partition.Candidate{MuP: &iss.RegionStat{Instrs: cl.Instrs}}
		evals[j] = make([]*partition.SetEval, len(cl.Options))
		for oi := range cl.Options {
			o := &cl.Options[oi]
			evals[j][oi] = &partition.SetEval{
				EMuPSaved: units.Energy(o.Saved),
				EASIC:     units.Energy(o.EASIC),
				EstCycles: in.T0 + o.CycEx,
				GEQ:       o.GEQ,
			}
		}
	}

	scalarize := func(e float64, c int64, g int) float64 {
		slow := float64(c)/float64(in.T0) - 1
		if slow < 0 {
			slow = 0
		}
		return in.F*e/in.E0 + in.HardwareWeight*float64(g)/float64(in.GEQBudget) +
			in.TimeWeight*slow
	}

	pr := partition.NewPriced(base)
	maxPicks := in.maxPicks()
	bestE, bestC, bestG := pr.Point()
	bestOF := scalarize(bestE, bestC, bestG)
	var bestPicks []pick
	var nodes int64 = 1

	picks := make([]pick, 0, maxPicks)
	var walk func(i int, mask uint64)
	walk = func(i int, mask uint64) {
		if len(picks) >= maxPicks {
			return
		}
		for j := i; j < len(in.Clusters); j++ {
			if mask&(1<<uint(j)) != 0 {
				continue
			}
			for oi := range in.Clusters[j].Options {
				pr.Add(cands[j], evals[j][oi])
				picks = append(picks, pick{j, oi})
				nodes++
				e, c, g := pr.Point()
				of := scalarize(e, c, g)
				if of < bestOF || (of == bestOF && lexLess(picks, bestPicks)) {
					bestOF = of
					bestE, bestC, bestG = e, c, g
					bestPicks = append([]pick(nil), picks...)
				}
				walk(j+1, mask|in.Clusters[j].Conflicts)
				picks = picks[:len(picks)-1]
				pr.Remove()
			}
		}
	}
	walk(0, 0)

	opt := &Optimum{
		App:    in.App,
		Geom:   in.Geom,
		OF:     bestOF,
		Energy: units.Energy(bestE),
		Cycles: bestC,
		GEQ:    bestG,
		Stats:  SolveStats{Nodes: nodes, Proven: true, Bound: bestOF},
		Inst:   in,
	}
	for _, p := range bestPicks {
		cl := &in.Clusters[p.j]
		o := &cl.Options[p.oi]
		opt.Picks = append(opt.Picks, Pick{
			Region: cl.Region, Label: cl.Label,
			Set: o.Set, SetIndex: o.SetIndex, GEQ: o.GEQ, OF: o.OF,
		})
	}
	return opt
}
