package memostore

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func keyOf(s string) Key { return sha256.Sum256([]byte(s)) }

func TestPutGetRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		if err := s.Put(keyOf(fmt.Sprint(i)), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok, err := s.Get(keyOf(fmt.Sprint(i)))
		if err != nil || !ok {
			t.Fatalf("Get %d: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(v) != want {
			t.Fatalf("Get %d = %q, want %q", i, v, want)
		}
	}
	if _, ok, _ := s.Get(keyOf("absent")); ok {
		t.Fatal("Get of absent key reported ok")
	}
	// Overwrite: last Put wins.
	if err := s.Put(keyOf("7"), []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Get(keyOf("7")); string(v) != "newer" {
		t.Fatalf("after re-put, Get = %q", v)
	}
	if s.Len() != 100 {
		t.Fatalf("re-put changed Len to %d", s.Len())
	}
}

func TestReopenRestoresIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(keyOf(fmt.Sprint(i)), bytes.Repeat([]byte{byte(i)}, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Put(keyOf("3"), []byte("superseded-then-rewritten"))
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("reopened Len = %d, want 10", s2.Len())
	}
	if v, _, _ := s2.Get(keyOf("3")); string(v) != "superseded-then-rewritten" {
		t.Fatalf("newest record did not win after reopen: %q", v)
	}
	if v, _, _ := s2.Get(keyOf("5")); !bytes.Equal(v, bytes.Repeat([]byte{5}, 6)) {
		t.Fatalf("Get 5 after reopen = %v", v)
	}
	if s2.Skipped() != 0 {
		t.Fatalf("clean reopen skipped %d records", s2.Skipped())
	}
}

// TestTruncatedTailSkippedOnOpen is the corruption-handling contract:
// a log whose last record was cut short by a crash must be detected,
// the torn record skipped (and counted), and the store must still open
// and serve every record before the tear — and accept new Puts that
// survive a further reopen.
func TestTruncatedTailSkippedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(keyOf(fmt.Sprint(i)), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Tear the tail: chop 3 bytes off the last record's CRC.
	path := filepath.Join(dir, chunkName(0))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("store failed to open over a torn tail: %v", err)
	}
	if s2.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1", s2.Skipped())
	}
	if s2.Len() != 4 {
		t.Fatalf("Len after tear = %d, want 4 surviving records", s2.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok, err := s2.Get(keyOf(fmt.Sprint(i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("surviving record %d unreadable: %q ok=%v err=%v", i, v, ok, err)
		}
	}
	if _, ok, _ := s2.Get(keyOf("4")); ok {
		t.Fatal("torn record served as if intact")
	}
	// New appends must go to a fresh chunk, never past the tear.
	if err := s2.Put(keyOf("after-tear"), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if v, ok, _ := s3.Get(keyOf("after-tear")); !ok || string(v) != "fresh" {
		t.Fatalf("post-tear append lost on reopen: %q ok=%v", v, ok)
	}
	if s3.Len() != 5 {
		t.Fatalf("Len after reopen = %d, want 5", s3.Len())
	}
}

// TestCorruptMiddleStopsScan: flipping a byte inside a record breaks its
// CRC; the scan must stop at the first bad record (everything after it
// in that chunk is untrusted) but records before it survive.
func TestCorruptMiddleStopsScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for i := 0; i < 4; i++ {
		if err := s.Put(keyOf(fmt.Sprint(i)), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, s.actLen)
	}
	s.Close()

	// Flip one payload byte inside record 1 (bytes [offsets[0], offsets[1])).
	path := filepath.Join(dir, chunkName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[0]+40] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over mid-log corruption: %v", err)
	}
	defer s2.Close()
	if s2.Skipped() == 0 {
		t.Fatal("corruption not counted")
	}
	if v, ok, _ := s2.Get(keyOf("0")); !ok || string(v) != "payload-0" {
		t.Fatalf("record before corruption lost: %q ok=%v", v, ok)
	}
	if _, ok, _ := s2.Get(keyOf("1")); ok {
		t.Fatal("corrupt record served")
	}
}

func TestChunkRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0xAB}, 100)
	for i := 0; i < 20; i++ {
		if err := s.Put(keyOf(fmt.Sprint(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	entries, _ := os.ReadDir(dir)
	if len(entries) < 3 {
		t.Fatalf("expected multiple chunks, found %d files", len(entries))
	}
	s2, err := Open(dir, Options{ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("Len across chunks = %d, want 20", s2.Len())
	}
	for i := 0; i < 20; i++ {
		if v, ok, _ := s2.Get(keyOf(fmt.Sprint(i))); !ok || !bytes.Equal(v, val) {
			t.Fatalf("record %d lost across rotation", i)
		}
	}
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(keyOf("k"), []byte("v"))
	s.Close()

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if v, ok, _ := ro.Get(keyOf("k")); !ok || string(v) != "v" {
		t.Fatalf("read-only Get = %q ok=%v", v, ok)
	}
	if err := ro.Put(keyOf("k2"), []byte("x")); err != ErrReadOnly {
		t.Fatalf("read-only Put err = %v, want ErrReadOnly", err)
	}
	// A read-only view of a directory that does not exist yet is an
	// empty store, not an error (fleet nodes may race the writer).
	empty, err := Open(filepath.Join(dir, "missing"), Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if empty.Len() != 0 {
		t.Fatal("phantom records in missing dir")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		// Every key written twice: compaction must drop the stale half.
		s.Put(keyOf(fmt.Sprint(i%10)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Fatalf("Len after compact = %d, want 10", s.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok, _ := s.Get(keyOf(fmt.Sprint(i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i+10) {
			t.Fatalf("key %d after compact = %q ok=%v", i, v, ok)
		}
	}
	// Store stays writable after compaction and survives reopen.
	if err := s.Put(keyOf("post"), []byte("compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 11 {
		t.Fatalf("Len after compact+reopen = %d, want 11", s2.Len())
	}
	if v, ok, _ := s2.Get(keyOf("post")); !ok || string(v) != "compact" {
		t.Fatalf("post-compact append lost: %q ok=%v", v, ok)
	}
}
