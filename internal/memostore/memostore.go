// Package memostore is a persistent content-addressed memo: a chunked
// on-disk append-log mapping canonical SHA-256 keys to byte values,
// built from the standard library only. It backs the design-space
// explorer's measurement/sweep memo and the lppartd result cache, so a
// restarted process (or a fleet node sharing the directory read-only)
// answers previously-computed requests without recomputing them.
//
// On-disk format: a directory of chunk files named chunk-NNNNNN.log,
// each a sequence of records
//
//	magic   [4]byte  "lpm1"
//	key     [32]byte SHA-256 of the canonical request encoding
//	vlen    uvarint  value length in bytes
//	value   [vlen]byte
//	crc     [4]byte  little-endian IEEE CRC-32 over key+value
//
// Appends go to the highest-numbered chunk and rotate to a fresh chunk
// past Options.ChunkBytes. Writers re-put a key by appending a newer
// record; scan order (chunk number, then offset) makes the last record
// win, so compaction is optional. A torn tail — a record cut short by a
// crash — is detected on open, counted in Skipped, and never scanned
// past; the opener starts a fresh chunk, so a corrupted tail can only
// lose the records after the tear, never the store. Compact rewrites the
// live records through a temp file and an atomic rename.
package memostore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

var magic = [4]byte{'l', 'p', 'm', '1'}

// Key is a canonical SHA-256 content address.
type Key = [32]byte

// Options configures Open.
type Options struct {
	// ReadOnly opens the store for Get only: no lock is required, no
	// chunk is created, and Put returns ErrReadOnly. Several processes
	// may share a directory read-only while one writer appends.
	ReadOnly bool
	// ChunkBytes rotates the append chunk past this size; <= 0 selects
	// 4 MiB.
	ChunkBytes int64
}

// ErrReadOnly is returned by Put on a read-only store.
var ErrReadOnly = errors.New("memostore: store is read-only")

// loc addresses one record's value bytes inside a chunk.
type loc struct {
	chunk int // index into Store.chunks
	off   int64
	vlen  int
}

// Store is a persistent content-addressed memo. Safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	dir      string
	readOnly bool
	maxChunk int64

	chunks []*os.File // read handles, in scan (chunk-number) order
	names  []string
	active *os.File // append handle (nil when read-only)
	actLen int64

	index   map[Key]loc
	skipped int64
}

// chunkName formats the n-th chunk's file name.
func chunkName(n int) string { return fmt.Sprintf("chunk-%06d.log", n) }

// Open opens (or creates) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = 4 << 20
	}
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("memostore: %w", err)
		}
	}
	s := &Store{
		dir:      dir,
		readOnly: opts.ReadOnly,
		maxChunk: opts.ChunkBytes,
		index:    make(map[Key]loc),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if opts.ReadOnly && os.IsNotExist(err) {
			return s, nil // empty read-only view of a not-yet-created dir
		}
		return nil, fmt.Errorf("memostore: %w", err)
	}
	var names []string
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "chunk-%06d.log", &n); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	torn := false
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("memostore: %w", err)
		}
		ci := len(s.chunks)
		s.chunks = append(s.chunks, f)
		s.names = append(s.names, name)
		tornHere, err := s.scanChunk(ci, f)
		if err != nil {
			s.Close() //lint:err best-effort cleanup of a failing open
			return nil, err
		}
		torn = torn || tornHere
	}
	if !opts.ReadOnly {
		if err := s.openActive(torn); err != nil {
			s.Close() //lint:err best-effort cleanup of a failing open
			return nil, err
		}
	}
	return s, nil
}

// scanChunk replays one chunk into the index. It returns whether the
// chunk ends in a torn or corrupt record (counted in skipped); scanning
// stops at the first bad record since nothing after it can be trusted.
func (s *Store) scanChunk(ci int, f *os.File) (torn bool, err error) {
	r := &countReader{r: f}
	br := &byteReader{r: r}
	for {
		var m [4]byte
		if _, err := io.ReadFull(r, m[:]); err != nil {
			if err == io.EOF {
				return false, nil // clean end
			}
			s.skipped++
			return true, nil
		}
		if m != magic {
			s.skipped++
			return true, nil
		}
		var key Key
		if _, err := io.ReadFull(r, key[:]); err != nil {
			s.skipped++
			return true, nil
		}
		vlen, err := binary.ReadUvarint(br)
		if err != nil || vlen > 1<<31 {
			s.skipped++
			return true, nil
		}
		val := make([]byte, vlen)
		valOff := r.n
		if _, err := io.ReadFull(r, val); err != nil {
			s.skipped++
			return true, nil
		}
		var crcb [4]byte
		if _, err := io.ReadFull(r, crcb[:]); err != nil {
			s.skipped++
			return true, nil
		}
		c := crc32.NewIEEE()
		c.Write(key[:])
		c.Write(val)
		if binary.LittleEndian.Uint32(crcb[:]) != c.Sum32() {
			s.skipped++
			return true, nil
		}
		s.index[key] = loc{chunk: ci, off: valOff, vlen: int(vlen)}
	}
}

// openActive prepares the append chunk: the highest existing chunk when
// its tail is clean and under the rotation bound, a fresh chunk
// otherwise (in particular after a torn tail — never append past a
// tear).
func (s *Store) openActive(torn bool) error {
	next := 0
	if n := len(s.names); n > 0 {
		fmt.Sscanf(s.names[n-1], "chunk-%06d.log", &next) //lint:err a non-matching name leaves next at its zero default
		next++
		if !torn {
			last := s.names[n-1]
			st, err := os.Stat(filepath.Join(s.dir, last))
			if err == nil && st.Size() < s.maxChunk {
				f, err := os.OpenFile(filepath.Join(s.dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return fmt.Errorf("memostore: %w", err)
				}
				s.active = f
				s.actLen = st.Size()
				return nil
			}
		}
	}
	return s.newChunk(next)
}

// newChunk creates chunk n and makes it both scannable and active.
func (s *Store) newChunk(n int) error {
	name := chunkName(n)
	path := filepath.Join(s.dir, name)
	w, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("memostore: %w", err)
	}
	r, err := os.Open(path)
	if err != nil {
		w.Close() //lint:err best-effort cleanup, the open error propagates
		return fmt.Errorf("memostore: %w", err)
	}
	if s.active != nil {
		s.active.Close() //lint:err best-effort close of the replaced chunk
	}
	s.active = w
	s.actLen = 0
	s.chunks = append(s.chunks, r)
	s.names = append(s.names, name)
	return nil
}

// Get returns the newest value stored for key.
func (s *Store) Get(key Key) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	val := make([]byte, l.vlen)
	if _, err := s.chunks[l.chunk].ReadAt(val, l.off); err != nil {
		return nil, false, fmt.Errorf("memostore: read %s: %w", s.names[l.chunk], err)
	}
	return val, true, nil
}

// Put appends a record for key; a later Get returns val. Re-putting a
// key supersedes the previous record.
func (s *Store) Put(key Key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	if s.actLen >= s.maxChunk {
		var next int
		fmt.Sscanf(s.names[len(s.names)-1], "chunk-%06d.log", &next) //lint:err a non-matching name leaves next at its zero default
		if err := s.newChunk(next + 1); err != nil {
			return err
		}
	}
	var hdr [4 + 32 + binary.MaxVarintLen64]byte
	n := copy(hdr[:], magic[:])
	n += copy(hdr[n:], key[:])
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	c := crc32.NewIEEE()
	c.Write(key[:])
	c.Write(val)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], c.Sum32())

	rec := make([]byte, 0, n+len(val)+4)
	rec = append(rec, hdr[:n]...)
	rec = append(rec, val...)
	rec = append(rec, crcb[:]...)
	if _, err := s.active.Write(rec); err != nil {
		return fmt.Errorf("memostore: append: %w", err)
	}
	valOff := s.actLen + int64(n)
	s.actLen += int64(len(rec))
	s.index[key] = loc{chunk: len(s.chunks) - 1, off: valOff, vlen: len(val)}
	return nil
}

// Len returns the number of distinct keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Skipped returns how many corrupt or torn records open-time scanning
// detected and skipped.
func (s *Store) Skipped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Compact rewrites the live records (newest per key, in deterministic
// key order) into a single fresh chunk via a temp file and an atomic
// rename, then removes the superseded chunks. Crash-safe: a crash
// before the rename leaves the old chunks untouched; a crash after it
// leaves duplicates that the next open resolves by scan order.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	keys := make([]Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	var next int
	if n := len(s.names); n > 0 {
		fmt.Sscanf(s.names[n-1], "chunk-%06d.log", &next) //lint:err a non-matching name leaves next at its zero default
		next++
	}
	tmp := filepath.Join(s.dir, "compact.tmp")
	w, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("memostore: compact: %w", err)
	}
	for _, k := range keys {
		l := s.index[k]
		val := make([]byte, l.vlen)
		if _, err := s.chunks[l.chunk].ReadAt(val, l.off); err != nil {
			w.Close()      //lint:err best-effort cleanup, the compact error propagates
			os.Remove(tmp) //lint:err best-effort cleanup, the compact error propagates
			return fmt.Errorf("memostore: compact read: %w", err)
		}
		var hdr [4 + 32 + binary.MaxVarintLen64]byte
		n := copy(hdr[:], magic[:])
		n += copy(hdr[n:], k[:])
		n += binary.PutUvarint(hdr[n:], uint64(len(val)))
		c := crc32.NewIEEE()
		c.Write(k[:])
		c.Write(val)
		var crcb [4]byte
		binary.LittleEndian.PutUint32(crcb[:], c.Sum32())
		if _, err := w.Write(hdr[:n]); err == nil {
			if _, err = w.Write(val); err == nil {
				_, err = w.Write(crcb[:])
			}
		}
		if err != nil {
			w.Close()      //lint:err best-effort cleanup, the compact error propagates
			os.Remove(tmp) //lint:err best-effort cleanup, the compact error propagates
			return fmt.Errorf("memostore: compact write: %w", err)
		}
	}
	if err := w.Sync(); err != nil {
		w.Close()      //lint:err best-effort cleanup, the sync error propagates
		os.Remove(tmp) //lint:err best-effort cleanup, the sync error propagates
		return fmt.Errorf("memostore: compact sync: %w", err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp) //lint:err best-effort cleanup, the close error propagates
		return fmt.Errorf("memostore: compact close: %w", err)
	}
	dst := filepath.Join(s.dir, chunkName(next))
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp) //lint:err best-effort cleanup, the rename error propagates
		return fmt.Errorf("memostore: compact rename: %w", err)
	}
	// Swap state over to the compacted chunk and delete the old ones.
	old := s.names[:len(s.names):len(s.names)]
	for _, f := range s.chunks {
		f.Close() //lint:err best-effort close of a superseded chunk
	}
	if s.active != nil {
		s.active.Close() //lint:err best-effort close of a superseded chunk
		s.active = nil
	}
	s.chunks, s.names = nil, nil
	s.index = make(map[Key]loc, len(keys))
	r, err := os.Open(dst)
	if err != nil {
		return fmt.Errorf("memostore: compact reopen: %w", err)
	}
	s.chunks = append(s.chunks, r)
	s.names = append(s.names, chunkName(next))
	if _, err := s.scanChunk(0, r); err != nil {
		return err
	}
	for _, name := range old {
		os.Remove(filepath.Join(s.dir, name)) //lint:err best-effort removal of superseded chunks
	}
	return s.openActive(false)
}

// Close releases all file handles. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.chunks {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.active != nil {
		if err := s.active.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.chunks, s.active = nil, nil
	return first
}

// countReader counts consumed bytes so scanChunk knows record offsets.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// byteReader adapts countReader for binary.ReadUvarint without
// double-buffering (a bufio.Reader would desynchronize the count).
type byteReader struct{ r *countReader }

func (b *byteReader) ReadByte() (byte, error) {
	var one [1]byte
	_, err := io.ReadFull(b.r, one[:])
	return one[0], err
}
