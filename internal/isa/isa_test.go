package isa

import (
	"strings"
	"testing"
)

func TestOpcodeStrings(t *testing.T) {
	cases := map[Opcode]string{
		NOP: "nop", HALT: "halt", LI: "li", ADD: "add", MUL: "mul",
		CMPLE: "cmple", LD: "ld", ST: "st", BEQZ: "beqz", CALL: "call",
		JR: "jr", ASIC: "asic",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(op), got, want)
		}
	}
	if got := Opcode(99).String(); got != "Opcode(99)" {
		t.Errorf("invalid opcode String() = %q", got)
	}
}

func TestOpcodeClassPredicates(t *testing.T) {
	for _, op := range []Opcode{B, BEQZ, BNEZ, CALL, JR} {
		if !op.IsBranch() {
			t.Errorf("%v must be a branch", op)
		}
	}
	for _, op := range []Opcode{ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SLL, SRA, CMPEQ, CMPGE} {
		if !op.IsBinaryALU() {
			t.Errorf("%v must be binary ALU", op)
		}
	}
	for _, op := range []Opcode{NOP, HALT, LI, MOV, LD, ST, B, ASIC, NEG, NOT} {
		if op.IsBinaryALU() {
			t.Errorf("%v must not be binary ALU", op)
		}
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		ins  Instr
		want string
	}{
		{Instr{Op: LI, Rd: 5, Imm: -7}, "li    r5, -7"},
		{Instr{Op: MOV, Rd: 1, Rs1: 9}, "mov   r1, r9"},
		{Instr{Op: ADD, Rd: 3, Rs1: 4, Rs2: 5}, "add   r3, r4, r5"},
		{Instr{Op: ADD, Rd: 3, Rs1: 4, Imm: 12, UseImm: true}, "add   r3, r4, 12"},
		{Instr{Op: LD, Rd: 8, Rs1: 29, Imm: 4}, "ld    r8, 4(r29)"},
		{Instr{Op: ST, Rs1: 0, Rs2: 8, Imm: 100}, "st    r8, 100(r0)"},
		{Instr{Op: B, Target: 42}, "b     @42"},
		{Instr{Op: BNEZ, Rs1: 7, Target: 3}, "bnez  r7, @3"},
		{Instr{Op: JR, Rs1: 31}, "jr    r31"},
		{Instr{Op: ASIC, Imm: 2}, "asic  #2"},
		{Instr{Op: NEG, Rd: 2, Rs1: 3}, "neg   r2, r3"},
		{Instr{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestByteAddr(t *testing.T) {
	if ByteAddr(0) != 0 || ByteAddr(10) != 40 {
		t.Error("instructions are 4 bytes each")
	}
}

func TestRegisterConventions(t *testing.T) {
	// The allocatable and pinned ranges must not collide with the
	// architectural registers.
	archRegs := []int{Zero, RV, SP, RA, AT}
	for _, r := range archRegs {
		if r >= FirstTemp && r <= LastTemp {
			t.Errorf("architectural register r%d inside temp range", r)
		}
		if r >= FirstPinned && r <= LastPinned {
			t.Errorf("architectural register r%d inside pinned range", r)
		}
	}
	if LastTemp >= FirstPinned {
		t.Error("temp and pinned ranges overlap")
	}
	if A0+MaxArgs-1 >= FirstTemp {
		t.Error("argument registers overlap the temp range")
	}
	if MaxPinned != LastPinned-FirstPinned+1 {
		t.Error("MaxPinned inconsistent")
	}
}

func TestListing(t *testing.T) {
	p := &Program{
		Name:  "t",
		Code:  []Instr{{Op: CALL, Target: 2}, {Op: HALT}, {Op: LI, Rd: RV, Imm: 1, Comment: "answer"}, {Op: JR, Rs1: RA}},
		Funcs: map[string]int{"main": 2},
	}
	l := p.Listing()
	for _, want := range []string{"main:", "call", "; answer", "jr"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}
