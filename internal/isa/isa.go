// Package isa defines the instruction set of the SPARCLite-class embedded
// RISC µP core the paper's experiments run on ("our energy instruction
// simulation tool for a SPARCLite µP core", §4). It is a synthetic but
// conventional 32-register load/store architecture:
//
//   - r0 is hardwired to zero,
//   - r1 (RV) carries return values,
//   - r2–r7 (A0–A5) carry arguments,
//   - r8–r27 are allocatable temporaries,
//   - r28 (AT) is the assembler/codegen scratch register,
//   - r29 (SP) is the stack pointer,
//   - r31 (RA) receives return addresses.
//
// Instructions are represented structurally (no binary encoding): the ISS
// interprets Instr values directly, and the i-cache model derives byte
// addresses from instruction indices (4 bytes per instruction, as on a
// 32-bit RISC).
//
// The special ASIC instruction is the hardware/software rendezvous of the
// partitioned design (paper Fig. 2a): the µP deposits cluster inputs in
// shared memory, triggers ASIC core k, shuts down while the ASIC runs, and
// resumes when it completes.
package isa

import "fmt"

// Register indices with architectural roles.
const (
	Zero = 0  // hardwired zero
	RV   = 1  // return value
	A0   = 2  // first argument register; arguments use A0..A0+MaxArgs-1
	AT   = 28 // codegen scratch
	SP   = 29 // stack pointer
	RA   = 31 // return address

	NumRegs = 32
	// MaxArgs is the number of register-passed arguments (r2..r7).
	MaxArgs = 6
	// FirstTemp..LastTemp is the block-local allocatable range.
	FirstTemp = 8
	LastTemp  = 17
	// FirstPinned..LastPinned hold the hottest function-local scalars for
	// the whole function body (codegen's register promotion).
	FirstPinned = 18
	LastPinned  = 27
	// MaxPinned is the number of promotable locals per function.
	MaxPinned = LastPinned - FirstPinned + 1
)

// Opcode enumerates the machine operations.
type Opcode int

// Machine opcodes.
const (
	NOP Opcode = iota
	HALT
	LI  // rd = imm
	MOV // rd = rs1
	ADD // rd = rs1 + src2
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	SLL
	SRA // arithmetic right shift (the language's >>)
	CMPEQ
	CMPNE
	CMPLT
	CMPLE
	CMPGT
	CMPGE
	NEG  // rd = -rs1
	NOT  // rd = ^rs1
	LD   // rd = mem[rs1 + imm]
	ST   // mem[rs1 + imm] = rs2
	B    // pc = target
	BEQZ // if rs1 == 0: pc = target
	BNEZ // if rs1 != 0: pc = target
	CALL // ra = pc+1; pc = target
	JR   // pc = rs1 (return via JR RA)
	ASIC // run ASIC core #imm; µP shut down meanwhile
	NumOpcodes
)

var opcodeNames = [NumOpcodes]string{
	NOP: "nop", HALT: "halt", LI: "li", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", SLL: "sll", SRA: "sra",
	CMPEQ: "cmpeq", CMPNE: "cmpne", CMPLT: "cmplt", CMPLE: "cmple",
	CMPGT: "cmpgt", CMPGE: "cmpge",
	NEG: "neg", NOT: "not",
	LD: "ld", ST: "st", B: "b", BEQZ: "beqz", BNEZ: "bnez",
	CALL: "call", JR: "jr", ASIC: "asic",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if o < 0 || o >= NumOpcodes {
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
	return opcodeNames[o]
}

// IsBranch reports whether the opcode redirects control flow.
func (o Opcode) IsBranch() bool {
	switch o {
	case B, BEQZ, BNEZ, CALL, JR:
		return true
	}
	return false
}

// IsBinaryALU reports whether the opcode is a two-operand ALU/shift/
// mul/div operation (rd = rs1 op src2).
func (o Opcode) IsBinaryALU() bool { return o >= ADD && o <= CMPGE }

// Instr is one machine instruction. Src2 of a binary operation is either
// register Rs2 (UseImm false) or the immediate Imm (UseImm true). LD/ST
// address is always rs1 + Imm.
type Instr struct {
	Op     Opcode
	Rd     int   // destination register
	Rs1    int   // first source register / address base / branch condition
	Rs2    int   // second source register / store data
	Imm    int32 // immediate: operand, address offset, or ASIC core id
	UseImm bool  // binary ALU ops: use Imm instead of Rs2
	Target int   // instruction index for B/BEQZ/BNEZ/CALL
	// Region tags the innermost cluster (cdfg region ID) this instruction
	// was generated from, or -1. The ISS aggregates per-region statistics
	// from it (per-cluster µP energy and utilization, Fig. 1 lines 9/12).
	Region int
	// Comment carries the source construct for listings.
	Comment string
}

// String renders the instruction in assembly-listing form.
func (i Instr) String() string {
	switch {
	case i.Op == NOP || i.Op == HALT:
		return i.Op.String()
	case i.Op == LI:
		return fmt.Sprintf("%-5s r%d, %d", i.Op, i.Rd, i.Imm)
	case i.Op == MOV:
		return fmt.Sprintf("%-5s r%d, r%d", i.Op, i.Rd, i.Rs1)
	case i.Op == NEG || i.Op == NOT:
		return fmt.Sprintf("%-5s r%d, r%d", i.Op, i.Rd, i.Rs1)
	case i.Op.IsBinaryALU():
		if i.UseImm {
			return fmt.Sprintf("%-5s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
		}
		return fmt.Sprintf("%-5s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case i.Op == LD:
		return fmt.Sprintf("%-5s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.Op == ST:
		return fmt.Sprintf("%-5s r%d, %d(r%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case i.Op == B || i.Op == CALL:
		return fmt.Sprintf("%-5s @%d", i.Op, i.Target)
	case i.Op == BEQZ || i.Op == BNEZ:
		return fmt.Sprintf("%-5s r%d, @%d", i.Op, i.Rs1, i.Target)
	case i.Op == JR:
		return fmt.Sprintf("%-5s r%d", i.Op, i.Rs1)
	case i.Op == ASIC:
		return fmt.Sprintf("%-5s #%d", i.Op, i.Imm)
	default:
		return i.Op.String()
	}
}

// Program is an assembled machine program.
type Program struct {
	Name  string
	Code  []Instr
	Entry int            // index of the startup stub
	Funcs map[string]int // function name -> entry index
	// MemWords is the data memory size the program assumes (word
	// addresses 0..MemWords-1; the stack starts at the top).
	MemWords int
}

// ByteAddr returns the byte address of the instruction at index idx, as
// seen by the instruction cache.
func ByteAddr(idx int) uint32 { return uint32(idx) * 4 }

// Listing renders the whole program for inspection.
func (p *Program) Listing() string {
	out := fmt.Sprintf("; program %s, %d instructions, entry @%d\n", p.Name, len(p.Code), p.Entry)
	rev := make(map[int]string, len(p.Funcs))
	for name, at := range p.Funcs {
		rev[at] = name
	}
	for i, ins := range p.Code {
		if name, ok := rev[i]; ok {
			out += name + ":\n"
		}
		out += fmt.Sprintf("%5d: %s", i, ins)
		if ins.Comment != "" {
			out += "  ; " + ins.Comment
		}
		out += "\n"
	}
	return out
}
