package ctxflow_test

import (
	"testing"

	"lppart/internal/analysis/analysistest"
	"lppart/internal/analysis/ctxflow"
)

// TestFlagsViolations proves each rule fires once: dropped ctx-less
// variant, nil in a context slot, fresh root context (with and without a
// ctx in scope), bare send, bare receive, and an unguarded select.
func TestFlagsViolations(t *testing.T) {
	diags := analysistest.Run(t, ctxflow.Analyzer, "bad")
	if len(diags) != 7 {
		t.Errorf("want 7 findings in fixture bad, got %d", len(diags))
	}
}

// TestAcceptsDisciplined proves forwarding, Done/default-guarded selects,
// ctx-free functions and //lint:ctx acknowledgements all pass.
func TestAcceptsDisciplined(t *testing.T) {
	analysistest.MustBeClean(t, ctxflow.Analyzer, "good")
}

// TestMainExempt proves package main may mint root contexts.
func TestMainExempt(t *testing.T) {
	analysistest.MustBeClean(t, ctxflow.Analyzer, "mainpkg")
}

// TestFix round-trips the suggested fixes (Background→ctx, nil→ctx)
// against the golden file.
func TestFix(t *testing.T) {
	analysistest.RunFix(t, ctxflow.Analyzer, "fix")
}
