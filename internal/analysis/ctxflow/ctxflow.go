// Package ctxflow implements the lppartvet pass that keeps cancellation
// plumbed end to end. PR 4/5 threaded context.Context through the
// service and evaluation layers (PartitionCtx, EvaluateAllCtx, MapCtx,
// the serve admission queue); this pass makes the discipline static:
//
//  1. A function holding a context must forward it. Passing a nil
//     context to a callee that accepts one, or calling the ctx-less
//     convenience variant of a function when the same package exports a
//     <Name>Ctx variant, silently detaches the callee from
//     cancellation.
//  2. context.Background()/context.TODO() mint fresh root contexts;
//     outside package main and tests they sever the caller's
//     cancellation chain. The sanctioned wrapper entry points
//     (explore.Map and friends) carry //lint:ctx acknowledgements.
//     When the enclosing function holds a context, the suggested fix
//     replaces the call with that variable.
//  3. In the service packages (serve, jobs, explore) a blocking channel
//     operation inside a ctx-holding function — a select without a
//     ctx.Done() case or default, or a bare send/receive outside any
//     select — can outlive the request that issued it.
//
// Escape hatch: //lint:ctx on the flagged line or its enclosing
// statement.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"lppart/internal/analysis"
)

// blockingGated names the packages where rule 3 (channel blocking)
// applies: the long-lived service layers.
var blockingGated = map[string]bool{
	"serve":   true,
	"jobs":    true,
	"explore": true,
}

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "enforce context forwarding: no nil contexts or ctx-less variants when the caller " +
		"holds a ctx, no context.Background()/TODO() outside main and tests, and no " +
		"ctx-blind channel blocking in serve/jobs/explore; acknowledge with //lint:ctx",
	Run: run,
}

func run(pass *analysis.Pass) error {
	v := &visitor{
		pass:     pass,
		isMain:   pass.Pkg.Name() == "main",
		blocking: blockingGated[pass.Pkg.Name()],
		selComm:  make(map[ast.Node]bool),
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			v.walkFunc(fd.Type, fd.Body, nil)
		}
	}
	return nil
}

// visitor walks one file's functions tracking the innermost visible
// context variable.
type visitor struct {
	pass     *analysis.Pass
	isMain   bool
	blocking bool
	// selComm marks send/receive nodes that are the communication
	// operand of a select clause — rule 3 judges them at the select
	// level, not as bare operations.
	selComm map[ast.Node]bool
}

// ctxParam finds a context.Context parameter's object in a signature.
func (v *visitor) ctxParam(ft *ast.FuncType) *types.Var {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj, ok := v.pass.TypesInfo.Defs[name].(*types.Var); ok &&
				analysis.IsContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// walkFunc walks a body with ctx being the visible context variable
// (possibly inherited from an enclosing function, possibly nil).
func (v *visitor) walkFunc(ft *ast.FuncType, body *ast.BlockStmt, ctx *types.Var) {
	if own := v.ctxParam(ft); own != nil {
		ctx = own
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			v.walkFunc(n.Type, n.Body, ctx)
			return false
		case *ast.CallExpr:
			v.visitCall(n, ctx)
		case *ast.SelectStmt:
			v.visitSelect(n, ctx)
		case *ast.SendStmt:
			if !v.selComm[n] {
				v.blockingOp(n.Pos(), "channel send", ctx)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !v.selComm[n] && !v.isDoneRecv(n.X) {
				v.blockingOp(n.OpPos, "channel receive", ctx)
			}
		}
		return true
	})
}

// visitCall applies rules 1 and 2 to one call.
func (v *visitor) visitCall(call *ast.CallExpr, ctx *types.Var) {
	fn := calleeOf(v.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	// Rule 2: fresh root contexts.
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO") {
		if !v.isMain && !v.pass.Suppressed(call.Pos(), "ctx") {
			if ctx != nil {
				v.pass.ReportFix(call.Pos(), analysis.SuggestedFix{
					Message: "forward " + ctx.Name(),
					Edits: []analysis.TextEdit{{
						Pos: call.Pos(), End: call.End(), NewText: ctx.Name(),
					}},
				}, "context.%s() severs the caller's cancellation chain; forward %s instead "+
					"(//lint:ctx to sanction a root context)", fn.Name(), ctx.Name())
			} else {
				v.pass.Reportf(call.Pos(),
					"context.%s() outside main and tests severs cancellation; accept and "+
						"forward a ctx parameter (//lint:ctx to sanction a root context)", fn.Name())
			}
		}
		return
	}
	if ctx == nil {
		return
	}
	// Rule 1a: nil in a context parameter slot.
	if sig, ok := v.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok {
		params := sig.Params()
		for i, arg := range call.Args {
			if i >= params.Len() {
				break
			}
			if !analysis.IsContextType(params.At(i).Type()) {
				continue
			}
			if tv, ok := v.pass.TypesInfo.Types[arg]; ok && tv.IsNil() &&
				!v.pass.Suppressed(call.Pos(), "ctx") {
				v.pass.ReportFix(arg.Pos(), analysis.SuggestedFix{
					Message: "forward " + ctx.Name(),
					Edits: []analysis.TextEdit{{
						Pos: arg.Pos(), End: arg.End(), NewText: ctx.Name(),
					}},
				}, "nil context passed to %s while %s is in scope; forward it",
					fn.Name(), ctx.Name())
			}
		}
	}
	// Rule 1b: ctx-less convenience variant while holding a ctx.
	if analysis.AcceptsContext(fn) {
		return // the callee takes a ctx; rule 1a covered the nil case
	}
	if fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // variant lookup is for package-level functions
	}
	if alt, ok := fn.Pkg().Scope().Lookup(fn.Name() + "Ctx").(*types.Func); ok &&
		analysis.AcceptsContext(alt) && !v.pass.Suppressed(call.Pos(), "ctx") {
		v.pass.Reportf(call.Pos(),
			"%s.%s drops the in-scope context %s; call %s instead",
			fn.Pkg().Name(), fn.Name(), ctx.Name(), alt.Name())
	}
}

// visitSelect applies rule 3 to a select statement and records its
// communication operands.
func (v *visitor) visitSelect(sel *ast.SelectStmt, ctx *types.Var) {
	hasDefault, hasDone := false, false
	for _, stmt := range sel.Body.List {
		clause, ok := stmt.(*ast.CommClause)
		if !ok {
			continue
		}
		if clause.Comm == nil {
			hasDefault = true
			continue
		}
		v.selComm[clause.Comm] = true
		switch c := clause.Comm.(type) {
		case *ast.SendStmt:
			v.selComm[c] = true
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				v.selComm[u] = true
				if v.isDoneRecv(u.X) {
					hasDone = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range c.Rhs {
				if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					v.selComm[u] = true
					if v.isDoneRecv(u.X) {
						hasDone = true
					}
				}
			}
		}
	}
	if hasDefault || hasDone {
		return
	}
	if v.blocking && ctx != nil && !v.pass.Suppressed(sel.Pos(), "ctx") {
		v.pass.Reportf(sel.Pos(),
			"select in a ctx-holding function has neither a <-%s.Done() case nor a default; "+
				"the wait cannot be cancelled (//lint:ctx to sanction)", ctx.Name())
	}
}

// blockingOp reports a bare blocking channel operation (rule 3).
func (v *visitor) blockingOp(pos token.Pos, what string, ctx *types.Var) {
	if !v.blocking || ctx == nil || v.pass.InTestFile(pos) || v.pass.Suppressed(pos, "ctx") {
		return
	}
	v.pass.Reportf(pos,
		"bare %s in a ctx-holding function blocks outside any select; "+
			"wrap in a select with a <-%s.Done() case (//lint:ctx to sanction)",
		what, ctx.Name())
}

// isDoneRecv reports whether e is a call to the Done method of a
// context.Context value.
func (v *visitor) isDoneRecv(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return analysis.IsContextType(v.pass.TypesInfo.TypeOf(sel.X))
}

// calleeOf resolves a call's target function object, or nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
