// Command mainpkg proves rule 2's exemption: package main legitimately
// mints root contexts.
package main

import "context"

func main() {
	ctx := context.Background()
	run(ctx)
}

func run(ctx context.Context) { _ = ctx }
