// Package flow is the ctxflow -fix round-trip fixture: applying the
// suggested fixes must produce fix.go.golden byte-for-byte.
package flow

import "context"

func run(ctx context.Context)   { _ = ctx }
func pair(a, b context.Context) { _, _ = a, b }

func Launch(ctx context.Context) {
	run(context.Background()) // want `context.Background\(\) severs the caller's cancellation chain; forward ctx instead`
	pair(ctx, nil)            // want `nil context passed to pair while ctx is in scope; forward it`
}
