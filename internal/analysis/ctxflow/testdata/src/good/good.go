// Package serve is the clean half of the ctxflow contract: forwarded
// contexts, selects guarded by Done or default, functions that hold no
// context at all, and //lint:ctx acknowledgements.
package serve

import "context"

func Do()                       {}
func DoCtx(ctx context.Context) { _ = ctx }

func Work(ctx context.Context, ch chan int) error {
	DoCtx(ctx)
	Do() //lint:ctx deliberate detach, the callee is side-effect-free
	select {
	case <-ctx.Done():
		return ctx.Err()
	case v := <-ch:
		_ = v
	}
	select {
	case ch <- 1:
	default:
	}
	ch <- 2 //lint:ctx drained by a dedicated goroutine
	return nil
}

// NoCtx holds no context: channel blocking is not rule 3's business.
func NoCtx(ch chan int) int {
	ch <- 1
	return <-ch
}

func root() context.Context {
	return context.Background() //lint:ctx sanctioned root for the fixture
}
