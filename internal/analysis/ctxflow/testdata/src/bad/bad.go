// Package serve is the detection half of the ctxflow fixture; its name
// gates it into the blocking-checked service set, so all three rules
// fire: dropped/nil contexts and ctx-less variants (rule 1), fresh root
// contexts (rule 2), and ctx-blind channel blocking (rule 3).
package serve

import "context"

func Do()                       {}
func DoCtx(ctx context.Context) { _ = ctx }
func Use(ctx context.Context)   { _ = ctx }

func Work(ctx context.Context, ch chan int) {
	DoCtx(ctx)
	Do()                      // want `serve.Do drops the in-scope context ctx; call DoCtx instead`
	Use(nil)                  // want `nil context passed to Use while ctx is in scope; forward it`
	c := context.Background() // want `context.Background\(\) severs the caller's cancellation chain; forward ctx instead`
	_ = c
	ch <- 1   // want `bare channel send in a ctx-holding function blocks outside any select`
	v := <-ch // want `bare channel receive in a ctx-holding function blocks outside any select`
	_ = v
	select { // want `select in a ctx-holding function has neither a <-ctx.Done\(\) case nor a default`
	case w := <-ch:
		_ = w
	}
}

// Detached holds no context, so only rule 2 applies to it.
func Detached() {
	c := context.TODO() // want `context.TODO\(\) outside main and tests severs cancellation`
	_ = c
}
