// Package partition is a detrange fixture: its name gates it into the
// result-producing package set, and every map range below is
// order-sensitive (string building, float accumulation, first-wins).
package partition

// Trail builds user-visible text from a map: classic determinism break.
func Trail(active map[string]float64) string {
	out := ""
	for k := range active { // want `nondeterministic iteration over map`
		out += k + "\n"
	}
	return out
}

// Sum accumulates floats in map order: result bits depend on key order.
func Sum(energy map[int]float64) float64 {
	total := 0.0
	for _, e := range energy { // want `nondeterministic iteration over map`
		total += e
	}
	return total
}

// First picks an arbitrary winner.
func First(cands map[int]string) string {
	for _, v := range cands { // want `nondeterministic iteration over map`
		return v
	}
	return ""
}
