// Package sched is a detrange fixture: gated by name, but every loop
// below is legitimate — sorted-key iteration, slice/array ranges, and an
// acknowledged order-insensitive set-build loop.
package sched

import "sort"

// Trail iterates sorted keys: deterministic.
func Trail(active map[string]float64) string {
	keys := make([]string, 0, len(active))
	for k := range active { //lint:ordered set-to-slice collection, sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "\n"
	}
	return out
}

// Union inserts into another map: order-insensitive, acknowledged.
func Union(a, b map[int]bool) map[int]bool {
	u := make(map[int]bool, len(a)+len(b))
	//lint:ordered pure set insertion
	for k := range a {
		u[k] = true
	}
	//lint:ordered pure set insertion
	for k := range b {
		u[k] = true
	}
	return u
}

// Slices and arrays range deterministically; no findings here.
func Dot(xs []float64, ws [4]float64) float64 {
	total := 0.0
	for i, x := range xs {
		total += x * ws[i%4]
	}
	return total
}
