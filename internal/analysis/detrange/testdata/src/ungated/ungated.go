// Package trace is a detrange fixture for the package gate: the name is
// not in the result-producing set, so even an order-sensitive map range
// is out of scope for this pass.
package trace

// Join is order-sensitive but ungated.
func Join(m map[string]int) string {
	out := ""
	for k := range m {
		out += k
	}
	return out
}
