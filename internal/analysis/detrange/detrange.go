// Package detrange implements the lppartvet pass that guards the repo's
// determinism contract: in packages that produce user-visible or
// memoized results (partition decision trails, schedules, Table 1 rows,
// Figure 6, exploration fan-outs, ASIC netlists, cache profiles),
// iterating a Go map with `for ... := range m` visits keys in a
// different order on every run, so any order-sensitive work inside the
// loop — floating-point accumulation, slice appends, string building,
// first-wins selection — silently breaks byte-identical output.
//
// The pass flags every range over a map-typed expression in the gated
// packages. Loops that are genuinely order-insensitive (pure set
// insertion, max/min over commutative data) are acknowledged in source
// with a `//lint:ordered` comment on the loop line or the line above;
// everything else must iterate sorted keys (the dataflow.Set.Keys
// pattern) instead.
package detrange

import (
	"go/ast"
	"go/types"

	"lppart/internal/analysis"
)

// gated names the result-producing packages the determinism contract
// covers. Gating is by package name so fixture packages participate.
var gated = map[string]bool{
	"partition": true,
	"sched":     true,
	"system":    true,
	"report":    true,
	"explore":   true,
	"asic":      true,
	"stackdist": true,
	"serve":     true,
	"client":    true,
	"metrics":   true,
	"dse":       true,
	"jobs":      true,
	"milp":      true,
	"cluster":   true,
}

// Analyzer is the detrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag nondeterministic map iteration in result-producing packages " +
		"(partition, sched, system, report, explore, asic, stackdist, " +
		"serve, client, metrics, dse, jobs, milp, cluster); " +
		"iterate sorted keys or acknowledge order-insensitive loops with //lint:ordered",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !gated[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.InTestFile(rs.Pos()) || pass.Suppressed(rs.Pos(), "ordered") {
				return true
			}
			pass.Reportf(rs.Pos(),
				"nondeterministic iteration over map %s in result-producing package %s; "+
					"iterate sorted keys or annotate //lint:ordered if the loop is order-insensitive",
				types.TypeString(t, types.RelativeTo(pass.Pkg)), pass.Pkg.Name())
			return true
		})
	}
	return nil
}
