package detrange_test

import (
	"testing"

	"lppart/internal/analysis/analysistest"
	"lppart/internal/analysis/detrange"
)

// TestDetectsMapRanges proves the pass catches each seeded violation
// (string building, float accumulation, first-wins selection).
func TestDetectsMapRanges(t *testing.T) {
	diags := analysistest.Run(t, detrange.Analyzer, "bad")
	if len(diags) != 3 {
		t.Errorf("want 3 findings in fixture bad, got %d", len(diags))
	}
}

// TestAcceptsCleanFile proves sorted-key iteration, slice/array ranges
// and //lint:ordered acknowledgements all pass.
func TestAcceptsCleanFile(t *testing.T) {
	analysistest.MustBeClean(t, detrange.Analyzer, "good")
}

// TestIgnoresUngatedPackages proves the package gate: map ranges outside
// the result-producing set are not this pass's business.
func TestIgnoresUngatedPackages(t *testing.T) {
	analysistest.MustBeClean(t, detrange.Analyzer, "ungated")
}
