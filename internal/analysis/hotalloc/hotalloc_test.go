package hotalloc_test

import (
	"testing"

	"lppart/internal/analysis/analysistest"
	"lppart/internal/analysis/hotalloc"
)

// TestFlagsHotClosureAllocations proves every construct class fires
// inside the closure (root body, transitive callee, bound closure) and
// the identical constructs in a cold function do not.
func TestFlagsHotClosureAllocations(t *testing.T) {
	diags := analysistest.Run(t, hotalloc.Analyzer, "bad")
	if len(diags) != 12 {
		t.Errorf("want 12 findings in fixture bad, got %d", len(diags))
	}
}

// TestAcceptsCleanAndExempt proves allocation-free hot code, trailing
// //lint:alloc acknowledgements, and decl-level cold-fill exemption
// (which must also stop closure traversal into callees) all pass.
func TestAcceptsCleanAndExempt(t *testing.T) {
	analysistest.MustBeClean(t, hotalloc.Analyzer, "good")
}

// TestMultiLineSuppression is the regression test for acknowledgements
// above multi-line statements: sites on continuation lines must be
// covered by a marker on (or above) the statement's first line.
func TestMultiLineSuppression(t *testing.T) {
	analysistest.MustBeClean(t, hotalloc.Analyzer, "multiline")
}
