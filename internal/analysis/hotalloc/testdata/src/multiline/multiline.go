// Package hot regression-tests multi-line suppression: before the
// statement-span fix, a //lint: acknowledgement above a multi-line
// statement only covered the statement's first line, so sites on
// continuation lines — the boxed arguments below — re-surfaced. The
// fixture must stay clean.
package hot

var sink interface{}

func record(vs ...interface{}) {
	for _, v := range vs {
		sink = v
	}
}

//lint:hotpath regression root
func Emit(a, b int) {
	//lint:alloc telemetry fan-out, boxed once per emit
	record(
		a,
		b,
	)
}
