// Package hot is the clean half of the hotalloc contract: a hot root
// that stays allocation-free, an acknowledged one-time allocation, and
// an exempted cold-fill boundary whose body — and callees — the closure
// traversal must not enter.
package hot

//lint:hotpath allocation-free by construction
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

//lint:hotpath root with one acknowledged allocation
func Grow(n int) []byte {
	buf := make([]byte, n) //lint:alloc one-time result buffer, owned by the caller
	fill(buf)
	if n > 1024 {
		refresh()
	}
	return buf
}

// fill is hot via Grow and allocation-free.
func fill(b []byte) {
	for i := range b {
		b[i] = byte(i)
	}
}

// refresh is an acknowledged cold-fill boundary: the decl-level marker
// exempts its body and stops closure traversal, so neither its map
// literal nor rebuild's make is reported.
//
//lint:alloc cold-fill boundary, entered only on a memo miss
func refresh() map[string]int {
	m := map[string]int{"a": 1}
	rebuild(m)
	return m
}

func rebuild(m map[string]int) {
	m["b"] = len(make([]byte, 4))
}
