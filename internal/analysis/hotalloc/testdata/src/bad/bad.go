// Package hot is the detection half of the hotalloc fixture: Work is a
// //lint:hotpath root, its call closure pulls in helper, record, spawn
// and the bound closure step, and each construct class the scanner
// recognizes is seeded exactly once. Cold allocates the same way outside
// the closure and must draw no report.
package hot

import "fmt"

// sink keeps escaping values alive.
var sink interface{}

type conf struct{ n int }

//lint:hotpath fixture root
func Work(n int, names []string) string {
	buf := make([]byte, n) // want `make allocates on each call`
	c := new(conf)         // want `new allocates on each call`
	p := &conf{n: n}       // want `literal allocates`
	xs := []int{n}         // want `slice literal allocates its backing array`
	m := map[string]int{}  // want `map literal allocates`
	var out []byte
	out = append(out, buf...)   // want `append to out, declared without capacity: grows by reallocation`
	msg := fmt.Sprintf("%d", n) // want `fmt.Sprintf formats into fresh allocations`
	msg += names[0]             // want `string \+= concatenation allocates`
	s := msg + string(out)      // want `string concatenation allocates`
	spawn(func() { sink = s })  // want `closure captures variables and escapes`
	step := func(i int) int {
		return len(make([]byte, i)) // want `make allocates on each call`
	}
	helper(p)
	_, _, _ = c, xs, m
	return s[:step(n)]
}

// helper is hot via Work; its boxing call is the closure's deepest site.
func helper(c *conf) {
	record(c.n) // want `argument boxes int into interface parameter \(allocates\)`
}

func record(v interface{}) { sink = v }

func spawn(f func()) { f() }

// Cold is outside the hot closure: the identical constructs are not this
// pass's business.
func Cold(n int) []byte {
	out := make([]byte, 0)
	return append(out, fmt.Sprintf("%d", n)...)
}
