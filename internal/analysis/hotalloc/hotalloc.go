// Package hotalloc implements the lppartvet pass that makes the repo's
// zero-alloc hot-path contract statically checked. PR 6 flattened the
// schedule/bind/price inner loops so the warm paths perform no heap
// allocation, but until this pass the invariant lived in a handful of
// testing.AllocsPerRun tests: any call site outside those tests could
// silently put an allocation back on the hot path.
//
// The pass works interprocedurally. Functions annotated with a
// `//lint:hotpath` comment on (or directly above) their declaration —
// sched.ScheduleBlock, asic.(*Core).RunASIC, partition.(*Priced).Add and
// Remove, partition.(*DeltaEvaluator).EvalInto, and the DFS body of the
// dse explorer — are the hot roots. The analysis computes their call
// closure over the whole-module call graph (closures bound to local
// variables are first-class nodes, so a hot DFS body pulls its helper
// closures in) and flags every allocation-inducing construct inside the
// closure: make/new, escaping (&T{...}) and slice/map composite
// literals, append to slices with no visible capacity reservation, fmt
// calls, non-constant string concatenation, escaping closures that
// capture variables, and interface boxing of non-pointer values.
//
// Escape hatch: `//lint:alloc <why>` on the flagged construct (or the
// enclosing multi-line statement) acknowledges a deliberate allocation
// — the one returned result, amortized slab growth, an error path. On a
// function declaration, the same marker exempts the whole body and
// stops closure traversal through it: an acknowledged cold-fill
// boundary such as a memo miss (partition.scheduleBind), where the warm
// path provably never enters.
package hotalloc

import (
	"lppart/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-inducing constructs (make/new, escaping or slice/map literals, " +
		"capacity-less append, fmt calls, string concatenation, capturing closures, interface " +
		"boxing) in the call closure of //lint:hotpath roots; acknowledge deliberate " +
		"allocations with //lint:alloc",
	Run: run,
}

func run(pass *analysis.Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	for _, node := range prog.Nodes {
		if node.Pkg.Types != pass.Pkg || !node.Facts.Hot || node.Facts.AllocExempt {
			continue
		}
		for _, site := range node.Allocs {
			if pass.InTestFile(site.Pos) || pass.Suppressed(site.Pos, "alloc") {
				continue
			}
			pass.Reportf(site.Pos,
				"%s in hot-path closure of %s (via %s); hoist into a reused workspace "+
					"or acknowledge with //lint:alloc",
				site.What, node.Name, node.Facts.HotVia)
		}
	}
	return nil
}
