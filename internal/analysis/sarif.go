package analysis

// SARIF 2.1.0 emission, so lppartvet findings surface as GitHub
// code-scanning annotations. The emitter produces the minimal valid
// subset of the OASIS sarif-2.1.0 schema: one run, a tool.driver with
// one reportingDescriptor per pass, and one result per diagnostic with
// a physical location (artifact URI relative to the module root +
// region). Output is deterministic: results follow the already-sorted
// diagnostic order and JSON fields marshal in struct order.

import (
	"encoding/json"
	"path/filepath"
	"sort"
)

// SARIFSchemaURI is the canonical 2.1.0 schema location embedded in the
// report's $schema field.
const SARIFSchemaURI = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. Rules are emitted for
// every analyzer (found or not) so rule indices are stable across runs;
// artifact URIs are slash-separated paths relative to root (absolute
// when outside it).
func SARIF(toolVersion string, analyzers []*Analyzer, diags []Diagnostic, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	index := make(map[string]int, len(analyzers))
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	docs := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		docs[a.Name] = a.Doc
	}
	for _, name := range names {
		index[name] = len(rules)
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: docs[name]}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Analyzer]
		if !ok {
			idx = len(rules)
			index[d.Analyzer] = idx
			rules = append(rules, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: d.Analyzer}})
		}
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && filepath.IsLocal(rel) {
				uri = rel
			}
		}
		line, col := d.Pos.Line, d.Pos.Column
		if line < 1 {
			line = 1
		}
		if col < 1 {
			col = 1
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error", // every lppartvet finding fails CI
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  SARIFSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "lppartvet", Version: toolVersion, Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}
