package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path ("lppart/internal/sched") when the
	// directory lies inside the module, else the directory itself
	// (fixture packages under testdata/).
	Path string
	// Name is the package clause name.
	Name string
	// Dir is the absolute directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of this module without any
// external tooling: module-internal imports resolve against the module
// root on disk, everything else falls back to the standard library's
// source importer (GOROOT/src), so the whole pipeline works offline.
//
// A Loader memoizes by import path; loading "./..." type-checks each
// package (and each stdlib dependency) exactly once.
type Loader struct {
	Fset *token.FileSet
	// ModRoot is the directory holding go.mod; ModPath its module path.
	ModRoot, ModPath string
	// IncludeTests also parses _test.go files (off for lppartvet runs;
	// the analyzers exempt test files themselves anyway).
	IncludeTests bool

	fallback types.ImporterFrom
	pkgs     map[string]*Package // by Package.Path
	loading  map[string]bool     // cycle detection
}

// NewLoader builds a Loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	fb, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Fset:     fset,
		ModRoot:  root,
		ModPath:  path,
		fallback: fb,
		pkgs:     make(map[string]*Package),
		loading:  make(map[string]bool),
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// pathOf derives the canonical Package.Path for a directory.
func (l *Loader) pathOf(dir string) string {
	if rel, err := filepath.Rel(l.ModRoot, dir); err == nil && rel != ".." &&
		!strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.ModPath
		}
		return l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return dir
}

// LoadDir parses and type-checks the package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.pathOf(abs), abs)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the module tree, everything else from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if sub, ok := l.moduleSubdir(path); ok {
		p, err := l.load(path, sub)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.fallback.ImportFrom(path, dir, mode)
}

// moduleSubdir maps a module-internal import path to its directory.
func (l *Loader) moduleSubdir(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// load is the memoized core of LoadDir/ImportFrom.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, name, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	p := &Package{
		Path: path, Name: name, Dir: dir,
		Fset: l.Fset, Files: files, Types: tpkg, Info: info,
	}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the package's Go files in deterministic (name) order.
func (l *Loader) parseDir(dir string) ([]*ast.File, string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, "", err
		}
		if !fileIncluded(f, n) {
			continue // excluded by build constraints for this platform
		}
		name := f.Name.Name
		if strings.HasSuffix(strings.TrimSuffix(n, ".go"), "_test") && strings.HasSuffix(name, "_test") {
			continue // external test package files
		}
		if pkgName == "" {
			pkgName = name
		} else if name != pkgName {
			return nil, "", fmt.Errorf("analysis: %s: mixed packages %s and %s", dir, pkgName, name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, "", fmt.Errorf("analysis: %s: no Go files", dir)
	}
	return files, pkgName, nil
}

// fileIncluded evaluates the file's build constraints — a `//go:build`
// (or legacy `// +build`) comment before the package clause, plus
// `_GOOS`/`_GOARCH` filename suffixes — against the current platform,
// mirroring the subset of go/build the module needs. Files excluded
// here never reach the type checker, so a linux-only syscall shim no
// longer breaks loading the package on darwin (and vice versa).
func fileIncluded(f *ast.File, filename string) bool {
	if !suffixIncluded(filename) {
		return false
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: include, let vet see the file
			}
			if !expr.Eval(buildTag) {
				return false
			}
		}
	}
	return true
}

// suffixIncluded applies the `name_GOOS.go` / `name_GOARCH.go` /
// `name_GOOS_GOARCH.go` filename convention.
func suffixIncluded(filename string) bool {
	base := strings.TrimSuffix(filepath.Base(filename), ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	// Trailing `_test` was already routed by the caller; ignore it here.
	if parts[len(parts)-1] == "test" {
		parts = parts[:len(parts)-1]
	}
	check := func(s string) bool {
		if knownOS[s] {
			return s == runtime.GOOS
		}
		if knownArch[s] {
			return s == runtime.GOARCH
		}
		return true
	}
	if len(parts) >= 3 && knownOS[parts[len(parts)-2]] && knownArch[parts[len(parts)-1]] {
		return parts[len(parts)-2] == runtime.GOOS && parts[len(parts)-1] == runtime.GOARCH
	}
	return check(parts[len(parts)-1])
}

// buildTag resolves one constraint tag the way `go build` would for
// this toolchain: the current GOOS/GOARCH, the gc compiler, cgo off
// (the loader never invokes cgo), and every go1.N language version up
// to the running release.
func buildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "cgo":
		return false
	case "unix":
		return unixOS[runtime.GOOS]
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		var n int
		if _, err := fmt.Sscanf(rest, "%d", &n); err == nil {
			var cur int
			if _, err := fmt.Sscanf(runtime.Version(), "go1.%d", &cur); err == nil {
				return n <= cur
			}
			return true // devel toolchains satisfy all go1.N tags
		}
	}
	return false // unknown or custom tags are unset, as in a bare `go build`
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// Expand resolves a package pattern relative to base: a plain directory,
// or a `dir/...` wildcard covering every package below dir (skipping
// testdata, hidden and VCS directories, matching the go tool).
func Expand(base, pattern string) ([]string, error) {
	root := pattern
	recursive := false
	if root == "..." {
		root, recursive = ".", true
	} else if strings.HasSuffix(root, "/...") {
		root, recursive = strings.TrimSuffix(root, "/..."), true
	}
	if !filepath.IsAbs(root) {
		root = filepath.Join(base, root)
	}
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if p != root && (strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") || n == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
