package analysis

// Allocation-construct detection for the hot-path closure. The scanner
// is syntactic plus types: it recognizes the construct classes that
// compile to runtime allocations — make/new, escaping and slice/map
// composite literals, append without a visible capacity reservation,
// fmt formatting, non-constant string concatenation, escaping closures
// that capture variables, and interface boxing of non-pointer values at
// call boundaries. It deliberately does not attempt whole-program
// escape analysis; the //lint:alloc escape hatch acknowledges the
// deliberate allocations (returned results, amortized slab growth,
// error paths) that remain.
//
// The subset is documented in DESIGN.md §9; constructs outside it (map
// inserts, string([]byte) conversions, channel sends of large values)
// are out of scope for the static gate and stay covered by the runtime
// AllocsPerRun tests.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// allocSites scans one function body (nested literals excluded — they
// have their own nodes) and returns its allocation sites in source
// order.
func (b *builder) allocSites(node *FuncNode, body *ast.BlockStmt) []AllocSite {
	s := &allocScanner{b: b, info: b.pkg.Info}
	s.scan(body)
	return s.sites
}

type allocScanner struct {
	b     *builder
	info  *types.Info
	stack []ast.Node
	sites []AllocSite
	// litSkip marks composite literals already reported through an
	// enclosing &lit, so &T{...} yields one site, not two.
	litSkip map[*ast.CompositeLit]bool
}

func (s *allocScanner) add(pos token.Pos, format string, args ...any) {
	s.sites = append(s.sites, AllocSite{Pos: pos, What: fmt.Sprintf(format, args...)})
}

func (s *allocScanner) parent() ast.Node {
	if len(s.stack) < 2 {
		return nil
	}
	return s.stack[len(s.stack)-2]
}

func (s *allocScanner) scan(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			s.stack = s.stack[:len(s.stack)-1]
			return true
		}
		s.stack = append(s.stack, n)
		descend := s.visit(n)
		if !descend {
			s.stack = s.stack[:len(s.stack)-1]
		}
		return descend
	})
}

func (s *allocScanner) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		if len(s.stack) == 1 {
			return true // the scanned body itself
		}
		if s.litEscapes(n) && s.captures(n) {
			s.add(n.Pos(), "closure captures variables and escapes (allocates its context)")
		}
		return false // nested literal bodies are their own call-graph nodes

	case *ast.CallExpr:
		s.visitCall(n)
		return true

	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				s.add(n.Pos(), "&%s literal allocates", typeLabel(s.info, lit))
				if s.litSkip == nil {
					s.litSkip = make(map[*ast.CompositeLit]bool)
				}
				s.litSkip[lit] = true
			}
		}
		return true

	case *ast.CompositeLit:
		if s.litSkip[n] {
			return true
		}
		if t := s.info.TypeOf(n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				s.add(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				s.add(n.Pos(), "map literal allocates")
			}
		}
		return true

	case *ast.BinaryExpr:
		if n.Op == token.ADD && s.isString(n) && !s.isConst(n) {
			// Flag only the topmost + of a concatenation chain.
			if p, ok := s.parent().(*ast.BinaryExpr); !ok || p.Op != token.ADD || !s.isString(p) {
				s.add(n.OpPos, "string concatenation allocates")
			}
		}
		return true

	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && s.isString(n.Lhs[0]) {
			s.add(n.TokPos, "string += concatenation allocates")
		}
		return true
	}
	return true
}

// visitCall classifies one call expression.
func (s *allocScanner) visitCall(call *ast.CallExpr) {
	// Conversions: value-to-interface conversions box.
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type.Underlying()) {
			if s.boxes(call.Args[0]) {
				s.add(call.Pos(), "conversion boxes %s into interface %s",
					typeLabel(s.info, call.Args[0]), tv.Type.String())
			}
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := s.info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "make":
				s.add(call.Pos(), "make allocates on each call")
			case "new":
				s.add(call.Pos(), "new allocates on each call")
			case "append":
				s.visitAppend(call)
			}
			return
		}
	}

	// Resolved function calls: fmt formatting, then interface boxing of
	// arguments.
	fn := s.callee(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		s.add(call.Pos(), "fmt.%s formats into fresh allocations", fn.Name())
		return // don't also report its args as boxed
	}
	sig, ok := s.info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt.Underlying()) && s.boxes(arg) {
			s.add(arg.Pos(), "argument boxes %s into interface parameter (allocates)",
				typeLabel(s.info, arg))
		}
	}
}

// visitAppend applies the capacity heuristic: appending to a slice whose
// local declaration visibly reserves no capacity allocates as it grows.
// Origins the scanner cannot see (parameters, struct fields, reslices,
// call results, 3-arg make) are assumed managed by their owner.
func (s *allocScanner) visitAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := s.info.Uses[id]
	if obj == nil {
		return
	}
	decl := s.b.prog.declOf[obj]
	bad := ""
	switch d := decl.(type) {
	case *ast.ValueSpec:
		if len(d.Values) == 0 {
			bad = "declared without capacity"
		} else if i := specIndex(d, obj); i >= 0 && i < len(d.Values) {
			bad = initReservesNoCap(s.info, d.Values[i])
		}
	case ast.Expr:
		bad = initReservesNoCap(s.info, d)
	}
	if bad != "" {
		s.add(call.Pos(), "append to %s, %s: grows by reallocation", obj.Name(), bad)
	}
}

// specIndex finds obj's position in a ValueSpec's name list.
func specIndex(spec *ast.ValueSpec, obj types.Object) int {
	for i, n := range spec.Names {
		if n.Name == obj.Name() {
			return i
		}
	}
	return -1
}

// initReservesNoCap classifies a slice initializer: "" means the origin
// reserves capacity (or is invisible), anything else describes why not.
func initReservesNoCap(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if _, ok := info.TypeOf(e).Underlying().(*types.Slice); ok {
			return "initialized from a literal without capacity"
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if bi, ok := info.Uses[id].(*types.Builtin); ok && bi.Name() == "make" && len(e.Args) == 2 {
				return "made without capacity"
			}
		}
	}
	return ""
}

// litEscapes reports whether a nested literal escapes its creation site:
// direct calls and local bindings (named helpers whose bodies are their
// own nodes) do not; argument/return/composite positions do.
func (s *allocScanner) litEscapes(lit *ast.FuncLit) bool {
	parent := s.parent()
	switch p := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == lit {
			return false // immediately invoked
		}
		return true // passed as an argument
	case *ast.AssignStmt, *ast.ValueSpec:
		// Bound to a variable: the binding index holds it, and calls
		// through the binding resolve to the literal's own node.
		for _, l := range s.b.prog.litBound { //lint:ordered membership test only
			if l == lit {
				return false
			}
		}
		return true
	}
	return true
}

// captures reports whether the literal references variables declared
// outside itself (below package scope) — the closure-context allocation.
func (s *allocScanner) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own params/locals
		}
		if v.Parent() == nil || v.Pkg() == nil {
			return true
		}
		if s.b.pkg.Types.Scope().Lookup(v.Name()) == v {
			return true // package-level
		}
		found = true
		return false
	})
	return found
}

// callee resolves a call's target function object, or nil.
func (s *allocScanner) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := s.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := s.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// boxes reports whether passing e into an interface slot allocates:
// concrete non-pointer-shaped values do, pointers/interfaces/nil don't.
func (s *allocScanner) boxes(e ast.Expr) bool {
	tv, ok := s.info.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

// isString reports whether e has (underlying) string type.
func (s *allocScanner) isString(e ast.Expr) bool {
	t := s.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConst reports whether e folds to a compile-time constant.
func (s *allocScanner) isConst(e ast.Expr) bool {
	tv, ok := s.info.Types[e]
	return ok && tv.Value != nil
}

// typeLabel renders an expression's type for a diagnostic.
func typeLabel(info *types.Info, e ast.Expr) string {
	if t := info.TypeOf(e); t != nil {
		return t.String()
	}
	return "value"
}
