package analysis

import (
	"fmt"
	"go/token"
	"testing"
)

// fixFixture builds a FileSet with one in-memory file and a helper to
// mint positions into it.
func fixFixture(src string) (*token.FileSet, func(off int) token.Pos, func(string) ([]byte, error)) {
	fset := token.NewFileSet()
	f := fset.AddFile("mem.go", -1, len(src))
	f.SetLinesForContent([]byte(src))
	pos := func(off int) token.Pos { return f.Pos(off) }
	read := func(name string) ([]byte, error) {
		if name != "mem.go" {
			return nil, fmt.Errorf("unexpected read of %s", name)
		}
		return []byte(src), nil
	}
	return fset, pos, read
}

// TestApplyFixesOrdersAndSkipsOverlap proves edits apply in descending
// offset order (earlier offsets stay valid) and an overlapping later
// fix is skipped deterministically rather than corrupting the file.
func TestApplyFixesOrdersAndSkipsOverlap(t *testing.T) {
	src := "abcdefghij"
	fset, pos, read := fixFixture(src)
	diags := []Diagnostic{
		{Analyzer: "t", Pos: fset.Position(pos(0)), Fixes: []SuggestedFix{{
			Edits: []TextEdit{{Pos: pos(2), End: pos(4), NewText: "CD"}},
		}}},
		{Analyzer: "t", Pos: fset.Position(pos(0)), Fixes: []SuggestedFix{{
			Edits: []TextEdit{{Pos: pos(7), End: pos(9), NewText: "HI"}},
		}}},
		// Overlaps the first edit's [2,4) range: must be skipped.
		{Analyzer: "t", Pos: fset.Position(pos(0)), Fixes: []SuggestedFix{{
			Edits: []TextEdit{{Pos: pos(3), End: pos(5), NewText: "xx"}},
		}}},
	}
	res, err := ApplyFixes(fset, diags, read)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if res.Applied != 2 || res.Skipped != 1 {
		t.Errorf("applied/skipped = %d/%d, want 2/1", res.Applied, res.Skipped)
	}
	if got := string(res.Files["mem.go"]); got != "abCDefgHIj" {
		t.Errorf("fixed = %q, want abCDefgHIj", got)
	}
}

// TestApplyFixesMultiEditAtomicity proves a fix whose edits straddle an
// already-claimed range is dropped whole: none of its edits land.
func TestApplyFixesMultiEditAtomicity(t *testing.T) {
	src := "abcdefghij"
	fset, pos, read := fixFixture(src)
	diags := []Diagnostic{
		{Analyzer: "t", Pos: fset.Position(pos(0)), Fixes: []SuggestedFix{{
			Edits: []TextEdit{{Pos: pos(0), End: pos(2), NewText: "AB"}},
		}}},
		{Analyzer: "t", Pos: fset.Position(pos(0)), Fixes: []SuggestedFix{{
			Edits: []TextEdit{
				{Pos: pos(8), End: pos(10), NewText: "IJ"}, // clean on its own
				{Pos: pos(1), End: pos(3), NewText: "no"},  // overlaps [0,2)
			},
		}}},
	}
	res, err := ApplyFixes(fset, diags, read)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Errorf("applied/skipped = %d/%d, want 1/1", res.Applied, res.Skipped)
	}
	if got := string(res.Files["mem.go"]); got != "ABcdefghij" {
		t.Errorf("fixed = %q, want ABcdefghij (partial fix must not land)", got)
	}
}
