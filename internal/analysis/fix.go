package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Files maps each edited filename to its new contents.
	Files map[string][]byte
	// Applied counts the diagnostics whose fix was applied.
	Applied int
	// Skipped counts fixes dropped because they overlapped an
	// already-applied edit (first — in diagnostic order — wins).
	Skipped int
}

// ApplyFixes computes the result of applying every suggested fix of the
// given diagnostics. Sources are read through read (defaults to
// os.ReadFile), so tests can run fixtures in memory; nothing is written
// to disk — see WriteFixes.
//
// Edits are applied per file in descending offset order so earlier
// offsets stay valid; overlapping fixes are skipped deterministically.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, read func(string) ([]byte, error)) (*FixResult, error) {
	if read == nil {
		read = os.ReadFile
	}
	type edit struct {
		start, end int
		text       string
	}
	perFile := make(map[string][]edit)
	var files []string
	res := &FixResult{Files: make(map[string][]byte)}
	for _, d := range diags {
		for _, fix := range d.Fixes {
			ok := true
			var pending []edit
			var names []string
			for _, e := range fix.Edits {
				ps, pe := fset.Position(e.Pos), fset.Position(e.End)
				if !ps.IsValid() || !pe.IsValid() || ps.Filename != pe.Filename || ps.Offset > pe.Offset {
					ok = false
					break
				}
				// Reject overlap with edits already queued on the file.
				for _, q := range perFile[ps.Filename] {
					if ps.Offset < q.end && q.start < pe.Offset {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				pending = append(pending, edit{ps.Offset, pe.Offset, e.NewText})
				names = append(names, ps.Filename)
			}
			if !ok {
				res.Skipped++
				continue
			}
			for i, e := range pending {
				if len(perFile[names[i]]) == 0 {
					files = append(files, names[i])
				}
				perFile[names[i]] = append(perFile[names[i]], e)
			}
			res.Applied++
		}
	}
	sort.Strings(files)
	for _, name := range files {
		src, err := read(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: fix %s: %w", name, err)
		}
		edits := perFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			if e.end > len(src) {
				return nil, fmt.Errorf("analysis: fix %s: edit [%d,%d) past EOF %d",
					name, e.start, e.end, len(src))
			}
			src = append(src[:e.start:e.start], append([]byte(e.text), src[e.end:]...)...)
		}
		res.Files[name] = src
	}
	return res, nil
}

// WriteFixes writes an ApplyFixes result back to disk.
func WriteFixes(res *FixResult) error {
	var names []string
	for name := range res.Files { //lint:ordered collect-then-sort
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		info, err := os.Stat(name)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode().Perm()
		}
		if err := os.WriteFile(name, res.Files[name], mode); err != nil {
			return err
		}
	}
	return nil
}
