// Package estimate is a unitsafe fixture: dimensionally sound
// arithmetic — same-dimension sums, the legitimate power × time product
// (units.EnergyOf's shape), dimensionless conversions, and one
// acknowledged deliberate mix.
package estimate

import "lppart/internal/units"

// TotalRaw sums energies in raw float64: same dimension, fine.
func TotalRaw(a, b units.Energy) float64 {
	return float64(a) + float64(b)
}

// EnergyOf multiplies power by time: cross-dimension products are the
// physics, not a bug.
func EnergyOf(p units.Power, t units.Time) units.Energy {
	return units.Energy(float64(p) * float64(t))
}

// Cycles-to-float conversions carry no dimension.
func PerCycle(e units.Energy, cycles int64) float64 {
	return float64(e) / (float64(cycles) + 1)
}

// Ratio deliberately compares joules to seconds (a normalized pair) and
// says so.
func Ratio(e units.Energy, t units.Time) bool {
	return float64(e) > float64(t) //lint:units normalized magnitudes, deliberate
}
