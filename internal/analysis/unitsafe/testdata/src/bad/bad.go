// Package estimate is a unitsafe fixture: float64 arithmetic that
// strips the units wrappers and mixes physical dimensions.
package estimate

import "lppart/internal/units"

// Mix adds joules to seconds.
func Mix(e units.Energy, t units.Time) float64 {
	return float64(e) + float64(t) // want `mixes units dimensions units.Energy and units.Time`
}

// Shortfall subtracts watts from joules.
func Shortfall(e units.Energy, p units.Power) float64 {
	return float64(e) - float64(p) // want `mixes units dimensions units.Energy and units.Power`
}

// Exceeds compares watts against joules.
func Exceeds(p units.Power, e units.Energy) bool {
	return float64(p) > float64(e) // want `mixes units dimensions units.Power and units.Energy`
}
