// Package unitsafe implements the lppartvet pass that keeps the energy
// accounting dimensionally sound. The internal/units package wraps
// energy, power and time in distinct named float64 types precisely so
// the compiler rejects `Energy + Time`; the remaining hole is code that
// strips the wrappers first — `float64(e) + float64(t)` type-checks and
// silently adds joules to seconds. Every E_R/E_µP/E_rest term feeding
// the paper's objective function (Fig. 1 line 13) flows through such
// arithmetic, so a stripped-unit mix-up corrupts Table 1 without any
// test noticing the dimension error.
//
// The pass flags additions, subtractions and comparisons whose two
// operands are float64 conversions of *different* units dimensions.
// Same-dimension conversions (summing energies in raw float64 for an
// accumulator) and cross-dimension products (power × time in
// units.EnergyOf) are legitimate and pass. A deliberate mix can be
// acknowledged with //lint:units.
package unitsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"lppart/internal/analysis"
)

// unitsPkgSuffix identifies the units package by path suffix so fixture
// trees and the real module both resolve.
const unitsPkgSuffix = "internal/units"

// dimensioned names the units types that carry a physical dimension.
var dimensioned = map[string]bool{
	"Energy": true,
	"Power":  true,
	"Time":   true,
}

// Analyzer is the unitsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafe",
	Doc: "flag float64 arithmetic that mixes stripped units dimensions " +
		"(energy/power/time) in + - < <= > >= == !=; keep values in their " +
		"internal/units types or acknowledge with //lint:units",
	Run: run,
}

// mixable are the operators for which operands must share a dimension.
var mixable = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !mixable[be.Op] {
				return true
			}
			dx := dimensionOf(pass, be.X)
			dy := dimensionOf(pass, be.Y)
			if dx == "" || dy == "" || dx == dy {
				return true
			}
			if pass.Suppressed(be.Pos(), "units") {
				return true
			}
			pass.Reportf(be.OpPos,
				"raw float64 %q mixes units dimensions %s and %s; "+
					"keep the operands in their internal/units types (//lint:units to override)",
				be.Op, dx, dy)
			return true
		})
	}
	return nil
}

// dimensionOf returns the units dimension of an expression that is a
// float64 conversion of a dimensioned units value (possibly
// parenthesized), or "" when no dimension can be attributed.
func dimensionOf(pass *analysis.Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	// The callee must be the type float64 itself (a conversion).
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return ""
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.Float64 {
		return ""
	}
	return unitsDimension(pass.TypesInfo.TypeOf(call.Args[0]))
}

// unitsDimension names the dimension of a units-package named type.
func unitsDimension(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !hasSuffixPath(obj.Pkg().Path(), unitsPkgSuffix) {
		return ""
	}
	if dimensioned[obj.Name()] {
		return "units." + obj.Name()
	}
	return ""
}

// hasSuffixPath reports whether path ends in suffix on a "/" boundary.
func hasSuffixPath(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}
