package unitsafe_test

import (
	"testing"

	"lppart/internal/analysis/analysistest"
	"lppart/internal/analysis/unitsafe"
)

// TestDetectsMixedDimensions proves the pass catches stripped-unit
// addition, subtraction and comparison across dimensions.
func TestDetectsMixedDimensions(t *testing.T) {
	diags := analysistest.Run(t, unitsafe.Analyzer, "bad")
	if len(diags) != 3 {
		t.Errorf("want 3 findings in fixture bad, got %d", len(diags))
	}
}

// TestAcceptsSoundArithmetic proves same-dimension sums, cross-dimension
// products and //lint:units acknowledgements all pass.
func TestAcceptsSoundArithmetic(t *testing.T) {
	analysistest.MustBeClean(t, unitsafe.Analyzer, "good")
}
