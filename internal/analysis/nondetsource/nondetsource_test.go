package nondetsource_test

import (
	"testing"

	"lppart/internal/analysis/analysistest"
	"lppart/internal/analysis/nondetsource"
)

// TestDetectsAmbientNondeterminism proves the pass catches the clock
// read, both CPU probes and the math/rand import.
func TestDetectsAmbientNondeterminism(t *testing.T) {
	diags := analysistest.Run(t, nondetsource.Analyzer, "bad")
	if len(diags) != 4 {
		t.Errorf("want 4 findings in fixture bad, got %d", len(diags))
	}
}

// TestAcceptsAnnotatedSink proves //lint:nondet sanctions a sink and
// that non-clock uses of the time package pass.
func TestAcceptsAnnotatedSink(t *testing.T) {
	analysistest.MustBeClean(t, nondetsource.Analyzer, "good")
}

// TestExemptsCommands proves package main is out of scope.
func TestExemptsCommands(t *testing.T) {
	analysistest.MustBeClean(t, nondetsource.Analyzer, "cmd")
}
