// Package nondetsource implements the lppartvet pass that bans ambient
// nondeterminism from the library packages: wall-clock reads
// (time.Now), pseudo-random numbers (math/rand, math/rand/v2) and
// host-CPU-dependent sizing (runtime.GOMAXPROCS, runtime.NumCPU).
//
// Every result this repo produces — Table 1 rows, Figure 6, decision
// trails, cache profiles — is specified to be a pure function of the
// inputs, identical on any machine at any worker count. A clock read or
// CPU-count probe buried in a library package breaks that contract in a
// way no regression test reliably catches. Commands (package main) and
// test files may use them freely; the one sanctioned library sink,
// explore.DefaultWorkers, carries a //lint:nondet acknowledgement and a
// determinism regression test proving worker count cannot change
// results.
package nondetsource

import (
	"go/ast"
	"go/types"
	"strconv"

	"lppart/internal/analysis"
)

// bannedFuncs maps package path + function name to the report text.
var bannedFuncs = map[[2]string]string{
	{"time", "Now"}:           "wall-clock read",
	{"runtime", "GOMAXPROCS"}: "host-CPU-dependent sizing",
	{"runtime", "NumCPU"}:     "host-CPU-dependent sizing",
}

// bannedImports lists wholesale-banned packages.
var bannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Analyzer is the nondetsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondetsource",
	Doc: "ban time.Now, math/rand and GOMAXPROCS/NumCPU-dependent sizing outside " +
		"cmd/ and test files; acknowledge a sanctioned sink with //lint:nondet",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // commands may read clocks and probe CPUs
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if bannedImports[path] && !pass.Suppressed(imp.Pos(), "nondet") {
				pass.Reportf(imp.Pos(),
					"import of %s: pseudo-random numbers are nondeterministic inputs; "+
						"results must be pure functions of the design inputs", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			why, banned := bannedFuncs[[2]string{fn.Pkg().Path(), fn.Name()}]
			if !banned || pass.Suppressed(sel.Pos(), "nondet") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s: %s outside cmd/ and tests; results must not depend on "+
					"the host or the moment of execution (//lint:nondet to sanction)",
				fn.Pkg().Path(), fn.Name(), why)
			return true
		})
	}
	return nil
}
