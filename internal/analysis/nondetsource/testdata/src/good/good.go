// Package explore is a nondetsource fixture: clean library code — a
// sanctioned, annotated CPU probe (mirroring explore.DefaultWorkers,
// whose worker count provably cannot change results) and benign use of
// the time package without clock reads.
package explore

import (
	"runtime"
	"time"
)

// DefaultWorkers is the one sanctioned host probe.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0) //lint:nondet worker count cannot change results (determinism tests)
}

// Timeout uses time's types, not its clock.
func Timeout(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}
