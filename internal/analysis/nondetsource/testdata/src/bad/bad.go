// Package sched is a nondetsource fixture: a library package reaching
// for every banned ambient-nondeterminism source.
package sched

import (
	"math/rand" // want `pseudo-random numbers are nondeterministic inputs`
	"runtime"
	"time"
)

// Seed reads the wall clock.
func Seed() int64 {
	return time.Now().UnixNano() // want `wall-clock read`
}

// Workers sizes work by host CPU count.
func Workers() int {
	return runtime.NumCPU() // want `host-CPU-dependent sizing`
}

// Procs also sizes by the host.
func Procs() int {
	return runtime.GOMAXPROCS(0) // want `host-CPU-dependent sizing`
}

// Jitter consumes the banned import.
func Jitter() float64 {
	return rand.Float64()
}
