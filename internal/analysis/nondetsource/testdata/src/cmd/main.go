// Package main is a nondetsource fixture: commands may read clocks and
// probe the host freely — the gate exempts package main.
package main

import (
	"runtime"
	"time"
)

func main() {
	_ = time.Now()
	_ = runtime.NumCPU()
}
