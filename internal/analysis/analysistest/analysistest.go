// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its findings against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on the
// in-repo framework.
//
// A fixture file marks each line that must produce a diagnostic:
//
//	for k := range m { // want `nondeterministic iteration`
//
// The test fails if a wanted diagnostic is missing, or if the analyzer
// reports anything no want comment claims — so every fixture proves both
// detection and precision.
package analysistest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"lppart/internal/analysis"
)

// wantRe extracts the quoted pattern of a want comment; both `...` and
// "..." quoting are accepted.
var wantRe = regexp.MustCompile("//\\s*want\\s+(`([^`]*)`|\"([^\"]*)\")")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> relative to the test's working directory,
// applies the analyzer and verifies its diagnostics against the want
// comments. It returns the diagnostics for any extra assertions.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) []analysis.Diagnostic {
	t.Helper()
	_, diags := runOn(t, a, pkg)
	return diags
}

// runOn is the shared load-and-check core of Run and RunFix; it returns
// the loaded fixture package so callers can reuse its FileSet (fix
// edits hold token.Pos values that only resolve against it).
func runOn(t *testing.T, a *analysis.Analyzer, pkg string) (*analysis.Package, []analysis.Diagnostic) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	p, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := analysis.Run(a, p)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, p)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				w.file, w.line, w.pattern)
		}
	}
	return p, diags
}

// collectWants scans the fixture's comments for want annotations.
func collectWants(t *testing.T, p *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[2]
				if pat == "" {
					pat = m[3]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pat, err)
				}
				pos := p.Fset.Position(c.Pos())
				wants = append(wants, &expectation{
					file: pos.Filename, line: pos.Line, pattern: re,
				})
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation satisfied by d.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
			w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// RunFix runs the analyzer on a fixture (checking want comments as Run
// does), applies every suggested fix in memory, and compares each
// edited file against a sibling `.golden` file (`foo.go` →
// `foo.go.golden`). Nothing is written back, so fixtures stay pristine
// and the round-trip `source --lppartvet -fix--> golden` is asserted on
// every test run.
func RunFix(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	p, diags := runOn(t, a, pkg)
	res, err := analysis.ApplyFixes(p.Fset, diags, nil)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(res.Files) == 0 {
		t.Fatalf("%s: fixture %s produced no suggested fixes", a.Name, pkg)
	}
	for name, got := range res.Files { //lint:ordered test assertions, order-free
		golden := name + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("missing golden file for %s: %v", name, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("fixed %s differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
				name, golden, got, want)
		}
	}
}

// MustBeClean asserts the analyzer reports nothing on the fixture; used
// for the accept-a-clean-file half of each pass's contract.
func MustBeClean(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	diags := Run(t, a, pkg)
	if len(diags) != 0 {
		var sb strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&sb, "\n  %s", d)
		}
		t.Errorf("%s: expected clean fixture %s, got %d findings:%s",
			a.Name, pkg, len(diags), sb.String())
	}
}
