package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadProgram builds a Program over the named module-relative dirs.
func loadProgram(t *testing.T, dirs ...string) *Program {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var pkgs []*Package
	for _, d := range dirs {
		p, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(d)))
		if err != nil {
			t.Fatalf("LoadDir %s: %v", d, err)
		}
		pkgs = append(pkgs, p)
	}
	return BuildProgram(pkgs)
}

// nodeByName finds a node by display name.
func nodeByName(t *testing.T, prog *Program, name string) *FuncNode {
	t.Helper()
	for _, n := range prog.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// TestProgramFactsAndClosure proves the builder on the prog fixture:
// signature facts, bottom-up Allocates through a bound closure, the hot
// BFS reaching the closure and its callee, and the exempt boundary
// stopping traversal before grow.
func TestProgramFactsAndClosure(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "prog"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	prog := BuildProgram([]*Package{p})

	root := nodeByName(t, prog, "prog.Root")
	if !root.Facts.HotRoot || !root.Facts.Hot {
		t.Errorf("Root facts = %+v, want HotRoot and Hot", root.Facts)
	}
	if !root.Facts.AcceptsCtx || !root.Facts.ReturnsError {
		t.Errorf("Root signature facts = %+v, want AcceptsCtx and ReturnsError", root.Facts)
	}
	if !root.Facts.Allocates || !strings.Contains(root.Facts.AllocWhy, "calls ") {
		t.Errorf("Root.Allocates = %v (why %q), want propagated bottom-up",
			root.Facts.Allocates, root.Facts.AllocWhy)
	}

	step := nodeByName(t, prog, "prog.Root.step")
	if !step.Facts.Hot || step.Facts.HotVia != "prog.Root" {
		t.Errorf("step facts = %+v, want Hot via prog.Root", step.Facts)
	}

	helper := nodeByName(t, prog, "prog.helper")
	if !helper.Facts.Hot || !helper.Facts.Allocates || len(helper.Allocs) != 1 {
		t.Errorf("helper facts = %+v allocs = %d, want hot with one direct site",
			helper.Facts, len(helper.Allocs))
	}

	exempt := nodeByName(t, prog, "prog.Exempt")
	if !exempt.Facts.AllocExempt {
		t.Errorf("Exempt facts = %+v, want AllocExempt", exempt.Facts)
	}
	if grow := nodeByName(t, prog, "prog.grow"); grow.Facts.Hot {
		t.Errorf("grow is hot: the exempt boundary must stop traversal")
	}
	if plain := nodeByName(t, prog, "prog.Plain"); plain.Facts.Allocates || plain.Facts.Hot {
		t.Errorf("Plain facts = %+v, want neither Allocates nor Hot", plain.Facts)
	}

	roots := prog.HotRoots()
	if len(roots) != 1 || roots[0] != root {
		t.Errorf("HotRoots = %d entries, want exactly Root", len(roots))
	}
}

// TestHotClosureCoversAllocGuardedFunctions pins the pass to the repo's
// runtime contract: every function guarded by a testing.AllocsPerRun
// test (asic.(*Core).RunASIC via TestRunASICZeroAlloc,
// partition.(*DeltaEvaluator).EvalInto via TestDeltaEvalIntoZeroAlloc)
// plus the annotated scheduler/splice inner loops must be hot roots,
// and the closure must cross package boundaries (behav.EvalBinOp runs
// inside the ASIC interpreter loop).
func TestHotClosureCoversAllocGuardedFunctions(t *testing.T) {
	if testing.Short() {
		t.Skip("loads half the module through the source importer")
	}
	prog := loadProgram(t,
		"internal/cdfg", "internal/tech", "internal/behav",
		"internal/sched", "internal/asic", "internal/partition", "internal/dse",
	)
	for _, name := range []string{
		"sched.ScheduleBlock",
		"asic.(*Core).RunASIC",
		"partition.(*Priced).Add",
		"partition.(*Priced).Remove",
		"partition.(*DeltaEvaluator).EvalInto",
		"dse.searchGeometry.walk",
	} {
		if n := nodeByName(t, prog, name); !n.Facts.HotRoot {
			t.Errorf("%s: HotRoot = false, want annotated root", name)
		}
	}
	if n := nodeByName(t, prog, "behav.EvalBinOp"); !n.Facts.Hot {
		t.Errorf("behav.EvalBinOp not in hot closure: cross-package BFS broken")
	}
	if n := nodeByName(t, prog, "partition.scheduleBind"); !n.Facts.AllocExempt {
		t.Errorf("partition.scheduleBind: AllocExempt = false, want cold-fill boundary")
	}
}
