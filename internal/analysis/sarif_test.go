package analysis

import (
	"encoding/json"
	"go/token"
	"testing"
)

// TestSARIFStructure validates the emitted log against the 2.1.0
// contract the code-scanning upload relies on: schema URI, version,
// one run, a rule per analyzer with stable indices, and root-relative
// slash URIs with 1-based regions.
func TestSARIFStructure(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "zeta", Doc: "last alphabetically"},
		{Name: "alpha", Doc: "first alphabetically"},
	}
	diags := []Diagnostic{
		{Analyzer: "zeta", Pos: token.Position{Filename: "/mod/internal/a/a.go", Line: 3, Column: 7}, Message: "zeta says"},
		{Analyzer: "alpha", Pos: token.Position{Filename: "/elsewhere/b.go", Line: 1, Column: 1}, Message: "alpha says"},
	}
	out, err := SARIF("2.0.0", analyzers, diags, "/mod")
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name    string `json:"name"`
					Version string `json:"version"`
					Rules   []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if log.Schema != SARIFSchemaURI || log.Version != "2.1.0" {
		t.Errorf("schema/version = %q / %q", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Version != "2.0.0" {
		t.Errorf("driver version = %q", run.Tool.Driver.Version)
	}
	// Rules are sorted by name for stable indices across runs.
	if len(run.Tool.Driver.Rules) != 2 ||
		run.Tool.Driver.Rules[0].ID != "alpha" || run.Tool.Driver.Rules[1].ID != "zeta" {
		t.Fatalf("rules = %+v, want [alpha zeta]", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	zeta := run.Results[0]
	if zeta.RuleID != "zeta" || zeta.RuleIndex != 1 || zeta.Level != "error" {
		t.Errorf("zeta result = %+v", zeta)
	}
	loc := zeta.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/a/a.go" {
		t.Errorf("uri = %q, want root-relative slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 3 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	// A file outside root keeps its absolute path.
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/b.go" {
		t.Errorf("outside-root uri = %q", uri)
	}
}
