package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncNode is one function in the program call graph: a declared
// function or method, or a function literal (closures get their own
// nodes so a hot-path root can be a DFS body bound to a local variable).
type FuncNode struct {
	// Pkg is the package holding the function's body.
	Pkg *Package
	// Obj is the declared function object; nil for function literals.
	Obj *types.Func
	// Decl is the declaration; nil for function literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Name is the display name: "sched.ScheduleBlock",
	// "partition.(*Priced).Add", "dse.searchGeometry.walk".
	Name string
	// Callees are the statically resolved targets with bodies in the
	// program, in first-call order, deduplicated.
	Callees []*FuncNode
	// ExternCallees are resolved functions without a body in the
	// program (standard library, interface methods), same ordering.
	ExternCallees []*types.Func
	// Allocs are the allocation-inducing constructs syntactically
	// inside this function's own body (nested literals excluded — they
	// have their own nodes).
	Allocs []AllocSite
	// Facts are the bottom-up summaries.
	Facts Facts

	anchor token.Pos // decl keyword or binding-statement position
}

// Facts are the per-function summaries the interprocedural passes
// consume. AcceptsCtx and ReturnsError are derived from the signature;
// Allocates is propagated bottom-up over the call graph.
type Facts struct {
	// AcceptsCtx: some parameter has type context.Context.
	AcceptsCtx bool
	// ReturnsError: some result has type error.
	ReturnsError bool
	// Allocates: the body contains an allocation-inducing construct, or
	// the function calls (transitively) one that does.
	Allocates bool
	// AllocWhy names the first construct or callee responsible.
	AllocWhy string
	// HotRoot: the declaration (or closure binding) carries a
	// //lint:hotpath annotation.
	HotRoot bool
	// Hot: reachable from a hot root over the call graph.
	Hot bool
	// HotVia names the root whose closure first reached this node.
	HotVia string
	// AllocExempt: the declaration carries a //lint:alloc
	// acknowledgement, exempting the whole body from hot-path
	// allocation scanning and stopping closure traversal through it
	// (an acknowledged cold-fill boundary, e.g. a memo miss).
	AllocExempt bool
}

// AllocSite is one allocation-inducing construct.
type AllocSite struct {
	Pos  token.Pos
	What string
}

// Program is the whole-program view: every loaded package, the
// cross-package call graph and the propagated facts.
type Program struct {
	Pkgs  []*Package
	Nodes []*FuncNode // deterministic: package path, then position

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// declOf maps a variable object to the node that declares it
	// (ValueSpec or the defining AssignStmt), for the append-capacity
	// heuristic.
	declOf map[types.Object]ast.Node
	// litBound maps a variable object to the function literal bound to
	// it (name := func(...){...} and friends), for call resolution.
	litBound map[types.Object]*ast.FuncLit
}

// NodeOf returns the node of a declared function, or nil.
func (p *Program) NodeOf(obj *types.Func) *FuncNode { return p.byObj[obj] }

// LitNode returns the node of a function literal, or nil.
func (p *Program) LitNode(lit *ast.FuncLit) *FuncNode { return p.byLit[lit] }

// HotRoots returns the annotated roots in deterministic order.
func (p *Program) HotRoots() []*FuncNode {
	var roots []*FuncNode
	for _, n := range p.Nodes {
		if n.Facts.HotRoot {
			roots = append(roots, n)
		}
	}
	return roots
}

// BuildProgram assembles the call graph and facts over the given
// packages. Only functions whose bodies are among pkgs become nodes;
// everything else resolved (stdlib, interface methods) lands in
// ExternCallees. The result is deterministic: nodes, callees and sites
// follow source order.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:     pkgs,
		byObj:    make(map[*types.Func]*FuncNode),
		byLit:    make(map[*ast.FuncLit]*FuncNode),
		declOf:   make(map[types.Object]ast.Node),
		litBound: make(map[types.Object]*ast.FuncLit),
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	// Pass 1: nodes for declarations, variable-declaration index, and
	// literal bindings (needed before edges so recursion through a
	// bound closure resolves).
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			prog.indexFile(pkg, f)
		}
	}
	// Pass 2: literal nodes + edges + local alloc sites.
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			markers := markerLines(pkg.Fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := prog.byObj[obj]
				b := &builder{prog: prog, pkg: pkg, markers: markers}
				b.walkFunc(node, fd.Body)
			}
		}
	}
	prog.finish()
	return prog
}

// indexFile creates declaration nodes and records variable declarations
// and literal bindings for one file.
func (prog *Program) indexFile(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		node := &FuncNode{
			Pkg: pkg, Obj: obj, Decl: fd,
			Name:   displayName(pkg, obj),
			anchor: fd.Pos(),
		}
		node.Facts.AcceptsCtx, node.Facts.ReturnsError = signatureFacts(obj.Type())
		prog.byObj[obj] = node
		prog.Nodes = append(prog.Nodes, node)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				prog.declOf[obj] = n
				if i < len(n.Values) {
					if lit, ok := n.Values[i].(*ast.FuncLit); ok {
						prog.litBound[obj] = lit
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				// Multi-value unpacking: record declarations only.
				if n.Tok == token.DEFINE {
					for _, l := range n.Lhs {
						if id, ok := l.(*ast.Ident); ok {
							if obj := pkg.Info.Defs[id]; obj != nil {
								prog.declOf[obj] = n
							}
						}
					}
				}
				return true
			}
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				var obj types.Object
				if n.Tok == token.DEFINE {
					obj = pkg.Info.Defs[id]
					if obj != nil {
						prog.declOf[obj] = n.Rhs[i]
					}
				} else {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
					// Last binding wins; recursion patterns
					// (var walk func; walk = func(){...walk()...})
					// bind before the body is walked because this
					// index pass runs first. The assign statement
					// becomes the annotation anchor, so //lint markers
					// sit on the binding line, not the var declaration.
					prog.litBound[obj] = lit
					prog.declOf[obj] = n
				}
			}
		}
		return true
	})
}

// finish applies annotations, propagates facts and computes the hot
// closure.
func (prog *Program) finish() {
	// Bottom-up Allocates: fixed point over the call graph (cycles are
	// fine — the loop runs until nothing changes).
	for changed := true; changed; {
		changed = false
		for _, n := range prog.Nodes {
			if n.Facts.Allocates {
				continue
			}
			if len(n.Allocs) > 0 {
				n.Facts.Allocates = true
				n.Facts.AllocWhy = n.Allocs[0].What
				changed = true
				continue
			}
			for _, c := range n.Callees {
				if c.Facts.Allocates {
					n.Facts.Allocates = true
					n.Facts.AllocWhy = "calls " + c.Name
					changed = true
					break
				}
			}
			if !n.Facts.Allocates {
				for _, e := range n.ExternCallees {
					if e.Pkg() != nil && e.Pkg().Path() == "fmt" {
						n.Facts.Allocates = true
						n.Facts.AllocWhy = "calls fmt." + e.Name()
						changed = true
						break
					}
				}
			}
		}
	}

	// Hot closure: BFS from the annotated roots. An AllocExempt node is
	// marked hot (it is reachable) but not expanded — it is an
	// acknowledged cold-fill boundary.
	var queue []*FuncNode
	for _, n := range prog.Nodes {
		if n.Facts.HotRoot {
			n.Facts.Hot = true
			n.Facts.HotVia = n.Name
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.Facts.AllocExempt && !n.Facts.HotRoot {
			continue
		}
		for _, c := range n.Callees {
			if !c.Facts.Hot {
				c.Facts.Hot = true
				c.Facts.HotVia = n.Facts.HotVia
				queue = append(queue, c)
			}
		}
	}
}

// builder walks one declaration, creating literal nodes and resolving
// edges; markers are the per-file lint marker lines.
type builder struct {
	prog    *Program
	pkg     *Package
	markers map[int][]string
}

// markerLines collects, per line, the lint markers of a file's comments.
func markerLines(fset *token.FileSet, f *ast.File) map[int][]string {
	out := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			i := strings.Index(text, "lint:")
			if i < 0 {
				continue
			}
			rest := text[i+len("lint:"):]
			j := 0
			for j < len(rest) && rest[j] != ' ' && rest[j] != '\t' && rest[j] != ',' {
				j++
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], rest[:j])
		}
	}
	return out
}

// markedAt reports whether marker appears on line or the line above.
func (b *builder) markedAt(pos token.Pos, marker string) bool {
	line := b.pkg.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, m := range b.markers[l] {
			if m == marker {
				return true
			}
		}
	}
	return false
}

// walkFunc walks one function body, attributing calls and alloc sites to
// node and spawning child nodes for nested literals.
func (b *builder) walkFunc(node *FuncNode, body *ast.BlockStmt) {
	node.Facts.HotRoot = node.Facts.HotRoot || b.markedAt(node.anchor, "hotpath")
	node.Facts.AllocExempt = b.markedAt(node.anchor, "alloc")
	litCount := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			child, seen := b.prog.byLit[n] // a forward call may have created it
			if !seen {
				child = &FuncNode{
					Pkg: b.pkg, Lit: n,
					Name:   fmt.Sprintf("%s.func%d", node.Name, litCount+1),
					anchor: n.Pos(),
				}
				child.Facts.AcceptsCtx, child.Facts.ReturnsError =
					signatureFacts(b.pkg.Info.TypeOf(n))
				b.prog.byLit[n] = child
				b.prog.Nodes = append(b.prog.Nodes, child)
			}
			litCount++
			if name, bindPos, ok := b.bindingOf(n); ok {
				child.Name = node.Name + "." + name
				child.anchor = bindPos
			}
			b.walkFunc(child, n.Body)
			return false
		case *ast.CallExpr:
			b.addEdges(node, n)
		}
		return true
	}
	ast.Inspect(body, walk)
	node.Allocs = b.allocSites(node, body)
}

// bindingOf finds the variable a literal is bound to, consulting the
// binding index built in pass 1.
func (b *builder) bindingOf(lit *ast.FuncLit) (name string, pos token.Pos, ok bool) {
	for obj, l := range b.prog.litBound { //lint:ordered first match is unique: a literal has one binding
		if l == lit {
			return obj.Name(), bindAnchor(b.prog.declOf[obj], lit), true
		}
	}
	return "", token.NoPos, false
}

// bindAnchor picks the annotation anchor for a bound literal: the
// binding statement when the index recorded one, else the literal.
func bindAnchor(decl ast.Node, lit *ast.FuncLit) token.Pos {
	if decl != nil {
		return decl.Pos()
	}
	return lit.Pos()
}

// addEdges resolves one call expression to graph edges.
func (b *builder) addEdges(node *FuncNode, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := b.pkg.Info.Uses[fun]
		if obj == nil {
			obj = b.pkg.Info.Defs[fun]
		}
		if obj == nil {
			return
		}
		if lit, ok := b.prog.litBound[obj]; ok {
			// Call through a local closure binding. The literal node
			// exists once its own walkFunc ran; link lazily by literal.
			b.linkLit(node, lit)
			return
		}
		if fn, ok := obj.(*types.Func); ok {
			b.link(node, fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := b.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			b.link(node, fn)
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: direct edge.
		b.linkLit(node, fun)
	}
}

// link adds an edge to a resolved function object, dedup preserving
// first-call order.
func (b *builder) link(node *FuncNode, fn *types.Func) {
	if target, ok := b.prog.byObj[fn]; ok {
		for _, c := range node.Callees {
			if c == target {
				return
			}
		}
		node.Callees = append(node.Callees, target)
		return
	}
	for _, e := range node.ExternCallees {
		if e == fn {
			return
		}
	}
	node.ExternCallees = append(node.ExternCallees, fn)
}

// linkLit adds an edge to a literal's node, creating the edge even when
// the literal's node is built later in the same walk (the byLit map is
// filled during pass 2 in source order; a forward reference — calling a
// closure declared later — resolves because edges are added after every
// literal in the file has been visited at least by the binding index).
func (b *builder) linkLit(node *FuncNode, lit *ast.FuncLit) {
	if target, ok := b.prog.byLit[lit]; ok {
		for _, c := range node.Callees {
			if c == target {
				return
			}
		}
		node.Callees = append(node.Callees, target)
		return
	}
	// Literal not yet visited: defer by creating its node now; walkFunc
	// will reuse it when it arrives.
	child := &FuncNode{Pkg: b.pkg, Lit: lit, Name: node.Name + ".func", anchor: lit.Pos()}
	child.Facts.AcceptsCtx, child.Facts.ReturnsError = signatureFacts(b.pkg.Info.TypeOf(lit))
	b.prog.byLit[lit] = child
	b.prog.Nodes = append(b.prog.Nodes, child)
	node.Callees = append(node.Callees, child)
}

// displayName renders "pkg.Func" / "pkg.(*T).Method".
func displayName(pkg *Package, obj *types.Func) string {
	short := pkg.Name
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		name := types.TypeString(t, func(p *types.Package) string { return "" })
		return fmt.Sprintf("%s.(%s%s).%s", short, ptr, name, obj.Name())
	}
	return short + "." + obj.Name()
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// IsErrorType reports whether t is the predeclared error type.
func IsErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj() == types.Universe.Lookup("error")
}

// signatureFacts derives the signature-level facts of a function type.
func signatureFacts(t types.Type) (acceptsCtx, returnsError bool) {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if IsContextType(sig.Params().At(i).Type()) {
			acceptsCtx = true
			break
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if IsErrorType(sig.Results().At(i).Type()) {
			returnsError = true
			break
		}
	}
	return acceptsCtx, returnsError
}

// AcceptsContext reports whether fn's signature takes a context.Context
// (works for any resolved function, including stdlib imports).
func AcceptsContext(fn *types.Func) bool {
	ctx, _ := signatureFacts(fn.Type())
	return ctx
}
