// Package prog exercises the call-graph builder: signature-derived
// facts, bottom-up Allocates propagation, closures as first-class nodes
// reached through their binding, the hot-closure BFS and the exempt
// traversal stop.
package prog

import "context"

//lint:hotpath fixture root
func Root(ctx context.Context, n int) (int, error) {
	step := func(i int) int { return helper(i) }
	if n < 0 {
		Exempt()
	}
	return step(n), nil
}

// helper allocates directly; Root inherits Allocates through step.
func helper(i int) int {
	return len(make([]byte, i))
}

// Exempt is an acknowledged cold-fill boundary: reachable from Root but
// never expanded, so grow stays outside the hot closure.
//
//lint:alloc fixture cold-fill boundary
func Exempt() []int {
	return grow()
}

func grow() []int {
	out := make([]int, 0, 2)
	return append(out, 1, 2)
}

// Plain carries neither fact-bearing signature parts nor allocations.
func Plain(x int) int { return x }
