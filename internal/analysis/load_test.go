package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module and returns
// its directory.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	return dir
}

// TestLoaderTypeChecksModulePackage proves the offline loader resolves
// module-internal imports and produces full type information.
func TestLoaderTypeChecksModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModPath != "lppart" {
		t.Fatalf("module path = %q, want lppart", l.ModPath)
	}
	p, err := l.LoadDir(filepath.Join(l.ModRoot, "internal", "dataflow"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if p.Path != "lppart/internal/dataflow" {
		t.Errorf("path = %q", p.Path)
	}
	if p.Types == nil || p.Types.Scope().Lookup("GenUse") == nil {
		t.Error("type info missing GenUse")
	}
	// Memoized: the transitively imported cdfg package is cached.
	if _, ok := l.pkgs["lppart/internal/cdfg"]; !ok {
		t.Error("transitive module import not memoized")
	}
}

// TestExpandSkipsTestdata proves pattern expansion covers the package
// tree but never descends into testdata fixtures.
func TestExpandSkipsTestdata(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := Expand(l.ModRoot, "./internal/...")
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	foundSelf := false
	for _, d := range dirs {
		if filepath.Base(d) == "testdata" || filepath.Base(filepath.Dir(d)) == "testdata" {
			t.Errorf("expansion descended into testdata: %s", d)
		}
		if d == filepath.Join(l.ModRoot, "internal", "analysis") {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Error("expansion missed internal/analysis")
	}
}

// TestLoaderSkipsBuildTagExcludedFiles proves files gated out by
// //go:build constraints or GOOS filename suffixes never reach the type
// checker: each excluded file below redeclares Target, so loading only
// succeeds if both are filtered, while the satisfied go1.1 constraint
// keeps its file in.
func TestLoaderSkipsBuildTagExcludedFiles(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	dir := writeModule(t, map[string]string{
		"a.go":                 "package p\n\nfunc Target() int { return 1 }\n",
		"b.go":                 "//go:build never\n\npackage p\n\nfunc Target() int { return 2 }\n",
		"c_" + otherOS + ".go": "package p\n\nfunc Target() int { return 3 }\n",
		"d.go":                 "//go:build go1.1\n\npackage p\n\nfunc Kept() int { return Target() }\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir with excluded files: %v", err)
	}
	if len(p.Files) != 2 {
		t.Errorf("loaded %d files, want 2 (a.go and d.go)", len(p.Files))
	}
	if p.Types.Scope().Lookup("Kept") == nil {
		t.Error("satisfied go1.1 constraint dropped its file")
	}
}

// TestLoaderReportsSyntaxErrorPosition proves a parse failure surfaces
// the offending file and line, not a bare error.
func TestLoaderReportsSyntaxErrorPosition(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go":      "package p\n\nfunc OK() {}\n",
		"broken.go": "package p\n\nfunc Bad( {\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err = l.LoadDir(dir)
	if err == nil {
		t.Fatal("LoadDir succeeded on a syntax error")
	}
	if !strings.Contains(err.Error(), "broken.go:3") {
		t.Errorf("error %q does not carry file:line of the syntax error", err)
	}
}

// TestLoaderStdlibOnlyPackage proves the GOROOT source-importer
// fallback: a package whose imports are all standard library
// type-checks without any module-internal resolution.
func TestLoaderStdlibOnlyPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go": `package p

import (
	"fmt"
	"strings"
)

func Join(xs []string) string { return fmt.Sprintf("%s", strings.Join(xs, ",")) }
`,
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	obj := p.Types.Scope().Lookup("Join")
	if obj == nil {
		t.Fatal("Join not in scope")
	}
	if got := obj.Type().String(); got != "func(xs []string) string" {
		t.Errorf("Join type = %q", got)
	}
}
