package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoaderTypeChecksModulePackage proves the offline loader resolves
// module-internal imports and produces full type information.
func TestLoaderTypeChecksModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModPath != "lppart" {
		t.Fatalf("module path = %q, want lppart", l.ModPath)
	}
	p, err := l.LoadDir(filepath.Join(l.ModRoot, "internal", "dataflow"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if p.Path != "lppart/internal/dataflow" {
		t.Errorf("path = %q", p.Path)
	}
	if p.Types == nil || p.Types.Scope().Lookup("GenUse") == nil {
		t.Error("type info missing GenUse")
	}
	// Memoized: the transitively imported cdfg package is cached.
	if _, ok := l.pkgs["lppart/internal/cdfg"]; !ok {
		t.Error("transitive module import not memoized")
	}
}

// TestExpandSkipsTestdata proves pattern expansion covers the package
// tree but never descends into testdata fixtures.
func TestExpandSkipsTestdata(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := Expand(l.ModRoot, "./internal/...")
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	foundSelf := false
	for _, d := range dirs {
		if filepath.Base(d) == "testdata" || filepath.Base(filepath.Dir(d)) == "testdata" {
			t.Errorf("expansion descended into testdata: %s", d)
		}
		if d == filepath.Join(l.ModRoot, "internal", "analysis") {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Error("expansion missed internal/analysis")
	}
}
