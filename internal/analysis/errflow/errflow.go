// Package errflow implements the lppartvet pass that enforces the
// repo's error discipline:
//
//  1. Error returns must not be silently dropped outside tests. A call
//     whose error result is discarded — as a bare expression statement,
//     a go/defer statement, or an assignment where every error result
//     lands in the blank identifier — hides scheduling and persistence
//     failures. The deliberate swallows (the memostore Put best-effort
//     writes, the jobstore GC) carry a `//lint:err <why>`
//     acknowledgement.
//  2. fmt.Errorf at a package boundary must wrap with %w, not flatten
//     with %v/%s: flattening breaks errors.Is/As matching of sentinel
//     errors such as partition.ErrInfeasible across the serve API. The
//     suggested fix rewrites the verb in place. Package main and tests
//     are exempt (top-level reporting may flatten).
//
// Escape hatch: //lint:err on the flagged line or its enclosing
// statement.
package errflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"lppart/internal/analysis"
)

// Analyzer is the errflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc: "flag dropped error returns (expression statements, go/defer, blank assignments) " +
		"outside tests and fmt.Errorf wrapping with %v/%s instead of %w outside main; " +
		"acknowledge deliberate swallows with //lint:err",
	Run: run,
}

// ignoredRecv lists writer types whose dropped write errors are
// conventional noise: never-fails-by-contract (hash.Hash, Builder,
// Buffer), sticky errors surfaced later (bufio.Writer at Flush), or
// nothing-you-can-do (an http response mid-write). The fmt print family
// is excluded by package path instead.
var ignoredRecv = map[string]bool{
	"*strings.Builder":        true,
	"*bytes.Buffer":           true,
	"*bufio.Writer":           true,
	"hash.Hash":               true,
	"hash.Hash32":             true,
	"hash.Hash64":             true,
	"net/http.ResponseWriter": true,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDropped(pass, call, "discarded")
				}
			case *ast.GoStmt:
				checkDropped(pass, n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				// `defer x.Close()` is idiomatic best-effort cleanup;
				// other deferred drops still count.
				if !isCloseCall(n.Call) {
					checkDropped(pass, n.Call, "discarded by defer")
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			case *ast.CallExpr:
				if !isMain {
					checkErrorf(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkDropped reports a call statement that returns an error nobody
// reads.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, how string) {
	if !returnsError(pass.TypesInfo, call) || ignoredCallee(pass.TypesInfo, call) {
		return
	}
	if pass.Suppressed(call.Pos(), "err") {
		return
	}
	pass.Reportf(call.Pos(),
		"error returned by %s is %s; handle it or acknowledge with //lint:err",
		calleeName(pass.TypesInfo, call), how)
}

// checkBlankAssign reports assignments whose error results all land in
// the blank identifier: `_ = f()` or `_, _ = g()`.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !returnsError(pass.TypesInfo, call) || ignoredCallee(pass.TypesInfo, call) {
		return
	}
	if pass.Suppressed(as.Pos(), "err") {
		return
	}
	pass.Reportf(as.Pos(),
		"error returned by %s is assigned to _; handle it or acknowledge with //lint:err",
		calleeName(pass.TypesInfo, call))
}

// checkErrorf reports fmt.Errorf calls that format an error argument
// with a flattening verb instead of %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, verb := range scanVerbs(format) {
		argIdx := 1 + verb.arg
		if argIdx >= len(call.Args) {
			break
		}
		if verb.char != 'v' && verb.char != 's' {
			continue
		}
		arg := call.Args[argIdx]
		if !analysis.IsErrorType(pass.TypesInfo.TypeOf(arg)) {
			continue
		}
		if pass.Suppressed(call.Pos(), "err") {
			return
		}
		// The verb sits inside the format string literal; rewrite just
		// its character. Offsets only line up for plain (non-raw,
		// escape-free prefix) literals — fall back to a fix-less report
		// otherwise.
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && isPlainPrefix(lit.Value, verb.charOff) {
			vpos := lit.ValuePos + 1 + token.Pos(verb.charOff) // +1 past opening quote
			pass.ReportFix(call.Pos(), analysis.SuggestedFix{
				Message: "wrap with %w",
				Edits: []analysis.TextEdit{{
					Pos: vpos, End: vpos + 1, NewText: "w",
				}},
			}, "fmt.Errorf formats error %s with %%%c, breaking errors.Is/As matching; wrap with %%w",
				exprString(arg), verb.char)
		} else {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats error %s with %%%c, breaking errors.Is/As matching; wrap with %%w",
				exprString(arg), verb.char)
		}
		return // one report per call
	}
}

// verbRef is one formatting verb: the byte offset of the verb character
// in the (unquoted) format string, the character itself, and the index
// of the operand it consumes.
type verbRef struct {
	charOff int
	char    byte
	arg     int
}

// scanVerbs walks a format string pairing verbs with operand indices
// ('*' width/precision consume an operand each; '%%' consumes none).
func scanVerbs(format string) []verbRef {
	var verbs []verbRef
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision, '*'
		for i < len(format) && strings.IndexByte("+-# 0123456789.*", format[i]) >= 0 {
			if format[i] == '*' {
				arg++
			}
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, verbRef{charOff: i, char: format[i], arg: arg})
		arg++
	}
	return verbs
}

// isPlainPrefix reports whether the quoted literal text is a regular
// interpreted string with no escape sequence up to and including
// content byte n, so byte offsets into the unquoted value map 1:1 onto
// source positions.
func isPlainPrefix(quoted string, n int) bool {
	if len(quoted) < 2 || quoted[0] != '"' {
		return false
	}
	body := quoted[1:]
	if n+1 > len(body) {
		return false
	}
	return !strings.Contains(body[:n+1], "\\")
}

// returnsError reports whether a call's results include an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if analysis.IsErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return analysis.IsErrorType(t)
}

// ignoredCallee reports whether the call target's dropped error is
// conventional noise: the fmt print family, io.WriteString into an
// ignored writer, or a method called on (or declared by) an ignored
// writer type.
func ignoredCallee(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Print") ||
			strings.HasPrefix(fn.Name(), "Fprint") ||
			strings.HasPrefix(fn.Name(), "Sprint") {
			return true
		}
	case "io":
		if fn.Name() == "WriteString" && len(call.Args) > 0 {
			if t := info.TypeOf(call.Args[0]); t != nil && ignoredRecv[t.String()] {
				return true
			}
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if ignoredRecv[sig.Recv().Type().String()] {
			return true
		}
		// An interface method (io.Writer.Write) reached through a
		// concrete or richer interface value: judge the operand's
		// static type (hash.Hash, *bufio.Writer, ...).
		if t := info.TypeOf(sel.X); t != nil && ignoredRecv[t.String()] {
			return true
		}
	}
	return false
}

// isCloseCall reports whether the call invokes a method named Close.
func isCloseCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Close"
}

// calleeName renders the call target for a diagnostic.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return "(" + sig.Recv().Type().String() + ")." + fn.Name()
			}
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fun.Sel.Name
	}
	return "call"
}

// exprString renders a short description of an argument expression.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "argument"
}
