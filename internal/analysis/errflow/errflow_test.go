package errflow_test

import (
	"testing"

	"lppart/internal/analysis/analysistest"
	"lppart/internal/analysis/errflow"
)

// TestFlagsDrops proves each drop shape and the flattening Errorf fire.
func TestFlagsDrops(t *testing.T) {
	diags := analysistest.Run(t, errflow.Analyzer, "bad")
	if len(diags) != 6 {
		t.Errorf("want 6 findings in fixture bad, got %d", len(diags))
	}
}

// TestAcceptsDisciplined proves handled errors, acknowledged swallows,
// deferred Close, conventional writers and non-error %v all pass.
func TestAcceptsDisciplined(t *testing.T) {
	analysistest.MustBeClean(t, errflow.Analyzer, "good")
}

// TestFix round-trips the %v/%s→%w rewrites against the golden file,
// including a verb preceded by another operand-consuming verb.
func TestFix(t *testing.T) {
	analysistest.RunFix(t, errflow.Analyzer, "fix")
}
