// Package store is the errflow -fix round-trip fixture: rewriting each
// flattening verb to %w must produce fix.go.golden byte-for-byte. WrapS
// places the error behind a consumed %d operand, exercising the
// verb-to-operand pairing.
package store

import "fmt"

func Wrap(err error) error {
	return fmt.Errorf("open: %v", err) // want `wrap with %w`
}

func WrapS(err error) error {
	return fmt.Errorf("scan %d: %s", 3, err) // want `wrap with %w`
}
