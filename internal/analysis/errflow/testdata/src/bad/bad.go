// Package store is the detection half of the errflow fixture: every
// drop shape (expression statement, go, defer of a non-Close call,
// all-blank assignment) and the flattening Errorf fire once.
package store

import (
	"errors"
	"fmt"
)

var errBase = errors.New("boom")

func work() error { return errBase }

func pair() (int, error) { return 0, errBase }

func Drop() {
	work()        // want `error returned by work is discarded; handle it`
	go work()     // want `error returned by work is discarded by go statement`
	defer work()  // want `error returned by work is discarded by defer`
	_ = work()    // want `error returned by work is assigned to _`
	_, _ = pair() // want `error returned by pair is assigned to _`
}

func Wrap(err error) error {
	return fmt.Errorf("load failed: %v", err) // want `fmt.Errorf formats error err with %v, breaking errors.Is/As matching; wrap with %w`
}
