// Package store is the clean half of the errflow contract: handled
// errors, an acknowledged swallow, deferred Close, the conventional
// never-fails writers, the fmt print family, and %v on a non-error.
package store

import (
	"errors"
	"fmt"
	"strings"
)

var errBase = errors.New("boom")

func work() error { return errBase }

type closer struct{}

func (closer) Close() error { return nil }

func Clean(n int) (string, error) {
	if err := work(); err != nil {
		return "", fmt.Errorf("clean: %w", err)
	}
	_ = work() //lint:err fire-and-forget warmup, failure only costs a cache miss
	var c closer
	defer c.Close() // idiomatic best-effort cleanup
	var sb strings.Builder
	sb.WriteString("ok")       // never fails by contract
	fmt.Println("progress", n) // print family
	return sb.String(), nil
}

// Flatten is fine: the %v operand is not an error.
func Flatten(n int) error {
	return fmt.Errorf("count %v exceeded", n)
}
