// Package analysis is the host for lppartvet's invariant-checker passes:
// a deliberately small reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, diagnostics, suggested fixes) on
// the standard library alone, so the checker suite builds in hermetic
// environments with no module proxy.
//
// The repo's headline guarantee — byte-identical Table 1 rows, Figure 6
// charts and decision trails at any worker count — is a *code* property:
// one unsorted `for k := range m` over a map in a result-producing path
// silently breaks it. The passes hosted here turn that contract into
// something machine-checked on every push; this package supplies the
// loading, reporting, suppression and call-graph plumbing they share.
//
// Since PR 8 the framework is interprocedural: BuildProgram assembles a
// type-checked cross-package call graph over every loaded package and
// derives per-function facts (allocates / accepts-ctx / returns-error,
// propagated bottom-up), which the hotalloc, ctxflow and errflow passes
// consume through Pass.Prog. See program.go and DESIGN.md §9.
//
// Suppression: a pass diagnostic can be acknowledged in source with a
// `//lint:<marker>` comment on the flagged line, the line above it, or —
// for multi-line statements — any line of the enclosing statement's span
// (e.g. //lint:ordered for an order-insensitive map loop). Markers are
// per-pass, so acknowledging one invariant never mutes another.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant-checker pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics (e.g. "detrange").
	Name string
	// Doc is the one-paragraph description `lppartvet -help` prints.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// TextEdit is one replacement of the source range [Pos, End) by NewText.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// SuggestedFix is a set of edits that resolve one diagnostic; applied by
// `lppartvet -fix` and checked against .golden files in analysistest.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fixes holds machine-applicable resolutions (may be empty). The
	// End positions let the SARIF emitter and -fix mode recover source
	// ranges; they refer to the FileSet the diagnostic came from.
	Fixes []SuggestedFix
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole-program view (call graph + facts) shared by
	// every package of the run; single-package invocations get a
	// program built over just that package.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying a suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// hasMarker reports whether comment text carries `lint:<marker>` as a
// whole word (so //lint:alloc does not satisfy marker "all").
func hasMarker(text, marker string) bool {
	want := "lint:" + marker
	for rest := text; ; {
		i := strings.Index(rest, want)
		if i < 0 {
			return false
		}
		after := rest[i+len(want):]
		if after == "" || after[0] == ' ' || after[0] == '\t' || after[0] == ',' {
			return true
		}
		rest = after
	}
}

// Suppressed reports whether a `//lint:<marker>` acknowledgement comment
// covers pos: on the same line, the line directly above, or — so that
// multi-line statements can be acknowledged where they start — any line
// of the innermost enclosing statement, from one line above its first
// line through its last (for block-carrying statements, through the
// opening brace of the block, not the whole body).
func (p *Pass) Suppressed(pos token.Pos, marker string) bool {
	file := p.fileOf(pos)
	if file == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	lo, hi := line-1, line
	if start, end, ok := stmtSpan(p.Fset, file, pos); ok {
		if start-1 < lo {
			lo = start - 1
		}
		if end > hi {
			hi = end
		}
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !hasMarker(c.Text, marker) {
				continue
			}
			cl := p.Fset.Position(c.Pos()).Line
			if cl >= lo && cl <= hi {
				return true
			}
		}
	}
	return false
}

// stmtSpan returns the line span of the innermost statement containing
// pos. Statements that carry a block (if/for/range/switch/select) span
// only through the line of the block's opening brace, so a suppression
// inside the body never silences a finding on the header.
func stmtSpan(fset *token.FileSet, file *ast.File, pos token.Pos) (startLine, endLine int, ok bool) {
	var best ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		if s, isStmt := n.(ast.Stmt); isStmt {
			if _, isBlock := s.(*ast.BlockStmt); !isBlock {
				best = s
			}
		}
		return true
	})
	if best == nil {
		return 0, 0, false
	}
	end := best.End()
	switch s := best.(type) {
	case *ast.IfStmt:
		end = s.Body.Lbrace
	case *ast.ForStmt:
		end = s.Body.Lbrace
	case *ast.RangeStmt:
		end = s.Body.Lbrace
	case *ast.SwitchStmt:
		end = s.Body.Lbrace
	case *ast.TypeSwitchStmt:
		end = s.Body.Lbrace
	case *ast.SelectStmt:
		end = s.Body.Lbrace
	}
	return fset.Position(best.Pos()).Line, fset.Position(end).Line, true
}

// fileOf returns the syntax file containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file. The loader
// does not parse test files by default, but fixture harnesses may.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run applies one analyzer to a loaded package and returns its findings
// in position order. The pass sees a program built over just this
// package; use RunWithProgram for whole-module call-graph context.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunWithProgram(a, pkg, BuildProgram([]*Package{pkg}))
}

// RunWithProgram applies one analyzer to a loaded package with a shared
// whole-program view (call graph + facts spanning every package of the
// run).
func RunWithProgram(a *Analyzer, pkg *Package, prog *Program) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Prog:      prog,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(pass.diags)
	return pass.diags, nil
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
