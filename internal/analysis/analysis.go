// Package analysis is the host for lppartvet's invariant-checker passes:
// a deliberately small reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, diagnostics) on the standard
// library alone, so the checker suite builds in hermetic environments
// with no module proxy.
//
// The repo's headline guarantee — byte-identical Table 1 rows, Figure 6
// charts and decision trails at any worker count — is a *code* property:
// one unsorted `for k := range m` over a map in a result-producing path
// silently breaks it. The passes hosted here (detrange, nondetsource,
// unitsafe) turn that contract into something machine-checked on every
// push; this package supplies the loading, reporting and suppression
// plumbing they share.
//
// Suppression: a pass diagnostic can be acknowledged in source with a
// `//lint:<marker>` comment on the flagged line or the line above it
// (e.g. //lint:ordered for an order-insensitive map loop). Markers are
// per-pass, so acknowledging one invariant never mutes another.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant-checker pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics (e.g. "detrange").
	Name string
	// Doc is the one-paragraph description `lppartvet -help` prints.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether the line holding pos (or the line directly
// above it) carries a `//lint:<marker>` acknowledgement comment.
func (p *Pass) Suppressed(pos token.Pos, marker string) bool {
	want := "lint:" + marker
	line := p.Fset.Position(pos).Line
	file := p.fileOf(pos)
	if file == nil {
		return false
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, want) {
				continue
			}
			cl := p.Fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// fileOf returns the syntax file containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file. The loader
// does not parse test files by default, but fixture harnesses may.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run applies one analyzer to a loaded package and returns its findings
// in position order.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(pass.diags)
	return pass.diags, nil
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
