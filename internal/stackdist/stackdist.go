// Package stackdist implements a single-pass, multi-configuration LRU
// cache profiler: Mattson et al.'s stack-distance algorithm, the
// technique behind the WARTS/Tycho trace tools the paper's Fig. 5
// methodology descends from ("Trace Tool" feeding a "Cache Profiler",
// after [17]), extended to whole (Sets, Assoc) families in the style of
// Hill & Smith's all-associativity simulation.
//
// One pass over a reference stream maintains per-set LRU stacks at the
// finest set granularity of the geometry grid. For the finest set count a
// reference's stack distance is simply the line's position in its own
// stack; for every coarser power-of-two set count the distance follows by
// set refinement — a coarse set is the disjoint union of finest sets, so
// the coarse distance adds, for each sibling finest set folding into the
// same coarse set, the number of lines touched more recently than the
// referenced line's previous access (a prefix of that sibling's
// recency-ordered stack). By the LRU inclusion property a reference hits
// a (Sets, Assoc) cache exactly when its stack distance at that set count
// is below Assoc, so one distance histogram per set count yields exact
// hit/miss counts for EVERY (Sets, Assoc) combination sharing the line
// size.
//
// Write-backs are exact too. A write-back/write-allocate cache writes a
// line back once per residency period that contains at least one store
// (at the dirty eviction ending the period, or at the final flush). A
// store starts such a period in (Sets, Assoc) exactly when the largest
// stack distance the line saw since the previous store to it — the store
// itself included, a cold start counting as infinite — is at least
// Assoc. Recording that running maximum into a second histogram at every
// store therefore counts dirty generations, and with them write-backs,
// exactly.
//
// Caveats (see EXPERIMENTS.md): LRU replacement only — the inclusion
// property does not hold for e.g. FIFO or random replacement — one line
// size per pass, and non-negative word addresses (negative addresses
// would alias differently in each geometry's truncated-division tag
// arithmetic, so no single line identity covers all set counts).
package stackdist

import (
	"fmt"
	"sort"

	"lppart/internal/cache"
)

// entry is one tracked line in a finest-granularity LRU stack.
type entry struct {
	line int32 // full line address (identity across all set counts)
	time int64 // tick of the most recent access
	// rm is, per grid set count, the largest stack distance the line saw
	// since the previous store to it (-1: none yet). Distances saturate
	// at the profiler's associativity cap. Nil on read-only profilers.
	rm []int32
}

// Profiler profiles every (Sets, Assoc) LRU geometry sharing one line
// size in a single pass over the reference stream.
type Profiler struct {
	lineWords int32
	setCounts []int // ascending, distinct powers of two
	maxSets   int   // finest granularity = last element of setCounts
	cap       int   // largest associativity of interest; distances saturate here
	writeBack bool

	stacks [][]entry // [maxSets] recency-ordered, most recent first, ≤ cap deep
	hist   [][]int64 // [set count][distance 0..cap]; bucket cap = miss for all
	wbHist [][]int64 // [set count][running max 0..cap], recorded per store

	dists    []int // per-access scratch: distance per set count
	tick     int64
	accesses int64
}

// New builds a profiler for every geometry with the given line size whose
// set count is in setCounts and whose associativity is at most maxAssoc.
// writeBack enables store tracking (data caches); a read-only profiler
// (instruction caches) rejects stores.
func New(lineWords int, setCounts []int, maxAssoc int, writeBack bool) (*Profiler, error) {
	if lineWords <= 0 || lineWords&(lineWords-1) != 0 {
		return nil, fmt.Errorf("stackdist: line words %d must be a positive power of two", lineWords)
	}
	if maxAssoc <= 0 || maxAssoc > cache.MaxAssoc {
		return nil, fmt.Errorf("stackdist: associativity cap %d out of range [1, %d]", maxAssoc, cache.MaxAssoc)
	}
	if len(setCounts) == 0 {
		return nil, fmt.Errorf("stackdist: no set counts")
	}
	sc := append([]int(nil), setCounts...)
	sort.Ints(sc)
	uniq := sc[:1]
	for _, s := range sc[1:] {
		if s != uniq[len(uniq)-1] {
			uniq = append(uniq, s)
		}
	}
	for _, s := range uniq {
		if s <= 0 || s&(s-1) != 0 {
			return nil, fmt.Errorf("stackdist: sets %d must be a positive power of two", s)
		}
	}
	p := &Profiler{
		lineWords: int32(lineWords),
		setCounts: uniq,
		maxSets:   uniq[len(uniq)-1],
		cap:       maxAssoc,
		writeBack: writeBack,
		dists:     make([]int, len(uniq)),
	}
	p.stacks = make([][]entry, p.maxSets)
	p.hist = make([][]int64, len(uniq))
	p.wbHist = make([][]int64, len(uniq))
	for i := range uniq {
		p.hist[i] = make([]int64, maxAssoc+1)
		p.wbHist[i] = make([]int64, maxAssoc+1)
	}
	return p, nil
}

// Accesses returns the number of references profiled so far.
func (p *Profiler) Accesses() int64 { return p.accesses }

// Access profiles one word reference. addr is a word address (the same
// convention cache.Cache.Access uses); write marks a store.
func (p *Profiler) Access(addr int32, write bool) {
	if write && !p.writeBack {
		panic("stackdist: store on a read-only profiler")
	}
	p.tick++
	p.accesses++
	line := addr / p.lineWords
	f := int(line) & (p.maxSets - 1)
	st := p.stacks[f]
	pos := -1
	for i := range st {
		if st[i].line == line {
			pos = i
			break
		}
	}
	var prevTime int64
	if pos >= 0 {
		prevTime = st[pos].time
	}

	// Stack distance per grid set count. A line absent from its finest
	// stack has been pushed past the cap there, hence past it for every
	// coarser set count too (coarse sets are supersets): saturate.
	for si, s := range p.setCounts {
		d := p.cap
		if pos >= 0 {
			d = pos // lines above it in its own finest stack
			if s != p.maxSets && d < p.cap {
			refine:
				// Sibling finest sets folding into the same s-set cache
				// set: count their lines touched after prevTime (a prefix
				// of each recency-ordered stack), saturating at the cap.
				for g := f & (s - 1); g < p.maxSets; g += s {
					if g == f {
						continue
					}
					for _, se := range p.stacks[g] {
						if se.time <= prevTime {
							break
						}
						d++
						if d >= p.cap {
							break refine
						}
					}
				}
			}
		}
		p.dists[si] = d
		p.hist[si][d]++
	}

	// Move-to-front update of the finest stack.
	var e entry
	if pos >= 0 {
		e = st[pos]
		copy(st[1:pos+1], st[:pos])
	} else {
		if len(st) < p.cap {
			st = append(st, entry{})
			p.stacks[f] = st
		}
		e = st[len(st)-1] // dropped entry (its rm buffer is reused) or fresh
		copy(st[1:], st[:len(st)-1])
		e.line = line
		if p.writeBack {
			if e.rm == nil {
				e.rm = make([]int32, len(p.setCounts))
			}
			for si := range e.rm {
				e.rm[si] = -1
			}
		}
	}
	e.time = p.tick
	st[0] = e

	// Dirty-generation accounting (see the package comment).
	if p.writeBack {
		rm := e.rm
		for si, d := range p.dists {
			if int32(d) > rm[si] {
				rm[si] = int32(d)
			}
		}
		if write {
			for si := range rm {
				p.wbHist[si][rm[si]]++
				rm[si] = -1
			}
		}
	}
}

// Stats derives the exact cache.Stats of the (sets, assoc) geometry from
// the recorded histograms. sets must be one of the profiled set counts
// and assoc within the profiler's associativity cap.
func (p *Profiler) Stats(sets, assoc int) (cache.Stats, error) {
	si := -1
	for i, s := range p.setCounts {
		if s == sets {
			si = i
			break
		}
	}
	if si < 0 {
		return cache.Stats{}, fmt.Errorf("stackdist: set count %d not profiled", sets)
	}
	if assoc <= 0 || assoc > p.cap {
		return cache.Stats{}, fmt.Errorf("stackdist: associativity %d out of profiled range [1, %d]", assoc, p.cap)
	}
	var hits int64
	for d := 0; d < assoc; d++ {
		hits += p.hist[si][d]
	}
	var wbs int64
	if p.writeBack {
		for d := assoc; d <= p.cap; d++ {
			wbs += p.wbHist[si][d]
		}
	}
	return cache.Stats{
		Accesses:   p.accesses,
		Hits:       hits,
		Misses:     p.accesses - hits,
		WriteBacks: wbs,
	}, nil
}
