package stackdist

import (
	"math/rand"
	"testing"

	"lppart/internal/cache"
	"lppart/internal/tech"
)

// ref is one access of a synthetic stream.
type ref struct {
	addr  int32
	write bool
}

// streams builds adversarial access patterns: tight loops, strides that
// thrash one set, random scatter, and mixes with interleaved stores.
func streams() map[string][]ref {
	rng := rand.New(rand.NewSource(7))
	out := map[string][]ref{}

	var seq []ref
	for i := 0; i < 4000; i++ {
		seq = append(seq, ref{addr: int32(i % 700), write: i%5 == 0})
	}
	out["sequential-loop"] = seq

	var stride []ref
	for i := 0; i < 4000; i++ {
		stride = append(stride, ref{addr: int32((i * 64) % 4096), write: i%3 == 0})
	}
	out["set-thrash"] = stride

	var rnd []ref
	for i := 0; i < 6000; i++ {
		rnd = append(rnd, ref{addr: int32(rng.Intn(2048)), write: rng.Intn(4) == 0})
	}
	out["random"] = rnd

	var mix []ref
	for i := 0; i < 5000; i++ {
		switch i % 3 {
		case 0:
			mix = append(mix, ref{addr: int32(i % 97)})
		case 1:
			mix = append(mix, ref{addr: int32(rng.Intn(8192)), write: true})
		default:
			mix = append(mix, ref{addr: int32((i * 17) % 1024)})
		}
	}
	out["mixed"] = mix
	return out
}

// TestMatchesCacheSim is the ground-truth differential: for every stream,
// line size and (sets, assoc) geometry, one profiler pass must reproduce
// the exact Stats of a dedicated cache.Cache simulation (including the
// end-of-run flush write-backs).
func TestMatchesCacheSim(t *testing.T) {
	lib := tech.Default()
	setGrid := []int{1, 2, 4, 8, 16, 64}
	assocGrid := []int{1, 2, 3, 4, 8}
	for name, refs := range streams() {
		for _, lw := range []int{1, 4} {
			p, err := New(lw, setGrid, 8, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range refs {
				p.Access(r.addr, r.write)
			}
			for _, sets := range setGrid {
				for _, assoc := range assocGrid {
					cfg := cache.Config{Sets: sets, Assoc: assoc, LineWords: lw, WriteBack: true}
					c, err := cache.New("ref", cfg, lib.Cache, nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range refs {
						c.Access(r.addr, r.write)
					}
					c.Flush()
					got, err := p.Stats(sets, assoc)
					if err != nil {
						t.Fatal(err)
					}
					if got != c.Stats {
						t.Errorf("%s lw=%d sets=%d assoc=%d: profiler %+v != simulated %+v",
							name, lw, sets, assoc, got, c.Stats)
					}
				}
			}
		}
	}
}

// TestReadOnlyProfiler checks the instruction-stream mode: no write-back
// tracking, stores rejected.
func TestReadOnlyProfiler(t *testing.T) {
	p, err := New(4, []int{4, 16}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Access(int32(i%37), false)
	}
	s, err := p.Stats(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.WriteBacks != 0 {
		t.Errorf("read-only profiler reported %d write-backs", s.WriteBacks)
	}
	defer func() {
		if recover() == nil {
			t.Error("store on a read-only profiler must panic")
		}
	}()
	p.Access(0, true)
}

func TestValidation(t *testing.T) {
	if _, err := New(3, []int{16}, 2, true); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	if _, err := New(4, []int{12}, 2, true); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
	if _, err := New(4, nil, 2, true); err == nil {
		t.Error("empty set-count grid accepted")
	}
	if _, err := New(4, []int{16}, 0, true); err == nil {
		t.Error("zero associativity cap accepted")
	}
	if _, err := New(4, []int{16}, cache.MaxAssoc+1, true); err == nil {
		t.Error("associativity cap beyond cache.MaxAssoc accepted")
	}
	p, err := New(4, []int{16}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stats(32, 1); err == nil {
		t.Error("unprofiled set count accepted")
	}
	if _, err := p.Stats(16, 3); err == nil {
		t.Error("associativity beyond the cap accepted")
	}
}

// TestInclusionMonotone spot-checks the inclusion property on derived
// stats: for a fixed set count, hits never decrease with associativity.
func TestInclusionMonotone(t *testing.T) {
	p, err := New(4, []int{2, 8, 32}, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8000; i++ {
		p.Access(int32(rng.Intn(4096)), rng.Intn(3) == 0)
	}
	for _, sets := range []int{2, 8, 32} {
		prev := int64(-1)
		for assoc := 1; assoc <= 8; assoc++ {
			s, err := p.Stats(sets, assoc)
			if err != nil {
				t.Fatal(err)
			}
			if s.Hits < prev {
				t.Errorf("sets=%d: hits dropped growing assoc to %d: %d -> %d",
					sets, assoc, prev, s.Hits)
			}
			prev = s.Hits
		}
	}
}
