package trace

import (
	"encoding/binary"
	"sync/atomic"
)

// chunkBytes is the sealed-chunk size of the compact store: big enough to
// amortize appends to one allocation per tens of thousands of accesses,
// small enough that the partially filled tail chunk wastes little.
const chunkBytes = 1 << 16

// Compact is a chunked, delta+varint-encoded reference stream — the
// storage behind Trace. Each access is one uvarint holding the reference
// kind in its low two bits and, above them, the zigzag-encoded word-
// address delta against the previous access of the SAME kind:
// instruction fetches are mostly sequential and data references local,
// so most accesses encode in one or two bytes versus the eight bytes of
// the previous []Access representation (~4-8x smaller on the benchmark
// applications' traces). Chunks are storage segmentation only — the
// delta chain runs across them — so decoding always streams from the
// start, which is the only access pattern replay and profiling need.
type Compact struct {
	chunks [][]byte
	cur    []byte
	n      int64
	counts [3]int64
	last   [3]int32
	scans  atomic.Int64
}

// Append records one access. Appending invalidates open iterators.
func (c *Compact) Append(k Kind, addr int32) {
	delta := int64(addr) - int64(c.last[k])
	c.last[k] = addr
	if cap(c.cur)-len(c.cur) < binary.MaxVarintLen64 {
		if c.cur != nil {
			c.chunks = append(c.chunks, c.cur)
		}
		c.cur = make([]byte, 0, chunkBytes)
	}
	c.cur = binary.AppendUvarint(c.cur, zigzag(delta)<<2|uint64(k&3))
	c.n++
	c.counts[k]++
}

// Len returns the number of recorded accesses.
func (c *Compact) Len() int64 { return c.n }

// Bytes returns the encoded size of the stream in bytes.
func (c *Compact) Bytes() int64 {
	total := int64(len(c.cur))
	for _, ch := range c.chunks {
		total += int64(len(ch))
	}
	return total
}

// Counts returns the number of fetches, reads and writes in the stream.
func (c *Compact) Counts() (fetches, reads, writes int64) {
	return c.counts[Fetch], c.counts[Read], c.counts[Write]
}

// Scans returns how many times the stream has been decoded end to end
// (Scan calls and exhausted iterators) — the "trace passes" the profiler
// and the sweep tests measure.
func (c *Compact) Scans() int64 { return c.scans.Load() }

// Scan streams every access in record order through fn. Concurrent Scans
// are safe; appending while scanning is not.
func (c *Compact) Scan(fn func(k Kind, addr int32)) {
	var last [3]int32
	for _, ch := range c.chunks {
		scanChunk(ch, &last, fn)
	}
	scanChunk(c.cur, &last, fn)
	c.scans.Add(1)
}

func scanChunk(b []byte, last *[3]int32, fn func(k Kind, addr int32)) {
	for len(b) > 0 {
		u, n := binary.Uvarint(b)
		if n <= 0 {
			panic("trace: corrupt compact stream")
		}
		b = b[n:]
		k := Kind(u & 3)
		addr := int32(int64(last[k]) + unzigzag(u>>2))
		last[k] = addr
		fn(k, addr)
	}
}

// Iter returns a pull-style iterator over the stream. The iterator is
// invalidated by Append.
type Iter struct {
	c      *Compact
	chunks [][]byte
	b      []byte
	ci     int
	last   [3]int32
	done   bool
}

// Iter starts a new iteration from the first access.
func (c *Compact) Iter() *Iter {
	chunks := c.chunks[:len(c.chunks):len(c.chunks)]
	if len(c.cur) > 0 {
		chunks = append(chunks, c.cur)
	}
	return &Iter{c: c, chunks: chunks}
}

// Next returns the next access, or ok=false at the end of the stream.
func (it *Iter) Next() (a Access, ok bool) {
	for len(it.b) == 0 {
		if it.ci >= len(it.chunks) {
			if !it.done {
				it.done = true
				it.c.scans.Add(1)
			}
			return Access{}, false
		}
		it.b = it.chunks[it.ci]
		it.ci++
	}
	u, n := binary.Uvarint(it.b)
	if n <= 0 {
		panic("trace: corrupt compact stream")
	}
	it.b = it.b[n:]
	k := Kind(u & 3)
	addr := int32(int64(it.last[k]) + unzigzag(u>>2))
	it.last[k] = addr
	return Access{Kind: k, Addr: addr}, true
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
