package trace

import (
	"math/rand"
	"testing"

	"lppart/internal/apps"
	"lppart/internal/behav"
	"lppart/internal/cache"
	"lppart/internal/cdfg"
	"lppart/internal/codegen"
	"lppart/internal/iss"
	"lppart/internal/tech"
)

// record runs a small program under the recorder.
func record(t *testing.T, src string) *Trace {
	t.Helper()
	prog := behav.MustParse("t", src)
	ir := cdfg.MustBuild(prog)
	mp, _, err := codegen.Compile(ir, codegen.Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	if _, err := iss.Run(mp, iss.Options{Mem: rec}); err != nil {
		t.Fatal(err)
	}
	return &rec.Trace
}

const walker = `
var a[512]; var s;
func main() {
	var i;
	for i = 0; i < 512; i = i + 1 { a[i] = i; }
	for i = 0; i < 512; i = i + 1 { s = s + a[i]; }
}
`

func TestRecorderCapturesReferences(t *testing.T) {
	tr := record(t, walker)
	fetches, reads, writes := tr.Counts()
	if fetches == 0 || reads == 0 || writes == 0 {
		t.Fatalf("trace incomplete: f=%d r=%d w=%d", fetches, reads, writes)
	}
	// Every executed instruction produces exactly one fetch; the walker
	// writes at least 512 array elements and reads at least 512 back.
	if writes < 512 {
		t.Errorf("writes = %d, want >= 512", writes)
	}
	if reads < 512 {
		t.Errorf("reads = %d, want >= 512", reads)
	}
	if tr.Len() != fetches+reads+writes {
		t.Error("counts do not partition the trace")
	}
}

func TestCompactRoundTrip(t *testing.T) {
	// The compact encoding must reproduce an arbitrary access sequence
	// exactly, across chunk boundaries, through both Scan and Iter.
	rng := rand.New(rand.NewSource(3))
	var c Compact
	var want []Access
	addr := int32(0)
	for i := 0; i < 200000; i++ {
		k := Kind(rng.Intn(3))
		switch rng.Intn(4) {
		case 0:
			addr = int32(rng.Uint32()) // arbitrary jump, negatives included
		default:
			addr += int32(rng.Intn(64)) - 16
		}
		want = append(want, Access{Kind: k, Addr: addr})
		c.Append(k, addr)
	}
	if c.Len() != int64(len(want)) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(want))
	}
	i := 0
	c.Scan(func(k Kind, a int32) {
		if want[i].Kind != k || want[i].Addr != a {
			t.Fatalf("Scan access %d: got (%v, %d), want %+v", i, k, a, want[i])
		}
		i++
	})
	if i != len(want) {
		t.Fatalf("Scan yielded %d accesses, want %d", i, len(want))
	}
	it := c.Iter()
	for j := range want {
		a, ok := it.Next()
		if !ok {
			t.Fatalf("Iter ended at %d of %d", j, len(want))
		}
		if a != want[j] {
			t.Fatalf("Iter access %d: got %+v, want %+v", j, a, want[j])
		}
	}
	if _, ok := it.Next(); ok {
		t.Error("Iter yielded beyond the stream")
	}
}

func TestCompactIsCompact(t *testing.T) {
	// A real application trace must encode well below the 8 bytes per
	// access of the old []Access representation.
	tr := record(t, walker)
	bytesPer := float64(tr.Bytes()) / float64(tr.Len())
	t.Logf("compact: %d accesses in %d bytes (%.2f bytes/access, %.1fx vs []Access)",
		tr.Len(), tr.Bytes(), bytesPer, 8/bytesPer)
	if bytesPer > 4 {
		t.Errorf("compact encoding too large: %.2f bytes/access, want <= 4", bytesPer)
	}
}

func TestReplayMatchesLiveSimulation(t *testing.T) {
	// Replaying the recorded trace against the same geometry must give
	// the same cache statistics as simulating live with those caches.
	prog := behav.MustParse("t", walker)
	ir := cdfg.MustBuild(prog)
	mp, _, err := codegen.Compile(ir, codegen.Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	lib := tech.Default()

	// Live simulation.
	liveI, _ := cache.New("i", cache.DefaultICache(), lib.Cache, nil, nil)
	liveD, _ := cache.New("d", cache.DefaultDCache(), lib.Cache, nil, nil)
	rec := &Recorder{Inner: &liveMem{liveI, liveD}}
	if _, err := iss.Run(mp, iss.Options{Mem: rec}); err != nil {
		t.Fatal(err)
	}
	liveD.Flush()

	rep, err := rec.Trace.Replay(cache.DefaultICache(), cache.DefaultDCache(), lib)
	if err != nil {
		t.Fatal(err)
	}
	if rep.I.Hits != liveI.Stats.Hits || rep.I.Misses != liveI.Stats.Misses {
		t.Errorf("i-cache replay %+v != live %+v", rep.I, liveI.Stats)
	}
	if rep.D.Hits != liveD.Stats.Hits || rep.D.Misses != liveD.Stats.Misses {
		t.Errorf("d-cache replay %+v != live %+v", rep.D, liveD.Stats)
	}
}

type liveMem struct{ ic, dc *cache.Cache }

func (m *liveMem) FetchInstr(a uint32) int { return m.ic.Access(int32(a/4), false) }
func (m *liveMem) ReadData(a int32) int    { return m.dc.Access(a, false) }
func (m *liveMem) WriteData(a int32) int   { return m.dc.Access(a, true) }

func TestSweepMonotoneCapacity(t *testing.T) {
	// Growing the data cache can only improve (or hold) its hit rate on
	// a recorded trace.
	tr := record(t, walker)
	lib := tech.Default()
	pairs := [][2]cache.Config{
		{cache.DefaultICache(), {Sets: 16, Assoc: 1, LineWords: 4, WriteBack: true}},
		{cache.DefaultICache(), {Sets: 64, Assoc: 1, LineWords: 4, WriteBack: true}},
		{cache.DefaultICache(), {Sets: 256, Assoc: 1, LineWords: 4, WriteBack: true}},
	}
	reps, err := tr.Sweep(pairs, lib)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reps); i++ {
		if reps[i].D.HitRate() < reps[i-1].D.HitRate()-1e-12 {
			t.Errorf("d-cache hit rate dropped when growing: %.4f -> %.4f",
				reps[i-1].D.HitRate(), reps[i].D.HitRate())
		}
	}
	// Stalls shrink with capacity too (same line size, more sets).
	if reps[2].Stalls > reps[0].Stalls {
		t.Errorf("stalls grew with capacity: %d -> %d", reps[0].Stalls, reps[2].Stalls)
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	tr := record(t, walker)
	lib := tech.Default()
	var pairs [][2]cache.Config
	for _, sets := range []int{16, 64, 256} {
		pairs = append(pairs, [2]cache.Config{
			cache.DefaultICache(),
			{Sets: sets, Assoc: 2, LineWords: 4, WriteBack: true},
		})
	}
	serial, err := tr.Sweep(pairs, lib)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := tr.SweepParallel(pairs, lib, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Errorf("workers=%d pair %d: parallel report %v != serial %v",
					workers, i, par[i], serial[i])
			}
		}
	}
}

// profGrid is the ≥24-point geometry grid of the differential tests: six
// d-cache set counts × four ways, one shared line size.
func profGrid() [][2]cache.Config {
	var pairs [][2]cache.Config
	for _, sets := range []int{16, 32, 64, 128, 256, 512} {
		for _, assoc := range []int{1, 2, 4, 8} {
			pairs = append(pairs, [2]cache.Config{
				cache.DefaultICache(),
				{Sets: sets, Assoc: assoc, LineWords: 4, WriteBack: true},
			})
		}
	}
	return pairs
}

// TestSweepStackMatchesReplayAllApps is the tentpole differential: for
// all six benchmark applications, the single-pass stack-distance sweep
// must produce reports byte-identical to the naive replay oracle over a
// 24-point geometry grid, at one and at eight workers.
func TestSweepStackMatchesReplayAllApps(t *testing.T) {
	lib := tech.Default()
	pairs := profGrid()
	for _, a := range apps.All() {
		src, err := a.Parse()
		if err != nil {
			t.Fatal(err)
		}
		ir := cdfg.MustBuild(src)
		mp, _, err := codegen.Compile(ir, codegen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec := &Recorder{}
		if _, err := iss.Run(mp, iss.Options{Mem: rec}); err != nil {
			t.Fatal(err)
		}
		tr := &rec.Trace
		oracle, err := tr.SweepReplay(pairs, lib, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			got, err := tr.SweepParallel(pairs, lib, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range oracle {
				if got[i] != oracle[i] {
					t.Errorf("%s workers=%d pair %d (%v/%v):\n  stack  %+v\n  replay %+v",
						a.Name, workers, i, pairs[i][0], pairs[i][1], got[i], oracle[i])
				}
			}
		}
	}
}

// TestSweepSinglePass measures (via the trace's scan counter) that a
// sweep over a grid sharing one line size costs exactly ONE pass over
// the recorded stream, and that the grid is wide enough to beat naive
// replay by the required ≥3x trace-access-visit margin.
func TestSweepSinglePass(t *testing.T) {
	tr := record(t, walker)
	lib := tech.Default()
	pairs := profGrid()
	if want := 1; Passes(pairs) != want {
		t.Fatalf("Passes = %d, want %d", Passes(pairs), want)
	}
	if len(pairs) < 3*Passes(pairs) {
		t.Fatalf("grid too small for the 3x margin: %d pairs, %d passes", len(pairs), Passes(pairs))
	}
	before := tr.Scans()
	reps, err := tr.SweepParallel(pairs, lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Scans() - before; got != int64(Passes(pairs)) {
		t.Errorf("sweep scanned the trace %d times, want %d", got, Passes(pairs))
	}
	if len(reps) != len(pairs) {
		t.Fatalf("%d reports for %d pairs", len(reps), len(pairs))
	}

	// Mixed line sizes: one pass per distinct (i, d) line-size combo.
	mixed := [][2]cache.Config{
		{cache.DefaultICache(), {Sets: 64, Assoc: 2, LineWords: 4, WriteBack: true}},
		{cache.DefaultICache(), {Sets: 64, Assoc: 2, LineWords: 8, WriteBack: true}},
		{cache.DefaultICache(), {Sets: 128, Assoc: 1, LineWords: 8, WriteBack: true}},
		{{Sets: 64, Assoc: 1, LineWords: 8}, {Sets: 64, Assoc: 2, LineWords: 4, WriteBack: true}},
	}
	if want := 3; Passes(mixed) != want {
		t.Fatalf("mixed-grid Passes = %d, want %d", Passes(mixed), want)
	}
	before = tr.Scans()
	got, err := tr.SweepParallel(mixed, lib, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n := tr.Scans() - before; n != int64(Passes(mixed)) {
		t.Errorf("mixed sweep scanned %d times, want %d", n, Passes(mixed))
	}
	oracle, err := tr.SweepReplay(mixed, lib, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oracle {
		if got[i] != oracle[i] {
			t.Errorf("mixed pair %d: stack %+v != replay %+v", i, got[i], oracle[i])
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	tr := record(t, walker)
	lib := tech.Default()
	r1, err := tr.Replay(cache.DefaultICache(), cache.DefaultDCache(), lib)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tr.Replay(cache.DefaultICache(), cache.DefaultDCache(), lib)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("replay is not deterministic")
	}
	if r1.Total() <= 0 {
		t.Error("replay energy must be positive")
	}
	if r1.String() == "" {
		t.Error("empty report string")
	}
}

func TestReplayRejectsBadGeometry(t *testing.T) {
	tr := record(t, walker)
	lib := tech.Default()
	if _, err := tr.Replay(cache.Config{Sets: 3, Assoc: 1, LineWords: 4},
		cache.DefaultDCache(), lib); err == nil {
		t.Error("bad geometry must be rejected")
	}
	// The stack sweep must reject the same geometries Replay does.
	if _, err := tr.Sweep([][2]cache.Config{
		{{Sets: 3, Assoc: 1, LineWords: 4}, cache.DefaultDCache()},
	}, lib); err == nil {
		t.Error("sweep must reject bad geometry")
	}
	if _, err := tr.Sweep([][2]cache.Config{
		{cache.DefaultICache(), {Sets: 64, Assoc: cache.MaxAssoc + 1, LineWords: 4}},
	}, lib); err == nil {
		t.Error("sweep must reject out-of-bounds associativity")
	}
}
