package trace

import (
	"testing"

	"lppart/internal/behav"
	"lppart/internal/cache"
	"lppart/internal/cdfg"
	"lppart/internal/codegen"
	"lppart/internal/iss"
	"lppart/internal/tech"
)

// record runs a small program under the recorder.
func record(t *testing.T, src string) *Trace {
	t.Helper()
	prog := behav.MustParse("t", src)
	ir := cdfg.MustBuild(prog)
	mp, _, err := codegen.Compile(ir, codegen.Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	if _, err := iss.Run(mp, iss.Options{Mem: rec}); err != nil {
		t.Fatal(err)
	}
	return &rec.Trace
}

const walker = `
var a[512]; var s;
func main() {
	var i;
	for i = 0; i < 512; i = i + 1 { a[i] = i; }
	for i = 0; i < 512; i = i + 1 { s = s + a[i]; }
}
`

func TestRecorderCapturesReferences(t *testing.T) {
	tr := record(t, walker)
	fetches, reads, writes := tr.Counts()
	if fetches == 0 || reads == 0 || writes == 0 {
		t.Fatalf("trace incomplete: f=%d r=%d w=%d", fetches, reads, writes)
	}
	// Every executed instruction produces exactly one fetch; the walker
	// writes at least 512 array elements and reads at least 512 back.
	if writes < 512 {
		t.Errorf("writes = %d, want >= 512", writes)
	}
	if reads < 512 {
		t.Errorf("reads = %d, want >= 512", reads)
	}
	if int64(len(tr.Accesses)) != fetches+reads+writes {
		t.Error("counts do not partition the trace")
	}
}

func TestReplayMatchesLiveSimulation(t *testing.T) {
	// Replaying the recorded trace against the same geometry must give
	// the same cache statistics as simulating live with those caches.
	prog := behav.MustParse("t", walker)
	ir := cdfg.MustBuild(prog)
	mp, _, err := codegen.Compile(ir, codegen.Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	lib := tech.Default()

	// Live simulation.
	liveI, _ := cache.New("i", cache.DefaultICache(), lib.Cache, nil, nil)
	liveD, _ := cache.New("d", cache.DefaultDCache(), lib.Cache, nil, nil)
	rec := &Recorder{Inner: &liveMem{liveI, liveD}}
	if _, err := iss.Run(mp, iss.Options{Mem: rec}); err != nil {
		t.Fatal(err)
	}
	liveD.Flush()

	rep, err := rec.Trace.Replay(cache.DefaultICache(), cache.DefaultDCache(), lib)
	if err != nil {
		t.Fatal(err)
	}
	if rep.I.Hits != liveI.Stats.Hits || rep.I.Misses != liveI.Stats.Misses {
		t.Errorf("i-cache replay %+v != live %+v", rep.I, liveI.Stats)
	}
	if rep.D.Hits != liveD.Stats.Hits || rep.D.Misses != liveD.Stats.Misses {
		t.Errorf("d-cache replay %+v != live %+v", rep.D, liveD.Stats)
	}
}

type liveMem struct{ ic, dc *cache.Cache }

func (m *liveMem) FetchInstr(a uint32) int { return m.ic.Access(int32(a/4), false) }
func (m *liveMem) ReadData(a int32) int    { return m.dc.Access(a, false) }
func (m *liveMem) WriteData(a int32) int   { return m.dc.Access(a, true) }

func TestSweepMonotoneCapacity(t *testing.T) {
	// Growing the data cache can only improve (or hold) its hit rate on
	// a replayed trace.
	tr := record(t, walker)
	lib := tech.Default()
	pairs := [][2]cache.Config{
		{cache.DefaultICache(), {Sets: 16, Assoc: 1, LineWords: 4, WriteBack: true}},
		{cache.DefaultICache(), {Sets: 64, Assoc: 1, LineWords: 4, WriteBack: true}},
		{cache.DefaultICache(), {Sets: 256, Assoc: 1, LineWords: 4, WriteBack: true}},
	}
	reps, err := tr.Sweep(pairs, lib)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reps); i++ {
		if reps[i].D.HitRate() < reps[i-1].D.HitRate()-1e-12 {
			t.Errorf("d-cache hit rate dropped when growing: %.4f -> %.4f",
				reps[i-1].D.HitRate(), reps[i].D.HitRate())
		}
	}
	// Stalls shrink with capacity too (same line size, more sets).
	if reps[2].Stalls > reps[0].Stalls {
		t.Errorf("stalls grew with capacity: %d -> %d", reps[0].Stalls, reps[2].Stalls)
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	tr := record(t, walker)
	lib := tech.Default()
	var pairs [][2]cache.Config
	for _, sets := range []int{16, 64, 256} {
		pairs = append(pairs, [2]cache.Config{
			cache.DefaultICache(),
			{Sets: sets, Assoc: 2, LineWords: 4, WriteBack: true},
		})
	}
	serial, err := tr.Sweep(pairs, lib)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := tr.SweepParallel(pairs, lib, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Errorf("workers=%d pair %d: parallel report %v != serial %v",
					workers, i, par[i], serial[i])
			}
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	tr := record(t, walker)
	lib := tech.Default()
	r1, err := tr.Replay(cache.DefaultICache(), cache.DefaultDCache(), lib)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tr.Replay(cache.DefaultICache(), cache.DefaultDCache(), lib)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("replay is not deterministic")
	}
	if r1.Total() <= 0 {
		t.Error("replay energy must be positive")
	}
	if r1.String() == "" {
		t.Error("empty report string")
	}
}

func TestReplayRejectsBadGeometry(t *testing.T) {
	tr := record(t, walker)
	lib := tech.Default()
	if _, err := tr.Replay(cache.Config{Sets: 3, Assoc: 1, LineWords: 4},
		cache.DefaultDCache(), lib); err == nil {
		t.Error("bad geometry must be rejected")
	}
}
