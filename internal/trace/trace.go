// Package trace implements the trace tool and cache profiler of the
// paper's design flow (Fig. 5: "Trace Tool" feeding a "Cache Profiler",
// after [17] WARTS): it records the exact instruction-fetch and data
// reference stream of an ISS run once, then evaluates any number of
// cache geometries against it without re-simulating the program — the
// standard trace-driven methodology for tuning the cache cores to a
// chosen partition ("those other cores have to be adapted efficiently
// (e.g. size of memory, size of caches, cache policy etc.) according to
// the particular hw/sw partitioning chosen", paper §1).
//
// The stream is stored delta+varint-encoded in chunks (Compact), and
// geometry sweeps run the single-pass stack-distance profiler of
// internal/stackdist: one pass over the trace per distinct line size
// covers every (Sets, Assoc) combination, with Replay retained as the
// one-geometry-per-pass differential-testing oracle.
package trace

import (
	"fmt"

	"lppart/internal/bus"
	"lppart/internal/cache"
	"lppart/internal/explore"
	"lppart/internal/iss"
	"lppart/internal/mem"
	"lppart/internal/stackdist"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// Kind classifies one recorded reference.
type Kind uint8

// Reference kinds.
const (
	Fetch Kind = iota // instruction fetch (word address)
	Read              // data load
	Write             // data store
)

// String names the reference kind.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Read:
		return "read"
	default:
		return "write"
	}
}

// Access is one decoded memory reference.
type Access struct {
	Kind Kind
	Addr int32 // word address
}

// Trace is a recorded reference stream in compact storage.
type Trace struct {
	Compact
}

// Recorder implements iss.MemSystem: it appends every reference to the
// trace and (optionally) forwards to an inner memory system whose stall
// cycles it passes through.
type Recorder struct {
	Trace Trace
	Inner iss.MemSystem
}

// FetchInstr records an instruction fetch.
func (r *Recorder) FetchInstr(byteAddr uint32) int {
	r.Trace.Append(Fetch, int32(byteAddr/4))
	if r.Inner != nil {
		return r.Inner.FetchInstr(byteAddr)
	}
	return 0
}

// ReadData records a data load.
func (r *Recorder) ReadData(addr int32) int {
	r.Trace.Append(Read, addr)
	if r.Inner != nil {
		return r.Inner.ReadData(addr)
	}
	return 0
}

// WriteData records a data store.
func (r *Recorder) WriteData(addr int32) int {
	r.Trace.Append(Write, addr)
	if r.Inner != nil {
		return r.Inner.WriteData(addr)
	}
	return 0
}

// Report is the outcome of evaluating the trace against one cache pair.
type Report struct {
	ICfg, DCfg cache.Config
	I, D       cache.Stats
	// Energy breakdown: cache arrays, memory, bus.
	EICache, EDCache, EMem, EBus units.Energy
	// Stalls is the total extra cycles the geometry would have cost.
	Stalls int64
}

// Total returns the memory-subsystem energy of the evaluation.
func (r Report) Total() units.Energy { return r.EICache + r.EDCache + r.EMem + r.EBus }

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("i$ %5dB %.4f hit | d$ %5dB %.4f hit | E %v | stalls %d",
		r.ICfg.SizeBytes(), r.I.HitRate(), r.DCfg.SizeBytes(), r.D.HitRate(),
		r.Total(), r.Stalls)
}

// Replay runs the trace against one instruction/data cache pair backed by
// fresh memory and bus cores — one full trace pass per geometry pair.
// The geometry sweeps use the single-pass profiler instead; Replay is the
// oracle they are differentially tested against.
func (t *Trace) Replay(icfg, dcfg cache.Config, lib *tech.Library) (Report, error) {
	m := mem.New(lib)
	b := bus.New(lib)
	dcfg.WriteBack = true
	ic, err := cache.New("i-replay", icfg, lib.Cache, m, b)
	if err != nil {
		return Report{}, err
	}
	dc, err := cache.New("d-replay", dcfg, lib.Cache, m, b)
	if err != nil {
		return Report{}, err
	}
	var stalls int64
	t.Scan(func(k Kind, addr int32) {
		switch k {
		case Fetch:
			stalls += int64(ic.Access(addr, false))
		case Read:
			stalls += int64(dc.Access(addr, false))
		case Write:
			stalls += int64(dc.Access(addr, true))
		}
	})
	stalls += int64(dc.Flush())
	return Report{
		ICfg: icfg, DCfg: dcfg,
		I: ic.Stats, D: dc.Stats,
		EICache: ic.Energy(), EDCache: dc.Energy(),
		EMem: m.Energy(), EBus: b.Energy(),
		Stalls: stalls,
	}, nil
}

// sweepGroup is the unit of single-pass profiling: every geometry pair
// sharing one (i-line, d-line) size combination profiles from one pass.
type sweepGroup struct {
	iLW, dLW int
	idx      []int // positions in the caller's pairs slice
}

// groupPairs buckets pairs by line size in first-seen order.
func groupPairs(pairs [][2]cache.Config) []sweepGroup {
	var groups []sweepGroup
	byLW := map[[2]int]int{}
	for i, pr := range pairs {
		key := [2]int{pr[0].LineWords, pr[1].LineWords}
		gi, ok := byLW[key]
		if !ok {
			gi = len(groups)
			byLW[key] = gi
			groups = append(groups, sweepGroup{iLW: key[0], dLW: key[1]})
		}
		groups[gi].idx = append(groups[gi].idx, i)
	}
	return groups
}

// Passes returns the number of trace passes a sweep of pairs performs:
// one single-pass profiler run per distinct (i-line, d-line) size
// combination, versus one pass per pair for a naive replay sweep.
func Passes(pairs [][2]cache.Config) int { return len(groupPairs(pairs)) }

// Sweep evaluates the trace against every geometry pair serially and
// returns the reports in input order.
func (t *Trace) Sweep(pairs [][2]cache.Config, lib *tech.Library) ([]Report, error) {
	return t.SweepParallel(pairs, lib, 1)
}

// SweepParallel evaluates the trace against every geometry pair using the
// single-pass stack-distance profiler: pairs are grouped by line size,
// each group costs ONE pass over the recorded stream (simultaneously
// profiling every set count and associativity in the group, i- and
// d-stream alike), and the groups fan out on a bounded worker pool
// (workers <= 0 selects one worker per CPU). Reports come back in input
// order, byte-identical to Replay's at any worker count.
func (t *Trace) SweepParallel(pairs [][2]cache.Config, lib *tech.Library, workers int) ([]Report, error) {
	groups := groupPairs(pairs)
	grouped, err := explore.Map(workers, groups, func(_ int, g sweepGroup) ([]Report, error) {
		return t.profileGroup(g, pairs, lib)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Report, len(pairs))
	for gi, g := range groups {
		for j, pi := range g.idx {
			out[pi] = grouped[gi][j]
		}
	}
	return out, nil
}

// SweepReplay evaluates every pair by an independent full replay — the
// naive G-pass path the single-pass profiler replaced, retained as the
// differential-testing oracle and benchmark baseline.
func (t *Trace) SweepReplay(pairs [][2]cache.Config, lib *tech.Library, workers int) ([]Report, error) {
	return explore.Map(workers, pairs, func(_ int, pr [2]cache.Config) (Report, error) {
		return t.Replay(pr[0], pr[1], lib)
	})
}

// profileGroup runs one single-pass profile over the trace for every
// geometry pair in g and synthesizes their reports.
func (t *Trace) profileGroup(g sweepGroup, pairs [][2]cache.Config, lib *tech.Library) ([]Report, error) {
	var iSets, dSets []int
	iAssoc, dAssoc := 0, 0
	for _, pi := range g.idx {
		icfg, dcfg := pairs[pi][0], pairs[pi][1]
		dcfg.WriteBack = true
		if err := icfg.Validate(); err != nil {
			return nil, err
		}
		if err := dcfg.Validate(); err != nil {
			return nil, err
		}
		iSets = appendUnique(iSets, icfg.Sets)
		dSets = appendUnique(dSets, dcfg.Sets)
		iAssoc = max(iAssoc, icfg.Assoc)
		dAssoc = max(dAssoc, dcfg.Assoc)
	}
	ip, err := stackdist.New(g.iLW, iSets, iAssoc, false)
	if err != nil {
		return nil, err
	}
	dp, err := stackdist.New(g.dLW, dSets, dAssoc, true)
	if err != nil {
		return nil, err
	}
	t.Scan(func(k Kind, addr int32) {
		switch k {
		case Fetch:
			ip.Access(addr, false)
		case Read:
			dp.Access(addr, false)
		case Write:
			dp.Access(addr, true)
		}
	})
	reps := make([]Report, len(g.idx))
	for j, pi := range g.idx {
		icfg, dcfg := pairs[pi][0], pairs[pi][1]
		is, err := ip.Stats(icfg.Sets, icfg.Assoc)
		if err != nil {
			return nil, err
		}
		ds, err := dp.Stats(dcfg.Sets, dcfg.Assoc)
		if err != nil {
			return nil, err
		}
		reps[j] = synthesize(icfg, dcfg, lib, is, ds)
	}
	return reps, nil
}

// synthesize prices one geometry pair's profiled Stats exactly as
// Replay's live cores would have: the same integer traffic counts feed
// the same float expressions, so the report is byte-identical to a
// replay's.
func synthesize(icfg, dcfg cache.Config, lib *tech.Library, is, ds cache.Stats) Report {
	dcfg.WriteBack = true
	readWords := icfg.RefillWords(is.Misses) + dcfg.RefillWords(ds.Misses)
	writeWords := dcfg.WriteBackWords(ds.WriteBacks)
	m := mem.Memory{T: lib.Memory, Reads: readWords, Writes: writeWords}
	b := bus.Bus{T: lib.Bus, ReadWords: readWords, WriteWords: writeWords}
	return Report{
		ICfg: icfg, DCfg: dcfg,
		I: is, D: ds,
		EICache: units.Energy(float64(is.Accesses)) * icfg.AccessEnergy(lib.Cache),
		EDCache: units.Energy(float64(ds.Accesses)) * dcfg.AccessEnergy(lib.Cache),
		EMem:    m.Energy(),
		EBus:    b.Energy(),
		Stalls: icfg.MissStalls(lib.Memory, is.Misses, 0) +
			dcfg.MissStalls(lib.Memory, ds.Misses, ds.WriteBacks),
	}
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
