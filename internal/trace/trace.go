// Package trace implements the trace tool and cache profiler of the
// paper's design flow (Fig. 5: "Trace Tool" feeding a "Cache Profiler",
// after [17] WARTS): it records the exact instruction-fetch and data
// reference stream of an ISS run once, then replays it against any number
// of cache geometries without re-simulating the program — the standard
// trace-driven methodology for tuning the cache cores to a chosen
// partition ("those other cores have to be adapted efficiently (e.g. size
// of memory, size of caches, cache policy etc.) according to the
// particular hw/sw partitioning chosen", paper §1).
package trace

import (
	"fmt"

	"lppart/internal/bus"
	"lppart/internal/cache"
	"lppart/internal/explore"
	"lppart/internal/iss"
	"lppart/internal/mem"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// Kind classifies one recorded reference.
type Kind uint8

// Reference kinds.
const (
	Fetch Kind = iota // instruction fetch (word address)
	Read              // data load
	Write             // data store
)

// String names the reference kind.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Read:
		return "read"
	default:
		return "write"
	}
}

// Access is one recorded memory reference.
type Access struct {
	Kind Kind
	Addr int32 // word address
}

// Trace is a recorded reference stream.
type Trace struct {
	Accesses []Access
}

// Recorder implements iss.MemSystem: it appends every reference to the
// trace and (optionally) forwards to an inner memory system whose stall
// cycles it passes through.
type Recorder struct {
	Trace Trace
	Inner iss.MemSystem
}

// FetchInstr records an instruction fetch.
func (r *Recorder) FetchInstr(byteAddr uint32) int {
	r.Trace.Accesses = append(r.Trace.Accesses, Access{Kind: Fetch, Addr: int32(byteAddr / 4)})
	if r.Inner != nil {
		return r.Inner.FetchInstr(byteAddr)
	}
	return 0
}

// ReadData records a data load.
func (r *Recorder) ReadData(addr int32) int {
	r.Trace.Accesses = append(r.Trace.Accesses, Access{Kind: Read, Addr: addr})
	if r.Inner != nil {
		return r.Inner.ReadData(addr)
	}
	return 0
}

// WriteData records a data store.
func (r *Recorder) WriteData(addr int32) int {
	r.Trace.Accesses = append(r.Trace.Accesses, Access{Kind: Write, Addr: addr})
	if r.Inner != nil {
		return r.Inner.WriteData(addr)
	}
	return 0
}

// Report is the outcome of replaying a trace against one cache pair.
type Report struct {
	ICfg, DCfg cache.Config
	I, D       cache.Stats
	// Energy breakdown of the replay: cache arrays, memory, bus.
	EICache, EDCache, EMem, EBus units.Energy
	// Stalls is the total extra cycles the geometry would have cost.
	Stalls int64
}

// Total returns the memory-subsystem energy of the replay.
func (r Report) Total() units.Energy { return r.EICache + r.EDCache + r.EMem + r.EBus }

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("i$ %5dB %.4f hit | d$ %5dB %.4f hit | E %v | stalls %d",
		r.ICfg.SizeBytes(), r.I.HitRate(), r.DCfg.SizeBytes(), r.D.HitRate(),
		r.Total(), r.Stalls)
}

// Replay runs the trace against one instruction/data cache pair backed by
// fresh memory and bus cores.
func (t *Trace) Replay(icfg, dcfg cache.Config, lib *tech.Library) (Report, error) {
	m := mem.New(lib)
	b := bus.New(lib)
	dcfg.WriteBack = true
	ic, err := cache.New("i-replay", icfg, lib.Cache, m, b)
	if err != nil {
		return Report{}, err
	}
	dc, err := cache.New("d-replay", dcfg, lib.Cache, m, b)
	if err != nil {
		return Report{}, err
	}
	var stalls int64
	for _, a := range t.Accesses {
		switch a.Kind {
		case Fetch:
			stalls += int64(ic.Access(a.Addr, false))
		case Read:
			stalls += int64(dc.Access(a.Addr, false))
		case Write:
			stalls += int64(dc.Access(a.Addr, true))
		}
	}
	stalls += int64(dc.Flush())
	return Report{
		ICfg: icfg, DCfg: dcfg,
		I: ic.Stats, D: dc.Stats,
		EICache: ic.Energy(), EDCache: dc.Energy(),
		EMem: m.Energy(), EBus: b.Energy(),
		Stalls: stalls,
	}, nil
}

// Sweep replays the trace against every geometry pair serially and
// returns the reports in input order.
func (t *Trace) Sweep(pairs [][2]cache.Config, lib *tech.Library) ([]Report, error) {
	return t.SweepParallel(pairs, lib, 1)
}

// SweepParallel replays the trace against every geometry pair on a
// bounded worker pool (workers <= 0 selects one worker per CPU). Each
// replay builds fresh cache/memory/bus cores and only reads the recorded
// stream, so replays are independent; reports come back in input order
// and are identical at any worker count.
func (t *Trace) SweepParallel(pairs [][2]cache.Config, lib *tech.Library, workers int) ([]Report, error) {
	return explore.Map(workers, pairs, func(_ int, pr [2]cache.Config) (Report, error) {
		return t.Replay(pr[0], pr[1], lib)
	})
}

// Counts returns the number of fetches, reads and writes in the trace.
func (t *Trace) Counts() (fetches, reads, writes int64) {
	for _, a := range t.Accesses {
		switch a.Kind {
		case Fetch:
			fetches++
		case Read:
			reads++
		default:
			writes++
		}
	}
	return
}
