// Package sched implements the resource-constrained priority list
// scheduler the partitioning loop runs on every candidate cluster
// (paper Fig. 1 line 8: "do_list_schedule(c_i, rs_i)").
//
// Scheduling is per basic block: the operations of a block form a data
// flow graph (RAW/WAR/WAW dependencies on scalar slots plus ordering
// between memory operations on the same array), and the scheduler packs
// them into control steps so that at every step the number of operations
// executing on a resource kind never exceeds the designer's budget
// (tech.ResourceSet). Multi-cycle operations (multiplies, divides) occupy
// their resource for several consecutive steps.
//
// Kind selection happens at placement time: an operation that several
// resource kinds could execute (e.g. a compare, which fits both the
// comparator and the ALU) is placed on a kind already used in an earlier
// step when possible, otherwise on the smallest capable kind — the same
// preference order as Fig. 4's Sorted_RS_List, lifted from instance to
// type granularity (instance binding stays in the utilization algorithm).
//
// Constants are hardwired in an ASIC datapath and consume no step or
// resource; FSM state transitions (branches) are free. Loads and stores
// execute on memory ports (Config.MemPorts) rather than datapath
// resources, one cycle each.
package sched

import (
	"fmt"
	"sort"

	"lppart/internal/cdfg"
	"lppart/internal/tech"
)

// Config parameterizes the scheduler.
type Config struct {
	Lib *tech.Library
	RS  *tech.ResourceSet
	// MemPorts is the number of concurrent memory accesses per step;
	// 0 means the default of 2 (a dual-ported local buffer).
	MemPorts int
}

func (c Config) memPorts() int {
	if c.MemPorts <= 0 {
		return 2
	}
	return c.MemPorts
}

// PlacedOp is one scheduled operation.
type PlacedOp struct {
	Op    *cdfg.Op
	Class tech.OpClass
	// Kind is the resource kind the op was placed on; meaningless when
	// Mem is true.
	Kind tech.ResourceKind
	Mem  bool // executes on a memory port
	// Start is the first control step; Dur the number of steps occupied.
	Start, Dur int
}

// End returns the first step after the operation completes.
func (p *PlacedOp) End() int { return p.Start + p.Dur }

// BlockSchedule is the schedule of one basic block.
type BlockSchedule struct {
	Block *cdfg.Block
	Ops   []PlacedOp
	// Len is the block latency in control steps (at least 1: even an
	// empty block costs one FSM state).
	Len int
}

// RegionSchedule is the schedule of a whole cluster: one BlockSchedule per
// basic block of the region, in region block order.
type RegionSchedule struct {
	Region *cdfg.Region
	Blocks []*BlockSchedule
	Config Config
}

// TotalSteps returns the total number of control steps over all blocks
// (the FSM state count of the synthesized controller).
func (rs *RegionSchedule) TotalSteps() int {
	total := 0
	for _, b := range rs.Blocks {
		total += b.Len
	}
	return total
}

// UnschedulableError reports that a cluster cannot execute on a resource
// set (e.g. a divide with no divider in the budget).
type UnschedulableError struct {
	Op     *cdfg.Op
	Class  tech.OpClass
	RSName string
}

// Error implements the error interface.
func (e *UnschedulableError) Error() string {
	return fmt.Sprintf("sched: op %v (class %v) has no capable resource in set %s",
		e.Op.Code, e.Class, e.RSName)
}

// ScheduleRegion schedules every block of a cluster.
func ScheduleRegion(cfg Config, r *cdfg.Region) (*RegionSchedule, error) {
	if cfg.Lib == nil || cfg.RS == nil {
		return nil, fmt.Errorf("sched: config requires Lib and RS")
	}
	out := &RegionSchedule{Region: r, Config: cfg}
	for _, bid := range r.Blocks {
		bs, err := ScheduleBlock(cfg, r.Func, r.Func.Block(bid))
		if err != nil {
			return nil, err
		}
		out.Blocks = append(out.Blocks, bs)
	}
	return out, nil
}

// node is an op plus its dependency bookkeeping during scheduling.
type node struct {
	op       *cdfg.Op
	class    tech.OpClass
	mem      bool
	dur      int // resolved after kind selection for datapath ops (max over kinds used for priority)
	succs    []int
	preds    int // count of unscheduled predecessors
	priority int // critical-path length to a sink
	placed   bool
	ready    bool
}

// ScheduleBlock schedules the datapath operations of one block.
func ScheduleBlock(cfg Config, f *cdfg.Function, b *cdfg.Block) (*BlockSchedule, error) {
	nodes, order, err := buildDFG(cfg, b)
	if err != nil {
		return nil, err
	}
	bs := &BlockSchedule{Block: b}
	if len(nodes) == 0 {
		bs.Len = 1
		return bs, nil
	}
	computePriorities(nodes)

	// usage[kind][step] and memUse[step] track occupancy.
	var usage [tech.NumResourceKinds]map[int]int
	for k := range usage {
		usage[k] = make(map[int]int)
	}
	memUse := make(map[int]int)
	// kindUsedBefore[k] = true once any op has been placed on kind k
	// (the "already instantiated in a previous control step" test).
	var kindUsedBefore [tech.NumResourceKinds]bool
	earliest := make([]int, len(nodes)) // data-ready step per node

	scheduled := 0
	step := 0
	maxSteps := 64 * (len(nodes) + 4) // generous upper bound; placement is guaranteed below
	for scheduled < len(nodes) && step < maxSteps {
		// Collect ready ops: all preds done and data available by step.
		var ready []int
		for i := range nodes {
			n := &nodes[i]
			if !n.placed && n.preds == 0 && earliest[i] <= step {
				ready = append(ready, i)
			}
		}
		sort.Slice(ready, func(a, b int) bool {
			if nodes[ready[a]].priority != nodes[ready[b]].priority {
				return nodes[ready[a]].priority > nodes[ready[b]].priority
			}
			return order[ready[a]] < order[ready[b]]
		})
		for _, i := range ready {
			n := &nodes[i]
			if n.mem {
				if memUse[step] >= cfg.memPorts() {
					continue
				}
				memUse[step]++
				place(nodes, earliest, i, step, 1)
				bs.Ops = append(bs.Ops, PlacedOp{Op: n.op, Class: n.class, Mem: true, Start: step, Dur: 1})
				scheduled++
				continue
			}
			kind, dur, ok := pickKind(cfg, n.class, step, usage, kindUsedBefore[:])
			if !ok {
				continue // all capable kinds saturated this step
			}
			for t := step; t < step+dur; t++ {
				usage[kind][t]++
			}
			kindUsedBefore[kind] = true
			place(nodes, earliest, i, step, dur)
			bs.Ops = append(bs.Ops, PlacedOp{Op: n.op, Class: n.class, Kind: kind, Start: step, Dur: dur})
			scheduled++
		}
		step++
	}
	if scheduled < len(nodes) {
		return nil, fmt.Errorf("sched: block b%d did not converge (%d/%d ops)", b.ID, scheduled, len(nodes))
	}
	for i := range bs.Ops {
		if e := bs.Ops[i].End(); e > bs.Len {
			bs.Len = e
		}
	}
	if bs.Len == 0 {
		bs.Len = 1
	}
	return bs, nil
}

// place marks node i scheduled at [start,start+dur) and releases its
// successors.
func place(nodes []node, earliest []int, i, start, dur int) {
	n := &nodes[i]
	n.placed = true
	for _, s := range n.succs {
		nodes[s].preds--
		if e := start + dur; e > earliest[s] {
			earliest[s] = e
		}
	}
}

// pickKind selects the resource kind for an op of class c at the given
// step: prefer a kind already used before (Fig. 4 lines 7-13), then the
// smallest capable kind with spare capacity across the op's duration.
func pickKind(cfg Config, c tech.OpClass, step int, usage [tech.NumResourceKinds]map[int]int, usedBefore []bool) (tech.ResourceKind, int, bool) {
	kinds := cfg.Lib.Executors(c) // sorted by GEQ ascending
	try := func(k tech.ResourceKind) (int, bool) {
		limit := cfg.RS.Limit(k)
		if limit == 0 {
			return 0, false
		}
		dur := cfg.Lib.Resource(k).OpCycles(c)
		for t := step; t < step+dur; t++ {
			if usage[k][t] >= limit {
				return 0, false
			}
		}
		return dur, true
	}
	for _, k := range kinds {
		if !usedBefore[k] {
			continue
		}
		if dur, ok := try(k); ok {
			return k, dur, true
		}
	}
	for _, k := range kinds {
		if dur, ok := try(k); ok {
			return k, dur, true
		}
	}
	return 0, 0, false
}

// buildDFG constructs the intra-block dependence graph. order[i] is the
// op's position in the block, used as a deterministic tie-break.
func buildDFG(cfg Config, b *cdfg.Block) ([]node, []int, error) {
	type slotKey struct {
		global bool
		id     int
	}
	var nodes []node
	var order []int
	idxOf := make(map[int]int) // op position in block -> node index

	for pos := range b.Ops {
		op := &b.Ops[pos]
		class, ok := op.Code.Class()
		if !ok {
			continue // const, nop, control: not scheduled
		}
		// A multiply with a compile-time-constant operand synthesizes to
		// a shift-add tree executable on an ALU, not a full multiplier.
		if class == tech.OpMul && (op.A.IsConst || op.B.IsConst) {
			class = tech.OpConstMul
		}
		mem := class == tech.OpMemory
		if !mem {
			// Verify at least one capable kind exists in the budget.
			feasible := false
			for _, k := range cfg.Lib.Executors(class) {
				if cfg.RS.Limit(k) > 0 {
					feasible = true
					break
				}
			}
			if !feasible {
				return nil, nil, &UnschedulableError{Op: op, Class: class, RSName: cfg.RS.Name}
			}
		}
		idxOf[pos] = len(nodes)
		nodes = append(nodes, node{op: op, class: class, mem: mem})
		order = append(order, pos)
	}

	addEdge := func(from, to int) {
		if from == to {
			return
		}
		n := &nodes[from]
		for _, s := range n.succs {
			if s == to {
				return
			}
		}
		n.succs = append(n.succs, to)
		nodes[to].preds++
	}

	lastDef := make(map[slotKey]int) // node index of last writer
	lastUses := make(map[slotKey][]int)
	lastStore := make(map[slotKey]int)
	loadsSince := make(map[slotKey][]int)
	// Values defined by unscheduled ops (consts) are always available;
	// values from scheduled ops create RAW edges. Walk ops in block
	// order, consulting only scheduled (node-mapped) producers.
	for pos := range b.Ops {
		op := &b.Ops[pos]
		ni, isNode := idxOf[pos]
		// Reads.
		for _, u := range op.Uses() {
			k := slotKey{u.Global, u.ID}
			if isNode {
				if d, ok := lastDef[k]; ok {
					addEdge(d, ni) // RAW
				}
				lastUses[k] = append(lastUses[k], ni)
			}
		}
		if isNode && op.Code == cdfg.Load {
			ak := slotKey{op.Arr.Global, op.Arr.ID}
			if s, ok := lastStore[ak]; ok {
				addEdge(s, ni) // memory RAW
			}
			loadsSince[ak] = append(loadsSince[ak], ni)
		}
		// Writes.
		if isNode && op.Code == cdfg.Store {
			ak := slotKey{op.Arr.Global, op.Arr.ID}
			if s, ok := lastStore[ak]; ok {
				addEdge(s, ni) // memory WAW
			}
			for _, l := range loadsSince[ak] {
				addEdge(l, ni) // memory WAR
			}
			loadsSince[ak] = nil
			lastStore[ak] = ni
		}
		if d := op.Def(); d.Valid() {
			k := slotKey{d.Global, d.ID}
			if isNode {
				if prev, ok := lastDef[k]; ok {
					addEdge(prev, ni) // WAW
				}
				for _, u := range lastUses[k] {
					addEdge(u, ni) // WAR
				}
				lastDef[k] = ni
				lastUses[k] = nil
			} else {
				// A const/copy-free def overwrites the slot: later
				// readers no longer depend on the previous producer.
				delete(lastDef, k)
				lastUses[k] = nil
			}
		}
	}

	// Worst-case duration per node for priority computation.
	for i := range nodes {
		n := &nodes[i]
		if n.mem {
			n.dur = 1
			continue
		}
		best := 0
		for _, k := range cfg.Lib.Executors(n.class) {
			if cfg.RS.Limit(k) > 0 {
				d := cfg.Lib.Resource(k).OpCycles(n.class)
				if best == 0 || d < best {
					best = d
				}
			}
		}
		n.dur = best
	}
	return nodes, order, nil
}

// computePriorities assigns each node its critical-path length to a sink
// (in cycles), the classic list-scheduling priority.
func computePriorities(nodes []node) {
	// Reverse topological order via repeated relaxation (graphs are tiny:
	// intra-block).
	changed := true
	for changed {
		changed = false
		for i := range nodes {
			n := &nodes[i]
			p := n.dur
			for _, s := range n.succs {
				if v := nodes[s].priority + n.dur; v > p {
					p = v
				}
			}
			if p > n.priority {
				n.priority = p
				changed = true
			}
		}
	}
}
