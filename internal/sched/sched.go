// Package sched implements the resource-constrained priority list
// scheduler the partitioning loop runs on every candidate cluster
// (paper Fig. 1 line 8: "do_list_schedule(c_i, rs_i)").
//
// Scheduling is per basic block: the operations of a block form a data
// flow graph (RAW/WAR/WAW dependencies on scalar slots plus ordering
// between memory operations on the same array), and the scheduler packs
// them into control steps so that at every step the number of operations
// executing on a resource kind never exceeds the designer's budget
// (tech.ResourceSet). Multi-cycle operations (multiplies, divides) occupy
// their resource for several consecutive steps.
//
// Kind selection happens at placement time: an operation that several
// resource kinds could execute (e.g. a compare, which fits both the
// comparator and the ALU) is placed on a kind already used in an earlier
// step when possible, otherwise on the smallest capable kind — the same
// preference order as Fig. 4's Sorted_RS_List, lifted from instance to
// type granularity (instance binding stays in the utilization algorithm).
//
// Constants are hardwired in an ASIC datapath and consume no step or
// resource; FSM state transitions (branches) are free. Loads and stores
// execute on memory ports (Config.MemPorts) rather than datapath
// resources, one cycle each.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"lppart/internal/cdfg"
	"lppart/internal/tech"
)

// Config parameterizes the scheduler.
type Config struct {
	Lib *tech.Library
	RS  *tech.ResourceSet
	// MemPorts is the number of concurrent memory accesses per step;
	// 0 means the default of 2 (a dual-ported local buffer).
	MemPorts int
}

func (c Config) memPorts() int {
	if c.MemPorts <= 0 {
		return 2
	}
	return c.MemPorts
}

// PlacedOp is one scheduled operation.
type PlacedOp struct {
	Op    *cdfg.Op
	Class tech.OpClass
	// Kind is the resource kind the op was placed on; meaningless when
	// Mem is true.
	Kind tech.ResourceKind
	Mem  bool // executes on a memory port
	// Start is the first control step; Dur the number of steps occupied.
	Start, Dur int
}

// End returns the first step after the operation completes.
func (p *PlacedOp) End() int { return p.Start + p.Dur }

// BlockSchedule is the schedule of one basic block.
type BlockSchedule struct {
	Block *cdfg.Block
	Ops   []PlacedOp
	// Len is the block latency in control steps (at least 1: even an
	// empty block costs one FSM state).
	Len int
}

// RegionSchedule is the schedule of a whole cluster: one BlockSchedule per
// basic block of the region, in region block order.
type RegionSchedule struct {
	Region *cdfg.Region
	Blocks []*BlockSchedule
	Config Config
}

// TotalSteps returns the total number of control steps over all blocks
// (the FSM state count of the synthesized controller).
func (rs *RegionSchedule) TotalSteps() int {
	total := 0
	for _, b := range rs.Blocks {
		total += b.Len
	}
	return total
}

// UnschedulableError reports that a cluster cannot execute on a resource
// set (e.g. a divide with no divider in the budget).
type UnschedulableError struct {
	Op     *cdfg.Op
	Class  tech.OpClass
	RSName string
}

// Error implements the error interface.
func (e *UnschedulableError) Error() string {
	return fmt.Sprintf("sched: op %v (class %v) has no capable resource in set %s",
		e.Op.Code, e.Class, e.RSName)
}

// ScheduleRegion schedules every block of a cluster.
func ScheduleRegion(cfg Config, r *cdfg.Region) (*RegionSchedule, error) {
	if cfg.Lib == nil || cfg.RS == nil {
		return nil, fmt.Errorf("sched: config requires Lib and RS")
	}
	out := &RegionSchedule{Region: r, Config: cfg}
	out.Blocks = make([]*BlockSchedule, 0, len(r.Blocks))
	for _, bid := range r.Blocks {
		bs, err := ScheduleBlock(cfg, r.Func, r.Func.Block(bid))
		if err != nil {
			return nil, err
		}
		out.Blocks = append(out.Blocks, bs)
	}
	return out, nil
}

// node is an op plus its dependency bookkeeping during scheduling.
type node struct {
	op       *cdfg.Op
	class    tech.OpClass
	mem      bool
	dur      int // resolved after kind selection for datapath ops (max over kinds used for priority)
	succs    []int
	preds    int // count of unscheduled predecessors
	priority int // critical-path length to a sink
	placed   bool
}

// slotKey identifies a scalar or array slot for dependence tracking.
type slotKey struct {
	global bool
	id     int
}

// workspace is the reusable scratch state of one scheduling run: node and
// occupancy slabs plus the dependence-tracking maps of buildDFG. Instances
// are drawn from a sync.Pool, so steady-state ScheduleBlock calls allocate
// only the BlockSchedule they return. Every field is reset before use, so
// pooling cannot affect results.
type workspace struct {
	nodes    []node
	order    []int
	earliest []int
	ready    []int
	idxOf    []int32 // op position in block -> node index, -1 if unscheduled
	useBuf   []cdfg.VarRef
	// usage[kind][step] and memUse[step] track occupancy; usageHi is the
	// first step beyond any recorded occupancy (the clear watermark).
	usage   [tech.NumResourceKinds][]int16
	memUse  []int16
	usageHi int

	lastDef    map[slotKey]int
	lastUses   map[slotKey][]int
	lastStore  map[slotKey]int
	loadsSince map[slotKey][]int
}

var wsPool = sync.Pool{New: func() any {
	return &workspace{
		lastDef:    make(map[slotKey]int),
		lastUses:   make(map[slotKey][]int),
		lastStore:  make(map[slotKey]int),
		loadsSince: make(map[slotKey][]int),
	}
}}

// resetOccupancy prepares the step-indexed occupancy slabs for a block
// whose schedule cannot exceed maxSteps control steps. Only the previously
// dirtied prefix is cleared.
func (ws *workspace) resetOccupancy(maxSteps int) {
	need := maxSteps + 64 // headroom for multi-cycle ops past the last start
	for k := range ws.usage {
		if cap(ws.usage[k]) < need {
			ws.usage[k] = make([]int16, need) //lint:alloc slab growth to the high-water mark, then reused
			continue
		}
		u := ws.usage[k][:need]
		for t := 0; t < ws.usageHi && t < len(u); t++ {
			u[t] = 0
		}
		ws.usage[k] = u
	}
	if cap(ws.memUse) < need {
		ws.memUse = make([]int16, need) //lint:alloc slab growth to the high-water mark, then reused
	} else {
		m := ws.memUse[:need]
		for t := 0; t < ws.usageHi && t < len(m); t++ {
			m[t] = 0
		}
		ws.memUse = m
	}
	ws.usageHi = 0
}

// note records that occupancy was written up to (but not including) step
// end, so the next resetOccupancy clears exactly the dirty prefix.
func (ws *workspace) note(end int) {
	if end > ws.usageHi {
		ws.usageHi = end
	}
}

// The ready list sorts by priority (descending), breaking ties by block
// position — the deterministic list-scheduling order. *workspace
// implements sort.Interface over ws.ready so sorting does not allocate.
func (ws *workspace) Len() int      { return len(ws.ready) }
func (ws *workspace) Swap(i, j int) { ws.ready[i], ws.ready[j] = ws.ready[j], ws.ready[i] }
func (ws *workspace) Less(i, j int) bool {
	a, b := ws.ready[i], ws.ready[j]
	if ws.nodes[a].priority != ws.nodes[b].priority {
		return ws.nodes[a].priority > ws.nodes[b].priority
	}
	return ws.order[a] < ws.order[b]
}

// ScheduleBlock schedules the datapath operations of one block.
//
//lint:hotpath the paper's Table 1 inner loop; kept allocation-free since PR 6
func ScheduleBlock(cfg Config, f *cdfg.Function, b *cdfg.Block) (*BlockSchedule, error) {
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)
	if err := ws.buildDFG(cfg, b); err != nil {
		return nil, err
	}
	nodes := ws.nodes
	bs := &BlockSchedule{Block: b} //lint:alloc the returned schedule, memoized by the evaluator
	if len(nodes) == 0 {
		bs.Len = 1
		return bs, nil
	}
	computePriorities(nodes)
	bs.Ops = make([]PlacedOp, 0, len(nodes)) //lint:alloc result buffer owned by the returned schedule

	// kindUsedBefore[k] = true once any op has been placed on kind k
	// (the "already instantiated in a previous control step" test).
	var kindUsedBefore [tech.NumResourceKinds]bool
	maxSteps := 64 * (len(nodes) + 4) // generous upper bound; placement is guaranteed below
	ws.resetOccupancy(maxSteps)
	earliest := ws.earliest[:0]
	for range nodes {
		earliest = append(earliest, 0)
	}
	ws.earliest = earliest

	scheduled := 0
	step := 0
	for scheduled < len(nodes) && step < maxSteps {
		// Collect ready ops: all preds done and data available by step.
		ws.ready = ws.ready[:0]
		for i := range nodes {
			n := &nodes[i]
			if !n.placed && n.preds == 0 && earliest[i] <= step {
				ws.ready = append(ws.ready, i)
			}
		}
		sort.Sort(ws)
		for _, i := range ws.ready {
			n := &nodes[i]
			if n.mem {
				if int(ws.memUse[step]) >= cfg.memPorts() {
					continue
				}
				ws.memUse[step]++
				ws.note(step + 1)
				place(nodes, earliest, i, step, 1)
				bs.Ops = append(bs.Ops, PlacedOp{Op: n.op, Class: n.class, Mem: true, Start: step, Dur: 1})
				scheduled++
				continue
			}
			kind, dur, ok := pickKind(cfg, n.class, step, ws, kindUsedBefore[:])
			if !ok {
				continue // all capable kinds saturated this step
			}
			u := ws.ensure(kind, step+dur)
			for t := step; t < step+dur; t++ {
				u[t]++
			}
			ws.note(step + dur)
			kindUsedBefore[kind] = true
			place(nodes, earliest, i, step, dur)
			bs.Ops = append(bs.Ops, PlacedOp{Op: n.op, Class: n.class, Kind: kind, Start: step, Dur: dur})
			scheduled++
		}
		step++
	}
	if scheduled < len(nodes) {
		return nil, fmt.Errorf("sched: block b%d did not converge (%d/%d ops)", b.ID, scheduled, len(nodes)) //lint:alloc error path
	}
	for i := range bs.Ops {
		if e := bs.Ops[i].End(); e > bs.Len {
			bs.Len = e
		}
	}
	if bs.Len == 0 {
		bs.Len = 1
	}
	return bs, nil
}

// place marks node i scheduled at [start,start+dur) and releases its
// successors.
func place(nodes []node, earliest []int, i, start, dur int) {
	n := &nodes[i]
	n.placed = true
	for _, s := range n.succs {
		nodes[s].preds--
		if e := start + dur; e > earliest[s] {
			earliest[s] = e
		}
	}
}

// ensure grows kind k's occupancy slab to cover steps [0,end) and returns
// it. The common path (builtin library, dur ≤ 64) never grows: the slabs
// are sized with headroom in resetOccupancy.
func (ws *workspace) ensure(k tech.ResourceKind, end int) []int16 {
	u := ws.usage[k]
	if end <= len(u) {
		return u
	}
	nu := make([]int16, end+64) //lint:alloc slab growth to the high-water mark, then reused
	copy(nu, u)
	ws.usage[k] = nu
	return nu
}

// pickKind selects the resource kind for an op of class c at the given
// step: prefer a kind already used before (Fig. 4 lines 7-13), then the
// smallest capable kind with spare capacity across the op's duration.
func pickKind(cfg Config, c tech.OpClass, step int, ws *workspace, usedBefore []bool) (tech.ResourceKind, int, bool) {
	kinds := cfg.Lib.Executors(c) // sorted by GEQ ascending
	try := func(k tech.ResourceKind) (int, bool) {
		limit := cfg.RS.Limit(k)
		if limit == 0 {
			return 0, false
		}
		dur := cfg.Lib.Resource(k).OpCycles(c)
		u := ws.ensure(k, step+dur)
		for t := step; t < step+dur; t++ {
			if int(u[t]) >= limit {
				return 0, false
			}
		}
		return dur, true
	}
	for _, k := range kinds {
		if !usedBefore[k] {
			continue
		}
		if dur, ok := try(k); ok {
			return k, dur, true
		}
	}
	for _, k := range kinds {
		if dur, ok := try(k); ok {
			return k, dur, true
		}
	}
	return 0, 0, false
}

// buildDFG constructs the intra-block dependence graph into ws.nodes and
// ws.order (order[i] is the op's position in the block, used as a
// deterministic tie-break), reusing the workspace's slabs and maps.
func (ws *workspace) buildDFG(cfg Config, b *cdfg.Block) error {
	ws.nodes = ws.nodes[:0]
	ws.order = ws.order[:0]
	ws.idxOf = ws.idxOf[:0]

	for pos := range b.Ops {
		op := &b.Ops[pos]
		class, ok := op.Code.Class()
		if !ok {
			ws.idxOf = append(ws.idxOf, -1)
			continue // const, nop, control: not scheduled
		}
		// A multiply with a compile-time-constant operand synthesizes to
		// a shift-add tree executable on an ALU, not a full multiplier.
		if class == tech.OpMul && (op.A.IsConst || op.B.IsConst) {
			class = tech.OpConstMul
		}
		mem := class == tech.OpMemory
		if !mem {
			// Verify at least one capable kind exists in the budget.
			feasible := false
			for _, k := range cfg.Lib.Executors(class) {
				if cfg.RS.Limit(k) > 0 {
					feasible = true
					break
				}
			}
			if !feasible {
				return &UnschedulableError{Op: op, Class: class, RSName: cfg.RS.Name} //lint:alloc error path
			}
		}
		ws.idxOf = append(ws.idxOf, int32(len(ws.nodes)))
		// Reuse a retired node slot when one is available so its succs
		// slice keeps its capacity across blocks.
		if len(ws.nodes) < cap(ws.nodes) {
			ws.nodes = ws.nodes[:len(ws.nodes)+1]
			n := &ws.nodes[len(ws.nodes)-1]
			n.op, n.class, n.mem = op, class, mem
			n.succs = n.succs[:0]
			n.dur, n.preds, n.priority = 0, 0, 0
			n.placed = false
		} else {
			ws.nodes = append(ws.nodes, node{op: op, class: class, mem: mem})
		}
		ws.order = append(ws.order, pos)
	}
	nodes := ws.nodes

	addEdge := func(from, to int) {
		if from == to {
			return
		}
		n := &nodes[from]
		for _, s := range n.succs {
			if s == to {
				return
			}
		}
		n.succs = append(n.succs, to)
		nodes[to].preds++
	}

	lastDef := ws.lastDef // node index of last writer
	lastUses := ws.lastUses
	lastStore := ws.lastStore
	loadsSince := ws.loadsSince
	clear(lastDef)
	clear(lastUses)
	clear(lastStore)
	clear(loadsSince)
	// Values defined by unscheduled ops (consts) are always available;
	// values from scheduled ops create RAW edges. Walk ops in block
	// order, consulting only scheduled (node-mapped) producers.
	for pos := range b.Ops {
		op := &b.Ops[pos]
		ni, isNode := int(ws.idxOf[pos]), ws.idxOf[pos] >= 0
		// Reads. AppendUses into the workspace buffer: Uses() would
		// allocate a fresh slice per op, on every candidate schedule.
		ws.useBuf = op.AppendUses(ws.useBuf[:0])
		for _, u := range ws.useBuf {
			k := slotKey{u.Global, u.ID}
			if isNode {
				if d, ok := lastDef[k]; ok {
					addEdge(d, ni) // RAW
				}
				lastUses[k] = append(lastUses[k], ni)
			}
		}
		if isNode && op.Code == cdfg.Load {
			ak := slotKey{op.Arr.Global, op.Arr.ID}
			if s, ok := lastStore[ak]; ok {
				addEdge(s, ni) // memory RAW
			}
			loadsSince[ak] = append(loadsSince[ak], ni)
		}
		// Writes.
		if isNode && op.Code == cdfg.Store {
			ak := slotKey{op.Arr.Global, op.Arr.ID}
			if s, ok := lastStore[ak]; ok {
				addEdge(s, ni) // memory WAW
			}
			for _, l := range loadsSince[ak] {
				addEdge(l, ni) // memory WAR
			}
			loadsSince[ak] = nil
			lastStore[ak] = ni
		}
		if d := op.Def(); d.Valid() {
			k := slotKey{d.Global, d.ID}
			if isNode {
				if prev, ok := lastDef[k]; ok {
					addEdge(prev, ni) // WAW
				}
				for _, u := range lastUses[k] {
					addEdge(u, ni) // WAR
				}
				lastDef[k] = ni
				lastUses[k] = nil
			} else {
				// A const/copy-free def overwrites the slot: later
				// readers no longer depend on the previous producer.
				delete(lastDef, k)
				lastUses[k] = nil
			}
		}
	}

	// Worst-case duration per node for priority computation.
	for i := range nodes {
		n := &nodes[i]
		if n.mem {
			n.dur = 1
			continue
		}
		best := 0
		for _, k := range cfg.Lib.Executors(n.class) {
			if cfg.RS.Limit(k) > 0 {
				d := cfg.Lib.Resource(k).OpCycles(n.class)
				if best == 0 || d < best {
					best = d
				}
			}
		}
		n.dur = best
	}
	return nil
}

// computePriorities assigns each node its critical-path length to a sink
// (in cycles), the classic list-scheduling priority.
func computePriorities(nodes []node) {
	// Reverse topological order via repeated relaxation (graphs are tiny:
	// intra-block).
	changed := true
	for changed {
		changed = false
		for i := range nodes {
			n := &nodes[i]
			p := n.dur
			for _, s := range n.succs {
				if v := nodes[s].priority + n.dur; v > p {
					p = v
				}
			}
			if p > n.priority {
				n.priority = p
				changed = true
			}
		}
	}
}
