package sched

import (
	"fmt"

	"lppart/internal/tech"
)

// VerifyIR checks the legality of a region schedule against the same
// dependence graph and resource budget the scheduler worked from — the
// runtime half of the paper's Fig. 1 "verify" step for line 8's list
// schedules. partition.Config.Verify runs it on every freshly scheduled
// (cluster, resource set) pair; the regression tests run it on hand-built
// bad IR.
//
// Checked invariants, per basic block:
//
//   - coverage: every schedulable operation of the block is placed
//     exactly once, with the class the dependence builder assigns
//     (including the constant-multiply → shift-add reclassification);
//   - precedence: for every RAW/WAR/WAW and memory dependence edge
//     a → b, b starts no earlier than a completes;
//   - resource capacity: at every control step, the number of
//     operations occupying a resource kind never exceeds the designer's
//     budget, and concurrent memory operations never exceed the port
//     count (Fig. 4's capacity premise for instance binding);
//   - durations: each placed operation occupies its kind for exactly
//     the library's cycle count, and the block latency equals the last
//     completion (at least one step).
func VerifyIR(rs *RegionSchedule) error {
	if rs == nil {
		return fmt.Errorf("sched: verify: nil schedule")
	}
	cfg := rs.Config
	if cfg.Lib == nil || cfg.RS == nil {
		return fmt.Errorf("sched: verify: schedule has no Lib/RS config")
	}
	if rs.Region == nil {
		return fmt.Errorf("sched: verify: schedule has no region")
	}
	if len(rs.Blocks) != len(rs.Region.Blocks) {
		return fmt.Errorf("sched: verify: region %s has %d blocks, schedule covers %d",
			rs.Region.Label, len(rs.Region.Blocks), len(rs.Blocks))
	}
	for i, bs := range rs.Blocks {
		if bs.Block.ID != rs.Region.Blocks[i] {
			return fmt.Errorf("sched: verify: schedule block %d is b%d, region lists b%d",
				i, bs.Block.ID, rs.Region.Blocks[i])
		}
		if err := verifyBlock(cfg, rs, bs); err != nil {
			return err
		}
	}
	return nil
}

// verifyBlock checks one block schedule.
func verifyBlock(cfg Config, rs *RegionSchedule, bs *BlockSchedule) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("sched: verify: region %s block b%d: %s",
			rs.Region.Label, bs.Block.ID, fmt.Sprintf(format, args...))
	}
	// Re-derive the dependence graph the scheduler used.
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)
	if err := ws.buildDFG(cfg, bs.Block); err != nil {
		return fail("dependence graph: %v", err)
	}
	nodes := ws.nodes
	if len(bs.Ops) != len(nodes) {
		return fail("%d ops placed, %d schedulable", len(bs.Ops), len(nodes))
	}
	if len(nodes) == 0 {
		if bs.Len != 1 {
			return fail("empty block must cost one FSM state, Len=%d", bs.Len)
		}
		return nil
	}

	placedOf := make(map[int]*PlacedOp, len(bs.Ops)) // op ID -> placement
	for i := range bs.Ops {
		p := &bs.Ops[i]
		if _, dup := placedOf[p.Op.ID]; dup {
			return fail("op %d placed twice", p.Op.ID)
		}
		placedOf[p.Op.ID] = p
	}

	var usage [tech.NumResourceKinds]map[int]int
	for k := range usage {
		usage[k] = make(map[int]int)
	}
	memUse := make(map[int]int)
	maxEnd := 0
	for i := range nodes {
		n := &nodes[i]
		p := placedOf[n.op.ID]
		if p == nil {
			return fail("schedulable op %d (%v) missing from schedule", n.op.ID, n.op.Code)
		}
		if p.Class != n.class {
			return fail("op %d placed as class %v, dependence builder says %v",
				n.op.ID, p.Class, n.class)
		}
		if p.Mem != n.mem {
			return fail("op %d memory placement mismatch", n.op.ID)
		}
		if p.Start < 0 || p.Dur < 1 {
			return fail("op %d has illegal interval [%d,+%d)", n.op.ID, p.Start, p.Dur)
		}
		if e := p.End(); e > maxEnd {
			maxEnd = e
		}
		if p.Mem {
			if p.Dur != 1 {
				return fail("memory op %d occupies %d steps, want 1", n.op.ID, p.Dur)
			}
			memUse[p.Start]++
			continue
		}
		if cfg.RS.Limit(p.Kind) == 0 {
			return fail("op %d placed on kind %v absent from set %s",
				n.op.ID, p.Kind, cfg.RS.Name)
		}
		if want := cfg.Lib.Resource(p.Kind).OpCycles(p.Class); p.Dur != want {
			return fail("op %d on %v lasts %d steps, library says %d",
				n.op.ID, p.Kind, p.Dur, want)
		}
		for t := p.Start; t < p.End(); t++ {
			usage[p.Kind][t]++
		}
		// Precedence: successors must start after this op completes.
		for _, s := range n.succs {
			sp := placedOf[nodes[s].op.ID]
			if sp == nil {
				continue // reported above via coverage
			}
			if sp.Start < p.End() {
				return fail("dependence violated: op %d (ends %d) → op %d (starts %d)",
					n.op.ID, p.End(), nodes[s].op.ID, sp.Start)
			}
		}
	}

	for k := tech.ResourceKind(0); k < tech.NumResourceKinds; k++ {
		limit := cfg.RS.Limit(k)
		for t, n := range usage[k] { //lint:ordered capacity check, no result is produced
			if n > limit {
				return fail("step %d uses %d of %v, budget %d", t, n, k, limit)
			}
		}
	}
	ports := cfg.memPorts()
	for t, n := range memUse { //lint:ordered capacity check, no result is produced
		if n > ports {
			return fail("step %d issues %d memory ops, ports %d", t, n, ports)
		}
	}
	if bs.Len != maxEnd {
		return fail("block latency %d, last completion %d", bs.Len, maxEnd)
	}
	return nil
}
