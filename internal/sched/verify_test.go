package sched

import (
	"strings"
	"testing"

	"lppart/internal/cdfg"
	"lppart/internal/tech"
)

// scheduleFor builds and schedules a loop, asserting the fresh schedule
// passes VerifyIR before the caller tampers with it.
func scheduleFor(t *testing.T, cfg Config, src string) *RegionSchedule {
	t.Helper()
	_, loop := buildLoop(t, src)
	rs, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIR(rs); err != nil {
		t.Fatalf("fresh schedule fails VerifyIR: %v", err)
	}
	return rs
}

const verifyLoopSrc = `
var a[16]; var o[16];
func main() {
	var i;
	for i = 0; i < 16; i = i + 1 {
		o[i] = (a[i] * 5 + 3) ^ (a[i] >> 2);
	}
}
`

func wantIRError(t *testing.T, rs *RegionSchedule, substr string) {
	t.Helper()
	err := VerifyIR(rs)
	if err == nil {
		t.Fatalf("VerifyIR accepted bad schedule, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("VerifyIR error %q does not mention %q", err, substr)
	}
}

// busiestBlock returns the block schedule with the most placed ops.
func busiestBlock(rs *RegionSchedule) *BlockSchedule {
	best := rs.Blocks[0]
	for _, bs := range rs.Blocks {
		if len(bs.Ops) > len(best.Ops) {
			best = bs
		}
	}
	return best
}

func TestVerifyIRNilAndConfig(t *testing.T) {
	if VerifyIR(nil) == nil {
		t.Error("nil schedule must fail")
	}
	if VerifyIR(&RegionSchedule{}) == nil {
		t.Error("schedule without config must fail")
	}
}

func TestVerifyIRDetectsPrecedenceViolation(t *testing.T) {
	rs := scheduleFor(t, stdConfig(), verifyLoopSrc)
	// Collapse every op of the busiest block to step 0: the dependence
	// chain (load → mul → add → xor → store) breaks.
	bs := busiestBlock(rs)
	for i := range bs.Ops {
		bs.Ops[i].Start = 0
	}
	if err := VerifyIR(rs); err == nil {
		t.Fatal("VerifyIR accepted a schedule with all ops at step 0")
	}
}

func TestVerifyIRDetectsCapacityViolation(t *testing.T) {
	// Six independent adds on a single ALU: force two onto the same step.
	lib := tech.Default()
	one := tech.ResourceSet{Name: "one-alu"}
	one.Max[tech.ALU] = 1
	one.Max[tech.Comparator] = 1
	cfg := Config{Lib: lib, RS: &one}
	rs := scheduleFor(t, cfg, `
var a; var b; var s1; var s2;
func main() {
	var i;
	for i = 0; i < 2; i = i + 1 {
		s1 = a + 1; s2 = b + 2;
	}
}
`)
	bs := busiestBlock(rs)
	// The two adds are independent, so moving one onto the other's step
	// violates only the one-ALU budget, never precedence.
	var adds []*PlacedOp
	for i := range bs.Ops {
		if bs.Ops[i].Op.Code == cdfg.Add && !bs.Ops[i].Mem {
			adds = append(adds, &bs.Ops[i])
		}
	}
	if len(adds) < 2 {
		t.Fatalf("found %d placed adds, want >= 2", len(adds))
	}
	adds[1].Start = adds[0].Start
	wantIRError(t, rs, "budget")
}

func TestVerifyIRDetectsWrongDuration(t *testing.T) {
	rs := scheduleFor(t, stdConfig(), verifyLoopSrc)
	bs := busiestBlock(rs)
	for i := range bs.Ops {
		if bs.Ops[i].Op.Code == cdfg.Mul && !bs.Ops[i].Mem {
			bs.Ops[i].Dur++ // multi-cycle multiply claims one extra cycle
			wantIRError(t, rs, "library says")
			return
		}
	}
	t.Fatal("no placed multiply")
}

func TestVerifyIRDetectsAbsentKind(t *testing.T) {
	rs := scheduleFor(t, stdConfig(), verifyLoopSrc)
	bs := busiestBlock(rs)
	for i := range bs.Ops {
		if bs.Ops[i].Op.Code == cdfg.Mul && !bs.Ops[i].Mem {
			bs.Ops[i].Kind = tech.Divider // rs-std has no divider
			wantIRError(t, rs, "absent from set")
			return
		}
	}
	t.Fatal("no placed multiply")
}

func TestVerifyIRDetectsWrongLatency(t *testing.T) {
	rs := scheduleFor(t, stdConfig(), verifyLoopSrc)
	bs := busiestBlock(rs)
	bs.Len++
	wantIRError(t, rs, "latency")
}

func TestVerifyIRDetectsMissingOp(t *testing.T) {
	rs := scheduleFor(t, stdConfig(), verifyLoopSrc)
	bs := busiestBlock(rs)
	bs.Ops = bs.Ops[:len(bs.Ops)-1]
	wantIRError(t, rs, "schedulable")
}

func TestVerifyIRDetectsWrongClass(t *testing.T) {
	rs := scheduleFor(t, stdConfig(), verifyLoopSrc)
	bs := busiestBlock(rs)
	for i := range bs.Ops {
		if !bs.Ops[i].Mem {
			bs.Ops[i].Class = tech.OpDivRem
			wantIRError(t, rs, "class")
			return
		}
	}
	t.Fatal("no datapath op")
}
