package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"lppart/internal/behav"
	"lppart/internal/cdfg"
	"lppart/internal/tech"
)

// TestSchedulePropertyRandomKernels schedules randomly generated loop
// kernels on every designer resource set and checks the structural
// invariants (dependences respected, budgets never exceeded, every
// datapath op placed exactly once) plus a latency sanity bound.
func TestSchedulePropertyRandomKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>"}
	vars := []string{"v0", "v1", "v2", "v3"}
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return vars[rng.Intn(len(vars))]
			}
			return fmt.Sprintf("%d", 1+rng.Intn(30))
		}
		op := ops[rng.Intn(len(ops))]
		return "(" + expr(depth-1) + " " + op + " " + expr(depth-1) + ")"
	}
	lib := tech.Default()
	sets := tech.DefaultResourceSets()
	for trial := 0; trial < 30; trial++ {
		src := "var arr[64];\nfunc main() {\n\tvar i; var v0; var v1; var v2; var v3;\n"
		src += "\tfor i = 0; i < 8; i = i + 1 {\n"
		for s := 0; s < 2+rng.Intn(5); s++ {
			dst := vars[rng.Intn(len(vars))]
			src += fmt.Sprintf("\t\t%s = %s;\n", dst, expr(1+rng.Intn(3)))
		}
		if rng.Intn(2) == 0 {
			src += fmt.Sprintf("\t\tarr[i] = %s;\n", vars[rng.Intn(len(vars))])
		}
		src += "\t}\n}\n"

		prog, err := behav.Parse("rand", src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src)
		}
		ir, err := cdfg.Build(prog)
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		var loop *cdfg.Region
		for _, r := range ir.Regions() {
			if r.Kind == cdfg.RegionLoop {
				loop = r
			}
		}
		for si := range sets {
			cfg := Config{Lib: lib, RS: &sets[si]}
			rs, err := ScheduleRegion(cfg, loop)
			if err != nil {
				// Tiny sets legitimately cannot execute some kernels.
				if _, ok := err.(*UnschedulableError); ok {
					continue
				}
				t.Fatalf("trial %d set %s: %v\n%s", trial, sets[si].Name, err, src)
			}
			for _, bs := range rs.Blocks {
				verifySchedule(t, cfg, bs)
				// Latency bound: a block can never take longer than
				// fully serial execution at the worst per-op latency.
				worst := 0
				for _, p := range bs.Ops {
					worst += p.Dur
				}
				if bs.Len > worst+1 {
					t.Errorf("trial %d: block len %d exceeds serial bound %d", trial, bs.Len, worst)
				}
			}
		}
	}
}

// TestSchedulePropertyMoreResourcesNeverSlower checks monotonicity: a
// strictly richer resource set can never lengthen a block's schedule.
func TestSchedulePropertyMoreResourcesNeverSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lib := tech.Default()
	small := tech.ResourceSet{Name: "small"}
	small.Max[tech.ALU] = 1
	small.Max[tech.Shifter] = 1
	small.Max[tech.Comparator] = 1
	small.Max[tech.Multiplier] = 1
	big := small
	big.Name = "big"
	big.Max[tech.ALU] = 4
	big.Max[tech.Shifter] = 2
	big.Max[tech.Comparator] = 2
	big.Max[tech.Multiplier] = 2

	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		src := "func main() {\n\tvar i; var a; var b2; var c; var d;\n\tfor i = 0; i < 4; i = i + 1 {\n"
		for s := 0; s < n; s++ {
			src += fmt.Sprintf("\t\t%s = (a + %d) * (b2 ^ %d);\n",
				[]string{"a", "b2", "c", "d"}[rng.Intn(4)], rng.Intn(9)+1, rng.Intn(9)+1)
		}
		src += "\t}\n}\n"
		prog := behav.MustParse("mono", src)
		ir := cdfg.MustBuild(prog)
		var loop *cdfg.Region
		for _, r := range ir.Regions() {
			if r.Kind == cdfg.RegionLoop {
				loop = r
			}
		}
		s1, err := ScheduleRegion(Config{Lib: lib, RS: &small}, loop)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := ScheduleRegion(Config{Lib: lib, RS: &big}, loop)
		if err != nil {
			t.Fatal(err)
		}
		if s2.TotalSteps() > s1.TotalSteps() {
			t.Errorf("trial %d: richer set scheduled %d steps vs %d\n%s",
				trial, s2.TotalSteps(), s1.TotalSteps(), src)
		}
	}
}
