package sched

import (
	"errors"
	"testing"

	"lppart/internal/behav"
	"lppart/internal/cdfg"
	"lppart/internal/tech"
)

func buildLoop(t *testing.T, src string) (*cdfg.Program, *cdfg.Region) {
	t.Helper()
	prog, err := behav.Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ir, err := cdfg.Build(prog)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop {
			return ir, r
		}
	}
	t.Fatal("no loop region")
	return nil, nil
}

func stdConfig() Config {
	lib := tech.Default()
	sets := tech.DefaultResourceSets()
	return Config{Lib: lib, RS: &sets[2]} // rs-std: 2 ALU, 1 SHIFT, 1 MUL, 1 CMP
}

// verifySchedule checks structural invariants of a block schedule:
// dependencies respected, resource budgets never exceeded.
func verifySchedule(t *testing.T, cfg Config, bs *BlockSchedule) {
	t.Helper()
	// Budget check per step.
	var usage [tech.NumResourceKinds]map[int]int
	for k := range usage {
		usage[k] = make(map[int]int)
	}
	memUse := make(map[int]int)
	for _, p := range bs.Ops {
		if p.Dur <= 0 {
			t.Errorf("op %v has non-positive duration", p.Op.Code)
		}
		if p.End() > bs.Len {
			t.Errorf("op %v ends at %d beyond block len %d", p.Op.Code, p.End(), bs.Len)
		}
		if p.Mem {
			memUse[p.Start]++
			continue
		}
		for s := p.Start; s < p.End(); s++ {
			usage[p.Kind][s]++
		}
	}
	for k := range usage {
		limit := cfg.RS.Limit(tech.ResourceKind(k))
		for s, n := range usage[k] {
			if n > limit {
				t.Errorf("step %d: %d ops on %v, budget %d", s, n, tech.ResourceKind(k), limit)
			}
		}
	}
	for s, n := range memUse {
		if n > cfg.memPorts() {
			t.Errorf("step %d: %d memory ops, %d ports", s, n, cfg.memPorts())
		}
	}
	// RAW: a scheduled producer of a slot must finish before a scheduled
	// consumer that reads it afterwards in program order.
	type slotKey struct {
		g  bool
		id int
	}
	start := make(map[int]int) // op ID -> start
	end := make(map[int]int)
	for _, p := range bs.Ops {
		start[p.Op.ID] = p.Start
		end[p.Op.ID] = p.End()
	}
	lastDef := make(map[slotKey]int) // op ID
	for i := range bs.Block.Ops {
		op := &bs.Block.Ops[i]
		if _, scheduled := start[op.ID]; scheduled {
			for _, u := range op.Uses() {
				k := slotKey{u.Global, u.ID}
				if d, ok := lastDef[k]; ok {
					if start[op.ID] < end[d] {
						t.Errorf("RAW violated: op %d starts %d before producer %d ends %d",
							op.ID, start[op.ID], d, end[d])
					}
				}
			}
		}
		if d := op.Def(); d.Valid() {
			k := slotKey{d.Global, d.ID}
			if _, scheduled := start[op.ID]; scheduled {
				lastDef[k] = op.ID
			} else {
				delete(lastDef, k) // const def: value always available
			}
		}
	}
}

func TestScheduleSimpleLoop(t *testing.T) {
	ir, loop := buildLoop(t, `
var a[16]; var b[16];
func main() {
	var i;
	for i = 0; i < 16; i = i + 1 {
		b[i] = a[i] * 3 + 1;
	}
}
`)
	_ = ir
	cfg := stdConfig()
	rs, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Blocks) == 0 {
		t.Fatal("no blocks scheduled")
	}
	total := rs.TotalSteps()
	if total <= 0 {
		t.Errorf("total steps = %d", total)
	}
	for _, bs := range rs.Blocks {
		verifySchedule(t, cfg, bs)
	}
}

func TestScheduleRespectsSingleALU(t *testing.T) {
	// Six independent adds on one ALU must serialize into >= 6 steps.
	src := `
var a; var b; var c; var d; var e; var f;
var s1; var s2; var s3; var s4; var s5; var s6;
func main() {
	var i;
	for i = 0; i < 2; i = i + 1 {
		s1 = a + 1; s2 = b + 2; s3 = c + 3;
		s4 = d + 4; s5 = e + 5; s6 = f + 6;
	}
}
`
	_, loop := buildLoop(t, src)
	lib := tech.Default()
	tiny := tech.ResourceSet{Name: "one-alu"}
	tiny.Max[tech.ALU] = 1
	tiny.Max[tech.Comparator] = 1
	cfg := Config{Lib: lib, RS: &tiny}
	rs, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	var body *BlockSchedule
	for _, bs := range rs.Blocks {
		adds := 0
		for _, p := range bs.Ops {
			if p.Op.Code == cdfg.Add {
				adds++
			}
		}
		if adds >= 6 {
			body = bs
		}
	}
	if body == nil {
		t.Fatal("no body block with 6 adds")
	}
	if body.Len < 6 {
		t.Errorf("6 adds + increment on 1 ALU in %d steps, want >= 6", body.Len)
	}
	verifySchedule(t, cfg, body)
}

func TestScheduleParallelismHelps(t *testing.T) {
	src := `
var a; var b; var c; var d;
var s1; var s2; var s3; var s4;
func main() {
	var i;
	for i = 0; i < 2; i = i + 1 {
		s1 = a + 1; s2 = b + 2; s3 = c + 3; s4 = d + 4;
	}
}
`
	_, loop := buildLoop(t, src)
	lib := tech.Default()
	one := tech.ResourceSet{Name: "one"}
	one.Max[tech.ALU] = 1
	one.Max[tech.Comparator] = 1
	four := tech.ResourceSet{Name: "four"}
	four.Max[tech.ALU] = 4
	four.Max[tech.Comparator] = 1

	lenOf := func(rs *tech.ResourceSet) int {
		s, err := ScheduleRegion(Config{Lib: lib, RS: rs}, loop)
		if err != nil {
			t.Fatal(err)
		}
		return s.TotalSteps()
	}
	l1, l4 := lenOf(&one), lenOf(&four)
	if l4 >= l1 {
		t.Errorf("4 ALUs (%d steps) must beat 1 ALU (%d steps)", l4, l1)
	}
}

func TestScheduleMultiCycleMul(t *testing.T) {
	_, loop := buildLoop(t, `
var x; var y;
func main() {
	var i;
	for i = 0; i < 2; i = i + 1 {
		y = x * x;
	}
}
`)
	cfg := stdConfig()
	rs, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	mulCycles := cfg.Lib.Resource(tech.Multiplier).OpCycles(tech.OpMul)
	found := false
	for _, bs := range rs.Blocks {
		for _, p := range bs.Ops {
			if p.Op.Code == cdfg.Mul {
				found = true
				if p.Dur != mulCycles {
					t.Errorf("mul duration = %d, want %d", p.Dur, mulCycles)
				}
				if p.Kind != tech.Multiplier {
					t.Errorf("mul on %v, want multiplier", p.Kind)
				}
			}
		}
		verifySchedule(t, cfg, bs)
	}
	if !found {
		t.Fatal("no multiply scheduled")
	}
}

func TestScheduleUnschedulable(t *testing.T) {
	_, loop := buildLoop(t, `
var x;
func main() {
	var i;
	for i = 0; i < 2; i = i + 1 {
		x = x / 3;
	}
}
`)
	lib := tech.Default()
	sets := tech.DefaultResourceSets()
	// rs-std has no divider.
	_, err := ScheduleRegion(Config{Lib: lib, RS: &sets[2]}, loop)
	var ue *UnschedulableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnschedulableError", err)
	}
	// rs-max has a divider: must succeed.
	rs, err := ScheduleRegion(Config{Lib: lib, RS: &sets[4]}, loop)
	if err != nil {
		t.Fatalf("rs-max: %v", err)
	}
	divCycles := lib.Resource(tech.Divider).OpCycles(tech.OpDivRem)
	for _, bs := range rs.Blocks {
		for _, p := range bs.Ops {
			if p.Op.Code == cdfg.Div && p.Dur != divCycles {
				t.Errorf("div duration = %d, want %d", p.Dur, divCycles)
			}
		}
	}
}

func TestScheduleMemPortLimit(t *testing.T) {
	src := `
var a[8]; var b[8]; var c[8]; var d[8]; var o[8];
func main() {
	var i;
	for i = 0; i < 8; i = i + 1 {
		o[i] = a[i] + b[i] + c[i] + d[i];
	}
}
`
	_, loop := buildLoop(t, src)
	lib := tech.Default()
	sets := tech.DefaultResourceSets()
	one := Config{Lib: lib, RS: &sets[3], MemPorts: 1}
	two := Config{Lib: lib, RS: &sets[3], MemPorts: 4}
	s1, err := ScheduleRegion(one, loop)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ScheduleRegion(two, loop)
	if err != nil {
		t.Fatal(err)
	}
	if s2.TotalSteps() >= s1.TotalSteps() {
		t.Errorf("4 mem ports (%d) must beat 1 port (%d)", s2.TotalSteps(), s1.TotalSteps())
	}
	for _, bs := range s1.Blocks {
		verifySchedule(t, one, bs)
	}
}

func TestScheduleComparePrefersReuse(t *testing.T) {
	// With a comparator and an ALU both present, compares may go either
	// way, but the schedule must stay within budgets and be valid.
	_, loop := buildLoop(t, `
var x;
func main() {
	var i;
	for i = 0; i < 8; i = i + 1 {
		if x < 5 { x = x + 1; }
	}
}
`)
	cfg := stdConfig()
	rs, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range rs.Blocks {
		verifySchedule(t, cfg, bs)
	}
}

func TestScheduleEmptyBlockCostsOneStep(t *testing.T) {
	// A loop whose body is empty still has header + body blocks; every
	// block costs at least one FSM state.
	_, loop := buildLoop(t, `
func main() {
	var i;
	for i = 0; i < 4; i = i + 1 { }
}
`)
	cfg := stdConfig()
	rs, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range rs.Blocks {
		if bs.Len < 1 {
			t.Errorf("block b%d len %d, want >= 1", bs.Block.ID, bs.Len)
		}
	}
}

func TestScheduleChainSerializes(t *testing.T) {
	// A dependence chain a->b->c->d cannot be shorter than 4 steps no
	// matter how many ALUs.
	_, loop := buildLoop(t, `
var x;
func main() {
	var i;
	for i = 0; i < 2; i = i + 1 {
		x = ((((x + 1) + 2) + 3) + 4);
	}
}
`)
	lib := tech.Default()
	wide := tech.ResourceSet{Name: "wide"}
	wide.Max[tech.ALU] = 8
	wide.Max[tech.Comparator] = 2
	cfg := Config{Lib: lib, RS: &wide}
	rs, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	var body *BlockSchedule
	for _, bs := range rs.Blocks {
		adds := 0
		for _, p := range bs.Ops {
			if p.Op.Code == cdfg.Add {
				adds++
			}
		}
		if adds >= 4 {
			body = bs
		}
	}
	if body == nil {
		t.Fatal("no body found")
	}
	if body.Len < 4 {
		t.Errorf("chain of 4 adds in %d steps, want >= 4", body.Len)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	_, loop := buildLoop(t, `
var a[8]; var o[8];
func main() {
	var i;
	for i = 0; i < 8; i = i + 1 {
		o[i] = (a[i] * 5 + 3) ^ (a[i] >> 2);
	}
}
`)
	cfg := stdConfig()
	s1, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	if s1.TotalSteps() != s2.TotalSteps() {
		t.Error("schedule not deterministic")
	}
	for i := range s1.Blocks {
		if len(s1.Blocks[i].Ops) != len(s2.Blocks[i].Ops) {
			t.Fatal("op counts differ between runs")
		}
		for j := range s1.Blocks[i].Ops {
			p, q := s1.Blocks[i].Ops[j], s2.Blocks[i].Ops[j]
			if p.Op.ID != q.Op.ID || p.Start != q.Start || p.Kind != q.Kind {
				t.Errorf("placement %d differs: %+v vs %+v", j, p, q)
			}
		}
	}
}

func TestScheduleAllOpsPlacedOnce(t *testing.T) {
	_, loop := buildLoop(t, `
var a[32]; var o[32];
func main() {
	var i;
	for i = 0; i < 32; i = i + 1 {
		if a[i] > 0 {
			o[i] = a[i] * a[i] - (a[i] << 1);
		} else {
			o[i] = -a[i] + 7;
		}
	}
}
`)
	cfg := stdConfig()
	rs, err := ScheduleRegion(cfg, loop)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range rs.Blocks {
		verifySchedule(t, cfg, bs)
		seen := make(map[int]bool)
		want := 0
		for i := range bs.Block.Ops {
			if _, ok := bs.Block.Ops[i].Code.Class(); ok {
				want++
			}
		}
		for _, p := range bs.Ops {
			if seen[p.Op.ID] {
				t.Errorf("op %d placed twice", p.Op.ID)
			}
			seen[p.Op.ID] = true
		}
		if len(bs.Ops) != want {
			t.Errorf("block b%d: placed %d ops, want %d", bs.Block.ID, len(bs.Ops), want)
		}
	}
}

func TestScheduleConfigErrors(t *testing.T) {
	_, loop := buildLoop(t, "func main() { var i; for i=0;i<2;i=i+1 {} }")
	if _, err := ScheduleRegion(Config{}, loop); err == nil {
		t.Error("nil Lib/RS must error")
	}
}
