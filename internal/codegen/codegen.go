// Package codegen compiles CDFG programs to the embedded RISC ISA so the
// instruction-set simulator can execute and energy-account them (paper
// §3.5: the software parts are "fed into the Core Energy Estimation
// block" driven by an instruction set simulator).
//
// Design choices, documented for reproducibility:
//
//   - Variables live in memory; within a basic block a local register
//     allocator caches them (load on first use, write-back of dirty values
//     at block ends). This yields a realistic embedded instruction mix:
//     expression-heavy code stays register-bound while data-walking loops
//     show the load/store traffic the caches see.
//   - Locals of non-recursive functions get *static* homes (module-static
//     frames, common practice for DSP compilers of the era). This is also
//     what makes hardware/software rendezvous simple: every cluster
//     interface variable has a fixed shared-memory address the ASIC core
//     can read/write (paper Fig. 2a's shared-memory communication).
//     Recursive functions fall back to real stack frames; their regions
//     are not eligible for partitioning.
//   - A partitioned design is produced by compiling with Options.Exclude:
//     the entry of an excluded region assembles to a single ASIC
//     rendezvous instruction followed by a jump to the region's exit, and
//     the region's own blocks are dropped from the instruction stream
//     (which is why the partitioned designs in Table 1 also show reduced
//     I-cache energy).
package codegen

import (
	"fmt"
	"sort"

	"lppart/internal/cdfg"
	"lppart/internal/isa"
)

// Options configures compilation.
type Options struct {
	// Exclude maps cdfg region IDs to ASIC core ids. Each excluded
	// region is replaced by one ASIC instruction.
	Exclude map[int]int
	// MemWords sets the data memory size in 32-bit words (default 1Mi).
	MemWords int
	// StackWords reserves stack space at the top of memory (default
	// 64Ki); only recursive functions consume it.
	StackWords int
}

// Layout records where compilation placed every variable.
type Layout struct {
	// GlobalAddr[i] is the word address of cdfg Program.Globals[i].
	GlobalAddr []int32
	// StaticBase[fn][localID] is the word address of a local of a
	// non-recursive function (static frame).
	StaticBase map[string][]int32
	// FrameOff[fn][localID] is the SP-relative word offset of a local of
	// a recursive function.
	FrameOff map[string][]int32
	// FrameSize[fn] is the stack frame size (words) of a recursive
	// function, including the return-address slot at offset 0.
	FrameSize map[string]int32
	// Recursive marks functions that (transitively) may call themselves.
	Recursive map[string]bool
	// MemWords is the data memory size the program was compiled for.
	MemWords int

	raSlot []raEntry // static return-address slots (non-recursive funcs)
}

// VarAddr resolves a scalar or array variable to its static word address
// and size in words. ok is false for stack-resident (recursive) locals,
// which have no static home.
func (l *Layout) VarAddr(p *cdfg.Program, fn string, global bool, id int) (addr, words int32, ok bool) {
	if global {
		v := p.Globals[id]
		words = 1
		if v.IsArray() {
			words = v.Len
		}
		return l.GlobalAddr[id], words, true
	}
	if l.Recursive[fn] {
		return 0, 0, false
	}
	f := p.Func(fn)
	v := f.Locals[id]
	words = 1
	if v.IsArray() {
		words = v.Len
	}
	return l.StaticBase[fn][id], words, true
}

// Compile translates the program. The returned layout is needed by the
// system model (ASIC data exchange) and by differential tests.
func Compile(p *cdfg.Program, opts Options) (*isa.Program, *Layout, error) {
	if opts.MemWords == 0 {
		opts.MemWords = 1 << 20
	}
	if opts.StackWords == 0 {
		opts.StackWords = 1 << 16
	}
	lay := &Layout{
		StaticBase: make(map[string][]int32),
		FrameOff:   make(map[string][]int32),
		FrameSize:  make(map[string]int32),
		Recursive:  findRecursive(p),
		MemWords:   opts.MemWords,
	}
	// Data layout: reserve the first 8 words, then globals, then static
	// frames (return-address slot first, then locals).
	next := int32(8)
	for _, g := range p.Globals {
		lay.GlobalAddr = append(lay.GlobalAddr, next)
		if g.IsArray() {
			next += g.Len
		} else {
			next++
		}
	}
	for _, f := range p.Funcs {
		if lay.Recursive[f.Name] {
			offs := make([]int32, len(f.Locals))
			off := int32(1) // slot 0: saved RA
			for i, v := range f.Locals {
				offs[i] = off
				if v.IsArray() {
					off += v.Len
				} else {
					off++
				}
			}
			lay.FrameOff[f.Name] = offs
			lay.FrameSize[f.Name] = off
			continue
		}
		base := make([]int32, len(f.Locals))
		lay.StaticBase[f.Name] = base
		lay.raSlot = append(lay.raSlot, raEntry{fn: f.Name, addr: next})
		next++ // static return-address slot
		for i, v := range f.Locals {
			base[i] = next
			if v.IsArray() {
				next += v.Len
			} else {
				next++
			}
		}
	}
	if int(next)+opts.StackWords > opts.MemWords {
		return nil, nil, fmt.Errorf("codegen: data (%d words) plus stack (%d) exceed memory (%d)",
			next, opts.StackWords, opts.MemWords)
	}

	cg := &compiler{prog: p, opts: opts, lay: lay,
		calls: []pendingCall{}, funcs: make(map[string]int)}
	// Startup stub: call main, halt.
	cg.emit(isa.Instr{Op: isa.CALL, Region: -1, Comment: "startup"})
	cg.calls = append(cg.calls, pendingCall{at: 0, callee: "main"})
	cg.emit(isa.Instr{Op: isa.HALT, Region: -1})

	for _, f := range p.Funcs {
		if err := cg.compileFunc(f); err != nil {
			return nil, nil, err
		}
	}
	for _, pc := range cg.calls {
		at, ok := cg.funcs[pc.callee]
		if !ok {
			return nil, nil, fmt.Errorf("codegen: call to unknown function %q", pc.callee)
		}
		cg.code[pc.at].Target = at
	}
	return &isa.Program{
		Name:     p.Name,
		Code:     cg.code,
		Entry:    0,
		Funcs:    cg.funcs,
		MemWords: opts.MemWords,
	}, lay, nil
}

type raEntry struct {
	fn   string
	addr int32
}

// raAddr returns the static return-address slot of a non-recursive
// function.
func (l *Layout) raAddr(fn string) int32 {
	for _, e := range l.raSlot {
		if e.fn == fn {
			return e.addr
		}
	}
	panic("codegen: no RA slot for " + fn)
}

type pendingCall struct {
	at     int
	callee string
}

type compiler struct {
	prog  *cdfg.Program
	opts  Options
	lay   *Layout
	code  []isa.Instr
	calls []pendingCall
	funcs map[string]int
}

func (c *compiler) emit(i isa.Instr) int {
	c.code = append(c.code, i)
	return len(c.code) - 1
}

// findRecursive marks every function on a call-graph cycle (or reaching
// one), conservatively treating them as needing stack frames.
func findRecursive(p *cdfg.Program) map[string]bool {
	callees := make(map[string][]string)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Ops {
				if b.Ops[i].Code == cdfg.Call {
					callees[f.Name] = append(callees[f.Name], b.Ops[i].Callee)
				}
			}
		}
	}
	rec := make(map[string]bool)
	for _, f := range p.Funcs {
		// DFS from f: can we reach f again?
		seen := make(map[string]bool)
		var stack []string
		stack = append(stack, callees[f.Name]...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == f.Name {
				rec[f.Name] = true
				break
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, callees[n]...)
		}
	}
	return rec
}

// fnCtx is the per-function compilation context.
type fnCtx struct {
	c         *compiler
	fn        *cdfg.Function
	recursive bool
	blockAt   map[int]int   // block ID -> instruction index
	fixups    []blockFixup  // branches to patch
	regionOf  []int         // block ID -> innermost region ID (-1 outside)
	excluded  map[int]bool  // block IDs dropped (inside excluded regions)
	asicEntry map[int]entry // region entry block ID -> (asic id, exit block, region id)
	// pinned maps hot local IDs to the dedicated registers that hold
	// them for the whole function body (register promotion). Only
	// call-free, non-recursive functions pin; see pickPinned.
	pinned map[int]int
	// tempUses counts reads of each temporary; single-use temporaries
	// (the common case: expression-tree values) are freed on read and
	// never written back to memory.
	tempUses map[int]int
}

// countTempUses tallies how often each temporary local is read.
func countTempUses(f *cdfg.Function) map[int]int {
	uses := make(map[int]int)
	for _, b := range f.Blocks {
		for i := range b.Ops {
			for _, u := range b.Ops[i].Uses() {
				if !u.Global && f.Locals[u.ID].Temp {
					uses[u.ID]++
				}
			}
		}
	}
	return uses
}

// pickPinned selects up to isa.MaxPinned scalar locals with the highest
// static reference counts for whole-function register residency — the
// register promotion every real embedded compiler performs for loop
// counters and accumulators. Functions that make calls cannot pin (the
// callee clobbers the temporaries).
func pickPinned(f *cdfg.Function) map[int]int {
	count := make(map[int]int)
	for _, b := range f.Blocks {
		for i := range b.Ops {
			op := &b.Ops[i]
			if op.Code == cdfg.Call {
				return nil
			}
			for _, u := range op.Uses() {
				if !u.Global && !f.Locals[u.ID].Temp && !f.Locals[u.ID].IsArray() {
					count[u.ID]++
				}
			}
			if d := op.Def(); d.Valid() && !d.Global &&
				!f.Locals[d.ID].Temp && !f.Locals[d.ID].IsArray() {
				count[d.ID]++
			}
		}
	}
	type cand struct{ id, n int }
	var cands []cand
	for id, n := range count {
		if n >= 3 {
			cands = append(cands, cand{id, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > isa.MaxPinned {
		cands = cands[:isa.MaxPinned]
	}
	pinned := make(map[int]int, len(cands))
	for i, c := range cands {
		pinned[c.id] = isa.FirstPinned + i
	}
	return pinned
}

type entry struct {
	asicID int
	exit   int
	region int
}

type blockFixup struct {
	at    int
	block int
}

// sortedPinned returns the pinned local IDs in deterministic order.
func sortedPinned(pinned map[int]int) []int {
	ids := make([]int, 0, len(pinned))
	for id := range pinned {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (c *compiler) compileFunc(f *cdfg.Function) error {
	fx := &fnCtx{
		c:         c,
		fn:        f,
		recursive: c.lay.Recursive[f.Name],
		blockAt:   make(map[int]int),
		excluded:  make(map[int]bool),
		asicEntry: make(map[int]entry),
	}
	if !fx.recursive {
		fx.pinned = pickPinned(f)
	}
	fx.tempUses = countTempUses(f)
	fx.regionOf = innermostRegions(f)
	// Resolve excluded regions belonging to this function.
	if f.Root != nil {
		for _, r := range f.Root.AllRegions() {
			asicID, ok := c.opts.Exclude[r.ID]
			if !ok {
				continue
			}
			if fx.recursive {
				return fmt.Errorf("codegen: cannot exclude region %s of recursive function %s", r.Label, f.Name)
			}
			exit, err := regionExit(f, r)
			if err != nil {
				return err
			}
			for _, bid := range r.Blocks {
				fx.excluded[bid] = true
			}
			fx.asicEntry[r.Entry] = entry{asicID: asicID, exit: exit, region: r.ID}
		}
	}

	c.funcs[f.Name] = len(c.code)
	// Prologue.
	if fx.recursive {
		frame := c.lay.FrameSize[f.Name]
		c.emit(isa.Instr{Op: isa.SUB, Rd: isa.SP, Rs1: isa.SP, Imm: frame, UseImm: true,
			Region: -1, Comment: f.Name + " prologue"})
		c.emit(isa.Instr{Op: isa.ST, Rs1: isa.SP, Rs2: isa.RA, Imm: 0, Region: -1, Comment: "save ra"})
		for i, pid := range f.Params {
			c.emit(isa.Instr{Op: isa.ST, Rs1: isa.SP, Rs2: isa.A0 + i,
				Imm: c.lay.FrameOff[f.Name][pid], Region: -1, Comment: "spill arg"})
		}
	} else {
		c.emit(isa.Instr{Op: isa.ST, Rs1: isa.Zero, Rs2: isa.RA, Imm: c.lay.raAddr(f.Name),
			Region: -1, Comment: f.Name + " prologue: save ra"})
		for i, pid := range f.Params {
			if r, ok := fx.pinned[pid]; ok {
				c.emit(isa.Instr{Op: isa.MOV, Rd: r, Rs1: isa.A0 + i,
					Region: -1, Comment: "pin arg"})
				continue
			}
			c.emit(isa.Instr{Op: isa.ST, Rs1: isa.Zero, Rs2: isa.A0 + i,
				Imm: c.lay.StaticBase[f.Name][pid], Region: -1, Comment: "spill arg"})
		}
		// Pinned non-parameter locals start at zero, like their homes.
		isParam := make(map[int]bool, len(f.Params))
		for _, pid := range f.Params {
			isParam[pid] = true
		}
		for _, id := range sortedPinned(fx.pinned) {
			if !isParam[id] {
				c.emit(isa.Instr{Op: isa.LI, Rd: fx.pinned[id], Imm: 0,
					Region: -1, Comment: "zero pinned " + f.Locals[id].Name})
			}
		}
	}
	// The prologue falls through to the entry block; emit it first, then
	// the remaining blocks in ID order.
	order := []int{f.Entry}
	for _, b := range f.Blocks {
		if b.ID != f.Entry {
			order = append(order, b.ID)
		}
	}
	for _, bid := range order {
		if fx.excluded[bid] {
			if e, isEntry := fx.asicEntry[bid]; isEntry {
				fx.blockAt[bid] = len(c.code)
				// Rendezvous: deposit the pinned locals in shared memory
				// so the ASIC core sees them, trigger, then re-load what
				// the cluster may have changed (Fig. 2a steps a-d).
				for _, id := range sortedPinned(fx.pinned) {
					c.emit(isa.Instr{Op: isa.ST, Rs1: isa.Zero, Rs2: fx.pinned[id],
						Imm: c.lay.StaticBase[f.Name][id], Region: e.region, Comment: "deposit " + f.Locals[id].Name})
				}
				c.emit(isa.Instr{Op: isa.ASIC, Imm: int32(e.asicID), Region: e.region,
					Comment: fmt.Sprintf("cluster region %d -> ASIC core %d", e.region, e.asicID)})
				for _, id := range sortedPinned(fx.pinned) {
					c.emit(isa.Instr{Op: isa.LD, Rd: fx.pinned[id], Rs1: isa.Zero,
						Imm: c.lay.StaticBase[f.Name][id], Region: e.region, Comment: "readback " + f.Locals[id].Name})
				}
				fx.fixups = append(fx.fixups, blockFixup{at: c.emit(isa.Instr{Op: isa.B, Region: -1}), block: e.exit})
			}
			continue
		}
		fx.blockAt[bid] = len(c.code)
		if err := fx.compileBlock(f.Block(bid)); err != nil {
			return err
		}
	}
	for _, fix := range fx.fixups {
		at, ok := fx.blockAt[fix.block]
		if !ok {
			return fmt.Errorf("codegen: %s: branch to missing block b%d", f.Name, fix.block)
		}
		c.code[fix.at].Target = at
	}
	return nil
}

// innermostRegions maps each block to the deepest region containing it.
func innermostRegions(f *cdfg.Function) []int {
	out := make([]int, len(f.Blocks))
	for i := range out {
		out[i] = -1
	}
	if f.Root == nil {
		return out
	}
	depth := make([]int, len(f.Blocks))
	for i := range depth {
		depth[i] = -1
	}
	f.Root.Walk(func(r *cdfg.Region) {
		d := r.Depth()
		for _, bid := range r.Blocks {
			if d > depth[bid] {
				depth[bid] = d
				out[bid] = r.ID
			}
		}
	})
	return out
}

// regionExit finds the unique block outside the region that control
// reaches from inside it.
func regionExit(f *cdfg.Function, r *cdfg.Region) (int, error) {
	inside := make(map[int]bool, len(r.Blocks))
	for _, bid := range r.Blocks {
		inside[bid] = true
	}
	exit := -1
	for _, bid := range r.Blocks {
		for _, s := range f.Block(bid).Succs() {
			if inside[s] {
				continue
			}
			if exit != -1 && exit != s {
				return 0, fmt.Errorf("codegen: region %s has multiple exits (b%d, b%d)", r.Label, exit, s)
			}
			exit = s
		}
		if t := f.Block(bid).Terminator(); t != nil && t.Code == cdfg.Ret {
			return 0, fmt.Errorf("codegen: region %s contains a return", r.Label)
		}
	}
	if exit == -1 {
		return 0, fmt.Errorf("codegen: region %s has no exit", r.Label)
	}
	return exit, nil
}

// --- per-block register allocation -----------------------------------

type slotKey struct {
	global bool
	id     int
}

// regState is the block-local allocator.
type regState struct {
	fx      *fnCtx
	region  int // region tag for emitted instructions
	slotOf  [isa.NumRegs]slotKey
	hasSlot [isa.NumRegs]bool
	dirty   [isa.NumRegs]bool
	pinned  [isa.NumRegs]bool
	lastUse [isa.NumRegs]int
	inReg   map[slotKey]int
	tick    int
}

func newRegState(fx *fnCtx, region int) *regState {
	return &regState{fx: fx, region: region, inReg: make(map[slotKey]int)}
}

func (rs *regState) emit(i isa.Instr) {
	i.Region = rs.region
	rs.fx.c.emit(i)
}

// homeAddr returns (base register, offset) of a slot's memory home.
func (rs *regState) homeAddr(k slotKey) (int, int32) {
	fx := rs.fx
	if k.global {
		return isa.Zero, fx.c.lay.GlobalAddr[k.id]
	}
	if fx.recursive {
		return isa.SP, fx.c.lay.FrameOff[fx.fn.Name][k.id]
	}
	return isa.Zero, fx.c.lay.StaticBase[fx.fn.Name][k.id]
}

// arrBase returns (base register, offset) of an array's first element.
func (rs *regState) arrBase(a cdfg.ArrRef) (int, int32) {
	return rs.homeAddr(slotKey{a.Global, a.ID})
}

func (rs *regState) touch(r int) {
	rs.tick++
	rs.lastUse[r] = rs.tick
}

// alloc finds a free register, evicting the least recently used unpinned
// binding if necessary.
func (rs *regState) alloc() int {
	for r := isa.FirstTemp; r <= isa.LastTemp; r++ {
		if !rs.hasSlot[r] && !rs.pinned[r] {
			rs.touch(r)
			return r
		}
	}
	victim, best := -1, 1<<62
	for r := isa.FirstTemp; r <= isa.LastTemp; r++ {
		if rs.pinned[r] {
			continue
		}
		if rs.lastUse[r] < best {
			best = rs.lastUse[r]
			victim = r
		}
	}
	if victim == -1 {
		panic("codegen: all registers pinned")
	}
	rs.evict(victim)
	rs.touch(victim)
	return victim
}

func (rs *regState) evict(r int) {
	if !rs.hasSlot[r] {
		return
	}
	k := rs.slotOf[r]
	if rs.dirty[r] {
		base, off := rs.homeAddr(k)
		rs.emit(isa.Instr{Op: isa.ST, Rs1: base, Rs2: r, Imm: off})
	}
	delete(rs.inReg, k)
	rs.hasSlot[r] = false
	rs.dirty[r] = false
}

// read returns a register holding the slot's current value.
func (rs *regState) read(k slotKey) int {
	if !k.global {
		if r, ok := rs.fx.pinned[k.id]; ok {
			return r
		}
	}
	if r, ok := rs.inReg[k]; ok {
		rs.touch(r)
		rs.releaseIfDeadTemp(r, k)
		return r
	}
	r := rs.alloc()
	base, off := rs.homeAddr(k)
	rs.emit(isa.Instr{Op: isa.LD, Rd: r, Rs1: base, Imm: off})
	rs.bind(r, k, false)
	rs.releaseIfDeadTemp(r, k)
	return r
}

// releaseIfDeadTemp drops the binding of a single-use temporary the moment
// it is read: its value lives on in the register until the consuming
// instruction is emitted (callers pin across allocations), and it must
// never be written back to memory.
func (rs *regState) releaseIfDeadTemp(r int, k slotKey) {
	if k.global {
		return
	}
	l := &rs.fx.fn.Locals[k.id]
	if !l.Temp || rs.fx.tempUses[k.id] != 1 {
		return
	}
	delete(rs.inReg, k)
	rs.hasSlot[r] = false
	rs.dirty[r] = false
}

// writeReg returns a register to hold a new value of the slot (no load).
func (rs *regState) writeReg(k slotKey) int {
	if !k.global {
		if r, ok := rs.fx.pinned[k.id]; ok {
			return r
		}
	}
	if r, ok := rs.inReg[k]; ok {
		rs.touch(r)
		rs.dirty[r] = true
		return r
	}
	r := rs.alloc()
	rs.bind(r, k, true)
	return r
}

func (rs *regState) bind(r int, k slotKey, dirty bool) {
	rs.slotOf[r] = k
	rs.hasSlot[r] = true
	rs.dirty[r] = dirty
	rs.inReg[k] = r
}

// operandReg materializes an operand into a register. Constants get a
// fresh unbound register via LI (zero becomes r0 for free).
func (rs *regState) operandReg(o cdfg.Operand) int {
	if o.IsConst {
		if o.K == 0 {
			return isa.Zero
		}
		r := rs.alloc()
		rs.emit(isa.Instr{Op: isa.LI, Rd: r, Imm: o.K})
		return r
	}
	return rs.read(slotKey{o.Ref.Global, o.Ref.ID})
}

// flush writes all dirty registers back to memory (deterministic order)
// and drops every binding. Used at block ends and around calls.
func (rs *regState) flush() {
	var regs []int
	for r := isa.FirstTemp; r <= isa.LastTemp; r++ {
		if rs.hasSlot[r] {
			regs = append(regs, r)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		a, b := rs.slotOf[regs[i]], rs.slotOf[regs[j]]
		if a.global != b.global {
			return a.global
		}
		return a.id < b.id
	})
	for _, r := range regs {
		rs.evict(r)
	}
}

func (rs *regState) pin(r int)   { rs.pinned[r] = true }
func (rs *regState) unpin(r int) { rs.pinned[r] = false }

// --- block compilation -------------------------------------------------

var opToISA = map[cdfg.Opcode]isa.Opcode{
	cdfg.Add: isa.ADD, cdfg.Sub: isa.SUB, cdfg.Mul: isa.MUL,
	cdfg.Div: isa.DIV, cdfg.Rem: isa.REM,
	cdfg.And: isa.AND, cdfg.Or: isa.OR, cdfg.Xor: isa.XOR,
	cdfg.Shl: isa.SLL, cdfg.Shr: isa.SRA,
	cdfg.Eq: isa.CMPEQ, cdfg.Ne: isa.CMPNE, cdfg.Lt: isa.CMPLT,
	cdfg.Le: isa.CMPLE, cdfg.Gt: isa.CMPGT, cdfg.Ge: isa.CMPGE,
}

func (fx *fnCtx) compileBlock(b *cdfg.Block) error {
	rs := newRegState(fx, fx.regionOf[b.ID])
	for i := range b.Ops {
		op := &b.Ops[i]
		if err := fx.compileOp(rs, op); err != nil {
			return err
		}
	}
	return nil
}

func (fx *fnCtx) compileOp(rs *regState, op *cdfg.Op) error {
	c := fx.c
	dstKey := func() slotKey { return slotKey{op.Dst.Global, op.Dst.ID} }
	switch {
	case op.Code == cdfg.Nop:
		return nil

	case op.Code == cdfg.ConstOp:
		rd := rs.writeReg(dstKey())
		rs.emit(isa.Instr{Op: isa.LI, Rd: rd, Imm: op.Imm})
		return nil

	case op.Code == cdfg.Copy:
		ra := rs.operandReg(op.A)
		rs.pin(ra)
		rd := rs.writeReg(dstKey())
		rs.unpin(ra)
		if rd != ra {
			rs.emit(isa.Instr{Op: isa.MOV, Rd: rd, Rs1: ra})
		}
		return nil

	case op.Code == cdfg.LAnd || op.Code == cdfg.LOr:
		// Strict boolean ops: (a != 0) op (b != 0).
		ra := rs.operandReg(op.A)
		rs.pin(ra)
		rb := rs.operandReg(op.B)
		rs.pin(rb)
		na := rs.alloc()
		rs.pin(na)
		rs.emit(isa.Instr{Op: isa.CMPNE, Rd: na, Rs1: ra, Imm: 0, UseImm: true})
		nb := rs.alloc()
		rs.emit(isa.Instr{Op: isa.CMPNE, Rd: nb, Rs1: rb, Imm: 0, UseImm: true})
		rs.unpin(na)
		rs.unpin(ra)
		rs.unpin(rb)
		rs.pin(na)
		rs.pin(nb)
		rd := rs.writeReg(dstKey())
		rs.unpin(na)
		rs.unpin(nb)
		code := isa.AND
		if op.Code == cdfg.LOr {
			code = isa.OR
		}
		rs.emit(isa.Instr{Op: code, Rd: rd, Rs1: na, Rs2: nb})
		return nil

	case op.Code.IsBinary():
		ra := rs.operandReg(op.A)
		rs.pin(ra)
		if op.B.IsConst {
			rd := rs.writeReg(dstKey())
			rs.unpin(ra)
			rs.emit(isa.Instr{Op: opToISA[op.Code], Rd: rd, Rs1: ra, Imm: op.B.K, UseImm: true})
			return nil
		}
		rb := rs.operandReg(op.B)
		rs.pin(rb)
		rd := rs.writeReg(dstKey())
		rs.unpin(ra)
		rs.unpin(rb)
		rs.emit(isa.Instr{Op: opToISA[op.Code], Rd: rd, Rs1: ra, Rs2: rb})
		return nil

	case op.Code == cdfg.Neg || op.Code == cdfg.Not:
		ra := rs.operandReg(op.A)
		rs.pin(ra)
		rd := rs.writeReg(dstKey())
		rs.unpin(ra)
		code := isa.NEG
		if op.Code == cdfg.Not {
			code = isa.NOT
		}
		rs.emit(isa.Instr{Op: code, Rd: rd, Rs1: ra})
		return nil

	case op.Code == cdfg.LNot:
		ra := rs.operandReg(op.A)
		rs.pin(ra)
		rd := rs.writeReg(dstKey())
		rs.unpin(ra)
		rs.emit(isa.Instr{Op: isa.CMPEQ, Rd: rd, Rs1: ra, Imm: 0, UseImm: true})
		return nil

	case op.Code == cdfg.Load:
		base, off := rs.arrBase(op.Arr)
		if op.A.IsConst {
			rd := rs.writeReg(dstKey())
			rs.emit(isa.Instr{Op: isa.LD, Rd: rd, Rs1: base, Imm: off + op.A.K})
			return nil
		}
		ri := rs.operandReg(op.A)
		rs.pin(ri)
		addr := ri
		if base != isa.Zero {
			// Stack-resident array: address = base + index, element
			// offset folded into the LD displacement.
			rs.emit(isa.Instr{Op: isa.ADD, Rd: isa.AT, Rs1: base, Rs2: ri})
			addr = isa.AT
		}
		rd := rs.writeReg(dstKey())
		rs.unpin(ri)
		rs.emit(isa.Instr{Op: isa.LD, Rd: rd, Rs1: addr, Imm: off})
		return nil

	case op.Code == cdfg.Store:
		base, off := rs.arrBase(op.Arr)
		rv := rs.operandReg(op.B)
		rs.pin(rv)
		if op.A.IsConst {
			rs.unpin(rv)
			rs.emit(isa.Instr{Op: isa.ST, Rs1: base, Rs2: rv, Imm: off + op.A.K})
			return nil
		}
		ri := rs.operandReg(op.A)
		rs.unpin(rv)
		addr := ri
		if base != isa.Zero {
			rs.emit(isa.Instr{Op: isa.ADD, Rd: isa.AT, Rs1: base, Rs2: ri})
			addr = isa.AT
		}
		rs.emit(isa.Instr{Op: isa.ST, Rs1: addr, Rs2: rv, Imm: off})
		return nil

	case op.Code == cdfg.Call:
		if len(op.Args) > isa.MaxArgs {
			return fmt.Errorf("codegen: call to %s has %d args, max %d", op.Callee, len(op.Args), isa.MaxArgs)
		}
		// Write everything back; the callee owns all temporaries.
		rs.flush()
		for i, a := range op.Args {
			switch {
			case a.IsConst:
				rs.emit(isa.Instr{Op: isa.LI, Rd: isa.A0 + i, Imm: a.K})
			default:
				k := slotKey{a.Ref.Global, a.Ref.ID}
				base, off := rs.homeAddr(k)
				rs.emit(isa.Instr{Op: isa.LD, Rd: isa.A0 + i, Rs1: base, Imm: off})
			}
		}
		at := c.emit(isa.Instr{Op: isa.CALL, Region: rs.region, Comment: "call " + op.Callee})
		c.calls = append(c.calls, pendingCall{at: at, callee: op.Callee})
		if op.Dst.Valid() {
			rd := rs.writeReg(dstKey())
			rs.emit(isa.Instr{Op: isa.MOV, Rd: rd, Rs1: isa.RV})
		}
		return nil

	case op.Code == cdfg.Ret:
		if op.A.Valid() {
			if op.A.IsConst {
				rs.emit(isa.Instr{Op: isa.LI, Rd: isa.RV, Imm: op.A.K})
			} else {
				ra := rs.operandReg(op.A)
				if ra != isa.RV {
					rs.emit(isa.Instr{Op: isa.MOV, Rd: isa.RV, Rs1: ra})
				}
			}
		}
		rs.flush()
		if fx.recursive {
			rs.emit(isa.Instr{Op: isa.LD, Rd: isa.RA, Rs1: isa.SP, Imm: 0, Comment: "restore ra"})
			rs.emit(isa.Instr{Op: isa.ADD, Rd: isa.SP, Rs1: isa.SP,
				Imm: c.lay.FrameSize[fx.fn.Name], UseImm: true})
		} else {
			rs.emit(isa.Instr{Op: isa.LD, Rd: isa.RA, Rs1: isa.Zero,
				Imm: c.lay.raAddr(fx.fn.Name), Comment: "restore ra"})
		}
		rs.emit(isa.Instr{Op: isa.JR, Rs1: isa.RA})
		return nil

	case op.Code == cdfg.Br:
		rs.flush()
		at := c.emit(isa.Instr{Op: isa.B, Region: rs.region})
		fx.fixups = append(fx.fixups, blockFixup{at: at, block: op.Target})
		return nil

	case op.Code == cdfg.CBr:
		rc := rs.operandReg(op.A)
		rs.pin(rc)
		rs.flush()
		rs.unpin(rc)
		at := c.emit(isa.Instr{Op: isa.BNEZ, Rs1: rc, Region: rs.region})
		fx.fixups = append(fx.fixups, blockFixup{at: at, block: op.Then})
		at = c.emit(isa.Instr{Op: isa.B, Region: rs.region})
		fx.fixups = append(fx.fixups, blockFixup{at: at, block: op.Else})
		return nil

	default:
		return fmt.Errorf("codegen: unimplemented opcode %v", op.Code)
	}
}
