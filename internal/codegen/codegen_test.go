package codegen

import (
	"fmt"
	"math/rand"
	"testing"

	"lppart/internal/behav"
	"lppart/internal/cdfg"
	"lppart/internal/interp"
	"lppart/internal/isa"
	"lppart/internal/iss"
)

// compileAndRun compiles src and executes it on the ISS with ideal memory.
func compileAndRun(t *testing.T, src string) (*cdfg.Program, *Layout, *iss.Result) {
	t.Helper()
	prog, err := behav.Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ir, err := cdfg.Build(prog)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	mp, lay, err := Compile(ir, Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := iss.Run(mp, iss.Options{})
	if err != nil {
		t.Fatalf("iss: %v\n%s", err, mp.Listing())
	}
	return ir, lay, res
}

// differential runs src on both the interpreter and the ISS and compares
// the return value and every global.
func differential(t *testing.T, src string) {
	t.Helper()
	prog, err := behav.Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ir, err := cdfg.Build(prog)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want, err := interp.Run(ir, interp.Options{})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	mp, lay, err := Compile(ir, Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	got, err := iss.Run(mp, iss.Options{})
	if err != nil {
		t.Fatalf("iss: %v\n%s", err, mp.Listing())
	}
	if got.RV != want.Ret {
		t.Errorf("return value: iss=%d interp=%d\n%s", got.RV, want.Ret, mp.Listing())
	}
	for gi, g := range ir.Globals {
		addr, words, ok := lay.VarAddr(ir, "", true, gi)
		if !ok {
			t.Fatalf("global %s has no address", g.Name)
		}
		wantVals := want.Globals[g.Name]
		for w := int32(0); w < words; w++ {
			if got.Mem[addr+w] != wantVals[w] {
				t.Errorf("global %s[%d]: iss=%d interp=%d", g.Name, w, got.Mem[addr+w], wantVals[w])
			}
		}
	}
}

func TestDifferentialBasics(t *testing.T) {
	cases := map[string]string{
		"return":     "func main() { return 7 * 6; }",
		"arithmetic": "var g; func main() { var a; var b; a=13; b=5; g = a*b + a/b - a%b + (a<<2) + (a>>1) + (a&b) + (a|b) + (a^b); return g; }",
		"unary":      "var g; func main() { var x; x = 9; g = -x + ~x; return !x + !0; }",
		"compare":    "func main() { var a; a = 4; return (a<5) + (a<=4)*10 + (a>3)*100 + (a>=5)*1000 + (a==4)*2 + (a!=4)*3; }",
		"logic":      "func main() { var a; var b; a = 3; b = 0; return (a && b) + (a || b)*10 + (b && b)*100 + (1 && 2)*7; }",
		"if-else":    "var g; func main() { var x; x = 10; if x > 5 { g = 1; } else { g = 2; } if x < 5 { g = g + 10; } return g; }",
		"loop":       "func main() { var i; var s; for i = 0; i < 50; i = i + 1 { s = s + i*i; } return s; }",
		"while":      "func main() { var n; var c; n = 270; while n > 1 { if n % 2 { n = 3*n+1; } else { n = n/2; } c = c + 1; } return c; }",
		"nested":     "var m[64]; func main() { var i; var j; for i=0;i<8;i=i+1 { for j=0;j<8;j=j+1 { m[i*8+j] = i*j; } } return m[63]; }",
		"globals":    "var a[10]; var sum; func main() { var i; for i=0;i<10;i=i+1 { a[i] = i*3+1; } for i=0;i<10;i=i+1 { sum = sum + a[i]; } return sum; }",
		"localarr":   "func main() { var buf[6]; var i; var s; for i=0;i<6;i=i+1 { buf[i] = i ^ 5; } for i=0;i<6;i=i+1 { s = s + buf[i]; } return s; }",
		"constidx":   "var a[4]; func main() { a[0]=1; a[1]=a[0]*2; a[2]=a[1]*2; a[3]=a[2]*2; return a[3]; }",
		"negidx":     "var a[8]; func main() { var i; for i=7;i>=0;i=i-1 { a[i] = i; } return a[0] + a[7]; }",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { differential(t, src) })
	}
}

func TestDifferentialCalls(t *testing.T) {
	cases := map[string]string{
		"simple":    "func add(a, b) { return a + b; } func main() { return add(3, add(4, 5)); }",
		"void":      "var g; func bump() { g = g + 1; } func main() { bump(); bump(); bump(); return g; }",
		"sixargs":   "func f(a,b,c,d,e,f6) { return a+b*2+c*3+d*4+e*5+f6*6; } func main() { return f(1,2,3,4,5,6); }",
		"recursion": "func fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } func main() { return fib(12); }",
		"mutual":    "func even(n) { if n == 0 { return 1; } return odd(n-1); } func odd(n) { if n == 0 { return 0; } return even(n-1); } func main() { return even(10) + odd(7)*10; }",
		"recarr":    "func sumto(n) { var tmp[3]; tmp[0] = n; if n <= 0 { return 0; } tmp[1] = sumto(n-1); return tmp[0] + tmp[1]; } func main() { return sumto(10); }",
		"chain":     "func a(x) { return x+1; } func b(x) { return a(x)*2; } func c(x) { return b(x)+a(x); } func main() { return c(5); }",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { differential(t, src) })
	}
}

func TestDifferentialDSPKernels(t *testing.T) {
	cases := map[string]string{
		"dot": `
var x[32]; var y[32]; var dot;
func main() {
	var i;
	for i = 0; i < 32; i = i + 1 { x[i] = i - 16; y[i] = 3 - i; }
	dot = 0;
	for i = 0; i < 32; i = i + 1 { dot = dot + x[i] * y[i]; }
	return dot;
}`,
		"fir": `
var in[40]; var out[40]; var coef[4];
func main() {
	var i; var k; var acc;
	coef[0]=1; coef[1]=3; coef[2]=3; coef[3]=1;
	for i = 0; i < 40; i = i + 1 { in[i] = (i * 37) % 19 - 9; }
	for i = 3; i < 40; i = i + 1 {
		acc = 0;
		for k = 0; k < 4; k = k + 1 {
			acc = acc + coef[k] * in[i-k];
		}
		out[i] = acc >> 2;
	}
	return out[39];
}`,
		"minmax": `
var v[25]; var mn; var mx;
func main() {
	var i;
	for i = 0; i < 25; i = i + 1 { v[i] = ((i*53) % 31) - 15; }
	mn = v[0]; mx = v[0];
	for i = 1; i < 25; i = i + 1 {
		if v[i] < mn { mn = v[i]; }
		if v[i] > mx { mx = v[i]; }
	}
	return mx - mn;
}`,
		"sat": `
var s[16];
func clip(v, lo, hi) {
	if v < lo { return lo; }
	if v > hi { return hi; }
	return v;
}
func main() {
	var i; var sum;
	for i = 0; i < 16; i = i + 1 { s[i] = clip(i*7-50, -20, 20); sum = sum + s[i]; }
	return sum;
}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { differential(t, src) })
	}
}

// TestDifferentialRandom cross-checks interpreter and ISS on generated
// straight-line-plus-loop programs over safe operators.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	ops := []string{"+", "-", "*", "&", "|", "^"}
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				return fmt.Sprintf("%d", rng.Intn(2000)-1000)
			case 1:
				return fmt.Sprintf("g%d", rng.Intn(4))
			default:
				return fmt.Sprintf("(v >> %d)", rng.Intn(8))
			}
		}
		op := ops[rng.Intn(len(ops))]
		return "(" + expr(depth-1) + " " + op + " " + expr(depth-1) + ")"
	}
	for trial := 0; trial < 25; trial++ {
		src := "var g0; var g1; var g2; var g3;\nfunc main() {\n\tvar v; var i;\n\tv = 7;\n"
		for s := 0; s < 6; s++ {
			src += fmt.Sprintf("\tg%d = %s;\n", rng.Intn(4), expr(3))
		}
		src += fmt.Sprintf("\tfor i = 0; i < %d; i = i + 1 {\n", 3+rng.Intn(10))
		src += fmt.Sprintf("\t\tv = v + %s;\n", expr(2))
		src += fmt.Sprintf("\t\tg%d = g%d ^ v;\n\t}\n", rng.Intn(4), rng.Intn(4))
		src += "\treturn v;\n}\n"
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) { differential(t, src) })
	}
}

func TestLayoutAddresses(t *testing.T) {
	ir, lay, _ := compileAndRun(t, `
var s1; var arr[10]; var s2;
func helper(p) { var loc[4]; loc[0] = p; return loc[0]; }
func main() { var x; x = helper(3); return x; }
`)
	// Globals laid out in order, no overlap.
	if lay.GlobalAddr[1] != lay.GlobalAddr[0]+1 {
		t.Errorf("arr addr %d, want s1+1", lay.GlobalAddr[1])
	}
	if lay.GlobalAddr[2] != lay.GlobalAddr[1]+10 {
		t.Errorf("s2 addr %d, want arr+10", lay.GlobalAddr[2])
	}
	// Non-recursive function locals get static addresses.
	addr, words, ok := lay.VarAddr(ir, "helper", false, ir.Func("helper").Params[0])
	if !ok || words != 1 || addr == 0 {
		t.Errorf("helper param: addr=%d words=%d ok=%v", addr, words, ok)
	}
	if lay.Recursive["helper"] || lay.Recursive["main"] {
		t.Error("no function here is recursive")
	}
}

func TestLayoutRecursive(t *testing.T) {
	prog := behav.MustParse("t", `
func f(n) { if n <= 0 { return 0; } return n + f(n-1); }
func main() { return f(5); }
`)
	ir := cdfg.MustBuild(prog)
	_, lay, err := Compile(ir, Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if !lay.Recursive["f"] {
		t.Error("f must be marked recursive")
	}
	if lay.Recursive["main"] {
		t.Error("main is not recursive")
	}
	if _, _, ok := lay.VarAddr(ir, "f", false, 0); ok {
		t.Error("recursive locals must have no static home")
	}
	if lay.FrameSize["f"] < 2 {
		t.Errorf("frame size %d, want >= 2 (ra + local)", lay.FrameSize["f"])
	}
}

func TestRegionTagging(t *testing.T) {
	prog := behav.MustParse("t", `
var a[8];
func main() {
	var i;
	for i = 0; i < 8; i = i + 1 { a[i] = i * 2; }
}
`)
	ir := cdfg.MustBuild(prog)
	mp, _, err := Compile(ir, Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	var loop *cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop {
			loop = r
		}
	}
	tagged := 0
	for _, ins := range mp.Code {
		if ins.Region == loop.ID {
			tagged++
		}
	}
	if tagged < 5 {
		t.Errorf("only %d instructions tagged with loop region, want >= 5\n%s", tagged, mp.Listing())
	}
}

func TestExcludedRegionEmitsASIC(t *testing.T) {
	prog := behav.MustParse("t", `
var a[8]; var total;
func main() {
	var i;
	for i = 0; i < 8; i = i + 1 { a[i] = i; }
	for i = 0; i < 8; i = i + 1 { total = total + a[i]; }
}
`)
	ir := cdfg.MustBuild(prog)
	var loops []*cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop {
			loops = append(loops, r)
		}
	}
	mp, _, err := Compile(ir, Options{MemWords: 1 << 16, StackWords: 1 << 12,
		Exclude: map[int]int{loops[1].ID: 0}})
	if err != nil {
		t.Fatal(err)
	}
	asics := 0
	for _, ins := range mp.Code {
		if ins.Op == isa.ASIC {
			asics++
			if ins.Imm != 0 {
				t.Errorf("ASIC id = %d, want 0", ins.Imm)
			}
		}
	}
	if asics != 1 {
		t.Fatalf("found %d ASIC instructions, want 1\n%s", asics, mp.Listing())
	}
	// The excluded loop's adds must be gone: the program shrinks.
	full, _, err := Compile(ir, Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Code) >= len(full.Code) {
		t.Errorf("partitioned program (%d instrs) not smaller than full (%d)", len(mp.Code), len(full.Code))
	}
}

func TestExcludeErrors(t *testing.T) {
	prog := behav.MustParse("t", `
func f(n) { var i; var s; for i = 0; i < n; i = i + 1 { s = s + f(i); } return s + 1; }
func main() { return f(2); }
`)
	ir := cdfg.MustBuild(prog)
	var loop *cdfg.Region
	for _, r := range ir.Regions() {
		if r.Kind == cdfg.RegionLoop {
			loop = r
		}
	}
	_, _, err := Compile(ir, Options{MemWords: 1 << 16, Exclude: map[int]int{loop.ID: 0}})
	if err == nil {
		t.Error("excluding a region of a recursive function must fail")
	}
}

func TestProgramListing(t *testing.T) {
	prog := behav.MustParse("t", "func main() { return 1; }")
	ir := cdfg.MustBuild(prog)
	mp, _, err := Compile(ir, Options{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	listing := mp.Listing()
	if len(listing) == 0 {
		t.Fatal("empty listing")
	}
	for _, want := range []string{"main:", "halt", "li"} {
		found := false
		for i := 0; i+len(want) <= len(listing); i++ {
			if listing[i:i+len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func TestMemoryTooSmall(t *testing.T) {
	prog := behav.MustParse("t", "var huge[100000]; func main() { }")
	ir := cdfg.MustBuild(prog)
	_, _, err := Compile(ir, Options{MemWords: 1 << 12})
	if err == nil {
		t.Error("oversized data segment must fail compilation")
	}
}

func TestInstructionMixVaries(t *testing.T) {
	// A register-heavy kernel and a memory-walking kernel must produce
	// visibly different load/store fractions — the property the paper's
	// per-application energy differences rest on.
	_, _, regHeavy := compileAndRun(t, `
func main() {
	var x; var i;
	x = 1;
	for i = 0; i < 100; i = i + 1 {
		x = ((x * 5) + (x << 3)) ^ (x >> 2);
		x = x + i;
	}
	return x;
}`)
	_, _, memHeavy := compileAndRun(t, `
var a[100]; var b[100];
func main() {
	var i;
	for i = 0; i < 100; i = i + 1 { b[i] = a[i] + 1; }
	return b[99];
}`)
	frac := func(r *iss.Result) float64 {
		var mem, tot int64
		for c, n := range r.PerClass {
			tot += n
			if c == 4 || c == 5 { // load, store
				mem += n
			}
		}
		return float64(mem) / float64(tot)
	}
	fr, fm := frac(regHeavy), frac(memHeavy)
	if fm < fr+0.1 {
		t.Errorf("memory-walking kernel mem fraction %.2f not above register kernel %.2f", fm, fr)
	}
}
