package bus

import (
	"testing"

	"lppart/internal/tech"
	"lppart/internal/units"
)

func TestBusAccounting(t *testing.T) {
	b := New(tech.Default())
	b.Read(10)
	b.Write(3)
	if b.ReadWords != 10 || b.WriteWords != 3 {
		t.Errorf("words %d/%d, want 10/3", b.ReadWords, b.WriteWords)
	}
	want := units.Energy(10)*b.T.EReadWord + units.Energy(3)*b.T.EWriteWord
	if b.Energy() != want {
		t.Errorf("energy %v, want %v", b.Energy(), want)
	}
	b.Reset()
	if b.Energy() != 0 {
		t.Error("reset failed")
	}
}

func TestTransferEnergyDoesNotAccount(t *testing.T) {
	b := New(tech.Default())
	er := b.TransferEnergy(5, false)
	ew := b.TransferEnergy(5, true)
	if er <= 0 || ew <= er {
		t.Errorf("transfer energies read=%v write=%v (write must cost more)", er, ew)
	}
	if b.ReadWords != 0 || b.WriteWords != 0 {
		t.Error("TransferEnergy must not mutate accounting")
	}
}
