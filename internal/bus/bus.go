// Package bus models the shared system bus of the paper's Fig. 2a
// architecture: the µP core, the ASIC core(s), the caches and the main
// memory all exchange words over it, and every transfer costs energy
// (E_bus read/write in Fig. 3 step 5 — "read and write operations imply
// different amounts of energy").
package bus

import (
	"lppart/internal/tech"
	"lppart/internal/units"
)

// Bus is a shared bus with per-word transfer accounting.
type Bus struct {
	T          tech.BusTech
	ReadWords  int64
	WriteWords int64
}

// New returns a bus using the library's bus technology.
func New(lib *tech.Library) *Bus { return &Bus{T: lib.Bus} }

// Read accounts n words read over the bus.
func (b *Bus) Read(words int) { b.ReadWords += int64(words) }

// Write accounts n words written over the bus.
func (b *Bus) Write(words int) { b.WriteWords += int64(words) }

// Energy returns the total transfer energy so far.
func (b *Bus) Energy() units.Energy {
	return units.Energy(float64(b.ReadWords))*b.T.EReadWord +
		units.Energy(float64(b.WriteWords))*b.T.EWriteWord
}

// TransferEnergy returns the energy of moving n words one way without
// accounting it — the estimator used by the pre-selection algorithm
// (Fig. 3) before any partition exists.
func (b *Bus) TransferEnergy(words int, write bool) units.Energy {
	if write {
		return units.Energy(float64(words)) * b.T.EWriteWord
	}
	return units.Energy(float64(words)) * b.T.EReadWord
}

// Reset clears the accounting.
func (b *Bus) Reset() { b.ReadWords, b.WriteWords = 0, 0 }
