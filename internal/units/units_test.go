package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEnergyString(t *testing.T) {
	cases := []struct {
		e    Energy
		want string
	}{
		{0, "0.0"},
		{1.5 * Joule, "1.5 J"},
		{2.5 * MilliJoule, "2.5 mJ"},
		{116.93 * MicroJoule, "116.9 uJ"},
		{3 * NanoJoule, "3 nJ"},
		{7 * PicoJoule, "7 pJ"},
		{-4.11 * MilliJoule, "-4.11 mJ"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("Energy(%g).String() = %q, want %q", float64(c.e), got, c.want)
		}
	}
}

func TestPowerString(t *testing.T) {
	cases := []struct {
		p    Power
		want string
	}{
		{0, "0.0"},
		{2 * Watt, "2 W"},
		{350 * MilliWatt, "350 mW"},
		{42 * MicroWatt, "42 uW"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Power(%g).String() = %q, want %q", float64(c.p), got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		d    Time
		want string
	}{
		{0, "0.0"},
		{2 * Second, "2 s"},
		{3 * MilliSecond, "3 ms"},
		{40 * MicroSecond, "40 us"},
		{25 * NanoSecond, "25 ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Time(%g).String() = %q, want %q", float64(c.d), got, c.want)
		}
	}
}

func TestEnergyOf(t *testing.T) {
	// 100 mW for 10 ms is 1 mJ.
	got := EnergyOf(100*MilliWatt, 10*MilliSecond)
	if math.Abs(float64(got-1*MilliJoule)) > 1e-15 {
		t.Errorf("EnergyOf = %v, want 1 mJ", got)
	}
}

func TestCyclesString(t *testing.T) {
	cases := []struct {
		c    Cycles
		want string
	}{
		{0, "0"},
		{154, "154"},
		{39712, "39,712"},
		{5167958, "5,167,958"},
		{169511665, "169,511,665"},
		{-2500, "-2,500"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("Cycles(%d).String() = %q, want %q", int64(c.c), got, c.want)
		}
	}
}

func TestCyclesDuration(t *testing.T) {
	// 1000 cycles at 25 ns is 25 µs.
	got := Cycles(1000).Duration(25 * NanoSecond)
	if math.Abs(float64(got-25*MicroSecond)) > 1e-18 {
		t.Errorf("Duration = %v, want 25 us", got)
	}
}

func TestPercentChange(t *testing.T) {
	cases := []struct {
		before, after, want float64
	}{
		{100, 65, -35},
		{100, 100, 0},
		{200, 300, 50},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := PercentChange(c.before, c.after); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PercentChange(%g,%g) = %g, want %g", c.before, c.after, got, c.want)
		}
	}
	if !math.IsInf(PercentChange(0, 5), 1) {
		t.Error("PercentChange(0, 5) should be +Inf")
	}
}

// Property: EnergyOf is bilinear — scaling power or time scales energy.
func TestEnergyOfBilinearProperty(t *testing.T) {
	f := func(p, d float64, k uint8) bool {
		p = math.Mod(math.Abs(p), 1e3)
		d = math.Mod(math.Abs(d), 1e3)
		scale := float64(k%7) + 1
		a := EnergyOf(Power(p*scale), Time(d))
		b := EnergyOf(Power(p), Time(d*scale))
		c := Energy(scale) * EnergyOf(Power(p), Time(d))
		return math.Abs(float64(a-c)) <= 1e-9*math.Abs(float64(c))+1e-30 &&
			math.Abs(float64(b-c)) <= 1e-9*math.Abs(float64(c))+1e-30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cycles.String round-trips digits (stripping separators yields
// the plain decimal rendering).
func TestCyclesStringProperty(t *testing.T) {
	f := func(n int64) bool {
		s := Cycles(n).String()
		var stripped []byte
		for i := 0; i < len(s); i++ {
			if s[i] != ',' {
				stripped = append(stripped, s[i])
			}
		}
		var back int64
		neg := false
		b := stripped
		if len(b) > 0 && b[0] == '-' {
			neg = true
			b = b[1:]
		}
		for _, d := range b {
			back = back*10 + int64(d-'0')
		}
		if neg {
			back = -back
		}
		return back == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
