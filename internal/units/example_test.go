package units_test

import (
	"fmt"

	"lppart/internal/units"
)

// ExampleEnergy_String shows the Table 1 style scaling.
func ExampleEnergy_String() {
	fmt.Println(116.93 * units.MicroJoule)
	fmt.Println(4.11 * units.MilliJoule)
	fmt.Println(units.EnergyOf(15*units.MilliWatt, 22*units.NanoSecond))
	// Output:
	// 116.9 uJ
	// 4.11 mJ
	// 330 pJ
}

// ExampleCycles_String shows the grouped cycle formatting Table 1 uses.
func ExampleCycles_String() {
	fmt.Println(units.Cycles(5167958))
	fmt.Println(units.Cycles(154))
	// Output:
	// 5,167,958
	// 154
}
