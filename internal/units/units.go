// Package units provides the physical quantities used throughout the
// low-power partitioning framework: energy, power and time, plus the
// cycle-count bookkeeping that the paper's Table 1 reports.
//
// All quantities are plain float64 wrappers in SI base units (joules,
// watts, seconds) so arithmetic stays ordinary; the types exist for
// documentation, for pretty-printing in the units the paper uses
// (µJ, mJ, ns, MHz) and to keep call sites honest about what a number
// means.
package units

import (
	"fmt"
	"math"
)

// Energy is an amount of energy in joules.
type Energy float64

// Common energy scales.
const (
	Joule      Energy = 1
	MilliJoule Energy = 1e-3
	MicroJoule Energy = 1e-6
	NanoJoule  Energy = 1e-9
	PicoJoule  Energy = 1e-12
)

// String renders the energy in the most natural scale, matching the
// paper's habit of quoting µJ and mJ values.
func (e Energy) String() string {
	abs := math.Abs(float64(e))
	switch {
	case abs == 0:
		return "0.0"
	case abs >= 1:
		return fmt.Sprintf("%.4g J", float64(e))
	case abs >= 1e-3:
		return fmt.Sprintf("%.4g mJ", float64(e)/1e-3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.4g uJ", float64(e)/1e-6)
	case abs >= 1e-9:
		return fmt.Sprintf("%.4g nJ", float64(e)/1e-9)
	default:
		return fmt.Sprintf("%.4g pJ", float64(e)/1e-12)
	}
}

// Micro returns the energy expressed in microjoules.
func (e Energy) Micro() float64 { return float64(e) / 1e-6 }

// Milli returns the energy expressed in millijoules.
func (e Energy) Milli() float64 { return float64(e) / 1e-3 }

// Power is a power in watts.
type Power float64

// Common power scales.
const (
	Watt      Power = 1
	MilliWatt Power = 1e-3
	MicroWatt Power = 1e-6
)

// String renders the power in a natural scale.
func (p Power) String() string {
	abs := math.Abs(float64(p))
	switch {
	case abs == 0:
		return "0.0"
	case abs >= 1:
		return fmt.Sprintf("%.4g W", float64(p))
	case abs >= 1e-3:
		return fmt.Sprintf("%.4g mW", float64(p)/1e-3)
	default:
		return fmt.Sprintf("%.4g uW", float64(p)/1e-6)
	}
}

// Time is a duration in seconds. The framework does not use time.Duration
// because sub-nanosecond resolution (gate delays in a 0.8µ process) and
// fractional cycle times matter.
type Time float64

// Common time scales.
const (
	Second      Time = 1
	MilliSecond Time = 1e-3
	MicroSecond Time = 1e-6
	NanoSecond  Time = 1e-9
)

// String renders the time in a natural scale.
func (t Time) String() string {
	abs := math.Abs(float64(t))
	switch {
	case abs == 0:
		return "0.0"
	case abs >= 1:
		return fmt.Sprintf("%.4g s", float64(t))
	case abs >= 1e-3:
		return fmt.Sprintf("%.4g ms", float64(t)/1e-3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.4g us", float64(t)/1e-6)
	default:
		return fmt.Sprintf("%.4g ns", float64(t)/1e-9)
	}
}

// EnergyOf returns the energy dissipated by drawing power p for duration t.
func EnergyOf(p Power, t Time) Energy { return Energy(float64(p) * float64(t)) }

// Cycles counts clock cycles; Table 1's execution-time columns are cycle
// counts, so they get a dedicated type with grouped formatting.
type Cycles int64

// String formats the count with thousands separators, as in the paper's
// Table 1 ("5,167,958").
func (c Cycles) String() string {
	n := int64(c)
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	var out []byte
	for i, d := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, d)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}

// Duration converts a cycle count at the given clock period into seconds.
func (c Cycles) Duration(period Time) Time { return Time(float64(c) * float64(period)) }

// PercentChange returns 100*(after-before)/before, the convention used by
// Table 1's "Sav%" and "Chg%" columns (negative = reduction/improvement).
func PercentChange(before, after float64) float64 {
	if before == 0 {
		if after == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (after - before) / before
}
