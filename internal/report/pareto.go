package report

import (
	"fmt"
	"strings"

	"lppart/internal/cache"
	"lppart/internal/dse"
	"lppart/internal/units"
)

// geomCell formats one cache geometry as sets x assoc x line-words.
func geomCell(c cache.Config) string {
	return fmt.Sprintf("%dx%dx%dw", c.Sets, c.Assoc, c.LineWords)
}

// pickCell formats a point's hardware picks ("label@set+label@set"), or
// the all-software marker.
func pickCell(p dse.Point) string {
	if len(p.Clusters) == 0 {
		return "(all software)"
	}
	parts := make([]string, 0, len(p.Clusters))
	for _, c := range p.Clusters {
		parts = append(parts, c.Label+"@"+c.Set)
	}
	return strings.Join(parts, "+")
}

// Pareto renders a design-space frontier: one row per non-dominated
// point with its cache geometry, objectives, ratios against the point's
// own all-software baseline, and the clusters moved to hardware. Only
// worker-count-independent counters are printed, so the rendering is
// byte-identical at any -j.
func Pareto(f *dse.Frontier) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pareto frontier: %s — %d points (%d configurations evaluated, %d subtrees pruned, %d geometries)\n\n",
		f.App, len(f.Points), f.Stats.Configs, f.Stats.Pruned, f.Stats.Geometries)
	fmt.Fprintf(&sb, "%-3s %-10s %-10s %12s %14s %8s %7s %7s  %s\n",
		"#", "i-cache", "d-cache", "energy", "cycles", "GEQ", "E/E0", "T/T0", "hardware clusters")
	sb.WriteString(strings.Repeat("-", 110) + "\n")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%-3d %-10s %-10s %12s %14v %8d %7.3f %7.3f  %s\n",
			p.ID, geomCell(p.ICache), geomCell(p.DCache),
			energyCell(p.Energy), units.Cycles(p.Cycles), p.GEQ,
			p.EnergyRatio, p.CycleRatio, pickCell(p))
	}
	return sb.String()
}

// matchPick reports whether a point is exactly the greedy Fig. 1 choice:
// the single (label, set) cluster, or all-software when label is empty.
func matchPick(p dse.Point, label, set string) bool {
	if label == "" {
		return len(p.Clusters) == 0
	}
	return len(p.Clusters) == 1 && p.Clusters[0].Label == label && p.Clusters[0].Set == set
}

// OnFrontier locates the greedy Fig. 1 choice — cluster label and
// resource set on the reference geometry — among the frontier points.
// It returns the matching point's ID, or -1 when the greedy pick was
// dominated away (i.e. the Table 1 point does NOT lie on the frontier).
// An empty label asks for the all-software point.
func OnFrontier(f *dse.Frontier, label, set string) int {
	ref := [2]cache.Config{cache.DefaultICache(), cache.DefaultDCache()}
	ref[1].WriteBack = true
	for _, p := range f.Points {
		if p.ICache == ref[0] && p.DCache == ref[1] && matchPick(p, label, set) {
			return p.ID
		}
	}
	return -1
}

// FindPick locates the greedy choice on ANY explored geometry — the
// paper's §1 scenario where the Table 1 partition survives only once the
// caches are adapted to it. Returns the point's ID or -1.
func FindPick(f *dse.Frontier, label, set string) int {
	for _, p := range f.Points {
		if matchPick(p, label, set) {
			return p.ID
		}
	}
	return -1
}
