package report

import (
	"strings"
	"testing"

	"lppart/internal/behav"
	"lppart/internal/system"
)

func evalMini(t *testing.T) *system.Evaluation {
	t.Helper()
	src := behav.MustParse("mini", `
var a[128]; var out[128]; var total;
func main() {
	var i; var v;
	for i = 0; i < 128; i = i + 1 { a[i] = (i * 37) & 255; }
	for i = 0; i < 128; i = i + 1 {
		v = a[i];
		out[i] = (v * v + (v << 3) - (v >> 1)) & 65535;
	}
	for i = 0; i < 128; i = i + 1 { total = total + out[i]; }
}
`)
	ev, err := system.Evaluate(src, system.Config{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestTable1Rendering(t *testing.T) {
	ev := evalMini(t)
	out := Table1([]*system.Evaluation{ev})
	for _, want := range []string{"i-cache", "d-cache", "uP core", "ASIC core", "Sav%", "Chg%", "mini"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
	// Two rows per app: I and P (or a no-partition note).
	if !strings.Contains(out, " I ") {
		t.Error("missing initial row")
	}
	if !strings.Contains(out, " P ") && !strings.Contains(out, "no beneficial") {
		t.Error("missing partitioned row")
	}
}

func TestFig6Rendering(t *testing.T) {
	ev := evalMini(t)
	out := Fig6([]*system.Evaluation{ev})
	if !strings.Contains(out, "energy") || !strings.Contains(out, "time") {
		t.Errorf("Fig6 output malformed:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("Fig6 should draw bars for nonzero percentages")
	}
}

func TestHardwareRendering(t *testing.T) {
	ev := evalMini(t)
	out := Hardware([]*system.Evaluation{ev})
	for _, want := range []string{"datapath", "control", "registers", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Hardware output missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryRendering(t *testing.T) {
	ev := evalMini(t)
	out := Summary([]*system.Evaluation{ev})
	if !strings.Contains(out, "savings") || !strings.Contains(out, "max hardware") {
		t.Errorf("Summary malformed:\n%s", out)
	}
}

func TestNoPartitionRendering(t *testing.T) {
	// A program with nothing worth moving still renders cleanly.
	src := behav.MustParse("tiny", `
var g;
func main() {
	g = 1;
}
`)
	ev, err := system.Evaluate(src, system.Config{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Partitioned != nil {
		t.Skip("unexpectedly partitioned a trivial program")
	}
	out := Table1([]*system.Evaluation{ev})
	if !strings.Contains(out, "no beneficial partition") {
		t.Errorf("missing no-partition note:\n%s", out)
	}
	if Fig6([]*system.Evaluation{ev}) == "" || Hardware([]*system.Evaluation{ev}) == "" {
		t.Error("renderers must handle unpartitioned evaluations")
	}
}
