// Package report renders the paper's experimental artifacts — Table 1 and
// Figure 6 — from system evaluations, in the same layout the paper uses:
// two rows per application (initial "I" and partitioned "P"), per-core
// energy columns and execution-time columns.
package report

import (
	"fmt"
	"strings"

	"lppart/internal/system"
	"lppart/internal/units"
)

// energyCell formats an energy like the paper's Table 1 (µJ/mJ).
func energyCell(e units.Energy) string {
	if e == 0 {
		return "0.0"
	}
	return e.String()
}

// Table1 renders the energy/execution-time table for a set of evaluated
// applications.
func Table1(evals []*system.Evaluation) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-7s %-2s %12s %12s %12s %12s %12s %12s %8s | %14s %14s %14s %8s\n",
		"App", "", "i-cache", "d-cache", "mem", "uP core", "ASIC core", "total", "Sav%",
		"uP core [cyc]", "ASIC [cyc]", "total [cyc]", "Chg%")
	sb.WriteString(strings.Repeat("-", 160) + "\n")
	for _, ev := range evals {
		i := ev.Initial
		fmt.Fprintf(&sb, "%-7s %-2s %12s %12s %12s %12s %12s %12s %8s | %14v %14s %14v %8s\n",
			ev.App, "I",
			energyCell(i.EICache), energyCell(i.EDCache), energyCell(i.EMem+i.EBus),
			energyCell(i.EMuP), "n/a", energyCell(i.Total()),
			fmt.Sprintf("%.2f", ev.Savings()),
			units.Cycles(i.MuPCycles), "n/a", units.Cycles(i.TotalCycles()),
			fmt.Sprintf("%.2f", ev.TimeChange()))
		p := ev.Partitioned
		if p == nil {
			fmt.Fprintf(&sb, "%-7s %-2s %s\n", "", "P", "(no beneficial partition found)")
			continue
		}
		fmt.Fprintf(&sb, "%-7s %-2s %12s %12s %12s %12s %12s %12s %8s | %14v %14v %14v %8s\n",
			"", "P",
			energyCell(p.EICache), energyCell(p.EDCache), energyCell(p.EMem+p.EBus),
			energyCell(p.EMuP), energyCell(p.EASIC), energyCell(p.Total()), "",
			units.Cycles(p.MuPCycles), units.Cycles(p.ASICCycles), units.Cycles(p.TotalCycles()), "")
	}
	return sb.String()
}

// Fig6 renders the paper's Figure 6 as a text bar chart: per application,
// the achieved energy saving and the change of total execution time, in
// percent.
func Fig6(evals []*system.Evaluation) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: energy savings and change of execution time [%]\n\n")
	bar := func(pct float64) string {
		n := int(pct / 2)
		if n < 0 {
			n = -n
		}
		if n > 50 {
			n = 50
		}
		return strings.Repeat("#", n)
	}
	for _, ev := range evals {
		fmt.Fprintf(&sb, "%-7s energy %8.2f%% %s\n", ev.App, ev.Savings(), bar(ev.Savings()))
		fmt.Fprintf(&sb, "%-7s time   %8.2f%% %s\n", "", ev.TimeChange(), bar(ev.TimeChange()))
	}
	return sb.String()
}

// Hardware renders the per-application hardware overhead (the paper's
// "less than 16k cells" claim).
func Hardware(evals []*system.Evaluation) string {
	var sb strings.Builder
	sb.WriteString("ASIC core hardware effort [gate equivalents / cells]\n\n")
	fmt.Fprintf(&sb, "%-7s %10s %10s %10s %10s  %s\n",
		"App", "datapath", "control", "registers", "total", "cluster")
	for _, ev := range evals {
		if ev.Partitioned == nil || ev.Decision.Chosen == nil {
			fmt.Fprintf(&sb, "%-7s %s\n", ev.App, "(none)")
			continue
		}
		b := ev.Decision.Chosen.Binding
		fmt.Fprintf(&sb, "%-7s %10d %10d %10d %10d  %s on %s\n",
			ev.App, b.GEQDatapath, b.GEQController, b.GEQRegisters, b.GEQTotal(),
			ev.Decision.Chosen.Region.Label, ev.Decision.Chosen.RS.Name)
	}
	return sb.String()
}

// Summary renders one-line-per-app results plus the aggregate claims the
// paper makes in the text (35–94% savings, <16k cells).
func Summary(evals []*system.Evaluation) string {
	var sb strings.Builder
	minSav, maxSav, maxGEQ := 0.0, -100.0, 0
	for _, ev := range evals {
		s := ev.Savings()
		fmt.Fprintf(&sb, "%-7s savings %7.2f%%  time %7.2f%%", ev.App, s, ev.TimeChange())
		if ev.Partitioned != nil {
			fmt.Fprintf(&sb, "  hw %5d cells", ev.Partitioned.GEQ)
			if ev.Partitioned.GEQ > maxGEQ {
				maxGEQ = ev.Partitioned.GEQ
			}
		}
		sb.WriteString("\n")
		if s < minSav {
			minSav = s
		}
		if s > maxSav {
			maxSav = s
		}
	}
	fmt.Fprintf(&sb, "\nsavings range %.1f%% .. %.1f%%, max hardware %d cells\n",
		minSav, maxSav, maxGEQ)
	return sb.String()
}
