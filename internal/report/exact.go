package report

import (
	"fmt"
	"strings"

	"lppart/internal/milp"
)

// exactPickCell formats an optimum's hardware picks, or the
// all-software marker.
func exactPickCell(picks []milp.Pick) string {
	if len(picks) == 0 {
		return "(all software)"
	}
	parts := make([]string, 0, len(picks))
	for _, p := range picks {
		parts = append(parts, p.Label+"@"+p.Set)
	}
	return strings.Join(parts, "+")
}

// Exact renders one application's exact optima: per explored cache
// geometry, the provably minimal objective next to the Fig. 1 greedy
// round's, the optimality gap between them, and the certified
// configuration. Objectives are normalized per geometry (each against
// its own E_0/T_0), so the OF columns compare within a row only.
func Exact(r *milp.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Exact optima: %s — %d geometries\n\n", r.App, len(r.Optima))
	fmt.Fprintf(&sb, "%-10s %-10s %10s %10s %7s %8s %7s  %s\n",
		"i-cache", "d-cache", "greedy OF", "exact OF", "gap%", "nodes", "proven", "optimal configuration")
	sb.WriteString(strings.Repeat("-", 100) + "\n")
	for _, o := range r.Optima {
		gOF, _, _ := o.Inst.Greedy()
		gap := 0.0
		if gOF != 0 {
			gap = 100 * (gOF - o.OF) / gOF
		}
		fmt.Fprintf(&sb, "%-10s %-10s %10.6f %10.6f %7.3f %8d %7v  %s\n",
			geomCell(o.Geom[0]), geomCell(o.Geom[1]),
			gOF, o.OF, gap, o.Stats.Nodes, o.Stats.Proven, exactPickCell(o.Picks))
	}
	return sb.String()
}

// GapRow is one application's greedy-vs-exact accounting on the
// reference geometry, plus the frontier the exact optima were checked
// against.
type GapRow struct {
	App       string
	GreedyOF  float64 // Fig. 1 greedy objective, reference geometry
	ExactOF   float64 // proven minimum, reference geometry
	Picks     string  // the exact optimum's configuration
	Certified bool    // bound-trail certificate re-checked
	Points    int     // global Pareto frontier size
	Configs   int64   // configurations the hinted search evaluated
	Pruned    int64   // subtrees/options the hinted search cut
	Verdict   string  // where the greedy Table 1 point ended up
}

// Gap renders the per-application optimality-gap table: the Fig. 1
// greedy objective against the certified exact minimum on the reference
// geometry, the milp-hinted Pareto search's counters, and the fate of
// the greedy Table 1 point against the frontier.
func Gap(rows []GapRow) string {
	var sb strings.Builder
	sb.WriteString("Optimality gaps: Fig. 1 greedy vs exact oracle (reference geometry)\n\n")
	fmt.Fprintf(&sb, "%-7s %10s %10s %7s %5s %8s %8s %7s  %-24s %s\n",
		"app", "greedy OF", "exact OF", "gap%", "cert", "points", "configs", "pruned", "exact configuration", "Table 1 point")
	sb.WriteString(strings.Repeat("-", 130) + "\n")
	for _, r := range rows {
		gap := 0.0
		if r.GreedyOF != 0 {
			gap = 100 * (r.GreedyOF - r.ExactOF) / r.GreedyOF
		}
		cert := "no"
		if r.Certified {
			cert = "yes"
		}
		fmt.Fprintf(&sb, "%-7s %10.6f %10.6f %7.3f %5s %8d %8d %7d  %-24s %s\n",
			r.App, r.GreedyOF, r.ExactOF, gap, cert,
			r.Points, r.Configs, r.Pruned, r.Picks, r.Verdict)
	}
	return sb.String()
}
