// Package dse explores the joint hardware/software design space the
// paper's Fig. 1 loop walks only greedily: which clusters move to ASIC
// cores, on which resource sets, combined with which cache geometries
// ("those other cores have to be adapted efficiently (e.g. size of
// memory, size of caches, cache policy etc.) according to the particular
// hw/sw partitioning chosen", §1). Instead of a single minimum-OF
// choice, Explore returns the Pareto frontier over {total energy,
// execution cycles, GEQ hardware effort}.
//
// The search is a deterministic branch-and-bound: per cache geometry, a
// serial depth-first enumeration of cluster subsets (in Fig. 3
// pre-selection rank order, region-overlap exclusion applied) times
// per-cluster resource sets, pruned with an admissible lower bound built
// from the Fig. 3 bus-traffic score — a cluster's energy delta can never
// be better than -(Score + removed-fetches·i-cache access energy),
// because its ASIC estimate always pays at least the Fig. 3 bus
// transfers, and its cycle delta never better than -(its µP cycles).
// Subtrees whose bound is weakly dominated by an already-found point
// cannot contribute to the frontier and are cut.
//
// Determinism is by construction, like everywhere else in this repo:
// geometries fan out on an explore.MapCtx pool and each geometry's
// search is serial, so the frontier is byte-identical at any worker
// count. All geometries share one partition.Evaluator, whose
// schedule/binding memo makes every (cluster, resource set) pair pay the
// expensive Fig. 1 lines 8-10 at most once across the whole exploration;
// the cache geometries themselves are priced from ONE recorded trace via
// the single-pass stack-distance sweep (trace.Sweep), not by
// re-simulating the program per geometry.
package dse

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"lppart/internal/cache"
	"lppart/internal/cdfg"
	"lppart/internal/explore"
	"lppart/internal/memostore"
	"lppart/internal/partition"
	"lppart/internal/system"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// Config parameterizes one exploration.
type Config struct {
	// Sys carries the measurement and partitioning knobs (the same
	// configuration system.Evaluate takes); Sys.ICache/DCache anchor the
	// measured baseline the per-geometry baselines are derived from.
	Sys system.Config
	// Geometries are the (i-cache, d-cache) pairs to explore; nil selects
	// DefaultGeometries(). Data caches are forced to write-back.
	Geometries [][2]cache.Config
	// MaxHW bounds how many clusters one configuration may move to
	// hardware (the N of Eq. 3). 0 means 2.
	MaxHW int
	// Workers bounds the geometry fan-out (<= 0: one per CPU). The
	// frontier is byte-identical at any worker count.
	Workers int
	// DisableBound turns branch-and-bound pruning off (exhaustive
	// enumeration) — the differential-testing oracle for the bound's
	// admissibility and the denominator of the pruning-rate measurements.
	DisableBound bool
	// Hints, when non-nil, supplies the branch-and-bound suffix floors
	// per geometry in place of DefaultHint (e.g. milp.Hints donates exact
	// subproblem optima as tighter floors). A hint must be admissible and
	// deterministic; see BoundHint. HintFor returning nil falls back to
	// the default for that geometry.
	Hints HintSource
	// Store, when non-nil, persists the measurement phase (profile,
	// baseline, geometry sweep) content-addressed by the program
	// fingerprint: a warm run skips the interpreter, the ISS and the
	// sweep entirely and produces a byte-identical frontier. Verify mode
	// bypasses the store — an audit must exercise the full live flow.
	Store *memostore.Store
	// OnProgress, when set, is called after each geometry finishes with
	// (completed, total) counts. It may be called concurrently.
	OnProgress func(done, total int)

	// Roots, when non-nil, restricts the search's FIRST pick to the
	// given pool indices (ascending): the search explores exactly the
	// configurations whose lowest-ranked hardware cluster is one of the
	// roots, plus the empty configuration. This is the cluster shard
	// unit — the union of the root-branch shards of a geometry (any
	// partition of [0, len(pool)) plus the dup-safe empty point) covers
	// the unrestricted search, so Reduce over the union reproduces the
	// whole frontier.
	Roots []int
	// Incumbents seeds the pruning with objective points already known
	// achievable elsewhere in the SAME design space (other shards of a
	// cluster exploration). An incumbent cuts a subtree only when its
	// cycles and GEQ are <= the subtree's integer lower bounds (computed
	// exactly) AND its energy clears the float energy bound by a safety
	// margin that exceeds the bound's rounding drift: every point of
	// such a subtree is then weakly dominated — strictly on energy — by
	// a distinct achievable point, so it can never survive the merged
	// Reduce. The merged frontier is therefore invariant under incumbent
	// timing, which is what lets bound-sharing stay asynchronous without
	// breaking byte-determinism. The margin is what makes this sound:
	// LowerBound's energy is evaluated by a differently-associated float
	// expression than Point()'s, so it can land a few ulp ABOVE an
	// achievable point — a bare <=-with-one-strict-axis rule lets that
	// drift manufacture strictness and prune a subtree containing the
	// incumbent's own configuration (observed: a frontier point lost to
	// a bound 2 ulp above it). With the margin, exact ties and
	// near-ties never prune, so Reduce's Key tie-breaks are preserved.
	Incumbents []Incumbent
}

// Incumbent is one achievable objective point donated to the
// branch-and-bound as a pruning seed (cluster bound-sharing). See
// Config.Incumbents for the margin-backed rule that keeps the merged
// frontier invariant under when (or whether) incumbents arrive.
type Incumbent struct {
	Energy float64 `json:"energy"`
	Cycles int64   `json:"cycles"`
	GEQ    int     `json:"geq"`
}

// incEnergySlack is the relative safety margin an incumbent's energy
// must clear the subtree's energy lower bound by before it may prune.
// The bound's float expression (LowerBound) associates differently
// than the achieved value's (Priced.Point), so the two can disagree by
// a few ulp (~1e-15 relative); the margin must exceed that drift —
// otherwise rounding can fake strict dominance and cut a subtree
// containing the incumbent's own configuration — while staying far
// below any real energy separation between distinct configurations
// (>= ~1e-6 relative on every measured app), so the pruning power
// given up is nil.
const incEnergySlack = 1e-9

// DefaultGeometries returns the explored cache grid: the reference
// geometry plus halved i-cache, halved d-cache, and both halved — the
// four corners of the "can a smaller memory subsystem ride on the
// partition's cache-relief" question.
func DefaultGeometries() [][2]cache.Config {
	i, d := cache.DefaultICache(), cache.DefaultDCache()
	ih, dh := i, d
	ih.Sets /= 2
	dh.Sets /= 2
	return [][2]cache.Config{{i, d}, {ih, d}, {i, dh}, {ih, dh}}
}

// Pick is one cluster→hardware assignment inside a Point.
type Pick struct {
	Region   int     `json:"region"` // cdfg region ID
	Label    string  `json:"label"`
	Set      string  `json:"set"` // resource-set name
	SetIndex int     `json:"set_index"`
	GEQ      int     `json:"geq"`
	OF       float64 `json:"of"` // the pick's own Fig. 1 objective value
}

// Point is one non-dominated configuration of the design space.
type Point struct {
	ID       int          `json:"id"`
	ICache   cache.Config `json:"icache"`
	DCache   cache.Config `json:"dcache"`
	Clusters []Pick       `json:"clusters,omitempty"` // empty: all-software
	// The objectives, minimized jointly.
	Energy units.Energy `json:"energy"`
	Cycles int64        `json:"cycles"`
	GEQ    int          `json:"geq"`
	// Ratios against the point's own geometry baseline (all-software on
	// the same caches): EnergyRatio < 1 means the partition saves energy.
	EnergyRatio float64 `json:"energy_ratio"`
	CycleRatio  float64 `json:"cycle_ratio"`

	// Decision is the full Fig. 1 decision trail reconstructing this
	// point, auditable with partition.AuditDecision against Baseline.
	// Both are excluded from JSON (the trail is large); API consumers
	// get the Picks.
	Decision *partition.Decision `json:"-"`
	Baseline *partition.Baseline `json:"-"`

	// Key is the deterministic tie-break (geometry dims + ordered picks)
	// the DESIGN.md §7 dominance ordering breaks exact objective ties
	// on. It is exported — and on the wire — so a cluster coordinator
	// merging shard frontiers from remote processes reproduces Reduce's
	// ordering byte-identically.
	Key string `json:"key,omitempty"`
}

// Stats counts the search's work. Configs, Pruned and PairEvals are
// deterministic at any worker count (each geometry's search is serial);
// the Memo hit/miss split is NOT — concurrent geometries race to compute
// a pair first — so only Adds/Size from it appear in rendered output.
type Stats struct {
	Geometries int   `json:"geometries"`
	Configs    int64 `json:"configs"`    // configurations evaluated (search-tree nodes)
	Pruned     int64 `json:"pruned"`     // subtrees cut by the lower bound
	PairEvals  int64 `json:"pair_evals"` // objective evaluations of (cluster, set) pairs
	MemoAdds   int64 `json:"memo_adds"`  // distinct schedule/bind computations
	MemoSize   int   `json:"memo_size"`
	// PrunedRemote counts the subset of Pruned cut by donated
	// Incumbents (cluster bound-sharing). It is deterministic only for
	// a fixed incumbent set; a coordinator's asynchronous broadcasts
	// make it timing-dependent, so cluster-merged bodies omit it from
	// deterministic output (it feeds the work report and metrics).
	PrunedRemote int64 `json:"pruned_remote,omitempty"`

	// Memo is the shared schedule/binding memo snapshot (hit/miss split
	// is scheduling-dependent; see above).
	Memo explore.MemoStats `json:"-"`
}

// Frontier is the outcome of one exploration: the non-dominated points
// in ascending-energy order, each carrying its auditable decision trail.
type Frontier struct {
	App    string  `json:"app"`
	Points []Point `json:"points"`
	Stats  Stats   `json:"stats"`
}

// Prep is the measured, priced half of an exploration: the application
// profiled and traced once, every cache geometry priced from that single
// trace into its own all-software baseline, and one shared
// DeltaEvaluator (one schedule/binding memo) ready to price (cluster,
// resource set) pairs against any of those baselines. A Prep feeds both
// the Pareto search (ExplorePrep) and the exact solver (internal/milp),
// so the two provably price the same design space from the same floats.
type Prep struct {
	IR *cdfg.Program
	// Delta wraps the shared Evaluator; all geometries re-run only the
	// cheap baseline-dependent price tail after the first decomposition.
	Delta *partition.DeltaEvaluator
	// Geoms[i] is priced against Bases[i]. Geoms excludes the anchor
	// unless it is itself an explored geometry (the default grid's first
	// entry is the anchor pair).
	Geoms [][2]cache.Config
	Bases []*partition.Baseline
}

// Prepare measures the application once (profile, initial design,
// reference trace), prices every cache geometry from the single recorded
// trace, and derives each geometry's all-software baseline. With a store
// attached, a previous run's measurement is replayed instead
// (bit-identical records, so every downstream result is byte-identical
// to a cold run's). The geometry set is fixed here; ExplorePrep ignores
// cfg.Geometries.
func Prepare(ctx context.Context, ir *cdfg.Program, cfg Config) (*Prep, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = explore.DefaultWorkers()
	}
	geoms := make([][2]cache.Config, 0, len(cfg.Geometries))
	if cfg.Geometries == nil {
		geoms = DefaultGeometries()
	} else {
		geoms = append(geoms, cfg.Geometries...)
	}
	if len(geoms) == 0 {
		return nil, fmt.Errorf("dse: no geometries to explore")
	}
	for gi := range geoms {
		geoms[gi][1].WriteBack = true
		if err := geoms[gi][0].Validate(); err != nil {
			return nil, fmt.Errorf("dse: geometry %d i-cache: %w", gi, err)
		}
		if err := geoms[gi][1].Validate(); err != nil {
			return nil, fmt.Errorf("dse: geometry %d d-cache: %w", gi, err)
		}
	}

	lib := cfg.Sys.Part.Lib
	if lib == nil {
		lib = tech.Default()
	}
	anchorI, anchorD := cfg.Sys.ICache, cfg.Sys.DCache
	if anchorI.Sets == 0 {
		anchorI = cache.DefaultICache()
	}
	if anchorD.Sets == 0 {
		anchorD = cache.DefaultDCache()
	}
	pairs := append([][2]cache.Config{{anchorI, anchorD}}, geoms...)

	// Measure once: profiling run, then ONE ISS execution of the initial
	// all-software design on the anchor geometry with the trace recorder
	// teed into the memory system, yielding both the measured baseline and
	// the geometry-independent reference trace. With a store attached, a
	// previous run's measurement is replayed instead (bit-identical
	// records, so the frontier is byte-identical to a cold run's).
	useStore := cfg.Store != nil && !cfg.Sys.Part.Verify
	var fp [32]byte
	if useStore {
		fp = fingerprint(ir, &cfg, anchorI, anchorD, lib)
	}
	var m *measurement
	if useStore {
		m = loadMeasurement(cfg.Store, fp, pairs, lib)
	}
	if m == nil {
		ev, base, tr, err := system.MeasureAndRecordCtx(ctx, ir, cfg.Sys)
		if err != nil {
			return nil, err
		}
		reps, err := tr.SweepParallel(pairs, lib, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("dse: geometry sweep: %w", err)
		}
		m = &measurement{
			emup:       ev.Initial.EMuP,
			initCycles: ev.Initial.TotalCycles(),
			base:       base,
			prof:       ev.Profile,
			reps:       reps,
		}
		if useStore {
			storeMeasurement(cfg.Store, fp, pairs, m)
		}
	}
	anchor, reps := m.reps[0], m.reps[1:]
	base := m.base

	// One evaluator — one schedule/binding memo — for every geometry and
	// subtree, wrapped in a delta evaluator: geometries differ only in
	// their baseline, so after the first geometry decomposes a (cluster,
	// resource set) pair, every other geometry re-runs just the cheap
	// baseline-dependent price tail.
	pe, err := partition.NewEvaluator(ir, m.prof, cfg.Sys.Part)
	if err != nil {
		return nil, err
	}
	de := partition.NewDeltaEvaluator(pe)

	// Each geometry's all-software baseline, derived from the anchor
	// measurement: swap the memory subsystem's energy for the swept one,
	// and shift cycles by the stall delta between geometries.
	bases := make([]*partition.Baseline, len(geoms))
	for gi, g := range geoms {
		gbase := &partition.Baseline{
			MuPEnergy:          m.emup,
			RestEnergy:         reps[gi].Total(),
			TotalEnergy:        m.emup + reps[gi].Total(),
			TotalCycles:        m.initCycles - anchor.Stalls + reps[gi].Stalls,
			Regions:            base.Regions,
			Micro:              base.Micro,
			ICacheAccessEnergy: g[0].AccessEnergy(lib.Cache),
		}
		if gbase.TotalCycles < 1 {
			gbase.TotalCycles = 1
		}
		bases[gi] = gbase
	}
	return &Prep{IR: ir, Delta: de, Geoms: geoms, Bases: bases}, nil
}

// Explore measures the application once (Prepare), then runs the
// branch-and-bound subset search per geometry and merges the
// per-geometry frontiers into one Pareto set (ExplorePrep).
func Explore(ctx context.Context, ir *cdfg.Program, cfg Config) (*Frontier, error) {
	p, err := Prepare(ctx, ir, cfg)
	if err != nil {
		return nil, err
	}
	return ExplorePrep(ctx, p, cfg)
}

// ExplorePrep runs the Pareto search over an already-prepared
// measurement. The geometry set comes from the Prep (cfg.Geometries is
// ignored here); the partitioning knobs, pick budget, hint source and
// worker count come from cfg.
func ExplorePrep(ctx context.Context, p *Prep, cfg Config) (*Frontier, error) {
	if cfg.MaxHW <= 0 {
		cfg.MaxHW = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = explore.DefaultWorkers()
	}
	pe := p.Delta.Evaluator()
	pcfg := pe.Config()

	total := len(p.Geoms)
	var done atomic.Int64
	results, err := explore.MapCtx(ctx, cfg.Workers, p.Geoms, func(gi int, g [2]cache.Config) (*geoResult, error) {
		res, err := searchGeometry(ctx, p.Delta, p.Bases[gi], g, &cfg)
		if err != nil {
			return nil, err
		}
		if cfg.OnProgress != nil {
			cfg.OnProgress(int(done.Add(1)), total)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	st := Stats{Geometries: len(p.Geoms)}
	var all []Point
	for _, r := range results {
		all = append(all, r.points...)
		st.Configs += r.configs
		st.Pruned += r.pruned
		st.PairEvals += r.pairEvals
		st.PrunedRemote += r.prunedRemote
	}
	pts := Reduce(all)
	for i := range pts {
		pts[i].ID = i
	}
	ms := pe.MemoStats()
	st.MemoAdds, st.MemoSize, st.Memo = ms.Adds, ms.Size, ms

	f := &Frontier{App: p.IR.Name, Points: pts, Stats: st}
	if pcfg.Verify {
		if err := f.Audit(pcfg); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Audit runs partition.AuditDecision on every point's decision trail
// against its own geometry baseline.
func (f *Frontier) Audit(pcfg partition.Config) error {
	for i := range f.Points {
		p := &f.Points[i]
		if p.Decision == nil || p.Baseline == nil {
			return fmt.Errorf("dse: point %d has no decision trail", p.ID)
		}
		if err := partition.AuditDecision(p.Decision, p.Baseline, pcfg); err != nil {
			return fmt.Errorf("dse: point %d: %w", p.ID, err)
		}
	}
	return nil
}

// geoResult is one geometry's locally-reduced frontier plus its search
// counters.
type geoResult struct {
	points                     []Point
	configs, pruned, pairEvals int64
	prunedRemote               int64
}

// searchGeometry runs the serial branch-and-bound over (cluster subset ×
// per-cluster resource set) for one cache geometry.
func searchGeometry(ctx context.Context, de *partition.DeltaEvaluator, gbase *partition.Baseline,
	g [2]cache.Config, cfg *Config) (*geoResult, error) {
	pe := de.Evaluator()
	all, pool := pe.Candidates(gbase)
	pcfg := pe.Config()
	ns := len(pcfg.ResourceSets)
	res := &geoResult{}

	t0 := gbase.TotalCycles

	// Evaluate the (cluster, resource set) grid against this geometry's
	// baseline. The delta evaluator memoizes both the schedule/binding
	// and the baseline-independent term decomposition across geometries,
	// so only the first geometry pays Fig. 1 lines 8-10 here; every other
	// geometry re-runs just the baseline-dependent price tail.
	// Branching is restricted to picks that pass the Fig. 1 acceptance
	// test (eligible AND OF below the all-software objective): that keeps
	// every point's decision trail auditable — AuditDecision requires
	// Chosen.OF < F — and matches what the greedy loop could ever select.
	evals := make([][]*partition.SetEval, len(pool))
	viable := make([][]int, len(pool)) // set indices passing the acceptance test
	for j := range pool {
		evals[j] = make([]*partition.SetEval, ns)
		for si := 0; si < ns; si++ {
			e, err := de.Eval(gbase, pool[j], si, false, false)
			if err != nil {
				return nil, err
			}
			evals[j][si] = e
			res.pairEvals++
			if e.Eligible && e.OF < pcfg.F {
				viable[j] = append(viable[j], si)
			}
		}
	}

	// The suffix floors bounding what any extension of a subtree can
	// still achieve. DefaultHint aggregates the admissible per-cluster
	// Potentials into plain suffix sums; a Config.Hints source (e.g.
	// milp.Hints) may donate tighter — but still admissible — floors.
	hin := &HintInputs{Pool: pool, Evals: evals, Viable: viable,
		Base: gbase, Config: pcfg, Geom: g, MaxHW: cfg.MaxHW}
	var hint BoundHint
	if cfg.Hints != nil {
		hint = cfg.Hints.HintFor(hin)
	}
	if hint == nil {
		hint = DefaultHint(hin)
	}

	// obj is one point in objective space; front holds the non-dominated
	// objectives found so far in THIS geometry, used for pruning.
	type obj struct {
		e float64
		c int64
		g int
	}
	var front []obj
	dominated := func(p obj) bool {
		for _, f := range front {
			if f.e <= p.e && f.c <= p.c && f.g <= p.g {
				return true
			}
		}
		return false
	}
	// Incumbents prune only when strictly below the energy bound by a
	// margin dwarfing the bound's float drift (the integer axes are
	// exact, energy is not — see Config.Incumbents): every subtree point
	// then sits strictly above the incumbent on energy, so it is weakly
	// dominated by a distinct achievable point and can never survive the
	// merged Reduce. Exact and near-exact ties fail the margin test and
	// survive to the merge, where Reduce's canonical Key tie-break picks
	// the winner deterministically.
	incDominated := func(p obj) bool {
		for _, in := range cfg.Incumbents {
			if in.Energy <= p.e-incEnergySlack*math.Abs(p.e) &&
				in.Cycles <= p.c && in.GEQ <= p.g {
				return true
			}
		}
		return false
	}
	push := func(p obj) {
		kept := front[:0]
		for _, f := range front {
			if !(p.e <= f.e && p.c <= f.c && p.g <= f.g) {
				kept = append(kept, f)
			}
		}
		front = append(kept, p)
	}

	// Configuration state lives in a partition.Priced: the DFS's
	// parent→child edges are one-cluster splices (Add on descend, Remove
	// on return restores the exact parent snapshot), so every
	// configuration's floats are computed by the same path-order
	// expression tree as passing the accumulators down functionally.
	pr := partition.NewPriced(gbase)
	point := func() obj {
		e, c, g := pr.Point()
		return obj{e: e, c: c, g: g}
	}
	type pathEl struct {
		j, si int
		ev    *partition.SetEval
	}
	// Depth is bounded by the pool (one pick per region), so one up-front
	// allocation serves every push/pop of the DFS. picked mirrors path's
	// pool indices for the hint (rebuilt per bound query, backing array
	// reused).
	path := make([]pathEl, 0, len(pool))
	picked := make([]int, 0, len(pool))
	// bounded reports whether no extension drawing clusters from pool[i:]
	// can reach a non-dominated point. The bound under-approximates every
	// reachable objective (clamping only raises the real values), so a
	// dominated bound proves the whole subtree dominated — admissible
	// pruning, verified differentially against DisableBound.
	bounded := func(i int) bool {
		if cfg.DisableBound {
			return false
		}
		picked = picked[:0]
		for _, el := range path {
			picked = append(picked, el.j)
		}
		dE, dC, dG := hint.SuffixFloor(i, cfg.MaxHW-len(path), picked)
		e, c, g := pr.LowerBound(dE, dC, dG)
		lb := obj{e: e, c: c, g: g}
		if dominated(lb) {
			return true
		}
		if incDominated(lb) {
			res.prunedRemote++
			return true
		}
		return false
	}
	// A BranchHint additionally floors single branches (first pick = j):
	// a dominated branch floor skips just cluster j's implementations
	// where the level bound above cuts whole suffixes. An OptionCut
	// skips single implementations dominated within their own cluster.
	bh, _ := hint.(BranchHint)
	oc, _ := hint.(OptionCut)
	branchBounded := func(j int) bool {
		if cfg.DisableBound || bh == nil {
			return false
		}
		picked = picked[:0]
		for _, el := range path {
			picked = append(picked, el.j)
		}
		dE, dC, dG := bh.BranchFloor(j, cfg.MaxHW-len(path), picked)
		e, c, g := pr.LowerBound(dE, dC, dG)
		lb := obj{e: e, c: c, g: g}
		if dominated(lb) {
			return true
		}
		if incDominated(lb) {
			res.prunedRemote++
			return true
		}
		return false
	}
	overlapsPath := func(r *cdfg.Region) bool {
		for _, el := range path {
			if partition.RegionsOverlap(pool[el.j].Region, r) {
				return true
			}
		}
		return false
	}
	record := func(o obj) {
		if dominated(o) {
			return // transitively dominated — can never reach the frontier
		}
		push(o)
		picks := make([]Pick, len(path))                                               //lint:alloc only for a point that survives the dominance filter
		key := fmt.Sprintf("%d/%d/%d|%d/%d/%d", g[0].Sets, g[0].Assoc, g[0].LineWords, //lint:alloc only for a point that survives the dominance filter
			g[1].Sets, g[1].Assoc, g[1].LineWords)
		for i, el := range path {
			picks[i] = Pick{
				Region: pool[el.j].Region.ID, Label: pool[el.j].Region.Label,
				Set: el.ev.RS.Name, SetIndex: el.si,
				GEQ: el.ev.GEQ, OF: el.ev.OF,
			}
			key += fmt.Sprintf("|r%ds%d", picks[i].Region, el.si) //lint:alloc only for a point that survives the dominance filter
		}
		base := pr.MuPE + pr.RestE
		res.points = append(res.points, Point{
			ICache: g[0], DCache: g[1], Clusters: picks,
			Energy: units.Energy(o.e), Cycles: o.c, GEQ: o.g,
			EnergyRatio: o.e / base,
			CycleRatio:  float64(o.c) / float64(t0),
			Baseline:    gbase,
			Key:         key,
		})
	}

	// The empty subset — pure cache tuning, no hardware — is a valid
	// configuration and seeds the pruning frontier. Every root-branch
	// shard records it too: the duplicates carry identical objectives
	// AND identical keys, so the merge's weak-dominance filter drops
	// all but one without a tie-break ambiguity.
	record(point())

	// isRoot gates the FIRST pick when the search is sharded; deeper
	// levels are unrestricted (a shard owns every configuration whose
	// lowest-ranked pick is one of its roots).
	var rootSet map[int]bool
	if cfg.Roots != nil {
		rootSet = make(map[int]bool, len(cfg.Roots))
		for _, r := range cfg.Roots {
			rootSet[r] = true
		}
	}

	var walk func(i int) error
	walk = func(i int) error { //lint:hotpath the branch-and-bound DFS body

		if err := ctx.Err(); err != nil {
			return err
		}
		if len(path) >= cfg.MaxHW {
			return nil
		}
		for j := i; j < len(pool); j++ {
			if rootSet != nil && len(path) == 0 && !rootSet[j] {
				continue
			}
			// The bound tightens as j advances (the suffix shrinks), so
			// one dominated bound cuts the rest of this level too.
			if bounded(j) {
				res.pruned++
				return nil
			}
			if overlapsPath(pool[j].Region) {
				continue
			}
			if len(viable[j]) > 0 && branchBounded(j) {
				res.pruned++
				continue
			}
			for _, si := range viable[j] {
				if oc != nil && !cfg.DisableBound && oc.CutOption(j, si) {
					res.pruned++
					continue
				}
				ev := evals[j][si]
				res.configs++
				path = append(path, pathEl{j, si, ev})
				pr.Add(pool[j], ev)
				record(point())
				if err := walk(j + 1); err != nil {
					return err
				}
				pr.Remove()
				path = path[:len(path)-1]
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}

	// Attach this geometry's evaluations to the shared candidate trail in
	// deterministic (rank, set) order, then reconstruct a Decision per
	// recorded point.
	for j := range pool {
		for si := 0; si < ns; si++ {
			if e := evals[j][si]; e != nil {
				pool[j].Evals = append(pool[j].Evals, e)
			}
		}
	}
	byID := make(map[int]*partition.Candidate, len(pool))
	setIdx := make(map[int]map[int]*partition.SetEval, len(pool))
	for j, c := range pool {
		byID[c.Region.ID] = c
		m := make(map[int]*partition.SetEval, ns)
		for si := 0; si < ns; si++ {
			if e := evals[j][si]; e != nil {
				m[si] = e
			}
		}
		setIdx[c.Region.ID] = m
	}
	for i := range res.points {
		p := &res.points[i]
		dec := &partition.Decision{BaselineOF: pcfg.F, Candidates: all}
		for _, pk := range p.Clusters {
			c := byID[pk.Region]
			e := setIdx[pk.Region][pk.SetIndex]
			dec.Choices = append(dec.Choices, &partition.Choice{
				Region: c.Region, RS: e.RS, Binding: e.Binding, Eval: e,
			})
		}
		sort.Slice(dec.Choices, func(a, b int) bool {
			if dec.Choices[a].Eval.OF != dec.Choices[b].Eval.OF {
				return dec.Choices[a].Eval.OF < dec.Choices[b].Eval.OF
			}
			return dec.Choices[a].Region.ID < dec.Choices[b].Region.ID
		})
		if len(dec.Choices) > 0 {
			dec.Chosen = dec.Choices[0]
		}
		p.Decision = dec
	}
	// Local reduction before the merge keeps the cross-geometry set small.
	res.points = Reduce(res.points)
	return res, nil
}

// Reduce sorts points by (Energy, Cycles, GEQ, Key) and filters every
// point weakly dominated by an earlier survivor — the DESIGN.md §7
// dominance ordering. Ties on all three objectives keep the smallest
// Key, so the outcome is a pure function of the point multiset: a
// cluster coordinator merging shard frontiers calls exactly this on the
// union and gets bytes identical to a single-process run regardless of
// shard arrival order.
func Reduce(all []Point) []Point {
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.Energy != b.Energy {
			return a.Energy < b.Energy
		}
		if a.Cycles != b.Cycles {
			return a.Cycles < b.Cycles
		}
		if a.GEQ != b.GEQ {
			return a.GEQ < b.GEQ
		}
		return a.Key < b.Key
	})
	var out []Point
	for _, p := range all {
		dom := false
		for i := range out {
			q := &out[i]
			if q.Energy <= p.Energy && q.Cycles <= p.Cycles && q.GEQ <= p.GEQ {
				dom = true
				break
			}
		}
		if !dom {
			out = append(out, p)
		}
	}
	return out
}
