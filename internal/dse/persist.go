// Persistent memoization of the exploration's measurement phase.
//
// An exploration's expensive front half — the profiling interpreter run,
// the ISS execution of the all-software design with the trace recorder
// teed in, and the stack-distance geometry sweep — is a pure function of
// (IR, memory map, anchor caches, instruction budget, technology
// library, geometry grid). With a memostore attached, Explore persists
// that half as two content-addressed records keyed by the program
// fingerprint, so a warm run (same binary or a restarted one, or a fleet
// node sharing the directory read-only) skips straight to the
// branch-and-bound search. The records hold raw IEEE-754 bit patterns
// and exact integers, so a warm frontier is byte-identical to a cold
// one; any missing, version-skewed or undecodable record silently falls
// back to the cold path and rewrites the records.
package dse

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"lppart/internal/cache"
	"lppart/internal/cdfg"
	"lppart/internal/interp"
	"lppart/internal/iss"
	"lppart/internal/memostore"
	"lppart/internal/partition"
	"lppart/internal/tech"
	"lppart/internal/trace"
	"lppart/internal/units"
)

// measurement is everything the per-geometry searches consume from the
// measurement phase: the anchor baseline, the evaluator's profile (only
// BlockFreq is read on the evaluation path), and the swept geometry
// reports (reps[0] is the anchor pair).
type measurement struct {
	emup       units.Energy // initial design's µP energy
	initCycles int64        // initial design's total cycles
	base       *partition.Baseline
	prof       *interp.Profile
	reps       []trace.Report
}

const (
	measureRecVersion = 1
	sweepRecVersion   = 1
)

// fingerprint content-addresses the measurement phase: the canonical IR
// dump plus every configuration input the phase depends on. The
// partitioning knobs (F, budgets, resource sets) are deliberately NOT
// part of it — the grid evaluation and search always run live.
func fingerprint(ir *cdfg.Program, cfg *Config, anchorI, anchorD cache.Config, lib *tech.Library) [32]byte {
	h := sha256.New()
	io.WriteString(h, ir.Dump())
	fmt.Fprintf(h, "\x00i%+v\x00d%+v\x00m%d\x00s%d\x00x%d\x00",
		anchorI, anchorD, cfg.Sys.MemWords, cfg.Sys.StackWords, cfg.Sys.MaxInstrs)
	fmt.Fprintf(h, "lib%+v", *lib)
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

func measureKey(fp [32]byte) memostore.Key {
	h := sha256.New()
	io.WriteString(h, "lppart/dse/measure/v1\x00")
	h.Write(fp[:])
	var k memostore.Key
	h.Sum(k[:0])
	return k
}

func sweepKey(fp [32]byte, pairs [][2]cache.Config) memostore.Key {
	h := sha256.New()
	io.WriteString(h, "lppart/dse/sweep/v1\x00")
	h.Write(fp[:])
	for _, pr := range pairs {
		fmt.Fprintf(h, "%+v|%+v\x00", pr[0], pr[1])
	}
	var k memostore.Key
	h.Sum(k[:0])
	return k
}

// enc appends fixed-width little-endian fields; all floats are stored as
// raw bit patterns so decoding reproduces them bit-for-bit.
type enc struct{ b []byte }

func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b   []byte
	off int
	bad bool
}

func (d *dec) u64() uint64 {
	if d.bad || d.off+8 > len(d.b) {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) str() string {
	n := d.u64()
	if d.bad || n > uint64(len(d.b)-d.off) {
		d.bad = true
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// encodeMeasurement serializes the measurement record (everything except
// the sweep reports, which key separately on the geometry grid). Maps
// are emitted in sorted-key order so the record bytes are canonical.
func encodeMeasurement(m *measurement) []byte {
	e := &enc{b: make([]byte, 0, 1024)}
	e.u64(measureRecVersion)
	e.f64(float64(m.emup))
	e.i64(m.initCycles)
	b := m.base
	e.f64(float64(b.TotalEnergy))
	e.f64(float64(b.MuPEnergy))
	e.f64(float64(b.RestEnergy))
	e.i64(b.TotalCycles)
	e.f64(float64(b.ICacheAccessEnergy))

	ids := make([]int, 0, len(b.Regions))
	for id := range b.Regions { //lint:ordered key collection, sorted below
		ids = append(ids, id)
	}
	sort.Ints(ids)
	e.u64(uint64(len(ids)))
	for _, id := range ids {
		rs := b.Regions[id]
		e.i64(int64(id))
		e.i64(rs.Instrs)
		e.i64(rs.Cycles)
		e.f64(float64(rs.Energy))
		for _, a := range rs.Active {
			e.i64(a)
		}
	}

	fns := make([]string, 0, len(m.prof.BlockFreq))
	for fn := range m.prof.BlockFreq { //lint:ordered key collection, sorted below
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	e.u64(uint64(len(fns)))
	for _, fn := range fns {
		e.str(fn)
		freq := m.prof.BlockFreq[fn]
		e.u64(uint64(len(freq)))
		for _, c := range freq {
			e.i64(c)
		}
	}
	return e.b
}

// decodeMeasurement reconstructs the record; Micro is rebound to the
// live library (the fingerprint pins its contents). Returns nil when the
// bytes do not decode — the caller falls back to the cold path.
func decodeMeasurement(buf []byte, lib *tech.Library) *measurement {
	d := &dec{b: buf}
	if d.u64() != measureRecVersion {
		return nil
	}
	m := &measurement{
		emup:       units.Energy(d.f64()),
		initCycles: d.i64(),
		base:       &partition.Baseline{Micro: &lib.Micro},
		prof:       &interp.Profile{BlockFreq: map[string][]int64{}},
	}
	b := m.base
	b.TotalEnergy = units.Energy(d.f64())
	b.MuPEnergy = units.Energy(d.f64())
	b.RestEnergy = units.Energy(d.f64())
	b.TotalCycles = d.i64()
	b.ICacheAccessEnergy = units.Energy(d.f64())

	nr := d.u64()
	if d.bad || nr > uint64(len(buf)) {
		return nil
	}
	b.Regions = make(map[int]*iss.RegionStat, nr)
	for i := uint64(0); i < nr && !d.bad; i++ {
		id := int(d.i64())
		rs := &iss.RegionStat{Instrs: d.i64(), Cycles: d.i64(), Energy: units.Energy(d.f64())}
		for k := range rs.Active {
			rs.Active[k] = d.i64()
		}
		b.Regions[id] = rs
	}

	nf := d.u64()
	if d.bad || nf > uint64(len(buf)) {
		return nil
	}
	for i := uint64(0); i < nf && !d.bad; i++ {
		fn := d.str()
		nb := d.u64()
		if d.bad || nb > uint64(len(buf)) {
			return nil
		}
		freq := make([]int64, nb)
		for j := range freq {
			freq[j] = d.i64()
		}
		m.prof.BlockFreq[fn] = freq
	}
	if d.bad || m.base.TotalCycles < 1 {
		return nil
	}
	return m
}

func encodeCacheConfig(e *enc, c cache.Config) {
	e.i64(int64(c.Sets))
	e.i64(int64(c.Assoc))
	e.i64(int64(c.LineWords))
	wb := int64(0)
	if c.WriteBack {
		wb = 1
	}
	e.i64(wb)
}

func decodeCacheConfig(d *dec) cache.Config {
	return cache.Config{
		Sets: int(d.i64()), Assoc: int(d.i64()), LineWords: int(d.i64()),
		WriteBack: d.i64() != 0,
	}
}

// encodeReports serializes the swept geometry reports in input order.
func encodeReports(reps []trace.Report) []byte {
	e := &enc{b: make([]byte, 0, 64+len(reps)*160)}
	e.u64(sweepRecVersion)
	e.u64(uint64(len(reps)))
	for _, r := range reps {
		encodeCacheConfig(e, r.ICfg)
		encodeCacheConfig(e, r.DCfg)
		for _, st := range []cache.Stats{r.I, r.D} {
			e.i64(st.Accesses)
			e.i64(st.Hits)
			e.i64(st.Misses)
			e.i64(st.WriteBacks)
		}
		e.f64(float64(r.EICache))
		e.f64(float64(r.EDCache))
		e.f64(float64(r.EMem))
		e.f64(float64(r.EBus))
		e.i64(r.Stalls)
	}
	return e.b
}

// decodeReports rejects a record whose geometry list does not match the
// requested pairs exactly — a stale grid must recompute, never mis-map.
func decodeReports(buf []byte, pairs [][2]cache.Config) []trace.Report {
	d := &dec{b: buf}
	if d.u64() != sweepRecVersion {
		return nil
	}
	n := d.u64()
	if d.bad || n != uint64(len(pairs)) {
		return nil
	}
	reps := make([]trace.Report, n)
	for i := range reps {
		r := &reps[i]
		r.ICfg = decodeCacheConfig(d)
		r.DCfg = decodeCacheConfig(d)
		for _, st := range []*cache.Stats{&r.I, &r.D} {
			st.Accesses = d.i64()
			st.Hits = d.i64()
			st.Misses = d.i64()
			st.WriteBacks = d.i64()
		}
		r.EICache = units.Energy(d.f64())
		r.EDCache = units.Energy(d.f64())
		r.EMem = units.Energy(d.f64())
		r.EBus = units.Energy(d.f64())
		r.Stalls = d.i64()
		if d.bad {
			return nil
		}
		want := pairs[i]
		want[1].WriteBack = true
		if r.ICfg != want[0] || r.DCfg != want[1] {
			return nil
		}
	}
	return reps
}

// loadMeasurement returns the persisted measurement phase, or nil when
// either record is absent or undecodable (including store read errors —
// a sick store degrades to the cold path, it never fails the run).
func loadMeasurement(st *memostore.Store, fp [32]byte, pairs [][2]cache.Config, lib *tech.Library) *measurement {
	mb, ok, err := st.Get(measureKey(fp))
	if err != nil || !ok {
		return nil
	}
	sb, ok, err := st.Get(sweepKey(fp, pairs))
	if err != nil || !ok {
		return nil
	}
	m := decodeMeasurement(mb, lib)
	if m == nil {
		return nil
	}
	m.reps = decodeReports(sb, pairs)
	if m.reps == nil {
		return nil
	}
	return m
}

// storeMeasurement persists the freshly measured phase. Write errors are
// swallowed: persistence is an accelerator, not a correctness dependency
// (and the store may legitimately be read-only on fleet nodes).
func storeMeasurement(st *memostore.Store, fp [32]byte, pairs [][2]cache.Config, m *measurement) {
	_ = st.Put(measureKey(fp), encodeMeasurement(m))       //lint:err persistence is best-effort (see doc comment)
	_ = st.Put(sweepKey(fp, pairs), encodeReports(m.reps)) //lint:err persistence is best-effort (see doc comment)
}
