package dse

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lppart/internal/memostore"
)

// TestStoreWarmFrontierByteIdentical is the DSE persistence contract:
// exploring with a store (cold: populates; warm: replays the measurement
// phase) yields frontiers byte-identical to a store-less run, and the
// warm run really skipped the measurement (the store served both
// records).
func TestStoreWarmFrontierByteIdentical(t *testing.T) {
	ir := buildApp(t, "engine")
	dir := t.TempDir()

	ref := pointsJSON(t, run(t, ir, Config{Workers: 1}))

	st, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold := pointsJSON(t, run(t, ir, Config{Workers: 1, Store: st}))
	if !bytes.Equal(ref, cold) {
		t.Errorf("cold store run differs from store-less run:\n%s\nvs\n%s", ref, cold)
	}
	if st.Len() != 2 {
		t.Fatalf("cold run persisted %d records, want 2 (measurement + sweep)", st.Len())
	}
	st.Close()

	// Warm run through a fresh handle ("restarted process"): records are
	// decoded from disk, the interpreter/ISS/sweep never run. Read-only
	// open proves the warm path needs no writes.
	ro, err := memostore.Open(dir, memostore.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	warm := pointsJSON(t, run(t, ir, Config{Workers: 1, Store: ro}))
	if !bytes.Equal(ref, warm) {
		t.Errorf("warm store run differs from store-less run:\n%s\nvs\n%s", ref, warm)
	}

	// Changing the geometry grid invalidates the sweep record (different
	// key) but not correctness: the run falls back cold and still matches
	// a store-less run of the same grid.
	narrow := Config{Workers: 1, Geometries: DefaultGeometries()[:2]}
	refNarrow := pointsJSON(t, run(t, ir, narrow))
	narrowStored := narrow
	narrowStored.Store = ro
	if got := pointsJSON(t, run(t, ir, narrowStored)); !bytes.Equal(refNarrow, got) {
		t.Errorf("grid-changed store run differs from store-less run")
	}
}

// TestStoreCorruptRecordFallsBackCold: flipping bytes inside a persisted
// record must not poison the frontier — the CRC (or the decoder) rejects
// it and the run recomputes, byte-identical to a clean run.
func TestStoreCorruptRecordFallsBackCold(t *testing.T) {
	ir := buildApp(t, "engine")
	dir := t.TempDir()
	ref := pointsJSON(t, run(t, ir, Config{Workers: 1}))

	st, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run(t, ir, Config{Workers: 1, Store: st})
	st.Close()

	// Corrupt the chunk mid-file.
	path := filepath.Join(dir, "chunk-000000.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatalf("store with corrupt chunk failed to open: %v", err)
	}
	defer st2.Close()
	got := pointsJSON(t, run(t, ir, Config{Workers: 1, Store: st2}))
	if !bytes.Equal(ref, got) {
		t.Errorf("corrupt-store run differs from clean run")
	}
}

// TestStoreBypassedInVerifyMode: an audited exploration must exercise
// the full live flow, so Verify runs neither read nor write the store.
func TestStoreBypassedInVerifyMode(t *testing.T) {
	ir := buildApp(t, "engine")
	st, err := memostore.Open(t.TempDir(), memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := Config{Workers: 1, Store: st}
	cfg.Sys.Part.Verify = true
	run(t, ir, cfg)
	if st.Len() != 0 {
		t.Errorf("verify-mode exploration wrote %d store records, want 0", st.Len())
	}
}
