package dse

import (
	"bytes"
	"context"
	"testing"
)

// TestShardUnionCoversFrontier is the sharding soundness contract: for
// every geometry, splitting the search into root-branch shards (any
// partition of the pool indices) and merging the locally-reduced shard
// frontiers with Reduce reproduces the unsharded frontier byte for
// byte, at any split width.
func TestShardUnionCoversFrontier(t *testing.T) {
	ir := buildApp(t, "engine")
	cfg := Config{Workers: 1}
	p, err := Prepare(context.Background(), ir, cfg)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	whole, err := ExplorePrep(context.Background(), p, cfg)
	if err != nil {
		t.Fatalf("ExplorePrep: %v", err)
	}
	ref := pointsJSON(t, whole)

	for _, split := range []int{1, 2, 3} {
		var all []Point
		for gi := range p.Geoms {
			n := p.PoolSize(gi)
			groups := split
			if groups > n {
				groups = n
			}
			if groups < 1 {
				groups = 1
			}
			for r := 0; r < groups; r++ {
				scfg := cfg
				scfg.Roots = []int{}
				for j := r; j < n; j += groups {
					scfg.Roots = append(scfg.Roots, j)
				}
				f, err := ExploreShard(context.Background(), p, gi, scfg)
				if err != nil {
					t.Fatalf("ExploreShard(gi=%d, split=%d, group=%d): %v", gi, split, r, err)
				}
				all = append(all, f.Points...)
			}
		}
		merged := Reduce(all)
		for i := range merged {
			merged[i].ID = i
		}
		got := pointsJSON(t, &Frontier{Points: merged})
		want := pointsJSON(t, &Frontier{Points: whole.Points})
		if !bytes.Equal(got, want) {
			t.Fatalf("split=%d: merged shard frontier differs from unsharded run", split)
		}
	}
	_ = ref
}

// TestIncumbentsPreserveFrontier is the bound-sharing soundness
// contract: donating achievable points from the full frontier as
// Incumbents to every shard must prune work without changing the merged
// point set — the strict-dominance rule guarantees invariance under any
// incumbent timing.
func TestIncumbentsPreserveFrontier(t *testing.T) {
	ir := buildApp(t, "MPG")
	cfg := Config{Workers: 1}
	p, err := Prepare(context.Background(), ir, cfg)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	whole, err := ExplorePrep(context.Background(), p, cfg)
	if err != nil {
		t.Fatalf("ExplorePrep: %v", err)
	}
	incs := make([]Incumbent, 0, len(whole.Points))
	for _, pt := range whole.Points {
		incs = append(incs, Incumbent{Energy: float64(pt.Energy), Cycles: pt.Cycles, GEQ: pt.GEQ})
	}

	var plain, seeded []Point
	var plainConfigs, seededConfigs, remote int64
	for gi := range p.Geoms {
		f0, err := ExploreShard(context.Background(), p, gi, cfg)
		if err != nil {
			t.Fatalf("ExploreShard plain gi=%d: %v", gi, err)
		}
		plain = append(plain, f0.Points...)
		plainConfigs += f0.Stats.Configs

		scfg := cfg
		scfg.Incumbents = incs
		f1, err := ExploreShard(context.Background(), p, gi, scfg)
		if err != nil {
			t.Fatalf("ExploreShard seeded gi=%d: %v", gi, err)
		}
		seeded = append(seeded, f1.Points...)
		seededConfigs += f1.Stats.Configs
		remote += f1.Stats.PrunedRemote
	}
	a, b := Reduce(plain), Reduce(seeded)
	for i := range a {
		a[i].ID = i
	}
	for i := range b {
		b[i].ID = i
	}
	ga := pointsJSON(t, &Frontier{Points: a})
	gb := pointsJSON(t, &Frontier{Points: b})
	if !bytes.Equal(ga, gb) {
		t.Fatal("incumbent-seeded merge differs from plain merge")
	}
	if seededConfigs >= plainConfigs {
		t.Errorf("incumbents did not reduce priced configs: %d (seeded) >= %d (plain)", seededConfigs, plainConfigs)
	}
	if remote == 0 {
		t.Error("PrunedRemote = 0: incumbents never fired")
	}
	wb := pointsJSON(t, whole)
	if !bytes.Equal(ga, wb) {
		t.Fatal("per-geometry shard merge differs from ExplorePrep frontier")
	}
}
