package dse

import (
	"context"
	"fmt"
)

// PoolSize returns the size of geometry gi's pre-selected candidate
// pool (Fig. 1 step 5) — the number of root branches a cluster shard
// plan may split that geometry's search into. It is a pure function of
// the Prep, so every node of a cluster computes the same value.
func (p *Prep) PoolSize(gi int) int {
	_, pool := p.Delta.Evaluator().Candidates(p.Bases[gi])
	return len(pool)
}

// ExploreShard runs the branch-and-bound over ONE geometry of a
// prepared exploration — the cluster shard unit. cfg.Roots restricts
// the shard to a subset of the geometry's root branches and
// cfg.Incumbents donates cross-shard pruning seeds; the returned
// Frontier is the shard's locally-reduced point set with the shard's
// own search counters. Merging the per-shard frontiers of any plan
// that covers every (geometry, root) exactly once with Reduce yields
// the same point set as ExplorePrep over the same Prep, byte for byte
// — the shard outputs carry the canonical Key precisely so the merge
// can reproduce the §7 ordering.
//
// With cfg.Sys.Part.Verify set, every shard point's decision trail is
// audited here, shard-side: a remote coordinator merges bare points
// (the trail does not travel), so this is where the audit must happen.
func ExploreShard(ctx context.Context, p *Prep, gi int, cfg Config) (*Frontier, error) {
	if gi < 0 || gi >= len(p.Geoms) {
		return nil, fmt.Errorf("dse: shard geometry %d out of range [0, %d)", gi, len(p.Geoms))
	}
	if cfg.MaxHW <= 0 {
		cfg.MaxHW = 2
	}
	pe := p.Delta.Evaluator()
	pcfg := pe.Config()
	res, err := searchGeometry(ctx, p.Delta, p.Bases[gi], p.Geoms[gi], &cfg)
	if err != nil {
		return nil, err
	}
	pts := Reduce(res.points)
	for i := range pts {
		pts[i].ID = i
	}
	ms := pe.MemoStats()
	f := &Frontier{
		App:    p.IR.Name,
		Points: pts,
		Stats: Stats{
			Geometries:   1,
			Configs:      res.configs,
			Pruned:       res.pruned,
			PrunedRemote: res.prunedRemote,
			PairEvals:    res.pairEvals,
			MemoAdds:     ms.Adds,
			MemoSize:     ms.Size,
			Memo:         ms,
		},
	}
	if pcfg.Verify {
		if err := f.Audit(pcfg); err != nil {
			return nil, err
		}
	}
	return f, nil
}
