package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// nilSource exercises the HintFor-returns-nil fallback path.
type nilSource struct{ calls int }

func (s *nilSource) HintFor(in *HintInputs) BoundHint {
	s.calls++
	return nil
}

// looseHint doubles the default energy/cycle floors and zeroes the GEQ
// floor: still admissible (floors only got looser), so the frontier must
// not change — only the pruning rate may drop.
type looseHint struct{ inner BoundHint }

func (h looseHint) SuffixFloor(i, k int, picked []int) (float64, int64, int) {
	dE, dC, _ := h.inner.SuffixFloor(i, k, picked)
	return 2 * dE, 2 * dC, 0
}

type looseSource struct{}

func (looseSource) HintFor(in *HintInputs) BoundHint {
	return looseHint{inner: DefaultHint(in)}
}

func frontierJSON(t *testing.T, f *Frontier) []byte {
	t.Helper()
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHintSourcePlumbing pins the BoundHint contract: a source returning
// nil falls back to DefaultHint with a byte-identical frontier AND
// byte-identical counters, and a strictly looser admissible hint still
// returns a byte-identical frontier while never pruning more.
func TestHintSourcePlumbing(t *testing.T) {
	ir := buildApp(t, "engine")
	ctx := context.Background()

	ref, err := Explore(ctx, ir, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	src := &nilSource{}
	viaNil, err := Explore(ctx, ir, Config{Workers: 1, Hints: src})
	if err != nil {
		t.Fatal(err)
	}
	if src.calls != ref.Stats.Geometries {
		t.Fatalf("HintFor called %d times, want once per geometry (%d)", src.calls, ref.Stats.Geometries)
	}
	if !bytes.Equal(frontierJSON(t, ref), frontierJSON(t, viaNil)) {
		t.Fatal("nil-returning HintSource changed the frontier or counters")
	}

	loose, err := Explore(ctx, ir, Config{Workers: 1, Hints: looseSource{}})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Stats.Pruned > ref.Stats.Pruned {
		t.Fatalf("looser hint pruned more (%d) than default (%d)", loose.Stats.Pruned, ref.Stats.Pruned)
	}
	lj, rj := loose.Points, ref.Points
	if len(lj) != len(rj) {
		t.Fatalf("looser hint changed the frontier: %d points, want %d", len(lj), len(rj))
	}
	lb, _ := json.Marshal(loose.Points)
	rb, _ := json.Marshal(ref.Points)
	if !bytes.Equal(lb, rb) {
		t.Fatal("looser admissible hint changed the frontier points")
	}
}
