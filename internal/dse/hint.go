package dse

import (
	"lppart/internal/cache"
	"lppart/internal/partition"
)

// BoundHint supplies the branch-and-bound suffix floors: for a subtree
// whose configuration already holds the pool indices in picked and may
// still draw clusters from pool[i:], moving at most k more of them to
// hardware, SuffixFloor returns
//
//	dE     — an upper bound on how much total energy any such extension
//	         can still remove,
//	dC     — an upper bound on how many cycles it can still remove,
//	minGEQ — a lower bound on the hardware effort it must add (0 only if
//	         the empty extension is allowed, which it always is).
//
// picked is ascending, valid only for the duration of the call (the
// search reuses the backing array), and exists so a hint can exclude
// suffix clusters whose regions overlap an already-picked one — those
// extensions are infeasible, so discounting their potential keeps the
// floor admissible while tightening it. DefaultHint ignores it.
//
// The floors feed partition.Priced.LowerBound, so they must be
// admissible: over-reporting dE/dC or under-reporting minGEQ would prune
// reachable frontier points. They must also be monotone in i for fixed
// (k, picked) — dE and dC non-increasing, minGEQ non-decreasing —
// because the search cuts the remainder of a level after the first
// dominated bound (pool[i+1:] is a subset of pool[i:], so any admissible
// floor satisfies this naturally).
type BoundHint interface {
	SuffixFloor(i, k int, picked []int) (dE float64, dC int64, minGEQ int)
}

// HintInputs is everything a HintSource may price a geometry's bound
// from: the rank-ordered candidate pool, the full (cluster, resource
// set) evaluation grid against this geometry's baseline, the viable set
// indices (Fig. 1 acceptance test passed), the resolved partitioning
// config, and the search's pick budget.
type HintInputs struct {
	Pool   []*partition.Candidate
	Evals  [][]*partition.SetEval
	Viable [][]int
	Base   *partition.Baseline
	Config partition.Config
	Geom   [2]cache.Config
	MaxHW  int
}

// BranchHint is an optional BoundHint extension for per-branch floors:
// BranchFloor bounds only the extensions whose FIRST additional pick is
// cluster j (followed by at most k-1 more from pool[j+1:], all
// non-overlapping with each other, j and the picked path). Committing
// the branch to cluster j makes the floor far tighter than the level's:
// minGEQ is j's own cheapest viable implementation — not the cheapest
// anywhere in the suffix — and dE/dC can no longer combine per-axis
// optima from different first picks. A dominated branch floor skips
// just that cluster's implementations; the level bound still cuts whole
// suffixes. Admissibility is per branch: no extension starting with j
// may beat the returned floors.
type BranchHint interface {
	BranchFloor(j, k int, picked []int) (dE float64, dC int64, minGEQ int)
}

// OptionCut is an optional BoundHint extension carrying milp-style
// dominance cuts: CutOption reports that implementation si of cluster j
// may be skipped everywhere in the search because another viable option
// of the SAME cluster has pointwise no-worse objective deltas (energy,
// cycles, GEQ — at least one strictly better, or equal on all three
// with a smaller set index). Unlike a bound, the cut is hereditary:
// swapping the dominating option into ANY configuration containing
// (j, si) improves it pointwise, so every such configuration is
// weakly dominated by a distinct surviving one and the reduced frontier
// is unchanged. Cuts must be deterministic pure functions of the
// geometry's evaluation grid.
type OptionCut interface {
	CutOption(j, si int) bool
}

// HintSource derives a BoundHint per geometry. Returning nil falls back
// to DefaultHint. Implementations must be deterministic: the frontier is
// promised byte-identical at any worker count, and the hint is part of
// the pruning decisions that shape the search's recorded counters.
type HintSource interface {
	HintFor(in *HintInputs) BoundHint
}

// Potentials computes the per-cluster admissible improvement bounds the
// default hint aggregates, starting from the Fig. 3 pre-selection metric
// and tightened by the computed evaluations:
//
//	potE[j] >= -ΔE_j for every viable pick of cluster j: the ASIC
//	  estimate pays at least the Fig. 3 bus transfers
//	  (E_ASIC >= Inv·E_Trans), so the best case is saving the cluster's
//	  full µP energy and its i-cache fetches while paying only those
//	  transfers — exactly the pre-selection score plus the fetch term.
//	  The minimum over the cluster's viable evaluations is a second,
//	  usually tighter, admissible bound (a leaf must use one of them);
//	  take the min.
//	potC[j] >= -ΔC_j: bounded by the minimum viable cycle delta (and by
//	  -Cycles_j, which that minimum already respects since hardware time
//	  is >= 0).
//	minGEQ[j] <= ΔGEQ_j: the cheapest viable resource set's cells — GEQ
//	  only ever grows, and every extension adds >= 1 cluster.
func Potentials(in *HintInputs) (potE []float64, potC []int64, minGEQ []int) {
	iAcc := float64(in.Base.ICacheAccessEnergy)
	t0 := in.Base.TotalCycles
	pool := in.Pool
	potE = make([]float64, len(pool))
	potC = make([]int64, len(pool))
	minGEQ = make([]int, len(pool))
	for j, c := range pool {
		scorePot := c.Score + float64(c.MuP.Instrs)*iAcc
		bestE, bestC := 0.0, int64(0)
		minGEQ[j] = 0
		for k, si := range in.Viable[j] {
			e := in.Evals[j][si]
			dE := float64(e.EASIC) - float64(e.EMuPSaved) - float64(c.MuP.Instrs)*iAcc
			dC := e.EstCycles - t0
			if k == 0 || dE < bestE {
				bestE = dE
			}
			if dC < bestC {
				bestC = dC
			}
			if k == 0 || e.GEQ < minGEQ[j] {
				minGEQ[j] = e.GEQ
			}
		}
		if p := -bestE; p > 0 {
			potE[j] = p
		}
		if potE[j] > scorePot && scorePot >= 0 {
			potE[j] = scorePot
		}
		if bestC < 0 {
			potC[j] = -bestC
		}
	}
	return potE, potC, minGEQ
}

// suffixHint is the hardwired bound DefaultHint builds: plain suffix
// sums of the per-cluster potentials, ignoring the remaining pick budget
// k, the picked path and region overlaps (all three relaxations only
// loosen the floor, keeping it admissible).
type suffixHint struct {
	sufE []float64
	sufC []int64
	sufG []int
}

func (h *suffixHint) SuffixFloor(i, _ int, _ []int) (float64, int64, int) {
	return h.sufE[i], h.sufC[i], h.sufG[i]
}

// DefaultHint aggregates Potentials into suffix floors: for any subtree
// rooted at pool index i, the most any extension could still improve
// energy and cycles, and the least hardware it must add.
func DefaultHint(in *HintInputs) BoundHint {
	potE, potC, minGEQ := Potentials(in)
	n := len(in.Pool)
	h := &suffixHint{
		sufE: make([]float64, n+1),
		sufC: make([]int64, n+1),
		sufG: make([]int, n+1),
	}
	for j := n - 1; j >= 0; j-- {
		h.sufE[j] = h.sufE[j+1] + potE[j]
		h.sufC[j] = h.sufC[j+1] + potC[j]
		h.sufG[j] = h.sufG[j+1]
		if len(in.Viable[j]) > 0 && (h.sufG[j] == 0 || minGEQ[j] < h.sufG[j]) {
			h.sufG[j] = minGEQ[j]
		}
	}
	return h
}
