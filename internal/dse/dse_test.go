package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"lppart/internal/apps"
	"lppart/internal/cdfg"
	"lppart/internal/partition"
)

func buildApp(t *testing.T, name string) *cdfg.Program {
	t.Helper()
	a, err := apps.ByName(name)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	ir, err := a.Build()
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return ir
}

func run(t *testing.T, ir *cdfg.Program, cfg Config) *Frontier {
	t.Helper()
	f, err := Explore(context.Background(), ir, cfg)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	return f
}

func pointsJSON(t *testing.T, f *Frontier) []byte {
	t.Helper()
	b, err := json.Marshal(f.Points)
	if err != nil {
		t.Fatalf("marshal points: %v", err)
	}
	return b
}

// The frontier must be byte-identical across worker counts and across
// repeated runs — the repo-wide determinism contract, extended to the
// branch-and-bound search.
func TestFrontierDeterministic(t *testing.T) {
	ir := buildApp(t, "engine")
	var ref []byte
	var refStats Stats
	for ri, workers := range []int{1, 4, 4} {
		f := run(t, ir, Config{Workers: workers})
		b := pointsJSON(t, f)
		if ref == nil {
			ref, refStats = b, f.Stats
			if len(f.Points) == 0 {
				t.Fatal("empty frontier")
			}
			continue
		}
		if !bytes.Equal(ref, b) {
			t.Errorf("run %d (workers=%d): frontier bytes differ\nref: %s\ngot: %s", ri, workers, ref, b)
		}
		// The search counters are serial per geometry, so they must not
		// depend on the fan-out either.
		if f.Stats.Configs != refStats.Configs || f.Stats.Pruned != refStats.Pruned ||
			f.Stats.PairEvals != refStats.PairEvals || f.Stats.MemoAdds != refStats.MemoAdds {
			t.Errorf("run %d (workers=%d): counters differ: %+v vs %+v", ri, workers, f.Stats, refStats)
		}
	}
}

// Every frontier point's decision trail must reproduce under the Fig. 1
// audit, and the frontier must satisfy the basic Pareto invariants.
func TestFrontierShapeAndAudit(t *testing.T) {
	ir := buildApp(t, "engine")
	f := run(t, ir, Config{Workers: 1})
	if err := f.Audit(partition.Config{}); err != nil {
		t.Fatalf("audit: %v", err)
	}
	allSW, hw := false, false
	for i, p := range f.Points {
		if p.ID != i {
			t.Errorf("point %d has ID %d", i, p.ID)
		}
		if len(p.Clusters) == 0 {
			allSW = true
			if p.GEQ != 0 {
				t.Errorf("all-software point %d has GEQ %d", i, p.GEQ)
			}
		} else {
			hw = true
		}
		if i > 0 && p.Energy < f.Points[i-1].Energy {
			t.Errorf("points not in ascending energy order at %d", i)
		}
		for j, q := range f.Points {
			if j != i && q.Energy <= p.Energy && q.Cycles <= p.Cycles && q.GEQ <= p.GEQ {
				t.Errorf("point %d is dominated by point %d", i, j)
			}
		}
	}
	if !allSW {
		t.Error("frontier lost every all-software point (GEQ=0 cannot be dominated by GEQ>0)")
	}
	if !hw {
		t.Error("no hardware point on the frontier — engine's Table 1 partition should appear")
	}
	// Explore with Verify set audits internally; it must not fail.
	cfg := Config{Workers: 1}
	cfg.Sys.Part.Verify = true
	run(t, ir, cfg)
}

// The branch-and-bound must be exact (identical frontier with pruning on
// and off) and effective: on MPG it has to cut at least 30% of the
// exhaustive (cluster subset × resource set) evaluations.
func TestBoundExactAndEffective(t *testing.T) {
	ir := buildApp(t, "MPG")
	ex := run(t, ir, Config{Workers: 1, DisableBound: true})
	bb := run(t, ir, Config{Workers: 1})
	if !bytes.Equal(pointsJSON(t, ex), pointsJSON(t, bb)) {
		t.Fatalf("pruning changed the frontier:\nexhaustive: %s\nbounded:    %s",
			pointsJSON(t, ex), pointsJSON(t, bb))
	}
	if ex.Stats.Pruned != 0 {
		t.Errorf("exhaustive run reports %d pruned subtrees", ex.Stats.Pruned)
	}
	if bb.Stats.Pruned == 0 {
		t.Error("bounded run pruned nothing")
	}
	if ex.Stats.Configs == 0 {
		t.Fatal("exhaustive run evaluated no configurations")
	}
	if max := ex.Stats.Configs * 7 / 10; bb.Stats.Configs > max {
		t.Errorf("bound pruned too little: %d of %d exhaustive evaluations (want <= %d, i.e. >= 30%% pruned)",
			bb.Stats.Configs, ex.Stats.Configs, max)
	}
	t.Logf("MPG: exhaustive=%d bounded=%d (%.0f%% pruned), subtrees cut=%d",
		ex.Stats.Configs, bb.Stats.Configs, 100*float64(ex.Stats.Configs-bb.Stats.Configs)/float64(ex.Stats.Configs), bb.Stats.Pruned)
}

// All geometries share one schedule/binding memo: on a multi-geometry,
// 2-cluster frontier run only the first geometry pays for each (cluster,
// resource set) schedule/binding; the rest must hit the memo.
func TestMemoSharedAcrossGeometries(t *testing.T) {
	ir := buildApp(t, "engine")
	f := run(t, ir, Config{Workers: 1, MaxHW: 2})
	if f.Stats.Geometries < 2 {
		t.Fatalf("default grid has %d geometries, need >= 2", f.Stats.Geometries)
	}
	if f.Stats.Memo.Hits == 0 {
		t.Errorf("schedule/binding memo never hit across %d geometries: %+v",
			f.Stats.Geometries, f.Stats.Memo)
	}
	if rate := f.Stats.Memo.HitRate(); rate <= 0 {
		t.Errorf("memo hit rate = %v, want > 0", rate)
	}
	if f.Stats.MemoAdds >= f.Stats.PairEvals && f.Stats.PairEvals > 0 {
		t.Errorf("every pair evaluation scheduled from scratch (adds=%d, pair evals=%d)",
			f.Stats.MemoAdds, f.Stats.PairEvals)
	}
	if f.Stats.MemoSize != int(f.Stats.MemoAdds) {
		t.Errorf("memo size %d != adds %d (unexpected eviction)", f.Stats.MemoSize, f.Stats.MemoAdds)
	}
}

// Cancellation must surface the context error, not a partial frontier.
func TestExploreCancellation(t *testing.T) {
	ir := buildApp(t, "engine")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Explore(ctx, ir, Config{Workers: 2}); err == nil {
		t.Fatal("cancelled Explore returned no error")
	}
}
