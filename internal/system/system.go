// Package system evaluates whole designs: the µP core, instruction cache,
// data cache, main memory, bus and (for partitioned designs) ASIC cores,
// executing the application end to end and accounting every core's energy
// — "it is an important feature of our approach that all system
// components are taken into consideration to estimate energy savings"
// (paper §4). Its Evaluate function runs the complete design flow of
// Fig. 5: profile → initial design measurement → partitioning →
// partitioned design co-simulation → verification.
package system

import (
	"context"
	"fmt"

	"lppart/internal/asic"
	"lppart/internal/behav"
	"lppart/internal/bus"
	"lppart/internal/cache"
	"lppart/internal/cdfg"
	"lppart/internal/codegen"
	"lppart/internal/explore"
	"lppart/internal/interp"
	"lppart/internal/isa"
	"lppart/internal/iss"
	"lppart/internal/mem"
	"lppart/internal/partition"
	"lppart/internal/tech"
	"lppart/internal/trace"
	"lppart/internal/units"
)

// Config parameterizes a system evaluation.
type Config struct {
	// Part configures the partitioning algorithm.
	Part partition.Config
	// ICache/DCache geometries; zero values select the defaults.
	ICache, DCache cache.Config
	// MemWords/StackWords size the µP's memory map.
	MemWords, StackWords int
	// MaxInstrs bounds the ISS runs.
	MaxInstrs int64
	// Verify cross-checks the partitioned design's memory against the
	// initial design's (differential co-simulation check). Default true;
	// set SkipVerify to disable.
	SkipVerify bool
}

func (c *Config) defaults() {
	if c.ICache.Sets == 0 {
		c.ICache = cache.DefaultICache()
	}
	if c.DCache.Sets == 0 {
		c.DCache = cache.DefaultDCache()
	}
	if c.MemWords == 0 {
		c.MemWords = 1 << 20
	}
	if c.StackWords == 0 {
		c.StackWords = 1 << 14
	}
	if c.Part.Lib == nil {
		c.Part.Lib = tech.Default()
	}
}

// Design is one fully evaluated implementation — a pair of Table 1 rows'
// worth of numbers.
type Design struct {
	Name string
	// Energy per core.
	EICache, EDCache, EMem, EBus, EMuP, EASIC units.Energy
	// Execution time split.
	MuPCycles, ASICCycles int64
	// Detail.
	ISS    *iss.Result
	IStats cache.Stats
	DStats cache.Stats
	GEQ    int // ASIC hardware effort (0 for the initial design)
}

// Total is the whole-system energy (Table 1 "total" column; bus energy is
// folded into the memory subsystem as the paper's table does not list it
// separately).
func (d *Design) Total() units.Energy {
	return d.EICache + d.EDCache + d.EMem + d.EBus + d.EMuP + d.EASIC
}

// TotalCycles is the execution time in cycles.
func (d *Design) TotalCycles() int64 { return d.MuPCycles + d.ASICCycles }

// Evaluation is the complete outcome for one application.
type Evaluation struct {
	App         string
	IR          *cdfg.Program
	Initial     *Design
	Partitioned *Design // nil when no partition was chosen
	Decision    *partition.Decision
	Profile     *interp.Profile

	// initialLay is the all-software compile's layout, kept for the
	// differential memory verify against the partitioned design.
	initialLay *codegen.Layout
}

// Savings returns Table 1's "Sav%" (negative = saving).
func (e *Evaluation) Savings() float64 {
	if e.Partitioned == nil {
		return 0
	}
	return units.PercentChange(float64(e.Initial.Total()), float64(e.Partitioned.Total()))
}

// TimeChange returns Table 1's "Chg%" (negative = faster).
func (e *Evaluation) TimeChange() float64 {
	if e.Partitioned == nil {
		return 0
	}
	return units.PercentChange(float64(e.Initial.TotalCycles()), float64(e.Partitioned.TotalCycles()))
}

// memSys wires the ISS to the cache cores.
type memSys struct {
	ic, dc *cache.Cache
}

func (m *memSys) FetchInstr(byteAddr uint32) int { return m.ic.Access(int32(byteAddr/4), false) }
func (m *memSys) ReadData(addr int32) int        { return m.dc.Access(addr, false) }
func (m *memSys) WriteData(addr int32) int       { return m.dc.Access(addr, true) }

// teeMemSys simulates the caches AND records the reference trace in one
// pass. The recorder sees exactly the access sequence a dedicated
// recording run would (the sequence is a pure function of the program),
// so measurement and trace capture share a single ISS execution.
type teeMemSys struct {
	ms  *memSys
	rec *trace.Recorder
}

func (t *teeMemSys) FetchInstr(byteAddr uint32) int {
	t.rec.FetchInstr(byteAddr)
	return t.ms.FetchInstr(byteAddr)
}

func (t *teeMemSys) ReadData(addr int32) int {
	t.rec.ReadData(addr)
	return t.ms.ReadData(addr)
}

func (t *teeMemSys) WriteData(addr int32) int {
	t.rec.WriteData(addr)
	return t.ms.WriteData(addr)
}

// runDesign executes one compiled program against fresh cache/memory/bus
// cores and collects the per-core accounting.
func runDesign(name string, mp *isaProgram, cfg *Config, handler iss.ASICHandler,
	micro *tech.MicroprocessorSpec) (*Design, *bus.Bus, *mem.Memory, error) {
	return runDesignRec(name, mp, cfg, handler, micro, nil)
}

// runDesignRec is runDesign with an optional trace recorder teed into the
// memory system.
func runDesignRec(name string, mp *isaProgram, cfg *Config, handler iss.ASICHandler,
	micro *tech.MicroprocessorSpec, rec *trace.Recorder) (*Design, *bus.Bus, *mem.Memory, error) {
	lib := cfg.Part.Lib
	b := bus.New(lib)
	m := mem.New(lib)
	ic, err := cache.New("i-cache", cfg.ICache, lib.Cache, m, b)
	if err != nil {
		return nil, nil, nil, err
	}
	dcfg := cfg.DCache
	dcfg.WriteBack = true
	dc, err := cache.New("d-cache", dcfg, lib.Cache, m, b)
	if err != nil {
		return nil, nil, nil, err
	}
	var sys iss.MemSystem = &memSys{ic: ic, dc: dc}
	if rec != nil {
		sys = &teeMemSys{ms: sys.(*memSys), rec: rec}
	}
	res, err := iss.Run(mp.prog, iss.Options{
		Micro:     micro,
		Mem:       sys,
		ASIC:      handler,
		MaxInstrs: cfg.MaxInstrs,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	dc.Flush()
	d := &Design{
		Name:      name,
		EICache:   ic.Energy(),
		EDCache:   dc.Energy(),
		EMem:      m.Energy(),
		EBus:      b.Energy(),
		EMuP:      res.Energy,
		MuPCycles: res.Cycles,
		ISS:       res,
		IStats:    ic.Stats,
		DStats:    dc.Stats,
	}
	return d, b, m, nil
}

// coreSet dispatches ASIC rendezvous instructions to their core.
type coreSet map[int32]*asic.Core

// RunASIC implements iss.ASICHandler over multiple cores.
func (cs coreSet) RunASIC(id int32, mem []int32) (int64, error) {
	core, ok := cs[id]
	if !ok {
		return 0, fmt.Errorf("system: no ASIC core %d", id)
	}
	return core.RunASIC(id, mem)
}

// isaProgram bundles a compiled program with its layout.
type isaProgram struct {
	prog *isa.Program
	lay  *codegen.Layout
}

// EvaluateAll runs the full design flow for several applications
// concurrently on a bounded worker pool (workers <= 0 selects one worker
// per CPU) and returns the evaluations in input order. Evaluate is
// re-entrant — every run builds its own IR, designs, caches and cores —
// so concurrent evaluations share only read-only state (the technology
// library and resource sets of cfg, and the source ASTs).
func EvaluateAll(srcs []*behav.Program, cfg Config, workers int) ([]*Evaluation, error) {
	return EvaluateAllCtx(context.Background(), srcs, cfg, workers) //lint:ctx non-Ctx convenience wrapper
}

// EvaluateAllCtx is EvaluateAll with cancellation: a cancelled or
// deadline-expired ctx stops the pool from starting new evaluations and
// aborts in-progress ones at their next stage boundary, returning
// ctx.Err(). Served requests use this so a timed-out caller stops
// burning workers mid-grid.
func EvaluateAllCtx(ctx context.Context, srcs []*behav.Program, cfg Config, workers int) ([]*Evaluation, error) {
	return explore.MapCtx(ctx, workers, srcs, func(_ int, src *behav.Program) (*Evaluation, error) {
		ev, err := EvaluateCtx(ctx, src, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", src.Name, err)
		}
		return ev, nil
	})
}

// Evaluate runs the full design flow for one application: behavioral
// source → IR → profile → initial design → partitioning → partitioned
// design, with a functional cross-check between the two designs.
// Evaluate is safe for concurrent use: it mutates nothing reachable from
// its arguments.
func Evaluate(src *behav.Program, cfg Config) (*Evaluation, error) {
	return EvaluateCtx(context.Background(), src, cfg) //lint:ctx non-Ctx convenience wrapper
}

// EvaluateCtx is Evaluate with cancellation (see EvaluateAllCtx).
func EvaluateCtx(ctx context.Context, src *behav.Program, cfg Config) (*Evaluation, error) {
	cfg.defaults()
	ir, err := cdfg.Build(src)
	if err != nil {
		return nil, fmt.Errorf("system: %w", err)
	}
	return EvaluateIRCtx(ctx, ir, cfg)
}

// EvaluateIR is Evaluate starting from already-built IR.
func EvaluateIR(ir *cdfg.Program, cfg Config) (*Evaluation, error) {
	return EvaluateIRCtx(context.Background(), ir, cfg) //lint:ctx non-Ctx convenience wrapper
}

// MeasureInitialCtx runs the measurement front half of the Fig. 5 flow —
// the profiling run and the initial (all-software) design — and returns
// the partially-filled Evaluation (IR, Profile, Initial) together with
// the partitioning Baseline derived from the measured design. Evaluate
// continues from here into the greedy Fig. 1 loop; internal/dse's Pareto
// explorer continues into a branch-and-bound search instead, but judges
// every configuration against this same measured baseline.
func MeasureInitialCtx(ctx context.Context, ir *cdfg.Program, cfg Config) (*Evaluation, *partition.Baseline, error) {
	return measureCtx(ctx, ir, cfg, nil)
}

// MeasureAndRecordCtx is MeasureInitialCtx with a trace recorder teed into
// the initial design's memory system: one compile and one ISS execution
// yield both the measured baseline and the full memory-reference trace,
// replacing the separate MeasureInitialCtx + RecordTraceCtx passes. The
// recorded trace is byte-identical to RecordTraceCtx's — the access
// sequence does not depend on the observer.
func MeasureAndRecordCtx(ctx context.Context, ir *cdfg.Program, cfg Config) (*Evaluation, *partition.Baseline, *trace.Trace, error) {
	rec := &trace.Recorder{}
	ev, base, err := measureCtx(ctx, ir, cfg, rec)
	if err != nil {
		return nil, nil, nil, err
	}
	return ev, base, &rec.Trace, nil
}

func measureCtx(ctx context.Context, ir *cdfg.Program, cfg Config, rec *trace.Recorder) (*Evaluation, *partition.Baseline, error) {
	cfg.defaults()
	lib := cfg.Part.Lib
	micro := &lib.Micro

	// Profiling run (Fig. 5 "Trace Tool" / profiler).
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	profRes, err := interp.Run(ir, interp.Options{CollectProfile: true,
		MaxSteps: cfg.MaxInstrs})
	if err != nil {
		return nil, nil, fmt.Errorf("system: profiling: %w", err)
	}
	ev := &Evaluation{App: ir.Name, IR: ir, Profile: profRes.Prof}

	// Initial (all-software) design.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	full, fullLay, err := codegen.Compile(ir, codegen.Options{
		MemWords: cfg.MemWords, StackWords: cfg.StackWords})
	if err != nil {
		return nil, nil, fmt.Errorf("system: compile: %w", err)
	}
	initial, _, _, err := runDesignRec("initial", &isaProgram{prog: full, lay: fullLay}, &cfg, nil, micro, rec)
	if err != nil {
		return nil, nil, fmt.Errorf("system: initial design: %w", err)
	}
	ev.Initial = initial
	ev.initialLay = fullLay

	base := &partition.Baseline{
		TotalEnergy:        initial.Total(),
		MuPEnergy:          initial.EMuP,
		RestEnergy:         initial.EICache + initial.EDCache + initial.EMem + initial.EBus,
		TotalCycles:        initial.TotalCycles(),
		Regions:            initial.ISS.Regions,
		Micro:              micro,
		ICacheAccessEnergy: cfg.ICache.AccessEnergy(lib.Cache),
	}
	return ev, base, nil
}

// RecordTraceCtx compiles the program and replays it on the ISS with a
// trace recorder attached, returning the complete memory-reference trace
// (instruction fetches, data reads and writes). The trace feeds the
// single-pass stack-distance cache sweeps: the access sequence is a pure
// function of the program, independent of any cache geometry, so one
// recording prices every geometry.
func RecordTraceCtx(ctx context.Context, ir *cdfg.Program, cfg Config) (*trace.Trace, error) {
	cfg.defaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mp, _, err := codegen.Compile(ir, codegen.Options{
		MemWords: cfg.MemWords, StackWords: cfg.StackWords})
	if err != nil {
		return nil, fmt.Errorf("system: compile: %w", err)
	}
	rec := &trace.Recorder{}
	if _, err := iss.Run(mp, iss.Options{Micro: &cfg.Part.Lib.Micro, Mem: rec,
		MaxInstrs: cfg.MaxInstrs}); err != nil {
		return nil, fmt.Errorf("system: trace recording: %w", err)
	}
	return &rec.Trace, nil
}

// EvaluateIRCtx is EvaluateIR with cancellation: ctx is checked at every
// stage boundary of the Fig. 5 flow (profile → initial design →
// partitioning → partitioned design) and threaded into the partitioner's
// cluster × resource-set fan-out, so a cancelled evaluation stops at the
// next boundary instead of running the flow to completion.
func EvaluateIRCtx(ctx context.Context, ir *cdfg.Program, cfg Config) (*Evaluation, error) {
	cfg.defaults()
	lib := cfg.Part.Lib
	micro := &lib.Micro

	ev, base, err := MeasureInitialCtx(ctx, ir, cfg)
	if err != nil {
		return nil, err
	}

	// Partitioning (Fig. 1).
	dec, err := partition.PartitionCtx(ctx, ir, ev.Profile, base, cfg.Part)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("system: partition: %w", err)
	}
	ev.Decision = dec
	if dec.Chosen == nil {
		return ev, nil
	}

	// Partitioned design: recompile with the chosen cluster(s) excluded,
	// build one ASIC core per cluster, co-simulate.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	exclude := make(map[int]int, len(dec.Choices))
	for i, ch := range dec.Choices {
		exclude[ch.Region.ID] = i
	}
	part, partLay, err := codegen.Compile(ir, codegen.Options{
		MemWords: cfg.MemWords, StackWords: cfg.StackWords,
		Exclude: exclude,
	})
	if err != nil {
		return nil, fmt.Errorf("system: partitioned compile: %w", err)
	}
	asicBus := bus.New(lib)
	asicMem := mem.New(lib)
	cores := make(coreSet, len(dec.Choices))
	totalGEQ := 0
	for i, ch := range dec.Choices {
		core, err := asic.NewCore(i, ir, ch.Region, ch.Binding,
			partLay, lib, asicBus, asicMem)
		if err != nil {
			return nil, fmt.Errorf("system: ASIC core %d: %w", i, err)
		}
		cores[int32(i)] = core
		totalGEQ += ch.Eval.GEQ
	}
	pd, pb, pm, err := runDesign("partitioned", &isaProgram{prog: part, lay: partLay}, &cfg, cores, micro)
	if err != nil {
		return nil, fmt.Errorf("system: partitioned design: %w", err)
	}
	// Fold the ASIC's transfer traffic into the shared bus/memory cores.
	pd.EBus = pb.Energy() + asicBus.Energy()
	pd.EMem = pm.Energy() + asicMem.Energy()
	// Sum per-core energies in core-index order: float addition is not
	// associative, so map-order iteration would make the total's low bits
	// (and the byte-identical Table 1 contract) run-dependent.
	for i := range dec.Choices {
		pd.EASIC += cores[int32(i)].Energy
	}
	pd.ASICCycles = pd.ISS.ASICCycles
	pd.GEQ = totalGEQ
	ev.Partitioned = pd

	if !cfg.SkipVerify {
		if err := verify(ir, ev.initialLay, ev.Initial.ISS.Mem, partLay, pd.ISS.Mem); err != nil {
			return nil, fmt.Errorf("system: partitioned design diverged: %w", err)
		}
	}
	return ev, nil
}

// verify compares every global between the two designs' final memories.
func verify(ir *cdfg.Program, layA *codegen.Layout, memA []int32,
	layB *codegen.Layout, memB []int32) error {
	for gi, g := range ir.Globals {
		addrA, words, _ := layA.VarAddr(ir, "", true, gi)
		addrB, _, _ := layB.VarAddr(ir, "", true, gi)
		for w := int32(0); w < words; w++ {
			if memA[addrA+w] != memB[addrB+w] {
				return fmt.Errorf("global %s[%d]: initial=%d partitioned=%d",
					g.Name, w, memA[addrA+w], memB[addrB+w])
			}
		}
	}
	return nil
}
