package system

import (
	"testing"

	"lppart/internal/apps"
	"lppart/internal/behav"
)

// twoHotLoops has two independent multiply-heavy clusters separated by a
// software stage; with MaxCores=2 both should move to hardware.
const twoHotLoops = `
var a[128]; var b2[128]; var c[128]; var total;
func main() {
	var i; var v;
	for i = 0; i < 128; i = i + 1 { a[i] = (i * 37) & 255; }
	for i = 0; i < 128; i = i + 1 {
		v = a[i];
		b2[i] = (v * v + (v << 3)) & 65535;
	}
	for i = 0; i < 128; i = i + 1 { b2[i] = b2[i] ^ (i & 7); }
	for i = 0; i < 128; i = i + 1 {
		v = b2[i];
		c[i] = (v * 3 + v * v - (v >> 2)) & 65535;
	}
	for i = 0; i < 128; i = i + 1 { total = total + c[i]; }
}
`

func evalCores(t *testing.T, maxCores int) *Evaluation {
	t.Helper()
	src := behav.MustParse("twohot", twoHotLoops)
	cfg := Config{MemWords: 1 << 16, StackWords: 1 << 12}
	cfg.Part.MaxCores = maxCores
	ev, err := Evaluate(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestMultiCoreSelectsTwoClusters(t *testing.T) {
	ev := evalCores(t, 2)
	if len(ev.Decision.Choices) != 2 {
		t.Fatalf("chose %d cores, want 2:\n%s", len(ev.Decision.Choices), ev.Decision.Trail())
	}
	if ev.Decision.Choices[0].Region == ev.Decision.Choices[1].Region {
		t.Fatal("both cores map the same cluster")
	}
	if ev.Partitioned == nil {
		t.Fatal("no partitioned design")
	}
	// The co-simulation with two ASIC cores must still be functionally
	// identical to software — Evaluate verifies that internally, so
	// reaching here is the assertion.
}

func TestMultiCoreBeatsSingleCore(t *testing.T) {
	one := evalCores(t, 1)
	two := evalCores(t, 2)
	if one.Partitioned == nil || two.Partitioned == nil {
		t.Fatal("both configurations must partition")
	}
	if two.Savings() >= one.Savings() {
		t.Errorf("two cores (%.2f%%) must save more than one (%.2f%%)",
			two.Savings(), one.Savings())
	}
	// Hardware cost is the sum of both cores.
	if two.Partitioned.GEQ <= one.Partitioned.GEQ {
		t.Errorf("two cores (%d cells) must cost more hardware than one (%d)",
			two.Partitioned.GEQ, one.Partitioned.GEQ)
	}
}

func TestMultiCoreNoOverlap(t *testing.T) {
	ev := evalCores(t, 4)
	// Chosen clusters must not share blocks (e.g. a loop and its nest).
	for i, a := range ev.Decision.Choices {
		for j, b := range ev.Decision.Choices {
			if i >= j || a.Region.Func != b.Region.Func {
				continue
			}
			blocks := make(map[int]bool)
			for _, bid := range a.Region.Blocks {
				blocks[bid] = true
			}
			for _, bid := range b.Region.Blocks {
				if blocks[bid] {
					t.Fatalf("cores %d and %d share block %d", i, j, bid)
				}
			}
		}
	}
}

func TestMultiCoreOnPaperApp(t *testing.T) {
	// MPG with two cores: motion estimation plus a second kernel.
	a, err := apps.ByName("MPG")
	if err != nil {
		t.Fatal(err)
	}
	src, err := a.Parse()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	cfg.Part.MaxCores = 3
	ev, err := Evaluate(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Decision.Choices) < 1 {
		t.Fatal("MPG must still partition")
	}
	// Functional verification ran inside Evaluate; the multi-core design
	// must not be worse than the single-core one.
	single, err := Evaluate(mustParse(t, a), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Savings() > single.Savings()+1e-9 {
		t.Errorf("3-core MPG savings %.2f%% worse than single-core %.2f%%",
			ev.Savings(), single.Savings())
	}
}

func mustParse(t *testing.T, a apps.App) *behav.Program {
	t.Helper()
	src, err := a.Parse()
	if err != nil {
		t.Fatal(err)
	}
	return src
}
