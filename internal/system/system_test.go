package system

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"lppart/internal/apps"
	"lppart/internal/behav"
	"lppart/internal/cache"
	"lppart/internal/cdfg"
	"lppart/internal/codegen"
	"lppart/internal/iss"
	"lppart/internal/partition"
	"lppart/internal/tech"
	"lppart/internal/trace"
)

// evalApp caches the six full evaluations across tests (each takes real
// simulation time).
var (
	evalOnce  sync.Once
	evalCache map[string]*Evaluation
	evalErr   error
)

func evaluateAll(t *testing.T) map[string]*Evaluation {
	t.Helper()
	evalOnce.Do(func() {
		evalCache = make(map[string]*Evaluation)
		for _, a := range apps.All() {
			src, err := a.Parse()
			if err != nil {
				evalErr = err
				return
			}
			ev, err := Evaluate(src, Config{})
			if err != nil {
				evalErr = err
				return
			}
			evalCache[a.Name] = ev
		}
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return evalCache
}

func TestEvaluateSmallProgram(t *testing.T) {
	src := behav.MustParse("mini", `
var a[64]; var out[64]; var total;
func main() {
	var i;
	for i = 0; i < 64; i = i + 1 { a[i] = (i * 13) & 255; }
	for i = 0; i < 64; i = i + 1 { out[i] = (a[i] * 3 + (a[i] >> 2)) & 255; }
	for i = 0; i < 64; i = i + 1 { total = total + out[i]; }
}
`)
	ev, err := Evaluate(src, Config{MemWords: 1 << 16, StackWords: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Initial == nil || ev.Initial.Total() <= 0 {
		t.Fatal("initial design missing or zero energy")
	}
	if ev.Initial.EICache <= 0 || ev.Initial.EMuP <= 0 {
		t.Error("initial per-core energies must be positive")
	}
	if ev.Initial.TotalCycles() <= 0 {
		t.Error("initial cycles must be positive")
	}
	// The functional cross-check (verify) ran implicitly if a partition
	// was chosen; either way the evaluation is complete.
	if ev.Decision == nil {
		t.Fatal("no decision recorded")
	}
}

func TestTable1AllAppsPartitioned(t *testing.T) {
	evals := evaluateAll(t)
	for name, ev := range evals {
		if ev.Partitioned == nil {
			t.Errorf("%s: no partition chosen — Table 1 needs a partitioned row", name)
		}
	}
}

// TestPaperShapeSavings asserts reproduction target 1: every application
// saves energy, in a band around the paper's Table 1 value.
func TestPaperShapeSavings(t *testing.T) {
	evals := evaluateAll(t)
	for _, a := range apps.All() {
		ev := evals[a.Name]
		if ev.Partitioned == nil {
			continue
		}
		got := ev.Savings()
		if got >= 0 {
			t.Errorf("%s: savings %.2f%%, must be negative", a.Name, got)
			continue
		}
		if math.Abs(got-a.PaperSavings) > 15 {
			t.Errorf("%s: savings %.2f%% vs paper %.2f%% — outside the ±15pp band",
				a.Name, got, a.PaperSavings)
		}
	}
}

// TestPaperShapeSavingsOrdering asserts the per-application ordering of
// savings matches the paper: digs and trick save most, then ckey, then
// MPG, then 3d/engine.
func TestPaperShapeSavingsOrdering(t *testing.T) {
	evals := evaluateAll(t)
	sav := func(name string) float64 { return evals[name].Savings() }
	if !(sav("digs") < sav("ckey") && sav("trick") < sav("ckey")) {
		t.Errorf("digs (%.1f) and trick (%.1f) must save more than ckey (%.1f)",
			sav("digs"), sav("trick"), sav("ckey"))
	}
	if !(sav("ckey") < sav("MPG")) {
		t.Errorf("ckey (%.1f) must save more than MPG (%.1f)", sav("ckey"), sav("MPG"))
	}
	if !(sav("MPG") < sav("3d") && sav("MPG") < sav("engine")) {
		t.Errorf("MPG (%.1f) must save more than 3d (%.1f) and engine (%.1f)",
			sav("MPG"), sav("3d"), sav("engine"))
	}
}

// TestPaperShapeTrickSlowdown asserts reproduction target 3: trick is the
// only application that runs slower after partitioning, while still saving
// the most (with digs) — the paper's standout case.
func TestPaperShapeTrickSlowdown(t *testing.T) {
	evals := evaluateAll(t)
	for _, a := range apps.All() {
		ev := evals[a.Name]
		if ev.Partitioned == nil {
			continue
		}
		chg := ev.TimeChange()
		if a.Name == "trick" {
			if chg <= 0 {
				t.Errorf("trick must slow down, got %.2f%%", chg)
			}
			if ev.Savings() > -80 {
				t.Errorf("trick must still save heavily, got %.2f%%", ev.Savings())
			}
			continue
		}
		if chg >= 0 {
			t.Errorf("%s must get faster, got %.2f%%", a.Name, chg)
		}
	}
}

// TestPaperShapeHardwareBound asserts reproduction target 2: every chosen
// core stays under 16k cells, and digs uses the most hardware.
func TestPaperShapeHardwareBound(t *testing.T) {
	evals := evaluateAll(t)
	maxName, maxGEQ := "", 0
	for name, ev := range evals {
		if ev.Partitioned == nil {
			continue
		}
		if ev.Partitioned.GEQ >= 16000 {
			t.Errorf("%s: %d cells exceed the paper's 16k bound", name, ev.Partitioned.GEQ)
		}
		if ev.Partitioned.GEQ > maxGEQ {
			maxGEQ, maxName = ev.Partitioned.GEQ, name
		}
	}
	if maxName != "digs" {
		t.Errorf("largest core is %s (%d cells), paper says digs", maxName, maxGEQ)
	}
	if maxGEQ < 12000 {
		t.Errorf("largest core only %d cells; paper reports slightly under 16k", maxGEQ)
	}
}

// TestPaperShapeCkeyMemoryNeglect asserts reproduction target 4: ckey is
// the least memory-intensive application — its data-cache plus memory
// energy is a negligible share in both designs. (Unlike the paper we
// charge i-cache energy per fetch, so only the data side can vanish; see
// EXPERIMENTS.md.)
func TestPaperShapeCkeyMemoryNeglect(t *testing.T) {
	evals := evaluateAll(t)
	ev := evals["ckey"]
	share := func(d *Design) float64 {
		return float64(d.EDCache+d.EMem) / float64(d.Total())
	}
	if s := share(ev.Initial); s > 0.05 {
		t.Errorf("ckey initial data+mem share %.3f, want < 0.05", s)
	}
	// And ckey must have the smallest such share among all apps.
	for name, other := range evals {
		if name == "ckey" {
			continue
		}
		if share(other.Initial) < share(ev.Initial) {
			t.Errorf("%s has a smaller data+mem share than ckey", name)
		}
	}
}

// TestPaperShapeCacheEffects asserts reproduction target 5: partitioning
// changes the cache/memory energy too — e.g. trick's i-cache energy
// collapses by orders of magnitude (paper: 5.58 mJ -> 12.59 µJ), and digs'
// memory energy drops.
func TestPaperShapeCacheEffects(t *testing.T) {
	evals := evaluateAll(t)
	trick := evals["trick"]
	if trick.Partitioned != nil {
		ratio := float64(trick.Initial.EICache) / float64(trick.Partitioned.EICache)
		if ratio < 100 {
			t.Errorf("trick i-cache energy must collapse >100x, got %.1fx", ratio)
		}
	}
	digs := evals["digs"]
	if digs.Partitioned != nil {
		if digs.Partitioned.EMem >= digs.Initial.EMem {
			t.Error("digs memory energy must drop after partitioning (no more cache thrash)")
		}
	}
}

// TestPaperShapeUtilization asserts reproduction target 6: every chosen
// cluster has a higher ASIC utilization rate than the µP's.
func TestPaperShapeUtilization(t *testing.T) {
	evals := evaluateAll(t)
	for name, ev := range evals {
		ch := ev.Decision.Chosen
		if ch == nil {
			continue
		}
		if ch.Eval.UASIC <= ch.Eval.UMuP {
			t.Errorf("%s: U_ASIC %.3f <= U_µP %.3f", name, ch.Eval.UASIC, ch.Eval.UMuP)
		}
	}
}

// TestPartitionedMatchesInitialFunctionally re-asserts the built-in verify
// step: Evaluate errors out if the designs diverge, so reaching here with
// partitions chosen is itself the check; this test just documents it.
func TestPartitionedMatchesInitialFunctionally(t *testing.T) {
	evals := evaluateAll(t)
	for name, ev := range evals {
		if ev.Partitioned == nil {
			t.Logf("%s: no partition (nothing to verify)", name)
		} else if ev.Partitioned.ISS == nil {
			t.Errorf("%s: partitioned design has no ISS result", name)
		}
	}
}

func TestGatedClockAblation(t *testing.T) {
	// A5: with gated clocks the µP wastes less idle energy, so the
	// initial design is cheaper and savings shrink.
	a, err := apps.ByName("engine")
	if err != nil {
		t.Fatal(err)
	}
	run := func(gated bool) *Evaluation {
		src, err := a.Parse()
		if err != nil {
			t.Fatal(err)
		}
		lib := tech.Default()
		if gated {
			lib.Micro = lib.Micro.Gated(lib)
		}
		cfg := Config{}
		cfg.Part.Lib = lib
		ev, err := Evaluate(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	plain := run(false)
	gated := run(true)
	if gated.Initial.EMuP >= plain.Initial.EMuP {
		t.Errorf("gated µP energy %v must be below plain %v",
			gated.Initial.EMuP, plain.Initial.EMuP)
	}
}

func TestCacheGeometryAblation(t *testing.T) {
	// A6: a larger d-cache reduces digs' initial memory energy (less
	// thrash), footnote 2's point that E_rest depends on the design.
	a, err := apps.ByName("digs")
	if err != nil {
		t.Fatal(err)
	}
	run := func(dc cache.Config) *Evaluation {
		src, err := a.Parse()
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Evaluate(src, Config{DCache: dc})
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	smallCfg := cache.Config{Sets: 32, Assoc: 2, LineWords: 4, WriteBack: true}
	bigCfg := cache.Config{Sets: 512, Assoc: 2, LineWords: 4, WriteBack: true}
	small := run(smallCfg)
	big := run(bigCfg)
	if big.Initial.EMem >= small.Initial.EMem {
		t.Errorf("16 KiB d-cache memory energy %v must be below 1 KiB's %v",
			big.Initial.EMem, small.Initial.EMem)
	}

	// The single-pass profiler reproduces the same knee from ONE extra
	// ISS run: record digs' reference stream once, then derive both A6
	// geometries (and everything between) from one stack pass. The
	// initial design runs the identical reference stream through live
	// cores, so the derived memory energies must match it exactly.
	src, err := a.Parse()
	if err != nil {
		t.Fatal(err)
	}
	mp, _, err := codegen.Compile(cdfg.MustBuild(src), codegen.Options{
		MemWords: 1 << 20, StackWords: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	if _, err := iss.Run(mp, iss.Options{Mem: rec}); err != nil {
		t.Fatal(err)
	}
	reps, err := rec.Trace.Sweep([][2]cache.Config{
		{cache.DefaultICache(), smallCfg},
		{cache.DefaultICache(), bigCfg},
	}, tech.Default())
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].EMem != small.Initial.EMem || reps[1].EMem != big.Initial.EMem {
		t.Errorf("stack-profiled memory energies (%v, %v) != initial designs' (%v, %v)",
			reps[0].EMem, reps[1].EMem, small.Initial.EMem, big.Initial.EMem)
	}
	if reps[1].EMem >= reps[0].EMem {
		t.Errorf("profiled sweep must show the A6 knee: big %v < small %v",
			reps[1].EMem, reps[0].EMem)
	}
}

func TestWeightedUtilizationAblation(t *testing.T) {
	// A4: size-weighted U_R must not change the chosen partition
	// (paper §3.4's closing observation), checked on the applications
	// most sensitive to the utilization comparison.
	for _, name := range []string{"3d", "ckey", "engine"} {
		a, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(weighted bool) *Evaluation {
			src, err := a.Parse()
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{}
			cfg.Part.WeightedU = weighted
			ev, err := Evaluate(src, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return ev
		}
		plain := run(false)
		weighted := run(true)
		if plain.Decision.Chosen == nil || weighted.Decision.Chosen == nil {
			t.Fatalf("%s: both configurations must choose a partition", name)
		}
		if plain.Decision.Chosen.Region.Label != weighted.Decision.Chosen.Region.Label {
			t.Errorf("%s: weighted U changed the partition: %s vs %s", name,
				plain.Decision.Chosen.Region.Label, weighted.Decision.Chosen.Region.Label)
		}
	}
}

func TestPartitionConfigF(t *testing.T) {
	// A1: a very large F (energy dominates the objective) still chooses
	// a partition; the decision trail stays well-formed.
	a, err := apps.ByName("ckey")
	if err != nil {
		t.Fatal(err)
	}
	src, err := a.Parse()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	cfg.Part = partition.Config{F: 4.0}
	ev, err := Evaluate(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Decision.Chosen == nil {
		t.Error("F=4 should still find ckey's dominant cluster")
	}
	if len(ev.Decision.Trail()) == 0 {
		t.Error("empty decision trail")
	}
}

// A cancelled context must abort EvaluateAllCtx with ctx.Err() instead of
// running the remaining evaluations to completion.
func TestEvaluateAllCtxCancelled(t *testing.T) {
	var srcs []*behav.Program
	for _, a := range apps.All() {
		p, err := a.Parse()
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, p)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateAllCtx(ctx, srcs, Config{}, 2); err != context.Canceled {
		t.Fatalf("EvaluateAllCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}

	// Deadline expiry mid-run surfaces as DeadlineExceeded, not a partial
	// result: use a deadline far too short for even one evaluation.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	if _, err := EvaluateAllCtx(dctx, srcs, Config{}, 2); err != context.DeadlineExceeded {
		t.Fatalf("EvaluateAllCtx past deadline: err = %v, want context.DeadlineExceeded", err)
	}
}
