// Package iss is the instruction-set simulator with attached energy
// calculation ("an instruction set simulator tool (ISS) is used ...
// attached to the ISS is the facility to calculate the energy consumption
// depending on the instruction executed at a point in time (the same
// methodology as in [12])", paper §3.5).
//
// The simulator executes isa.Programs cycle- and energy-accurately at the
// instruction level: each instruction contributes its class base energy
// plus a circuit-state overhead when the class changes (Tiwari's model),
// and occupies the core for its class cycle count plus whatever extra
// cycles the memory system reports (cache misses). Memory *content* is
// owned by the ISS; the MemSystem callback only models timing and energy
// of the storage hierarchy, keeping the cache/memory cores cleanly
// separated as in the paper's design flow.
//
// The ISS also measures, per instruction class, which core-internal
// resources are actively used (tech.MicroprocessorSpec.Uses), yielding the
// µP-side utilization rate U_µP of Eq. 1/4 — both for the whole run and
// per cluster (instructions are tagged with their source region), which is
// what Fig. 1 line 9 compares against a candidate ASIC implementation.
//
// When the program was compiled with excluded clusters, the ASIC
// instruction transfers control to an ASICHandler: the µP core is shut
// down while the ASIC core runs (Eq. 3's "whenever one of the cores is
// performing, all the other cores are shut down"), so ASIC cycles extend
// execution time but add no µP energy.
package iss

import (
	"fmt"

	"lppart/internal/behav"
	"lppart/internal/isa"
	"lppart/internal/tech"
	"lppart/internal/units"
)

// MemSystem models the timing and energy of instruction fetches and data
// accesses (caches + main memory). Implementations accumulate their own
// energy; the ISS only consumes the extra cycles.
type MemSystem interface {
	// FetchInstr is called once per executed instruction with its byte
	// address; it returns extra stall cycles (0 on a cache hit).
	FetchInstr(byteAddr uint32) (stallCycles int)
	// ReadData/WriteData are called for LD/ST with the word address.
	ReadData(wordAddr int32) (stallCycles int)
	WriteData(wordAddr int32) (stallCycles int)
}

// ASICHandler runs an ASIC core invocation on behalf of the rendezvous
// instruction. It returns the cycles the ASIC needed (in µP clock cycles,
// for execution-time accounting); energy is accounted inside the handler.
// The handler may read and write the shared memory.
type ASICHandler interface {
	RunASIC(id int32, mem []int32) (cycles int64, err error)
}

// Options configures a simulation.
type Options struct {
	// Micro is the µP core model; nil selects tech.Default().Micro.
	Micro *tech.MicroprocessorSpec
	// Mem models the storage hierarchy; nil means an ideal single-cycle
	// memory (no stalls, no extra energy).
	Mem MemSystem
	// ASIC handles rendezvous instructions; required only when the
	// program contains them.
	ASIC ASICHandler
	// MaxInstrs aborts runaway programs (default 500M).
	MaxInstrs int64
}

// RegionStat aggregates per-cluster statistics (keyed by cdfg region ID).
type RegionStat struct {
	Instrs int64
	Cycles int64
	Energy units.Energy
	// Active[k] counts cycles resource kind k was actively used while
	// executing this region's instructions (numerator of Eq. 1).
	Active [tech.NumResourceKinds]int64
}

// Utilization returns U_µP for the region per Eq. 4: the mean over the
// core's resource inventory of per-resource active-cycle ratios.
func (rs *RegionStat) Utilization(m *tech.MicroprocessorSpec) float64 {
	return utilization(m, rs.Active, rs.Cycles)
}

func utilization(m *tech.MicroprocessorSpec, active [tech.NumResourceKinds]int64, cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for k := tech.ResourceKind(0); k < tech.NumResourceKinds; k++ {
		inventory := m.CoreResources[k]
		if inventory == 0 {
			continue
		}
		n += inventory
		u := float64(active[k]) / float64(cycles)
		if u > 1 {
			u = 1
		}
		sum += u // remaining (inventory-1) instances contribute 0
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Result is the outcome of a simulation.
type Result struct {
	RV     int32 // r1 at halt (main's return value)
	Instrs int64
	// Cycles is µP busy time; ASICCycles is time spent with the µP shut
	// down while ASIC cores ran. Total execution time is the sum.
	Cycles     int64
	ASICCycles int64
	// Energy is the µP core's energy only (caches/memory/bus/ASIC are
	// accounted in their own models).
	Energy   units.Energy
	PerClass [tech.NumInstrClasses]int64
	Active   [tech.NumResourceKinds]int64
	// Regions holds per-cluster statistics, keyed by cdfg region ID
	// (-1 collects untagged instructions).
	Regions map[int]*RegionStat
	// Mem is the final data memory (owned by the caller after Run).
	Mem []int32
}

// Utilization returns the whole-run U_µP.
func (r *Result) Utilization(m *tech.MicroprocessorSpec) float64 {
	return utilization(m, r.Active, r.Cycles)
}

// TotalCycles returns µP plus ASIC cycles — the Table 1 "total" column.
func (r *Result) TotalCycles() int64 { return r.Cycles + r.ASICCycles }

// SimError is a simulation fault.
type SimError struct {
	PC  int
	Msg string
}

// Error implements the error interface.
func (e *SimError) Error() string { return fmt.Sprintf("iss: pc=%d: %s", e.PC, e.Msg) }

// classOf maps machine opcodes to the energy model's instruction classes.
func classOf(op isa.Opcode) tech.InstrClass {
	switch op {
	case isa.LI, isa.MOV:
		return tech.IClassMove
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE,
		isa.NEG, isa.NOT:
		return tech.IClassALU
	case isa.SLL, isa.SRA:
		return tech.IClassShift
	case isa.MUL:
		return tech.IClassMul
	case isa.DIV, isa.REM:
		return tech.IClassDiv
	case isa.LD:
		return tech.IClassLoad
	case isa.ST:
		return tech.IClassStore
	case isa.B, isa.BEQZ, isa.BNEZ, isa.JR:
		return tech.IClassBranch
	case isa.CALL:
		return tech.IClassCall
	default: // NOP, HALT
		return tech.IClassNop
	}
}

// issToBinOp maps binary-ALU machine opcodes to their behavioral
// semantics. A dense array: this lookup sits on the per-instruction hot
// path of Run.
var issToBinOp = [isa.NumOpcodes]behav.BinOp{
	isa.ADD: behav.OpAdd, isa.SUB: behav.OpSub, isa.MUL: behav.OpMul,
	isa.DIV: behav.OpDiv, isa.REM: behav.OpRem,
	isa.AND: behav.OpAnd, isa.OR: behav.OpOr, isa.XOR: behav.OpXor,
	isa.SLL: behav.OpShl, isa.SRA: behav.OpShr,
	isa.CMPEQ: behav.OpEq, isa.CMPNE: behav.OpNeq, isa.CMPLT: behav.OpLt,
	isa.CMPLE: behav.OpLeq, isa.CMPGT: behav.OpGt, isa.CMPGE: behav.OpGeq,
}

// Run simulates the program to completion (HALT).
func Run(p *isa.Program, opts Options) (*Result, error) {
	micro := opts.Micro
	if micro == nil {
		micro = &tech.Default().Micro
	}
	maxInstrs := opts.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 500_000_000
	}
	mem := make([]int32, p.MemWords)
	var regs [isa.NumRegs]int32
	regs[isa.SP] = int32(p.MemWords)

	res := &Result{Regions: make(map[int]*RegionStat), Mem: mem}
	// Dense per-region accumulators indexed by region ID + 1 (untagged
	// instructions carry region -1). The public map is materialized at
	// HALT; the per-instruction loop below never touches a map.
	maxRegion := -1
	for i := range p.Code {
		if p.Code[i].Region > maxRegion {
			maxRegion = p.Code[i].Region
		}
	}
	regStats := make([]RegionStat, maxRegion+2)
	finish := func() {
		for id := range regStats {
			if regStats[id].Instrs > 0 {
				res.Regions[id-1] = &regStats[id]
			}
		}
	}

	pc := p.Entry
	prevClass := tech.IClassNop
	for {
		if pc < 0 || pc >= len(p.Code) {
			return nil, &SimError{PC: pc, Msg: "pc out of range"}
		}
		ins := &p.Code[pc]
		if res.Instrs >= maxInstrs {
			return nil, &SimError{PC: pc, Msg: fmt.Sprintf("instruction limit %d exceeded", maxInstrs)}
		}

		if ins.Op == isa.HALT {
			res.RV = regs[isa.RV]
			finish()
			return res, nil
		}
		if ins.Op == isa.ASIC {
			if opts.ASIC == nil {
				return nil, &SimError{PC: pc, Msg: "ASIC instruction without handler"}
			}
			// The rendezvous itself costs one µP cycle (trigger write);
			// then the µP shuts down for the ASIC's duration.
			res.Instrs++
			res.Cycles++
			cyc, err := opts.ASIC.RunASIC(ins.Imm, mem)
			if err != nil {
				return nil, &SimError{PC: pc, Msg: fmt.Sprintf("ASIC core %d: %v", ins.Imm, err)}
			}
			res.ASICCycles += cyc
			pc++
			continue
		}

		res.Instrs++
		class := classOf(ins.Op)
		res.PerClass[class]++
		cycles := int64(micro.CyclesFor[class])
		if opts.Mem != nil {
			cycles += int64(opts.Mem.FetchInstr(isa.ByteAddr(pc)))
		}
		energy := micro.InstrEnergy(prevClass, class)
		prevClass = class

		next := pc + 1
		switch ins.Op {
		case isa.NOP:
		case isa.LI:
			regs[ins.Rd] = ins.Imm
		case isa.MOV:
			regs[ins.Rd] = regs[ins.Rs1]
		case isa.NEG:
			regs[ins.Rd] = -regs[ins.Rs1]
		case isa.NOT:
			regs[ins.Rd] = ^regs[ins.Rs1]
		case isa.LD:
			addr := regs[ins.Rs1] + ins.Imm
			if addr < 0 || int(addr) >= len(mem) {
				return nil, &SimError{PC: pc, Msg: fmt.Sprintf("load address %d out of range", addr)}
			}
			if opts.Mem != nil {
				cycles += int64(opts.Mem.ReadData(addr))
			}
			regs[ins.Rd] = mem[addr]
		case isa.ST:
			addr := regs[ins.Rs1] + ins.Imm
			if addr < 0 || int(addr) >= len(mem) {
				return nil, &SimError{PC: pc, Msg: fmt.Sprintf("store address %d out of range", addr)}
			}
			if opts.Mem != nil {
				cycles += int64(opts.Mem.WriteData(addr))
			}
			mem[addr] = regs[ins.Rs2]
		case isa.B:
			next = ins.Target
		case isa.BEQZ:
			if regs[ins.Rs1] == 0 {
				next = ins.Target
			}
		case isa.BNEZ:
			if regs[ins.Rs1] != 0 {
				next = ins.Target
			}
		case isa.CALL:
			regs[isa.RA] = int32(pc + 1)
			next = ins.Target
		case isa.JR:
			next = int(regs[ins.Rs1])
		default:
			if !ins.Op.IsBinaryALU() {
				return nil, &SimError{PC: pc, Msg: fmt.Sprintf("unimplemented opcode %v", ins.Op)}
			}
			b := regs[ins.Rs2]
			if ins.UseImm {
				b = ins.Imm
			}
			v, err := behav.EvalBinOp(issToBinOp[ins.Op], regs[ins.Rs1], b)
			if err != nil {
				return nil, &SimError{PC: pc, Msg: err.Error()}
			}
			regs[ins.Rd] = v
		}
		regs[isa.Zero] = 0 // r0 stays hardwired

		res.Cycles += cycles
		res.Energy += energy
		st := &regStats[ins.Region+1]
		st.Instrs++
		st.Cycles += cycles
		st.Energy += energy
		activeCycles := int64(micro.CyclesFor[class])
		for _, k := range micro.Uses[class] {
			res.Active[k] += activeCycles
			st.Active[k] += activeCycles
		}

		pc = next
	}
}
