package iss

import (
	"strings"
	"testing"

	"lppart/internal/isa"
	"lppart/internal/tech"
)

// asm builds a program from instructions with a 64Ki-word memory.
func asm(code ...isa.Instr) *isa.Program {
	return &isa.Program{Name: "t", Code: code, MemWords: 1 << 16}
}

func TestRunHaltReturnsRV(t *testing.T) {
	p := asm(
		isa.Instr{Op: isa.LI, Rd: isa.RV, Imm: 42},
		isa.Instr{Op: isa.HALT},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RV != 42 {
		t.Errorf("RV = %d, want 42", res.RV)
	}
	if res.Instrs != 1 {
		t.Errorf("instrs = %d, want 1 (HALT not counted)", res.Instrs)
	}
}

func TestALUAndImmediates(t *testing.T) {
	p := asm(
		isa.Instr{Op: isa.LI, Rd: 8, Imm: 10},
		isa.Instr{Op: isa.ADD, Rd: 9, Rs1: 8, Imm: 5, UseImm: true},
		isa.Instr{Op: isa.LI, Rd: 10, Imm: 3},
		isa.Instr{Op: isa.MUL, Rd: 11, Rs1: 9, Rs2: 10},
		isa.Instr{Op: isa.SRA, Rd: 12, Rs1: 11, Imm: 1, UseImm: true},
		isa.Instr{Op: isa.CMPLT, Rd: 13, Rs1: 12, Imm: 100, UseImm: true},
		isa.Instr{Op: isa.MOV, Rd: isa.RV, Rs1: 12},
		isa.Instr{Op: isa.HALT},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RV != (10+5)*3>>1 {
		t.Errorf("RV = %d, want 22", res.RV)
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	p := asm(
		isa.Instr{Op: isa.LI, Rd: isa.Zero, Imm: 99},
		isa.Instr{Op: isa.MOV, Rd: isa.RV, Rs1: isa.Zero},
		isa.Instr{Op: isa.HALT},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RV != 0 {
		t.Errorf("r0 must stay 0, got %d", res.RV)
	}
}

func TestLoadStore(t *testing.T) {
	p := asm(
		isa.Instr{Op: isa.LI, Rd: 8, Imm: 1234},
		isa.Instr{Op: isa.ST, Rs1: isa.Zero, Rs2: 8, Imm: 100},
		isa.Instr{Op: isa.LD, Rd: isa.RV, Rs1: isa.Zero, Imm: 100},
		isa.Instr{Op: isa.HALT},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RV != 1234 || res.Mem[100] != 1234 {
		t.Errorf("load/store failed: RV=%d mem=%d", res.RV, res.Mem[100])
	}
}

func TestBranchesAndCalls(t *testing.T) {
	// A loop: count down from 5 via BNEZ; then CALL a function that
	// doubles RV and returns via JR RA.
	p := asm(
		isa.Instr{Op: isa.LI, Rd: 8, Imm: 5},                         // 0
		isa.Instr{Op: isa.ADD, Rd: 9, Rs1: 9, Imm: 2, UseImm: true},  // 1: loop body
		isa.Instr{Op: isa.SUB, Rd: 8, Rs1: 8, Imm: 1, UseImm: true},  // 2
		isa.Instr{Op: isa.BNEZ, Rs1: 8, Target: 1},                   // 3
		isa.Instr{Op: isa.MOV, Rd: isa.RV, Rs1: 9},                   // 4
		isa.Instr{Op: isa.CALL, Target: 7},                           // 5
		isa.Instr{Op: isa.HALT},                                      // 6
		isa.Instr{Op: isa.ADD, Rd: isa.RV, Rs1: isa.RV, Rs2: isa.RV}, // 7: double
		isa.Instr{Op: isa.JR, Rs1: isa.RA},                           // 8
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RV != 20 {
		t.Errorf("RV = %d, want 20 (5 iterations x2, doubled)", res.RV)
	}
}

func TestEnergyAccounting(t *testing.T) {
	lib := tech.Default()
	m := &lib.Micro
	p := asm(
		isa.Instr{Op: isa.LI, Rd: 8, Imm: 1},
		isa.Instr{Op: isa.ADD, Rd: 8, Rs1: 8, Rs2: 8},
		isa.Instr{Op: isa.ADD, Rd: 8, Rs1: 8, Rs2: 8},
		isa.Instr{Op: isa.HALT},
	)
	res, err := Run(p, Options{Micro: m})
	if err != nil {
		t.Fatal(err)
	}
	// First instruction: move after nop (overhead); second: ALU after
	// move (overhead); third: ALU after ALU (no overhead).
	want := m.InstrEnergy(tech.IClassNop, tech.IClassMove) +
		m.InstrEnergy(tech.IClassMove, tech.IClassALU) +
		m.BaseEnergy[tech.IClassALU]
	if res.Energy != want {
		t.Errorf("energy %v, want %v", res.Energy, want)
	}
	if res.PerClass[tech.IClassALU] != 2 || res.PerClass[tech.IClassMove] != 1 {
		t.Errorf("class counts wrong: %v", res.PerClass)
	}
}

func TestCycleAccounting(t *testing.T) {
	lib := tech.Default()
	p := asm(
		isa.Instr{Op: isa.LI, Rd: 8, Imm: 7},
		isa.Instr{Op: isa.MUL, Rd: 8, Rs1: 8, Rs2: 8},
		isa.Instr{Op: isa.LD, Rd: 9, Rs1: isa.Zero, Imm: 10},
		isa.Instr{Op: isa.HALT},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := &lib.Micro
	want := int64(m.CyclesFor[tech.IClassMove] + m.CyclesFor[tech.IClassMul] + m.CyclesFor[tech.IClassLoad])
	if res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
}

// stallMem injects fixed stalls to verify the MemSystem wiring.
type stallMem struct{ fetch, read, write int }

func (s *stallMem) FetchInstr(uint32) int { return s.fetch }
func (s *stallMem) ReadData(int32) int    { return s.read }
func (s *stallMem) WriteData(int32) int   { return s.write }

func TestMemSystemStalls(t *testing.T) {
	p := asm(
		isa.Instr{Op: isa.LD, Rd: 8, Rs1: isa.Zero, Imm: 0},
		isa.Instr{Op: isa.ST, Rs1: isa.Zero, Rs2: 8, Imm: 1},
		isa.Instr{Op: isa.HALT},
	)
	base, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := Run(p, Options{Mem: &stallMem{fetch: 1, read: 10, write: 20}})
	if err != nil {
		t.Fatal(err)
	}
	// 2 fetches (LD, ST) + 10 + 20 extra cycles.
	if got := stalled.Cycles - base.Cycles; got != 2+10+20 {
		t.Errorf("stall cycles = %d, want 32", got)
	}
}

func TestRegionAttribution(t *testing.T) {
	p := asm(
		isa.Instr{Op: isa.LI, Rd: 8, Imm: 3, Region: 7},
		isa.Instr{Op: isa.ADD, Rd: 8, Rs1: 8, Rs2: 8, Region: 7},
		isa.Instr{Op: isa.ADD, Rd: 9, Rs1: 8, Rs2: 8, Region: -1},
		isa.Instr{Op: isa.HALT},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r7 := res.Regions[7]
	if r7 == nil || r7.Instrs != 2 {
		t.Fatalf("region 7 stats missing or wrong: %+v", r7)
	}
	if r7.Energy <= 0 || r7.Cycles <= 0 {
		t.Error("region energy/cycles must be positive")
	}
	if res.Regions[-1] == nil || res.Regions[-1].Instrs != 1 {
		t.Error("untagged instruction must land in region -1")
	}
}

func TestUtilizationMeasured(t *testing.T) {
	lib := tech.Default()
	// A multiply-only stream keeps the multiplier busy and the others
	// idle; an ALU-only stream the reverse.
	mulStream := make([]isa.Instr, 0, 20)
	for i := 0; i < 19; i++ {
		mulStream = append(mulStream, isa.Instr{Op: isa.MUL, Rd: 8, Rs1: 8, Rs2: 8})
	}
	mulStream = append(mulStream, isa.Instr{Op: isa.HALT})
	res, err := Run(asm(mulStream...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization(&lib.Micro)
	if u <= 0 || u > 1 {
		t.Errorf("utilization %g out of range", u)
	}
	// Only 1 of 5 core resources is used: U around 1/5.
	if u < 0.1 || u > 0.3 {
		t.Errorf("mul-stream utilization %g, want ~0.2", u)
	}
}

func TestTrapsAndLimits(t *testing.T) {
	div0 := asm(
		isa.Instr{Op: isa.LI, Rd: 8, Imm: 1},
		isa.Instr{Op: isa.DIV, Rd: 8, Rs1: 8, Rs2: 9},
		isa.Instr{Op: isa.HALT},
	)
	if _, err := Run(div0, Options{}); err == nil || !strings.Contains(err.Error(), "zero") {
		t.Errorf("div by zero: %v", err)
	}
	oob := asm(
		isa.Instr{Op: isa.LD, Rd: 8, Rs1: isa.Zero, Imm: -5},
		isa.Instr{Op: isa.HALT},
	)
	if _, err := Run(oob, Options{}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("oob load: %v", err)
	}
	spin := asm(isa.Instr{Op: isa.B, Target: 0})
	if _, err := Run(spin, Options{MaxInstrs: 1000}); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("instruction limit: %v", err)
	}
	badPC := asm(isa.Instr{Op: isa.B, Target: 99})
	if _, err := Run(badPC, Options{}); err == nil || !strings.Contains(err.Error(), "pc out of range") {
		t.Errorf("bad pc: %v", err)
	}
	noHandler := asm(isa.Instr{Op: isa.ASIC, Imm: 0}, isa.Instr{Op: isa.HALT})
	if _, err := Run(noHandler, Options{}); err == nil || !strings.Contains(err.Error(), "handler") {
		t.Errorf("ASIC without handler: %v", err)
	}
}

// fakeASIC counts invocations and writes a marker to memory.
type fakeASIC struct {
	calls  int
	cycles int64
}

func (f *fakeASIC) RunASIC(id int32, mem []int32) (int64, error) {
	f.calls++
	mem[500] = 777
	return f.cycles, nil
}

func TestASICRendezvous(t *testing.T) {
	p := asm(
		isa.Instr{Op: isa.ASIC, Imm: 0},
		isa.Instr{Op: isa.LD, Rd: isa.RV, Rs1: isa.Zero, Imm: 500},
		isa.Instr{Op: isa.HALT},
	)
	h := &fakeASIC{cycles: 12345}
	res, err := Run(p, Options{ASIC: h})
	if err != nil {
		t.Fatal(err)
	}
	if h.calls != 1 {
		t.Errorf("handler called %d times, want 1", h.calls)
	}
	if res.RV != 777 {
		t.Error("ASIC's memory write not visible to the µP")
	}
	if res.ASICCycles != 12345 {
		t.Errorf("ASIC cycles = %d, want 12345", res.ASICCycles)
	}
	// µP is shut down during the ASIC run: its energy covers only its
	// own 3 instructions (trigger + load + halt prologue-free).
	if res.TotalCycles() != res.Cycles+12345 {
		t.Error("total cycles must include the ASIC time")
	}
}

func TestUtilizationZeroCycles(t *testing.T) {
	var rs RegionStat
	lib := tech.Default()
	if u := rs.Utilization(&lib.Micro); u != 0 {
		t.Errorf("empty region utilization %g, want 0", u)
	}
}
