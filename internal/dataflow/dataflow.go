// Package dataflow computes the gen/use sets the paper's pre-selection
// algorithm (Fig. 3) is built on: "We use gen[···] and use[···] as it is
// defined in [16]" (Aho/Sethi/Ullman). For a cluster c,
//
//   - use[c] is the set of variables with an upward-exposed use in c
//     (read on some path before any write inside c) — the data the cluster
//     consumes from the outside, and
//   - gen[c] is the set of variables c writes — the data the cluster can
//     pass to later clusters.
//
// Arrays participate as whole variables (a Load contributes the array to
// use, a Store to gen); their transfer width is their element count, which
// is what makes the bus-traffic estimate of Fig. 3 meaningful for the
// data-oriented applications the paper targets.
//
// Sets are dense BitSets over a per-function interned namespace (Index);
// all set algebra is word-wise and allocation-free in the -With forms.
package dataflow

import (
	"lppart/internal/cdfg"
)

// Key identifies a variable (scalar or array, global or local) in a
// program-wide namespace.
type Key struct {
	Global bool
	ID     int
}

// keyOfVar converts a scalar reference.
func keyOfVar(r cdfg.VarRef) Key { return Key{Global: r.Global, ID: r.ID} }

// keyOfArr converts an array reference.
func keyOfArr(a cdfg.ArrRef) Key { return Key{Global: a.Global, ID: a.ID} }

// GenUse computes gen[r] and use[r] for a region over a fresh Index of
// the region's function. use is block-precise: within each basic block, a
// read counts only if the variable has not been written earlier in that
// block (upward-exposed); the per-block sets are then unioned, which is
// conservative across blocks. Compiler temporaries never escape a
// statement, so they are excluded from both sets.
func GenUse(p *cdfg.Program, r *cdfg.Region) (gen, use BitSet) {
	return GenUseOn(NewIndex(p, r.Func), r)
}

// GenUseOn is GenUse over a caller-provided Index (which must intern
// (p, r.Func)), letting several analyses of one function share the
// namespace and combine their sets without re-interning.
func GenUseOn(ix *Index, r *cdfg.Region) (gen, use BitSet) {
	gen, use = ix.NewBitSet(), ix.NewBitSet()
	written := ix.NewBitSet()
	f := r.Func
	for _, bid := range r.Blocks {
		b := f.Block(bid)
		written.Clear()
		for i := range b.Ops {
			op := &b.Ops[i]
			// Reads first.
			for _, u := range op.Uses() {
				ki := ix.IndexOf(keyOfVar(u))
				if !written.ContainsIndex(ki) && !ix.IsTemp(ki) {
					use.AddIndex(ki)
				}
			}
			if op.Code == cdfg.Load {
				ki := ix.IndexOf(keyOfArr(op.Arr))
				// A store to an array does not kill loads (partial
				// definition), so array loads are always uses.
				if !ix.IsTemp(ki) {
					use.AddIndex(ki)
				}
			}
			// Then writes.
			if op.Code == cdfg.Store {
				ki := ix.IndexOf(keyOfArr(op.Arr))
				if !ix.IsTemp(ki) {
					gen.AddIndex(ki)
				}
				continue
			}
			if d := op.Def(); d.Valid() {
				ki := ix.IndexOf(keyOfVar(d))
				written.AddIndex(ki)
				if !ix.IsTemp(ki) {
					gen.AddIndex(ki)
				}
			}
		}
	}
	return gen, use
}

// FuncEffect summarizes a whole function's reads and writes of globals
// (locals cannot escape). Used to account for call side effects when a
// cluster's surroundings include calls. The returned sets live in f's own
// namespace but contain only global-prefix slots, so they union into any
// other Index of the same program.
func FuncEffect(p *cdfg.Program, f *cdfg.Function) (gen, use BitSet) {
	gen, use = GenUse(p, f.Root)
	gen.MaskGlobals()
	use.MaskGlobals()
	return gen, use
}

// Surroundings computes, for a candidate cluster r, the gen set of
// everything that can execute before it (gen[C_pred] in Fig. 3 step 1) and
// the use set of everything that can execute after it (use[C_succ] in
// step 3).
//
// The split is textual within the cluster's own function — operations with
// IDs below the cluster's first op are "before", above its last op are
// "after" — while other functions are conservatively counted on both
// sides (their calls may occur before and after), with loop-enclosed
// clusters additionally seeing their own function's other ops on both
// sides (the enclosing loop re-executes them around each invocation).
func Surroundings(p *cdfg.Program, r *cdfg.Region) (genPred, useSucc BitSet) {
	return SurroundingsOn(NewIndex(p, r.Func), r)
}

// SurroundingsOn is Surroundings over a caller-provided Index (which must
// intern (p, r.Func)).
func SurroundingsOn(ix *Index, r *cdfg.Region) (genPred, useSucc BitSet) {
	p := ix.p
	genPred, useSucc = ix.NewBitSet(), ix.NewBitSet()
	f := r.Func
	maxID := -1
	for _, b := range f.Blocks {
		for i := range b.Ops {
			if b.Ops[i].ID > maxID {
				maxID = b.Ops[i].ID
			}
		}
	}
	inCluster := make([]bool, maxID+1)
	first, last := -1, -1
	for _, op := range r.Ops() {
		inCluster[op.ID] = true
		if first == -1 || op.ID < first {
			first = op.ID
		}
		if op.ID > last {
			last = op.ID
		}
	}
	enclosedInLoop := false
	for anc := r.Parent; anc != nil; anc = anc.Parent {
		if anc.Kind == cdfg.RegionLoop {
			enclosedInLoop = true
		}
	}
	record := func(op *cdfg.Op, before, after bool) {
		if op.Code == cdfg.Store {
			if before {
				genPred.Add(keyOfArr(op.Arr))
			}
		} else if d := op.Def(); d.Valid() {
			if ki := ix.IndexOf(keyOfVar(d)); !ix.IsTemp(ki) && before {
				genPred.AddIndex(ki)
			}
		}
		if after {
			for _, u := range op.Uses() {
				if ki := ix.IndexOf(keyOfVar(u)); !ix.IsTemp(ki) {
					useSucc.AddIndex(ki)
				}
			}
			if op.Code == cdfg.Load {
				useSucc.Add(keyOfArr(op.Arr))
			}
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Ops {
			op := &b.Ops[i]
			if op.ID < len(inCluster) && inCluster[op.ID] {
				continue
			}
			before := op.ID < first || enclosedInLoop
			after := op.ID > last || enclosedInLoop
			record(op, before, after)
		}
	}
	// Other functions: their global effects may happen on either side.
	// FuncEffect sets are globals-only, so the cross-index union is safe.
	for _, other := range p.Funcs {
		if other == f {
			continue
		}
		g, u := FuncEffect(p, other)
		genPred.UnionWith(g)
		useSucc.UnionWith(u)
	}
	return genPred, useSucc
}
