// Package dataflow computes the gen/use sets the paper's pre-selection
// algorithm (Fig. 3) is built on: "We use gen[···] and use[···] as it is
// defined in [16]" (Aho/Sethi/Ullman). For a cluster c,
//
//   - use[c] is the set of variables with an upward-exposed use in c
//     (read on some path before any write inside c) — the data the cluster
//     consumes from the outside, and
//   - gen[c] is the set of variables c writes — the data the cluster can
//     pass to later clusters.
//
// Arrays participate as whole variables (a Load contributes the array to
// use, a Store to gen); their transfer width is their element count, which
// is what makes the bus-traffic estimate of Fig. 3 meaningful for the
// data-oriented applications the paper targets.
package dataflow

import (
	"sort"

	"lppart/internal/cdfg"
)

// Key identifies a variable (scalar or array, global or local) in a
// program-wide namespace.
type Key struct {
	Global bool
	ID     int
}

// Set is a set of variable keys.
type Set map[Key]struct{}

// NewSet returns an empty set.
func NewSet() Set { return make(Set) }

// Add inserts k.
func (s Set) Add(k Key) { s[k] = struct{}{} }

// Contains reports membership.
func (s Set) Contains(k Key) bool {
	_, ok := s[k]
	return ok
}

// Union returns a new set with all elements of s and t.
func (s Set) Union(t Set) Set {
	u := NewSet()
	for k := range s {
		u.Add(k)
	}
	for k := range t {
		u.Add(k)
	}
	return u
}

// Intersect returns a new set with the elements present in both s and t.
func (s Set) Intersect(t Set) Set {
	u := NewSet()
	for k := range s {
		if t.Contains(k) {
			u.Add(k)
		}
	}
	return u
}

// Minus returns a new set with the elements of s not in t.
func (s Set) Minus(t Set) Set {
	u := NewSet()
	for k := range s {
		if !t.Contains(k) {
			u.Add(k)
		}
	}
	return u
}

// Len returns the cardinality.
func (s Set) Len() int { return len(s) }

// Keys returns the elements in deterministic order (globals first, then by
// ID).
func (s Set) Keys() []Key {
	keys := make([]Key, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Global != keys[j].Global {
			return keys[i].Global
		}
		return keys[i].ID < keys[j].ID
	})
	return keys
}

// Words returns the total transfer width of the set in 32-bit words:
// 1 per scalar, the element count per array. f resolves local IDs; it may
// be nil when the set holds only globals.
func (s Set) Words(p *cdfg.Program, f *cdfg.Function) int {
	total := 0
	for k := range s {
		var v cdfg.Var
		if k.Global {
			v = p.Globals[k.ID]
		} else {
			v = f.Locals[k.ID]
		}
		if v.IsArray() {
			total += int(v.Len)
		} else {
			total++
		}
	}
	return total
}

// keyOfVar converts a scalar reference.
func keyOfVar(r cdfg.VarRef) Key { return Key{Global: r.Global, ID: r.ID} }

// keyOfArr converts an array reference.
func keyOfArr(a cdfg.ArrRef) Key { return Key{Global: a.Global, ID: a.ID} }

// isTemp reports whether the key names a compiler temporary of f.
func isTemp(k Key, p *cdfg.Program, f *cdfg.Function) bool {
	if k.Global {
		return false
	}
	return f.Locals[k.ID].Temp
}

// GenUse computes gen[r] and use[r] for a region. use is block-precise:
// within each basic block, a read counts only if the variable has not been
// written earlier in that block (upward-exposed); the per-block sets are
// then unioned, which is conservative across blocks. Compiler temporaries
// never escape a statement, so they are excluded from both sets.
func GenUse(p *cdfg.Program, r *cdfg.Region) (gen, use Set) {
	gen, use = NewSet(), NewSet()
	f := r.Func
	for _, bid := range r.Blocks {
		b := f.Block(bid)
		written := NewSet()
		for i := range b.Ops {
			op := &b.Ops[i]
			// Reads first.
			for _, u := range op.Uses() {
				k := keyOfVar(u)
				if !written.Contains(k) && !isTemp(k, p, f) {
					use.Add(k)
				}
			}
			if op.Code == cdfg.Load {
				k := keyOfArr(op.Arr)
				// A store to an array does not kill loads (partial
				// definition), so array loads are always uses.
				if !isTemp(k, p, f) {
					use.Add(k)
				}
			}
			// Then writes.
			if op.Code == cdfg.Store {
				k := keyOfArr(op.Arr)
				if !isTemp(k, p, f) {
					gen.Add(k)
				}
				continue
			}
			if d := op.Def(); d.Valid() {
				k := keyOfVar(d)
				written.Add(k)
				if !isTemp(k, p, f) {
					gen.Add(k)
				}
			}
		}
	}
	return gen, use
}

// FuncEffect summarizes a whole function's reads and writes of globals
// (locals cannot escape). Used to account for call side effects when a
// cluster's surroundings include calls.
func FuncEffect(p *cdfg.Program, f *cdfg.Function) (gen, use Set) {
	gen, use = GenUse(p, f.Root)
	gOnly := func(s Set) Set {
		out := NewSet()
		for k := range s {
			if k.Global {
				out.Add(k)
			}
		}
		return out
	}
	return gOnly(gen), gOnly(use)
}

// Surroundings computes, for a candidate cluster r, the gen set of
// everything that can execute before it (gen[C_pred] in Fig. 3 step 1) and
// the use set of everything that can execute after it (use[C_succ] in
// step 3).
//
// The split is textual within the cluster's own function — operations with
// IDs below the cluster's first op are "before", above its last op are
// "after" — while other functions are conservatively counted on both
// sides (their calls may occur before and after), with loop-enclosed
// clusters additionally seeing their own function's other ops on both
// sides (the enclosing loop re-executes them around each invocation).
func Surroundings(p *cdfg.Program, r *cdfg.Region) (genPred, useSucc Set) {
	genPred, useSucc = NewSet(), NewSet()
	f := r.Func
	inCluster := make(map[int]bool)
	first, last := -1, -1
	for _, op := range r.Ops() {
		inCluster[op.ID] = true
		if first == -1 || op.ID < first {
			first = op.ID
		}
		if op.ID > last {
			last = op.ID
		}
	}
	enclosedInLoop := false
	for anc := r.Parent; anc != nil; anc = anc.Parent {
		if anc.Kind == cdfg.RegionLoop {
			enclosedInLoop = true
		}
	}
	record := func(op *cdfg.Op, before, after bool) {
		if op.Code == cdfg.Store {
			if before {
				genPred.Add(keyOfArr(op.Arr))
			}
		} else if d := op.Def(); d.Valid() && !isTemp(keyOfVar(d), p, f) {
			if before {
				genPred.Add(keyOfVar(d))
			}
		}
		if after {
			for _, u := range op.Uses() {
				if !isTemp(keyOfVar(u), p, f) {
					useSucc.Add(keyOfVar(u))
				}
			}
			if op.Code == cdfg.Load {
				useSucc.Add(keyOfArr(op.Arr))
			}
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Ops {
			op := &b.Ops[i]
			if inCluster[op.ID] {
				continue
			}
			before := op.ID < first || enclosedInLoop
			after := op.ID > last || enclosedInLoop
			record(op, before, after)
		}
	}
	// Other functions: their global effects may happen on either side.
	for _, other := range p.Funcs {
		if other == f {
			continue
		}
		g, u := FuncEffect(p, other)
		for k := range g {
			genPred.Add(k)
		}
		for k := range u {
			useSucc.Add(k)
		}
	}
	return genPred, useSucc
}
