package dataflow

import (
	"fmt"

	"lppart/internal/cdfg"
)

// VerifyGenUse cross-checks the Fig. 3 gen/use sets of a region against
// a direct, order-free enumeration of its reads and writes. It is the
// dataflow half of the pipeline-stage verifiers (cdfg.Verify covers the
// structural IR invariants): the bus-traffic estimate that drives
// pre-selection — and through it every Table 1 row — is only as sound as
// these sets, so partition.Config.Verify re-derives them per cluster:
//
//   - gen[c] must equal exactly the set of non-temporary variables the
//     region writes (gen's definition is traversal-order-free, so full
//     set equality is checkable);
//   - every use[c] member must be read by some operation in the region
//     (use is upward-exposure-filtered, hence a subset of the reads);
//   - a variable read before any write in the region's entry block must
//     appear in use[c] (a spot-check of upward exposure on the one
//     block whose exposure is not path-dependent);
//   - neither set may leak a compiler temporary (temporaries never
//     cross the hardware/software interface).
func VerifyGenUse(p *cdfg.Program, r *cdfg.Region) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("dataflow: verify: region %s gen/use: %s", r.Label, fmt.Sprintf(format, args...))
	}
	ix := NewIndex(p, r.Func)
	gen, use := GenUseOn(ix, r)
	f := r.Func
	name := func(k Key) string {
		if k.Global {
			return p.Globals[k.ID].Name
		}
		return f.Locals[k.ID].Name
	}

	// Direct enumeration of writes and reads, ignoring order.
	writes, reads := ix.NewBitSet(), ix.NewBitSet()
	for _, op := range r.Ops() {
		for _, u := range op.Uses() {
			reads.Add(keyOfVar(u))
		}
		if op.Code == cdfg.Load {
			reads.Add(keyOfArr(op.Arr))
		}
		if op.Code == cdfg.Store {
			writes.Add(keyOfArr(op.Arr))
		} else if d := op.Def(); d.Valid() {
			writes.Add(keyOfVar(d))
		}
	}

	for _, k := range gen.Keys() {
		if ix.IsTemp(ix.IndexOf(k)) {
			return fail("gen leaks compiler temporary %s", name(k))
		}
		if !writes.Contains(k) {
			return fail("gen claims %s but no operation writes it", name(k))
		}
	}
	for _, k := range writes.Keys() {
		if !ix.IsTemp(ix.IndexOf(k)) && !gen.Contains(k) {
			return fail("%s is written but missing from gen", name(k))
		}
	}
	for _, k := range use.Keys() {
		if ix.IsTemp(ix.IndexOf(k)) {
			return fail("use leaks compiler temporary %s", name(k))
		}
		if !reads.Contains(k) {
			return fail("use claims %s but no operation reads it", name(k))
		}
	}

	// Upward-exposure spot check on the entry block.
	entry := f.Block(r.Entry)
	written := ix.NewBitSet()
	for i := range entry.Ops {
		op := &entry.Ops[i]
		for _, u := range op.Uses() {
			ki := ix.IndexOf(keyOfVar(u))
			if !written.ContainsIndex(ki) && !ix.IsTemp(ki) && !use.ContainsIndex(ki) {
				return fail("entry block reads %s before any write but use omits it", name(ix.KeyOf(ki)))
			}
		}
		if op.Code == cdfg.Load {
			ki := ix.IndexOf(keyOfArr(op.Arr))
			if !ix.IsTemp(ki) && !use.ContainsIndex(ki) {
				return fail("entry block loads %s but use omits it", name(ix.KeyOf(ki)))
			}
		}
		if op.Code != cdfg.Store {
			if d := op.Def(); d.Valid() {
				written.Add(keyOfVar(d))
			}
		}
	}
	return nil
}
