package dataflow

import (
	"testing"

	"lppart/internal/behav"
	"lppart/internal/cdfg"
)

// VerifyGenUse recomputes gen/use through GenUse and cross-checks them
// against a direct enumeration of the region's reads and writes, so its
// regression value is guarding GenUse's contract (exact gen, subset use,
// temp exclusion, upward exposure) against future reimplementations —
// e.g. a memoized or incremental gen/use cache drifting from the IR.
// These tests pin the contract on a range of region shapes.
func TestVerifyGenUseAcceptsBuiltPrograms(t *testing.T) {
	for _, src := range []string{
		`var a[16]; var b[16]; var s;
		func main() {
			var i;
			for i = 0; i < 16; i = i + 1 { b[i] = a[i] * 3; }
			for i = 0; i < 16; i = i + 1 { s = s + b[i]; }
		}`,
		`var m[64]; var s;
		func main() {
			var i; var j;
			for i = 0; i < 8; i = i + 1 {
				for j = 0; j < 8; j = j + 1 { s = s + m[i*8+j] + i*j; }
			}
		}`,
		`var g;
		func main() {
			var i;
			if g > 2 {
				for i = 0; i < 4; i = i + 1 { g = g + i; }
			}
			g = g - 1;
		}`,
		`var in[32]; var out[32]; var gain;
		func main() {
			var i;
			gain = 3;
			for i = 1; i < 31; i = i + 1 {
				out[i] = (in[i-1] + 2*in[i] + in[i+1]) * gain >> 2;
			}
		}`,
	} {
		p := cdfg.MustBuild(behav.MustParse("t", src))
		for _, r := range p.Regions() {
			if err := VerifyGenUse(p, r); err != nil {
				t.Errorf("region %s: %v", r.Label, err)
			}
		}
	}
}

func TestVerifyGenUseAgreesWithGenUse(t *testing.T) {
	// The verifier's direct enumeration must classify exactly the
	// variables GenUse reports: spot-check one region's sets by hand.
	p := cdfg.MustBuild(behav.MustParse("t", `
var a[8]; var s;
func main() {
	var i;
	for i = 0; i < 8; i = i + 1 { s = s + a[i]; }
}
`))
	var loop *cdfg.Region
	for _, r := range p.Regions() {
		if r.Kind == cdfg.RegionLoop {
			loop = r
		}
	}
	if loop == nil {
		t.Fatal("no loop region")
	}
	if err := VerifyGenUse(p, loop); err != nil {
		t.Fatal(err)
	}
	gen, use := GenUse(p, loop)
	nameOf := func(k Key) string {
		if k.Global {
			return p.Globals[k.ID].Name
		}
		return loop.Func.Locals[k.ID].Name
	}
	genNames := map[string]bool{}
	for _, k := range gen.Keys() {
		genNames[nameOf(k)] = true
	}
	useNames := map[string]bool{}
	for _, k := range use.Keys() {
		useNames[nameOf(k)] = true
	}
	// The loop writes s and i, reads s, i and the array a.
	for _, want := range []string{"s", "i"} {
		if !genNames[want] {
			t.Errorf("gen missing %s (have %v)", want, genNames)
		}
	}
	for _, want := range []string{"s", "a"} {
		if !useNames[want] {
			t.Errorf("use missing %s (have %v)", want, useNames)
		}
	}
	if genNames["a"] {
		t.Error("gen contains a, but the loop never stores to it")
	}
}
