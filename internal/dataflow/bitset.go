package dataflow

import (
	"math/bits"

	"lppart/internal/cdfg"
)

// Index interns the variable namespace of one function into a dense
// integer range: globals occupy [0, NumGlobals) in declaration order and
// the function's locals follow at [NumGlobals, Len). Every BitSet is
// allocated against an Index; because the global prefix has the same
// layout in every Index of a program, globals-only sets (FuncEffect)
// combine across functions with plain word-wise operations.
type Index struct {
	p        *cdfg.Program
	f        *cdfg.Function
	nGlobals int
	n        int
	words    []int32 // transfer width per slot (1 scalar, Len per array)
	temp     []bool  // compiler-temporary slots (never cross the interface)
}

// NewIndex builds the interned namespace for (p, f). f may be nil for a
// globals-only index.
func NewIndex(p *cdfg.Program, f *cdfg.Function) *Index {
	n := len(p.Globals)
	if f != nil {
		n += len(f.Locals)
	}
	ix := &Index{p: p, f: f, nGlobals: len(p.Globals), n: n,
		words: make([]int32, n), temp: make([]bool, n)}
	fill := func(base int, vars []cdfg.Var) {
		for i := range vars {
			w := int32(1)
			if vars[i].IsArray() {
				w = vars[i].Len
			}
			ix.words[base+i] = w
			ix.temp[base+i] = vars[i].Temp
		}
	}
	fill(0, p.Globals)
	if f != nil {
		fill(ix.nGlobals, f.Locals)
	}
	return ix
}

// Len returns the number of interned slots.
func (ix *Index) Len() int { return ix.n }

// NumGlobals returns the size of the shared global prefix.
func (ix *Index) NumGlobals() int { return ix.nGlobals }

// IndexOf converts a Key to its dense slot.
func (ix *Index) IndexOf(k Key) int {
	if k.Global {
		return k.ID
	}
	return ix.nGlobals + k.ID
}

// KeyOf converts a dense slot back to its Key.
func (ix *Index) KeyOf(i int) Key {
	if i < ix.nGlobals {
		return Key{Global: true, ID: i}
	}
	return Key{ID: i - ix.nGlobals}
}

// IsTemp reports whether the slot names a compiler temporary.
func (ix *Index) IsTemp(i int) bool { return ix.temp[i] }

// BitSet is a dense variable set over an Index. The zero value is not
// usable; allocate with Index.NewBitSet. Methods with a -With suffix
// mutate the receiver's backing words in place and never allocate.
type BitSet struct {
	ix *Index
	w  []uint64
}

// NewBitSet allocates an empty set over the index's namespace.
func (ix *Index) NewBitSet() BitSet {
	return BitSet{ix: ix, w: make([]uint64, (ix.n+63)/64)}
}

// Index returns the namespace the set is allocated against.
func (s BitSet) Index() *Index { return s.ix }

// AddIndex inserts the dense slot i.
func (s BitSet) AddIndex(i int) { s.w[i>>6] |= 1 << (uint(i) & 63) }

// Add inserts the variable k.
func (s BitSet) Add(k Key) { s.AddIndex(s.ix.IndexOf(k)) }

// ContainsIndex reports membership of the dense slot i.
func (s BitSet) ContainsIndex(i int) bool { return s.w[i>>6]&(1<<(uint(i)&63)) != 0 }

// Contains reports membership of the variable k.
func (s BitSet) Contains(k Key) bool { return s.ContainsIndex(s.ix.IndexOf(k)) }

// Clear empties the set in place.
func (s BitSet) Clear() {
	for i := range s.w {
		s.w[i] = 0
	}
}

// UnionWith adds every element of t, in place. t may come from another
// function's index: only the common word prefix (in particular the shared
// global layout) participates.
func (s BitSet) UnionWith(t BitSet) {
	n := len(s.w)
	if len(t.w) < n {
		n = len(t.w)
	}
	for i := 0; i < n; i++ {
		s.w[i] |= t.w[i]
	}
}

// IntersectWith keeps only elements also in t, in place.
func (s BitSet) IntersectWith(t BitSet) {
	n := len(s.w)
	if len(t.w) < n {
		n = len(t.w)
	}
	for i := 0; i < n; i++ {
		s.w[i] &= t.w[i]
	}
	for i := n; i < len(s.w); i++ {
		s.w[i] = 0
	}
}

// MinusWith removes every element of t, in place.
func (s BitSet) MinusWith(t BitSet) {
	n := len(s.w)
	if len(t.w) < n {
		n = len(t.w)
	}
	for i := 0; i < n; i++ {
		s.w[i] &^= t.w[i]
	}
}

// Intersect returns a new set with the elements present in both s and t.
func (s BitSet) Intersect(t BitSet) BitSet {
	u := s.ix.NewBitSet()
	copy(u.w, s.w)
	u.IntersectWith(t)
	return u
}

// Union returns a new set with all elements of s and t.
func (s BitSet) Union(t BitSet) BitSet {
	u := s.ix.NewBitSet()
	copy(u.w, s.w)
	u.UnionWith(t)
	return u
}

// Minus returns a new set with the elements of s not in t.
func (s BitSet) Minus(t BitSet) BitSet {
	u := s.ix.NewBitSet()
	copy(u.w, s.w)
	u.MinusWith(t)
	return u
}

// MaskGlobals drops every non-global slot, in place.
func (s BitSet) MaskGlobals() {
	ng := s.ix.nGlobals
	for wi := range s.w {
		lo := wi * 64
		if lo+64 <= ng {
			continue
		}
		if lo >= ng {
			s.w[wi] = 0
			continue
		}
		s.w[wi] &= (1 << uint(ng-lo)) - 1
	}
}

// Len returns the cardinality.
func (s BitSet) Len() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEachIndex visits the elements in ascending slot order (globals in
// declaration order, then locals) without allocating.
func (s BitSet) ForEachIndex(visit func(i int)) {
	for wi, w := range s.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			visit(wi*64 + b)
			w &= w - 1
		}
	}
}

// Keys returns the elements in deterministic order (globals first in
// declaration order, then locals by ID — ascending slot order).
func (s BitSet) Keys() []Key {
	keys := make([]Key, 0, s.Len())
	s.ForEachIndex(func(i int) { keys = append(keys, s.ix.KeyOf(i)) })
	return keys
}

// Words returns the total transfer width of the set in 32-bit words:
// 1 per scalar, the element count per array.
func (s BitSet) Words() int {
	total := 0
	s.ForEachIndex(func(i int) { total += int(s.ix.words[i]) })
	return total
}
